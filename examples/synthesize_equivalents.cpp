// synthesize_equivalents — explore the program-synthesis half of the
// paper (Fig. 1 upper path): given an instruction mnemonic, search for
// semantically equivalent programs with HPF-CEGIS, show the priority
// learning at work, and print each program both in synthesis form and as
// lowered RISC-V assembly over the EDSEP-V register banks (the paper's
// Listing 1 -> Listing 2 step).
//
// Usage: ./examples/synthesize_equivalents [MNEMONIC] [k]
//        ./examples/synthesize_equivalents SUB 5
#include <cstdio>
#include <cstdlib>
#include <string>

#include "qed/qed_module.hpp"
#include "synth/cegis.hpp"

using namespace sepe;

int main(int argc, char** argv) {
  const std::string mnemonic = argc > 1 ? argv[1] : "SUB";
  const unsigned k = argc > 2 ? std::atoi(argv[2]) : 5;

  const auto op = isa::opcode_from_name(mnemonic);
  if (!op || !isa::writes_register(*op) || isa::is_load(*op)) {
    std::fprintf(stderr,
                 "usage: %s [MNEMONIC] [k] — MNEMONIC must be a value-producing "
                 "RV32IM instruction (e.g. SUB, XOR, SLT, MULH, XORI)\n",
                 argv[0]);
    return 2;
  }

  const auto library = synth::make_standard_library();
  std::printf("component library: %zu components (%zu NIC / %zu DIC / %zu CIC)\n",
              library.size(),
              synth::filter_by_class(library, synth::ComponentClass::NIC).size(),
              synth::filter_by_class(library, synth::ComponentClass::DIC).size(),
              synth::filter_by_class(library, synth::ComponentClass::CIC).size());

  const synth::SynthSpec spec = synth::make_spec(*op);
  synth::DriverOptions driver;
  driver.cegis.xlen = 8;
  driver.multiset_size = 3;
  driver.target_programs = k;
  driver.max_seconds = 120.0;

  synth::HpfOptions hpf;
  synth::PriorityDict dict(library.size(), hpf);
  std::printf("searching for %u programs equivalent to %s (HPF-CEGIS, n=3)...\n\n", k,
              spec.name.c_str());
  const synth::SynthesisResult result =
      synth::hpf_cegis(spec, library, driver, hpf, &dict);

  std::printf("%zu programs in %.2fs — %u multisets attempted, %u synthesized\n\n",
              result.programs.size(), result.seconds, result.multisets_tried,
              result.multisets_succeeded);

  const qed::RegisterSplit split = qed::register_split(qed::QedMode::EdsepV);
  for (std::size_t i = 0; i < result.programs.size(); ++i) {
    const synth::SynthProgram& p = result.programs[i];
    std::printf("--- program %zu (synthesis form) ---\n%s\n", i + 1,
                p.to_string().c_str());

    // Lower onto the EDSEP-V banks for an original "g x1, x2, x3 / imm":
    // inputs from E (x2 -> x15, x3 -> x16), output to E (x1 -> x14),
    // temporaries from T (x26..).
    std::vector<std::uint8_t> in_regs;
    std::vector<std::int32_t> imms;
    unsigned reg_i = 0;
    for (synth::InputClass c : p.spec->inputs) {
      if (c == synth::InputClass::Reg) {
        in_regs.push_back(static_cast<std::uint8_t>((reg_i++ == 0 ? 2 : 3) +
                                                    split.shadow_offset));
      } else {
        imms.push_back(0x7);  // a representative immediate operand
      }
    }
    while (imms.size() < p.spec->inputs.size()) imms.push_back(0);
    std::vector<std::uint8_t> temps;
    for (unsigned t = 0; t < split.temp_count; ++t)
      temps.push_back(static_cast<std::uint8_t>(split.temp_base + t));
    if (p.temps_needed() > temps.size()) {
      std::printf("(needs %u temporaries — exceeds the T bank, skipped)\n\n",
                  p.temps_needed());
      continue;
    }
    const isa::Program lowered =
        p.lower(in_regs, static_cast<std::uint8_t>(1 + split.shadow_offset), imms, temps);
    std::printf("lowered (EDSEP-V banks, cf. Listing 2):\n%s\n\n",
                isa::program_to_string(lowered).c_str());
  }

  // Show what the priority dictionary learned (§4.2).
  std::printf("--- learned component weights (choice c_j / exclusion e_j) ---\n");
  for (std::size_t j = 0; j < library.size(); ++j) {
    const int c = dict.choice_weight(static_cast<unsigned>(j));
    const int e = dict.exclusion_weight(static_cast<unsigned>(j));
    if (c != hpf.initial_choice_weight || e != hpf.initial_exclusion_weight)
      std::printf("  %-8s c=%-4d e=%-4d %s\n", library[j].name.c_str(), c, e,
                  c > e ? "(promoted)" : "(demoted)");
  }
  return result.programs.empty() ? 1 : 0;
}
