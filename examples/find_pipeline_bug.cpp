// find_pipeline_bug — the verification half of the paper (Fig. 1 lower
// path, Fig. 2 model): inject a named RTL mutation into the pipelined
// DUV, attach BOTH QED modules, and model-check them as a two-job
// campaign on the parallel engine — each job racing BMC against
// k-induction — to compare what SQED and SEPE-SQED can see.
//
// Usage: ./examples/find_pipeline_bug [BUG_NAME]
//        ./examples/find_pipeline_bug --list
//        default bug: xor_as_or (a Table-1 single-instruction bug)
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "engine/campaign.hpp"
#include "engine/workload.hpp"
#include "proc/mutations.hpp"
#include "qed/qed_module.hpp"
#include "synth/cegis.hpp"

using namespace sepe;
using isa::Opcode;

namespace {

std::optional<proc::Mutation> find_bug(const std::string& name) {
  for (proc::Mutation& m : proc::table1_single_instruction_bugs())
    if (m.name == name) return m;
  for (proc::Mutation& m : proc::figure4_multi_instruction_bugs(true))
    if (m.name == name) return m;
  return std::nullopt;
}

void list_bugs() {
  std::printf("single-instruction bugs (Table 1):\n");
  for (const proc::Mutation& m : proc::table1_single_instruction_bugs())
    std::printf("  %-28s %s\n", m.name.c_str(), m.description.c_str());
  std::printf("multiple-instruction bugs (Figure 4):\n");
  for (const proc::Mutation& m : proc::figure4_multi_instruction_bugs(true))
    std::printf("  %-28s %s\n", m.name.c_str(), m.description.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string bug_name = argc > 1 ? argv[1] : "xor_as_or";
  if (bug_name == "--list") {
    list_bugs();
    return 0;
  }
  const auto bug = find_bug(bug_name);
  if (!bug) {
    std::fprintf(stderr, "unknown bug '%s' — try --list\n", bug_name.c_str());
    return 2;
  }
  std::printf("injected bug: %s\n  %s\n  class: %s\n\n", bug->name.c_str(),
              bug->description.c_str(),
              bug->single_instruction ? "single-instruction (Table 1)"
                                      : "multiple-instruction (Figure 4)");

  // Equivalence table for the instructions this demo streams. Synthesized
  // on the spot with HPF-CEGIS over the standard library.
  const auto library = synth::make_standard_library();
  std::vector<synth::SynthSpec> specs;
  specs.reserve(8);
  synth::EquivalenceTable table;
  constexpr unsigned kDuvXlen = 4;
  const auto synthesize = [&](Opcode op) {
    specs.push_back(synth::make_spec(op));
    synth::DriverOptions driver;
    driver.cegis.xlen = kDuvXlen;  // match the DUV width: solved constants
                                   // are only guaranteed at this width
    driver.multiset_size = 3;
    driver.target_programs = 3;
    driver.max_seconds = 60.0;
    synth::HpfOptions hpf;
    auto r = synth::hpf_cegis(specs.back(), library, driver, hpf);
    // Prefer a program that avoids the instruction's own opcode — maximum
    // datapath separation (§4.2's alpha-penalty goal).
    const synth::SynthProgram* chosen = nullptr;
    for (const synth::SynthProgram& p : r.programs)
      if (!p.uses_opcode(op) && synth::verify_program(p, kDuvXlen)) chosen = &p;
    if (!chosen)
      for (const synth::SynthProgram& p : r.programs)
        if (synth::verify_program(p, kDuvXlen)) chosen = &p;
    if (chosen) table.add(isa::opcode_name(op), *chosen);
    std::printf("equivalence for %-5s: %s\n", isa::opcode_name(op),
                chosen ? "synthesized" : "NOT FOUND");
  };

  // Stream the bug's own instruction (if any) plus a producer pair.
  std::vector<Opcode> stream = {Opcode::ADD, Opcode::ADDI};
  if (bug->target != Opcode::NOP && !isa::is_store(bug->target) &&
      !isa::is_load(bug->target)) {
    bool present = false;
    for (Opcode op : stream) present |= (op == bug->target);
    if (!present) stream.push_back(bug->target);
  }
  std::printf("synthesizing equivalences for the instruction stream...\n");
  for (Opcode op : stream) synthesize(op);
  std::printf("\n");

  // DUV opcode set: stream + everything the replays issue.
  proc::ProcConfig config;
  config.xlen = kDuvXlen;
  config.mem_words = 8;
  config.opcodes = stream;
  for (Opcode op : {Opcode::SUB, Opcode::XOR, Opcode::OR, Opcode::AND, Opcode::XORI,
                    Opcode::ADDI, Opcode::SLL, Opcode::SRL, Opcode::SLT, Opcode::SLTU})
    if (!config.supports(op)) config.opcodes.push_back(op);

  // One engine job per QED module; both fan out on the worker pool, each
  // racing BMC against k-induction under the shared wall cap.
  engine::JobBudget budget;
  budget.max_bound = 10;
  budget.max_k = 4;
  budget.max_seconds = 180.0;
  engine::CampaignSpec spec;
  for (const qed::QedMode mode : {qed::QedMode::EddiV, qed::QedMode::EdsepV})
    spec.jobs.push_back(engine::make_qed_job(std::string(engine::mode_tag(mode)), mode,
                                             config, *bug, &table, budget,
                                             /*queue_capacity=*/2, /*counter_bits=*/3));

  engine::CampaignOptions pool;
  pool.threads = 2;
  const engine::CampaignReport report = engine::run_campaign(spec, pool);

  for (const engine::JobResult& r : report.jobs) {
    const bool eddi = r.provenance.mode == engine::mode_tag(qed::QedMode::EddiV);
    std::printf("=== %s ===\n",
                qed::qed_mode_name(eddi ? qed::QedMode::EddiV : qed::QedMode::EdsepV));
    switch (r.verdict) {
      case engine::Verdict::Falsified:
        std::printf("VIOLATION at bound %u (%.2fs, %s won the race)\n%s\n",
                    r.trace_length, r.seconds, engine::prover_name(r.winner),
                    r.witness.c_str());
        break;
      case engine::Verdict::Proved:
        std::printf("PROVED by k-induction at k=%u (%.2fs) — no violation at any "
                    "depth\n\n", r.proved_k, r.seconds);
        break;
      case engine::Verdict::Unknown:
        std::printf("no verdict within the resource budget (%.0fs)\n\n",
                    budget.max_seconds);
        break;
      case engine::Verdict::BoundClean:
        std::printf("no violation up to bound %u (%.2fs)%s\n\n", budget.max_bound,
                    r.seconds,
                    bug->single_instruction && eddi
                        ? " — the false negative the paper predicts for SQED"
                        : "");
        break;
    }
  }
  return 0;
}
