// qed_testing — the concrete (pre-SQED) QED methodology the paper builds
// on (§2.1, Lin et al. [13]): transform an existing test with EDDI-V or
// EDSEP-V, execute it on the instruction-set simulator from a
// QED-consistent state, and compare the register halves.
//
// Demonstrates on random tests:
//   * both transformations keep a healthy design consistent;
//   * an asymmetric (sequence-dependent) bug is flagged by both;
//   * a uniform single-instruction bug slips past EDDI-V but is flagged
//     by EDSEP-V — the concrete-execution shadow of Table 1.
//
// Usage: ./examples/qed_testing [num_tests] [test_length]
#include <cstdio>
#include <cstdlib>

#include "qed/qed_test.hpp"
#include "synth/cegis.hpp"
#include "util/rng.hpp"

using namespace sepe;
using isa::Opcode;

int main(int argc, char** argv) {
  const unsigned num_tests = argc > 1 ? std::atoi(argv[1]) : 20;
  const unsigned test_length = argc > 2 ? std::atoi(argv[2]) : 30;
  constexpr unsigned kXlen = 8;  // equals the synthesis width below
  constexpr unsigned kMemWords = 32;
  constexpr unsigned kHalfBytes = kMemWords / 2 * 4;

  // Equivalence table for the ALU instructions the random generator
  // emits, synthesized once up front.
  std::printf("synthesizing the equivalence table (HPF-CEGIS)...\n");
  const auto library = synth::make_standard_library();
  std::vector<synth::SynthSpec> specs;
  specs.reserve(32);
  synth::EquivalenceTable table;
  unsigned covered = 0;
  for (Opcode op : {Opcode::ADD, Opcode::SUB, Opcode::XOR, Opcode::OR, Opcode::AND,
                    Opcode::SLT, Opcode::SLTU, Opcode::SLL, Opcode::SRL, Opcode::SRA,
                    Opcode::ADDI, Opcode::XORI, Opcode::ORI, Opcode::ANDI, Opcode::SLTI,
                    Opcode::SLTIU, Opcode::SLLI, Opcode::SRLI, Opcode::SRAI, Opcode::MUL,
                    Opcode::MULH, Opcode::MULHU, Opcode::MULHSU}) {
    specs.push_back(synth::make_spec(op));
    synth::DriverOptions driver;
    driver.cegis.xlen = kXlen;
    driver.multiset_size = 3;
    driver.target_programs = 1;
    driver.max_seconds = 12.0;
    // Prefer full datapath separation: the program's output instruction
    // must differ from the original opcode (fall back if unattainable).
    driver.cegis.forbid_output_op = true;
    synth::HpfOptions hpf;
    auto r = synth::hpf_cegis(specs.back(), library, driver, hpf);
    if (r.programs.empty()) {
      driver.cegis.forbid_output_op = false;
      r = synth::hpf_cegis(specs.back(), library, driver, hpf);
    }
    if (!r.programs.empty()) {
      // Keep only programs the T bank can host.
      if (r.programs.front().temps_needed() <= 6) {
        table.add(isa::opcode_name(op), r.programs.front());
        ++covered;
        continue;
      }
    }
    std::printf("  (no usable equivalence for %s — excluded from EDSEP tests)\n",
                isa::opcode_name(op));
  }
  std::printf("table covers %u instructions\n\n", covered);

  Rng rng(2024);

  // --- healthy design: both transformations stay consistent ---
  unsigned eddi_ok = 0, edsep_ok = 0, edsep_total = 0;
  for (unsigned t = 0; t < num_tests; ++t) {
    const isa::Program orig =
        qed::random_original_program(rng, test_length, qed::QedMode::EddiV, true,
                                     kHalfBytes);
    const auto r = qed::run_qed_test(qed::eddi_v_transform(orig, kHalfBytes),
                                     qed::QedMode::EddiV, kXlen, kMemWords);
    eddi_ok += r.consistent;
  }
  for (unsigned t = 0; t < num_tests; ++t) {
    isa::Program orig = qed::random_original_program(
        rng, test_length, qed::QedMode::EdsepV, false, kHalfBytes);
    // Keep only instructions the table covers.
    isa::Program filtered;
    for (const isa::Instruction& inst : orig)
      if (table.first(isa::opcode_name(inst.op))) filtered.push_back(inst);
    if (filtered.empty()) continue;
    ++edsep_total;
    const auto r = qed::run_qed_test(qed::edsep_v_transform(filtered, table, kHalfBytes),
                                     qed::QedMode::EdsepV, kXlen, kMemWords);
    edsep_ok += r.consistent;
  }
  std::printf("healthy design : EDDI-V consistent on %u/%u tests, EDSEP-V on %u/%u\n",
              eddi_ok, num_tests, edsep_ok, edsep_total);

  // --- a uniform single-instruction bug: SUB result xor 4 ---
  const auto uniform_bug = [](const isa::Instruction& inst, const BitVec& correct) {
    if (inst.op != Opcode::SUB) return correct;
    return correct ^ BitVec(correct.width(), 4);
  };
  unsigned eddi_caught = 0, edsep_caught = 0, with_sub = 0;
  for (unsigned t = 0; t < num_tests; ++t) {
    isa::Program orig = qed::random_original_program(
        rng, test_length, qed::QedMode::EdsepV, false, kHalfBytes);
    isa::Program filtered;
    bool has_sub = false;
    for (const isa::Instruction& inst : orig)
      if (table.first(isa::opcode_name(inst.op))) {
        filtered.push_back(inst);
        has_sub |= inst.op == Opcode::SUB;
      }
    if (!has_sub) continue;
    ++with_sub;
    const auto re = qed::run_qed_test(qed::eddi_v_transform(filtered, kHalfBytes),
                                      qed::QedMode::EddiV, kXlen, kMemWords, uniform_bug);
    eddi_caught += !re.consistent;
    const auto rs = qed::run_qed_test(qed::edsep_v_transform(filtered, table, kHalfBytes),
                                      qed::QedMode::EdsepV, kXlen, kMemWords,
                                      uniform_bug);
    edsep_caught += !rs.consistent;
  }
  std::printf("uniform SUB bug: EDDI-V caught %u/%u, EDSEP-V caught %u/%u "
              "(the Table-1 gap, concretely)\n", eddi_caught, with_sub, edsep_caught,
              with_sub);

  // --- an asymmetric bug: only original-half destinations corrupted ---
  const auto asymmetric_bug = [](const isa::Instruction& inst, const BitVec& correct) {
    if (inst.op == Opcode::ADD && inst.rd < 13)
      return correct + BitVec(correct.width(), 1);
    return correct;
  };
  unsigned eddi_asym = 0, edsep_asym = 0, with_add = 0;
  for (unsigned t = 0; t < num_tests; ++t) {
    isa::Program orig = qed::random_original_program(
        rng, test_length, qed::QedMode::EdsepV, false, kHalfBytes);
    isa::Program filtered;
    bool has_add = false;
    for (const isa::Instruction& inst : orig)
      if (table.first(isa::opcode_name(inst.op))) {
        filtered.push_back(inst);
        has_add |= inst.op == Opcode::ADD;
      }
    if (!has_add) continue;
    ++with_add;
    const auto re = qed::run_qed_test(qed::eddi_v_transform(filtered, kHalfBytes),
                                      qed::QedMode::EddiV, kXlen, kMemWords,
                                      asymmetric_bug);
    eddi_asym += !re.consistent;
    const auto rs = qed::run_qed_test(qed::edsep_v_transform(filtered, table, kHalfBytes),
                                      qed::QedMode::EdsepV, kXlen, kMemWords,
                                      asymmetric_bug);
    edsep_asym += !rs.consistent;
  }
  std::printf("asymmetric bug : EDDI-V caught %u/%u, EDSEP-V caught %u/%u "
              "(both see sequence-dependent bugs)\n", eddi_asym, with_add, edsep_asym,
              with_add);
  return 0;
}
