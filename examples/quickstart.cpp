// quickstart — the five-minute tour of the library:
//
//   1. synthesize a program semantically equivalent to SUB with
//      HPF-CEGIS (the paper's Listing 1 comes out of this search);
//   2. prove the equivalence for ALL inputs with the in-repo SMT solver;
//   3. build the SEPE-SQED verification model (pipelined DUV + EDSEP-V
//      module) with an injected single-instruction bug;
//   4. model-check it and print the counterexample trace.
//
// Run:  ./examples/quickstart
#include <cstdio>

#include "bmc/bmc.hpp"
#include "proc/mutations.hpp"
#include "qed/qed_module.hpp"
#include "synth/cegis.hpp"

using namespace sepe;

int main() {
  // ------------------------------------------------------------------
  // 1. Synthesize semantically equivalent programs for SUB.
  // ------------------------------------------------------------------
  std::printf("=== 1. HPF-CEGIS synthesis for SUB ===\n");
  const auto library = synth::make_standard_library();  // 29 components (§4.1)
  const synth::SynthSpec spec = synth::make_spec(isa::Opcode::SUB);

  synth::DriverOptions driver;
  driver.cegis.xlen = 8;        // synthesis width (equivalences re-verify at any width)
  driver.multiset_size = 3;     // programs of >= 3 components (§6.1)
  driver.target_programs = 3;   // stop after k programs
  driver.max_seconds = 30.0;

  synth::HpfOptions hpf;  // weights 1, increment 1, alpha 1 — paper defaults
  const synth::SynthesisResult result = synth::hpf_cegis(spec, library, driver, hpf);
  std::printf("synthesized %zu equivalent programs in %.2fs (%u multisets tried)\n\n",
              result.programs.size(), result.seconds, result.multisets_tried);
  for (const synth::SynthProgram& p : result.programs)
    std::printf("%s\n--\n", p.to_string().c_str());
  if (result.programs.empty()) return 1;

  // ------------------------------------------------------------------
  // 2. Formal equivalence proof at the DUV width.
  //
  // Solved attribute constants (masks, multiplier tricks) are in general
  // only correct at the synthesis width, so before a program enters a
  // verification model it is re-proved at the model's datapath width —
  // here 4 bits. Programs that fail the re-proof are discarded.
  // ------------------------------------------------------------------
  constexpr unsigned kDuvXlen = 4;
  std::printf("\n=== 2. re-proving equivalence at the DUV width (%u bits) ===\n",
              kDuvXlen);
  const synth::SynthProgram* chosen = nullptr;
  for (const synth::SynthProgram& p : result.programs) {
    const bool valid = synth::verify_program(p, kDuvXlen);
    std::printf("program %s the %u-bit re-proof\n", valid ? "PASSES" : "fails", kDuvXlen);
    if (valid && !chosen) chosen = &p;
  }
  if (!chosen) {
    std::printf("no width-portable program found (increase k)\n");
    return 1;
  }

  // ------------------------------------------------------------------
  // 3. Build the SEPE-SQED model with an injected SUB bug.
  // ------------------------------------------------------------------
  std::printf("\n=== 3. SEPE-SQED model: DUV + EDSEP-V + injected SUB bug ===\n");
  proc::Mutation bug;
  for (proc::Mutation& m : proc::table1_single_instruction_bugs())
    if (m.target == isa::Opcode::SUB) bug = m;
  std::printf("bug: %s — %s\n", bug.name.c_str(), bug.description.c_str());

  synth::EquivalenceTable table;
  table.add("SUB", *chosen);

  smt::TermManager mgr;
  ts::TransitionSystem ts(mgr);
  proc::ProcConfig config;
  config.xlen = kDuvXlen;  // miniature datapath: the demo solves in milliseconds
  config.mem_words = 8;
  config.opcodes = {isa::Opcode::SUB, isa::Opcode::ADD, isa::Opcode::XORI,
                    isa::Opcode::XOR, isa::Opcode::OR, isa::Opcode::AND,
                    isa::Opcode::ADDI, isa::Opcode::SLL, isa::Opcode::SRL};

  qed::QedOptions qo;
  qo.mode = qed::QedMode::EdsepV;
  qo.equivalences = &table;
  qo.counter_bits = 3;
  const qed::QedModel model = qed::build_qed_model(ts, config, qo, &bug);
  (void)model;
  std::printf("transition system: %zu states, %zu inputs, %zu constraints\n",
              ts.states().size(), ts.inputs().size(), ts.constraints().size());

  // ------------------------------------------------------------------
  // 4. Bounded model checking.
  // ------------------------------------------------------------------
  std::printf("\n=== 4. BMC ===\n");
  bmc::Bmc checker(ts);
  bmc::BmcOptions bo;
  bo.max_bound = 10;
  const auto witness = checker.check(bo);
  if (!witness) {
    std::printf("no violation found up to bound %u (unexpected)\n", bo.max_bound);
    return 1;
  }
  std::printf("bug trace found at bound %u in %.2fs:\n\n%s\n", witness->length,
              checker.stats().seconds, bmc::witness_to_string(ts, *witness).c_str());
  std::printf("SEPE-SQED exposed a single-instruction bug that SQED's\n"
              "self-consistency property cannot see (paper Table 1).\n");
  return 0;
}
