#include "engine/verdict_cache.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/fault.hpp"
#include "util/json.hpp"
#include "util/parse.hpp"

namespace sepe::engine {

namespace {

/// One step ahead of the checkpoint format: bump whenever the key
/// derivation or the line layout changes, so entries written by an
/// older binary become unreachable instead of misread. v2: the per-job
/// memory ceiling (JobBudget::memory_limit_mb) joined the key — a
/// memory-capped Unknown must never be replayed as an uncapped verdict
/// (or vice versa). v3: the sharing width (JobBudget::share_clauses)
/// joined the key — sharing never changes a verdict, but keeping the
/// slots distinct keeps every cached row attributable to exactly one
/// budget configuration.
constexpr int kFormatVersion = 3;

std::uint64_t fnv1a(const char* data, std::size_t n,
                    std::uint64_t h = 1469598103934665603ull) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

/// Inverse of sepe::json_escape for the exact dialect it emits (plus the
/// standard short escapes, for forward compatibility). Returns false on
/// malformed input — a hand-edited line that de-syncs the quoting.
bool unescape(const std::string& s, std::size_t* pos, std::string* out) {
  std::size_t i = *pos;
  if (i >= s.size() || s[i] != '"') return false;
  ++i;
  out->clear();
  while (i < s.size()) {
    const char c = s[i++];
    if (c == '"') {
      *pos = i;
      return true;
    }
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (i >= s.size()) return false;
    const char esc = s[i++];
    switch (esc) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'b': out->push_back('\b'); break;
      case 'f': out->push_back('\f'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      case 't': out->push_back('\t'); break;
      case 'u': {
        if (i + 4 > s.size()) return false;
        unsigned code = 0;
        for (int k = 0; k < 4; ++k) {
          const char h = s[i++];
          code <<= 4;
          if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
          else return false;
        }
        if (code > 0x7f) return false;  // the writer only escapes control bytes
        out->push_back(static_cast<char>(code));
        break;
      }
      default: return false;
    }
  }
  return false;  // unterminated string
}

/// Positional scanner over a journal-line payload. The self-check digest
/// already guarantees the bytes are exactly what format_line emitted, so
/// the scan is strict: any deviation is corruption, not dialect drift.
struct Scanner {
  const std::string& s;
  std::size_t pos = 0;

  bool expect(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (s.compare(pos, n, lit) != 0) return false;
    pos += n;
    return true;
  }
  bool string_field(const char* name, std::string* out) {
    return expect(",\"") && expect(name) && expect("\":") && unescape(s, &pos, out);
  }
  bool u64_field(const char* name, std::uint64_t* out) {
    if (!expect(",\"") || !expect(name) || !expect("\":")) return false;
    const std::size_t start = pos;
    while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') ++pos;
    const auto v = parse_u64_strict(s.substr(start, pos - start));
    if (!v) return false;
    *out = *v;
    return true;
  }
};

bool verdict_by_name(const std::string& name, Verdict* out) {
  for (Verdict v : {Verdict::Falsified, Verdict::Proved, Verdict::BoundClean,
                    Verdict::Unknown}) {
    if (name == verdict_name(v)) {
      *out = v;
      return true;
    }
  }
  return false;
}

}  // namespace

std::string VerdictCache::journal_path(const std::string& dir) {
  return dir + "/verdicts.jsonl";
}

bool VerdictCache::cacheable(const JobSpec& job) {
  // Wall-capped verdicts depend on machine load (campaign.hpp's
  // determinism caveat); replaying one would present a load-dependent
  // answer as reproducible. Everything else — conflict budgets, bounds,
  // portfolio width, encoding — is deterministic and safe to reuse.
  return job.budget.max_seconds <= 0.0;
}

std::string VerdictCache::key_of(const JobSpec& job, const std::string& fingerprint) {
  // Same FNV-1a construction as the checkpoint spec digest (shard.cpp),
  // but per job and with the encoding tri-state *resolved*: nullopt and
  // an explicit request for the family default blast identically, so
  // they share verdicts.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix_byte = [&](unsigned char b) {
    h ^= b;
    h *= 1099511628211ull;
  };
  const auto mix_u64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) mix_byte(static_cast<unsigned char>(v >> (8 * i)));
  };
  const auto mix_string = [&](const std::string& s) {
    mix_u64(s.size());
    for (char c : s) mix_byte(static_cast<unsigned char>(c));
  };
  mix_string("sepe-verdict-v" + std::to_string(kFormatVersion));
  mix_string(fingerprint);
  mix_string(job.name);
  mix_string(job.provenance.family);
  mix_string(job.provenance.source);
  mix_u64(job.provenance.property);
  mix_string(job.provenance.content_digest);
  mix_string(job.provenance.mode);
  mix_u64(job.budget.max_bound);
  mix_u64(job.budget.max_k);
  mix_u64(job.budget.conflict_budget);
  // max_seconds deliberately not mixed: cacheable() refuses wall-capped
  // jobs outright, so every cached job has max_seconds == 0.
  mix_byte(job.budget.race_k_induction ? 1 : 0);
  mix_u64(job.budget.portfolio);
  mix_byte(job.budget.sequential_provers ? 1 : 0);
  mix_byte(job.budget.plaisted_greenbaum.value_or(false) ? 1 : 0);
  // A campaign solved by a different SAT engine is a different campaign:
  // mixing the backend makes stale entries *miss* (and re-solve) instead
  // of presenting one engine's verdict as the other's.
  mix_byte(static_cast<unsigned char>(job.budget.backend));
  // The memory ceiling changes what a job can conclude (campaign.hpp), so
  // capped and uncapped runs must never share a cache slot.
  mix_u64(job.budget.memory_limit_mb);
  // Sharing width: verdict-invariant, but a cached row should still be
  // attributable to exactly one budget configuration.
  mix_u64(job.budget.share_clauses);
  return hex16(h);
}

std::string VerdictCache::format_line(const std::string& key, const Entry& e) {
  std::ostringstream os;
  os << "{\"v\":" << kFormatVersion;
  os << ",\"key\":\"" << key << "\"";
  os << ",\"verdict\":\"" << verdict_name(e.verdict) << "\"";
  os << ",\"trace_length\":" << e.trace_length;
  os << ",\"proved_k\":" << e.proved_k;
  os << ",\"bad_label\":";
  json_escape(os, e.bad_label);
  os << ",\"note\":";
  json_escape(os, e.note);
  const std::string payload = os.str();
  const std::string check = hex16(fnv1a(payload.data(), payload.size()));
  return payload + ",\"check\":\"" + check + "\"}";
}

std::optional<std::pair<std::string, VerdictCache::Entry>> VerdictCache::parse_line(
    const std::string& line) {
  // Split off the trailing self-check. rfind, not find: an escaped note
  // could legitimately contain the delimiter bytes, the real check field
  // is always last.
  static constexpr char kCheck[] = ",\"check\":\"";
  constexpr std::size_t kCheckLen = sizeof kCheck - 1;
  const std::size_t at = line.rfind(kCheck);
  if (at == std::string::npos || line.size() != at + kCheckLen + 16 + 2 ||
      line.compare(line.size() - 2, 2, "\"}") != 0)
    return std::nullopt;
  const std::string recorded = line.substr(at + kCheckLen, 16);
  if (recorded != hex16(fnv1a(line.data(), at))) return std::nullopt;

  // The digest matched, so the payload is byte-exact format_line output;
  // parse it positionally and treat any surprise as corruption.
  const std::string payload = line.substr(0, at);
  Scanner sc{payload};
  std::uint64_t n = 0;
  std::string key, verdict;
  Entry e;
  if (!sc.expect("{\"v\":") ||
      !sc.expect(std::to_string(kFormatVersion).c_str()) ||
      !sc.string_field("key", &key) || key.size() != 16 ||
      !sc.string_field("verdict", &verdict) || !verdict_by_name(verdict, &e.verdict) ||
      !sc.u64_field("trace_length", &n))
    return std::nullopt;
  e.trace_length = static_cast<unsigned>(n);
  if (!sc.u64_field("proved_k", &n)) return std::nullopt;
  e.proved_k = static_cast<unsigned>(n);
  if (!sc.string_field("bad_label", &e.bad_label) ||
      !sc.string_field("note", &e.note) || sc.pos != payload.size())
    return std::nullopt;
  return std::make_pair(std::move(key), std::move(e));
}

std::unique_ptr<VerdictCache> VerdictCache::open(const std::string& dir,
                                                 std::string* error) {
  if (error) error->clear();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    if (error)
      *error = "cannot create cache directory '" + dir + "': " + ec.message();
    return nullptr;
  }

  std::unique_ptr<VerdictCache> cache(new VerdictCache());
  cache->path_ = journal_path(dir);

  std::ifstream in(cache->path_, std::ios::binary);
  if (!in) {
    if (std::filesystem::exists(cache->path_, ec)) {
      if (error) *error = "cannot read cache journal '" + cache->path_ + "'";
      return nullptr;
    }
    return cache;  // no journal yet — empty cache
  }
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    auto parsed = parse_line(line);
    if (!parsed) {
      // Corruption can only cost a miss, never a wrong verdict: the line
      // is diagnosed and dropped, and the slot will be re-solved (and
      // re-appended) by the run it would have served.
      std::fprintf(stderr,
                   "sepe: verdict cache: ignoring corrupt entry at %s:%zu "
                   "(self-check digest mismatch or truncated line)\n",
                   cache->path_.c_str(), lineno);
      ++cache->stats_.corrupt_lines;
      continue;
    }
    // Later entries win; duplicates are harmless (same key => same
    // verdict by construction, modulo which run appended first).
    cache->map_[parsed->first] = std::move(parsed->second);
    ++cache->stats_.entries_loaded;
  }
  return cache;
}

std::optional<VerdictCache::Entry> VerdictCache::lookup(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++stats_.lookups;
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  ++stats_.hits;
  return it->second;
}

void VerdictCache::append(const std::string& key, const Entry& e) {
  const std::string line = format_line(key, e) + "\n";
  const std::lock_guard<std::mutex> lock(mu_);
  if (!map_.emplace(key, e).second) return;  // already journaled
  ++stats_.appends;
  // Fault point "cache.append" (docs/ROBUSTNESS.md): torn truncates the
  // entry mid-line — the self-check digest catches it on the next load,
  // so injection exercises exactly the crash-mid-write window; fail and
  // enospc drop the write and take the diagnosed-once degraded path.
  std::size_t bytes = line.size();
  bool injected_failure = false;
  if (fault::armed()) {
    if (const auto action = fault::hit("cache.append")) {
      if (*action == fault::Action::Torn)
        bytes = line.size() / 2;
      else
        injected_failure = true;
    }
  }
  // One O_APPEND write per line: concurrent campaigns sharing the cache
  // directory (dispatcher workers) interleave whole entries, and a torn
  // final line from a crash fails its self-check and costs one miss.
  const int fd =
      injected_failure ? -1 : ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  bool ok = fd >= 0;
  if (ok) {
    ok = ::write(fd, line.data(), bytes) == static_cast<ssize_t>(line.size());
    ::close(fd);
  }
  if (!ok && !write_error_diagnosed_) {
    write_error_diagnosed_ = true;
    std::fprintf(stderr,
                 "sepe: verdict cache: cannot append to '%s'; verdicts from "
                 "this run will not be persisted\n",
                 path_.c_str());
  }
}

VerdictCache::Stats VerdictCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace sepe::engine
