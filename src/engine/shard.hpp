// shard.hpp — deterministic campaign sharding: the multi-host scale-out
// seam of the verification engine.
//
// The paper's experiment grid (instruction classes × QED modes ×
// mutations) is embarrassingly parallel across machines, not just across
// threads. This planner splits an expanded CampaignSpec into `count`
// disjoint shards so each can run as its own `sepe-run --shard I/N`
// process on any host, write its (stable) JSON report, and be merged
// back (CampaignReport::merge, `sepe-run merge`) into a report that is
// byte-identical to a single-process run of the whole spec.
//
// Determinism contract: shard membership depends only on the *stable job
// ids* (the job names, unique within a spec) — each id's lexicographic
// rank mod `count` picks its shard. The same spec therefore produces the
// same shard partition on every host and every rerun, the shards are
// balanced to within one job, and together they cover the expanded job
// list exactly (no overlap, no gaps).
//
// Checkpoint/resume: a shard run can journal every finished job to a
// report file (rewritten atomically after each completion); rerunning
// the same shard against that file re-executes only the unfinished jobs
// and re-emits the same report.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "engine/campaign.hpp"

namespace sepe::engine {

/// Parse "I/N" (e.g. "2/4") into a ShardSpec. Requires 0 <= I < N and
/// N >= 1; returns false and sets *error on malformed or out-of-range
/// input.
bool parse_shard(const std::string& text, ShardSpec* out, std::string* error);

/// Shard assignment for a list of stable job ids: result[i] is the shard
/// of ids[i], computed as the id's lexicographic rank mod `count`.
/// Depends only on the id multiset, so it is reproducible anywhere.
/// `count` must be >= 1; ids are expected to be unique (the planner
/// rejects duplicates before calling this).
std::vector<unsigned> shard_assignment(const std::vector<std::string>& ids,
                                       unsigned count);

/// One shard's slice of a full campaign.
struct ShardPlan {
  CampaignSpec spec;  // the shard's jobs, in full-spec order
  std::vector<std::size_t> spec_indices;  // full-spec index of each job
  std::uint64_t total_jobs = 0;           // job count of the full spec
  std::string error;                      // non-empty = plan invalid

  bool ok() const { return error.empty(); }
};

/// Deterministically select shard `shard.index` of `shard.count` from
/// the expanded spec. Fails (ShardPlan::error) on an out-of-range shard
/// or on duplicate job names — names are the stable ids the partition
/// and the merge key on.
ShardPlan plan_shard(const CampaignSpec& full, const ShardSpec& shard);

/// Options for a sharded (and/or checkpointed) campaign run.
struct ShardRunOptions {
  /// Worker pool configuration. pool.on_job_done, if set, is called with
  /// positions in the *full* spec handed to run_sharded; jobs resumed
  /// from a checkpoint do not re-fire it.
  CampaignOptions pool;
  /// Which slice to run; nullopt = the whole spec (the report then
  /// carries no shard metadata, exactly as a plain run_campaign).
  std::optional<ShardSpec> shard;
  /// When non-empty: resume finished jobs from this report file if it
  /// exists (validated against the spec's seed, shard, and a digest of
  /// the job names and budgets), and rewrite it atomically after every
  /// completed job. Resumed jobs keep their recorded verdicts; only
  /// their witness text (never serialized) is lost.
  std::string checkpoint_path;
  /// Extra campaign parameters folded into the checkpoint digest that
  /// the JobSpecs cannot expose themselves (their model builders are
  /// opaque) — e.g. sepe-run contributes the DUV xlen. A checkpoint
  /// recorded under a different fingerprint is refused on resume.
  std::string fingerprint;
  /// When non-empty: a campaign verdict-cache directory (sepe-run
  /// --cache DIR; engine/verdict_cache.hpp). Jobs whose key is already
  /// journaled there are served from the cache (JobResult::from_cache,
  /// zero solver counters, no on_job_done callback — same contract as
  /// checkpoint-resumed jobs); freshly solved cacheable jobs are
  /// appended. Unlike the checkpoint, the cache is shared across
  /// campaigns and shards — keys embed the fingerprint and the full job
  /// identity, so unrelated runs simply miss. An unusable directory is
  /// a hard error; a corrupt journal entry is only ever a miss.
  std::string cache_dir;
};

/// Run one shard of the campaign with optional checkpoint/resume. On
/// invalid input (bad shard, duplicate job names, or a checkpoint file
/// that is unreadable or inconsistent with this spec/shard) returns an
/// empty report and sets *error.
CampaignReport run_sharded(const CampaignSpec& full, const ShardRunOptions& options,
                           std::string* error);

}  // namespace sepe::engine
