#include "engine/workload.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <sstream>

#include "engine/report_io.hpp"
#include "synth/encoding.hpp"
#include "ts/btor2_parser.hpp"

namespace sepe::engine {

std::optional<CampaignSpec> expand_source(const JobSource& source, std::uint64_t seed,
                                          std::string* error) {
  CampaignSpec spec;
  spec.seed = seed;
  if (!source.expand(&spec.jobs, error)) return std::nullopt;
  return spec;
}

// --- QED family ---

const char* mode_tag(qed::QedMode mode) {
  return mode == qed::QedMode::EddiV ? "EDDI-V" : "EDSEP-V";
}

JobSpec make_qed_job(std::string name, qed::QedMode mode, const proc::ProcConfig& config,
                     std::optional<proc::Mutation> mutation,
                     const synth::EquivalenceTable* equivalences, const JobBudget& budget,
                     unsigned queue_capacity, unsigned counter_bits) {
  assert((mode != qed::QedMode::EdsepV || equivalences != nullptr) &&
         "EDSEP-V requires an equivalence table");
  JobSpec job;
  job.name = std::move(name);
  job.provenance.family = kQedFamily;
  job.provenance.mode = mode_tag(mode);
  job.provenance.source = mutation ? mutation->name : "healthy";
  job.budget = budget;
  job.build = [mode, config, mutation = std::move(mutation), equivalences,
               queue_capacity, counter_bits](ts::TransitionSystem& ts, std::string*) {
    qed::QedOptions qo;
    qo.mode = mode;
    qo.queue_capacity = queue_capacity;
    qo.counter_bits = counter_bits;
    qo.equivalences = equivalences;
    qed::build_qed_model(ts, config, qo, mutation ? &*mutation : nullptr);
    return true;
  };
  return job;
}

std::vector<isa::Opcode> replay_opcodes(const synth::EquivalenceTable& table,
                                        isa::Opcode op) {
  const bool memory = isa::is_load(op) || isa::is_store(op);
  const std::string key =
      memory ? std::string(isa::opcode_name(op)) + "_ADDR" : isa::opcode_name(op);
  std::vector<isa::Opcode> ops;
  const synth::SynthProgram* prog = table.first(key);
  if (!prog) return ops;
  const auto push_unique = [&](isa::Opcode o) {
    for (isa::Opcode existing : ops)
      if (existing == o) return;
    ops.push_back(o);
  };
  for (const synth::SynthLine& line : prog->lines)
    for (const synth::ExpansionInstr& e : line.comp->expansion) push_unique(e.op);
  if (memory) push_unique(op);
  return ops;
}

proc::ProcConfig derive_duv_config(const CampaignMatrix& matrix,
                                   const proc::Mutation* mutation) {
  assert(matrix.xlen >= 2 && "DUV datapath needs at least 2 bits");
  proc::ProcConfig config;
  config.xlen = std::max(2u, matrix.xlen);
  // Largest power-of-two memory the address space supports (cap at the
  // requested size) — mirrors the Table-1 bench sizing.
  config.mem_words = config.xlen >= 5
                         ? matrix.mem_words
                         : std::min(matrix.mem_words, 1u << (config.xlen - 2));
  const auto add = [&](isa::Opcode op) {
    if (!config.supports(op)) config.opcodes.push_back(op);
  };
  if (mutation && mutation->target != isa::Opcode::NOP) add(mutation->target);
  for (isa::Opcode op : matrix.extra_opcodes) add(op);
  // The DUV must also implement every opcode the EDSEP replays of its
  // instructions issue.
  if (matrix.equivalences) {
    for (isa::Opcode base : std::vector<isa::Opcode>(config.opcodes))
      for (isa::Opcode op : replay_opcodes(*matrix.equivalences, base)) add(op);
  }
  return config;
}

bool QedMatrixSource::expand(std::vector<JobSpec>* out, std::string* error) const {
  if (error) error->clear();
  const auto add_jobs_for = [&](const proc::Mutation* mutation,
                                const std::string& base) {
    const proc::ProcConfig config = derive_duv_config(matrix_, mutation);
    for (qed::QedMode mode : matrix_.modes) {
      out->push_back(make_qed_job(
          base + "/" + mode_tag(mode), mode, config,
          mutation ? std::optional<proc::Mutation>(*mutation) : std::nullopt,
          matrix_.equivalences, matrix_.budget, matrix_.queue_capacity,
          matrix_.counter_bits));
    }
  };

  if (matrix_.mutations.empty()) {
    add_jobs_for(nullptr, "healthy");
  } else {
    for (const proc::Mutation& m : matrix_.mutations) add_jobs_for(&m, m.name);
  }
  return true;
}

CampaignSpec expand(const CampaignMatrix& matrix, std::uint64_t seed) {
  CampaignSpec spec;
  spec.seed = seed;
  std::string error;
  [[maybe_unused]] const bool ok = QedMatrixSource(matrix).expand(&spec.jobs, &error);
  assert(ok && "matrix expansion cannot fail");
  return spec;
}

// --- BTOR2 corpus family ---

namespace {

/// FNV-1a of the file bytes, as 16 hex digits. The per-file content
/// fingerprint the checkpoint spec digest covers.
std::string content_digest_of(const std::string& text) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx", static_cast<unsigned long long>(h));
  return hex;
}

/// Count `<id> bad <cond>` lines with the parser's own tokenization
/// (comment stripped first), so the fan-out matches what parse_btor2
/// will see. Garbled files just miscount into >= 1 job whose build then
/// reports the real diagnostic.
unsigned count_bad_properties(const std::string& text) {
  std::istringstream in(text);
  std::string raw;
  unsigned n = 0;
  while (std::getline(in, raw)) {
    const std::size_t semi = raw.find(';');
    if (semi != std::string::npos) raw = raw.substr(0, semi);
    std::istringstream ls(raw);
    std::string id, kw;
    if (ls >> id >> kw && kw == "bad") ++n;
  }
  return n;
}

}  // namespace

bool Btor2CorpusSource::expand(std::vector<JobSpec>* out, std::string* error) const {
  namespace fs = std::filesystem;
  if (error) error->clear();
  const auto fail = [&](std::string what) {
    if (error && error->empty()) *error = std::move(what);
    return false;
  };

  std::error_code ec;
  if (!fs::is_directory(directory_, ec) || ec)
    return fail("corpus '" + directory_ + "' is not a readable directory");

  // Deterministic enumeration: relative paths with '/' separators,
  // sorted, so job names (= shard/merge ids) are identical on any host.
  std::vector<std::string> files;
  for (fs::recursive_directory_iterator it(directory_, ec), end;
       !ec && it != end; it.increment(ec)) {
    std::error_code file_ec;
    if (!it->is_regular_file(file_ec) || file_ec) continue;
    if (it->path().extension() != ".btor2") continue;
    files.push_back(fs::relative(it->path(), directory_, file_ec).generic_string());
  }
  if (ec) return fail("cannot enumerate corpus '" + directory_ + "': " + ec.message());
  std::sort(files.begin(), files.end());
  if (files.empty())
    return fail("corpus '" + directory_ + "' contains no .btor2 files");

  for (const std::string& rel : files) {
    const std::string path = (fs::path(directory_) / rel).string();
    const auto text = read_text_file(path);
    // Unreadable at expansion time is a setup error, not a model error:
    // without the bytes there is nothing to hash, so a checkpoint could
    // not tell this corpus from an edited one.
    if (!text) return fail("cannot read corpus file '" + rel + "'");
    const std::string digest = content_digest_of(*text);
    const unsigned properties = std::max(1u, count_bad_properties(*text));
    for (unsigned p = 0; p < properties; ++p) {
      JobSpec job;
      job.name = rel + ":b" + std::to_string(p);
      job.provenance.family = kBtor2Family;
      job.provenance.source = rel;
      job.provenance.property = p;
      job.provenance.content_digest = digest;
      job.provenance.mode.clear();
      job.budget = budget_;
      // The family's encoding default: Plaisted–Greenbaum wins on BTOR2
      // corpora (−11% conflicts on the committed mini-corpus), unlike
      // on the native QED models — see JobBudget::plaisted_greenbaum.
      if (!job.budget.plaisted_greenbaum) job.budget.plaisted_greenbaum = true;
      // The worker re-reads and re-parses the file itself: the campaign
      // never holds a whole corpus resident (a sharded run of a large
      // corpus would otherwise pin every file's bytes in every process),
      // and the digest check turns a file edited mid-run into a
      // deterministic diagnostic row instead of a silent drift between
      // what was hashed and what was verified.
      job.build = [path, digest, p](ts::TransitionSystem& ts,
                                    std::string* build_error) {
        const auto bytes = read_text_file(path);
        if (!bytes) {
          *build_error = "corpus file vanished or became unreadable";
          return false;
        }
        if (content_digest_of(*bytes) != digest) {
          *build_error = "corpus file changed since campaign expansion "
                         "(content digest mismatch)";
          return false;
        }
        const ts::Btor2ParseResult r = ts::parse_btor2(*bytes, ts);
        if (!r.ok) {
          *build_error = r.error;
          return false;
        }
        if (ts.bads().empty()) {
          *build_error = "no bad property to check";
          return false;
        }
        if (p >= ts.bads().size()) {
          *build_error = "bad-property index " + std::to_string(p) +
                         " out of range (file has " +
                         std::to_string(ts.bads().size()) + ")";
          return false;
        }
        if (ts.bads().size() > 1) ts.retain_bad(p);
        return true;
      };
      out->push_back(std::move(job));
    }
  }
  return true;
}

}  // namespace sepe::engine
