#include "engine/campaign.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <thread>

#include "engine/witness.hpp"
#include "util/fault.hpp"
#include "util/json.hpp"
#include "util/stopwatch.hpp"

namespace sepe::engine {

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::Falsified: return "FALSIFIED";
    case Verdict::Proved: return "PROVED";
    case Verdict::BoundClean: return "BOUND_CLEAN";
    case Verdict::Unknown: return "UNKNOWN";
  }
  return "?";
}

const char* prover_name(Prover p) {
  switch (p) {
    case Prover::None: return "none";
    case Prover::Bmc: return "bmc";
    case Prover::KInduction: return "k-induction";
  }
  return "?";
}

namespace {

/// Outcome of one prover inside the race.
struct BmcSide {
  bool ran = false;
  std::optional<bmc::Witness> found;
  bmc::BmcStats stats;
  std::string witness_text;
  std::string bad_label;
  std::string build_error;  // non-empty: the model never built
  /// Index-ordered trace for the witness post-pass, extracted while the
  /// job-local TransitionSystem is still alive (the bmc::Witness itself
  /// is keyed on that system's TermManager and dies with it).
  std::shared_ptr<const WitnessTrace> trace;
};

struct KindSide {
  bool ran = false;
  bmc::KInductionResult result;
  std::string witness_text;
  std::string bad_label;
  std::string build_error;
  std::shared_ptr<const WitnessTrace> trace;
};

constexpr int kClaimNone = -1;

/// Re-derive the canonical witness of a falsified job with the
/// default-config BMC sweep. A witness found by a non-default portfolio
/// member is model-shaped by that member's heuristics; replaying the
/// deterministic default sweep up to the (member-independent) minimal
/// violation length reproduces exactly the trace a single-config run
/// reports, keeping reports byte-deterministic whatever the portfolio
/// width. Costs one default-config sweep, paid only on falsified jobs.
/// The replay deliberately runs without the job's budgets: the bound is
/// known SAT, and a claimed violation whose witness cannot be read back
/// is worse than a slightly-overspent cap (same rationale as the old
/// model-extension budget lift).
void canonical_witness(const JobSpec& job, unsigned length,
                       const std::shared_ptr<smt::ConeCache>& cone_cache,
                       BmcSide* out) {
  smt::TermManager mgr;
  ts::TransitionSystem ts(mgr);
  std::string build_error;
  [[maybe_unused]] const bool built = job.build(ts, &build_error);
  assert(built && "a job that produced a witness must rebuild");
  // Same encoding as a default single-config run: the canonical trace is
  // the one that run reports. The replay always uses the native backend —
  // an external engine's model is solver-shaped, and re-deriving it here
  // is what keeps stable reports backend-independent.
  bmc::Bmc checker(ts, sat::SolverConfig{},
                   job.budget.plaisted_greenbaum.value_or(false), cone_cache);
  bmc::BmcOptions bo;
  bo.max_bound = length;
  out->found = checker.check(bo);
  assert(out->found && out->found->length == length &&
         "canonical replay must reproduce the claimed violation");
  // Unbudgeted replay of a known-SAT bound cannot fail; still, never
  // dereference an empty optional in Release if that invariant breaks.
  if (!out->found) return;
  out->witness_text = bmc::witness_to_string(ts, *out->found);
  out->bad_label = out->found->bad_label;
  out->trace = std::make_shared<const WitnessTrace>(extract_trace(ts, *out->found));
}

/// Sum the deterministic work counters of both prover stacks into the
/// result (sequential mode: nothing was cancelled, so this is the
/// deterministic total-work proxy the perf trajectory tracks).
void tally_sequential_counters(const BmcSide& b, const KindSide& k, JobResult* r) {
  r->conflicts = b.stats.solver_conflicts;
  r->propagations = b.stats.solver_propagations;
  r->decisions = b.stats.solver_decisions;
  r->cnf_vars = b.stats.cnf_vars;
  r->cnf_clauses = b.stats.cnf_clauses;
  r->cone_lookups = b.stats.cone_lookups;
  r->cone_hits = b.stats.cone_hits;
  r->cone_clauses_replayed = b.stats.cone_clauses_replayed;
  r->eliminated_vars = b.stats.eliminated_vars;
  r->subsumed_clauses = b.stats.subsumed_clauses;
  r->vivified_clauses = b.stats.vivified_clauses;
  r->hit_memory_limit = b.stats.hit_memory_limit;
  r->sat_retries = b.stats.sat_retries;
  r->clauses_exported = b.stats.clauses_exported;
  r->clauses_imported = b.stats.clauses_imported;
  r->vault_hits = b.stats.vault_hits;
  if (k.ran) {
    r->conflicts += k.result.solver_conflicts;
    r->propagations += k.result.solver_propagations;
    r->decisions += k.result.solver_decisions;
    r->cnf_vars += k.result.cnf_vars;
    r->cnf_clauses += k.result.cnf_clauses;
    r->cone_lookups += k.result.cone_lookups;
    r->cone_hits += k.result.cone_hits;
    r->cone_clauses_replayed += k.result.cone_clauses_replayed;
    r->eliminated_vars += k.result.eliminated_vars;
    r->subsumed_clauses += k.result.subsumed_clauses;
    r->vivified_clauses += k.result.vivified_clauses;
    r->hit_memory_limit = r->hit_memory_limit || k.result.hit_memory_limit;
    r->sat_retries += k.result.sat_retries;
    r->clauses_exported += k.result.clauses_exported;
    r->clauses_imported += k.result.clauses_imported;
    r->vault_hits += k.result.vault_hits;
  }
}

}  // namespace

JobResult run_job(const JobSpec& job,
                  const std::shared_ptr<smt::ConeCache>& cone_cache,
                  const std::shared_ptr<sat::ClauseVault>& clause_vault) {
  assert(job.build && "JobSpec needs a model builder");
  Stopwatch clock;
  JobResult r;
  r.name = job.name;
  r.provenance = job.provenance;

  const bool with_kind = job.budget.race_k_induction && job.budget.max_k > 0;
  // Workload families resolve their encoding default at expansion; a
  // spec-level nullopt means plain Tseitin.
  const bool plaisted_greenbaum = job.budget.plaisted_greenbaum.value_or(false);

  // Clause sharing. Disabled under conflict budgets and memory ceilings:
  // an implied import can never change a verdict, but it CAN change when
  // a budget trips, and in race mode pool content is timing-dependent —
  // so a budget-capped job with sharing on could flip between Unknown and
  // definite run to run. Without budgets, imports only shortcut searches
  // whose answers are already fixed.
  const unsigned share_cap =
      (job.budget.conflict_budget != 0 || job.budget.memory_limit_mb != 0)
          ? 0
          : job.budget.share_clauses;
  // Sequential mode runs one entrant per prover — except with sharing on,
  // where extra portfolio entrants become epoch-synchronized helpers: they
  // run to completion FIRST, exporting their learnts to the vault under
  // every epoch of the (identical) blast chain, and entrant 0 then imports
  // them at the matching epochs. This is the deterministic mirror of the
  // racing portfolio: job counters report entrant 0's path either way (a
  // race never counts the losers' work), so the conflict saving from
  // cross-pollination lands in the perf trajectory bit-reproducibly.
  const unsigned portfolio =
      job.budget.sequential_provers
          ? (share_cap != 0 ? std::max(1u, job.budget.portfolio) : 1)
          : std::max(1u, job.budget.portfolio);
  // Tier 1, intra-job: one exchange pool for every entrant of both
  // provers. Sequential mode skips it (one solver stack lives at a time;
  // the vault already carries clauses between them deterministically).
  std::unique_ptr<sat::ClauseExchange> exchange;
  if (share_cap != 0 && !job.budget.sequential_provers)
    exchange = std::make_unique<sat::ClauseExchange>();
  // Tier 2, cross-job: the campaign vault.
  sat::ClauseVault* vault = share_cap != 0 ? clause_vault.get() : nullptr;

  // Entrants: `portfolio` BMC sweeps and (optionally) `portfolio`
  // k-induction runs, each on its own solver configuration. Entrant 0 of
  // each prover is always the default configuration.
  std::vector<BmcSide> bsides(portfolio);
  std::vector<KindSide> ksides(with_kind ? portfolio : 0);

  // The race state: the first entrant with a *definite* verdict
  // (counterexample or proof) claims the job and raises the stop flag the
  // losers' CDCL loops poll. Indefinite outcomes (clean sweep, exhausted
  // max_k, budget) never cancel anyone — that is what keeps verdicts
  // deterministic across thread counts.
  std::atomic<bool> stop{false};
  std::atomic<int> claim{kClaimNone};
  const auto try_claim = [&](int who) {
    int expected = kClaimNone;
    if (claim.compare_exchange_strong(expected, who)) {
      stop.store(true, std::memory_order_release);
      return true;
    }
    return false;
  };

  const auto bmc_prover = [&](unsigned idx, const std::atomic<bool>* stop_flag) {
    BmcSide& side = bsides[idx];
    side.ran = true;
    smt::TermManager mgr;
    ts::TransitionSystem ts(mgr);
    // Build failures (e.g. a corpus file that does not parse) are
    // deterministic: every entrant fails identically, so recording the
    // diagnostic and returning leaves the race with no claimant and the
    // job reports Unknown with the note attached.
    if (!job.build(ts, &side.build_error)) return;
    sat::SolverConfig cfg = sat::SolverConfig::portfolio_member(idx);
    cfg.memory_limit_mb = job.budget.memory_limit_mb;
    bmc::Bmc checker(ts, cfg, plaisted_greenbaum, cone_cache, job.budget.backend,
                     sat::SharingContext{exchange.get(), vault, idx, share_cap});
    bmc::BmcOptions bo;
    bo.max_bound = job.budget.max_bound;
    bo.conflict_budget_per_bound = job.budget.conflict_budget;
    bo.max_seconds = job.budget.max_seconds;
    bo.stop = stop_flag;
    side.found = checker.check(bo);
    side.stats = checker.stats();
    if (side.found && (!stop_flag || try_claim(static_cast<int>(idx)))) {
      // The native default-config witness is already canonical; any other
      // winner's trace is re-derived after the join (canonical_witness).
      // Sharing disqualifies the direct read-back too: imports steer the
      // model toward whatever the pool happened to contain.
      if (idx == 0 && job.budget.backend == sat::BackendKind::Native &&
          share_cap == 0) {
        side.witness_text = bmc::witness_to_string(ts, *side.found);
        side.bad_label = side.found->bad_label;
        side.trace =
            std::make_shared<const WitnessTrace>(extract_trace(ts, *side.found));
      }
    }
  };

  const auto kind_prover = [&](unsigned idx, const std::atomic<bool>* stop_flag) {
    KindSide& side = ksides[idx];
    side.ran = true;
    smt::TermManager mgr;
    ts::TransitionSystem ts(mgr);
    if (!job.build(ts, &side.build_error)) return;
    bmc::KInductionOptions ko;
    ko.max_k = job.budget.max_k;
    ko.conflict_budget = job.budget.conflict_budget;
    ko.max_seconds = job.budget.max_seconds;
    ko.stop = stop_flag;
    ko.solver_config = sat::SolverConfig::portfolio_member(idx);
    ko.solver_config.memory_limit_mb = job.budget.memory_limit_mb;
    ko.plaisted_greenbaum = plaisted_greenbaum;
    ko.cone_cache = cone_cache;
    ko.backend = job.budget.backend;
    // Members `portfolio + 2*idx` (base Bmc) and `+1` (inductive window):
    // disjoint from the BMC entrants' 0..portfolio-1 and from each other.
    ko.sharing =
        sat::SharingContext{exchange.get(), vault, portfolio + 2 * idx, share_cap};
    side.result = bmc::prove_by_k_induction(ts, ko);
    if (side.result.status != bmc::KInductionStatus::Unknown &&
        (!stop_flag || try_claim(static_cast<int>(portfolio + idx)))) {
      if (side.result.witness && idx == 0 &&
          job.budget.backend == sat::BackendKind::Native && share_cap == 0) {
        side.witness_text = bmc::witness_to_string(ts, *side.result.witness);
        side.bad_label = side.result.witness->bad_label;
        side.trace = std::make_shared<const WitnessTrace>(
            extract_trace(ts, *side.result.witness));
      }
    }
  };

  if (job.budget.sequential_provers) {
    // Deterministic perf mode: both provers run to completion on the
    // calling thread, nothing is cancelled, and the claim arbitration is
    // by fixed order (BMC's counterexample first, else k-induction's
    // verdict) — which yields exactly the verdict fields the race
    // produces, with fully reproducible work counters on top. Helper
    // entrants (1..N-1, sharing only) go first so the vault is warm by
    // the time entrant 0 — whose counters the job reports — runs.
    for (unsigned e = 1; e < portfolio; ++e) bmc_prover(e, nullptr);
    bmc_prover(0, nullptr);
    if (bsides[0].found) {
      claim.store(0);
    } else if (with_kind && bsides[0].build_error.empty()) {
      for (unsigned e = 1; e < portfolio; ++e) kind_prover(e, nullptr);
      kind_prover(0, nullptr);
      if (ksides[0].result.status != bmc::KInductionStatus::Unknown)
        claim.store(static_cast<int>(portfolio));
    }
  } else {
    const unsigned entrants = portfolio + (with_kind ? portfolio : 0);
    std::vector<std::thread> others;
    others.reserve(entrants - 1);
    for (unsigned e = 1; e < entrants; ++e) {
      if (e < portfolio) {
        others.emplace_back([&, e] { bmc_prover(e, &stop); });
      } else {
        others.emplace_back([&, e] { kind_prover(e - portfolio, &stop); });
      }
    }
    bmc_prover(0, &stop);
    for (std::thread& t : others) t.join();
  }

  const auto any_loser_cancelled = [&](int who) {
    for (unsigned i = 0; i < bsides.size(); ++i)
      if (bsides[i].ran && static_cast<int>(i) != who && bsides[i].stats.cancelled)
        return true;
    for (unsigned i = 0; i < ksides.size(); ++i)
      if (ksides[i].ran && static_cast<int>(portfolio + i) != who &&
          ksides[i].result.cancelled)
        return true;
    return false;
  };

  r.bmc_bounds_checked = bsides[0].stats.bounds_checked;
  const int who = claim.load(std::memory_order_acquire);
  if (!bsides[0].build_error.empty()) {
    // The model never built (deterministically — every entrant sees the
    // same source), so there is nothing a prover could have decided.
    // Report the diagnostic instead of aborting the campaign.
    r.verdict = Verdict::Unknown;
    r.note = bsides[0].build_error;
  } else if (who >= 0 && who < static_cast<int>(portfolio)) {
    BmcSide& side = bsides[who];
    r.verdict = Verdict::Falsified;
    r.winner = Prover::Bmc;
    r.trace_length = side.found->length;
    if (who != 0 || job.budget.backend != sat::BackendKind::Native ||
        share_cap != 0)
      canonical_witness(job, side.found->length, cone_cache, &side);
    r.bad_label = side.bad_label;
    r.witness = side.witness_text;
    r.trace = side.trace;
    r.conflicts = side.stats.solver_conflicts;
    r.propagations = side.stats.solver_propagations;
    r.decisions = side.stats.solver_decisions;
    r.cnf_vars = side.stats.cnf_vars;
    r.cnf_clauses = side.stats.cnf_clauses;
    r.cone_lookups = side.stats.cone_lookups;
    r.cone_hits = side.stats.cone_hits;
    r.cone_clauses_replayed = side.stats.cone_clauses_replayed;
    r.eliminated_vars = side.stats.eliminated_vars;
    r.subsumed_clauses = side.stats.subsumed_clauses;
    r.vivified_clauses = side.stats.vivified_clauses;
    r.clauses_exported = side.stats.clauses_exported;
    r.clauses_imported = side.stats.clauses_imported;
    r.vault_hits = side.stats.vault_hits;
    r.loser_cancelled = any_loser_cancelled(who);
    if (job.budget.sequential_provers)
      tally_sequential_counters(bsides[0], ksides.empty() ? KindSide{} : ksides[0],
                                &r);
  } else if (who >= static_cast<int>(portfolio)) {
    const unsigned idx = static_cast<unsigned>(who) - portfolio;
    KindSide& side = ksides[idx];
    r.winner = Prover::KInduction;
    r.conflicts = side.result.solver_conflicts;
    r.propagations = side.result.solver_propagations;
    r.decisions = side.result.solver_decisions;
    r.cnf_vars = side.result.cnf_vars;
    r.cnf_clauses = side.result.cnf_clauses;
    r.cone_lookups = side.result.cone_lookups;
    r.cone_hits = side.result.cone_hits;
    r.cone_clauses_replayed = side.result.cone_clauses_replayed;
    r.eliminated_vars = side.result.eliminated_vars;
    r.subsumed_clauses = side.result.subsumed_clauses;
    r.vivified_clauses = side.result.vivified_clauses;
    r.clauses_exported = side.result.clauses_exported;
    r.clauses_imported = side.result.clauses_imported;
    r.vault_hits = side.result.vault_hits;
    r.loser_cancelled = any_loser_cancelled(who);
    if (side.result.status == bmc::KInductionStatus::Falsified) {
      r.verdict = Verdict::Falsified;
      r.trace_length = side.result.witness ? side.result.witness->length : 0;
      if ((idx != 0 || job.budget.backend != sat::BackendKind::Native ||
           share_cap != 0) &&
          side.result.witness) {
        BmcSide canon;
        canonical_witness(job, side.result.witness->length, cone_cache, &canon);
        side.witness_text = canon.witness_text;
        side.bad_label = canon.bad_label;
        side.trace = canon.trace;
      }
      r.bad_label = side.bad_label;
      r.witness = side.witness_text;
      r.trace = side.trace;
    } else {
      r.verdict = Verdict::Proved;
      r.proved_k = side.result.k;
    }
    if (job.budget.sequential_provers)
      tally_sequential_counters(bsides[0], ksides[0], &r);
  } else {
    // No definite verdict from any entrant. A completed BMC sweep is
    // itself a definite bounded result (BoundClean) even when the
    // induction side ran out of budget — only BMC's own budgets can
    // demote the verdict to Unknown. This keeps verdicts deterministic
    // under (deterministic) conflict budgets: a budget-truncated
    // k-induction run never changes the verdict, it only loses the
    // chance to upgrade it to Proved.
    tally_sequential_counters(bsides[0], ksides.empty() ? KindSide{} : ksides[0], &r);
    if (bsides[0].stats.hit_resource_limit || bsides[0].stats.cancelled) {
      r.verdict = Verdict::Unknown;
      r.hit_resource_limit = true;
      // A memory-ceiling trip is deterministic for a fixed spec and
      // budget, so the diagnosis belongs in the stable form: the Unknown
      // row explains itself (docs/ROBUSTNESS.md).
      if (r.hit_memory_limit) r.note = "resource: memory";
    } else {
      r.verdict = Verdict::BoundClean;
      r.hit_resource_limit = !ksides.empty() && ksides[0].ran &&
                             ksides[0].result.hit_resource_limit;
    }
  }
  r.seconds = clock.seconds();
  return r;
}

CampaignReport run_campaign(const CampaignSpec& spec, const CampaignOptions& options) {
  Stopwatch clock;
  unsigned threads =
      options.threads != 0 ? options.threads : std::thread::hardware_concurrency();
  threads = std::max<std::size_t>(
      1, std::min<std::size_t>(threads, spec.jobs.empty() ? 1 : spec.jobs.size()));

  CampaignReport report;
  report.seed = spec.seed;
  report.threads = threads;
  report.jobs.resize(spec.jobs.size());

  // Every job of the campaign shares one cone store: identical cones
  // blast once, replay everywhere. Replay is exact (cone_cache.hpp), so
  // this cannot perturb the determinism contract.
  const std::shared_ptr<smt::ConeCache> cone_cache =
      options.cone_cache ? options.cone_cache : std::make_shared<smt::ConeCache>();

  // Likewise one learnt-clause vault (sat/exchange.hpp): clauses learnt
  // under a cone digest in one job seed every later job that blasts the
  // same cone chain. Imports are implied clauses, so — like cone replay —
  // this cannot perturb verdicts; it only shortcuts searches.
  const std::shared_ptr<sat::ClauseVault> clause_vault =
      options.clause_vault ? options.clause_vault
                           : std::make_shared<sat::ClauseVault>();

  // Work queue: an atomic cursor over the job list. Each worker pops the
  // next index and runs the job in full isolation; results land in spec
  // order so the report is independent of scheduling.
  std::atomic<std::size_t> next{0};
  const auto worker = [&]() {
    for (;;) {
      // Crash-only envelope: once SIGTERM/SIGINT raised the global stop,
      // claim no further jobs — in-flight ones wind down via the solver
      // stop poll, finished ones are already journaled, and the caller
      // flushes a resumable checkpoint (docs/ROBUSTNESS.md).
      if (fault::global_stop_requested()) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= spec.jobs.size()) return;
      report.jobs[i] = run_job(spec.jobs[i], cone_cache, clause_vault);
      report.jobs[i].spec_index = i;
      // Witness post-pass before the completion hook, so checkpoint
      // journals and verdict caches only ever record checked rows.
      witness_post_pass(spec.jobs[i], options.witness, cone_cache, &report.jobs[i]);
      if (options.on_job_done) options.on_job_done(i, report.jobs[i]);
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  report.wall_seconds = clock.seconds();
  return report;
}

unsigned CampaignReport::count(Verdict v) const {
  unsigned n = 0;
  for (const JobResult& j : jobs) n += (j.verdict == v);
  return n;
}

std::string CampaignReport::to_table() const {
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof line, "%-34s %-8s %-12s %-6s %-12s %10s %9s\n", "job",
                "mode", "verdict", "len/k", "winner", "conflicts", "time");
  os << line;
  os << std::string(96, '-') << "\n";
  for (const JobResult& j : jobs) {
    char lenk[16] = "-";
    if (j.verdict == Verdict::Falsified)
      std::snprintf(lenk, sizeof lenk, "%u", j.trace_length);
    else if (j.verdict == Verdict::Proved)
      std::snprintf(lenk, sizeof lenk, "k=%u", j.proved_k);
    // The mode column doubles as the workload column for families that
    // have no QED mode.
    const std::string& mode =
        j.provenance.mode.empty() ? j.provenance.family : j.provenance.mode;
    std::snprintf(line, sizeof line, "%-34s %-8s %-12s %-6s %-12s %10llu %8.2fs%s\n",
                  j.name.c_str(), mode.c_str(), verdict_name(j.verdict), lenk,
                  prover_name(j.winner), static_cast<unsigned long long>(j.conflicts),
                  j.seconds, j.loser_cancelled ? "  [loser cancelled]" : "");
    os << line;
  }
  std::snprintf(line, sizeof line,
                "%zu jobs: %u falsified, %u proved, %u bound-clean, %u unknown "
                "(%u threads, %.2fs wall, seed %llu)\n",
                jobs.size(), count(Verdict::Falsified), count(Verdict::Proved),
                count(Verdict::BoundClean), count(Verdict::Unknown), threads,
                wall_seconds, static_cast<unsigned long long>(seed));
  os << line;
  return os.str();
}

std::string CampaignReport::to_json(bool include_timing) const {
  std::ostringstream os;
  os << "{\n  \"seed\": " << seed;
  if (shard) {
    os << ",\n  \"shard\": {\"index\": " << shard->shard.index
       << ", \"count\": " << shard->shard.count
       << ", \"total_jobs\": " << shard->total_jobs << "}";
  }
  if (include_timing) {
    if (!spec_digest.empty()) {
      os << ",\n  \"spec_digest\": ";
      json_escape(os, spec_digest);
    }
    os << ",\n  \"threads\": " << threads;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", wall_seconds);
    os << ",\n  \"wall_seconds\": " << buf;
  }
  os << ",\n  \"jobs\": [";
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const JobResult& j = jobs[i];
    os << (i ? ",\n    {" : "\n    {");
    os << "\"name\": ";
    json_escape(os, j.name);
    // Only shard reports carry the job's position in the full spec —
    // merged output must stay byte-identical to an unsharded run.
    if (shard) os << ", \"spec_index\": " << j.spec_index;
    // QED jobs keep the original dialect (a "mode" column) so existing
    // campaign output stays byte-identical; other workload families
    // report their provenance instead.
    if (j.provenance.family == kQedFamily) {
      os << ", \"mode\": ";
      json_escape(os, j.provenance.mode);
    } else {
      os << ", \"workload\": ";
      json_escape(os, j.provenance.family);
      os << ", \"source\": ";
      json_escape(os, j.provenance.source);
      os << ", \"property\": " << j.provenance.property;
    }
    os << ", \"verdict\": \"" << verdict_name(j.verdict) << "\"";
    if (j.verdict == Verdict::Falsified) {
      os << ", \"trace_length\": " << j.trace_length;
      // Which bad condition fired is verdict-bearing and deterministic,
      // so it belongs in the stable form alongside the trace length.
      if (!j.bad_label.empty()) {
        os << ", \"bad_label\": ";
        json_escape(os, j.bad_label);
      }
    }
    if (j.verdict == Verdict::Proved) os << ", \"proved_k\": " << j.proved_k;
    // A build/parse diagnostic is deterministic for a fixed spec, so it
    // belongs in the stable form too (it explains the UNKNOWN verdict).
    if (!j.note.empty()) {
      os << ", \"error\": ";
      json_escape(os, j.note);
    }
    // Winner, conflicts and timings depend on race scheduling; keeping
    // them out makes the no-timing report byte-stable across runs and
    // thread counts for a fixed spec.
    if (include_timing) {
      os << ", \"winner\": \"" << prover_name(j.winner) << "\"";
      os << ", \"conflicts\": " << j.conflicts;
      os << ", \"bmc_bounds_checked\": " << j.bmc_bounds_checked;
      os << ", \"loser_cancelled\": " << (j.loser_cancelled ? "true" : "false");
      os << ", \"hit_resource_limit\": " << (j.hit_resource_limit ? "true" : "false");
      // Cache traffic is workload-dependent scheduling detail (a verdict-
      // cache hit zeroes the solver counters entirely), so like the other
      // counters it stays out of the stable form.
      os << ", \"cone_lookups\": " << j.cone_lookups;
      os << ", \"cone_hits\": " << j.cone_hits;
      os << ", \"cone_clauses_replayed\": " << j.cone_clauses_replayed;
      os << ", \"eliminated_vars\": " << j.eliminated_vars;
      os << ", \"subsumed_clauses\": " << j.subsumed_clauses;
      os << ", \"vivified_clauses\": " << j.vivified_clauses;
      os << ", \"clauses_exported\": " << j.clauses_exported;
      os << ", \"clauses_imported\": " << j.clauses_imported;
      os << ", \"vault_hits\": " << j.vault_hits;
      os << ", \"sat_retries\": " << j.sat_retries;
      os << ", \"hit_memory_limit\": " << (j.hit_memory_limit ? "true" : "false");
      os << ", \"from_cache\": " << (j.from_cache ? "true" : "false");
      // Witness-pipeline observables. Deterministic, but deliberately
      // kept out of the stable form: the post-pass must be
      // observationally invisible there (byte-identity with pre-witness
      // reports, and with --no-witness-check runs).
      os << ", \"witness_checked\": " << (j.witness_checked ? "true" : "false");
      os << ", \"trace_length_shrunk\": " << j.trace_length_shrunk;
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.3f", j.seconds);
      os << ", \"seconds\": " << buf;
    }
    os << "}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

}  // namespace sepe::engine
