#include "engine/campaign.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <thread>

#include "synth/encoding.hpp"
#include "util/json.hpp"
#include "util/stopwatch.hpp"

namespace sepe::engine {

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::Falsified: return "FALSIFIED";
    case Verdict::Proved: return "PROVED";
    case Verdict::BoundClean: return "BOUND_CLEAN";
    case Verdict::Unknown: return "UNKNOWN";
  }
  return "?";
}

const char* prover_name(Prover p) {
  switch (p) {
    case Prover::None: return "none";
    case Prover::Bmc: return "bmc";
    case Prover::KInduction: return "k-induction";
  }
  return "?";
}

const char* mode_tag(qed::QedMode mode) {
  return mode == qed::QedMode::EddiV ? "EDDI-V" : "EDSEP-V";
}

JobSpec make_qed_job(std::string name, qed::QedMode mode, const proc::ProcConfig& config,
                     std::optional<proc::Mutation> mutation,
                     const synth::EquivalenceTable* equivalences, const JobBudget& budget,
                     unsigned queue_capacity, unsigned counter_bits) {
  assert((mode != qed::QedMode::EdsepV || equivalences != nullptr) &&
         "EDSEP-V requires an equivalence table");
  JobSpec job;
  job.name = std::move(name);
  job.mode = mode;
  job.budget = budget;
  job.build = [mode, config, mutation = std::move(mutation), equivalences,
               queue_capacity, counter_bits](ts::TransitionSystem& ts) {
    qed::QedOptions qo;
    qo.mode = mode;
    qo.queue_capacity = queue_capacity;
    qo.counter_bits = counter_bits;
    qo.equivalences = equivalences;
    qed::build_qed_model(ts, config, qo, mutation ? &*mutation : nullptr);
  };
  return job;
}

std::vector<isa::Opcode> replay_opcodes(const synth::EquivalenceTable& table,
                                        isa::Opcode op) {
  const bool memory = isa::is_load(op) || isa::is_store(op);
  const std::string key =
      memory ? std::string(isa::opcode_name(op)) + "_ADDR" : isa::opcode_name(op);
  std::vector<isa::Opcode> ops;
  const synth::SynthProgram* prog = table.first(key);
  if (!prog) return ops;
  const auto push_unique = [&](isa::Opcode o) {
    for (isa::Opcode existing : ops)
      if (existing == o) return;
    ops.push_back(o);
  };
  for (const synth::SynthLine& line : prog->lines)
    for (const synth::ExpansionInstr& e : line.comp->expansion) push_unique(e.op);
  if (memory) push_unique(op);
  return ops;
}

proc::ProcConfig derive_duv_config(const CampaignMatrix& matrix,
                                   const proc::Mutation* mutation) {
  assert(matrix.xlen >= 2 && "DUV datapath needs at least 2 bits");
  proc::ProcConfig config;
  config.xlen = std::max(2u, matrix.xlen);
  // Largest power-of-two memory the address space supports (cap at the
  // requested size) — mirrors the Table-1 bench sizing.
  config.mem_words = config.xlen >= 5
                         ? matrix.mem_words
                         : std::min(matrix.mem_words, 1u << (config.xlen - 2));
  const auto add = [&](isa::Opcode op) {
    if (!config.supports(op)) config.opcodes.push_back(op);
  };
  if (mutation && mutation->target != isa::Opcode::NOP) add(mutation->target);
  for (isa::Opcode op : matrix.extra_opcodes) add(op);
  // The DUV must also implement every opcode the EDSEP replays of its
  // instructions issue.
  if (matrix.equivalences) {
    for (isa::Opcode base : std::vector<isa::Opcode>(config.opcodes))
      for (isa::Opcode op : replay_opcodes(*matrix.equivalences, base)) add(op);
  }
  return config;
}

CampaignSpec expand(const CampaignMatrix& matrix, std::uint64_t seed) {
  CampaignSpec spec;
  spec.seed = seed;

  const auto add_jobs_for = [&](const proc::Mutation* mutation,
                                const std::string& base) {
    const proc::ProcConfig config = derive_duv_config(matrix, mutation);
    for (qed::QedMode mode : matrix.modes) {
      spec.jobs.push_back(make_qed_job(
          base + "/" + mode_tag(mode), mode, config,
          mutation ? std::optional<proc::Mutation>(*mutation) : std::nullopt,
          matrix.equivalences, matrix.budget, matrix.queue_capacity,
          matrix.counter_bits));
    }
  };

  if (matrix.mutations.empty()) {
    add_jobs_for(nullptr, "healthy");
  } else {
    for (const proc::Mutation& m : matrix.mutations) add_jobs_for(&m, m.name);
  }
  return spec;
}

namespace {

/// Outcome of one prover inside the race.
struct BmcSide {
  bool ran = false;
  std::optional<bmc::Witness> found;
  bmc::BmcStats stats;
  std::string witness_text;
  std::string bad_label;
};

struct KindSide {
  bool ran = false;
  bmc::KInductionResult result;
  std::string witness_text;
  std::string bad_label;
};

constexpr int kClaimNone = -1;

/// Re-derive the canonical witness of a falsified job with the
/// default-config BMC sweep. A witness found by a non-default portfolio
/// member is model-shaped by that member's heuristics; replaying the
/// deterministic default sweep up to the (member-independent) minimal
/// violation length reproduces exactly the trace a single-config run
/// reports, keeping reports byte-deterministic whatever the portfolio
/// width. Costs one default-config sweep, paid only on falsified jobs.
/// The replay deliberately runs without the job's budgets: the bound is
/// known SAT, and a claimed violation whose witness cannot be read back
/// is worse than a slightly-overspent cap (same rationale as the old
/// model-extension budget lift).
void canonical_witness(const JobSpec& job, unsigned length, BmcSide* out) {
  smt::TermManager mgr;
  ts::TransitionSystem ts(mgr);
  job.build(ts);
  bmc::Bmc checker(ts);
  bmc::BmcOptions bo;
  bo.max_bound = length;
  out->found = checker.check(bo);
  assert(out->found && out->found->length == length &&
         "canonical replay must reproduce the claimed violation");
  // Unbudgeted replay of a known-SAT bound cannot fail; still, never
  // dereference an empty optional in Release if that invariant breaks.
  if (!out->found) return;
  out->witness_text = bmc::witness_to_string(ts, *out->found);
  out->bad_label = out->found->bad_label;
}

/// Sum the deterministic work counters of both prover stacks into the
/// result (sequential mode: nothing was cancelled, so this is the
/// deterministic total-work proxy the perf trajectory tracks).
void tally_sequential_counters(const BmcSide& b, const KindSide& k, JobResult* r) {
  r->conflicts = b.stats.solver_conflicts;
  r->propagations = b.stats.solver_propagations;
  r->decisions = b.stats.solver_decisions;
  r->cnf_vars = b.stats.cnf_vars;
  r->cnf_clauses = b.stats.cnf_clauses;
  if (k.ran) {
    r->conflicts += k.result.solver_conflicts;
    r->propagations += k.result.solver_propagations;
    r->decisions += k.result.solver_decisions;
    r->cnf_vars += k.result.cnf_vars;
    r->cnf_clauses += k.result.cnf_clauses;
  }
}

}  // namespace

JobResult run_job(const JobSpec& job) {
  assert(job.build && "JobSpec needs a model builder");
  Stopwatch clock;
  JobResult r;
  r.name = job.name;
  r.mode = job.mode;

  const bool with_kind = job.budget.race_k_induction && job.budget.max_k > 0;
  const unsigned portfolio =
      job.budget.sequential_provers ? 1 : std::max(1u, job.budget.portfolio);

  // Entrants: `portfolio` BMC sweeps and (optionally) `portfolio`
  // k-induction runs, each on its own solver configuration. Entrant 0 of
  // each prover is always the default configuration.
  std::vector<BmcSide> bsides(portfolio);
  std::vector<KindSide> ksides(with_kind ? portfolio : 0);

  // The race state: the first entrant with a *definite* verdict
  // (counterexample or proof) claims the job and raises the stop flag the
  // losers' CDCL loops poll. Indefinite outcomes (clean sweep, exhausted
  // max_k, budget) never cancel anyone — that is what keeps verdicts
  // deterministic across thread counts.
  std::atomic<bool> stop{false};
  std::atomic<int> claim{kClaimNone};
  const auto try_claim = [&](int who) {
    int expected = kClaimNone;
    if (claim.compare_exchange_strong(expected, who)) {
      stop.store(true, std::memory_order_release);
      return true;
    }
    return false;
  };

  const auto bmc_prover = [&](unsigned idx, const std::atomic<bool>* stop_flag) {
    BmcSide& side = bsides[idx];
    side.ran = true;
    smt::TermManager mgr;
    ts::TransitionSystem ts(mgr);
    job.build(ts);
    bmc::Bmc checker(ts, sat::SolverConfig::portfolio_member(idx));
    bmc::BmcOptions bo;
    bo.max_bound = job.budget.max_bound;
    bo.conflict_budget_per_bound = job.budget.conflict_budget;
    bo.max_seconds = job.budget.max_seconds;
    bo.stop = stop_flag;
    side.found = checker.check(bo);
    side.stats = checker.stats();
    if (side.found && (!stop_flag || try_claim(static_cast<int>(idx)))) {
      // The default-config witness is already canonical; a non-default
      // winner's trace is re-derived after the join (canonical_witness).
      if (idx == 0) {
        side.witness_text = bmc::witness_to_string(ts, *side.found);
        side.bad_label = side.found->bad_label;
      }
    }
  };

  const auto kind_prover = [&](unsigned idx, const std::atomic<bool>* stop_flag) {
    KindSide& side = ksides[idx];
    side.ran = true;
    smt::TermManager mgr;
    ts::TransitionSystem ts(mgr);
    job.build(ts);
    bmc::KInductionOptions ko;
    ko.max_k = job.budget.max_k;
    ko.conflict_budget = job.budget.conflict_budget;
    ko.max_seconds = job.budget.max_seconds;
    ko.stop = stop_flag;
    ko.solver_config = sat::SolverConfig::portfolio_member(idx);
    side.result = bmc::prove_by_k_induction(ts, ko);
    if (side.result.status != bmc::KInductionStatus::Unknown &&
        (!stop_flag || try_claim(static_cast<int>(portfolio + idx)))) {
      if (side.result.witness && idx == 0) {
        side.witness_text = bmc::witness_to_string(ts, *side.result.witness);
        side.bad_label = side.result.witness->bad_label;
      }
    }
  };

  if (job.budget.sequential_provers) {
    // Deterministic perf mode: both provers run to completion on the
    // calling thread, nothing is cancelled, and the claim arbitration is
    // by fixed order (BMC's counterexample first, else k-induction's
    // verdict) — which yields exactly the verdict fields the race
    // produces, with fully reproducible work counters on top.
    bmc_prover(0, nullptr);
    if (bsides[0].found) {
      claim.store(0);
    } else if (with_kind) {
      kind_prover(0, nullptr);
      if (ksides[0].result.status != bmc::KInductionStatus::Unknown)
        claim.store(static_cast<int>(portfolio));
    }
  } else {
    const unsigned entrants = portfolio + (with_kind ? portfolio : 0);
    std::vector<std::thread> others;
    others.reserve(entrants - 1);
    for (unsigned e = 1; e < entrants; ++e) {
      if (e < portfolio) {
        others.emplace_back([&, e] { bmc_prover(e, &stop); });
      } else {
        others.emplace_back([&, e] { kind_prover(e - portfolio, &stop); });
      }
    }
    bmc_prover(0, &stop);
    for (std::thread& t : others) t.join();
  }

  const auto any_loser_cancelled = [&](int who) {
    for (unsigned i = 0; i < bsides.size(); ++i)
      if (bsides[i].ran && static_cast<int>(i) != who && bsides[i].stats.cancelled)
        return true;
    for (unsigned i = 0; i < ksides.size(); ++i)
      if (ksides[i].ran && static_cast<int>(portfolio + i) != who &&
          ksides[i].result.cancelled)
        return true;
    return false;
  };

  r.bmc_bounds_checked = bsides[0].stats.bounds_checked;
  const int who = claim.load(std::memory_order_acquire);
  if (who >= 0 && who < static_cast<int>(portfolio)) {
    BmcSide& side = bsides[who];
    r.verdict = Verdict::Falsified;
    r.winner = Prover::Bmc;
    r.trace_length = side.found->length;
    if (who != 0) canonical_witness(job, side.found->length, &side);
    r.bad_label = side.bad_label;
    r.witness = side.witness_text;
    r.conflicts = side.stats.solver_conflicts;
    r.propagations = side.stats.solver_propagations;
    r.decisions = side.stats.solver_decisions;
    r.cnf_vars = side.stats.cnf_vars;
    r.cnf_clauses = side.stats.cnf_clauses;
    r.loser_cancelled = any_loser_cancelled(who);
    if (job.budget.sequential_provers)
      tally_sequential_counters(bsides[0], ksides.empty() ? KindSide{} : ksides[0],
                                &r);
  } else if (who >= static_cast<int>(portfolio)) {
    const unsigned idx = static_cast<unsigned>(who) - portfolio;
    KindSide& side = ksides[idx];
    r.winner = Prover::KInduction;
    r.conflicts = side.result.solver_conflicts;
    r.propagations = side.result.solver_propagations;
    r.decisions = side.result.solver_decisions;
    r.cnf_vars = side.result.cnf_vars;
    r.cnf_clauses = side.result.cnf_clauses;
    r.loser_cancelled = any_loser_cancelled(who);
    if (side.result.status == bmc::KInductionStatus::Falsified) {
      r.verdict = Verdict::Falsified;
      r.trace_length = side.result.witness ? side.result.witness->length : 0;
      if (idx != 0 && side.result.witness) {
        BmcSide canon;
        canonical_witness(job, side.result.witness->length, &canon);
        side.witness_text = canon.witness_text;
        side.bad_label = canon.bad_label;
      }
      r.bad_label = side.bad_label;
      r.witness = side.witness_text;
    } else {
      r.verdict = Verdict::Proved;
      r.proved_k = side.result.k;
    }
    if (job.budget.sequential_provers)
      tally_sequential_counters(bsides[0], ksides[0], &r);
  } else {
    // No definite verdict from any entrant. A completed BMC sweep is
    // itself a definite bounded result (BoundClean) even when the
    // induction side ran out of budget — only BMC's own budgets can
    // demote the verdict to Unknown. This keeps verdicts deterministic
    // under (deterministic) conflict budgets: a budget-truncated
    // k-induction run never changes the verdict, it only loses the
    // chance to upgrade it to Proved.
    tally_sequential_counters(bsides[0], ksides.empty() ? KindSide{} : ksides[0], &r);
    if (bsides[0].stats.hit_resource_limit || bsides[0].stats.cancelled) {
      r.verdict = Verdict::Unknown;
      r.hit_resource_limit = true;
    } else {
      r.verdict = Verdict::BoundClean;
      r.hit_resource_limit = !ksides.empty() && ksides[0].ran &&
                             ksides[0].result.hit_resource_limit;
    }
  }
  r.seconds = clock.seconds();
  return r;
}

CampaignReport run_campaign(const CampaignSpec& spec, const CampaignOptions& options) {
  Stopwatch clock;
  unsigned threads =
      options.threads != 0 ? options.threads : std::thread::hardware_concurrency();
  threads = std::max<std::size_t>(
      1, std::min<std::size_t>(threads, spec.jobs.empty() ? 1 : spec.jobs.size()));

  CampaignReport report;
  report.seed = spec.seed;
  report.threads = threads;
  report.jobs.resize(spec.jobs.size());

  // Work queue: an atomic cursor over the job list. Each worker pops the
  // next index and runs the job in full isolation; results land in spec
  // order so the report is independent of scheduling.
  std::atomic<std::size_t> next{0};
  const auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= spec.jobs.size()) return;
      report.jobs[i] = run_job(spec.jobs[i]);
      report.jobs[i].spec_index = i;
      if (options.on_job_done) options.on_job_done(i, report.jobs[i]);
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  report.wall_seconds = clock.seconds();
  return report;
}

unsigned CampaignReport::count(Verdict v) const {
  unsigned n = 0;
  for (const JobResult& j : jobs) n += (j.verdict == v);
  return n;
}

std::string CampaignReport::to_table() const {
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof line, "%-34s %-8s %-12s %-6s %-12s %10s %9s\n", "job",
                "mode", "verdict", "len/k", "winner", "conflicts", "time");
  os << line;
  os << std::string(96, '-') << "\n";
  for (const JobResult& j : jobs) {
    char lenk[16] = "-";
    if (j.verdict == Verdict::Falsified)
      std::snprintf(lenk, sizeof lenk, "%u", j.trace_length);
    else if (j.verdict == Verdict::Proved)
      std::snprintf(lenk, sizeof lenk, "k=%u", j.proved_k);
    std::snprintf(line, sizeof line, "%-34s %-8s %-12s %-6s %-12s %10llu %8.2fs%s\n",
                  j.name.c_str(), mode_tag(j.mode), verdict_name(j.verdict),
                  lenk, prover_name(j.winner),
                  static_cast<unsigned long long>(j.conflicts), j.seconds,
                  j.loser_cancelled ? "  [loser cancelled]" : "");
    os << line;
  }
  std::snprintf(line, sizeof line,
                "%zu jobs: %u falsified, %u proved, %u bound-clean, %u unknown "
                "(%u threads, %.2fs wall, seed %llu)\n",
                jobs.size(), count(Verdict::Falsified), count(Verdict::Proved),
                count(Verdict::BoundClean), count(Verdict::Unknown), threads,
                wall_seconds, static_cast<unsigned long long>(seed));
  os << line;
  return os.str();
}

std::string CampaignReport::to_json(bool include_timing) const {
  std::ostringstream os;
  os << "{\n  \"seed\": " << seed;
  if (shard) {
    os << ",\n  \"shard\": {\"index\": " << shard->shard.index
       << ", \"count\": " << shard->shard.count
       << ", \"total_jobs\": " << shard->total_jobs << "}";
  }
  if (include_timing) {
    if (!spec_digest.empty()) {
      os << ",\n  \"spec_digest\": ";
      json_escape(os, spec_digest);
    }
    os << ",\n  \"threads\": " << threads;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", wall_seconds);
    os << ",\n  \"wall_seconds\": " << buf;
  }
  os << ",\n  \"jobs\": [";
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const JobResult& j = jobs[i];
    os << (i ? ",\n    {" : "\n    {");
    os << "\"name\": ";
    json_escape(os, j.name);
    // Only shard reports carry the job's position in the full spec —
    // merged output must stay byte-identical to an unsharded run.
    if (shard) os << ", \"spec_index\": " << j.spec_index;
    os << ", \"mode\": \"" << mode_tag(j.mode) << "\"";
    os << ", \"verdict\": \"" << verdict_name(j.verdict) << "\"";
    if (j.verdict == Verdict::Falsified) {
      os << ", \"trace_length\": " << j.trace_length;
      // Which bad condition fired is verdict-bearing and deterministic,
      // so it belongs in the stable form alongside the trace length.
      if (!j.bad_label.empty()) {
        os << ", \"bad_label\": ";
        json_escape(os, j.bad_label);
      }
    }
    if (j.verdict == Verdict::Proved) os << ", \"proved_k\": " << j.proved_k;
    // Winner, conflicts and timings depend on race scheduling; keeping
    // them out makes the no-timing report byte-stable across runs and
    // thread counts for a fixed spec.
    if (include_timing) {
      os << ", \"winner\": \"" << prover_name(j.winner) << "\"";
      os << ", \"conflicts\": " << j.conflicts;
      os << ", \"bmc_bounds_checked\": " << j.bmc_bounds_checked;
      os << ", \"loser_cancelled\": " << (j.loser_cancelled ? "true" : "false");
      os << ", \"hit_resource_limit\": " << (j.hit_resource_limit ? "true" : "false");
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.3f", j.seconds);
      os << ", \"seconds\": " << buf;
    }
    os << "}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

}  // namespace sepe::engine
