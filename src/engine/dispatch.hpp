// dispatch.hpp — the multi-host campaign dispatcher: dynamic shard
// scheduling on top of the deterministic shard/merge seam.
//
// engine/shard.hpp made a campaign embarrassingly parallel across
// processes (`sepe-run --shard I/N` legs merged byte-identically), but
// launching every leg and running `merge` by hand is a human job. This
// layer is the scheduler above that seam: it owns the queue of shards,
// assigns them dynamically to worker *processes*, and folds their
// reports back together while legs are still running.
//
//   * Workers are spawned through the WorkerLauncher interface — a
//     pipe/exec seam whose only built-in implementation forks local
//     `sepe-run --shard I/N --checkpoint ... --json ...` children. A
//     remote launcher (ssh, a cluster API) is one subclass; the
//     dispatcher never learns where a worker runs.
//   * Failed or crashed attempts are retried a bounded number of times,
//     each retry resuming from the dead attempt's checkpoint journal so
//     finished jobs are never re-solved.
//   * Straggler shards are *stolen*: when a worker slot would otherwise
//     idle, the longest-running shard is re-issued from a snapshot of
//     the straggler's journal. The first definite completion wins; the
//     losing attempt is terminated, and a duplicate completion that
//     slips through the same poll window is discarded — per-shard
//     reconciliation is exactly the existing merge contract (one report
//     per shard index, disjoint job ids).
//   * Completed shard reports fold into a live aggregate (event lines
//     carry the running verdict tally), and the final report comes from
//     CampaignReport::merge — so the dispatcher's stable JSON is
//     byte-identical to an unsharded run of the same campaign, even
//     when workers were killed mid-shard along the way.
//
// The dispatcher is workload-family agnostic by construction: it only
// ever sees the worker command line and the report files, so QED
// matrix campaigns and BTOR2 corpora (and every future family) dispatch
// identically. `sepe-run dispatch` is the CLI surface.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "engine/campaign.hpp"

namespace sepe::engine {

/// Where worker processes run: the pipe/exec seam between the
/// dispatcher's scheduling policy and the host(s) executing shards.
/// The built-in LocalProcessLauncher forks children on this machine; a
/// remote (ssh/cluster) launcher is one subclass away and the
/// dispatcher cannot tell the difference.
class WorkerLauncher {
 public:
  /// Snapshot of one worker's lifecycle.
  struct Exit {
    enum class Status {
      Running,    // still executing
      Exited,     // exited normally; `code` is the exit status
      Signalled,  // killed by a signal; `code` is the signal number
      Lost,       // the launcher cannot account for the worker
    };
    Status status = Status::Running;
    int code = 0;
  };

  virtual ~WorkerLauncher() = default;

  /// Start a worker running `argv` (argv[0] = program). Returns a
  /// non-negative opaque handle, or -1 with *error set. The worker's
  /// stdout is the launcher's to discard (the dispatcher reads results
  /// from report files, never from pipes); stderr should stay visible
  /// for diagnostics.
  virtual long launch(const std::vector<std::string>& argv, std::string* error) = 0;

  /// Non-blocking status check. Once a handle reports a non-Running
  /// status it is reaped: the dispatcher will not poll it again.
  virtual Exit poll(long handle) = 0;

  /// Forcibly stop and reap a Running worker (e.g. a straggler whose
  /// shard was completed by a thief first).
  virtual void terminate(long handle) = 0;
};

/// The built-in launcher: fork/exec on the local host, stdout routed to
/// /dev/null (the dispatcher owns the terminal), stderr inherited.
class LocalProcessLauncher final : public WorkerLauncher {
 public:
  long launch(const std::vector<std::string>& argv, std::string* error) override;
  Exit poll(long handle) override;
  void terminate(long handle) override;
};

struct DispatchOptions {
  /// The shard-independent worker command: program + family arguments
  /// (e.g. {"/path/sepe-run", "corpus", "dir", "--bound", "6"}). The
  /// dispatcher appends per-attempt `--shard I/N --checkpoint F
  /// --stable-json --json R` — those flags are its to own, the command
  /// must not carry them.
  std::vector<std::string> worker_command;
  /// Existing directory for per-attempt checkpoint journals and report
  /// files. The dispatcher never deletes it (the CLI owns cleanup).
  std::string work_dir;
  unsigned workers = 2;  // concurrent worker processes
  unsigned shards = 0;   // shard count; 0 = same as workers
  /// Re-launches allowed per shard after failed attempts (crash,
  /// non-zero exit, missing/invalid report). Each retry resumes from
  /// the best checkpoint journal any previous attempt left behind.
  unsigned retries = 1;
  /// Base delay before a failed shard's relaunch. The n-th relaunch of
  /// a shard waits base · 2^(n-1) · (1 + jitter) seconds, with jitter in
  /// [0, 1) drawn deterministically from the shard index and the retry
  /// ordinal — so a fleet of shards felled by one transient cause
  /// (filesystem hiccup, OOM-killer sweep) fans back in staggered
  /// instead of stampeding, and every run of the same failure history
  /// waits the same schedule. 0 relaunches immediately (old behaviour).
  double retry_backoff_seconds = 0.05;
  /// Re-issue straggler shards to idle workers (from a journal
  /// snapshot) instead of letting slots idle. First completion wins.
  bool steal = true;
  /// How long an attempt must have been running (and been seen alive at
  /// least once) before an idle worker may steal its shard — 0 steals
  /// at the first idle poll. Guards against duplicating a shard that
  /// was only just launched.
  double steal_after_seconds = 1.0;
  double poll_seconds = 0.02;  // scheduler poll interval
  /// When non-empty: the shared witness-artifact directory the workers
  /// were told to emit into (sepe-run --witness-dir). After the merge,
  /// every FALSIFIED row must be backed by an artifact there that
  /// re-validates with the simulator alone (engine/witness.hpp) and
  /// matches the row's job name, bound, and bad label — a cheap
  /// SAT-free cross-check that a retried or stolen shard's witnesses
  /// are genuine. A missing or bogus artifact demotes the row to the
  /// same diagnosed UNKNOWN the in-process post-pass uses.
  std::string witness_dir;
  /// Worker transport; nullptr = a built-in LocalProcessLauncher.
  WorkerLauncher* launcher = nullptr;
  /// Progress lines (launches, failures, steals, the live aggregate
  /// verdict tally). Scheduling-dependent — for humans and logs, never
  /// part of the deterministic report.
  std::function<void(const std::string&)> on_event;
};

struct DispatchResult {
  bool ok = false;
  std::string error;  // non-empty when !ok
  /// CampaignReport::merge over the per-shard winners — stable JSON
  /// byte-identical to an unsharded run of the same campaign.
  CampaignReport merged;
  unsigned launches = 0;    // worker processes spawned
  unsigned failures = 0;    // attempts that crashed or exited unusable
  unsigned steals = 0;      // straggler re-issues
  unsigned duplicates = 0;  // completions discarded (shard already won)
};

/// Run the campaign: schedule every shard onto the worker fleet, retry
/// and steal as configured, and merge the per-shard reports. Fails
/// (ok == false) when a shard exhausts its retries, a worker rejects
/// the command line (exit 2 — retrying a usage error cannot help), the
/// launcher cannot spawn, or the final merge is rejected; any workers
/// still running are terminated before returning.
DispatchResult run_dispatch(const DispatchOptions& options);

}  // namespace sepe::engine
