// pinned_table.hpp — the pinned EDSEP-V equivalence table.
//
// The equivalence programs here are the ones HPF-CEGIS finds (see
// bench/fig3_synthesis); pinning the multisets makes every
// verification-side campaign deterministic and avoids re-paying the
// synthesis cost per run. Each program transforms the operand data path
// (different wiring or different opcodes), which is what lets EDSEP-V
// separate a single-instruction bug's effect on the original instruction
// from its effect on the replay (paper §5).
//
// Shared by the campaign engine's CLI driver (tools/sepe-run) and the
// Table-1 / Figure-4 benches.
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <vector>

#include "synth/cegis.hpp"

namespace sepe::engine {

/// Owns the specs the table's programs point into.
struct PinnedTable {
  std::vector<synth::Component> lib = synth::make_standard_library();
  std::vector<synth::SynthSpec> specs;
  synth::EquivalenceTable table;

  PinnedTable() { specs.reserve(64); }

  const synth::Component* comp(const std::string& name) const {
    for (const auto& c : lib)
      if (c.name == name) return &c;
    assert(false && "unknown component");
    return nullptr;
  }

  /// Synthesize one pinned equivalence via CEGIS on a fixed multiset.
  ///
  /// `synth_xlen` must equal the DUV width the table will verify:
  /// solved attribute constants (sign masks, multiplier tricks) are in
  /// general only correct at the width they were synthesized for, so the
  /// program is re-proved at that width here.
  void add(const std::string& key, synth::SynthSpec spec,
           const std::vector<std::string>& multiset, unsigned synth_xlen) {
    specs.push_back(std::move(spec));
    std::vector<const synth::Component*> comps;
    for (const std::string& name : multiset) comps.push_back(comp(name));
    synth::CegisOptions o;
    o.xlen = synth_xlen;
    // Prefer a program whose output instruction differs from the
    // original opcode (full datapath separation); fall back to the plain
    // §4.1 constraint when the multiset cannot satisfy that.
    o.forbid_output_op = true;
    auto p = synth::cegis_multiset(specs.back(), comps, o);
    if (!p) {
      o.forbid_output_op = false;
      p = synth::cegis_multiset(specs.back(), comps, o);
    }
    assert(p.has_value() && "pinned multiset failed to synthesize");
    assert(synth::verify_program(*p, synth_xlen) && "pinned program failed re-proof");
    table.add(key, std::move(*p));
  }
};

/// The equivalence table covering every instruction the Table-1 and
/// Figure-4 campaigns stream. Every program reshapes the operands, so a
/// uniform corruption of the original instruction diverges from the
/// replay (even for the rows whose equivalent reuses the opcode, e.g.
/// SRA == NOT(SRA(NOT(a), b))).
inline std::unique_ptr<PinnedTable> make_pinned_table(unsigned duv_xlen) {
  auto t = std::make_unique<PinnedTable>();
  using isa::Opcode;
  auto spec = [](Opcode op) { return synth::make_spec(op); };
  const unsigned w = duv_xlen;
  t->add("ADD", spec(Opcode::ADD), {"NOT", "SUB", "NOT"}, w);
  t->add("SUB", spec(Opcode::SUB), {"NOT", "ADD", "NOT"}, w);     // Listing 1
  t->add("XOR", spec(Opcode::XOR), {"OR", "AND", "SUB"}, w);
  t->add("OR", spec(Opcode::OR), {"ADD", "AND", "SUB"}, w);       // a+b-(a&b)
  t->add("AND", spec(Opcode::AND), {"ADD", "OR", "SUB"}, w);      // a+b-(a|b)
  t->add("SLT", spec(Opcode::SLT), {"XORI", "XORI", "SLTU"}, w);  // sign-flip
  t->add("SLTU", spec(Opcode::SLTU), {"XORI", "XORI", "SLT"}, w);
  // complement conjugation
  t->add("SRA", spec(Opcode::SRA), {"NOT", "SRA", "NOT"}, w);
  t->add("MULH", spec(Opcode::MULH), {"MULHSU_C", "SIGNSEL", "SUB"}, w);
  t->add("XORI", spec(Opcode::XORI), {"NOT", "XORI", "NOT"}, w);
  t->add("SLLI", spec(Opcode::SLLI), {"XOR", "ADDI", "SLL"}, w);  // materialized shamt
  t->add("SRAI", spec(Opcode::SRAI), {"NOT", "SRAI", "NOT"}, w);
  // conjugated passthrough
  t->add("ADDI", spec(Opcode::ADDI), {"NOT", "NOT", "ADDI"}, w);
  t->add("LW_ADDR", synth::make_address_spec(Opcode::LW), {"NOT", "NOT", "ADDI"}, w);
  t->add("SW_ADDR", synth::make_address_spec(Opcode::SW), {"NOT", "NOT", "ADDI"}, w);
  return t;
}

}  // namespace sepe::engine
