#include "engine/shard.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "engine/report_io.hpp"
#include "engine/verdict_cache.hpp"
#include "engine/witness.hpp"
#include "util/fault.hpp"
#include "util/parse.hpp"

namespace sepe::engine {

namespace {

bool set_error(std::string* error, std::string what) {
  if (error && error->empty()) *error = std::move(what);
  return false;
}

/// The stable ids a spec is partitioned and merged by are the job names;
/// returns the duplicate name if the spec violates uniqueness.
std::optional<std::string> find_duplicate_name(const std::vector<JobSpec>& jobs) {
  std::unordered_set<std::string> seen;
  for (const JobSpec& job : jobs)
    if (!seen.insert(job.name).second) return job.name;
  return std::nullopt;
}

/// FNV-1a digest of everything that determines a job's verdict besides
/// the model builder itself: the job names, every budget knob, and the
/// full provenance — workload family, source id, property index, and
/// the per-file content hash corpus sources stamp on their jobs — plus
/// the caller's fingerprint for parameters hidden inside the builders.
/// Guards checkpoints against silent reuse under changed flags, and
/// refuses a resume against a corpus file edited since the journal was
/// written (same names, different content hash).
std::string spec_digest_of(const CampaignSpec& spec, const std::string& fingerprint) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix_byte = [&](unsigned char b) {
    h ^= b;
    h *= 1099511628211ull;
  };
  const auto mix_u64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) mix_byte(static_cast<unsigned char>(v >> (8 * i)));
  };
  const auto mix_string = [&](const std::string& s) {
    mix_u64(s.size());
    for (char c : s) mix_byte(static_cast<unsigned char>(c));
  };
  mix_string(fingerprint);
  mix_u64(spec.jobs.size());
  for (const JobSpec& job : spec.jobs) {
    mix_string(job.name);
    mix_string(job.provenance.family);
    mix_string(job.provenance.source);
    mix_u64(job.provenance.property);
    mix_string(job.provenance.content_digest);
    mix_string(job.provenance.mode);
    mix_u64(job.budget.max_bound);
    mix_u64(job.budget.max_k);
    mix_u64(job.budget.conflict_budget);
    std::uint64_t seconds_bits = 0;
    static_assert(sizeof seconds_bits == sizeof job.budget.max_seconds);
    std::memcpy(&seconds_bits, &job.budget.max_seconds, sizeof seconds_bits);
    mix_u64(seconds_bits);
    mix_byte(job.budget.race_k_induction ? 1 : 0);
    mix_u64(job.budget.portfolio);
    mix_byte(job.budget.sequential_provers ? 1 : 0);
    mix_byte(job.budget.plaisted_greenbaum
                 ? (*job.budget.plaisted_greenbaum ? 2 : 1)
                 : 0);
    mix_byte(static_cast<unsigned char>(job.budget.backend));
    mix_u64(job.budget.memory_limit_mb);
    mix_u64(job.budget.share_clauses);
  }
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx", static_cast<unsigned long long>(h));
  return hex;
}

}  // namespace

bool parse_shard(const std::string& text, ShardSpec* out, std::string* error) {
  const std::size_t slash = text.find('/');
  const auto bad = [&] {
    return set_error(error, "shard must be I/N with 0 <= I < N, got '" + text + "'");
  };
  if (slash == std::string::npos || slash == 0 || slash + 1 >= text.size())
    return bad();
  const auto index = parse_u64_strict(text.substr(0, slash));
  const auto count = parse_u64_strict(text.substr(slash + 1));
  if (!index || !count) return bad();
  if (*count == 0 || *index >= *count || *count > 1u << 20) return bad();
  out->index = static_cast<unsigned>(*index);
  out->count = static_cast<unsigned>(*count);
  return true;
}

std::vector<unsigned> shard_assignment(const std::vector<std::string>& ids,
                                       unsigned count) {
  // Rank-based round robin: sort the ids, give rank r to shard r % count.
  // Using ranks (not hashes) keeps the shards balanced to within one job;
  // using the ids (not the spec positions) makes membership a pure
  // function of the id set, reproducible on any host.
  std::vector<std::size_t> order(ids.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return ids[a] < ids[b]; });
  std::vector<unsigned> assignment(ids.size(), 0);
  if (count == 0) count = 1;
  for (std::size_t rank = 0; rank < order.size(); ++rank)
    assignment[order[rank]] = static_cast<unsigned>(rank % count);
  return assignment;
}

ShardPlan plan_shard(const CampaignSpec& full, const ShardSpec& shard) {
  ShardPlan plan;
  plan.total_jobs = full.jobs.size();
  plan.spec.seed = full.seed;
  if (shard.count == 0 || shard.index >= shard.count) {
    plan.error = "shard index " + std::to_string(shard.index) + " out of range for " +
                 std::to_string(shard.count) + " shards";
    return plan;
  }
  if (auto dup = find_duplicate_name(full.jobs)) {
    plan.error = "duplicate job name '" + *dup + "' — job names are the stable "
                 "shard/merge ids and must be unique";
    return plan;
  }
  std::vector<std::string> ids;
  ids.reserve(full.jobs.size());
  for (const JobSpec& job : full.jobs) ids.push_back(job.name);
  const std::vector<unsigned> assignment = shard_assignment(ids, shard.count);
  for (std::size_t i = 0; i < full.jobs.size(); ++i) {
    if (assignment[i] != shard.index) continue;
    plan.spec.jobs.push_back(full.jobs[i]);
    plan.spec_indices.push_back(i);
  }
  return plan;
}

std::optional<CampaignReport> CampaignReport::merge(
    const std::vector<CampaignReport>& shards, std::string* error) {
  if (error) error->clear();
  const auto reject = [&](std::string what) {
    set_error(error, std::move(what));
    return std::nullopt;
  };
  if (shards.empty()) return reject("nothing to merge");

  for (std::size_t i = 0; i < shards.size(); ++i)
    if (!shards[i].shard)
      return reject("report " + std::to_string(i) +
                    " carries no shard metadata — not a shard report");

  const ShardInfo& first = *shards[0].shard;
  if (shards.size() != first.shard.count)
    return reject("incomplete shard set: got " + std::to_string(shards.size()) +
                  " reports for a " + std::to_string(first.shard.count) +
                  "-shard campaign");

  std::vector<bool> index_seen(first.shard.count, false);
  for (const CampaignReport& r : shards) {
    if (r.shard->shard.count != first.shard.count ||
        r.shard->total_jobs != first.total_jobs)
      return reject("shard reports disagree on the campaign shape "
                    "(count/total_jobs)");
    if (r.seed != shards[0].seed)
      return reject("shard reports disagree on the campaign seed");
    if (r.shard->shard.index >= first.shard.count ||
        index_seen[r.shard->shard.index])
      return reject("overlapping shard set: shard " +
                    std::to_string(r.shard->shard.index) + " appears twice");
    index_seen[r.shard->shard.index] = true;
  }

  CampaignReport merged;
  merged.seed = shards[0].seed;
  merged.threads = 0;
  merged.jobs.resize(first.total_jobs);
  std::vector<bool> job_seen(first.total_jobs, false);
  std::unordered_set<std::string> names;
  // Collect every duplicated job id before rejecting: when a shard set
  // overlaps (e.g. a stolen shard's report hand-merged next to the
  // original attempt's), naming all the offending ids pinpoints which
  // legs collided instead of forcing a re-merge per duplicate.
  std::vector<std::string> duplicated;
  for (const CampaignReport& r : shards) {
    merged.wall_seconds += r.wall_seconds;
    for (const JobResult& job : r.jobs) {
      if (job.spec_index >= first.total_jobs)
        return reject("job '" + job.name + "' has spec_index " +
                      std::to_string(job.spec_index) + " outside the campaign (" +
                      std::to_string(first.total_jobs) + " jobs)");
      if (job_seen[job.spec_index] || !names.insert(job.name).second) {
        duplicated.push_back(job.name);
        continue;
      }
      job_seen[job.spec_index] = true;
      merged.jobs[job.spec_index] = job;
    }
  }
  if (!duplicated.empty()) {
    std::sort(duplicated.begin(), duplicated.end());
    duplicated.erase(std::unique(duplicated.begin(), duplicated.end()),
                     duplicated.end());
    constexpr std::size_t kListed = 8;
    std::string what = "overlapping shards: " + std::to_string(duplicated.size()) +
                       " job id(s) appear in more than one report:";
    for (std::size_t i = 0; i < duplicated.size() && i < kListed; ++i)
      what += (i ? ", '" : " '") + duplicated[i] + "'";
    if (duplicated.size() > kListed)
      what += ", ... (+" + std::to_string(duplicated.size() - kListed) + " more)";
    return reject(std::move(what));
  }
  for (std::size_t i = 0; i < merged.jobs.size(); ++i)
    if (!job_seen[i])
      return reject("incomplete shard set: job id " + std::to_string(i) +
                    " of " + std::to_string(first.total_jobs) + " is missing");
  return merged;
}

CampaignReport run_sharded(const CampaignSpec& full, const ShardRunOptions& options,
                           std::string* error) {
  if (error) error->clear();
  CampaignReport empty;
  const ShardSpec effective = options.shard.value_or(ShardSpec{});
  ShardPlan plan = plan_shard(full, effective);
  if (!plan.ok()) {
    set_error(error, plan.error);
    return empty;
  }
  const CampaignReport::ShardInfo info{effective, plan.total_jobs};
  const std::string digest = spec_digest_of(full, options.fingerprint);

  std::unique_ptr<VerdictCache> cache;
  if (!options.cache_dir.empty()) {
    std::string cache_error;
    cache = VerdictCache::open(options.cache_dir, &cache_error);
    if (!cache) {
      set_error(error, "verdict cache: " + cache_error);
      return empty;
    }
  }

  // Resume: load finished jobs from the checkpoint, keyed by name.
  std::vector<JobResult> results(plan.spec.jobs.size());
  std::vector<bool> done(plan.spec.jobs.size(), false);
  std::unordered_map<std::string, std::size_t> position;
  for (std::size_t i = 0; i < plan.spec.jobs.size(); ++i)
    position[plan.spec.jobs[i].name] = i;

  if (!options.checkpoint_path.empty()) {
    std::error_code exists_error;
    const bool exists =
        std::filesystem::exists(options.checkpoint_path, exists_error);
    const auto text =
        exists ? read_text_file(options.checkpoint_path) : std::nullopt;
    if (exists && !text) {
      // Present but unreadable (permissions, transient I/O) is a hard
      // error: silently starting over would clobber the journal and
      // discard every recorded verdict on the first completion.
      set_error(error, "checkpoint '" + options.checkpoint_path +
                           "' exists but cannot be read — fix its "
                           "permissions or delete it to start over");
      return empty;
    }
    if (text) {
      CampaignReport saved;
      std::string parse_error;
      if (!parse_report(*text, &saved, &parse_error)) {
        set_error(error, "checkpoint '" + options.checkpoint_path +
                             "' is unreadable (" + parse_error +
                             ") — delete it to start over");
        return empty;
      }
      if (saved.seed != full.seed || !saved.shard ||
          saved.shard->shard.index != effective.index ||
          saved.shard->shard.count != effective.count ||
          saved.shard->total_jobs != plan.total_jobs) {
        set_error(error, "checkpoint '" + options.checkpoint_path +
                             "' belongs to a different campaign or shard — "
                             "delete it to start over");
        return empty;
      }
      if (saved.spec_digest != digest) {
        set_error(error, "checkpoint '" + options.checkpoint_path +
                             "' was recorded under different campaign "
                             "parameters (budgets/flags, or a workload "
                             "source — e.g. a corpus file — edited since "
                             "the journal was written) — delete it to "
                             "start over");
        return empty;
      }
      for (const JobResult& job : saved.jobs) {
        const auto it = position.find(job.name);
        if (it == position.end() || plan.spec_indices[it->second] != job.spec_index) {
          set_error(error, "checkpoint '" + options.checkpoint_path +
                               "' records unknown job '" + job.name +
                               "' — delete it to start over");
          return empty;
        }
        results[it->second] = job;
        done[it->second] = true;
      }
    }
  }

  // Verdict-cache hits fill in after the checkpoint: a hit restores the
  // stable verdict fields with solver counters zeroed and from_cache
  // set, and — like a checkpoint-resumed job — does not fire the user's
  // on_job_done hook: the job was not solved by this run.
  if (cache) {
    for (std::size_t i = 0; i < plan.spec.jobs.size(); ++i) {
      if (done[i]) continue;
      const JobSpec& job = plan.spec.jobs[i];
      if (!VerdictCache::cacheable(job)) continue;
      const auto hit = cache->lookup(VerdictCache::key_of(job, options.fingerprint));
      if (!hit) continue;
      JobResult r;
      r.name = job.name;
      r.spec_index = plan.spec_indices[i];
      r.provenance = job.provenance;
      r.verdict = hit->verdict;
      r.trace_length = hit->trace_length;
      r.bad_label = hit->bad_label;
      r.proved_k = hit->proved_k;
      r.note = hit->note;
      r.from_cache = true;
      results[i] = std::move(r);
      done[i] = true;
    }
    // Cached FALSIFIED rows are re-validated like freshly solved ones:
    // the journal line's self-check proves integrity, not truth. The
    // post-pass re-derives the trace (canonical default-config sweep),
    // replays and shrinks it, so a warm run reports witness_checked /
    // trace_length_shrunk byte-identically to a cold one — and a
    // poisoned cache entry demotes to a diagnosed UNKNOWN instead of
    // shipping. from_cache stays set either way. Checkpoint-resumed
    // rows round-trip their recorded check and are not re-run.
    if (options.pool.witness.check) {
      const std::shared_ptr<smt::ConeCache> cones =
          options.pool.cone_cache ? options.pool.cone_cache
                                  : std::make_shared<smt::ConeCache>();
      for (std::size_t i = 0; i < plan.spec.jobs.size(); ++i)
        if (done[i] && results[i].from_cache && !results[i].witness_checked &&
            results[i].verdict == Verdict::Falsified)
          witness_post_pass(plan.spec.jobs[i], options.pool.witness, cones,
                            &results[i]);
    }
  }

  // The sub-spec of jobs the checkpoint does not already cover.
  CampaignSpec pending;
  pending.seed = full.seed;
  std::vector<std::size_t> pending_to_plan;
  for (std::size_t i = 0; i < plan.spec.jobs.size(); ++i) {
    if (done[i]) continue;
    pending.jobs.push_back(plan.spec.jobs[i]);
    pending_to_plan.push_back(i);
  }

  CampaignOptions pool = options.pool;
  std::mutex checkpoint_mutex;
  const auto user_hook = options.pool.on_job_done;
  const bool journal = !options.checkpoint_path.empty();
  if (journal || user_hook || cache || fault::armed()) {
    pool.on_job_done = [&, user_hook, journal](std::size_t pending_index,
                                               const JobResult& job) {
      const std::size_t i = pending_to_plan[pending_index];
      JobResult patched = job;
      patched.spec_index = plan.spec_indices[i];
      // A job wound down by the global stop (SIGTERM/SIGINT, or an
      // injected stop fault) reports Unknown only because it was
      // interrupted; journaling or caching that row would make the
      // resumed run differ from an uninterrupted one. Skip persistence —
      // the resume re-solves it properly.
      const bool interrupted_unknown =
          fault::global_stop_requested() && patched.verdict == Verdict::Unknown;
      // Persist freshly solved verdicts (VerdictCache serializes its own
      // journal; no need for the checkpoint mutex). Jobs served from the
      // cache never reach this hook — run_campaign only ran the misses.
      if (cache && !interrupted_unknown && VerdictCache::cacheable(plan.spec.jobs[i])) {
        VerdictCache::Entry entry;
        entry.verdict = patched.verdict;
        entry.trace_length = patched.trace_length;
        entry.bad_label = patched.bad_label;
        entry.proved_k = patched.proved_k;
        entry.note = patched.note;
        cache->append(VerdictCache::key_of(plan.spec.jobs[i], options.fingerprint),
                      entry);
      }
      if (journal && !interrupted_unknown) {
        std::lock_guard<std::mutex> lock(checkpoint_mutex);
        results[i] = patched;
        done[i] = true;
        CampaignReport snapshot;
        snapshot.seed = full.seed;
        snapshot.shard = info;
        snapshot.spec_digest = digest;
        for (std::size_t k = 0; k < results.size(); ++k)
          if (done[k]) snapshot.jobs.push_back(results[k]);
        // Best-effort journal: an unwritable checkpoint only costs the
        // resume, never the run.
        write_text_file_atomic(options.checkpoint_path,
                               snapshot.to_json(/*include_timing=*/true),
                               "checkpoint.write");
      }
      // The hook contract is positions in the spec the caller handed to
      // run_sharded, not the internal pending sub-spec (jobs resumed from
      // the checkpoint do not re-fire the hook).
      if (user_hook) user_hook(patched.spec_index, patched);
      // Fault point "worker.job_done" (docs/ROBUSTNESS.md): fires only
      // after the finished job was journaled and reported, so an injected
      // kill/hang/stop always leaves a resumable checkpoint behind —
      // exactly the crash window the dispatcher's relaunch path covers.
      if (fault::armed()) {
        if (const auto action = fault::hit("worker.job_done"))
          fault::execute_process_action(*action);
      }
    };
  }

  const CampaignReport fresh = run_campaign(pending, pool);

  CampaignReport report;
  report.seed = full.seed;
  report.threads = fresh.threads;
  report.wall_seconds = fresh.wall_seconds;
  if (options.shard) report.shard = info;
  for (std::size_t i = 0; i < fresh.jobs.size(); ++i)
    results[pending_to_plan[i]] = fresh.jobs[i];
  report.jobs = std::move(results);
  for (std::size_t i = 0; i < report.jobs.size(); ++i)
    report.jobs[i].spec_index = plan.spec_indices[i];
  return report;
}

}  // namespace sepe::engine
