// campaign.hpp — the parallel verification-campaign engine.
//
// The paper's headline experiments (Table 1, Fig. 3/4) are embarrassingly
// parallel sweeps: instruction classes × QED mode {EDDI-V, EDSEP-V} ×
// injected mutation, each cell an independent model-checking run. This
// engine is the architectural seam those sweeps (and every future scaling
// direction — sharding, portfolio solvers, multi-backend) plug into:
//
//   * a CampaignSpec is a declarative list of verification jobs; where
//     the jobs come from is a *workload family* concern (engine/
//     workload.hpp): the QED matrix cross-product and BTOR2 corpus
//     directories both expand into the same JobSpec shape, and this
//     layer never knows which family produced a job beyond the
//     provenance tag it carries into reports;
//   * a work-queue thread pool fans jobs out, one isolated TermManager /
//     solver stack per job (nothing below the engine is shared, so no
//     locking in the hot path);
//   * each job races BMC against k-induction: the first definite verdict
//     (counterexample or proof) wins and cancels the loser through the
//     cooperative stop flag threaded down into the CDCL loop;
//   * results aggregate into a CampaignReport that is deterministic for a
//     fixed spec — verdicts, trace lengths and proof depths are identical
//     whatever the thread count, because only *definite* verdicts cancel
//     the other prover (a clean bound sweep never suppresses a proof, and
//     both provers enumerate counterexamples shortest-first). Caveat: the
//     guarantee needs deterministic budgets — conflict budgets qualify,
//     wall-clock caps (JobBudget::max_seconds) do not, since a cap that
//     fires earlier under core contention can demote a verdict to Unknown.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bmc/bmc.hpp"
#include "bmc/kind.hpp"

namespace sepe::engine {

struct WitnessTrace;  // engine/witness.hpp

/// Final answer for one job.
enum class Verdict {
  Falsified,   // counterexample found (by either prover)
  Proved,      // k-induction closed: no violation at any depth
  BoundClean,  // BMC exhausted its bound cleanly; no proof within the
               // induction side's depth/budget limits
  Unknown,     // a resource budget cut the BMC sweep itself short, or
               // the model itself failed to build (JobResult::note)
};
const char* verdict_name(Verdict v);

/// Which prover delivered the verdict.
enum class Prover { None, Bmc, KInduction };
const char* prover_name(Prover p);

/// Workload-family tags (JobProvenance::family).
inline constexpr const char* kQedFamily = "qed";
inline constexpr const char* kBtor2Family = "btor2";

/// Where a job came from: which workload family expanded it, from which
/// source, and which of the source's properties it checks. Stamped into
/// JobResult and the report columns, and folded into checkpoint spec
/// digests so a resume under changed sources is refused.
struct JobProvenance {
  std::string family = kQedFamily;  // workload family tag
  /// Family-specific source id — e.g. the corpus-relative file path of
  /// a BTOR2 job. QED matrix jobs leave it empty (their names already
  /// encode mutation × mode).
  std::string source;
  unsigned property = 0;  // bad-property index within the source
  /// Hash of the source's content (corpus file bytes), covered by the
  /// checkpoint spec digest. Empty for in-process model builders.
  std::string content_digest;
  /// Legacy QED report column ("EDDI-V" / "EDSEP-V"). Non-QED families
  /// leave it empty and report workload/source/property instead; the
  /// default keeps hand-built JobSpecs byte-compatible with the
  /// pre-workload report dialect.
  std::string mode = "EDDI-V";
};

/// Search budgets for one job.
struct JobBudget {
  unsigned max_bound = 10;      // BMC bound sweep limit
  unsigned max_k = 10;          // k-induction depth limit (0 = BMC only)
  std::uint64_t conflict_budget = 0;  // per-solver-call cap (0 = none)
  double max_seconds = 0.0;           // per-job wall cap (0 = none)
  bool race_k_induction = true;       // false = BMC only, no second prover
  /// Race this many differently-configured CDCL instances per prover
  /// (sat::SolverConfig::portfolio_member). 1 = the default config only.
  /// Verdict-bearing fields stay deterministic: all members agree on
  /// verdict/length/depth by construction, and a witness found by a
  /// non-default member is re-derived with the default config before it
  /// is reported. Under a conflict budget a wider portfolio can only
  /// *upgrade* Unknown verdicts to definite ones, never change them.
  unsigned portfolio = 1;
  /// Run the provers sequentially on the calling thread with no
  /// cancellation (and the default solver config only). Slower, but every
  /// counter in the JobResult — not just the verdict fields — is then
  /// deterministic: both provers always run to completion. Used by
  /// bench/campaign_perf for the perf trajectory.
  bool sequential_provers = false;
  /// Bit-blasting encoding for both provers. nullopt = the workload
  /// family's default, resolved at expansion: QED keeps full Tseitin
  /// (Plaisted–Greenbaum measured ~7% MORE conflicts there, PR 3),
  /// the BTOR2 corpus family turns PG on (measured ~11% FEWER conflicts
  /// on the committed mini-corpus). Verdict-bearing report fields are
  /// encoding-independent either way.
  std::optional<bool> plaisted_greenbaum;
  /// SAT engine behind both provers (sat/backend.hpp). Part of the
  /// verdict-cache key and the checkpoint spec digest: a campaign solved
  /// by a different engine is a different campaign. Witnesses are always
  /// re-derived with the native default-config replay, so stable JSON is
  /// backend-independent for definite verdicts.
  sat::BackendKind backend = sat::BackendKind::Native;
  /// Per-entrant SAT-arena memory ceiling in MiB (0 = none). A job whose
  /// solvers outgrow it degrades to Verdict::Unknown with a
  /// "resource: memory" note — a diagnosed row, never a process abort.
  /// Deterministic (the arena is a pure function of the clause stream),
  /// so it is part of the verdict-cache key and the spec digest.
  unsigned memory_limit_mb = 0;
  /// Learnt-clause sharing (sat/exchange.hpp): 0 = off, N = export learnt
  /// clauses with LBD <= N between portfolio entrants (intra-job) and
  /// through the campaign clause vault (cross-job). Imported clauses are
  /// always implied, so definite verdicts are sharing-invariant — and
  /// stable JSON stays byte-identical because witnesses are re-derived by
  /// an unshared canonical replay whenever sharing is on. Guard: sharing
  /// is disabled per-job while conflict_budget or memory_limit_mb is set,
  /// because an import can change *when* a budget trips, and in race mode
  /// pool content is timing-dependent — the only path by which sharing
  /// could perturb a pinned verdict. Part of the verdict-cache key and
  /// the spec digest.
  unsigned share_clauses = 0;
};

/// One verification job: a self-contained model builder plus budgets.
/// `build` runs on a worker thread against a job-local TransitionSystem /
/// TermManager, so it must not touch mutable shared state. It returns
/// false and sets *error (never null) on failure — e.g. a malformed
/// corpus file parsed on the worker — and the engine then reports the
/// job as Verdict::Unknown with the diagnostic in JobResult::note
/// instead of aborting the campaign.
struct JobSpec {
  std::string name;
  std::function<bool(ts::TransitionSystem&, std::string*)> build;
  JobProvenance provenance;
  JobBudget budget;
};

/// A campaign: ordered jobs plus the RNG seed recorded in the report
/// (and used by spec generators that sample, e.g. sepe-run's random
/// opcode subsets). The engine itself is deterministic for a fixed spec.
struct CampaignSpec {
  std::vector<JobSpec> jobs;
  std::uint64_t seed = 1;
};

/// One slice of a campaign: shard `index` of `count` equal partitions of
/// the expanded job list (see engine/shard.hpp for the planner).
struct ShardSpec {
  unsigned index = 0;  // 0-based
  unsigned count = 1;  // total shards of the spec
};

/// Per-job outcome. All verdict-bearing fields (verdict, trace_length,
/// proved_k, bad_label, note) are deterministic for a fixed spec; timing
/// and conflict counts are not and are excluded from stable reports.
struct JobResult {
  std::string name;
  std::size_t spec_index = 0;  // position in the full (unsharded) spec
  JobProvenance provenance;
  Verdict verdict = Verdict::Unknown;
  Prover winner = Prover::None;
  unsigned trace_length = 0;  // Falsified: counterexample length
  unsigned proved_k = 0;      // Proved: depth at which induction closed
  std::string bad_label;      // Falsified: which bad condition fired
  std::string witness;        // Falsified: rendered trace table
  /// Unknown: the model-build diagnostic (e.g. a corpus parse error with
  /// its line number). Deterministic, so it travels in stable reports.
  std::string note;
  unsigned bmc_bounds_checked = 0;
  bool loser_cancelled = false;  // a losing prover observed the stop flag
  bool hit_resource_limit = false;
  /// Race mode: the winning prover's counters (scheduling-dependent).
  /// Sequential mode (JobBudget::sequential_provers): totals across both
  /// provers, fully deterministic — the perf-report proxy metrics.
  std::uint64_t conflicts = 0;
  std::uint64_t propagations = 0;
  std::uint64_t decisions = 0;
  std::uint64_t cnf_vars = 0;
  std::uint64_t cnf_clauses = 0;
  /// Cone-cache traffic of this job's solver stacks (campaign cache;
  /// zero when the job ran uncached). Same determinism caveats as the
  /// other counters: race mode reports the winner's stacks, sequential
  /// mode the deterministic totals.
  std::uint64_t cone_lookups = 0;
  std::uint64_t cone_hits = 0;
  std::uint64_t cone_clauses_replayed = 0;
  /// Inprocessing counters of this job's SAT engines (same determinism
  /// caveats; zero with inprocessing off or a counter-less backend).
  std::uint64_t eliminated_vars = 0;
  std::uint64_t subsumed_clauses = 0;
  std::uint64_t vivified_clauses = 0;
  /// True when the verdict was loaded from a campaign verdict cache
  /// (engine/verdict_cache.hpp) instead of being solved in-process.
  bool from_cache = false;
  /// Witness pipeline (engine/witness.hpp; timing report only — the
  /// post-pass is observationally invisible to the stable form).
  /// witness_checked: this FALSIFIED row's trace was independently
  /// replayed (and shrunk) by the concrete simulator after the solve.
  /// trace_length_shrunk: the delta-debugged effective stimulus length,
  /// always <= trace_length. Deterministic for a fixed spec.
  bool witness_checked = false;
  unsigned trace_length_shrunk = 0;
  /// Falsified, solved in-process: the index-ordered trace the witness
  /// post-pass replays (set alongside `witness`; cleared by the
  /// post-pass once checked). Never serialized — cached or deserialized
  /// rows re-derive their trace instead.
  std::shared_ptr<const WitnessTrace> trace;
  /// Robustness observables (timing report only): the job's SAT engines
  /// tripped the JobBudget::memory_limit_mb ceiling / absorbed transient
  /// backend failures by retrying (docs/ROBUSTNESS.md).
  bool hit_memory_limit = false;
  std::uint64_t sat_retries = 0;
  /// Learnt-clause sharing traffic (same determinism caveats as the other
  /// counters; zero with sharing off). In sequential mode only the vault
  /// is active, so all three are bit-reproducible.
  std::uint64_t clauses_exported = 0;
  std::uint64_t clauses_imported = 0;
  std::uint64_t vault_hits = 0;
  double seconds = 0.0;  // job wall time
};

/// Witness post-pass configuration (engine/witness.hpp).
struct WitnessOptions {
  /// Replay + shrink every FALSIFIED verdict; a trace that does not
  /// replay demotes its row to a diagnosed UNKNOWN ("witness: replay
  /// mismatch"). Opt-out (sepe-run --no-witness-check): the check is the
  /// default correctness backstop, not an extra.
  bool check = true;
  /// When non-empty: write one standalone artifact per checked job into
  /// this directory (witness_artifact_filename), re-validatable by
  /// `sepe-run check-witness` without the SAT stack.
  std::string artifact_dir;
};

struct CampaignOptions {
  unsigned threads = 1;  // worker count (0 = hardware_concurrency)
  /// Witness replay/shrink post-pass, applied to every finished job
  /// before on_job_done fires (so journals and caches record the
  /// checked row).
  WitnessOptions witness;
  /// Called after each job completes with its spec position and result.
  /// Invoked from worker threads without serialization — the callback
  /// must synchronize itself. Used by the checkpointing shard runner.
  std::function<void(std::size_t, const JobResult&)> on_job_done;
  /// Cone store shared by every job of the campaign. When null,
  /// run_campaign creates a fresh one per call — pass one explicitly to
  /// share blasted cones across *campaigns* in the same process (as
  /// bench/campaign_perf's warm run does).
  std::shared_ptr<smt::ConeCache> cone_cache;
  /// Learnt-clause vault shared by every job (sat/exchange.hpp). Only
  /// consulted by jobs whose budget sets share_clauses. When null,
  /// run_campaign creates a fresh one per call — pass one explicitly to
  /// share learnt clauses across campaigns in the same process.
  std::shared_ptr<sat::ClauseVault> clause_vault;
};

struct CampaignReport {
  /// Present on reports produced by a sharded run: which slice of the
  /// full expanded job list this report covers. Reports carrying shard
  /// metadata also emit per-job spec_index, so a merge can restore the
  /// original spec order; unsharded (and merged) reports omit both,
  /// keeping their stable JSON byte-identical to a single-process run.
  struct ShardInfo {
    ShardSpec shard;
    std::uint64_t total_jobs = 0;  // job count of the full spec
  };

  std::vector<JobResult> jobs;  // in spec order, regardless of threads
  std::uint64_t seed = 0;
  unsigned threads = 0;
  double wall_seconds = 0.0;
  std::optional<ShardInfo> shard;
  /// Digest of the spec's job names, budgets, and provenance (plus
  /// caller-supplied campaign parameters), set by the checkpointing
  /// shard runner and emitted only in the timing report form. Resume
  /// refuses a checkpoint whose digest disagrees, so stale verdicts
  /// recorded under different budgets — or a corpus file edited since
  /// the journal was written — are never silently reused.
  std::string spec_digest;

  unsigned count(Verdict v) const;
  /// Human-readable per-job stats table.
  std::string to_table() const;
  /// Machine-readable report. With include_timing=false only the
  /// deterministic fields are emitted (byte-identical across runs and
  /// thread counts for a fixed spec). QED-family jobs keep the original
  /// report dialect (a "mode" column); other families report
  /// workload/source/property provenance columns instead.
  std::string to_json(bool include_timing = true) const;

  /// Combine per-shard reports into the report of the full campaign.
  /// Order-insensitive and deterministic: any permutation of the same
  /// disjoint shard set yields the same report, whose stable JSON is
  /// byte-identical to an unsharded run of the spec. Rejects (returns
  /// nullopt, sets *error) inputs that are not shard reports, disagree
  /// on seed/count/total, overlap, or fail to cover every job id.
  static std::optional<CampaignReport> merge(const std::vector<CampaignReport>& shards,
                                             std::string* error);
};

/// Run one job on the calling thread (racing its provers internally).
/// `cone_cache` (may be null) is shared by every solver stack the job
/// spins up — the portfolio entrants, both provers, and the canonical
/// witness replay all hit the same store. `clause_vault` (may be null)
/// is the cross-job learnt-clause store; it is only consulted when
/// job.budget.share_clauses is set.
JobResult run_job(const JobSpec& job,
                  const std::shared_ptr<smt::ConeCache>& cone_cache = nullptr,
                  const std::shared_ptr<sat::ClauseVault>& clause_vault = nullptr);

/// Fan the campaign out over a worker pool and aggregate the report.
CampaignReport run_campaign(const CampaignSpec& spec,
                            const CampaignOptions& options = {});

}  // namespace sepe::engine
