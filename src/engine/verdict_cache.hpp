// verdict_cache.hpp — persistent cross-campaign verdict cache.
//
// The second level of the campaign cache (the in-process first level is
// smt/cone_cache.hpp): verdict-bearing job results keyed by a content
// digest of everything that determines them, persisted in an on-disk
// journal so a re-run, a dispatcher retry, or an overlapping campaign
// skips already-solved frontiers entirely. This generalizes the PR-2
// frontier checkpoint across jobs *and* campaigns: a checkpoint resumes
// one shard of one campaign, the verdict cache serves any campaign whose
// jobs digest to the same keys.
//
// Key: a 64-bit FNV-1a digest (16 hex digits) over a format-version tag,
// the caller's fingerprint (sepe-run's xlen/modes or workload=btor2),
// the full job provenance (family, source, property index, per-file
// content digest, QED mode), the job name, and every budget knob with
// the encoding *resolved* (the tri-state plaisted_greenbaum collapses to
// the encoding the job actually runs). Anything that could change the
// verdict changes the key, so stale entries are unreachable rather than
// refused — unlike a checkpoint, the cache never rejects a run.
//
// Refusal rules (what is never cached):
//   * jobs with a wall-clock cap (max_seconds > 0): wall-capped verdicts
//     vary with machine load, so replaying one as fresh would launder a
//     nondeterministic answer into a deterministic-looking report;
//   * journal lines whose self-check digest does not match (truncation,
//     hand-editing, torn concurrent appends): diagnosed on stderr and
//     treated as a miss — never a wrong verdict.
//
// Journal format (docs/FORMATS.md): DIR/verdicts.jsonl, one JSON object
// per line, appended with O_APPEND so concurrent campaigns (dispatcher
// workers sharing --cache) interleave whole lines. Each line carries a
// trailing "check" field — the FNV-1a digest of everything before it —
// making every entry independently verifiable.
//
// What a hit restores: the stable verdict-bearing fields only (verdict,
// trace_length, bad_label, proved_k, note). Witness text is never
// serialized anywhere (FORMATS.md), and timing fields are scheduling-
// dependent, so a warm run's *stable* JSON is byte-identical to the cold
// run's while its timing form shows zero solver counters and
// from_cache=true.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "engine/campaign.hpp"

namespace sepe::engine {

class VerdictCache {
 public:
  /// The verdict-bearing payload of one cached job.
  struct Entry {
    Verdict verdict = Verdict::Unknown;
    unsigned trace_length = 0;
    std::string bad_label;
    unsigned proved_k = 0;
    std::string note;
  };

  struct Stats {
    std::uint64_t entries_loaded = 0;  // valid journal lines at open
    std::uint64_t corrupt_lines = 0;   // rejected at open (diagnosed)
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t appends = 0;
  };

  /// Open (creating the directory and journal as needed) the cache at
  /// `dir`, loading every valid journal entry. Corrupt lines are
  /// diagnosed on stderr and skipped — they can only cost a miss. Returns
  /// null and sets *error when the directory cannot be created or the
  /// journal exists but cannot be read.
  static std::unique_ptr<VerdictCache> open(const std::string& dir,
                                            std::string* error);

  /// False for jobs whose verdict may be nondeterministic (wall caps) —
  /// such jobs are neither cached nor served from the cache.
  static bool cacheable(const JobSpec& job);

  /// The cache key of `job` under the caller's campaign fingerprint
  /// (the same fingerprint string run_sharded folds into spec digests).
  static std::string key_of(const JobSpec& job, const std::string& fingerprint);

  /// Serialize one journal line (without trailing newline) — exposed for
  /// the corruption tests, which need to forge and truncate entries.
  static std::string format_line(const std::string& key, const Entry& e);
  /// Parse + self-check one journal line. Nullopt on any corruption.
  static std::optional<std::pair<std::string, Entry>> parse_line(
      const std::string& line);

  std::optional<Entry> lookup(const std::string& key);

  /// Record a fresh verdict: append to the journal (single O_APPEND
  /// write, whole line) and to the in-memory map. Append failures are
  /// diagnosed once on stderr and otherwise ignored — a read-only cache
  /// directory costs persistence, never the run.
  void append(const std::string& key, const Entry& e);

  Stats stats() const;

  /// The journal path used under `dir` (tests and docs reference it).
  static std::string journal_path(const std::string& dir);

 private:
  VerdictCache() = default;

  std::string path_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> map_;
  Stats stats_;
  bool write_error_diagnosed_ = false;
};

}  // namespace sepe::engine
