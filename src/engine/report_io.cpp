#include "engine/report_io.hpp"

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "util/fault.hpp"
#include "util/parse.hpp"

namespace sepe::engine {
namespace {

// --- a minimal JSON value + recursive-descent parser ---
//
// Numbers keep their raw token: the report carries 64-bit seeds that a
// double round-trip would corrupt, so conversion happens at the field,
// where the target width is known.

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  std::string text;  // Number: raw token; String: decoded bytes
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : fields)
      if (k == key) return &v;
    return nullptr;
  }
};

class Parser {
 public:
  Parser(const std::string& text, std::string* error) : text_(text), error_(error) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing garbage after JSON value");
    return true;
  }

 private:
  bool fail(const std::string& what) {
    if (error_ && error_->empty())
      *error_ = what + " at byte " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  bool literal(const char* word, std::size_t len) {
    if (text_.compare(pos_, len, word) != 0) return fail("unexpected token");
    pos_ += len;
    return true;
  }

  bool parse_value(JsonValue* out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    // Reports nest three levels deep; a corrupt file must not be able to
    // drive the recursion into a stack overflow.
    if (depth_ >= kMaxDepth) return fail("nesting too deep");
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': out->kind = JsonValue::Kind::String; return parse_string(&out->text);
      case 't':
        out->kind = JsonValue::Kind::Bool;
        out->boolean = true;
        return literal("true", 4);
      case 'f':
        out->kind = JsonValue::Kind::Bool;
        out->boolean = false;
        return literal("false", 5);
      case 'n': out->kind = JsonValue::Kind::Null; return literal("null", 4);
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue* out) {
    out->kind = JsonValue::Kind::Object;
    const DepthGuard guard(this);
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected object key");
      if (!parse_string(&key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(&value)) return false;
      out->fields.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue* out) {
    out->kind = JsonValue::Kind::Array;
    const DepthGuard guard(this);
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      JsonValue value;
      if (!parse_value(&value)) return false;
      out->items.push_back(std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // The writer only emits \u for control bytes; encode the rest
          // of the BMP as UTF-8 for robustness.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue* out) {
    out->kind = JsonValue::Kind::Number;
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return fail("unexpected token");
    out->text = text_.substr(start, pos_ - start);
    return true;
  }

  static constexpr int kMaxDepth = 64;
  struct DepthGuard {
    explicit DepthGuard(Parser* p) : parser(p) { ++parser->depth_; }
    ~DepthGuard() { --parser->depth_; }
    Parser* parser;
  };

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string* error_;
};

// --- field extraction ---

bool fail_field(std::string* error, const std::string& what) {
  if (error && error->empty()) *error = what;
  return false;
}

bool get_u64(const JsonValue& obj, const char* key, std::uint64_t* out,
             std::string* error, bool required = true) {
  const JsonValue* v = obj.find(key);
  if (!v) {
    if (!required) return true;
    return fail_field(error, std::string("missing field '") + key + "'");
  }
  std::optional<std::uint64_t> parsed;
  if (v->kind == JsonValue::Kind::Number) parsed = parse_u64_strict(v->text);
  if (!parsed)
    return fail_field(error,
                      std::string("field '") + key + "' is not an unsigned number");
  *out = *parsed;
  return true;
}

bool get_double(const JsonValue& obj, const char* key, double* out) {
  const JsonValue* v = obj.find(key);
  if (!v || v->kind != JsonValue::Kind::Number) return false;
  *out = std::strtod(v->text.c_str(), nullptr);
  return true;
}

const std::string* get_string(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  return v && v->kind == JsonValue::Kind::String ? &v->text : nullptr;
}

bool get_bool(const JsonValue& obj, const char* key, bool* out) {
  const JsonValue* v = obj.find(key);
  if (!v || v->kind != JsonValue::Kind::Bool) return false;
  *out = v->boolean;
  return true;
}

bool verdict_from_name(const std::string& name, Verdict* out) {
  for (Verdict v : {Verdict::Falsified, Verdict::Proved, Verdict::BoundClean,
                    Verdict::Unknown}) {
    if (name == verdict_name(v)) {
      *out = v;
      return true;
    }
  }
  return false;
}

bool prover_from_name(const std::string& name, Prover* out) {
  for (Prover p : {Prover::None, Prover::Bmc, Prover::KInduction}) {
    if (name == prover_name(p)) {
      *out = p;
      return true;
    }
  }
  return false;
}

/// The QED report dialect's two mode tags (engine::mode_tag). Kept as
/// literals so the reader stays decoupled from the QED module itself.
bool known_mode_tag(const std::string& tag) {
  return tag == "EDDI-V" || tag == "EDSEP-V";
}

bool parse_job(const JsonValue& obj, std::size_t position, JobResult* out,
               std::string* error) {
  if (obj.kind != JsonValue::Kind::Object)
    return fail_field(error, "jobs entry is not an object");
  const std::string* name = get_string(obj, "name");
  if (!name || name->empty())
    return fail_field(error, "jobs entry without a name");
  out->name = *name;

  const std::string* verdict = get_string(obj, "verdict");
  if (!verdict || !verdict_from_name(*verdict, &out->verdict))
    return fail_field(error, "job '" + out->name + "' has no valid verdict");

  std::uint64_t n = 0;
  // Provenance: non-QED rows carry workload/source/property columns;
  // QED rows keep the original dialect's "mode" column, which stays
  // strictly validated.
  if (const std::string* workload = get_string(obj, "workload")) {
    if (workload->empty() || *workload == kQedFamily)
      return fail_field(error, "job '" + out->name + "' has an invalid workload");
    out->provenance.family = *workload;
    out->provenance.mode.clear();
    if (const std::string* source = get_string(obj, "source"))
      out->provenance.source = *source;
    if (obj.find("property")) {
      if (!get_u64(obj, "property", &n, error)) return false;
      out->provenance.property = static_cast<unsigned>(n);
    }
  } else {
    const std::string* mode = get_string(obj, "mode");
    if (!mode || !known_mode_tag(*mode))
      return fail_field(error, "job '" + out->name + "' has no valid mode");
    out->provenance.family = kQedFamily;
    out->provenance.mode = *mode;
  }
  if (const std::string* note = get_string(obj, "error")) out->note = *note;

  out->spec_index = position;  // unsharded reports omit spec_index
  if (obj.find("spec_index")) {
    if (!get_u64(obj, "spec_index", &n, error)) return false;
    out->spec_index = static_cast<std::size_t>(n);
  }
  if (obj.find("trace_length")) {
    if (!get_u64(obj, "trace_length", &n, error)) return false;
    out->trace_length = static_cast<unsigned>(n);
  }
  if (obj.find("proved_k")) {
    if (!get_u64(obj, "proved_k", &n, error)) return false;
    out->proved_k = static_cast<unsigned>(n);
  }

  // Timing/race fields — present in the full report form only.
  if (const std::string* winner = get_string(obj, "winner")) {
    if (!prover_from_name(*winner, &out->winner))
      return fail_field(error, "job '" + out->name + "' has an unknown winner");
  }
  if (const std::string* label = get_string(obj, "bad_label")) out->bad_label = *label;
  if (obj.find("conflicts")) {
    if (!get_u64(obj, "conflicts", &n, error)) return false;
    out->conflicts = n;
  }
  if (obj.find("bmc_bounds_checked")) {
    if (!get_u64(obj, "bmc_bounds_checked", &n, error)) return false;
    out->bmc_bounds_checked = static_cast<unsigned>(n);
  }
  if (obj.find("cone_lookups")) {
    if (!get_u64(obj, "cone_lookups", &n, error)) return false;
    out->cone_lookups = n;
  }
  if (obj.find("cone_hits")) {
    if (!get_u64(obj, "cone_hits", &n, error)) return false;
    out->cone_hits = n;
  }
  if (obj.find("cone_clauses_replayed")) {
    if (!get_u64(obj, "cone_clauses_replayed", &n, error)) return false;
    out->cone_clauses_replayed = n;
  }
  if (obj.find("eliminated_vars")) {
    if (!get_u64(obj, "eliminated_vars", &n, error)) return false;
    out->eliminated_vars = n;
  }
  if (obj.find("subsumed_clauses")) {
    if (!get_u64(obj, "subsumed_clauses", &n, error)) return false;
    out->subsumed_clauses = n;
  }
  if (obj.find("vivified_clauses")) {
    if (!get_u64(obj, "vivified_clauses", &n, error)) return false;
    out->vivified_clauses = n;
  }
  if (obj.find("clauses_exported")) {
    if (!get_u64(obj, "clauses_exported", &n, error)) return false;
    out->clauses_exported = n;
  }
  if (obj.find("clauses_imported")) {
    if (!get_u64(obj, "clauses_imported", &n, error)) return false;
    out->clauses_imported = n;
  }
  if (obj.find("vault_hits")) {
    if (!get_u64(obj, "vault_hits", &n, error)) return false;
    out->vault_hits = n;
  }
  if (obj.find("sat_retries")) {
    if (!get_u64(obj, "sat_retries", &n, error)) return false;
    out->sat_retries = n;
  }
  get_bool(obj, "hit_memory_limit", &out->hit_memory_limit);
  get_bool(obj, "from_cache", &out->from_cache);
  get_bool(obj, "loser_cancelled", &out->loser_cancelled);
  get_bool(obj, "hit_resource_limit", &out->hit_resource_limit);
  // Witness pipeline: round-trips through checkpoint journals (timing
  // form), so resumed rows keep their recorded check instead of
  // re-deriving the trace.
  get_bool(obj, "witness_checked", &out->witness_checked);
  if (obj.find("trace_length_shrunk")) {
    if (!get_u64(obj, "trace_length_shrunk", &n, error)) return false;
    out->trace_length_shrunk = static_cast<unsigned>(n);
  }
  get_double(obj, "seconds", &out->seconds);
  return true;
}

}  // namespace

bool parse_report(const std::string& json, CampaignReport* out, std::string* error) {
  if (error) error->clear();
  JsonValue root;
  Parser parser(json, error);
  if (!parser.parse(&root)) return false;
  if (root.kind != JsonValue::Kind::Object)
    return fail_field(error, "report is not a JSON object");

  CampaignReport report;
  if (!get_u64(root, "seed", &report.seed, error)) return false;

  if (const JsonValue* shard = root.find("shard")) {
    if (shard->kind != JsonValue::Kind::Object)
      return fail_field(error, "'shard' is not an object");
    CampaignReport::ShardInfo info;
    std::uint64_t n = 0;
    if (!get_u64(*shard, "index", &n, error)) return false;
    info.shard.index = static_cast<unsigned>(n);
    if (!get_u64(*shard, "count", &n, error)) return false;
    info.shard.count = static_cast<unsigned>(n);
    if (!get_u64(*shard, "total_jobs", &info.total_jobs, error)) return false;
    if (info.shard.count == 0 || info.shard.index >= info.shard.count)
      return fail_field(error, "'shard' index/count out of range");
    report.shard = info;
  }

  std::uint64_t threads = 0;
  if (!get_u64(root, "threads", &threads, error, /*required=*/false)) return false;
  report.threads = static_cast<unsigned>(threads);
  get_double(root, "wall_seconds", &report.wall_seconds);
  if (const std::string* digest = get_string(root, "spec_digest"))
    report.spec_digest = *digest;

  const JsonValue* jobs = root.find("jobs");
  if (!jobs || jobs->kind != JsonValue::Kind::Array)
    return fail_field(error, "missing 'jobs' array");
  report.jobs.resize(jobs->items.size());
  for (std::size_t i = 0; i < jobs->items.size(); ++i)
    if (!parse_job(jobs->items[i], i, &report.jobs[i], error)) return false;

  *out = std::move(report);
  return true;
}

std::optional<std::string> read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return buffer.str();
}

bool write_text_file_atomic(const std::string& path, const std::string& text,
                            const char* fault_point) {
  // Transient filesystem trouble (and the faults docs/ROBUSTNESS.md
  // injects through `fault_point`) gets a bounded retry with a short
  // deterministic backoff: a checkpoint journal that misses one beat
  // still lands, and only a *persistently* failing disk degrades to the
  // best-effort path the callers document. The temp-file + rename dance
  // keeps readers from ever observing a torn file: a short write only
  // ever strands (and here removes) the .tmp, never the published one.
  constexpr int kMaxAttempts = 3;
  const std::string tmp = path + ".tmp";
  for (int attempt = 1; attempt <= kMaxAttempts; ++attempt) {
    std::optional<fault::Action> injected;
    if (fault_point != nullptr && fault::armed()) injected = fault::hit(fault_point);
    bool ok = false;
    // Fail/enospc skip the write outright; torn/short write a truncated
    // temp file — the crash-mid-write window — which is then discarded.
    const bool writes_bytes =
        !injected || *injected == fault::Action::Torn ||
        *injected == fault::Action::Short;
    if (writes_bytes) {
      const std::size_t bytes = injected ? text.size() / 2 : text.size();
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (out) {
        out.write(text.data(), static_cast<std::streamsize>(bytes));
        out.flush();
        ok = static_cast<bool>(out) && !injected;
      }
    }
    if (ok && std::rename(tmp.c_str(), path.c_str()) == 0) return true;
    std::remove(tmp.c_str());
    if (attempt < kMaxAttempts)
      std::this_thread::sleep_for(std::chrono::milliseconds(5 << (attempt - 1)));
  }
  return false;
}

}  // namespace sepe::engine
