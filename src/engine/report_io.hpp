// report_io.hpp — reading campaign reports back from their JSON form.
//
// The scale-out seam (engine/shard.hpp) moves reports between processes
// and hosts as JSON files: shard runs write them, `sepe-run merge` and
// the checkpoint/resume path read them back. This is the reader side —
// a small recursive-descent parser for exactly the dialect
// CampaignReport::to_json emits (both the timing and the stable form,
// with or without shard metadata). Unknown fields are skipped so newer
// writers stay readable by older readers.
#pragma once

#include <optional>
#include <string>

#include "engine/campaign.hpp"

namespace sepe::engine {

/// Parse a report previously produced by CampaignReport::to_json.
/// Returns false and sets *error (with a byte offset) on malformed
/// input or on values outside the report schema (unknown verdict names,
/// non-numeric counts, a jobs entry without a name, ...).
bool parse_report(const std::string& json, CampaignReport* out, std::string* error);

/// Slurp a file; nullopt when it cannot be opened/read.
std::optional<std::string> read_text_file(const std::string& path);

/// Write `text` to `path` atomically (temp file + rename) so readers
/// never observe a torn report. Transient failures — including ones
/// injected through the optional `fault_point` (docs/ROBUSTNESS.md,
/// e.g. "checkpoint.write" / "report.write") — are retried a bounded
/// number of times with a short deterministic backoff before the write
/// is given up on. Returns false on persistent I/O failure.
bool write_text_file_atomic(const std::string& path, const std::string& text,
                            const char* fault_point = nullptr);

}  // namespace sepe::engine
