// witness.hpp — the witness pipeline: independent replay, delta-debug
// shrinking, and standalone artifacts for every FALSIFIED verdict.
//
// Counterexample traces come out of the blast/solve/extract chain, and
// with caching (engine/verdict_cache.hpp), clause sharing and a
// multi-process dispatcher all feeding verdicts, a bug anywhere in that
// chain — or a tampered cache line or dispatch worker — could ship a
// bogus trace undetected. This layer is the engine-independent backstop:
//
//   * replay_trace re-executes the reported stimulus through the concrete
//     transition-system simulator (sim/ts_sim.hpp — the same evaluator
//     the ISS cross-checks ride on, no SAT anywhere) and asserts the
//     reported bad condition actually fires at the reported bound;
//   * shrink_trace delta-debugs the stimulus — zeroing whole steps, then
//     individual values, in a fixed order with no randomness — while the
//     replay still falsifies, yielding the deterministic "effective
//     stimulus length" reported as trace_length_shrunk;
//   * render_witness_artifact emits a self-contained versioned line-JSON
//     file (embedded BTOR2 model + stimulus + self-check digest, in the
//     style of the verdict journal) that check_witness_text re-validates
//     from the bytes alone — `sepe-run check-witness FILE` and the
//     dispatcher's cross-check of retried/stolen shards both go through
//     it without loading the SAT stack.
//
// witness_post_pass wires the three into run_campaign / run_sharded as an
// opt-out post-pass: a FALSIFIED job whose trace does not replay is
// hard-failed to a diagnosed UNKNOWN ("witness: replay mismatch") rather
// than reported on faith. Replay is deterministic, so none of this
// touches the verdict-cache key. Formats: docs/FORMATS.md.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bmc/bmc.hpp"
#include "engine/campaign.hpp"
#include "ts/transition_system.hpp"

namespace sepe::engine {

/// A counterexample trace in declaration-index order: row t of `inputs`
/// holds one value per ts.inputs() entry for step t (t = 0..length), and
/// `states` holds leading state rows in ts.states() order (artifacts and
/// shrunk traces keep only row 0 — later rows are recomputed by replay).
/// Unlike bmc::Witness, whose assignments are keyed on the job-local
/// TermManager, this form survives the job: extract_trace must run while
/// the witness's TransitionSystem is alive, the result needs nothing.
struct WitnessTrace {
  unsigned length = 0;
  std::size_t bad_index = 0;
  std::string bad_label;
  std::vector<std::vector<BitVec>> inputs;
  std::vector<std::vector<BitVec>> states;
};

/// Convert a solver witness into the index-ordered form, reading the
/// assignments against `ts` (the system the witness was found on).
WitnessTrace extract_trace(const ts::TransitionSystem& ts, const bmc::Witness& w);

/// Outcome of a replay; `error` names the first divergence (step, kind).
struct WitnessReplay {
  bool ok = false;
  std::string error;
};

/// Re-execute `trace` on `ts` with the concrete simulator: the initial
/// state must agree with every init value, every recorded state row must
/// be reproduced, every (init-)constraint must hold at every step, and
/// the reported bad condition must fire at step trace.length. Handles
/// both in-process systems (explicit init constraints) and round-tripped
/// BTOR2 dumps (init constraints guarded by the writer's at-init flag
/// state); recorded rows may cover a prefix of the declared variables —
/// extra states keep their init values, extra inputs evaluate as zero.
WitnessReplay replay_trace(const ts::TransitionSystem& ts, const WitnessTrace& trace);

/// Delta-debug `trace` in place (the caller must have verified it replays
/// green): drop state rows beyond row 0, then zero whole stimulus steps
/// (latest first), then individual values (earliest first), keeping each
/// reduction only while the replay still falsifies. Fixed order, no
/// randomness — byte-deterministic for a fixed trace. Returns the
/// effective stimulus length: the last step with any non-zero input
/// (0 when the violation needs no stimulus at all), always <= length.
unsigned shrink_trace(const ts::TransitionSystem& ts, WitnessTrace* trace);

/// Render the standalone artifact for a checked + shrunk trace:
/// header line, embedded BTOR2 model line, one line per stimulus step,
/// and a trailing self-check digest over everything before it.
std::string render_witness_artifact(const ts::TransitionSystem& ts,
                                    const std::string& job_name,
                                    const JobProvenance& provenance,
                                    const WitnessTrace& trace, unsigned shrunk);

/// Parsed artifact header (line 1), returned by check_witness_text so
/// callers can cross-check it against the report row it claims to back.
struct WitnessHeader {
  std::string name;
  std::string family;
  std::string source;
  unsigned property = 0;
  std::string mode;
  unsigned length = 0;
  unsigned shrunk = 0;
  std::size_t bad_index = 0;
  std::string bad_label;
};

/// Re-validate an artifact from its bytes alone: self-check digest,
/// strict line grammar, embedded-model parse, full simulator replay, and
/// the recorded shrunk length recomputed from the stimulus. No SAT stack
/// is ever loaded. Returns false with a diagnostic in *error (never
/// null-checked away: tampering is always loud); on success *header
/// (optional) receives the parsed header.
bool check_witness_text(const std::string& text, WitnessHeader* header,
                        std::string* error);

/// Artifact file name for a job: the sanitized job name plus a short
/// digest of the exact name (collision guard for names that sanitize
/// identically), ending in ".witness".
std::string witness_artifact_filename(const std::string& job_name);

/// The artifact self-check: FNV-1a over `payload`, as 16 hex digits.
/// Exposed so tamper tests can re-seal a corrupted payload and prove the
/// *replay* (not just the digest) rejects it.
std::string witness_self_check(const std::string& payload);

/// The campaign post-pass for one job result. No-op unless
/// options.check is set and the verdict is FALSIFIED. Rebuilds the
/// model, obtains the trace (JobResult::trace when the job was solved
/// in-process; otherwise — cached or deserialized rows — a graceful
/// re-derivation with the canonical default-config native sweep bounded
/// at the claimed length), replays it, shrinks it, stamps
/// witness_checked / trace_length_shrunk, and, when options.artifact_dir
/// is set, writes the artifact (fault point "witness.write"; a failed
/// write degrades to a diagnostic, never a changed verdict). Any
/// disagreement — rebuild failure, missing or divergent trace, replay
/// failure — demotes the row to a diagnosed UNKNOWN with the note
/// "witness: replay mismatch". Deterministic for a fixed spec.
void witness_post_pass(const JobSpec& job, const WitnessOptions& options,
                       const std::shared_ptr<smt::ConeCache>& cone_cache,
                       JobResult* result);

}  // namespace sepe::engine
