#include "engine/witness.hpp"

#include <cstdio>
#include <cstring>
#include <sstream>

#include "engine/report_io.hpp"
#include "sim/ts_sim.hpp"
#include "smt/eval.hpp"
#include "ts/btor2_parser.hpp"
#include "util/json.hpp"
#include "util/parse.hpp"

namespace sepe::engine {

namespace {

/// Artifact format version: bump whenever the line layout changes, so
/// files written by an older binary are refused instead of misread.
constexpr int kWitnessVersion = 1;

std::uint64_t fnv1a(const char* data, std::size_t n,
                    std::uint64_t h = 1469598103934665603ull) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

/// Inverse of sepe::json_escape for the exact dialect it emits (same
/// contract as the verdict-journal reader): returns false on malformed
/// input — a hand-edited line that de-syncs the quoting.
bool unescape(const std::string& s, std::size_t* pos, std::string* out) {
  std::size_t i = *pos;
  if (i >= s.size() || s[i] != '"') return false;
  ++i;
  out->clear();
  while (i < s.size()) {
    const char c = s[i++];
    if (c == '"') {
      *pos = i;
      return true;
    }
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (i >= s.size()) return false;
    const char esc = s[i++];
    switch (esc) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'b': out->push_back('\b'); break;
      case 'f': out->push_back('\f'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      case 't': out->push_back('\t'); break;
      case 'u': {
        if (i + 4 > s.size()) return false;
        unsigned code = 0;
        for (int k = 0; k < 4; ++k) {
          const char h = s[i++];
          code <<= 4;
          if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
          else return false;
        }
        if (code > 0x7f) return false;  // the writer only escapes control bytes
        out->push_back(static_cast<char>(code));
        break;
      }
      default: return false;
    }
  }
  return false;  // unterminated string
}

/// Positional scanner over one artifact line. The self-check digest
/// already guarantees the bytes are exactly what the renderer emitted,
/// so the scan is strict: any deviation is corruption, not dialect
/// drift (verdict-journal style).
struct Scanner {
  const std::string& s;
  std::size_t pos = 0;

  bool expect(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (s.compare(pos, n, lit) != 0) return false;
    pos += n;
    return true;
  }
  bool number(std::uint64_t* out) {
    const std::size_t start = pos;
    while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') ++pos;
    const auto v = parse_u64_strict(s.substr(start, pos - start));
    if (!v) return false;
    *out = *v;
    return true;
  }
  bool string_field(const char* name, std::string* out) {
    return expect(",\"") && expect(name) && expect("\":") && unescape(s, &pos, out);
  }
  bool u64_field(const char* name, std::uint64_t* out) {
    return expect(",\"") && expect(name) && expect("\":") && number(out);
  }
  bool done() const { return pos == s.size(); }
};

/// Strict inverse of BitVec::to_hex: "0x" + exactly (width+3)/4
/// lowercase nibbles whose value fits the width.
bool parse_hex_value(const std::string& s, unsigned width, BitVec* out) {
  const unsigned nibbles = (width + 3) / 4;
  if (s.size() != 2 + nibbles || s[0] != '0' || s[1] != 'x') return false;
  std::uint64_t v = 0;
  for (unsigned i = 2; i < s.size(); ++i) {
    const char c = s[i];
    v <<= 4;
    if (c >= '0' && c <= '9') v |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint64_t>(c - 'a' + 10);
    else return false;
  }
  if (v & ~BitVec::mask(width)) return false;  // top nibble overflows the width
  *out = BitVec(width, v);
  return true;
}

/// The deterministic "effective stimulus length": the last step with any
/// non-zero input value, 0 when the whole stimulus is zero.
unsigned effective_length(const WitnessTrace& trace) {
  unsigned last = 0;
  for (unsigned t = 0; t < trace.inputs.size(); ++t)
    for (const BitVec& v : trace.inputs[t])
      if (!v.is_zero()) last = t;
  return last;
}

}  // namespace

WitnessTrace extract_trace(const ts::TransitionSystem& ts, const bmc::Witness& w) {
  WitnessTrace trace;
  trace.length = w.length;
  trace.bad_index = w.bad_index;
  trace.bad_label = w.bad_label;
  trace.inputs.reserve(w.inputs.size());
  trace.states.reserve(w.states.size());
  for (unsigned t = 0; t <= w.length; ++t) {
    std::vector<BitVec> in_row, st_row;
    in_row.reserve(ts.inputs().size());
    st_row.reserve(ts.states().size());
    for (smt::TermRef in : ts.inputs()) in_row.push_back(w.inputs[t].at(in));
    for (smt::TermRef s : ts.states()) st_row.push_back(w.states[t].at(s));
    trace.inputs.push_back(std::move(in_row));
    trace.states.push_back(std::move(st_row));
  }
  return trace;
}

WitnessReplay replay_trace(const ts::TransitionSystem& ts, const WitnessTrace& trace) {
  const auto fail = [](std::string what) { return WitnessReplay{false, std::move(what)}; };
  const auto at = [](unsigned t) { return " at step " + std::to_string(t); };
  const std::vector<smt::TermRef>& ins = ts.inputs();
  const std::vector<smt::TermRef>& sts = ts.states();

  if (trace.bad_index >= ts.bads().size())
    return fail("bad index " + std::to_string(trace.bad_index) +
                " out of range (model declares " + std::to_string(ts.bads().size()) +
                " bad properties)");
  if (trace.inputs.size() != static_cast<std::size_t>(trace.length) + 1)
    return fail("trace claims length " + std::to_string(trace.length) + " but has " +
                std::to_string(trace.inputs.size()) + " input rows");
  for (unsigned t = 0; t < trace.inputs.size(); ++t) {
    if (trace.inputs[t].size() > ins.size())
      return fail("input row wider than the model" + at(t));
    for (std::size_t i = 0; i < trace.inputs[t].size(); ++i)
      if (trace.inputs[t][i].width() != ts.mgr().width(ins[i]))
        return fail("input width mismatch" + at(t));
  }
  if (trace.states.size() > static_cast<std::size_t>(trace.length) + 1)
    return fail("more state rows than steps");
  for (unsigned t = 0; t < trace.states.size(); ++t) {
    if (trace.states[t].size() > sts.size())
      return fail("state row wider than the model" + at(t));
    for (std::size_t i = 0; i < trace.states[t].size(); ++i)
      if (trace.states[t][i].width() != ts.mgr().width(sts[i]))
        return fail("state width mismatch" + at(t));
  }

  sim::TsSim sim(ts);
  if (!trace.states.empty()) {
    for (std::size_t i = 0; i < trace.states[0].size(); ++i) {
      if (ts.init_of(sts[i]) != smt::kNullTerm) {
        // Init-pinned states cannot be overridden; a recorded value that
        // disagrees is a tampered or mis-extracted trace.
        if (sim.state(sts[i]) != trace.states[0][i])
          return fail("recorded initial state disagrees with the model's init value");
      } else {
        sim.set_state(sts[i], trace.states[0][i]);
      }
    }
  }

  for (unsigned t = 0; t <= trace.length; ++t) {
    smt::Assignment in;
    for (std::size_t i = 0; i < trace.inputs[t].size(); ++i)
      in.emplace(ins[i], trace.inputs[t][i]);
    if (t > 0 && t < trace.states.size())
      for (std::size_t i = 0; i < trace.states[t].size(); ++i)
        if (sim.state(sts[i]) != trace.states[t][i])
          return fail("replayed state diverges from the recorded row" + at(t));
    if (t == 0)
      for (smt::TermRef c : ts.init_constraints())
        if (!sim.eval(c, in).is_true())
          return fail("initial-state constraint violated");
    if (!sim.constraints_ok(in)) return fail("step constraint violated" + at(t));
    if (t == trace.length) {
      if (!sim.eval(ts.bads()[trace.bad_index], in).is_true())
        return fail("bad condition does not fire at the reported bound " +
                    std::to_string(trace.length));
      const std::string& label = ts.bad_labels()[trace.bad_index];
      if (!label.empty() && !trace.bad_label.empty() && label != trace.bad_label)
        return fail("bad label '" + trace.bad_label +
                    "' disagrees with the model's '" + label + "'");
    } else {
      sim.step(in);
    }
  }
  return WitnessReplay{true, ""};
}

unsigned shrink_trace(const ts::TransitionSystem& ts, WitnessTrace* trace) {
  // Recorded intermediate state rows would pin the original stimulus
  // (zeroing an input changes every downstream state), so shrinking
  // keeps only row 0 — replay recomputes the rest.
  if (trace->states.size() > 1) trace->states.resize(1);
  const auto still_falsifies = [&] { return replay_trace(ts, *trace).ok; };

  // Pass 1: neutralize whole steps, latest first — trailing steps (e.g.
  // pipeline-drain bubbles) go first, which is what usually shortens the
  // effective stimulus.
  for (unsigned t = static_cast<unsigned>(trace->inputs.size()); t-- > 0;) {
    std::vector<BitVec>& row = trace->inputs[t];
    bool any = false;
    for (const BitVec& v : row) any = any || !v.is_zero();
    if (!any) continue;
    const std::vector<BitVec> saved = row;
    for (BitVec& v : row) v = BitVec::zeros(v.width());
    if (!still_falsifies()) row = saved;
  }
  // Pass 2: individual values, earliest first — catches partial
  // reductions inside steps pass 1 had to keep.
  for (unsigned t = 0; t < trace->inputs.size(); ++t) {
    for (BitVec& v : trace->inputs[t]) {
      if (v.is_zero()) continue;
      const BitVec saved = v;
      v = BitVec::zeros(v.width());
      if (!still_falsifies()) v = saved;
    }
  }
  return effective_length(*trace);
}

std::string render_witness_artifact(const ts::TransitionSystem& ts,
                                    const std::string& job_name,
                                    const JobProvenance& provenance,
                                    const WitnessTrace& trace, unsigned shrunk) {
  std::ostringstream os;
  os << "{\"sepe_witness\":" << kWitnessVersion;
  os << ",\"name\":";
  json_escape(os, job_name);
  os << ",\"family\":";
  json_escape(os, provenance.family);
  os << ",\"source\":";
  json_escape(os, provenance.source);
  os << ",\"property\":" << provenance.property;
  os << ",\"mode\":";
  json_escape(os, provenance.mode);
  os << ",\"length\":" << trace.length;
  os << ",\"shrunk\":" << shrunk;
  os << ",\"bad\":" << trace.bad_index;
  os << ",\"bad_label\":";
  json_escape(os, trace.bad_label);
  os << ",\"inputs\":" << ts.inputs().size();
  os << ",\"states\":" << (trace.states.empty() ? 0 : trace.states[0].size());
  os << "}\n";
  os << "{\"model\":";
  json_escape(os, to_btor2(ts));
  os << "}\n";
  for (unsigned t = 0; t < trace.inputs.size(); ++t) {
    os << "{\"step\":" << t << ",\"in\":[";
    for (std::size_t i = 0; i < trace.inputs[t].size(); ++i)
      os << (i ? ",\"" : "\"") << trace.inputs[t][i].to_hex() << "\"";
    os << "]";
    if (t < trace.states.size()) {
      os << ",\"st\":[";
      for (std::size_t i = 0; i < trace.states[t].size(); ++i)
        os << (i ? ",\"" : "\"") << trace.states[t][i].to_hex() << "\"";
      os << "]";
    }
    os << "}\n";
  }
  const std::string payload = os.str();
  return payload + "{\"check\":\"" + witness_self_check(payload) + "\"}\n";
}

std::string witness_self_check(const std::string& payload) {
  return hex16(fnv1a(payload.data(), payload.size()));
}

bool check_witness_text(const std::string& text, WitnessHeader* header,
                        std::string* error) {
  const auto fail = [&](std::string what) {
    if (error) *error = std::move(what);
    return false;
  };

  // 1. The trailing self-check seals everything above it. rfind, not
  // find: an escaped model line could legitimately contain the marker.
  static constexpr char kCheck[] = "{\"check\":\"";
  constexpr std::size_t kCheckLen = sizeof kCheck - 1;
  const std::size_t at = text.rfind(kCheck);
  if (at == std::string::npos || at == 0 || text[at - 1] != '\n' ||
      text.size() != at + kCheckLen + 16 + 3 ||
      text.compare(text.size() - 3, 3, "\"}\n") != 0)
    return fail("missing or malformed self-check trailer");
  const std::string recorded = text.substr(at + kCheckLen, 16);
  if (recorded != witness_self_check(text.substr(0, at)))
    return fail("self-check digest mismatch (truncated or edited artifact)");

  // 2. Split the sealed payload into its lines.
  std::vector<std::string> lines;
  for (std::size_t pos = 0; pos < at;) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos || nl >= at) return fail("unterminated line");
    lines.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  if (lines.size() < 3) return fail("artifact too short (header, model, steps)");

  // 3. Header line — strict positional parse.
  WitnessHeader h;
  std::uint64_t n = 0, input_count = 0, state_count = 0;
  {
    Scanner sc{lines[0]};
    if (!sc.expect("{\"sepe_witness\":")) return fail("not a witness artifact");
    if (!sc.number(&n)) return fail("malformed header");
    if (n != static_cast<std::uint64_t>(kWitnessVersion))
      return fail("unsupported witness format version " + std::to_string(n));
    if (!sc.string_field("name", &h.name) ||
        !sc.string_field("family", &h.family) ||
        !sc.string_field("source", &h.source) || !sc.u64_field("property", &n))
      return fail("malformed header");
    h.property = static_cast<unsigned>(n);
    if (!sc.string_field("mode", &h.mode) || !sc.u64_field("length", &n))
      return fail("malformed header");
    h.length = static_cast<unsigned>(n);
    if (!sc.u64_field("shrunk", &n)) return fail("malformed header");
    h.shrunk = static_cast<unsigned>(n);
    if (!sc.u64_field("bad", &n)) return fail("malformed header");
    h.bad_index = static_cast<std::size_t>(n);
    if (!sc.string_field("bad_label", &h.bad_label) ||
        !sc.u64_field("inputs", &input_count) ||
        !sc.u64_field("states", &state_count) || !sc.expect("}") || !sc.done())
      return fail("malformed header");
  }
  if (h.shrunk > h.length) return fail("recorded shrunk length exceeds the bound");
  if (lines.size() != 2 + static_cast<std::size_t>(h.length) + 1)
    return fail("step count disagrees with the recorded length");

  // 4. Embedded model.
  std::string model_text;
  {
    Scanner sc{lines[1]};
    if (!sc.expect("{\"model\":") || !unescape(lines[1], &sc.pos, &model_text) ||
        !sc.expect("}") || !sc.done())
      return fail("malformed model line");
  }
  smt::TermManager mgr;
  ts::TransitionSystem model(mgr);
  const ts::Btor2ParseResult parsed = parse_btor2(model_text, model);
  if (!parsed.ok) return fail("embedded model: " + parsed.error);
  // The recorded rows may cover a prefix of the parsed declarations (the
  // round-tripped dump appends the writer's at-init flag state), never
  // more than them.
  if (input_count > model.inputs().size())
    return fail("header declares more inputs than the embedded model");
  if (state_count > model.states().size())
    return fail("header declares more states than the embedded model");
  if (h.bad_index >= model.bads().size())
    return fail("header bad index outside the embedded model");

  // 5. Step lines.
  WitnessTrace trace;
  trace.length = h.length;
  trace.bad_index = h.bad_index;
  trace.bad_label = h.bad_label;
  for (unsigned t = 0; t <= h.length; ++t) {
    const std::string& line = lines[2 + t];
    Scanner sc{line};
    const auto bad_step = [&] {
      return fail("malformed step line " + std::to_string(t));
    };
    if (!sc.expect(("{\"step\":" + std::to_string(t) + ",\"in\":[").c_str()))
      return bad_step();
    std::vector<BitVec> in_row;
    for (std::uint64_t i = 0; i < input_count; ++i) {
      std::string hex;
      BitVec v;
      if ((i && !sc.expect(",")) || !unescape(line, &sc.pos, &hex) ||
          !parse_hex_value(hex, mgr.width(model.inputs()[i]), &v))
        return bad_step();
      in_row.push_back(v);
    }
    if (!sc.expect("]")) return bad_step();
    trace.inputs.push_back(std::move(in_row));
    if (t == 0 && state_count > 0) {
      if (!sc.expect(",\"st\":[")) return bad_step();
      std::vector<BitVec> st_row;
      for (std::uint64_t i = 0; i < state_count; ++i) {
        std::string hex;
        BitVec v;
        if ((i && !sc.expect(",")) || !unescape(line, &sc.pos, &hex) ||
            !parse_hex_value(hex, mgr.width(model.states()[i]), &v))
          return bad_step();
        st_row.push_back(v);
      }
      if (!sc.expect("]")) return bad_step();
      trace.states.push_back(std::move(st_row));
    }
    if (!sc.expect("}") || !sc.done()) return bad_step();
  }

  // 6. Replay with the simulator only, then recompute the shrunk length
  // the header claims — an edited stimulus that still falsifies but
  // disagrees with its own metadata is rejected too.
  const WitnessReplay replay = replay_trace(model, trace);
  if (!replay.ok) return fail("replay: " + replay.error);
  if (effective_length(trace) != h.shrunk)
    return fail("recorded shrunk length disagrees with the stimulus");

  if (header) *header = h;
  if (error) error->clear();
  return true;
}

std::string witness_artifact_filename(const std::string& job_name) {
  std::string safe;
  safe.reserve(job_name.size());
  for (char c : job_name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    safe.push_back(ok ? c : '_');
  }
  char digest[9];
  std::snprintf(digest, sizeof digest, "%08llx",
                static_cast<unsigned long long>(
                    fnv1a(job_name.data(), job_name.size()) & 0xffffffffull));
  return safe + "-" + digest + ".witness";
}

void witness_post_pass(const JobSpec& job, const WitnessOptions& options,
                       const std::shared_ptr<smt::ConeCache>& cone_cache,
                       JobResult* result) {
  if (!options.check || result->verdict != Verdict::Falsified) return;
  const auto demote = [&](const std::string& detail) {
    // The stable note is a fixed string so demoted rows are byte-
    // deterministic wherever the check ran (campaign, cached fill-in,
    // dispatcher); the specific divergence goes to stderr.
    result->verdict = Verdict::Unknown;
    result->note = "witness: replay mismatch";
    result->witness.clear();
    result->witness_checked = false;
    result->trace_length_shrunk = 0;
    result->trace.reset();
    std::fprintf(stderr, "sepe: witness: job '%s': %s\n", result->name.c_str(),
                 detail.c_str());
  };

  smt::TermManager mgr;
  ts::TransitionSystem ts(mgr);
  std::string build_error;
  if (!job.build(ts, &build_error))
    return demote("model rebuild failed: " + build_error);

  WitnessTrace trace;
  if (result->trace) {
    trace = *result->trace;
  } else {
    // Cached or deserialized rows carry no trace: re-derive one with the
    // canonical default-config native sweep, bounded at the claimed
    // length. Gracefully — a cached FALSIFIED row is hearsay until it
    // reproduces, so any disagreement demotes instead of asserting.
    bmc::Bmc checker(ts, sat::SolverConfig{},
                     job.budget.plaisted_greenbaum.value_or(false), cone_cache);
    bmc::BmcOptions bo;
    bo.max_bound = result->trace_length;
    const std::optional<bmc::Witness> found = checker.check(bo);
    if (!found)
      return demote("no counterexample within the claimed bound " +
                    std::to_string(result->trace_length));
    if (found->length != result->trace_length)
      return demote("re-derived counterexample has length " +
                    std::to_string(found->length) + ", row claims " +
                    std::to_string(result->trace_length));
    trace = extract_trace(ts, *found);
  }

  if (trace.length != result->trace_length)
    return demote("trace length " + std::to_string(trace.length) +
                  " disagrees with the reported " +
                  std::to_string(result->trace_length));
  if (!trace.bad_label.empty() && !result->bad_label.empty() &&
      trace.bad_label != result->bad_label)
    return demote("trace violates '" + trace.bad_label + "', row claims '" +
                  result->bad_label + "'");
  const WitnessReplay replay = replay_trace(ts, trace);
  if (!replay.ok) return demote(replay.error);

  result->trace_length_shrunk = shrink_trace(ts, &trace);
  result->witness_checked = true;
  result->trace.reset();

  if (!options.artifact_dir.empty()) {
    const std::string path =
        options.artifact_dir + "/" + witness_artifact_filename(job.name);
    const std::string text = render_witness_artifact(
        ts, job.name, job.provenance, trace, result->trace_length_shrunk);
    // Fault point "witness.write" (docs/ROBUSTNESS.md): torn/enospc
    // degrade to a missing artifact and a diagnostic — the checked
    // verdict itself is never at stake.
    if (!write_text_file_atomic(path, text, "witness.write"))
      std::fprintf(stderr,
                   "sepe: witness: cannot write artifact '%s'; the verdict is "
                   "unaffected\n",
                   path.c_str());
  }
}

}  // namespace sepe::engine
