// workload.hpp — the workload-family abstraction: where campaign jobs
// come from.
//
// The engine core (engine/campaign.hpp) runs JobSpecs without knowing
// what they verify; a JobSource is a named *family* of workloads that
// expands into those JobSpecs, stamping each with provenance (family
// tag, source id, bad-property index, content digest) that flows into
// reports and checkpoint digests. Mature checkers owe much of their
// reach to exactly this seam — the solver layers never learn which
// frontend produced the model — and every future scenario family here
// is one JobSource subclass, not another copy of the campaign plumbing.
//
// Two families ship today:
//   * QedMatrixSource — the paper's experiments: instruction classes ×
//     QED mode {EDDI-V, EDSEP-V} × injected mutation, expanded from a
//     declarative CampaignMatrix cross-product;
//   * Btor2CorpusSource — HWMCC-style corpora (the paper's §6.2
//     Yosys→BTOR2→Pono flow): every `.btor2` file under a directory,
//     fanned out into one job per bad property and parsed with
//     ts::parse_btor2 on the worker thread. Malformed files become
//     per-job parse-error rows, never campaign aborts.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "engine/campaign.hpp"
#include "proc/mutations.hpp"
#include "qed/qed_module.hpp"
#include "synth/cegis.hpp"

namespace sepe::engine {

/// A named workload family that expands into campaign jobs.
class JobSource {
 public:
  virtual ~JobSource() = default;

  /// Family tag stamped into every expanded job's provenance
  /// (kQedFamily, kBtor2Family, ...).
  virtual std::string family() const = 0;

  /// Append this source's jobs to *out. Returns false and sets *error
  /// when the source itself is unusable (unreadable corpus directory,
  /// no files). Individually malformed corpus files do NOT fail
  /// expansion: they become jobs whose build fails on the worker, which
  /// the engine reports as Verdict::Unknown rows with the diagnostic in
  /// JobResult::note while the rest of the campaign proceeds.
  virtual bool expand(std::vector<JobSpec>* out, std::string* error) const = 0;
};

/// Expand one source into a runnable campaign (seed recorded in the
/// report). nullopt + *error when the source fails to expand.
std::optional<CampaignSpec> expand_source(const JobSource& source, std::uint64_t seed,
                                          std::string* error);

// --- the QED family (the paper's experiments) ---

/// Short QED-mode tag for job names and report columns ("EDDI-V" /
/// "EDSEP-V"; contrast qed::qed_mode_name's long display form).
const char* mode_tag(qed::QedMode mode);

/// Convenience constructor for the standard QED job: DUV(config, mutation)
/// + QED module in `mode`. The mutation is captured by value; the
/// equivalence table (required for EDSEP-V) is captured by pointer and
/// must outlive the campaign — it is only ever read. Mostly a private
/// detail of QedMatrixSource; the paper-experiment benches also use it
/// directly for per-row budgets the matrix cannot express.
JobSpec make_qed_job(std::string name, qed::QedMode mode, const proc::ProcConfig& config,
                     std::optional<proc::Mutation> mutation,
                     const synth::EquivalenceTable* equivalences, const JobBudget& budget,
                     unsigned queue_capacity = 2, unsigned counter_bits = 3);

/// Declarative cross-product: one job per (mutation × mode). Instruction
/// classes enter through the mutations (each targets one instruction) and
/// the per-job DUV opcode set, which is derived from the mutation target
/// plus everything its EDSEP replay issues.
struct CampaignMatrix {
  unsigned xlen = 4;
  unsigned mem_words = 8;
  std::vector<qed::QedMode> modes;
  std::vector<proc::Mutation> mutations;
  const synth::EquivalenceTable* equivalences = nullptr;
  /// Opcodes always present in the DUV besides the derived ones.
  std::vector<isa::Opcode> extra_opcodes;
  unsigned queue_capacity = 2;
  unsigned counter_bits = 3;
  JobBudget budget;
};

/// The QED workload family: expands a CampaignMatrix cross-product.
class QedMatrixSource final : public JobSource {
 public:
  explicit QedMatrixSource(CampaignMatrix matrix) : matrix_(std::move(matrix)) {}

  std::string family() const override { return kQedFamily; }
  bool expand(std::vector<JobSpec>* out, std::string* error) const override;

 private:
  CampaignMatrix matrix_;
};

/// Matrix expansion without the JobSource ceremony (cannot fail).
CampaignSpec expand(const CampaignMatrix& matrix, std::uint64_t seed = 1);

/// The DUV configuration expand() gives a job: mutation target + extra
/// opcodes + every opcode their EDSEP replays issue, memory sized to the
/// address space. Exposed for drivers (e.g. the Table-1 bench) that build
/// per-job budgets expand() cannot express. Requires xlen >= 2.
proc::ProcConfig derive_duv_config(const CampaignMatrix& matrix,
                                   const proc::Mutation* mutation);

/// Opcodes an EDSEP replay of `op` issues: the lowering of its table
/// entry plus, for memory instructions, the shadow access itself. Used to
/// size per-job DUV opcode sets.
std::vector<isa::Opcode> replay_opcodes(const synth::EquivalenceTable& table,
                                        isa::Opcode op);

// --- the BTOR2 corpus family (§6.2 interchange format) ---

/// Every `.btor2` file under a directory (recursive, sorted by relative
/// path so expansion is deterministic on any host), one job per bad
/// property: a file with N >= 2 bad lines fans out into N jobs named
/// `<file>:b<i>`, each checking only property i. File content is read
/// and hashed at expansion time (the hash lands in the provenance and
/// hence the checkpoint spec digest; resume under an edited corpus is
/// refused), but parsed with ts::parse_btor2 on the worker thread — a
/// malformed file costs a parse-error row, not the campaign.
class Btor2CorpusSource final : public JobSource {
 public:
  Btor2CorpusSource(std::string directory, JobBudget budget)
      : directory_(std::move(directory)), budget_(budget) {}

  std::string family() const override { return kBtor2Family; }
  bool expand(std::vector<JobSpec>* out, std::string* error) const override;

 private:
  std::string directory_;
  JobBudget budget_;
};

}  // namespace sepe::engine
