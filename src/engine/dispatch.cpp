#include "engine/dispatch.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <filesystem>
#include <optional>
#include <thread>
#include <utility>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "engine/report_io.hpp"
#include "engine/witness.hpp"
#include "util/fault.hpp"

namespace sepe::engine {

// --- LocalProcessLauncher: fork/exec on this host ---

long LocalProcessLauncher::launch(const std::vector<std::string>& argv,
                                  std::string* error) {
  if (argv.empty()) {
    if (error) *error = "empty worker command";
    return -1;
  }
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) cargv.push_back(const_cast<char*>(arg.c_str()));
  cargv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    if (error) *error = std::string("fork failed: ") + std::strerror(errno);
    return -1;
  }
  if (pid == 0) {
    // Child. The dispatcher owns the terminal: workers talk through
    // their report files, so drop their stdout; keep stderr visible for
    // diagnostics (a usage error must reach the user).
    const int null_fd = ::open("/dev/null", O_WRONLY);
    if (null_fd >= 0) {
      ::dup2(null_fd, STDOUT_FILENO);
      ::close(null_fd);
    }
    ::execvp(cargv[0], cargv.data());
    // exec failed; the shell's conventions: 127 = command not found,
    // 126 = found but not executable. The dispatcher treats both as
    // fatal (deterministic) rather than retryable.
    ::_exit(errno == ENOENT ? 127 : 126);
  }
  return static_cast<long>(pid);
}

WorkerLauncher::Exit LocalProcessLauncher::poll(long handle) {
  int status = 0;
  const pid_t r = ::waitpid(static_cast<pid_t>(handle), &status, WNOHANG);
  if (r == 0) return {Exit::Status::Running, 0};
  if (r < 0) return {Exit::Status::Lost, errno};
  if (WIFEXITED(status)) return {Exit::Status::Exited, WEXITSTATUS(status)};
  if (WIFSIGNALED(status)) return {Exit::Status::Signalled, WTERMSIG(status)};
  return {Exit::Status::Lost, 0};
}

void LocalProcessLauncher::terminate(long handle) {
  ::kill(static_cast<pid_t>(handle), SIGKILL);
  ::waitpid(static_cast<pid_t>(handle), nullptr, 0);
}

// --- the dispatcher ---

namespace {

/// One in-flight worker attempt.
struct Attempt {
  unsigned shard = 0;
  unsigned ordinal = 0;  // per-shard attempt number (1-based, for paths)
  long handle = -1;
  std::string checkpoint_path;
  std::string report_path;
  bool stolen = false;
  std::uint64_t launch_seq = 0;  // global launch order, for stable polling
  std::chrono::steady_clock::time_point launched_at;
  unsigned observed_running = 0;  // polls that found the attempt alive
};

/// Book-keeping for one shard of the campaign.
struct ShardState {
  unsigned attempts = 0;    // launches so far (names the next attempt's files)
  unsigned failures = 0;    // failed attempts (reporting only)
  unsigned relaunches = 0;  // retries actually spent, measured against `retries`
  bool completed = false;
  /// Attempt 1's checkpoint path held a file this dispatcher never
  /// wrote — a journal from a previous run in a reused work dir. A
  /// valid one is the cross-run resume feature; one the worker refuses
  /// must be discarded before the retry, not re-seeded forever.
  bool preexisting_journal = false;
  /// Earliest instant the next relaunch of this shard may start
  /// (exponential backoff with deterministic jitter; see
  /// DispatchOptions::retry_backoff_seconds). Default = due immediately.
  std::chrono::steady_clock::time_point not_before{};
  CampaignReport report;                   // the winning attempt's report
  std::vector<std::string> journal_paths;  // every attempt's checkpoint file
};

/// splitmix64 folded to [0, 1): the backoff jitter source. Pure function
/// of its seed, so the whole retry schedule is reproducible.
double jitter01(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z = z ^ (z >> 31);
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

std::string shard_arg(unsigned index, unsigned count) {
  return std::to_string(index) + "/" + std::to_string(count);
}

/// Jobs recorded in a checkpoint journal file; nullopt when the file is
/// absent or not a parseable report.
std::optional<std::size_t> journal_job_count(const std::string& path) {
  const auto text = read_text_file(path);
  if (!text) return std::nullopt;
  CampaignReport report;
  std::string error;
  if (!parse_report(*text, &report, &error)) return std::nullopt;
  return report.jobs.size();
}

class Dispatcher {
 public:
  Dispatcher(const DispatchOptions& options, WorkerLauncher* launcher)
      : options_(options),
        launcher_(launcher),
        shard_count_(options.shards != 0 ? options.shards : options.workers),
        shards_(shard_count_) {
    for (unsigned i = 0; i < shard_count_; ++i) pending_.push_back(i);
  }

  DispatchResult run() {
    while (completed_ < shard_count_ && result_.error.empty()) {
      // Crash-only envelope: on SIGTERM/SIGINT stop scheduling, put the
      // fleet down (below), and leave every attempt's journal behind for
      // a resumed dispatch (docs/ROBUSTNESS.md).
      if (fault::global_stop_requested()) {
        fail("interrupted — per-attempt journals in the work dir allow "
             "a re-run to resume");
        break;
      }
      bool progress = fill_worker_slots();
      progress |= poll_running();
      if (!progress && result_.error.empty())
        std::this_thread::sleep_for(
            std::chrono::duration<double>(options_.poll_seconds));
    }
    // Whatever ended the loop (success or a fatal error), leave no
    // workers behind.
    for (const Attempt& attempt : running_) launcher_->terminate(attempt.handle);
    running_.clear();

    if (!result_.error.empty()) return std::move(result_);

    std::vector<CampaignReport> reports;
    reports.reserve(shard_count_);
    for (ShardState& shard : shards_) reports.push_back(std::move(shard.report));
    std::string merge_error;
    auto merged = CampaignReport::merge(reports, &merge_error);
    if (!merged) {
      // Per-shard validation should make this unreachable; report it
      // rather than trusting that.
      result_.error = "merging the completed shard reports failed: " + merge_error;
      return std::move(result_);
    }
    if (!options_.witness_dir.empty()) cross_check_witnesses(&*merged);
    result_.merged = std::move(*merged);
    result_.ok = true;
    return std::move(result_);
  }

 private:
  void event(const std::string& line) {
    if (options_.on_event) options_.on_event(line);
  }

  /// SAT-free audit of the merged verdicts against the workers' witness
  /// artifacts: retried and stolen attempts all funnel through here, so
  /// a worker (or a reused work dir) shipping a FALSIFIED row it cannot
  /// back with a replayable artifact is caught at the merge, not
  /// trusted. Demotion mirrors the in-process post-pass exactly, so the
  /// stable report stays byte-deterministic wherever the check fires.
  void cross_check_witnesses(CampaignReport* merged) {
    for (JobResult& job : merged->jobs) {
      if (job.verdict != Verdict::Falsified) continue;
      const std::string path =
          options_.witness_dir + "/" + witness_artifact_filename(job.name);
      const auto text = read_text_file(path);
      WitnessHeader header;
      std::string why;
      bool genuine = false;
      if (!text) {
        why = "artifact '" + path + "' missing or unreadable";
      } else if (check_witness_text(*text, &header, &why)) {
        if (header.name != job.name) {
          why = "artifact names job '" + header.name + "'";
        } else if (header.length != job.trace_length) {
          why = "artifact bound " + std::to_string(header.length) +
                " disagrees with trace_length " + std::to_string(job.trace_length);
        } else if (!header.bad_label.empty() && !job.bad_label.empty() &&
                   header.bad_label != job.bad_label) {
          why = "artifact violates '" + header.bad_label + "', row claims '" +
                job.bad_label + "'";
        } else {
          genuine = true;
          job.witness_checked = true;
          job.trace_length_shrunk = header.shrunk;
        }
      }
      if (!genuine) {
        job.verdict = Verdict::Unknown;
        job.note = "witness: replay mismatch";
        job.witness.clear();
        job.witness_checked = false;
        job.trace_length_shrunk = 0;
        event("[dispatch] witness cross-check demoted job '" + job.name +
              "': " + why);
      }
    }
  }

  void fail(std::string what) {
    if (result_.error.empty()) result_.error = std::move(what);
  }

  unsigned attempts_in_flight(unsigned shard) const {
    unsigned n = 0;
    for (const Attempt& attempt : running_) n += (attempt.shard == shard);
    return n;
  }

  std::string aggregate_line() const {
    // The live aggregate: verdict tallies over every shard folded in so
    // far. Totals come from shard metadata, so the line is meaningful
    // before all shards have reported.
    unsigned counts[4] = {0, 0, 0, 0};
    std::size_t jobs = 0;
    std::uint64_t total = 0;
    for (const ShardState& shard : shards_) {
      if (!shard.completed) continue;
      jobs += shard.report.jobs.size();
      if (shard.report.shard) total = shard.report.shard->total_jobs;
      for (Verdict v : {Verdict::Falsified, Verdict::Proved, Verdict::BoundClean,
                        Verdict::Unknown})
        counts[static_cast<int>(v)] += shard.report.count(v);
    }
    return std::to_string(jobs) + "/" + std::to_string(total) +
           " jobs aggregated: " + std::to_string(counts[0]) + " falsified, " +
           std::to_string(counts[1]) + " proved, " + std::to_string(counts[2]) +
           " bound-clean, " + std::to_string(counts[3]) + " unknown";
  }

  /// Seed a new attempt's checkpoint from the best journal any earlier
  /// attempt of the shard left behind, so a retry (or a thief) resumes
  /// instead of re-solving finished jobs. Returns the resumed job count.
  std::size_t seed_checkpoint(unsigned shard, const std::string& attempt_path) {
    const std::string* best = nullptr;
    std::size_t best_jobs = 0;
    for (const std::string& path : shards_[shard].journal_paths) {
      const auto jobs = journal_job_count(path);
      if (jobs && (!best || *jobs > best_jobs)) {
        best = &path;
        best_jobs = *jobs;
      }
    }
    if (!best || best_jobs == 0) return 0;
    const auto text = read_text_file(*best);
    if (!text || !write_text_file_atomic(attempt_path, *text)) return 0;
    return best_jobs;
  }

  /// Launch the next attempt of `shard` on a free worker slot.
  bool launch_attempt(unsigned shard, bool stolen) {
    ShardState& state = shards_[shard];
    Attempt attempt;
    attempt.shard = shard;
    attempt.ordinal = ++state.attempts;
    attempt.stolen = stolen;
    attempt.launch_seq = launch_seq_++;
    attempt.launched_at = std::chrono::steady_clock::now();
    const std::string stem = options_.work_dir + "/shard-" + std::to_string(shard) +
                             ".a" + std::to_string(attempt.ordinal);
    attempt.checkpoint_path = stem + ".ckpt.json";
    attempt.report_path = stem + ".report.json";
    const std::size_t resumed = seed_checkpoint(shard, attempt.checkpoint_path);
    if (attempt.ordinal == 1 && resumed == 0) {
      std::error_code exists_error;
      state.preexisting_journal =
          std::filesystem::exists(attempt.checkpoint_path, exists_error);
    }
    state.journal_paths.push_back(attempt.checkpoint_path);

    std::vector<std::string> argv = options_.worker_command;
    argv.insert(argv.end(),
                {"--shard", shard_arg(shard, shard_count_), "--checkpoint",
                 attempt.checkpoint_path, "--stable-json", "--json",
                 attempt.report_path});
    std::string launch_error;
    attempt.handle = launcher_->launch(argv, &launch_error);
    if (attempt.handle < 0) {
      fail("cannot launch a worker for shard " + shard_arg(shard, shard_count_) +
           ": " + launch_error);
      return false;
    }
    ++result_.launches;
    if (stolen) ++result_.steals;
    event((stolen ? "steal: shard " : "shard ") + shard_arg(shard, shard_count_) +
          " -> attempt " + std::to_string(attempt.ordinal) +
          (resumed ? " (resuming " + std::to_string(resumed) + " journaled jobs)"
                   : ""));
    running_.push_back(std::move(attempt));
    return true;
  }

  /// Keep every worker slot busy: drain the pending queue first, then
  /// steal the longest-running straggler rather than idling.
  bool fill_worker_slots() {
    bool progress = false;
    const auto now = std::chrono::steady_clock::now();
    while (running_.size() < options_.workers && !pending_.empty() &&
           result_.error.empty()) {
      // Queued relaunches respect their backoff window: skip shards that
      // are not due yet (the scheduler naps and comes back for them).
      const auto due = std::find_if(
          pending_.begin(), pending_.end(), [&](unsigned shard) {
            return shards_[shard].completed || now >= shards_[shard].not_before;
          });
      if (due == pending_.end()) break;
      const unsigned shard = *due;
      pending_.erase(due);
      // A queued relaunch can be overtaken by a thief completing the
      // shard first; never re-solve a shard that is already won.
      if (shards_[shard].completed) continue;
      progress |= launch_attempt(shard, /*stolen=*/false);
    }
    while (options_.steal && running_.size() < options_.workers &&
           pending_.empty() && result_.error.empty()) {
      // Straggler = the oldest-running shard that has no thief yet (at
      // most two concurrent attempts per shard keeps stealing bounded)
      // and has actually been seen running past the steal threshold —
      // never a shard whose attempt was launched moments ago. The
      // total-attempt cap bounds steal churn on a shard whose thieves
      // keep dying while the original never finishes.
      const Attempt* straggler = nullptr;
      for (const Attempt& attempt : running_) {
        if (shards_[attempt.shard].completed) continue;
        if (attempts_in_flight(attempt.shard) != 1) continue;
        if (shards_[attempt.shard].attempts > options_.retries + 1) continue;
        if (attempt.observed_running == 0 ||
            std::chrono::duration<double>(now - attempt.launched_at).count() <
                options_.steal_after_seconds)
          continue;
        if (!straggler || attempt.launch_seq < straggler->launch_seq)
          straggler = &attempt;
      }
      if (!straggler) break;
      progress |= launch_attempt(straggler->shard, /*stolen=*/true);
    }
    return progress;
  }

  /// Read the report a finished attempt wrote; nullopt + *why when it
  /// is missing, unparseable, or not the shard it was asked to run.
  std::optional<CampaignReport> load_report(const Attempt& attempt,
                                            std::string* why) const {
    const auto text = read_text_file(attempt.report_path);
    if (!text) {
      *why = "wrote no report";
      return std::nullopt;
    }
    CampaignReport report;
    std::string parse_error;
    if (!parse_report(*text, &report, &parse_error)) {
      *why = "wrote an unreadable report (" + parse_error + ")";
      return std::nullopt;
    }
    if (!report.shard || report.shard->shard.index != attempt.shard ||
        report.shard->shard.count != shard_count_) {
      *why = "reported the wrong shard";
      return std::nullopt;
    }
    return report;
  }

  void on_attempt_succeeded(const Attempt& attempt, CampaignReport report) {
    ShardState& state = shards_[attempt.shard];
    if (state.completed) {
      // A sibling already won this shard (the race a steal sets up);
      // the duplicate rows are reconciled by keeping exactly one report
      // per shard index — precisely what the merge contract requires.
      ++result_.duplicates;
      event("shard " + shard_arg(attempt.shard, shard_count_) + " attempt " +
            std::to_string(attempt.ordinal) + " finished second; discarded");
      return;
    }
    state.completed = true;
    state.report = std::move(report);
    ++completed_;
    event("shard " + shard_arg(attempt.shard, shard_count_) + " complete (attempt " +
          std::to_string(attempt.ordinal) + ", " +
          std::to_string(state.report.jobs.size()) + " jobs) — " + aggregate_line());
  }

  void on_attempt_failed(const Attempt& attempt, const std::string& why,
                         bool exited_cleanly = false) {
    ++result_.failures;
    ShardState& state = shards_[attempt.shard];
    event("shard " + shard_arg(attempt.shard, shard_count_) + " attempt " +
          std::to_string(attempt.ordinal) + " " + why);
    if (state.completed) return;  // a sibling already delivered the shard
    if (exited_cleanly && attempt.ordinal == 1 && state.preexisting_journal) {
      // A worker that *exits* (rather than crashes) on its first
      // attempt most likely refused the journal a reused work dir left
      // at its checkpoint path (spec-digest rules). Re-seeding retries
      // from that same stale file would burn the whole budget on
      // identical refusals — discard it and let the retry start clean.
      std::error_code remove_error;
      std::filesystem::remove(attempt.checkpoint_path, remove_error);
      state.preexisting_journal = false;
      event("shard " + shard_arg(attempt.shard, shard_count_) +
            ": discarded the pre-existing journal the worker refused");
    }
    ++state.failures;
    // A sibling attempt (or an already-queued relaunch) is still in the
    // game: this failure costs nothing from the retry budget — losing a
    // stolen copy must never fail a dispatch that has not actually
    // retried anything yet.
    if (attempts_in_flight(attempt.shard) > 0) return;
    if (std::find(pending_.begin(), pending_.end(), attempt.shard) !=
        pending_.end())
      return;
    if (state.relaunches < options_.retries) {
      ++state.relaunches;
      // Exponential backoff with deterministic jitter: transient causes
      // (a flaky filesystem, an OOM-killer sweep) get room to clear, and
      // simultaneous casualties relaunch staggered instead of stampeding.
      if (options_.retry_backoff_seconds > 0) {
        const double delay =
            options_.retry_backoff_seconds *
            static_cast<double>(1u << std::min(state.relaunches - 1, 20u)) *
            (1.0 + jitter01((static_cast<std::uint64_t>(attempt.shard) << 32) ^
                            state.relaunches));
        state.not_before = std::chrono::steady_clock::now() +
                           std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(delay));
      }
      pending_.push_front(attempt.shard);  // relaunch once the backoff elapses
      return;
    }
    fail("shard " + shard_arg(attempt.shard, shard_count_) + " failed " +
         std::to_string(state.failures) + " time(s) (last attempt " + why +
         ") — retry budget " + std::to_string(options_.retries) + " exhausted");
  }

  /// One scheduler pass over the fleet: poll everything, prune the
  /// running set down to the attempts still alive (so the retry logic
  /// sees live siblings only), then settle the exits in launch order —
  /// the oldest attempt of a shard wins a same-pass photo finish — and
  /// finally put down siblings out-raced by this pass's winners.
  bool poll_running() {
    std::vector<std::pair<Attempt, WorkerLauncher::Exit>> exited;
    std::vector<Attempt> alive;
    for (Attempt& attempt : running_) {
      const WorkerLauncher::Exit status = launcher_->poll(attempt.handle);
      if (status.status == WorkerLauncher::Exit::Status::Running) {
        ++attempt.observed_running;
        alive.push_back(attempt);
      } else {
        exited.emplace_back(attempt, status);
      }
    }
    running_ = std::move(alive);

    for (const auto& [attempt, status] : exited) {
      using Status = WorkerLauncher::Exit::Status;
      if (status.status == Status::Signalled) {
        on_attempt_failed(attempt,
                          "crashed (signal " + std::to_string(status.code) + ")");
        continue;
      }
      if (status.status == Status::Lost) {
        on_attempt_failed(attempt, "was lost by the launcher");
        continue;
      }
      const int code = status.code;
      if (code == 0 || code == 3) {
        // 3 = the campaign completed with UNKNOWN rows (e.g. corpus
        // parse errors) — a deterministic result, not a failure.
        std::string why;
        if (auto report = load_report(attempt, &why)) {
          on_attempt_succeeded(attempt, std::move(*report));
        } else {
          on_attempt_failed(attempt,
                            "exited " + std::to_string(code) + " but " + why);
        }
      } else if (code == 2) {
        // A usage error is fatal: every retry would be rejected the
        // same way (the worker's stderr has the diagnostic).
        fail("worker rejected the command line (exit 2) — see its "
             "stderr diagnostic");
      } else if (code == 126 || code == 127) {
        // exec failure: the worker command cannot be found (127) or
        // executed (126) — as deterministic as a usage error.
        fail("worker command '" + options_.worker_command[0] +
             "' cannot be executed (exit " + std::to_string(code) + ")");
      } else {
        on_attempt_failed(attempt, "failed (exit " + std::to_string(code) + ")",
                          /*exited_cleanly=*/true);
      }
    }

    // Terminate siblings out-raced in this pass. Attempts that exited in
    // the same pass were already settled above (as duplicates), so only
    // still-running losers are put down.
    std::vector<Attempt> keep;
    for (const Attempt& attempt : running_) {
      if (shards_[attempt.shard].completed) {
        launcher_->terminate(attempt.handle);
        event("shard " + shard_arg(attempt.shard, shard_count_) + " attempt " +
              std::to_string(attempt.ordinal) + " terminated (shard already won)");
      } else {
        keep.push_back(attempt);
      }
    }
    const bool progress = !exited.empty() || keep.size() != running_.size();
    running_ = std::move(keep);
    return progress;
  }

  const DispatchOptions& options_;
  WorkerLauncher* launcher_;
  const unsigned shard_count_;
  std::vector<ShardState> shards_;
  std::deque<unsigned> pending_;
  std::vector<Attempt> running_;  // launch order (launch_seq ascending)
  unsigned completed_ = 0;
  std::uint64_t launch_seq_ = 0;
  DispatchResult result_;
};

}  // namespace

DispatchResult run_dispatch(const DispatchOptions& options) {
  DispatchResult invalid;
  if (options.worker_command.empty()) {
    invalid.error = "dispatch needs a worker command";
    return invalid;
  }
  if (options.workers == 0) {
    invalid.error = "dispatch needs at least one worker";
    return invalid;
  }
  if (options.work_dir.empty()) {
    invalid.error = "dispatch needs a work directory";
    return invalid;
  }
  LocalProcessLauncher local;
  WorkerLauncher* launcher = options.launcher ? options.launcher : &local;
  return Dispatcher(options, launcher).run();
}

}  // namespace sepe::engine
