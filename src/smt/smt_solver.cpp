#include "smt/smt_solver.hpp"

#include <cassert>

namespace sepe::smt {

void SmtSolver::assert_formula(TermRef t) {
  assert(mgr_.width(t) == 1);
  const sat::Lit l = blaster_.blast_bit(t, BitBlaster::kPos);
  sat_->add_clause(l);
  // The unit clause is solver state the blast stream alone doesn't
  // capture; fold it into the share-epoch digest (see note_assert).
  blaster_.note_assert(l);
}

Result SmtSolver::check(const std::vector<TermRef>& assumptions) {
  std::vector<sat::Lit> lits;
  lits.reserve(assumptions.size());
  for (TermRef t : assumptions) {
    assert(mgr_.width(t) == 1);
    lits.push_back(blaster_.blast_bit(t, BitBlaster::kPos));
  }
  evaluator_.reset();
  model_vals_.clear();
  switch (sat_->solve(lits)) {
    case sat::SolveResult::Sat: last_sat_ = true; return Result::Sat;
    case sat::SolveResult::Unsat: last_sat_ = false; return Result::Unsat;
    case sat::SolveResult::Unknown: last_sat_ = false; return Result::Unknown;
  }
  return Result::Unknown;
}

BitVec SmtSolver::value(TermRef t) {
  assert(last_sat_ && "value() requires a Sat result");
  if (!evaluator_) {
    // Build the model support once per Sat result: the model bits of
    // every variable the encoding knows about. Terms are then read back
    // by evaluation, which is exact whatever polarity their gates were
    // encoded at — interior gate literals are never trusted.
    for (TermRef v : blaster_.blasted_vars()) {
      const auto& bits = blaster_.blast(v);
      std::uint64_t val = 0;
      for (std::size_t i = 0; i < bits.size(); ++i)
        if (sat_->model_value(bits[i])) val |= 1ULL << i;
      model_vals_.emplace(v, BitVec(static_cast<unsigned>(bits.size()), val));
    }
    evaluator_ = std::make_unique<Evaluator>(mgr_);
  }
  return evaluator_->eval(t, model_vals_);
}

Assignment SmtSolver::values(const std::vector<TermRef>& vars) {
  Assignment a;
  for (TermRef v : vars) a.emplace(v, value(v));
  return a;
}

}  // namespace sepe::smt
