#include "smt/smt_solver.hpp"

#include <cassert>

namespace sepe::smt {

void SmtSolver::assert_formula(TermRef t) {
  assert(mgr_.width(t) == 1);
  sat_.add_clause(blaster_.blast_bit(t));
}

Result SmtSolver::check(const std::vector<TermRef>& assumptions) {
  std::vector<sat::Lit> lits;
  lits.reserve(assumptions.size());
  for (TermRef t : assumptions) {
    assert(mgr_.width(t) == 1);
    lits.push_back(blaster_.blast_bit(t));
  }
  last_assumptions_ = lits;
  switch (sat_.solve(lits)) {
    case sat::SolveResult::Sat:
      last_sat_ = true;
      vars_at_last_solve_ = sat_.num_vars();
      return Result::Sat;
    case sat::SolveResult::Unsat: last_sat_ = false; return Result::Unsat;
    case sat::SolveResult::Unknown: last_sat_ = false; return Result::Unknown;
  }
  return Result::Unknown;
}

BitVec SmtSolver::value(TermRef t) {
  assert(last_sat_ && "value() requires a Sat result");
  const auto& bits = blaster_.blast(t);
  if (sat_.num_vars() != vars_at_last_solve_) {
    // Blasting `t` introduced gate variables the last model does not
    // cover (and gate folding can alias result bits to *negations* of
    // such variables, so an unassigned default would read back wrong).
    // Re-solve under the same assumptions to extend the model; the
    // incremental core makes this cheap. The extension must not observe
    // the cooperative stop flag: in the campaign race the other prover
    // can raise it right after our Sat result, and aborting here would
    // tear the model mid-read (the claim logic decides separately
    // whether the witness is still wanted).
    // Budgets are lifted for the same reason: a Sat result whose model
    // cannot be read back is worse than a slightly-overspent budget.
    const auto* stop = sat_.stop_flag();
    const std::uint64_t conflict_budget = sat_.conflict_budget();
    const double time_budget = sat_.time_budget();
    sat_.set_stop_flag(nullptr);
    sat_.set_conflict_budget(0);
    sat_.set_time_budget(0.0);
    const auto r = sat_.solve(last_assumptions_);
    sat_.set_stop_flag(stop);
    sat_.set_conflict_budget(conflict_budget);
    sat_.set_time_budget(time_budget);
    assert(r == sat::SolveResult::Sat && "model extension cannot fail");
    (void)r;
    vars_at_last_solve_ = sat_.num_vars();
  }
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bits.size(); ++i)
    if (sat_.model_value(bits[i])) v |= 1ULL << i;
  return BitVec(static_cast<unsigned>(bits.size()), v);
}

Assignment SmtSolver::values(const std::vector<TermRef>& vars) {
  Assignment a;
  for (TermRef v : vars) a.emplace(v, value(v));
  return a;
}

}  // namespace sepe::smt
