#include "smt/eval.hpp"

#include <cassert>

namespace sepe::smt {

BitVec Evaluator::eval(TermRef t, const Assignment& assignment) {
  if (auto it = cache_.find(t); it != cache_.end()) return it->second;

  // Iterative post-order walk: recursion would overflow on BMC-sized DAGs.
  std::vector<TermRef> stack{t};
  while (!stack.empty()) {
    const TermRef cur = stack.back();
    if (cache_.count(cur)) {
      stack.pop_back();
      continue;
    }
    const TermNode& n = mgr_.node(cur);
    bool ready = true;
    for (TermRef o : n.operands) {
      if (!cache_.count(o)) {
        stack.push_back(o);
        ready = false;
      }
    }
    if (!ready) continue;
    stack.pop_back();

    auto opv = [&](std::size_t i) -> const BitVec& { return cache_.at(n.operands[i]); };
    BitVec r;
    switch (n.op) {
      case Op::Const: r = n.value; break;
      case Op::Var: {
        auto it = assignment.find(cur);
        r = it != assignment.end() ? it->second : BitVec::zeros(n.width);
        break;
      }
      case Op::Not: r = ~opv(0); break;
      case Op::And: r = opv(0) & opv(1); break;
      case Op::Or: r = opv(0) | opv(1); break;
      case Op::Xor: r = opv(0) ^ opv(1); break;
      case Op::Neg: r = -opv(0); break;
      case Op::Add: r = opv(0) + opv(1); break;
      case Op::Sub: r = opv(0) - opv(1); break;
      case Op::Mul: r = opv(0) * opv(1); break;
      case Op::Udiv: r = opv(0).udiv(opv(1)); break;
      case Op::Urem: r = opv(0).urem(opv(1)); break;
      case Op::Sdiv: r = opv(0).sdiv(opv(1)); break;
      case Op::Srem: r = opv(0).srem(opv(1)); break;
      case Op::Shl: r = opv(0).shl(opv(1)); break;
      case Op::Lshr: r = opv(0).lshr(opv(1)); break;
      case Op::Ashr: r = opv(0).ashr(opv(1)); break;
      case Op::Ult: r = opv(0).ult(opv(1)); break;
      case Op::Ule: r = opv(0).ule(opv(1)); break;
      case Op::Slt: r = opv(0).slt(opv(1)); break;
      case Op::Sle: r = opv(0).sle(opv(1)); break;
      case Op::Eq: r = opv(0).eq(opv(1)); break;
      case Op::Ne: r = opv(0).ne(opv(1)); break;
      case Op::Ite: r = opv(0).is_true() ? opv(1) : opv(2); break;
      case Op::Concat: r = opv(0).concat(opv(1)); break;
      case Op::Extract: r = opv(0).extract(n.aux0, n.aux1); break;
      case Op::ZExt: r = opv(0).zext(n.aux0); break;
      case Op::SExt: r = opv(0).sext(n.aux0); break;
    }
    assert(r.width() == n.width);
    cache_.emplace(cur, r);
  }
  return cache_.at(t);
}

BitVec eval_term(const TermManager& mgr, TermRef t, const Assignment& assignment) {
  Evaluator ev(mgr);
  return ev.eval(t, assignment);
}

}  // namespace sepe::smt
