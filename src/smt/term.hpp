// term.hpp — hash-consed bit-vector term DAG.
//
// Every symbolic formula in the repository — instruction semantics
// (src/isa), the synthesis encoding (src/synth), unrolled transition
// systems (src/bmc) — is a node in one TermManager. Hash-consing gives
// structural sharing: identical subterms are the same node, so side tables
// indexed by TermRef are plain vectors and the bit-blaster caches per node.
//
// Booleans are width-1 bit-vectors; there is no separate Bool sort.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/bitvec.hpp"

namespace sepe::smt {

/// Reference to a term node. Dense index into the manager's node table.
using TermRef = std::uint32_t;
constexpr TermRef kNullTerm = 0xffffffffu;

enum class Op : std::uint8_t {
  Const,    // literal value (in BitVec payload)
  Var,      // free variable (named)
  Not,      // bitwise not
  And, Or, Xor,
  Neg,      // two's-complement negation
  Add, Sub, Mul,
  Udiv, Urem, Sdiv, Srem,
  Shl, Lshr, Ashr,
  Ult, Ule, Slt, Sle,   // 1-bit results
  Eq, Ne,               // 1-bit results
  Ite,      // Ite(cond_1bit, then, else)
  Concat,   // operand 0 = high bits
  Extract,  // aux0 = hi, aux1 = lo
  ZExt, SExt,  // aux0 = result width
};

const char* op_name(Op op);

/// Canonical 128-bit structural digest of a term. Two terms built in
/// *different* TermManagers get equal digests iff they are structurally
/// identical (same op/width/aux/payload/name tree), which is what lets
/// the campaign-wide cone cache (src/smt/cone_cache.hpp) key bit-blasted
/// CNF by content instead of by TermRef. Digests are computed eagerly at
/// node creation — operands always exist before their parents in the
/// hash-consed DAG, so each node costs O(arity).
struct TermDigest {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  bool operator==(const TermDigest& o) const { return lo == o.lo && hi == o.hi; }
  bool operator!=(const TermDigest& o) const { return !(*this == o); }
};

/// A single DAG node. Immutable after creation.
struct TermNode {
  Op op;
  unsigned width;                 // result width in bits
  std::vector<TermRef> operands;
  BitVec value;                   // payload for Const
  unsigned aux0 = 0, aux1 = 0;    // Extract hi/lo, ZExt/SExt target width
  std::string name;               // payload for Var
};

/// Owns all term nodes; constructors hash-cons and constant-fold.
///
/// All mk_* functions assert width agreement and return an existing node
/// when an identical one was already built.
class TermManager {
 public:
  TermManager();

  const TermNode& node(TermRef t) const { return nodes_[t]; }
  unsigned width(TermRef t) const { return nodes_[t].width; }
  std::size_t num_nodes() const { return nodes_.size(); }

  /// Canonical cross-manager structural digest (see TermDigest). By
  /// value: a reference into digests_ would dangle as soon as a caller
  /// interned another term (the vector reallocates).
  TermDigest digest(TermRef t) const { return digests_[t]; }

  TermRef mk_const(const BitVec& v);
  TermRef mk_const(unsigned width, std::uint64_t v) { return mk_const(BitVec(width, v)); }
  TermRef mk_true() { return mk_const(BitVec::boolean(true)); }
  TermRef mk_false() { return mk_const(BitVec::boolean(false)); }
  TermRef mk_bool(bool b) { return b ? mk_true() : mk_false(); }

  /// Fresh or existing named variable. Same (name,width) returns the same
  /// node; requesting an existing name at a different width asserts.
  TermRef mk_var(const std::string& name, unsigned width);

  TermRef mk_not(TermRef a);
  TermRef mk_and(TermRef a, TermRef b);
  TermRef mk_or(TermRef a, TermRef b);
  TermRef mk_xor(TermRef a, TermRef b);
  TermRef mk_neg(TermRef a);
  TermRef mk_add(TermRef a, TermRef b);
  TermRef mk_sub(TermRef a, TermRef b);
  TermRef mk_mul(TermRef a, TermRef b);
  TermRef mk_udiv(TermRef a, TermRef b);
  TermRef mk_urem(TermRef a, TermRef b);
  TermRef mk_sdiv(TermRef a, TermRef b);
  TermRef mk_srem(TermRef a, TermRef b);
  TermRef mk_shl(TermRef a, TermRef b);
  TermRef mk_lshr(TermRef a, TermRef b);
  TermRef mk_ashr(TermRef a, TermRef b);
  TermRef mk_ult(TermRef a, TermRef b);
  TermRef mk_ule(TermRef a, TermRef b);
  TermRef mk_slt(TermRef a, TermRef b);
  TermRef mk_sle(TermRef a, TermRef b);
  TermRef mk_eq(TermRef a, TermRef b);
  TermRef mk_ne(TermRef a, TermRef b);
  TermRef mk_ite(TermRef cond, TermRef then_t, TermRef else_t);
  TermRef mk_concat(TermRef high, TermRef low);
  TermRef mk_extract(TermRef a, unsigned hi, unsigned lo);
  TermRef mk_zext(TermRef a, unsigned new_width);
  TermRef mk_sext(TermRef a, unsigned new_width);

  // Boolean conveniences over width-1 terms.
  TermRef mk_implies(TermRef a, TermRef b) { return mk_or(mk_not(a), b); }
  TermRef mk_iff(TermRef a, TermRef b) { return mk_eq(a, b); }

  /// Conjunction of a list (true for empty).
  TermRef mk_and_many(const std::vector<TermRef>& ts);
  /// Disjunction of a list (false for empty).
  TermRef mk_or_many(const std::vector<TermRef>& ts);

  /// S-expression rendering for debugging and BTOR2-ish dumps.
  std::string to_string(TermRef t) const;

 private:
  struct Key {
    Op op;
    unsigned width;
    std::vector<TermRef> operands;
    std::uint64_t payload;  // const bits, or hash of name
    unsigned aux0, aux1;
    bool operator==(const Key& o) const {
      return op == o.op && width == o.width && operands == o.operands &&
             payload == o.payload && aux0 == o.aux0 && aux1 == o.aux1;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::size_t h = static_cast<std::size_t>(k.op) * 0x9e3779b97f4a7c15ULL;
      h ^= k.width + 0x9e3779b9 + (h << 6) + (h >> 2);
      for (TermRef t : k.operands) h ^= t + 0x9e3779b9 + (h << 6) + (h >> 2);
      h ^= k.payload + (h << 6) + (h >> 2);
      h ^= k.aux0 * 131 + k.aux1 * 137;
      return h;
    }
  };

  TermRef intern(Key key, TermNode node);
  TermRef mk_binop(Op op, TermRef a, TermRef b, unsigned result_width);
  bool is_const(TermRef t) const { return nodes_[t].op == Op::Const; }
  const BitVec& const_val(TermRef t) const { return nodes_[t].value; }
  /// Compute and store the digest of nodes_.back() (called once per node).
  void stamp_digest();

  std::vector<TermNode> nodes_;
  std::vector<TermDigest> digests_;  // parallel to nodes_
  std::unordered_map<Key, TermRef, KeyHash> table_;
  std::unordered_map<std::string, TermRef> vars_;
};

}  // namespace sepe::smt
