// eval.hpp — concrete evaluation of term DAGs.
//
// Used by CEGIS to replay counterexamples against candidate programs, by
// property tests to cross-check the symbolic semantics against the ISS,
// and by the BMC witness printer.
#pragma once

#include <unordered_map>
#include <vector>

#include "smt/term.hpp"
#include "util/bitvec.hpp"

namespace sepe::smt {

/// Assignment of concrete values to Var terms.
using Assignment = std::unordered_map<TermRef, BitVec>;

/// Evaluate `t` under `assignment`. Unassigned variables evaluate to zero
/// (SMT "don't care" completion). Memoizes across the DAG, so evaluating a
/// large shared formula is linear in its node count.
///
/// An Evaluator instance is bound to one logical assignment: the memo cache
/// is keyed on terms only, so reusing an instance with a *different*
/// assignment would return stale values. Construct a fresh Evaluator (or
/// call eval_term) per assignment.
class Evaluator {
 public:
  explicit Evaluator(const TermManager& mgr) : mgr_(mgr) {}

  BitVec eval(TermRef t, const Assignment& assignment);

 private:
  const TermManager& mgr_;
  std::unordered_map<TermRef, BitVec> cache_;
};

/// One-shot convenience wrapper.
BitVec eval_term(const TermManager& mgr, TermRef t, const Assignment& assignment);

}  // namespace sepe::smt
