// smt_solver.hpp — quantifier-free bit-vector SMT solver facade.
//
// The "Boolector seat" of the reproduction: CEGIS synthesis queries,
// CEGIS verification queries and BMC unrollings all go through this
// class. Solving is eager bit-blasting onto the in-repo CDCL core.
//
// The interface is deliberately close to an incremental SMT-LIB session:
// assert_formula() adds permanent constraints, check(assumptions) solves
// under retractable 1-bit assumptions (used by CEGIS to switch candidate
// programs without rebuilding the encoding), and value() reads back a
// model.
#pragma once

#include <vector>

#include "sat/solver.hpp"
#include "smt/bitblast.hpp"
#include "smt/eval.hpp"
#include "smt/term.hpp"

namespace sepe::smt {

enum class Result { Sat, Unsat, Unknown };

class SmtSolver {
 public:
  explicit SmtSolver(TermManager& mgr) : mgr_(mgr), blaster_(mgr, sat_) {}

  TermManager& mgr() { return mgr_; }

  /// Permanently assert a 1-bit term.
  void assert_formula(TermRef t);

  Result check() { return check({}); }
  /// Solve under retractable assumptions (1-bit terms).
  Result check(const std::vector<TermRef>& assumptions);

  /// Model value of a term after Sat. Terms not mentioned in any asserted
  /// formula get fresh unconstrained bits, which read back as zero.
  BitVec value(TermRef t);

  /// Model values for a set of variables, as an Assignment usable by the
  /// Evaluator (CEGIS counterexample extraction).
  Assignment values(const std::vector<TermRef>& vars);

  /// Abort check() with Unknown after this many SAT conflicts (0 = off).
  void set_conflict_budget(std::uint64_t budget) { sat_.set_conflict_budget(budget); }

  /// Abort check() with Unknown after this many wall seconds (0 = off).
  void set_time_budget(double seconds) { sat_.set_time_budget(seconds); }

  /// Cooperative cancellation (see sat::Solver::set_stop_flag): check()
  /// aborts with Unknown soon after *stop becomes true.
  void set_stop_flag(const std::atomic<bool>* stop) { sat_.set_stop_flag(stop); }
  bool stop_requested() const { return sat_.stop_requested(); }

  const sat::Solver& sat_solver() const { return sat_; }

 private:
  TermManager& mgr_;
  sat::Solver sat_;
  BitBlaster blaster_;
  bool last_sat_ = false;
  int vars_at_last_solve_ = 0;
  std::vector<sat::Lit> last_assumptions_;
};

}  // namespace sepe::smt
