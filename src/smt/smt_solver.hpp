// smt_solver.hpp — quantifier-free bit-vector SMT solver facade.
//
// The "Boolector seat" of the reproduction: CEGIS synthesis queries,
// CEGIS verification queries and BMC unrollings all go through this
// class. Solving is eager bit-blasting onto the in-repo CDCL core.
//
// The interface is deliberately close to an incremental SMT-LIB session:
// assert_formula() adds permanent constraints, check(assumptions) solves
// under retractable 1-bit assumptions (used by CEGIS to switch candidate
// programs without rebuilding the encoding), and value() reads back a
// model.
//
// Asserted formulas and assumptions are blasted at positive polarity, so
// under the opt-in Plaisted–Greenbaum mode interior gate literals are
// only constrained in the direction the query needs. Model read-back
// therefore never trusts gate literals: value() reads the model bits of
// the *variables* and evaluates the term over them, which is exact under
// any encoding polarity (and avoids the old re-solve-to-extend-the-model
// dance).
#pragma once

#include <memory>
#include <vector>

#include "sat/solver.hpp"
#include "smt/bitblast.hpp"
#include "smt/eval.hpp"
#include "smt/term.hpp"

namespace sepe::smt {

enum class Result { Sat, Unsat, Unknown };

class SmtSolver {
 public:
  /// `config` tunes the CDCL heuristics (portfolio racing).
  /// `plaisted_greenbaum` = true opts into polarity-split encoding (see
  /// bitblast.hpp for why full Tseitin is the default).
  /// `cone_cache`, when non-null, shares bit-blasted cones with the other
  /// solver stacks of a campaign (see cone_cache.hpp).
  /// `backend` picks the SAT engine behind the blaster (backend.hpp);
  /// the native CDCL is the default and the only one `config` tunes.
  /// `sharing` attaches the backend to a campaign's learnt-clause pools
  /// (sat/exchange.hpp); backends that cannot share (DIMACS) skip it.
  explicit SmtSolver(TermManager& mgr, const sat::SolverConfig& config = {},
                     bool plaisted_greenbaum = false,
                     std::shared_ptr<ConeCache> cone_cache = nullptr,
                     sat::BackendKind backend = sat::BackendKind::Native,
                     sat::SharingContext sharing = {})
      : mgr_(mgr),
        sat_(sat::make_backend(backend, config)),
        blaster_(mgr, *sat_, plaisted_greenbaum, std::move(cone_cache)) {
    if (sharing.enabled() && sat_->supports_sharing())
      sat_->attach_sharing(sharing.exchange, sharing.vault, sharing.member,
                           sharing.lbd_cap);
  }

  TermManager& mgr() { return mgr_; }

  /// Permanently assert a 1-bit term.
  void assert_formula(TermRef t);

  Result check() { return check({}); }
  /// Solve under retractable assumptions (1-bit terms).
  Result check(const std::vector<TermRef>& assumptions);

  /// Model value of a term after Sat: the term evaluated over the model
  /// values of its variables. Variables never mentioned in any asserted
  /// formula or assumption read as zero (don't-care completion).
  BitVec value(TermRef t);

  /// Model values for a set of variables, as an Assignment usable by the
  /// Evaluator (CEGIS counterexample extraction).
  Assignment values(const std::vector<TermRef>& vars);

  /// Abort check() with Unknown after this many SAT conflicts (0 = off).
  void set_conflict_budget(std::uint64_t budget) { sat_->set_conflict_budget(budget); }
  std::uint64_t conflict_budget() const { return sat_->conflict_budget(); }

  /// Abort check() with Unknown after this many wall seconds (0 = off).
  void set_time_budget(double seconds) { sat_->set_time_budget(seconds); }
  double time_budget() const { return sat_->time_budget(); }

  /// Cooperative cancellation (see sat::Backend::set_stop_flag): check()
  /// aborts with Unknown soon after *stop becomes true.
  void set_stop_flag(const std::atomic<bool>* stop) { sat_->set_stop_flag(stop); }
  bool stop_requested() const { return sat_->stop_requested(); }

  const sat::Backend& sat_solver() const { return *sat_; }

  /// Cone-cache traffic of this solver's blaster (zeros when uncached).
  const BitBlaster::ConeStats& cone_stats() const {
    return blaster_.cone_stats();
  }

 private:
  TermManager& mgr_;
  std::unique_ptr<sat::Backend> sat_;
  BitBlaster blaster_;
  bool last_sat_ = false;
  /// Lazily built per Sat result: model values of every blasted variable
  /// plus the evaluator memo over them. Invalidated by the next check().
  std::unique_ptr<Evaluator> evaluator_;
  Assignment model_vals_;
};

}  // namespace sepe::smt
