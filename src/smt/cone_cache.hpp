// cone_cache.hpp — campaign-wide cache of bit-blasted CNF cones.
//
// Campaign jobs are near-duplicates (the same DUV with one mutation or
// QED mode flipped; corpus siblings share every cone up to the property),
// yet each job bit-blasts on an isolated solver stack. This store lets
// every BitBlaster of a campaign share the *work* of blasting without
// sharing any solver state.
//
// Design: exact-replay tapes keyed by blaster-state digest.
//
// A BitBlaster's entire state — solver clause/variable stream, term→bits
// cache, gate cache, polarity table — is a deterministic function of the
// sequence of top-level blast(root, polarity) calls it has served,
// where each root is identified structurally by its canonical TermDigest
// (cross-manager, see term.hpp). Each blaster therefore maintains a
// running *state digest* over that call history (seeded with the
// encoding flag). Two blasters with equal state digests are isomorphic:
// same variable numbering (var 0 is always the true literal), same
// caches, same everything.
//
// A tape records one top-level blast call against a given state digest:
// the exact solver API call stream (fresh variables and clauses, in
// order), the DFS sequence of newly encoded nodes (digest + bits), and
// the gate-cache mutations. Replaying the tape on an isomorphic blaster
// issues the *identical* API call sequence the structural encoder would
// have issued — cached and uncached runs are indistinguishable to the
// SAT core by construction, which is what makes the campaign determinism
// contract (byte-identical stable JSON) hold trivially. The win is
// skipping the encode() walk: circuit construction, hash-consing
// traffic, and gate-cache probing happen once per distinct cone per
// campaign instead of once per job.
//
// Replay validates before it mutates: the to-be-encoded node sequence is
// walked read-only and digest-paired against the tape; any mismatch (a
// state-key collision) bails out to the structural encoder. A hit can
// therefore never corrupt a blaster.
//
// Thread safety: lookup/insert take a mutex; tapes are immutable after
// insertion and handed out by shared_ptr. Counters are plain values
// guarded by the same mutex (lookups are rare: one per top-level blast).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "smt/term.hpp"

namespace sepe::smt {

/// One recorded top-level blast call. Immutable once stored.
struct ConeTape {
  /// A node the call encoded, in pruned-DFS post-order. `bits` are raw
  /// literal codes — valid verbatim on any isomorphic blaster.
  struct Node {
    TermDigest digest;
    unsigned width;
    bool is_var;  // replay appends to blasted_vars_
    std::vector<int> bits;
  };
  /// A gate-cache mutation: insert of a fresh entry or widening of the
  /// emitted-polarity mask of an existing one.
  struct GateOp {
    int op, a, b, c;    // the structural GateKey
    int out;            // output literal code
    std::uint8_t mask;  // polarities emitted by this op
    bool insert;
  };

  /// Solver API call stream: -1 = one fresh variable; n >= 1 = a clause
  /// of n literal codes following immediately.
  std::vector<int> stream;
  std::vector<Node> nodes;
  std::vector<GateOp> gate_ops;
  std::uint64_t num_vars = 0;
  std::uint64_t num_clauses = 0;

  std::size_t byte_size() const;
};

/// Thread-safe in-process tape store, shared by every solver stack of a
/// campaign (src/engine/campaign.cpp creates one per run_campaign).
class ConeCache {
 public:
  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t stores = 0;
    std::uint64_t store_rejects = 0;        // memory budget exceeded
    std::uint64_t validation_failures = 0;  // key collision, replay refused
    std::uint64_t bytes = 0;
  };

  static constexpr std::size_t kDefaultMaxBytes = std::size_t(256) << 20;

  explicit ConeCache(std::size_t max_bytes = kDefaultMaxBytes)
      : max_bytes_(max_bytes) {}

  /// The tape recorded under `key`, or null. Counts a lookup (and a hit).
  std::shared_ptr<const ConeTape> lookup(const TermDigest& key);

  /// Insert-if-absent; rejected (dropped) when over the memory budget.
  /// Losing an insert race or a rejection is harmless: replay and
  /// structural encoding produce identical solver states.
  void insert(const TermDigest& key, std::shared_ptr<const ConeTape> tape);

  /// A replay refused by digest validation (see BitBlaster::replay_tape).
  void note_validation_failure();

  Stats stats() const;

 private:
  struct KeyHash {
    std::size_t operator()(const TermDigest& d) const {
      return static_cast<std::size_t>(d.lo ^ (d.hi * 0x9e3779b97f4a7c15ULL));
    }
  };

  mutable std::mutex mu_;
  std::unordered_map<TermDigest, std::shared_ptr<const ConeTape>, KeyHash> map_;
  std::size_t max_bytes_;
  Stats stats_;
};

}  // namespace sepe::smt
