#include "smt/bitblast.hpp"

#include <cassert>
#include <unordered_set>

namespace sepe::smt {

using sat::Lit;

namespace {

// splitmix64 finalizer, the same diffusion the term digests use.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

BitBlaster::BitBlaster(const TermManager& mgr, sat::Backend& solver,
                       bool plaisted_greenbaum,
                       std::shared_ptr<ConeCache> cone_cache)
    : mgr_(mgr),
      solver_(solver),
      pg_(plaisted_greenbaum),
      cone_cache_(std::move(cone_cache)) {
  true_lit_ = fresh();
  solver_.add_clause(true_lit_);
  // Seed the state digest with the encoding: a Tseitin tape must never
  // be offered to a Plaisted-Greenbaum blaster or vice versa.
  state_.lo = mix64(0x636f6e652d763120ULL ^ (pg_ ? 2 : 1));
  state_.hi = mix64(state_.lo);
}

TermDigest BitBlaster::advance_state(TermRef root, std::uint8_t polarity) {
  const TermDigest& d = mgr_.digest(root);
  TermDigest next;
  next.lo = mix64(state_.lo ^ d.lo ^ (std::uint64_t(polarity) << 56));
  next.hi = mix64(state_.hi ^ d.hi ^ std::uint64_t(polarity));
  state_ = next;
  return next;
}

Lit BitBlaster::gate_output(const GateKey& key, std::uint8_t pol,
                            std::uint8_t& missing) {
  if (auto it = gate_cache_.find(key); it != gate_cache_.end()) {
    missing = pol & static_cast<std::uint8_t>(~it->second.emitted);
    it->second.emitted |= missing;
    if (recording_ && missing != 0)
      recording_->gate_ops.push_back(ConeTape::GateOp{
          key.op, key.a, key.b, key.c, it->second.out.code(), missing, false});
    return it->second.out;
  }
  const Lit o = fresh();
  missing = pol;
  gate_cache_.emplace(key, GateEntry{o, pol});
  if (recording_)
    recording_->gate_ops.push_back(
        ConeTape::GateOp{key.op, key.a, key.b, key.c, o.code(), pol, true});
  return o;
}

Lit BitBlaster::gate_and(Lit a, Lit b, std::uint8_t pol) {
  if (!pg_) pol = kBoth;
  if (a == const_lit(false) || b == const_lit(false)) return const_lit(false);
  if (a == const_lit(true)) return b;
  if (b == const_lit(true)) return a;
  if (a == b) return a;
  if (a == ~b) return const_lit(false);
  if (a.code() > b.code()) std::swap(a, b);
  std::uint8_t missing;
  const Lit o = gate_output(GateKey{0, a.code(), b.code(), -1}, pol, missing);
  if (missing & kPos) {  // o -> a, o -> b
    emit(a, ~o);
    emit(b, ~o);
  }
  if (missing & kNeg) {  // a & b -> o
    emit(~a, ~b, o);
  }
  return o;
}

Lit BitBlaster::gate_or(Lit a, Lit b, std::uint8_t pol) {
  return ~gate_and(~a, ~b, flip(pol));
}

Lit BitBlaster::gate_xor(Lit a, Lit b, std::uint8_t pol) {
  if (!pg_) pol = kBoth;
  if (a == const_lit(false)) return b;
  if (b == const_lit(false)) return a;
  if (a == const_lit(true)) return ~b;
  if (b == const_lit(true)) return ~a;
  if (a == b) return const_lit(false);
  if (a == ~b) return const_lit(true);
  if (a.code() > b.code()) std::swap(a, b);
  std::uint8_t missing;
  const Lit o = gate_output(GateKey{1, a.code(), b.code(), -1}, pol, missing);
  if (missing & kPos) {  // o -> (a xor b)
    emit(~a, ~b, ~o);
    emit(a, b, ~o);
  }
  if (missing & kNeg) {  // (a xor b) -> o
    emit(~a, b, o);
    emit(a, ~b, o);
  }
  return o;
}

Lit BitBlaster::gate_mux(Lit sel, Lit t, Lit e, std::uint8_t pol) {
  if (!pg_) pol = kBoth;
  if (sel == const_lit(true)) return t;
  if (sel == const_lit(false)) return e;
  if (t == e) return t;
  if (t == const_lit(true) && e == const_lit(false)) return sel;
  if (t == const_lit(false) && e == const_lit(true)) return ~sel;
  std::uint8_t missing;
  const Lit o = gate_output(GateKey{2, sel.code(), t.code(), e.code()}, pol, missing);
  if (missing & kPos) {  // o -> (sel ? t : e)
    emit(~sel, t, ~o);
    emit(sel, e, ~o);
  }
  if (missing & kNeg) {  // (sel ? t : e) -> o
    emit(~sel, ~t, o);
    emit(sel, ~e, o);
  }
  return o;
}

Lit BitBlaster::gate_full_add(Lit a, Lit b, Lit cin, Lit& cout) {
  const Lit axb = gate_xor(a, b);
  const Lit sum = gate_xor(axb, cin);
  // cout = (a & b) | (cin & (a ^ b))
  cout = gate_or(gate_and(a, b), gate_and(cin, axb));
  return sum;
}

BitBlaster::Bits BitBlaster::encode_add(const Bits& a, const Bits& b, Lit carry_in) {
  Bits out(a.size());
  Lit carry = carry_in;
  for (std::size_t i = 0; i < a.size(); ++i)
    out[i] = gate_full_add(a[i], b[i], carry, carry);
  return out;
}

BitBlaster::Bits BitBlaster::negate(const Bits& a) {
  Bits inv(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) inv[i] = ~a[i];
  Bits one(a.size(), const_lit(false));
  return encode_add(inv, one, const_lit(true));
}

BitBlaster::Bits BitBlaster::encode_mul(const Bits& a, const Bits& b) {
  const std::size_t w = a.size();
  Bits acc(w, const_lit(false));
  for (std::size_t i = 0; i < w; ++i) {
    // acc[i..] += b[0..w-i) & a[i]
    Bits addend(w, const_lit(false));
    for (std::size_t j = 0; i + j < w; ++j) addend[i + j] = gate_and(a[i], b[j]);
    acc = encode_add(acc, addend, const_lit(false));
  }
  return acc;
}

void BitBlaster::encode_udivrem(const Bits& a, const Bits& b, Bits& quot, Bits& rem) {
  // Restoring division over a (w+1)-bit working remainder.
  const std::size_t w = a.size();
  Bits br(w + 1);  // b zero-extended
  for (std::size_t i = 0; i < w; ++i) br[i] = b[i];
  br[w] = const_lit(false);

  Bits r(w + 1, const_lit(false));
  quot.assign(w, const_lit(false));
  for (std::size_t step = w; step-- > 0;) {
    // r = (r << 1) | a[step]
    Bits shifted(w + 1);
    shifted[0] = a[step];
    for (std::size_t i = 1; i <= w; ++i) shifted[i] = r[i - 1];
    // trial = shifted - b ; non-negative iff carry out of the addition of -b
    Lit carry = const_lit(true);
    Bits trial(w + 1);
    for (std::size_t i = 0; i <= w; ++i) {
      const Lit nb = ~br[i];
      trial[i] = gate_full_add(shifted[i], nb, carry, carry);
    }
    const Lit geq = carry;  // shifted >= b
    quot[step] = geq;
    for (std::size_t i = 0; i <= w; ++i) r[i] = gate_mux(geq, trial[i], shifted[i]);
  }
  rem.assign(w, const_lit(false));
  for (std::size_t i = 0; i < w; ++i) rem[i] = r[i];
}

BitBlaster::Bits BitBlaster::encode_mux_word(Lit sel, const Bits& t, const Bits& e) {
  Bits out(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) out[i] = gate_mux(sel, t[i], e[i]);
  return out;
}

BitBlaster::Bits BitBlaster::encode_shift(const Bits& a, const Bits& amount, Op op) {
  const std::size_t w = a.size();
  const Lit fill = op == Op::Ashr ? a[w - 1] : const_lit(false);

  unsigned stages = 0;
  while ((1ULL << stages) < w) ++stages;

  Bits cur = a;
  for (unsigned s = 0; s < stages && s < amount.size(); ++s) {
    const std::size_t dist = 1ULL << s;
    Bits shifted(w);
    for (std::size_t i = 0; i < w; ++i) {
      if (op == Op::Shl) {
        shifted[i] = i >= dist ? cur[i - dist] : const_lit(false);
      } else {
        shifted[i] = i + dist < w ? cur[i + dist] : fill;
      }
    }
    cur = encode_mux_word(amount[s], shifted, cur);
  }

  // Saturate when amount >= w (SMT-LIB semantics). Covers both high bits
  // of the amount beyond the barrel stages and non-power-of-two widths.
  Lit oversize = const_lit(false);
  for (std::size_t i = stages; i < amount.size(); ++i)
    oversize = gate_or(oversize, amount[i]);
  if ((w & (w - 1)) != 0) {
    // amount[0..stages) >= w ?
    Bits lowa(amount.begin(), amount.begin() + stages);
    Bits wconst(stages);
    for (unsigned i = 0; i < stages; ++i)
      wconst[i] = const_lit((w >> i) & 1);
    const Lit lt = encode_ult(lowa, wconst);
    oversize = gate_or(oversize, ~lt);
  }
  Bits saturated(w, fill);
  return encode_mux_word(oversize, saturated, cur);
}

Lit BitBlaster::encode_ult(const Bits& a, const Bits& b, std::uint8_t pol) {
  // Borrow chain of a - b: borrow out means a < b. The chain muxes carry
  // the output polarity; the xor selectors are interior and need both.
  Lit borrow = const_lit(false);
  for (std::size_t i = 0; i < a.size(); ++i) {
    // borrow' = (~a & b) | ((~a | b) & borrow) = mux(a==b bitwise, borrow, b)
    const Lit axb = gate_xor(a[i], b[i]);
    borrow = gate_mux(axb, b[i], borrow, pol);
  }
  return borrow;
}

Lit BitBlaster::encode_slt(const Bits& a, const Bits& b, std::uint8_t pol) {
  const std::size_t w = a.size();
  if (w == 1) return gate_and(a[0], ~b[0], pol);  // signed 1-bit: -1 < 0
  const Lit sign_diff = gate_xor(a[w - 1], b[w - 1]);
  const Lit u = encode_ult(a, b, pol);
  return gate_mux(sign_diff, a[w - 1], u, pol);
}

Lit BitBlaster::encode_eq(const Bits& a, const Bits& b, std::uint8_t pol) {
  // The per-bit xors feed the AND chain negated, so they carry the
  // flipped polarity.
  Lit acc = const_lit(true);
  for (std::size_t i = 0; i < a.size(); ++i)
    acc = gate_and(acc, ~gate_xor(a[i], b[i], flip(pol)), pol);
  return acc;
}

std::uint8_t BitBlaster::node_polarity(TermRef t) const {
  if (!pg_) return kBoth;
  const auto it = term_pol_.find(t);
  return it == term_pol_.end() ? kBoth : it->second;
}

void BitBlaster::propagate_polarity(TermRef t, std::uint8_t pol,
                                    std::vector<TermRef>& replay) {
  std::vector<std::pair<TermRef, std::uint8_t>> work{{t, pol}};
  while (!work.empty()) {
    auto [cur, p] = work.back();
    work.pop_back();
    const TermNode& n = mgr_.node(cur);
    // Only the 1-bit Boolean skeleton is polarity-split; word-level
    // circuit internals are always both-direction.
    if (n.width != 1) p = kBoth;
    std::uint8_t& have = term_pol_[cur];
    const std::uint8_t missing = p & static_cast<std::uint8_t>(~have);
    if (missing == 0) continue;
    have |= missing;
    // A cached node whose requirement widened needs its missing clause
    // directions re-emitted (Var/Const carry no clauses at all).
    if (n.op != Op::Var && n.op != Op::Const && cache_.count(cur) != 0)
      replay.push_back(cur);
    switch (n.op) {
      case Op::And:
      case Op::Or:
        if (n.width == 1) {  // monotone: operands inherit the polarity
          for (TermRef o : n.operands) work.push_back({o, missing});
          continue;
        }
        break;
      case Op::Not:  // bits alias negated operand bits: polarity flips
        work.push_back({n.operands[0], flip(missing)});
        continue;
      case Op::Ite:
        if (n.width == 1) {  // branches monotone, the selector is not
          work.push_back({n.operands[0], kBoth});
          work.push_back({n.operands[1], missing});
          work.push_back({n.operands[2], missing});
          continue;
        }
        break;
      default: break;
    }
    for (TermRef o : n.operands) work.push_back({o, kBoth});
  }
}

bool BitBlaster::replay_tape(TermRef t, std::uint8_t polarity,
                             const ConeTape& tape) {
  // Phase 1, read-only: walk the pruned DFS exactly as the structural
  // encoder below would, pairing each to-be-encoded node with the tape's
  // node records by canonical digest. A mismatch means the state-digest
  // key collided across genuinely different histories — refuse the tape
  // before anything has been mutated.
  std::vector<TermRef> order;
  {
    std::unordered_set<TermRef> planned;
    std::vector<TermRef> stack{t};
    while (!stack.empty()) {
      const TermRef cur = stack.back();
      if (cache_.count(cur) != 0 || planned.count(cur) != 0) {
        stack.pop_back();
        continue;
      }
      bool ready = true;
      for (TermRef o : mgr_.node(cur).operands) {
        if (cache_.count(o) == 0 && planned.count(o) == 0) {
          stack.push_back(o);
          ready = false;
        }
      }
      if (!ready) continue;
      stack.pop_back();
      planned.insert(cur);
      order.push_back(cur);
    }
  }
  if (order.size() != tape.nodes.size()) return false;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const ConeTape::Node& rec = tape.nodes[i];
    if (rec.digest != mgr_.digest(order[i])) return false;
    if (rec.width != mgr_.node(order[i]).width) return false;
  }

  // Phase 2: apply. The polarity walk only touches term_pol_ — the
  // clause re-emissions its replay list stood for on the recording side
  // are part of the tape's stream, so the list itself is discarded.
  if (pg_) {
    std::vector<TermRef> discard;
    propagate_polarity(t, polarity, discard);
  }

  // Solver API call stream, verbatim and in order.
  for (std::size_t i = 0; i < tape.stream.size();) {
    const int v = tape.stream[i++];
    if (v < 0) {
      solver_.new_var();
      continue;
    }
    assert(i + static_cast<std::size_t>(v) <= tape.stream.size());
    if (v == 2) {
      solver_.add_clause(Lit::from_code(tape.stream[i]),
                         Lit::from_code(tape.stream[i + 1]));
    } else if (v == 3) {
      solver_.add_clause(Lit::from_code(tape.stream[i]),
                         Lit::from_code(tape.stream[i + 1]),
                         Lit::from_code(tape.stream[i + 2]));
    } else {
      std::vector<Lit> clause;
      clause.reserve(v);
      for (int j = 0; j < v; ++j)
        clause.push_back(Lit::from_code(tape.stream[i + j]));
      solver_.add_clause(clause);
    }
    i += v;
    ++cone_stats_.clauses_replayed;
  }

  // Gate-cache mutations, so later structural encodes see the exact
  // state the recording blaster had.
  for (const ConeTape::GateOp& g : tape.gate_ops) {
    const GateKey key{g.op, g.a, g.b, g.c};
    if (g.insert) {
      gate_cache_.emplace(key, GateEntry{Lit::from_code(g.out), g.mask});
    } else {
      const auto it = gate_cache_.find(key);
      assert(it != gate_cache_.end() && "tape update of an unknown gate");
      if (it != gate_cache_.end()) it->second.emitted |= g.mask;
    }
  }

  // Term bits and the model support, in DFS order.
  for (std::size_t i = 0; i < order.size(); ++i) {
    const ConeTape::Node& rec = tape.nodes[i];
    Bits bits;
    bits.reserve(rec.bits.size());
    for (int code : rec.bits) bits.push_back(Lit::from_code(code));
    if (rec.is_var) blasted_vars_.push_back(order[i]);
    cache_.emplace(order[i], std::move(bits));
  }
  return true;
}

const std::vector<Lit>& BitBlaster::blast(TermRef t, std::uint8_t polarity) {
  if (!pg_) polarity = kBoth;
  // Every top-level call — including no-ops — advances the state digest,
  // keeping the key an exact function of the call history.
  const TermDigest key = advance_state(t, polarity);
  const Bits& bits = blast_under_key(t, polarity, key);
  // Publish the new share epoch only now: the cone's clauses exist, so a
  // vault clause served under this epoch can only mention live variables.
  publish_epoch();
  return bits;
}

const BitBlaster::Bits& BitBlaster::blast_under_key(TermRef t, std::uint8_t polarity,
                                                    const TermDigest& key) {
  if (auto it = cache_.find(t); it != cache_.end()) {
    if (!pg_) return it->second;
    const auto pit = term_pol_.find(t);
    if (pit != term_pol_.end() &&
        (polarity & static_cast<std::uint8_t>(~pit->second)) == 0)
      return it->second;
  }

  if (cone_cache_) {
    ++cone_stats_.lookups;
    if (const auto tape = cone_cache_->lookup(key)) {
      if (replay_tape(t, polarity, *tape)) {
        ++cone_stats_.hits;
        return cache_.at(t);
      }
      cone_cache_->note_validation_failure();
    } else {
      rec_tape_ = std::make_shared<ConeTape>();
      recording_ = rec_tape_.get();
    }
  }

  std::vector<TermRef> replay;
  if (pg_) propagate_polarity(t, polarity, replay);

  // Widen already-encoded nodes first: re-running encode() is a
  // deterministic replay — every gate call hits the gate cache, so the
  // bits are unchanged and only the missing clause directions are added.
  for (TermRef r : replay) {
    [[maybe_unused]] const Bits bits = encode(r);
    assert(bits == cache_.at(r) && "polarity replay must not change bits");
  }

  // Iterative post-order to avoid stack overflow on deep BMC unrollings.
  std::vector<TermRef> stack{t};
  while (!stack.empty()) {
    const TermRef cur = stack.back();
    if (cache_.count(cur)) {
      stack.pop_back();
      continue;
    }
    const TermNode& n = mgr_.node(cur);
    bool ready = true;
    for (TermRef o : n.operands) {
      if (!cache_.count(o)) {
        stack.push_back(o);
        ready = false;
      }
    }
    if (!ready) continue;
    stack.pop_back();
    Bits bits = encode(cur);
    if (recording_) {
      ConeTape::Node rec{mgr_.digest(cur), n.width, n.op == Op::Var, {}};
      rec.bits.reserve(bits.size());
      for (Lit l : bits) rec.bits.push_back(l.code());
      recording_->nodes.push_back(std::move(rec));
    }
    cache_.emplace(cur, std::move(bits));
  }

  if (recording_) {
    recording_ = nullptr;
    cone_cache_->insert(key, std::move(rec_tape_));
  }
  return cache_.at(t);
}

Lit BitBlaster::blast_bit(TermRef t, std::uint8_t polarity) {
  assert(mgr_.width(t) == 1);
  return blast(t, polarity)[0];
}

void BitBlaster::publish_epoch() {
  solver_.set_share_epoch(sat::ShareKey{state_.lo, state_.hi});
}

void BitBlaster::note_assert(Lit l) {
  // Tag 0x617373657274 = "assert". Folding top-level unit assertions into
  // the digest keeps "equal epoch" equivalent to "identical clause
  // stream" — the property every cross-solver import leans on.
  const std::uint64_t code = static_cast<std::uint32_t>(l.code());
  state_.lo = mix64(state_.lo ^ 0x617373657274ULL ^ (code << 16));
  state_.hi = mix64(state_.hi ^ 0x617373657274ULL ^ code);
  publish_epoch();
}

BitBlaster::Bits BitBlaster::encode(TermRef t) {
  const TermNode& n = mgr_.node(t);
  auto bits = [&](std::size_t i) -> const Bits& { return cache_.at(n.operands[i]); };
  const unsigned w = n.width;
  // Output polarity of this node's top gates; interior word-level gates
  // stay both-direction. Always kBoth for width > 1 by construction.
  const std::uint8_t pol = node_polarity(t);

  switch (n.op) {
    case Op::Const: {
      Bits out(w);
      for (unsigned i = 0; i < w; ++i) out[i] = const_lit(n.value.bit(i));
      return out;
    }
    case Op::Var: {
      Bits out(w);
      for (unsigned i = 0; i < w; ++i) out[i] = fresh();
      blasted_vars_.push_back(t);
      return out;
    }
    case Op::Not: {
      Bits out(w);
      for (unsigned i = 0; i < w; ++i) out[i] = ~bits(0)[i];
      return out;
    }
    case Op::And:
    case Op::Or:
    case Op::Xor: {
      Bits out(w);
      // 1-bit xor is part of the Boolean skeleton too: both its clause
      // directions halve under a single-polarity requirement (operands
      // were propagated kBoth).
      for (unsigned i = 0; i < w; ++i) {
        const Lit a = bits(0)[i], b = bits(1)[i];
        out[i] = n.op == Op::And ? gate_and(a, b, pol)
                 : n.op == Op::Or ? gate_or(a, b, pol)
                                  : gate_xor(a, b, pol);
      }
      return out;
    }
    case Op::Neg: return negate(bits(0));
    case Op::Add: return encode_add(bits(0), bits(1), const_lit(false));
    case Op::Sub: {
      Bits nb(w);
      for (unsigned i = 0; i < w; ++i) nb[i] = ~bits(1)[i];
      return encode_add(bits(0), nb, const_lit(true));
    }
    case Op::Mul: return encode_mul(bits(0), bits(1));
    case Op::Udiv:
    case Op::Urem: {
      Bits quot, rem;
      encode_udivrem(bits(0), bits(1), quot, rem);
      // SMT-LIB/RISC-V: x udiv 0 = all-ones, x urem 0 = x.
      Bits zero(w, const_lit(false));
      const Lit bz = encode_eq(bits(1), zero);
      if (n.op == Op::Udiv) {
        Bits ones(w, const_lit(true));
        return encode_mux_word(bz, ones, quot);
      }
      return encode_mux_word(bz, bits(0), rem);
    }
    case Op::Sdiv:
    case Op::Srem: {
      // Signed via magnitudes; RISC-V corner cases (div-by-zero, INT_MIN/-1)
      // fall out of the construction plus an explicit zero-divisor mux,
      // matching BitVec::sdiv/srem exactly.
      const Bits &a = bits(0), &b = bits(1);
      const Lit sa = a[w - 1], sb = b[w - 1];
      const Bits abs_a = encode_mux_word(sa, negate(a), a);
      const Bits abs_b = encode_mux_word(sb, negate(b), b);
      Bits quot, rem;
      encode_udivrem(abs_a, abs_b, quot, rem);
      Bits zero(w, const_lit(false));
      const Lit bz = encode_eq(b, zero);
      if (n.op == Op::Sdiv) {
        const Lit neg_out = gate_xor(sa, sb);
        Bits signed_q = encode_mux_word(neg_out, negate(quot), quot);
        Bits ones(w, const_lit(true));
        return encode_mux_word(bz, ones, signed_q);
      }
      Bits signed_r = encode_mux_word(sa, negate(rem), rem);
      return encode_mux_word(bz, a, signed_r);
    }
    case Op::Shl:
    case Op::Lshr:
    case Op::Ashr: return encode_shift(bits(0), bits(1), n.op);
    case Op::Ult: return {encode_ult(bits(0), bits(1), pol)};
    case Op::Ule: return {~encode_ult(bits(1), bits(0), flip(pol))};
    case Op::Slt: return {encode_slt(bits(0), bits(1), pol)};
    case Op::Sle: return {~encode_slt(bits(1), bits(0), flip(pol))};
    case Op::Eq: return {encode_eq(bits(0), bits(1), pol)};
    case Op::Ne: return {~encode_eq(bits(0), bits(1), flip(pol))};
    case Op::Ite:
      if (w == 1) return {gate_mux(bits(0)[0], bits(1)[0], bits(2)[0], pol)};
      return encode_mux_word(bits(0)[0], bits(1), bits(2));
    case Op::Concat: {
      Bits out;
      out.reserve(w);
      const Bits &high = bits(0), &low = bits(1);
      out.insert(out.end(), low.begin(), low.end());
      out.insert(out.end(), high.begin(), high.end());
      return out;
    }
    case Op::Extract: {
      Bits out(w);
      for (unsigned i = 0; i < w; ++i) out[i] = bits(0)[n.aux1 + i];
      return out;
    }
    case Op::ZExt: {
      Bits out = bits(0);
      out.resize(w, const_lit(false));
      return out;
    }
    case Op::SExt: {
      Bits out = bits(0);
      out.resize(w, out.back());
      return out;
    }
  }
  assert(false && "unreachable");
  return {};
}

}  // namespace sepe::smt
