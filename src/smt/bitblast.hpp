// bitblast.hpp — polarity-aware Tseitin bit-blasting of bit-vector terms
// to CNF.
//
// Lowers the term DAG onto the CDCL SAT core (src/sat). Each term maps to
// one SAT literal per bit; the mapping is cached per node, so shared
// subterms are encoded once. Word-level operators use standard circuits:
// ripple-carry adders, shift-add multipliers, restoring dividers, barrel
// shifters with SMT-LIB saturation, borrow-chain comparators.
//
// Gate clauses can be emitted per *polarity* (Plaisted–Greenbaum): a gate
// whose output is only ever used positively gets only the clauses forcing
// "output true => function true", halving (or better) the CNF of the
// Boolean skeleton — the OR-of-bads cones and the per-register equality
// comparators that dominate QED models. Polarity requirements accumulate:
// when a cached term is later needed at the other polarity, the missing
// clause direction is added incrementally (the output literals never
// change, so the upgrade is sound and cheap). Word-level circuit
// internals are always encoded at both polarities — only the 1-bit
// Boolean structure and the comparator output chains are polarity-split.
//
// PG is OFF by default: on the QED campaign workloads the smaller CNF
// costs more CDCL conflicts than it saves (the dropped clause directions
// weaken unit propagation through the deep UNSAT arithmetic cones —
// measured ~7% more total conflicts than full Tseitin under the tuned
// solver config; see README "Performance"). It stays available for
// propagation-light workloads and is pinned against full Tseitin by the
// equivalence tests.
//
// Caveat for callers: under single-polarity encoding a gate literal's
// model value only *implies* the gate function in the encoded direction.
// Model read-back must therefore evaluate terms over the model values of
// the input variables (see SmtSolver::value) instead of trusting interior
// gate literals.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "sat/solver.hpp"
#include "smt/cone_cache.hpp"
#include "smt/term.hpp"

namespace sepe::smt {

/// Encodes terms into a sat::Backend. Owned by SmtSolver; exposed for the
/// micro benchmarks, which measure circuit sizes directly.
class BitBlaster {
 public:
  /// Polarity requirement masks.
  static constexpr std::uint8_t kPos = 1;   // literal is asserted/assumed true
  static constexpr std::uint8_t kNeg = 2;   // literal is asserted/assumed false
  static constexpr std::uint8_t kBoth = 3;  // both directions needed

  /// `plaisted_greenbaum` = true opts into polarity-split gate clauses;
  /// the default is full Tseitin (both polarities for every gate), which
  /// measures faster on the campaign workloads. `cone_cache`, when
  /// non-null, shares bit-blasted cones with every other blaster of the
  /// campaign (see cone_cache.hpp); replay is exact, so the cache never
  /// changes the clause stream the solver sees.
  BitBlaster(const TermManager& mgr, sat::Backend& solver,
             bool plaisted_greenbaum = false,
             std::shared_ptr<ConeCache> cone_cache = nullptr);

  /// Bits of `t`, least-significant first. Encodes on first use; repeated
  /// calls may add clauses when `polarity` widens an earlier requirement,
  /// but always return the same literals.
  const std::vector<sat::Lit>& blast(TermRef t, std::uint8_t polarity = kBoth);

  /// Single literal for a 1-bit term.
  sat::Lit blast_bit(TermRef t, std::uint8_t polarity = kBoth);

  /// Record a top-level unit assertion of `l` in the state digest. Every
  /// clause the solver carries must be digest-visible, or two stacks with
  /// equal digests could differ in their root units — which would break
  /// the clause-sharing soundness argument (sat/exchange.hpp). SmtSolver
  /// calls this right after asserting the blasted literal.
  void note_assert(sat::Lit l);

  /// Literal fixed to true (for constants).
  sat::Lit true_lit() const { return true_lit_; }

  /// Var terms encoded so far, in encoding order — the model support for
  /// evaluation-based read-back.
  const std::vector<TermRef>& blasted_vars() const { return blasted_vars_; }

  /// Per-blaster cone-cache traffic (zero when no cache is attached).
  struct ConeStats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t clauses_replayed = 0;
  };
  const ConeStats& cone_stats() const { return cone_stats_; }

 private:
  using Bits = std::vector<sat::Lit>;

  static std::uint8_t flip(std::uint8_t pol) {
    return static_cast<std::uint8_t>(((pol & kPos) ? kNeg : 0) |
                                     ((pol & kNeg) ? kPos : 0));
  }

  sat::Lit fresh() {
    const sat::Lit l(solver_.new_var(), false);
    if (recording_) {
      recording_->stream.push_back(-1);
      ++recording_->num_vars;
    }
    return l;
  }
  sat::Lit const_lit(bool b) const { return b ? true_lit_ : ~true_lit_; }

  // Clause emission wrappers: every gate clause goes through these so an
  // active tape recording captures the exact solver API call stream.
  void emit(sat::Lit a, sat::Lit b) {
    solver_.add_clause(a, b);
    if (recording_) {
      recording_->stream.push_back(2);
      recording_->stream.push_back(a.code());
      recording_->stream.push_back(b.code());
      ++recording_->num_clauses;
    }
  }
  void emit(sat::Lit a, sat::Lit b, sat::Lit c) {
    solver_.add_clause(a, b, c);
    if (recording_) {
      recording_->stream.push_back(3);
      recording_->stream.push_back(a.code());
      recording_->stream.push_back(b.code());
      recording_->stream.push_back(c.code());
      ++recording_->num_clauses;
    }
  }

  /// Fold the next top-level blast call into the running state digest and
  /// return the resulting value — the cone-cache key of this call.
  TermDigest advance_state(TermRef root, std::uint8_t polarity);
  /// Validate-then-apply `tape` for blast(t, polarity). Returns false
  /// (touching nothing) when digest validation refuses the tape.
  bool replay_tape(TermRef t, std::uint8_t polarity, const ConeTape& tape);
  /// blast() body: encode (or replay) `t` under the already-advanced
  /// digest `key`. Split out so blast() can publish the new share epoch
  /// only *after* the cone's clauses exist in the solver.
  const Bits& blast_under_key(TermRef t, std::uint8_t polarity, const TermDigest& key);
  /// Push the current state digest to the backend as its share epoch.
  void publish_epoch();

  struct GateKey;
  /// Gate-cache lookup shared by every gate encoder: returns the (cached
  /// or fresh) output literal and sets `missing` to the polarity
  /// directions whose clauses the caller still has to emit (recorded as
  /// emitted here, so re-requests are no-ops).
  sat::Lit gate_output(const GateKey& key, std::uint8_t pol, std::uint8_t& missing);

  // Gate encoders; return the output literal, adding the clauses of the
  // requested polarity directions that have not been emitted yet.
  sat::Lit gate_and(sat::Lit a, sat::Lit b, std::uint8_t pol = kBoth);
  sat::Lit gate_or(sat::Lit a, sat::Lit b, std::uint8_t pol = kBoth);
  sat::Lit gate_xor(sat::Lit a, sat::Lit b, std::uint8_t pol = kBoth);
  // sel ? t : e
  sat::Lit gate_mux(sat::Lit sel, sat::Lit t, sat::Lit e, std::uint8_t pol = kBoth);
  // Full adder: returns sum, sets carry_out.
  sat::Lit gate_full_add(sat::Lit a, sat::Lit b, sat::Lit cin, sat::Lit& cout);

  /// Polarity requirement of `t` (kBoth when PG is disabled or untracked).
  std::uint8_t node_polarity(TermRef t) const;
  /// Propagate a polarity requirement over the cone of `t`; cached terms
  /// whose requirement grew are appended to `replay`.
  void propagate_polarity(TermRef t, std::uint8_t pol, std::vector<TermRef>& replay);

  Bits encode(TermRef t);
  Bits encode_add(const Bits& a, const Bits& b, sat::Lit carry_in);
  Bits encode_mul(const Bits& a, const Bits& b);
  void encode_udivrem(const Bits& a, const Bits& b, Bits& quot, Bits& rem);
  Bits encode_shift(const Bits& a, const Bits& amount, Op op);
  sat::Lit encode_ult(const Bits& a, const Bits& b, std::uint8_t pol = kBoth);
  sat::Lit encode_slt(const Bits& a, const Bits& b, std::uint8_t pol = kBoth);
  sat::Lit encode_eq(const Bits& a, const Bits& b, std::uint8_t pol = kBoth);
  Bits encode_mux_word(sat::Lit sel, const Bits& t, const Bits& e);
  Bits negate(const Bits& a);  // two's complement

  const TermManager& mgr_;
  sat::Backend& solver_;
  const bool pg_;
  sat::Lit true_lit_;
  std::unordered_map<TermRef, Bits> cache_;
  std::vector<TermRef> blasted_vars_;
  /// Polarity directions requested per term so far (PG mode only).
  std::unordered_map<TermRef, std::uint8_t> term_pol_;

  // Structural gate cache: (op, a, b) -> output + emitted polarities.
  // Keeps shared subcircuits (mux trees over the register file) from
  // being re-encoded, and records which clause directions exist so a
  // later wider requirement emits only the missing ones.
  struct GateKey {
    int op;
    int a, b, c;
    bool operator==(const GateKey& o) const {
      return op == o.op && a == o.a && b == o.b && c == o.c;
    }
  };
  struct GateKeyHash {
    std::size_t operator()(const GateKey& k) const {
      std::size_t h = k.op;
      h = h * 0x9e3779b97f4a7c15ULL + k.a;
      h = h * 0x9e3779b97f4a7c15ULL + k.b;
      h = h * 0x9e3779b97f4a7c15ULL + k.c;
      return h;
    }
  };
  struct GateEntry {
    sat::Lit out;
    std::uint8_t emitted;
  };
  std::unordered_map<GateKey, GateEntry, GateKeyHash> gate_cache_;

  // Campaign-wide cone sharing (see cone_cache.hpp). `state_` digests the
  // top-level blast-call history; `recording_` is non-null while the
  // current call is being taped for the shared store.
  std::shared_ptr<ConeCache> cone_cache_;
  TermDigest state_;
  ConeTape* recording_ = nullptr;
  std::shared_ptr<ConeTape> rec_tape_;
  ConeStats cone_stats_;
};

}  // namespace sepe::smt
