// bitblast.hpp — Tseitin bit-blasting of bit-vector terms to CNF.
//
// Lowers the term DAG onto the CDCL SAT core (src/sat). Each term maps to
// one SAT literal per bit; the mapping is cached per node, so shared
// subterms are encoded once. Word-level operators use standard circuits:
// ripple-carry adders, shift-add multipliers, restoring dividers, barrel
// shifters with SMT-LIB saturation, borrow-chain comparators.
#pragma once

#include <unordered_map>
#include <vector>

#include "sat/solver.hpp"
#include "smt/term.hpp"

namespace sepe::smt {

/// Encodes terms into a sat::Solver. Owned by SmtSolver; exposed for the
/// micro benchmarks, which measure circuit sizes directly.
class BitBlaster {
 public:
  BitBlaster(const TermManager& mgr, sat::Solver& solver);

  /// Bits of `t`, least-significant first. Encodes on first use.
  const std::vector<sat::Lit>& blast(TermRef t);

  /// Single literal for a 1-bit term.
  sat::Lit blast_bit(TermRef t);

  /// Literal fixed to true (for constants).
  sat::Lit true_lit() const { return true_lit_; }

 private:
  using Bits = std::vector<sat::Lit>;

  sat::Lit fresh() { return sat::Lit(solver_.new_var(), false); }
  sat::Lit const_lit(bool b) const { return b ? true_lit_ : ~true_lit_; }

  // Gate encoders; return the output literal, adding Tseitin clauses.
  sat::Lit gate_and(sat::Lit a, sat::Lit b);
  sat::Lit gate_or(sat::Lit a, sat::Lit b);
  sat::Lit gate_xor(sat::Lit a, sat::Lit b);
  sat::Lit gate_mux(sat::Lit sel, sat::Lit t, sat::Lit e);  // sel ? t : e
  // Full adder: returns sum, sets carry_out.
  sat::Lit gate_full_add(sat::Lit a, sat::Lit b, sat::Lit cin, sat::Lit& cout);

  Bits encode(TermRef t);
  Bits encode_add(const Bits& a, const Bits& b, sat::Lit carry_in);
  Bits encode_mul(const Bits& a, const Bits& b);
  void encode_udivrem(const Bits& a, const Bits& b, Bits& quot, Bits& rem);
  Bits encode_shift(const Bits& a, const Bits& amount, Op op);
  sat::Lit encode_ult(const Bits& a, const Bits& b);
  sat::Lit encode_slt(const Bits& a, const Bits& b);
  sat::Lit encode_eq(const Bits& a, const Bits& b);
  Bits encode_mux_word(sat::Lit sel, const Bits& t, const Bits& e);
  Bits negate(const Bits& a);  // two's complement

  const TermManager& mgr_;
  sat::Solver& solver_;
  sat::Lit true_lit_;
  std::unordered_map<TermRef, Bits> cache_;

  // Structural gate cache: (op, a, b) -> output. Keeps shared subcircuits
  // (mux trees over the register file) from being re-encoded.
  struct GateKey {
    int op;
    int a, b, c;
    bool operator==(const GateKey& o) const {
      return op == o.op && a == o.a && b == o.b && c == o.c;
    }
  };
  struct GateKeyHash {
    std::size_t operator()(const GateKey& k) const {
      std::size_t h = k.op;
      h = h * 0x9e3779b97f4a7c15ULL + k.a;
      h = h * 0x9e3779b97f4a7c15ULL + k.b;
      h = h * 0x9e3779b97f4a7c15ULL + k.c;
      return h;
    }
  };
  std::unordered_map<GateKey, sat::Lit, GateKeyHash> gate_cache_;
};

}  // namespace sepe::smt
