#include "smt/term.hpp"

#include <cassert>
#include <functional>

namespace sepe::smt {

const char* op_name(Op op) {
  switch (op) {
    case Op::Const: return "const";
    case Op::Var: return "var";
    case Op::Not: return "bvnot";
    case Op::And: return "bvand";
    case Op::Or: return "bvor";
    case Op::Xor: return "bvxor";
    case Op::Neg: return "bvneg";
    case Op::Add: return "bvadd";
    case Op::Sub: return "bvsub";
    case Op::Mul: return "bvmul";
    case Op::Udiv: return "bvudiv";
    case Op::Urem: return "bvurem";
    case Op::Sdiv: return "bvsdiv";
    case Op::Srem: return "bvsrem";
    case Op::Shl: return "bvshl";
    case Op::Lshr: return "bvlshr";
    case Op::Ashr: return "bvashr";
    case Op::Ult: return "bvult";
    case Op::Ule: return "bvule";
    case Op::Slt: return "bvslt";
    case Op::Sle: return "bvsle";
    case Op::Eq: return "=";
    case Op::Ne: return "distinct";
    case Op::Ite: return "ite";
    case Op::Concat: return "concat";
    case Op::Extract: return "extract";
    case Op::ZExt: return "zero_extend";
    case Op::SExt: return "sign_extend";
  }
  return "?";
}

TermManager::TermManager() = default;

namespace {

// splitmix64 finalizer — the diffusion step between digest fields.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

void TermManager::stamp_digest() {
  const TermNode& n = nodes_.back();
  // Two independently-seeded 64-bit lanes; the second lane folds each
  // field in through a different multiplier, so a single-lane collision
  // does not collide the 128-bit pair.
  std::uint64_t lo = 0x5345504544494745ULL;  // "SEPEDIGE"
  std::uint64_t hi = 0x636f6e652d646967ULL;  // "cone-dig"
  auto feed = [&](std::uint64_t v) {
    lo = mix64(lo ^ v);
    hi = mix64(hi + (v * 0xff51afd7ed558ccdULL + 0x2545f4914f6cdd1dULL));
  };
  feed(static_cast<std::uint64_t>(n.op));
  feed(n.width);
  feed(n.operands.size());
  for (TermRef o : n.operands) {
    feed(digests_[o].lo);
    feed(digests_[o].hi);
  }
  feed(n.aux0);
  feed(n.aux1);
  if (n.op == Op::Const) feed(n.value.uval());
  if (n.op == Op::Var) feed(fnv1a64(n.name));
  digests_.push_back(TermDigest{lo, hi});
}

TermRef TermManager::intern(Key key, TermNode node) {
  auto it = table_.find(key);
  if (it != table_.end()) return it->second;
  const TermRef ref = static_cast<TermRef>(nodes_.size());
  nodes_.push_back(std::move(node));
  stamp_digest();
  table_.emplace(std::move(key), ref);
  return ref;
}

TermRef TermManager::mk_const(const BitVec& v) {
  Key key{Op::Const, v.width(), {}, v.uval(), 0, 0};
  TermNode node{Op::Const, v.width(), {}, v, 0, 0, {}};
  return intern(std::move(key), std::move(node));
}

TermRef TermManager::mk_var(const std::string& name, unsigned width) {
  auto it = vars_.find(name);
  if (it != vars_.end()) {
    assert(nodes_[it->second].width == width && "variable re-declared at new width");
    return it->second;
  }
  const TermRef ref = static_cast<TermRef>(nodes_.size());
  nodes_.push_back(TermNode{Op::Var, width, {}, BitVec(), 0, 0, name});
  stamp_digest();
  vars_.emplace(name, ref);
  return ref;
}

TermRef TermManager::mk_binop(Op op, TermRef a, TermRef b, unsigned result_width) {
  assert(nodes_[a].width == nodes_[b].width && "operand width mismatch");
  // Constant folding.
  if (is_const(a) && is_const(b)) {
    const BitVec &x = const_val(a), &y = const_val(b);
    switch (op) {
      case Op::And: return mk_const(x & y);
      case Op::Or: return mk_const(x | y);
      case Op::Xor: return mk_const(x ^ y);
      case Op::Add: return mk_const(x + y);
      case Op::Sub: return mk_const(x - y);
      case Op::Mul: return mk_const(x * y);
      case Op::Udiv: return mk_const(x.udiv(y));
      case Op::Urem: return mk_const(x.urem(y));
      case Op::Sdiv: return mk_const(x.sdiv(y));
      case Op::Srem: return mk_const(x.srem(y));
      case Op::Shl: return mk_const(x.shl(y));
      case Op::Lshr: return mk_const(x.lshr(y));
      case Op::Ashr: return mk_const(x.ashr(y));
      case Op::Ult: return mk_const(x.ult(y));
      case Op::Ule: return mk_const(x.ule(y));
      case Op::Slt: return mk_const(x.slt(y));
      case Op::Sle: return mk_const(x.sle(y));
      case Op::Eq: return mk_const(x.eq(y));
      case Op::Ne: return mk_const(x.ne(y));
      default: break;
    }
  }
  // Light algebraic simplification that keeps blasted circuits small.
  if (op == Op::Eq && a == b) return mk_true();
  if (op == Op::Ne && a == b) return mk_false();
  if ((op == Op::Xor || op == Op::Sub) && a == b)
    return mk_const(BitVec::zeros(nodes_[a].width));
  if (op == Op::And && a == b) return a;
  if (op == Op::Or && a == b) return a;
  // Complementary operands (x op ~x) collapse to a constant.
  const auto complementary = [&] {
    return (nodes_[a].op == Op::Not && nodes_[a].operands[0] == b) ||
           (nodes_[b].op == Op::Not && nodes_[b].operands[0] == a);
  };
  if ((op == Op::And || op == Op::Or || op == Op::Xor || op == Op::Eq ||
       op == Op::Ne) &&
      complementary()) {
    const unsigned w = nodes_[a].width;
    switch (op) {
      case Op::And: return mk_const(BitVec::zeros(w));
      case Op::Or:
      case Op::Xor: return mk_const(BitVec::ones(w));
      // Every bit of ~x differs from x, so x = ~x is false at any width.
      case Op::Eq: return mk_false();
      case Op::Ne: return mk_true();
      default: break;
    }
  }
  // Commutative ops: canonical operand order improves sharing.
  if (op == Op::And || op == Op::Or || op == Op::Xor || op == Op::Add || op == Op::Mul ||
      op == Op::Eq || op == Op::Ne) {
    if (a > b) std::swap(a, b);
  }
  // Identity, absorbing and constant-collapsing elements.
  if (is_const(a)) {
    const BitVec& x = const_val(a);
    if (op == Op::Add && x.is_zero()) return b;
    if (op == Op::Xor && x.is_zero()) return b;
    if (op == Op::Or && x.is_zero()) return b;
    if (op == Op::Or && x == BitVec::ones(x.width())) return a;
    if (op == Op::And && x == BitVec::ones(x.width())) return b;
    if (op == Op::And && x.is_zero()) return a;
    if (op == Op::Xor && x == BitVec::ones(x.width())) return mk_not(b);
    if (op == Op::Mul && x == BitVec(x.width(), 1)) return b;
    if (op == Op::Mul && x.is_zero()) return a;
    if (op == Op::And && x.width() == 1 && x.is_true()) return b;
    // Boolean equality against a constant is the operand or its negation.
    if (x.width() == 1 && (op == Op::Eq || op == Op::Ne)) {
      const bool same = (op == Op::Eq) == x.is_true();
      return same ? b : mk_not(b);
    }
  }
  if (is_const(b)) {
    const BitVec& y = const_val(b);
    if ((op == Op::Add || op == Op::Sub || op == Op::Xor || op == Op::Or ||
         op == Op::Shl || op == Op::Lshr || op == Op::Ashr) &&
        y.is_zero())
      return a;
    if (op == Op::Or && y == BitVec::ones(y.width())) return b;
    if (op == Op::And && y == BitVec::ones(y.width())) return a;
    if (op == Op::And && y.is_zero()) return b;
    if (op == Op::Xor && y == BitVec::ones(y.width())) return mk_not(a);
    if (op == Op::Mul && y == BitVec(y.width(), 1)) return a;
    if (op == Op::Mul && y.is_zero()) return b;
    if (y.width() == 1 && (op == Op::Eq || op == Op::Ne)) {
      const bool same = (op == Op::Eq) == y.is_true();
      return same ? a : mk_not(a);
    }
  }
  Key key{op, result_width, {a, b}, 0, 0, 0};
  TermNode node{op, result_width, {a, b}, BitVec(), 0, 0, {}};
  return intern(std::move(key), std::move(node));
}

TermRef TermManager::mk_not(TermRef a) {
  if (is_const(a)) return mk_const(~const_val(a));
  if (nodes_[a].op == Op::Not) return nodes_[a].operands[0];  // double negation
  Key key{Op::Not, nodes_[a].width, {a}, 0, 0, 0};
  TermNode node{Op::Not, nodes_[a].width, {a}, BitVec(), 0, 0, {}};
  return intern(std::move(key), std::move(node));
}

TermRef TermManager::mk_neg(TermRef a) {
  if (is_const(a)) return mk_const(-const_val(a));
  Key key{Op::Neg, nodes_[a].width, {a}, 0, 0, 0};
  TermNode node{Op::Neg, nodes_[a].width, {a}, BitVec(), 0, 0, {}};
  return intern(std::move(key), std::move(node));
}

TermRef TermManager::mk_and(TermRef a, TermRef b) {
  return mk_binop(Op::And, a, b, width(a));
}
TermRef TermManager::mk_or(TermRef a, TermRef b) {
  return mk_binop(Op::Or, a, b, width(a));
}
TermRef TermManager::mk_xor(TermRef a, TermRef b) {
  return mk_binop(Op::Xor, a, b, width(a));
}
TermRef TermManager::mk_add(TermRef a, TermRef b) {
  return mk_binop(Op::Add, a, b, width(a));
}
TermRef TermManager::mk_sub(TermRef a, TermRef b) {
  return mk_binop(Op::Sub, a, b, width(a));
}
TermRef TermManager::mk_mul(TermRef a, TermRef b) {
  return mk_binop(Op::Mul, a, b, width(a));
}
TermRef TermManager::mk_udiv(TermRef a, TermRef b) {
  return mk_binop(Op::Udiv, a, b, width(a));
}
TermRef TermManager::mk_urem(TermRef a, TermRef b) {
  return mk_binop(Op::Urem, a, b, width(a));
}
TermRef TermManager::mk_sdiv(TermRef a, TermRef b) {
  return mk_binop(Op::Sdiv, a, b, width(a));
}
TermRef TermManager::mk_srem(TermRef a, TermRef b) {
  return mk_binop(Op::Srem, a, b, width(a));
}
TermRef TermManager::mk_shl(TermRef a, TermRef b) {
  return mk_binop(Op::Shl, a, b, width(a));
}
TermRef TermManager::mk_lshr(TermRef a, TermRef b) {
  return mk_binop(Op::Lshr, a, b, width(a));
}
TermRef TermManager::mk_ashr(TermRef a, TermRef b) {
  return mk_binop(Op::Ashr, a, b, width(a));
}
TermRef TermManager::mk_ult(TermRef a, TermRef b) { return mk_binop(Op::Ult, a, b, 1); }
TermRef TermManager::mk_ule(TermRef a, TermRef b) { return mk_binop(Op::Ule, a, b, 1); }
TermRef TermManager::mk_slt(TermRef a, TermRef b) { return mk_binop(Op::Slt, a, b, 1); }
TermRef TermManager::mk_sle(TermRef a, TermRef b) { return mk_binop(Op::Sle, a, b, 1); }
TermRef TermManager::mk_eq(TermRef a, TermRef b) { return mk_binop(Op::Eq, a, b, 1); }
TermRef TermManager::mk_ne(TermRef a, TermRef b) { return mk_binop(Op::Ne, a, b, 1); }

TermRef TermManager::mk_ite(TermRef cond, TermRef then_t, TermRef else_t) {
  assert(nodes_[cond].width == 1);
  assert(nodes_[then_t].width == nodes_[else_t].width);
  if (is_const(cond)) return const_val(cond).is_true() ? then_t : else_t;
  if (then_t == else_t) return then_t;
  // ite(~c, t, e) = ite(c, e, t): canonicalizing on the positive
  // condition improves sharing and drops the Not cone.
  if (nodes_[cond].op == Op::Not)
    return mk_ite(nodes_[cond].operands[0], else_t, then_t);
  // Boolean ite with constant branches is the condition itself (or its
  // negation): ite(c, 1, 0) = c, ite(c, 0, 1) = ~c.
  if (nodes_[then_t].width == 1 && is_const(then_t) && is_const(else_t)) {
    const bool tv = const_val(then_t).is_true(), ev = const_val(else_t).is_true();
    if (tv && !ev) return cond;
    if (!tv && ev) return mk_not(cond);
  }
  Key key{Op::Ite, nodes_[then_t].width, {cond, then_t, else_t}, 0, 0, 0};
  TermNode node{Op::Ite, nodes_[then_t].width, {cond, then_t, else_t},
                BitVec(), 0, 0, {}};
  return intern(std::move(key), std::move(node));
}

TermRef TermManager::mk_concat(TermRef high, TermRef low) {
  const unsigned w = nodes_[high].width + nodes_[low].width;
  assert(w <= 64);
  if (is_const(high) && is_const(low))
    return mk_const(const_val(high).concat(const_val(low)));
  Key key{Op::Concat, w, {high, low}, 0, 0, 0};
  TermNode node{Op::Concat, w, {high, low}, BitVec(), 0, 0, {}};
  return intern(std::move(key), std::move(node));
}

TermRef TermManager::mk_extract(TermRef a, unsigned hi, unsigned lo) {
  assert(hi < nodes_[a].width && lo <= hi);
  if (is_const(a)) return mk_const(const_val(a).extract(hi, lo));
  if (lo == 0 && hi == nodes_[a].width - 1) return a;
  Key key{Op::Extract, hi - lo + 1, {a}, 0, hi, lo};
  TermNode node{Op::Extract, hi - lo + 1, {a}, BitVec(), hi, lo, {}};
  return intern(std::move(key), std::move(node));
}

TermRef TermManager::mk_zext(TermRef a, unsigned new_width) {
  assert(new_width >= nodes_[a].width);
  if (new_width == nodes_[a].width) return a;
  if (is_const(a)) return mk_const(const_val(a).zext(new_width));
  Key key{Op::ZExt, new_width, {a}, 0, new_width, 0};
  TermNode node{Op::ZExt, new_width, {a}, BitVec(), new_width, 0, {}};
  return intern(std::move(key), std::move(node));
}

TermRef TermManager::mk_sext(TermRef a, unsigned new_width) {
  assert(new_width >= nodes_[a].width);
  if (new_width == nodes_[a].width) return a;
  if (is_const(a)) return mk_const(const_val(a).sext(new_width));
  Key key{Op::SExt, new_width, {a}, 0, new_width, 0};
  TermNode node{Op::SExt, new_width, {a}, BitVec(), new_width, 0, {}};
  return intern(std::move(key), std::move(node));
}

TermRef TermManager::mk_and_many(const std::vector<TermRef>& ts) {
  TermRef acc = mk_true();
  for (TermRef t : ts) acc = mk_and(acc, t);
  return acc;
}

TermRef TermManager::mk_or_many(const std::vector<TermRef>& ts) {
  TermRef acc = mk_false();
  for (TermRef t : ts) acc = mk_or(acc, t);
  return acc;
}

std::string TermManager::to_string(TermRef t) const {
  const TermNode& n = nodes_[t];
  switch (n.op) {
    case Op::Const: return n.value.to_hex();
    case Op::Var: return n.name;
    case Op::Extract:
      return "((_ extract " + std::to_string(n.aux0) + " " +
             std::to_string(n.aux1) + ") " + to_string(n.operands[0]) + ")";
    case Op::ZExt:
    case Op::SExt:
      return std::string("((_ ") + op_name(n.op) + " " +
             std::to_string(n.aux0 - nodes_[n.operands[0]].width) + ") " +
             to_string(n.operands[0]) + ")";
    default: {
      std::string s = std::string("(") + op_name(n.op);
      for (TermRef o : n.operands) s += " " + to_string(o);
      return s + ")";
    }
  }
}

}  // namespace sepe::smt
