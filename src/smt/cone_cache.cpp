#include "smt/cone_cache.hpp"

namespace sepe::smt {

std::size_t ConeTape::byte_size() const {
  std::size_t n = sizeof(ConeTape);
  n += stream.size() * sizeof(int);
  n += gate_ops.size() * sizeof(GateOp);
  for (const Node& node : nodes)
    n += sizeof(Node) + node.bits.size() * sizeof(int);
  return n;
}

std::shared_ptr<const ConeTape> ConeCache::lookup(const TermDigest& key) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.lookups;
  auto it = map_.find(key);
  if (it == map_.end()) return nullptr;
  ++stats_.hits;
  return it->second;
}

void ConeCache::insert(const TermDigest& key,
                       std::shared_ptr<const ConeTape> tape) {
  const std::size_t cost = tape->byte_size();
  std::lock_guard<std::mutex> lock(mu_);
  if (map_.count(key) != 0) return;
  if (stats_.bytes + cost > max_bytes_) {
    ++stats_.store_rejects;
    return;
  }
  stats_.bytes += cost;
  ++stats_.stores;
  map_.emplace(key, std::move(tape));
}

void ConeCache::note_validation_failure() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.validation_failures;
}

ConeCache::Stats ConeCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace sepe::smt
