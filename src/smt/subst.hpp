// subst.hpp — capture-free substitution over term DAGs.
//
// Replaces Var terms by arbitrary terms of the same width. The BMC
// unroller uses it to instantiate a transition system's next-state
// functions at each time step.
#pragma once

#include <unordered_map>

#include "smt/term.hpp"

namespace sepe::smt {

using SubstMap = std::unordered_map<TermRef, TermRef>;

/// Rebuild `t` with every variable v mapped through `map` (identity for
/// unmapped variables). Memoized and iterative: safe for BMC-sized DAGs.
/// `cache` persists memoization across calls with the same map.
TermRef substitute(TermManager& mgr, TermRef t, const SubstMap& map,
                   SubstMap* cache = nullptr);

}  // namespace sepe::smt
