#include "smt/subst.hpp"

#include <cassert>
#include <vector>

namespace sepe::smt {

TermRef substitute(TermManager& mgr, TermRef t, const SubstMap& map, SubstMap* cache) {
  SubstMap local;
  SubstMap& memo = cache ? *cache : local;

  std::vector<TermRef> stack{t};
  while (!stack.empty()) {
    const TermRef cur = stack.back();
    if (memo.count(cur)) {
      stack.pop_back();
      continue;
    }
    const TermNode& n = mgr.node(cur);
    if (n.op == Op::Var) {
      const auto it = map.find(cur);
      memo.emplace(cur, it != map.end() ? it->second : cur);
      stack.pop_back();
      continue;
    }
    if (n.op == Op::Const) {
      memo.emplace(cur, cur);
      stack.pop_back();
      continue;
    }
    bool ready = true;
    for (TermRef o : n.operands) {
      if (!memo.count(o)) {
        stack.push_back(o);
        ready = false;
      }
    }
    if (!ready) continue;
    stack.pop_back();

    auto sub = [&](std::size_t i) { return memo.at(n.operands[i]); };
    TermRef r = cur;
    bool changed = false;
    for (TermRef o : n.operands)
      if (memo.at(o) != o) changed = true;
    if (changed) {
      switch (n.op) {
        case Op::Not: r = mgr.mk_not(sub(0)); break;
        case Op::And: r = mgr.mk_and(sub(0), sub(1)); break;
        case Op::Or: r = mgr.mk_or(sub(0), sub(1)); break;
        case Op::Xor: r = mgr.mk_xor(sub(0), sub(1)); break;
        case Op::Neg: r = mgr.mk_neg(sub(0)); break;
        case Op::Add: r = mgr.mk_add(sub(0), sub(1)); break;
        case Op::Sub: r = mgr.mk_sub(sub(0), sub(1)); break;
        case Op::Mul: r = mgr.mk_mul(sub(0), sub(1)); break;
        case Op::Udiv: r = mgr.mk_udiv(sub(0), sub(1)); break;
        case Op::Urem: r = mgr.mk_urem(sub(0), sub(1)); break;
        case Op::Sdiv: r = mgr.mk_sdiv(sub(0), sub(1)); break;
        case Op::Srem: r = mgr.mk_srem(sub(0), sub(1)); break;
        case Op::Shl: r = mgr.mk_shl(sub(0), sub(1)); break;
        case Op::Lshr: r = mgr.mk_lshr(sub(0), sub(1)); break;
        case Op::Ashr: r = mgr.mk_ashr(sub(0), sub(1)); break;
        case Op::Ult: r = mgr.mk_ult(sub(0), sub(1)); break;
        case Op::Ule: r = mgr.mk_ule(sub(0), sub(1)); break;
        case Op::Slt: r = mgr.mk_slt(sub(0), sub(1)); break;
        case Op::Sle: r = mgr.mk_sle(sub(0), sub(1)); break;
        case Op::Eq: r = mgr.mk_eq(sub(0), sub(1)); break;
        case Op::Ne: r = mgr.mk_ne(sub(0), sub(1)); break;
        case Op::Ite: r = mgr.mk_ite(sub(0), sub(1), sub(2)); break;
        case Op::Concat: r = mgr.mk_concat(sub(0), sub(1)); break;
        case Op::Extract: r = mgr.mk_extract(sub(0), n.aux0, n.aux1); break;
        case Op::ZExt: r = mgr.mk_zext(sub(0), n.aux0); break;
        case Op::SExt: r = mgr.mk_sext(sub(0), n.aux0); break;
        case Op::Const:
        case Op::Var: break;  // handled above
      }
    }
    memo.emplace(cur, r);
  }
  return memo.at(t);
}

}  // namespace sepe::smt
