// fault.hpp — deterministic, seeded fault injection + the process-global
// cooperative stop flag (the crash-only execution envelope).
//
// A *fault plan* is parsed once from the SEPE_FAULT environment variable
// (or installed by tests via configure()) and names injection points
// threaded through every layer that can fail in production: solver
// allocation, the DIMACS subprocess bridge, verdict-cache / checkpoint /
// report IO, and the dispatcher's worker fleet. Production code asks
// `fault::hit("point.name")` at each site; with no plan armed that is a
// single relaxed atomic load, so the instrumentation is free in real runs.
//
// Plan grammar (see docs/ROBUSTNESS.md for the full contract):
//
//   SEPE_FAULT="seed=42;point=dimacs.write:fail@3;point=cache.append:torn;
//               point=solver.alloc:oom@0.01;point=worker.job_done:kill@token:/tmp/t"
//
//   seed=N            seeds every probabilistic trigger (default 1)
//   point=NAME:ACTION[@TRIGGER]   may repeat; same NAME may appear more
//                     than once — the first entry whose trigger fires wins
//
//   ACTION   fail | torn | short | enospc   (data faults, honoured by the
//                                            call site that asked)
//            oom                            (allocation-ceiling trip)
//            kill | hang | stop             (process faults — see
//                                            execute_process_action())
//   TRIGGER  absent   fire on every hit
//            @N       fire exactly once, on the Nth hit (1-based, counted
//                     per plan entry)
//            @0.25    fire each hit with probability 0.25, drawn from a
//                     per-entry splitmix64 stream seeded by
//                     seed ^ fnv1a(NAME) — deterministic across runs
//            @token:PATH  fire once per *fleet*: the first process to
//                     claim PATH (atomic rename to PATH.claimed) arms the
//                     entry; everyone else finds the token spent. This is
//                     how dispatch tests kill/hang exactly one worker.
//
// Determinism: with a fixed plan, a fixed seed, and a fixed sequence of
// hit() calls, the set of firing sites is a pure function of the plan.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

namespace sepe::fault {

enum class Action : std::uint8_t {
  Fail,    // the operation reports failure (spawn error, failed write, ...)
  Torn,    // a write persists only a prefix of the payload
  Short,   // a read/write transfers fewer bytes than requested
  Enospc,  // a write fails as if the device were full
  Oom,     // an allocation ceiling trips (degrade to Unknown, never abort)
  Kill,    // the process raises SIGKILL
  Hang,    // the process stalls, interruptibly (polls the global stop flag)
  Stop,    // raise the process-global stop flag (crash-only drill)
};

/// Parse and arm a fault plan; an empty string disarms. Returns false
/// (and disarms) on a malformed plan, with a diagnostic in *error when
/// given. Thread-safe; tests call this directly, binaries go through
/// init_from_environment().
bool configure(const std::string& plan, std::string* error = nullptr);

/// Arm from $SEPE_FAULT plus the legacy one-release aliases
/// $SEPE_RUN_KILL_TOKEN / $SEPE_RUN_HANG_TOKEN (each maps to a
/// `worker.job_done:{kill,hang}@token:PATH` plan entry appended after the
/// SEPE_FAULT entries). Malformed plans disarm and report on stderr
/// rather than aborting: a bad fault plan must never take down a
/// production run. Returns false on a malformed plan.
bool init_from_environment();

/// True when any fault plan is armed (one relaxed atomic load).
bool armed();

/// Consult the plan at a named injection point. Returns the action to
/// simulate, or nullopt (the overwhelmingly common case). Data actions
/// (Fail/Torn/Short/Enospc/Oom) are honoured by the caller; process
/// actions (Kill/Hang/Stop) should be passed to execute_process_action().
std::optional<Action> hit(const char* point);

/// Carry out a process-level action: Kill raises SIGKILL; Hang naps in
/// ~50ms slices until the global stop flag rises (bounded at 10 minutes,
/// so a forgotten hang cannot outlive a CI timeout); Stop raises the
/// global stop flag. Data actions are a no-op here.
void execute_process_action(Action action);

/// The process-global cooperative stop flag. Raised by SIGTERM/SIGINT
/// handlers (request_global_stop is async-signal-safe) and by
/// Action::Stop; every CDCL loop observes it through
/// sat::Backend::stop_requested(), and campaign workers stop claiming
/// new jobs once it is up. Never lowered mid-process except by tests.
bool global_stop_requested();
void request_global_stop();
void clear_global_stop();  // tests only

}  // namespace sepe::fault
