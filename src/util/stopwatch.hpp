// stopwatch.hpp — wall-clock timing for the benchmark harnesses.
#pragma once

#include <chrono>

namespace sepe {

/// Monotonic wall-clock stopwatch; starts at construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sepe
