// parse.hpp — strict numeric parsing shared by the CLI and report I/O.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>

namespace sepe {

/// Strict base-10 unsigned parse: digits only, full consumption, no
/// sign/whitespace/exponent; nullopt on anything else (including
/// overflow). Never a silently-zero atoi result.
inline std::optional<std::uint64_t> parse_u64_strict(const std::string& s) {
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos)
    return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return std::nullopt;
  return value;
}

}  // namespace sepe
