// bitvec.hpp — fixed-width two's-complement bit-vector values.
//
// BitVec is the concrete value domain shared by the whole repository: the
// term evaluator (src/smt), the instruction-set simulator (src/sim), CEGIS
// counterexample replay (src/synth) and BMC witness printing (src/bmc) all
// compute with it. Widths from 1 to 64 bits are supported; values are kept
// canonical (bits above `width` are always zero).
#pragma once

#include <cassert>
#include <cstdint>
#include <string>

namespace sepe {

/// A fixed-width bit-vector value with two's-complement arithmetic.
///
/// All operators require both operands to have the same width (checked by
/// assertion) and produce a result of that width unless documented
/// otherwise. Shift amounts follow RISC-V semantics: only the low
/// log2(width) bits of the shift operand are used when `masked` variants
/// are called; the plain variants saturate (shift >= width yields 0 /
/// sign-fill) matching SMT-LIB bvshl/bvlshr/bvashr.
class BitVec {
 public:
  BitVec() : width_(1), bits_(0) {}

  BitVec(unsigned width, std::uint64_t value)
      : width_(width), bits_(value & mask(width)) {
    assert(width >= 1 && width <= 64);
  }

  /// All-zeros value of the given width.
  static BitVec zeros(unsigned width) { return BitVec(width, 0); }
  /// All-ones value of the given width.
  static BitVec ones(unsigned width) { return BitVec(width, ~0ULL); }
  /// 1-bit boolean.
  static BitVec boolean(bool b) { return BitVec(1, b ? 1 : 0); }

  unsigned width() const { return width_; }
  std::uint64_t uval() const { return bits_; }

  /// Signed interpretation (sign-extended to 64 bits).
  std::int64_t sval() const {
    if (width_ == 64) return static_cast<std::int64_t>(bits_);
    const std::uint64_t sign = 1ULL << (width_ - 1);
    return static_cast<std::int64_t>((bits_ ^ sign)) - static_cast<std::int64_t>(sign);
  }

  bool bit(unsigned i) const {
    assert(i < width_);
    return (bits_ >> i) & 1;
  }

  bool is_zero() const { return bits_ == 0; }
  bool is_true() const { return width_ == 1 && bits_ == 1; }
  bool msb() const { return bit(width_ - 1); }

  friend bool operator==(const BitVec& a, const BitVec& b) {
    return a.width_ == b.width_ && a.bits_ == b.bits_;
  }
  friend bool operator!=(const BitVec& a, const BitVec& b) { return !(a == b); }

  // --- bitwise ---
  BitVec operator~() const { return BitVec(width_, ~bits_); }
  BitVec operator&(const BitVec& o) const { return binop(o, bits_ & o.bits_); }
  BitVec operator|(const BitVec& o) const { return binop(o, bits_ | o.bits_); }
  BitVec operator^(const BitVec& o) const { return binop(o, bits_ ^ o.bits_); }

  // --- arithmetic ---
  BitVec operator+(const BitVec& o) const { return binop(o, bits_ + o.bits_); }
  BitVec operator-(const BitVec& o) const { return binop(o, bits_ - o.bits_); }
  BitVec operator-() const { return BitVec(width_, ~bits_ + 1); }
  BitVec operator*(const BitVec& o) const { return binop(o, bits_ * o.bits_); }

  /// High half of the (2*width)-bit signed product (RISC-V MULH).
  BitVec mulh_ss(const BitVec& o) const {
    assert(width_ == o.width_);
    const __int128 p = static_cast<__int128>(sval()) * static_cast<__int128>(o.sval());
    return BitVec(width_, static_cast<std::uint64_t>(p >> width_));
  }
  /// High half of the unsigned product (RISC-V MULHU).
  BitVec mulh_uu(const BitVec& o) const {
    assert(width_ == o.width_);
    const unsigned __int128 p =
        static_cast<unsigned __int128>(bits_) * static_cast<unsigned __int128>(o.bits_);
    return BitVec(width_, static_cast<std::uint64_t>(p >> width_));
  }
  /// High half of the signed*unsigned product (RISC-V MULHSU).
  BitVec mulh_su(const BitVec& o) const {
    assert(width_ == o.width_);
    const __int128 p = static_cast<__int128>(sval()) * static_cast<__int128>(o.bits_);
    return BitVec(width_, static_cast<std::uint64_t>(p >> width_));
  }

  /// Unsigned division; division by zero yields all-ones (RISC-V / SMT-LIB).
  BitVec udiv(const BitVec& o) const {
    assert(width_ == o.width_);
    if (o.bits_ == 0) return ones(width_);
    return BitVec(width_, bits_ / o.bits_);
  }
  /// Unsigned remainder; remainder by zero yields the dividend (RISC-V).
  BitVec urem(const BitVec& o) const {
    assert(width_ == o.width_);
    if (o.bits_ == 0) return *this;
    return BitVec(width_, bits_ % o.bits_);
  }
  /// Signed division per RISC-V: div-by-zero -> -1, overflow -> INT_MIN.
  BitVec sdiv(const BitVec& o) const {
    assert(width_ == o.width_);
    if (o.bits_ == 0) return ones(width_);
    const std::int64_t a = sval(), b = o.sval();
    if (a == min_signed() && b == -1)
      return BitVec(width_, static_cast<std::uint64_t>(a));
    return BitVec(width_, static_cast<std::uint64_t>(a / b));
  }
  /// Signed remainder per RISC-V: rem-by-zero -> dividend, overflow -> 0.
  BitVec srem(const BitVec& o) const {
    assert(width_ == o.width_);
    if (o.bits_ == 0) return *this;
    const std::int64_t a = sval(), b = o.sval();
    if (a == min_signed() && b == -1) return zeros(width_);
    return BitVec(width_, static_cast<std::uint64_t>(a % b));
  }

  // --- shifts (SMT-LIB semantics: oversized shifts saturate) ---
  BitVec shl(const BitVec& o) const {
    assert(width_ == o.width_);
    if (o.bits_ >= width_) return zeros(width_);
    return BitVec(width_, bits_ << o.bits_);
  }
  BitVec lshr(const BitVec& o) const {
    assert(width_ == o.width_);
    if (o.bits_ >= width_) return zeros(width_);
    return BitVec(width_, bits_ >> o.bits_);
  }
  BitVec ashr(const BitVec& o) const {
    assert(width_ == o.width_);
    const std::uint64_t amount = o.bits_ >= width_ ? width_ - 1 : o.bits_;
    return BitVec(width_, static_cast<std::uint64_t>(sval() >> amount));
  }
  /// Shift amount masked to log2(width) bits (RISC-V register shifts).
  BitVec shl_masked(const BitVec& o) const { return shl(masked_amount(o)); }
  BitVec lshr_masked(const BitVec& o) const { return lshr(masked_amount(o)); }
  BitVec ashr_masked(const BitVec& o) const { return ashr(masked_amount(o)); }

  // --- comparisons (produce 1-bit values) ---
  BitVec ult(const BitVec& o) const { return cmp(o, bits_ < o.bits_); }
  BitVec ule(const BitVec& o) const { return cmp(o, bits_ <= o.bits_); }
  BitVec slt(const BitVec& o) const { return cmp(o, sval() < o.sval()); }
  BitVec sle(const BitVec& o) const { return cmp(o, sval() <= o.sval()); }
  BitVec eq(const BitVec& o) const { return cmp(o, bits_ == o.bits_); }
  BitVec ne(const BitVec& o) const { return cmp(o, bits_ != o.bits_); }

  // --- structural ---
  /// Zero-extend to `new_width` (>= width).
  BitVec zext(unsigned new_width) const {
    assert(new_width >= width_ && new_width <= 64);
    return BitVec(new_width, bits_);
  }
  /// Sign-extend to `new_width` (>= width).
  BitVec sext(unsigned new_width) const {
    assert(new_width >= width_ && new_width <= 64);
    return BitVec(new_width, static_cast<std::uint64_t>(sval()));
  }
  /// Extract bits [hi:lo] inclusive.
  BitVec extract(unsigned hi, unsigned lo) const {
    assert(hi < width_ && lo <= hi);
    return BitVec(hi - lo + 1, bits_ >> lo);
  }
  /// Concatenation: `this` forms the high bits.
  BitVec concat(const BitVec& low) const {
    assert(width_ + low.width_ <= 64);
    return BitVec(width_ + low.width_, (bits_ << low.width_) | low.bits_);
  }

  /// Hex string, zero-padded to the width, e.g. "0x00ff" for 16 bits.
  std::string to_hex() const;
  /// Binary string, e.g. "0b0101".
  std::string to_bin() const;

  static std::uint64_t mask(unsigned width) {
    return width >= 64 ? ~0ULL : (1ULL << width) - 1;
  }

 private:
  BitVec binop([[maybe_unused]] const BitVec& o, std::uint64_t raw) const {
    assert(width_ == o.width_);
    return BitVec(width_, raw);
  }
  BitVec cmp([[maybe_unused]] const BitVec& o, bool r) const {
    assert(width_ == o.width_);
    return boolean(r);
  }
  BitVec masked_amount(const BitVec& o) const {
    unsigned log2 = 0;
    while ((1u << log2) < width_) ++log2;
    return BitVec(width_, o.bits_ & ((1ULL << log2) - 1));
  }
  std::int64_t min_signed() const { return -(std::int64_t(1) << (width_ - 1)); }

  unsigned width_;
  std::uint64_t bits_;
};

}  // namespace sepe
