// rng.hpp — deterministic pseudo-random number generation for workloads.
//
// All stochastic pieces of the repository (random test programs for the QED
// harness, CEGIS multiset shuffling, property-test input sweeps, benchmark
// workload generation) draw from this splitmix64 generator so that every
// run is reproducible from a seed.
#pragma once

#include <cstdint>

#include "util/bitvec.hpp"

namespace sepe {

/// splitmix64: tiny, fast, statistically solid for workload generation.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound).
  std::uint64_t below(std::uint64_t bound) { return bound == 0 ? 0 : next() % bound; }

  /// Random bit-vector of the given width.
  BitVec bitvec(unsigned width) { return BitVec(width, next()); }

  /// Biased bit-vector mixing corner values with uniform draws; corner
  /// cases (0, 1, all-ones, sign bit) trigger far more bugs than uniform
  /// random values, so workload generators prefer this.
  BitVec interesting_bitvec(unsigned width) {
    switch (below(8)) {
      case 0: return BitVec::zeros(width);
      case 1: return BitVec(width, 1);
      case 2: return BitVec::ones(width);
      case 3: return BitVec(width, 1ULL << (width - 1));            // INT_MIN
      case 4: return BitVec(width, BitVec::mask(width) >> 1);       // INT_MAX
      default: return bitvec(width);
    }
  }

  bool flip() { return next() & 1; }

 private:
  std::uint64_t state_;
};

}  // namespace sepe
