#include "util/fault.hpp"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>
#include <vector>

namespace sepe::fault {

namespace {

std::atomic<bool> g_armed{false};
std::atomic<bool> g_stop{false};

enum class Trigger : std::uint8_t { Always, Nth, Probability, Token };

struct PlanEntry {
  std::string point;
  Action action = Action::Fail;
  Trigger trigger = Trigger::Always;
  std::uint64_t nth = 0;         // Trigger::Nth (1-based)
  double probability = 0.0;      // Trigger::Probability
  std::string token_path;        // Trigger::Token
  // Mutable firing state, guarded by g_mutex.
  std::uint64_t hits = 0;
  std::uint64_t rng_state = 0;   // per-entry splitmix64 stream
  bool token_resolved = false;   // token claim attempted
  bool token_owned = false;      // ...and won by this process
};

struct Plan {
  std::uint64_t seed = 1;
  std::vector<PlanEntry> entries;
};

std::mutex g_mutex;
Plan g_plan;

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t splitmix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

bool parse_action(const std::string& name, Action* out) {
  if (name == "fail") *out = Action::Fail;
  else if (name == "torn") *out = Action::Torn;
  else if (name == "short") *out = Action::Short;
  else if (name == "enospc") *out = Action::Enospc;
  else if (name == "oom") *out = Action::Oom;
  else if (name == "kill") *out = Action::Kill;
  else if (name == "hang") *out = Action::Hang;
  else if (name == "stop") *out = Action::Stop;
  else return false;
  return true;
}

bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    if (v > (~0ULL - (c - '0')) / 10) return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

/// point=NAME:ACTION[@TRIGGER]
bool parse_point(const std::string& spec, PlanEntry* out, std::string* error) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos || colon == 0) {
    if (error) *error = "fault point '" + spec + "': expected NAME:ACTION";
    return false;
  }
  out->point = spec.substr(0, colon);
  std::string action_part = spec.substr(colon + 1);
  const std::size_t at = action_part.find('@');
  std::string trigger_part;
  if (at != std::string::npos) {
    trigger_part = action_part.substr(at + 1);
    action_part = action_part.substr(0, at);
  }
  if (!parse_action(action_part, &out->action)) {
    if (error) *error = "fault point '" + out->point + "': unknown action '" + action_part + "'";
    return false;
  }
  if (at == std::string::npos) {
    out->trigger = Trigger::Always;
    return true;
  }
  if (trigger_part.rfind("token:", 0) == 0) {
    out->trigger = Trigger::Token;
    out->token_path = trigger_part.substr(6);
    if (out->token_path.empty()) {
      if (error) *error = "fault point '" + out->point + "': empty token path";
      return false;
    }
    return true;
  }
  if (trigger_part.find('.') != std::string::npos) {
    char* end = nullptr;
    const double p = std::strtod(trigger_part.c_str(), &end);
    if (end == nullptr || *end != '\0' || !(p >= 0.0 && p <= 1.0)) {
      if (error)
        *error = "fault point '" + out->point + "': bad probability '" + trigger_part + "'";
      return false;
    }
    out->trigger = Trigger::Probability;
    out->probability = p;
    return true;
  }
  if (!parse_u64(trigger_part, &out->nth) || out->nth == 0) {
    if (error) *error = "fault point '" + out->point + "': bad trigger '" + trigger_part + "'";
    return false;
  }
  out->trigger = Trigger::Nth;
  return true;
}

bool parse_plan(const std::string& text, Plan* out, std::string* error) {
  *out = Plan{};
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t semi = text.find(';', pos);
    if (semi == std::string::npos) semi = text.size();
    const std::string field = text.substr(pos, semi - pos);
    pos = semi + 1;
    if (field.empty()) continue;
    if (field.rfind("seed=", 0) == 0) {
      if (!parse_u64(field.substr(5), &out->seed)) {
        if (error) *error = "fault plan: bad seed '" + field.substr(5) + "'";
        return false;
      }
      continue;
    }
    if (field.rfind("point=", 0) == 0) {
      PlanEntry entry;
      if (!parse_point(field.substr(6), &entry, error)) return false;
      out->entries.push_back(std::move(entry));
      continue;
    }
    if (error) *error = "fault plan: unknown field '" + field + "'";
    return false;
  }
  // Seed the per-entry probability streams: deterministic in (seed, name),
  // independent of entry order elsewhere in the plan.
  for (PlanEntry& e : out->entries) e.rng_state = out->seed ^ fnv1a(e.point);
  return true;
}

/// Claim-once across a process fleet: atomic rename PATH -> PATH.claimed.
/// Exactly one process (worker) in the fleet wins; everyone else finds
/// the token already spent and behaves normally.
bool claim_token(const std::string& path) {
  return std::rename(path.c_str(), (path + ".claimed").c_str()) == 0;
}

bool entry_fires(PlanEntry& e) {
  ++e.hits;
  switch (e.trigger) {
    case Trigger::Always:
      return true;
    case Trigger::Nth:
      return e.hits == e.nth;
    case Trigger::Probability: {
      const double draw =
          static_cast<double>(splitmix64(&e.rng_state) >> 11) * 0x1.0p-53;
      return draw < e.probability;
    }
    case Trigger::Token:
      if (!e.token_resolved) {
        e.token_resolved = true;
        e.token_owned = claim_token(e.token_path);
        return e.token_owned;
      }
      return false;  // one shot even for the owner
  }
  return false;
}

}  // namespace

bool configure(const std::string& plan, std::string* error) {
  Plan parsed;
  if (!parse_plan(plan, &parsed, error)) {
    std::lock_guard<std::mutex> lock(g_mutex);
    g_plan = Plan{};
    g_armed.store(false, std::memory_order_relaxed);
    return false;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  g_plan = std::move(parsed);
  g_armed.store(!g_plan.entries.empty(), std::memory_order_relaxed);
  return true;
}

bool init_from_environment() {
  std::string plan;
  if (const char* env = std::getenv("SEPE_FAULT")) plan = env;
  // One-release aliases for the pre-framework dispatch fault tokens.
  if (const char* kill_token = std::getenv("SEPE_RUN_KILL_TOKEN")) {
    if (!plan.empty()) plan += ';';
    plan += "point=worker.job_done:kill@token:";
    plan += kill_token;
  }
  if (const char* hang_token = std::getenv("SEPE_RUN_HANG_TOKEN")) {
    if (!plan.empty()) plan += ';';
    plan += "point=worker.job_done:hang@token:";
    plan += hang_token;
  }
  if (plan.empty()) return true;
  std::string error;
  if (!configure(plan, &error)) {
    std::fprintf(stderr, "[fault] ignoring malformed SEPE_FAULT: %s\n", error.c_str());
    return false;
  }
  return true;
}

bool armed() { return g_armed.load(std::memory_order_relaxed); }

std::optional<Action> hit(const char* point) {
  if (!g_armed.load(std::memory_order_relaxed)) return std::nullopt;
  std::lock_guard<std::mutex> lock(g_mutex);
  for (PlanEntry& e : g_plan.entries) {
    if (e.point != point) continue;
    if (entry_fires(e)) return e.action;
  }
  return std::nullopt;
}

void execute_process_action(Action action) {
  switch (action) {
    case Action::Kill:
      std::raise(SIGKILL);
      return;
    case Action::Hang: {
      // Interruptible stall: a hung worker must still die promptly to
      // SIGTERM (the handler raises the global stop flag we poll here)
      // and is bounded so a forgotten hang cannot outlive CI timeouts.
      constexpr int kMaxNaps = 12000;  // ~10 minutes at 50ms
      for (int i = 0; i < kMaxNaps && !global_stop_requested(); ++i) {
        timespec nap{0, 50 * 1000 * 1000};
        nanosleep(&nap, nullptr);
      }
      return;
    }
    case Action::Stop:
      request_global_stop();
      return;
    default:
      return;  // data actions are honoured at the call site
  }
}

bool global_stop_requested() { return g_stop.load(std::memory_order_relaxed); }

void request_global_stop() { g_stop.store(true, std::memory_order_relaxed); }

void clear_global_stop() { g_stop.store(false, std::memory_order_relaxed); }

}  // namespace sepe::fault
