// json.hpp — the one JSON string escaper.
//
// Shared by every report writer (CampaignReport::to_json, the
// campaign_perf bench) so free-form names and labels always escape
// identically and can never produce invalid JSON.
#pragma once

#include <cstdio>
#include <ostream>
#include <string>

namespace sepe {

inline void json_escape(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace sepe
