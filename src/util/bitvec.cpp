#include "util/bitvec.hpp"

namespace sepe {

std::string BitVec::to_hex() const {
  static const char* digits = "0123456789abcdef";
  const unsigned nibbles = (width_ + 3) / 4;
  std::string s = "0x";
  for (unsigned i = nibbles; i-- > 0;) s.push_back(digits[(bits_ >> (4 * i)) & 0xf]);
  return s;
}

std::string BitVec::to_bin() const {
  std::string s = "0b";
  for (unsigned i = width_; i-- > 0;) s.push_back(bit(i) ? '1' : '0');
  return s;
}

}  // namespace sepe
