#include "qed/qed_module.hpp"

#include <cassert>

#include "isa/semantics.hpp"

namespace sepe::qed {

using isa::Opcode;
using smt::TermManager;
using smt::TermRef;
using synth::SynthProgram;

const char* qed_mode_name(QedMode mode) {
  return mode == QedMode::EddiV ? "EDDI-V (SQED)" : "EDSEP-V (SEPE-SQED)";
}

RegisterSplit register_split(QedMode mode) {
  if (mode == QedMode::EddiV) {
    // §2.1: regs[i] <-> regs[i+16], i in [0,16).
    return RegisterSplit{16, 16, 0, 0};
  }
  // §5: O = regs[0..12], E = regs[13..25], T = regs[26..31].
  return RegisterSplit{13, 13, 26, 6};
}

namespace {

constexpr unsigned kImmBits = 12;

/// Extend the architectural 12-bit immediate onto the datapath the way
/// the issuing frontend does for each opcode class.
TermRef arch_imm_to_xlen(TermManager& mgr, TermRef imm12, Opcode op, unsigned xlen) {
  if (isa::opcode_format(op) == isa::Format::Shift) {
    const TermRef shamt = mgr.mk_extract(imm12, 4, 0);
    return xlen > 5 ? mgr.mk_zext(shamt, xlen) : mgr.mk_extract(shamt, xlen - 1, 0);
  }
  if (isa::is_rtype(op) || op == Opcode::NOP) return mgr.mk_const(xlen, 0);
  // I-type / LW / SW: sign-extend (or truncate on narrow datapaths).
  return xlen >= kImmBits ? mgr.mk_sext(imm12, xlen)
                          : mgr.mk_extract(imm12, xlen - 1, 0);
}

/// One instruction of an EDSEP-V replay template. Register fields either
/// are constants (temps, x0) or map an original operand into the E bank;
/// immediates either are constants or pass the original immediate through.
struct TemplateInstr {
  Opcode op = Opcode::NOP;
  enum class RegSrc : std::uint8_t { Const, RdMap, Rs1Map, Rs2Map };
  RegSrc rd_src = RegSrc::Const, rs1_src = RegSrc::Const, rs2_src = RegSrc::Const;
  unsigned rd_const = 0, rs1_const = 0, rs2_const = 0;
  bool imm_passthrough = false;
  std::int32_t imm_const = 0;
};

/// Lower a synthesized program into a replay template for original
/// instruction `g`. Spec reg input 0 maps to Rs1, input 1 to Rs2; the
/// final output maps to Rd; intermediates take T registers in order.
std::vector<TemplateInstr> make_template(const SynthProgram& prog,
                                         const RegisterSplit& split) {
  assert(prog.temps_needed() <= split.temp_count &&
         "equivalent program needs more temporaries than the T bank holds");
  const unsigned m = prog.spec->num_reg_inputs();

  // Register of each location: spec inputs map symbolically; line outputs
  // get T registers except the last (RdMap).
  struct LocReg {
    TemplateInstr::RegSrc src;
    unsigned cst;
  };
  std::vector<LocReg> loc_reg(m + prog.lines.size());
  if (m >= 1) loc_reg[0] = {TemplateInstr::RegSrc::Rs1Map, 0};
  if (m >= 2) loc_reg[1] = {TemplateInstr::RegSrc::Rs2Map, 0};

  unsigned next_temp = split.temp_base;
  std::vector<TemplateInstr> out;
  for (unsigned j = 0; j < prog.lines.size(); ++j) {
    const synth::SynthLine& line = prog.lines[j];
    const bool last = (j + 1 == prog.lines.size());
    LocReg dest;
    if (last) {
      dest = {TemplateInstr::RegSrc::RdMap, 0};
    } else {
      dest = {TemplateInstr::RegSrc::Const, next_temp++};
    }
    loc_reg[m + j] = dest;

    // Component-internal temps.
    std::vector<unsigned> comp_temps;
    for (unsigned t = 0; t < line.comp->num_temps; ++t) comp_temps.push_back(next_temp++);

    for (const synth::ExpansionInstr& e : line.comp->expansion) {
      TemplateInstr ti;
      ti.op = e.op;
      auto resolve_reg = [&](const synth::RegOperand& r, TemplateInstr::RegSrc& src,
                             unsigned& cst) {
        switch (r.kind) {
          case synth::RegOperand::Kind::Fixed:
            src = TemplateInstr::RegSrc::Const;
            cst = r.index;
            break;
          case synth::RegOperand::Kind::Input: {
            const unsigned loc = line.input_locs[r.index];
            src = loc_reg[loc].src;
            cst = loc_reg[loc].cst;
            break;
          }
          case synth::RegOperand::Kind::Output:
            src = dest.src;
            cst = dest.cst;
            break;
          case synth::RegOperand::Kind::Temp:
            src = TemplateInstr::RegSrc::Const;
            cst = comp_temps[r.index];
            break;
        }
      };
      resolve_reg(e.rd, ti.rd_src, ti.rd_const);
      resolve_reg(e.rs1, ti.rs1_src, ti.rs1_const);
      resolve_reg(e.rs2, ti.rs2_src, ti.rs2_const);

      if (e.imm.kind == synth::ImmOperand::Kind::Fixed) {
        ti.imm_const = e.imm.value;
      } else {
        const synth::AttrBinding& ab = line.attrs[e.imm.attr_index];
        if (ab.passthrough) {
          ti.imm_passthrough = true;
        } else {
          ti.imm_const = static_cast<std::int32_t>(
              ab.constant.width() == 12 ? ab.constant.sval()
                                        : static_cast<std::int64_t>(ab.constant.uval()));
        }
      }
      out.push_back(ti);
    }
  }
  return out;
}

}  // namespace

QedModel build_qed_model(ts::TransitionSystem& ts, const proc::ProcConfig& config,
                         const QedOptions& options, const proc::Mutation* mutation) {
  TermManager& mgr = ts.mgr();
  const unsigned xlen = config.xlen;
  const RegisterSplit split = register_split(options.mode);
  const bool edsep = options.mode == QedMode::EdsepV;

  QedModel model;
  model.options = options;
  model.duv = proc::build_processor(ts, config, mutation, "duv");
  proc::ProcModel& duv = model.duv;

  // --- the original-instruction stream (free inputs, constrained) ---
  model.issue_original = ts.add_input("qed.issue_orig", 1);
  const TermRef issue_eq_in = ts.add_input("qed.issue_eq", 1);
  model.orig_op = ts.add_input("qed.orig_op", proc::kOpcodeBits);
  model.orig_rd = ts.add_input("qed.orig_rd", 5);
  model.orig_rs1 = ts.add_input("qed.orig_rs1", 5);
  model.orig_rs2 = ts.add_input("qed.orig_rs2", 5);
  model.orig_imm = ts.add_input("qed.orig_imm", kImmBits);

  // Which opcodes may appear as originals: the DUV subset, additionally
  // restricted (for EDSEP-V) to instructions with an equivalence entry.
  std::vector<Opcode> stream_ops;
  for (Opcode op : config.opcodes) {
    if (edsep) {
      assert(options.equivalences && "EDSEP-V needs an equivalence table");
      const char* key = isa::opcode_name(op);
      if (isa::is_load(op) || isa::is_store(op)) {
        if (!options.equivalences->first(std::string(key) + "_ADDR")) continue;
      } else if (!options.equivalences->first(key)) {
        continue;
      }
    }
    stream_ops.push_back(op);
  }
  assert(!stream_ops.empty());

  {
    std::vector<TermRef> valid_op;
    for (Opcode op : stream_ops)
      valid_op.push_back(mgr.mk_eq(model.orig_op, duv.opcode_const(op)));
    ts.add_constraint(mgr.mk_or_many(valid_op));
  }
  // Operand register ranges: rd in [1, |O|), rs in [0, |O|).
  ts.add_constraint(mgr.mk_ult(mgr.mk_const(5, 0), model.orig_rd));
  ts.add_constraint(mgr.mk_ult(model.orig_rd, mgr.mk_const(5, split.original_count)));
  ts.add_constraint(mgr.mk_ult(model.orig_rs1, mgr.mk_const(5, split.original_count)));
  ts.add_constraint(mgr.mk_ult(model.orig_rs2, mgr.mk_const(5, split.original_count)));
  // Architectural shift-immediate encoding: shamt lives in imm[4:0], the
  // upper immediate bits are zero (RV32 SLLI/SRLI/SRAI encodings).
  {
    std::vector<TermRef> is_shift;
    for (Opcode op : stream_ops)
      if (isa::opcode_format(op) == isa::Format::Shift)
        is_shift.push_back(mgr.mk_eq(model.orig_op, duv.opcode_const(op)));
    if (!is_shift.empty()) {
      ts.add_constraint(mgr.mk_implies(
          mgr.mk_or_many(is_shift),
          mgr.mk_eq(mgr.mk_extract(model.orig_imm, 11, 5), mgr.mk_const(7, 0))));
    }
  }

  // --- the pending-transformation queue ---
  const unsigned cap = options.queue_capacity;
  struct Slot {
    TermRef valid, op, rd, rs1, rs2, imm;
  };
  std::vector<Slot> q(cap);
  for (unsigned i = 0; i < cap; ++i) {
    const std::string p = "qed.q" + std::to_string(i);
    q[i].valid = ts.add_state(p + ".valid", 1);
    q[i].op = ts.add_state(p + ".op", proc::kOpcodeBits);
    q[i].rd = ts.add_state(p + ".rd", 5);
    q[i].rs1 = ts.add_state(p + ".rs1", 5);
    q[i].rs2 = ts.add_state(p + ".rs2", 5);
    q[i].imm = ts.add_state(p + ".imm", kImmBits);
    ts.set_init(q[i].valid, mgr.mk_false());
  }
  // EDSEP-V: progress within the head's replay program.
  const unsigned step_bits = 4;
  TermRef q_step = smt::kNullTerm;
  if (edsep) {
    q_step = ts.add_state("qed.q_step", step_bits);
    ts.set_init(q_step, mgr.mk_const(step_bits, 0));
  }

  // Commit counters.
  const unsigned cb = options.counter_bits;
  const TermRef cnt_orig = ts.add_state("qed.cnt_orig", cb);
  const TermRef cnt_eq = ts.add_state("qed.cnt_eq", cb);
  ts.set_init(cnt_orig, mgr.mk_const(cb, 0));
  ts.set_init(cnt_eq, mgr.mk_const(cb, 0));
  // No counter wrap within any trace we examine.
  ts.add_constraint(mgr.mk_ult(cnt_orig, mgr.mk_const(cb, (1u << cb) - 1)));

  // --- issue selection ---
  const TermRef q_full = q[cap - 1].valid;
  const TermRef q_nonempty = q[0].valid;
  const TermRef fire_orig = mgr.mk_and(model.issue_original, mgr.mk_not(q_full));
  const TermRef fire_eq =
      mgr.mk_and(mgr.mk_and(mgr.mk_not(fire_orig), issue_eq_in), q_nonempty);

  // --- the replayed (duplicate / equivalent) instruction for the head ---
  TermRef eq_op = duv.opcode_const(Opcode::NOP);
  TermRef eq_rd = mgr.mk_const(5, 0), eq_rs1 = mgr.mk_const(5, 0),
          eq_rs2 = mgr.mk_const(5, 0);
  TermRef eq_imm = mgr.mk_const(xlen, 0);
  TermRef head_completes = mgr.mk_false();  // this replay step finishes the head

  const TermRef off5 = mgr.mk_const(5, split.shadow_offset);
  const std::uint64_t half_bytes =
      static_cast<std::uint64_t>(config.mem_words / 2) * 4;

  if (!edsep) {
    // EDDI-V: one duplicate instruction with registers mapped +16 and
    // memory addresses shifted into the shadow half.
    eq_op = q[0].op;
    eq_rd = mgr.mk_add(q[0].rd, off5);
    eq_rs1 = mgr.mk_add(q[0].rs1, off5);
    eq_rs2 = mgr.mk_add(q[0].rs2, off5);
    TermRef imm_x = mgr.mk_const(xlen, 0);
    for (Opcode op : stream_ops) {
      TermRef v = arch_imm_to_xlen(mgr, q[0].imm, op, xlen);
      if (isa::is_load(op) || isa::is_store(op))
        v = mgr.mk_add(v, mgr.mk_const(xlen, half_bytes));
      imm_x = mgr.mk_ite(mgr.mk_eq(q[0].op, duv.opcode_const(op)), v, imm_x);
    }
    eq_imm = imm_x;
    head_completes = mgr.mk_true();  // a duplicate is a 1-instruction program
  } else {
    // EDSEP-V: replay the semantically equivalent program step by step.
    for (Opcode g : stream_ops) {
      // Build the template for g.
      std::vector<TemplateInstr> tmpl;
      if (isa::is_load(g) || isa::is_store(g)) {
        const SynthProgram* addr_prog =
            options.equivalences->first(std::string(isa::opcode_name(g)) + "_ADDR");
        tmpl = make_template(*addr_prog, split);
        // The address program leaves the effective address in the "rd"
        // mapping; redirect it into a T register and append the access
        // with the shadow-half displacement.
        unsigned addr_temp = split.temp_base + split.temp_count - 1;
        for (TemplateInstr& ti : tmpl) {
          if (ti.rd_src == TemplateInstr::RegSrc::RdMap) {
            ti.rd_src = TemplateInstr::RegSrc::Const;
            ti.rd_const = addr_temp;
          }
          if (ti.rs1_src == TemplateInstr::RegSrc::RdMap) {
            ti.rs1_src = TemplateInstr::RegSrc::Const;
            ti.rs1_const = addr_temp;
          }
          if (ti.rs2_src == TemplateInstr::RegSrc::RdMap) {
            ti.rs2_src = TemplateInstr::RegSrc::Const;
            ti.rs2_const = addr_temp;
          }
        }
        TemplateInstr access;
        access.op = g;
        access.rs1_src = TemplateInstr::RegSrc::Const;
        access.rs1_const = addr_temp;
        access.imm_const = static_cast<std::int32_t>(half_bytes);
        if (isa::is_load(g)) {
          access.rd_src = TemplateInstr::RegSrc::RdMap;
        } else {
          access.rs2_src = TemplateInstr::RegSrc::Rs2Map;
        }
        tmpl.push_back(access);
      } else {
        const SynthProgram* prog = options.equivalences->first(isa::opcode_name(g));
        tmpl = make_template(*prog, split);
      }

      const TermRef is_g = mgr.mk_eq(q[0].op, duv.opcode_const(g));
      TermRef g_op = eq_op, g_rd = eq_rd, g_rs1 = eq_rs1, g_rs2 = eq_rs2, g_imm = eq_imm;
      for (unsigned s = 0; s < tmpl.size(); ++s) {
        const TemplateInstr& ti = tmpl[s];
        const TermRef at_s = mgr.mk_eq(q_step, mgr.mk_const(step_bits, s));
        auto reg_term = [&](TemplateInstr::RegSrc src, unsigned cst) -> TermRef {
          switch (src) {
            case TemplateInstr::RegSrc::Const: return mgr.mk_const(5, cst);
            case TemplateInstr::RegSrc::RdMap: return mgr.mk_add(q[0].rd, off5);
            case TemplateInstr::RegSrc::Rs1Map: return mgr.mk_add(q[0].rs1, off5);
            case TemplateInstr::RegSrc::Rs2Map: return mgr.mk_add(q[0].rs2, off5);
          }
          return mgr.mk_const(5, 0);
        };
        TermRef imm_term;
        if (ti.imm_passthrough) {
          imm_term = arch_imm_to_xlen(mgr, q[0].imm, ti.op, xlen);
        } else {
          const BitVec v =
              isa::opcode_format(ti.op) == isa::Format::Shift
                  ? BitVec(xlen, static_cast<std::uint64_t>(ti.imm_const) & 31)
                  : isa::imm_to_xlen(ti.imm_const, xlen);
          imm_term = mgr.mk_const(v);
        }
        g_op = mgr.mk_ite(at_s, duv.opcode_const(ti.op), g_op);
        g_rd = mgr.mk_ite(at_s, reg_term(ti.rd_src, ti.rd_const), g_rd);
        g_rs1 = mgr.mk_ite(at_s, reg_term(ti.rs1_src, ti.rs1_const), g_rs1);
        g_rs2 = mgr.mk_ite(at_s, reg_term(ti.rs2_src, ti.rs2_const), g_rs2);
        g_imm = mgr.mk_ite(at_s, imm_term, g_imm);
      }
      eq_op = mgr.mk_ite(is_g, g_op, eq_op);
      eq_rd = mgr.mk_ite(is_g, g_rd, eq_rd);
      eq_rs1 = mgr.mk_ite(is_g, g_rs1, eq_rs1);
      eq_rs2 = mgr.mk_ite(is_g, g_rs2, eq_rs2);
      eq_imm = mgr.mk_ite(is_g, g_imm, eq_imm);
      head_completes = mgr.mk_ite(
          is_g,
          mgr.mk_eq(q_step, mgr.mk_const(step_bits, tmpl.size() - 1)),
          head_completes);
    }
  }

  // --- drive the DUV's instruction inputs ---
  const TermRef orig_imm_x = [&] {
    TermRef v = mgr.mk_const(xlen, 0);
    for (Opcode op : stream_ops)
      v = mgr.mk_ite(mgr.mk_eq(model.orig_op, duv.opcode_const(op)),
                     arch_imm_to_xlen(mgr, model.orig_imm, op, xlen), v);
    return v;
  }();
  ts.add_constraint(mgr.mk_eq(duv.in_valid, mgr.mk_or(fire_orig, fire_eq)));
  ts.add_constraint(mgr.mk_eq(duv.in_op, mgr.mk_ite(fire_orig, model.orig_op, eq_op)));
  ts.add_constraint(mgr.mk_eq(duv.in_rd, mgr.mk_ite(fire_orig, model.orig_rd, eq_rd)));
  ts.add_constraint(mgr.mk_eq(duv.in_rs1, mgr.mk_ite(fire_orig, model.orig_rs1, eq_rs1)));
  ts.add_constraint(mgr.mk_eq(duv.in_rs2, mgr.mk_ite(fire_orig, model.orig_rs2, eq_rs2)));
  ts.add_constraint(mgr.mk_eq(duv.in_imm, mgr.mk_ite(fire_orig, orig_imm_x, eq_imm)));

  // --- queue next-state ---
  const TermRef dequeue = mgr.mk_and(fire_eq, head_completes);
  for (unsigned i = 0; i < cap; ++i) {
    // Shift down on dequeue.
    const Slot cur = q[i];
    const Slot from = (i + 1 < cap) ? q[i + 1]
                                    : Slot{mgr.mk_false(), cur.op, cur.rd, cur.rs1,
                                           cur.rs2, cur.imm};
    auto shifted = [&](TermRef c, TermRef f) { return mgr.mk_ite(dequeue, f, c); };
    TermRef n_valid = shifted(cur.valid, from.valid);
    TermRef n_op = shifted(cur.op, from.op);
    TermRef n_rd = shifted(cur.rd, from.rd);
    TermRef n_rs1 = shifted(cur.rs1, from.rs1);
    TermRef n_rs2 = shifted(cur.rs2, from.rs2);
    TermRef n_imm = shifted(cur.imm, from.imm);

    // Enqueue the new original into the first free slot (after shift).
    const TermRef prev_valid =
        i == 0 ? mgr.mk_true()
               : mgr.mk_ite(dequeue, q[i].valid, q[i - 1].valid);
    const TermRef this_valid = n_valid;
    const TermRef here = mgr.mk_and(fire_orig,
                                    mgr.mk_and(prev_valid, mgr.mk_not(this_valid)));
    ts.set_next(cur.valid, mgr.mk_or(n_valid, here));
    ts.set_next(cur.op, mgr.mk_ite(here, model.orig_op, n_op));
    ts.set_next(cur.rd, mgr.mk_ite(here, model.orig_rd, n_rd));
    ts.set_next(cur.rs1, mgr.mk_ite(here, model.orig_rs1, n_rs1));
    ts.set_next(cur.rs2, mgr.mk_ite(here, model.orig_rs2, n_rs2));
    ts.set_next(cur.imm, mgr.mk_ite(here, model.orig_imm, n_imm));
  }
  if (edsep) {
    // Advance within the head's program; reset on dequeue.
    const TermRef one = mgr.mk_const(step_bits, 1);
    TermRef next_step = q_step;
    next_step = mgr.mk_ite(fire_eq, mgr.mk_add(q_step, one), next_step);
    next_step = mgr.mk_ite(dequeue, mgr.mk_const(step_bits, 0), next_step);
    ts.set_next(q_step, next_step);
  }

  // --- counters ---
  {
    const TermRef one = mgr.mk_const(cb, 1);
    ts.set_next(cnt_orig, mgr.mk_ite(fire_orig, mgr.mk_add(cnt_orig, one), cnt_orig));
    ts.set_next(cnt_eq, mgr.mk_ite(dequeue, mgr.mk_add(cnt_eq, one), cnt_eq));
  }

  // --- memory-stream address discipline ---
  if (config.has_memory()) {
    // Ghost tag mirroring the DUV's D latch: 1 = shadow-stream access.
    const TermRef d_tag = ts.add_state("qed.d_tag", 1);
    ts.set_init(d_tag, mgr.mk_false());
    ts.set_next(d_tag, fire_eq);

    const TermRef is_mem = mgr.mk_or(
        mgr.mk_eq(duv.d_op, duv.opcode_const(Opcode::LW)),
        mgr.mk_eq(duv.d_op, duv.opcode_const(Opcode::SW)));
    const TermRef active = mgr.mk_and(duv.d_valid, is_mem);
    const TermRef addr = duv.x_addr;
    const TermRef aligned =
        mgr.mk_eq(mgr.mk_extract(addr, 1, 0), mgr.mk_const(2, 0));
    const TermRef half = mgr.mk_const(xlen, half_bytes);
    const TermRef full = mgr.mk_const(xlen, 2 * half_bytes);
    const TermRef lo_ok = mgr.mk_ult(addr, half);
    const TermRef hi_ok = mgr.mk_and(mgr.mk_ule(half, addr), mgr.mk_ult(addr, full));
    const TermRef range_ok = mgr.mk_ite(d_tag, hi_ok, lo_ok);
    ts.add_constraint(mgr.mk_implies(active, mgr.mk_and(aligned, range_ok)));
  }

  // --- QED-ready and the universal property ---
  const TermRef counts_equal = mgr.mk_eq(cnt_orig, cnt_eq);
  const TermRef some_committed = mgr.mk_ult(mgr.mk_const(cb, 0), cnt_orig);
  model.qed_ready = mgr.mk_and(
      mgr.mk_and(counts_equal, some_committed),
      mgr.mk_and(mgr.mk_not(q_nonempty), duv.drained()));

  TermRef consistent = mgr.mk_true();
  for (unsigned i = 0; i < split.original_count; ++i) {
    consistent = mgr.mk_and(
        consistent, mgr.mk_eq(duv.regs[i], duv.regs[i + split.shadow_offset]));
  }
  if (config.has_memory()) {
    for (unsigned w = 0; w < config.mem_words / 2; ++w)
      consistent = mgr.mk_and(
          consistent, mgr.mk_eq(duv.mem[w], duv.mem[w + config.mem_words / 2]));
  }
  model.qed_consistent = consistent;

  // QED-consistent initial state (registers and memory symbolic but
  // pairwise equal), as SQED requires.
  for (unsigned i = 0; i < split.original_count; ++i) {
    ts.add_init_constraint(
        mgr.mk_eq(duv.regs[i], duv.regs[i + split.shadow_offset]));
  }
  if (edsep) {
    // The paired bank E must also start consistent with O; x0's partner
    // regs[13] starts at zero like x0 itself.
    ts.add_init_constraint(
        mgr.mk_eq(duv.regs[split.shadow_offset], mgr.mk_const(xlen, 0)));
  }
  if (config.has_memory()) {
    for (unsigned w = 0; w < config.mem_words / 2; ++w)
      ts.add_init_constraint(
          mgr.mk_eq(duv.mem[w], duv.mem[w + config.mem_words / 2]));
  }

  // The label is load-bearing beyond the report: witness artifacts record
  // it and replay refuses a trace whose fired bad carries a different
  // label, so it must stay stable across the BTOR2 round-trip (the writer
  // strips newlines; everything else here is already printable).
  model.bad_index = ts.bads().size();
  ts.add_bad(mgr.mk_and(model.qed_ready, mgr.mk_not(model.qed_consistent)),
             std::string("qed-inconsistent/") + qed_mode_name(options.mode));
  return model;
}

}  // namespace sepe::qed
