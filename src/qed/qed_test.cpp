#include "qed/qed_test.hpp"

#include <cassert>

namespace sepe::qed {

using isa::Instruction;
using isa::Opcode;
using isa::Program;

namespace {

/// Map a register into the shadow half.
std::uint8_t shadow_reg(std::uint8_t r, unsigned offset) {
  return r == 0 ? 0 : static_cast<std::uint8_t>(r + offset);
}

}  // namespace

Program eddi_v_transform(const Program& original, unsigned mem_bytes_half) {
  const RegisterSplit split = register_split(QedMode::EddiV);
  Program out;
  for (const Instruction& inst : original) {
    out.push_back(inst);
    Instruction dup = inst;
    if (isa::writes_register(inst.op)) dup.rd = shadow_reg(inst.rd, split.shadow_offset);
    dup.rs1 = shadow_reg(inst.rs1, split.shadow_offset);
    dup.rs2 = shadow_reg(inst.rs2, split.shadow_offset);
    if (isa::is_load(inst.op) || isa::is_store(inst.op))
      dup.imm = inst.imm + static_cast<std::int32_t>(mem_bytes_half);
    out.push_back(dup);
  }
  return out;
}

Program edsep_v_transform(const Program& original, const synth::EquivalenceTable& table,
                          unsigned mem_bytes_half) {
  const RegisterSplit split = register_split(QedMode::EdsepV);
  Program out;
  std::vector<std::uint8_t> temps;
  for (unsigned t = 0; t < split.temp_count; ++t)
    temps.push_back(static_cast<std::uint8_t>(split.temp_base + t));

  for (const Instruction& inst : original) {
    out.push_back(inst);

    const auto emit_value_program = [&](const synth::SynthProgram& prog) {
      std::vector<std::uint8_t> in_regs;
      std::vector<std::int32_t> imm_values(prog.spec->inputs.size(), 0);
      unsigned reg_i = 0;
      for (unsigned i = 0; i < prog.spec->inputs.size(); ++i) {
        if (prog.spec->inputs[i] == synth::InputClass::Reg) {
          const std::uint8_t src = reg_i == 0 ? inst.rs1 : inst.rs2;
          in_regs.push_back(shadow_reg(src, split.shadow_offset));
          ++reg_i;
        } else {
          imm_values[i] = inst.imm;
        }
      }
      const std::uint8_t out_reg = shadow_reg(inst.rd, split.shadow_offset);
      const Program expansion = prog.lower(in_regs, out_reg, imm_values, temps);
      out.insert(out.end(), expansion.begin(), expansion.end());
    };

    if (isa::is_load(inst.op) || isa::is_store(inst.op)) {
      const synth::SynthProgram* addr_prog =
          table.first(std::string(isa::opcode_name(inst.op)) + "_ADDR");
      assert(addr_prog && "no address-path equivalence for memory op");
      // Compute the shadow effective address into the last temp, then
      // re-attach the access with the shadow-half displacement.
      const std::uint8_t addr_temp =
          static_cast<std::uint8_t>(split.temp_base + split.temp_count - 1);
      std::vector<std::uint8_t> in_regs{shadow_reg(inst.rs1, split.shadow_offset)};
      std::vector<std::int32_t> imm_values(addr_prog->spec->inputs.size(), 0);
      for (unsigned i = 0; i < addr_prog->spec->inputs.size(); ++i)
        if (addr_prog->spec->inputs[i] != synth::InputClass::Reg)
          imm_values[i] = inst.imm;
      const Program addr_expansion =
          addr_prog->lower(in_regs, addr_temp, imm_values,
                           std::vector<std::uint8_t>(temps.begin(), temps.end() - 1));
      out.insert(out.end(), addr_expansion.begin(), addr_expansion.end());
      if (isa::is_load(inst.op)) {
        out.push_back(Instruction::lw(shadow_reg(inst.rd, split.shadow_offset), addr_temp,
                                      static_cast<std::int32_t>(mem_bytes_half)));
      } else {
        out.push_back(Instruction::sw(shadow_reg(inst.rs2, split.shadow_offset),
                                      addr_temp,
                                      static_cast<std::int32_t>(mem_bytes_half)));
      }
      continue;
    }

    const synth::SynthProgram* prog = table.first(isa::opcode_name(inst.op));
    assert(prog && "no equivalence entry for instruction");
    emit_value_program(*prog);
  }
  return out;
}

QedTestResult run_qed_test(const Program& transformed, QedMode mode, unsigned xlen,
                           std::size_t mem_words, const BuggyIssHook& buggy) {
  const RegisterSplit split = register_split(mode);
  sim::Iss iss(xlen, mem_words);
  // QED-consistent start: both halves zero (the ISS default).

  for (const Instruction& inst : transformed) {
    if (buggy && isa::writes_register(inst.op) && !isa::is_load(inst.op) &&
        inst.op != Opcode::NOP) {
      const BitVec correct = isa::instruction_result_concrete(
          inst, iss.state().reg(inst.rs1), iss.state().reg(inst.rs2), xlen);
      iss.state().set_reg(inst.rd, buggy(inst, correct));
    } else {
      iss.step(inst);
    }
  }

  QedTestResult result;
  result.transformed = transformed;
  for (unsigned i = 0; i < split.original_count; ++i) {
    if (!(iss.state().reg(i) == iss.state().reg(i + split.shadow_offset))) {
      result.consistent = false;
      result.mismatched_reg = i;
      break;
    }
  }
  if (result.consistent) {
    for (std::size_t w = 0; w < mem_words / 2; ++w) {
      const BitVec a = iss.state().load_word(BitVec(xlen, w * 4));
      const BitVec b = iss.state().load_word(BitVec(xlen, (w + mem_words / 2) * 4));
      if (!(a == b)) {
        result.consistent = false;
        break;
      }
    }
  }
  return result;
}

Program random_original_program(Rng& rng, unsigned length, QedMode mode, bool with_memory,
                                unsigned mem_bytes_half) {
  const RegisterSplit split = register_split(mode);
  static const Opcode kAlu[] = {Opcode::ADD,  Opcode::SUB,  Opcode::XOR,   Opcode::OR,
                                Opcode::AND,  Opcode::SLT,  Opcode::SLTU,  Opcode::SLL,
                                Opcode::SRL,  Opcode::SRA,  Opcode::ADDI,  Opcode::XORI,
                                Opcode::ORI,  Opcode::ANDI, Opcode::SLTI,  Opcode::SLTIU,
                                Opcode::SLLI, Opcode::SRLI, Opcode::SRAI,  Opcode::MUL,
                                Opcode::MULH, Opcode::MULHU, Opcode::MULHSU};
  Program p;
  for (unsigned i = 0; i < length; ++i) {
    const auto rd = static_cast<unsigned>(1 + rng.below(split.original_count - 1));
    const auto rs1 = static_cast<unsigned>(rng.below(split.original_count));
    const auto rs2 = static_cast<unsigned>(rng.below(split.original_count));
    if (with_memory && rng.below(5) == 0) {
      // Word-aligned access within the original half, base x0.
      const std::int32_t off =
          static_cast<std::int32_t>(rng.below(mem_bytes_half / 4)) * 4;
      if (rng.flip()) {
        p.push_back(Instruction::lw(rd, 0, off));
      } else {
        p.push_back(Instruction::sw(rs2, 0, off));
      }
      continue;
    }
    const Opcode op = kAlu[rng.below(std::size(kAlu))];
    if (isa::is_rtype(op)) {
      p.push_back(Instruction::rtype(op, rd, rs1, rs2));
    } else if (isa::opcode_format(op) == isa::Format::Shift) {
      p.push_back(
          Instruction::itype(op, rd, rs1, static_cast<std::int32_t>(rng.below(32))));
    } else {
      const std::int32_t imm = static_cast<std::int32_t>(rng.below(4096)) - 2048;
      p.push_back(Instruction::itype(op, rd, rs1, imm));
    }
  }
  return p;
}

}  // namespace sepe::qed
