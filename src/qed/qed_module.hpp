// qed_module.hpp — the QED modules: EDDI-V (SQED) and EDSEP-V (SEPE-SQED).
//
// Mirrors Figure 2 of the paper. A QED module wraps the DUV (src/proc):
// it drives the DUV's instruction inputs, maintains a queue of pending
// transformed instructions, exposes the QED-ready condition and asserts
// the universal self-consistency property:
//
//   EDDI-V  (SQED, §2.1) : registers split 16/16, regs[i] <-> regs[i+16];
//     every original instruction is replayed as an exact duplicate on the
//     shadow half; property: QED-ready => AND_i regs[i] == regs[i+16].
//
//   EDSEP-V (SEPE-SQED, §5): registers split 13/13/6 into O / E / T;
//     every original instruction is replayed as its *semantically
//     equivalent program* from the synthesis table, with inputs/outputs
//     mapped O->E and intermediates allocated in T (read-after-write
//     order); property: QED-ready => AND_{i=0..12} regs[i] == regs[i+13].
//
// Both modules let the solver choose freely, cycle by cycle, whether to
// issue a fresh original instruction, replay a pending transformed one,
// or bubble — the interleaving freedom that lets BMC find short traces.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "proc/processor.hpp"
#include "synth/cegis.hpp"
#include "ts/transition_system.hpp"

namespace sepe::qed {

/// Which QED transformation to attach.
enum class QedMode { EddiV, EdsepV };

const char* qed_mode_name(QedMode mode);

struct QedOptions {
  QedMode mode = QedMode::EddiV;
  /// Queue capacity: how many originals may be outstanding (awaiting
  /// their duplicate / equivalent replay).
  unsigned queue_capacity = 2;
  /// Width of the commit counters (bounds trace lengths representable).
  unsigned counter_bits = 4;
  /// EDSEP-V: equivalent programs, keyed by opcode name (plus "LW_ADDR" /
  /// "SW_ADDR" entries for the memory instructions when present).
  const synth::EquivalenceTable* equivalences = nullptr;
};

/// The verification model: DUV + QED module + property, ready for BMC.
struct QedModel {
  proc::ProcModel duv;
  QedOptions options;

  // Module inputs: what the solver controls each cycle.
  smt::TermRef issue_original;  // 1 = present a fresh original instruction
  smt::TermRef orig_op;         // opcode choice for the original
  smt::TermRef orig_rd, orig_rs1, orig_rs2;
  smt::TermRef orig_imm;        // architectural immediate (12-bit)

  // Observation points.
  smt::TermRef qed_ready;       // both streams committed & pipeline drained
  smt::TermRef qed_consistent;  // the register(/memory)-file consistency

  /// Index of the "qed" bad state in the transition system.
  std::size_t bad_index = 0;
};

/// Attach a QED module to a freshly built DUV inside `ts`. The DUV is
/// constructed internally (its instruction inputs must be driven by the
/// module, so the caller supplies only the processor config + mutation).
QedModel build_qed_model(ts::TransitionSystem& ts, const proc::ProcConfig& config,
                         const QedOptions& options,
                         const proc::Mutation* mutation = nullptr);

/// Register-split helpers (32 architectural registers).
struct RegisterSplit {
  unsigned original_count;  // |O|
  unsigned shadow_offset;   // o -> o + offset
  unsigned temp_base;       // first T register (EDSEP-V only)
  unsigned temp_count;
};
RegisterSplit register_split(QedMode mode);

}  // namespace sepe::qed
