// qed_test.hpp — concrete QED testing (Lin et al. [13], §2.1 background).
//
// The pre-SQED methodology: take an existing concrete test (instruction
// sequence), apply the EDDI-V transformation (duplicate every instruction
// onto the shadow register/memory half), execute on a simulator, and flag
// a bug when any original/duplicate register or memory pair disagrees.
//
// This module implements that flow on the ISS (src/sim), plus the EDSEP-V
// analogue that replays each instruction's semantically equivalent
// program. It serves three purposes: background reproduction, a fast
// sanity oracle for the equivalence table, and a demonstration harness
// (examples/qed_testing.cpp).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "qed/qed_module.hpp"
#include "sim/iss.hpp"
#include "synth/cegis.hpp"

namespace sepe::qed {

/// A concrete QED test: the original instruction sequence (operands
/// restricted to the original register half / memory half).
struct QedTest {
  isa::Program original;
};

/// Result of a concrete QED run.
struct QedTestResult {
  bool consistent = true;
  /// First register pair that disagrees (original index), if any.
  std::optional<unsigned> mismatched_reg;
  /// Transformed program that was executed.
  isa::Program transformed;
};

/// Apply the EDDI-V transformation: interleave each original instruction
/// with its duplicate on the shadow half (registers +16, memory +half).
isa::Program eddi_v_transform(const isa::Program& original, unsigned mem_bytes_half);

/// Apply the EDSEP-V transformation using the equivalence table:
/// each original instruction is followed by its semantically equivalent
/// program on the E/T halves (registers +13, temps in x26..x31).
isa::Program edsep_v_transform(const isa::Program& original,
                               const synth::EquivalenceTable& table,
                               unsigned mem_bytes_half);

/// Execute a transformed test from a QED-consistent state on the ISS and
/// check final consistency. `mode` selects the register split to compare.
/// `buggy_iss` optionally injects an execution-level bug (see
/// BuggyIssHook) to demonstrate detection.
using BuggyIssHook =
    std::function<BitVec(const isa::Instruction&, const BitVec& /*correct*/)>;

QedTestResult run_qed_test(const isa::Program& transformed, QedMode mode, unsigned xlen,
                           std::size_t mem_words, const BuggyIssHook& buggy = nullptr);

/// Generate a random QED-compatible original test program (ALU subset,
/// operands within the original half).
isa::Program random_original_program(Rng& rng, unsigned length, QedMode mode,
                                     bool with_memory, unsigned mem_bytes_half);

}  // namespace sepe::qed
