// mutations.hpp — the injected-bug catalogs for the paper's evaluation.
//
// Two families, mirroring §6.2's mutation testing on RIDECORE:
//
//   * table1_single_instruction_bugs() — 13 bugs, one per row of Table 1
//     (ADD, SUB, XOR, OR, AND, SLT, SLTU, SRA, MULH, XORI, SLLI, SRAI,
//     SW). Each corrupts one instruction's *function* uniformly, so an
//     original instruction and its EDDI-V duplicate are wrong in exactly
//     the same way: SQED's self-consistency cannot see them, SEPE-SQED's
//     semantically-equivalent program can.
//
//   * figure4_multi_instruction_bugs() — 20 bugs that only fire on
//     specific instruction *interactions* (forwarding, back-to-back
//     writes, store paths). Both SQED and SEPE-SQED detect these; the
//     Figure-4 bench compares runtimes and counterexample lengths.
#pragma once

#include <vector>

#include "proc/processor.hpp"

namespace sepe::proc {

/// The 13 single-instruction bugs of Table 1, in table order.
std::vector<Mutation> table1_single_instruction_bugs();

/// The 20 multiple-instruction bugs of Figure 4. `with_memory` includes
/// the two store-path bugs (requires a memory-enabled ProcConfig).
std::vector<Mutation> figure4_multi_instruction_bugs(bool with_memory);

}  // namespace sepe::proc
