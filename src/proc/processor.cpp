#include "proc/processor.hpp"

#include <cassert>

namespace sepe::proc {

using isa::Opcode;
using smt::TermManager;
using smt::TermRef;

ProcConfig ProcConfig::alu_subset(unsigned xlen) {
  ProcConfig c;
  c.xlen = xlen;
  c.opcodes = {Opcode::ADD,  Opcode::SUB,  Opcode::SLL,  Opcode::SLT,  Opcode::SLTU,
               Opcode::XOR,  Opcode::SRL,  Opcode::SRA,  Opcode::OR,   Opcode::AND,
               Opcode::ADDI, Opcode::SLTI, Opcode::SLTIU, Opcode::XORI, Opcode::ORI,
               Opcode::ANDI, Opcode::SLLI, Opcode::SRLI, Opcode::SRAI, Opcode::MUL,
               Opcode::MULH, Opcode::MULHSU, Opcode::MULHU};
  return c;
}

ProcConfig ProcConfig::with_memory(unsigned xlen) {
  ProcConfig c = alu_subset(xlen);
  c.opcodes.push_back(Opcode::LW);
  c.opcodes.push_back(Opcode::SW);
  return c;
}

bool ProcConfig::supports(isa::Opcode op) const {
  for (Opcode o : opcodes)
    if (o == op) return true;
  return false;
}

bool ProcConfig::has_memory() const {
  return supports(Opcode::LW) || supports(Opcode::SW);
}

TermRef ProcModel::drained() const {
  TermManager& mgr = ts->mgr();
  return mgr.mk_and(mgr.mk_not(d_valid), mgr.mk_not(w_valid));
}

TermRef ProcModel::opcode_const(Opcode op) const {
  return ts->mgr().mk_const(kOpcodeBits, static_cast<std::uint64_t>(op));
}

namespace {

TermRef apply(const TermHook& hook, const MutationCtx& ctx, TermRef correct) {
  return hook ? hook(ctx, correct) : correct;
}

}  // namespace

ProcModel build_processor(ts::TransitionSystem& ts, const ProcConfig& config,
                          const Mutation* mutation, const std::string& prefix) {
  TermManager& mgr = ts.mgr();
  const unsigned xlen = config.xlen;
  assert((config.mem_words & (config.mem_words - 1)) == 0 &&
         "mem_words must be a power of 2");
  // When memory instructions are implemented, byte addresses must fit
  // the datapath: mem_words * 4 <= 2^xlen. (Memory-less configs may carry
  // unused mem state words; they are never indexed.)
  assert(!config.has_memory() || (config.mem_words <= (1ull << xlen) / 4 &&
                                  "memory exceeds the address space"));

  ProcModel m;
  m.config = config;
  m.ts = &ts;

  // --- interface: decoded instruction bundle ---
  m.in_valid = ts.add_input(prefix + ".in_valid", 1);
  m.in_op = ts.add_input(prefix + ".in_op", kOpcodeBits);
  m.in_rd = ts.add_input(prefix + ".in_rd", 5);
  m.in_rs1 = ts.add_input(prefix + ".in_rs1", 5);
  m.in_rs2 = ts.add_input(prefix + ".in_rs2", 5);
  m.in_imm = ts.add_input(prefix + ".in_imm", xlen);

  // --- architectural state ---
  for (unsigned i = 0; i < 32; ++i)
    m.regs.push_back(ts.add_state(prefix + ".x" + std::to_string(i), xlen));
  ts.set_init(m.regs[0], mgr.mk_const(xlen, 0));  // x0 hard-wired zero
  for (unsigned w = 0; w < config.mem_words; ++w)
    m.mem.push_back(ts.add_state(prefix + ".mem" + std::to_string(w), xlen));

  // --- pipeline latches ---
  m.d_valid = ts.add_state(prefix + ".d_valid", 1);
  m.d_op = ts.add_state(prefix + ".d_op", kOpcodeBits);
  m.d_rd = ts.add_state(prefix + ".d_rd", 5);
  m.d_rs1 = ts.add_state(prefix + ".d_rs1", 5);
  m.d_rs2 = ts.add_state(prefix + ".d_rs2", 5);
  m.d_imm = ts.add_state(prefix + ".d_imm", xlen);
  m.w_valid = ts.add_state(prefix + ".w_valid", 1);
  m.w_wen = ts.add_state(prefix + ".w_wen", 1);
  m.w_rd = ts.add_state(prefix + ".w_rd", 5);
  m.w_value = ts.add_state(prefix + ".w_value", xlen);

  const TermRef zero1 = mgr.mk_false();
  ts.set_init(m.d_valid, zero1);
  ts.set_init(m.w_valid, zero1);
  ts.set_init(m.w_wen, zero1);

  // --- decode latch: captures the input bundle every cycle ---
  ts.set_next(m.d_valid, m.in_valid);
  ts.set_next(m.d_op, m.in_op);
  ts.set_next(m.d_rd, m.in_rd);
  ts.set_next(m.d_rs1, m.in_rs1);
  ts.set_next(m.d_rs2, m.in_rs2);
  ts.set_next(m.d_imm, m.in_imm);

  // --- execute stage ---
  // Register file read: 32-way mux over the source index.
  auto regfile_read = [&](TermRef idx) {
    TermRef v = m.regs[0];
    for (unsigned i = 1; i < 32; ++i)
      v = mgr.mk_ite(mgr.mk_eq(idx, mgr.mk_const(5, i)), m.regs[i], v);
    return v;
  };
  const TermRef raw_a = regfile_read(m.d_rs1);
  const TermRef raw_b = regfile_read(m.d_rs2);

  MutationCtx ctx;
  ctx.mgr = &mgr;
  ctx.xlen = xlen;
  ctx.d_valid = m.d_valid;
  ctx.d_op = m.d_op;
  ctx.d_rd = m.d_rd;
  ctx.d_rs1 = m.d_rs1;
  ctx.d_rs2 = m.d_rs2;
  ctx.d_imm = m.d_imm;
  ctx.w_valid = m.w_valid;
  ctx.w_wen = m.w_wen;
  ctx.w_rd = m.w_rd;
  ctx.w_value = m.w_value;

  // Forwarding: the previous instruction's result sits in the W latch and
  // has not yet reached the register file.
  const TermRef reg0 = mgr.mk_const(5, 0);
  auto fwd_cond = [&](TermRef rs) {
    return mgr.mk_and(
        mgr.mk_and(m.w_valid, m.w_wen),
        mgr.mk_and(mgr.mk_eq(m.w_rd, rs), mgr.mk_ne(rs, reg0)));
  };
  TermRef fwd_a = fwd_cond(m.d_rs1);
  TermRef fwd_b = fwd_cond(m.d_rs2);
  ctx.fwd_a = fwd_a;
  ctx.fwd_b = fwd_b;
  if (mutation) {
    fwd_a = apply(mutation->fwd_a_hook, ctx, fwd_a);
    fwd_b = apply(mutation->fwd_b_hook, ctx, fwd_b);
  }
  TermRef op_a = mgr.mk_ite(fwd_a, m.w_value, raw_a);
  TermRef op_b = mgr.mk_ite(fwd_b, m.w_value, raw_b);
  if (mutation) {
    op_a = apply(mutation->op_a_hook, ctx, op_a);
    op_b = apply(mutation->op_b_hook, ctx, op_b);
  }
  ctx.op_a = op_a;
  ctx.op_b = op_b;

  // Memory address and word index (shared by LW/SW).
  unsigned mem_idx_bits = 0;
  while ((1u << mem_idx_bits) < config.mem_words) ++mem_idx_bits;
  const TermRef addr = mgr.mk_add(op_a, m.d_imm);
  if (config.has_memory()) m.x_addr = addr;
  const TermRef widx =
      config.has_memory() && mem_idx_bits > 0
          ? mgr.mk_extract(addr, 2 + mem_idx_bits - 1, 2)
          : smt::kNullTerm;

  auto mem_read = [&]() {
    TermRef v = m.mem[0];
    for (unsigned w = 1; w < config.mem_words; ++w)
      v = mgr.mk_ite(mgr.mk_eq(widx, mgr.mk_const(mem_idx_bits, w)), m.mem[w], v);
    return v;
  };

  // Result mux over the supported opcode set.
  TermRef result = mgr.mk_const(xlen, 0);
  for (Opcode op : config.opcodes) {
    TermRef r;
    if (op == Opcode::LW) {
      r = mem_read();
    } else if (op == Opcode::SW) {
      continue;  // no register result
    } else if (op == Opcode::LUI) {
      r = m.d_imm;  // imm input is pre-shifted by the issuer
    } else {
      const TermRef b_operand = isa::is_rtype(op) ? op_b : m.d_imm;
      r = isa::alu_symbolic(mgr, op, op_a, b_operand);
    }
    if (mutation && mutation->result_hook && mutation->target == op) {
      r = mutation->result_hook(ctx, r);
    }
    result = mgr.mk_ite(mgr.mk_eq(m.d_op, m.opcode_const(op)), r, result);
  }
  if (mutation && mutation->result_hook && mutation->target == Opcode::NOP) {
    // Target NOP = apply to the merged result (opcode-independent bugs).
    result = mutation->result_hook(ctx, result);
  }

  // Writeback latch.
  TermRef wen = mgr.mk_false();
  for (Opcode op : config.opcodes) {
    if (!isa::writes_register(op)) continue;
    wen = mgr.mk_or(wen, mgr.mk_eq(m.d_op, m.opcode_const(op)));
  }
  wen = mgr.mk_and(wen, m.d_valid);
  if (mutation) wen = apply(mutation->wen_hook, ctx, wen);

  ts.set_next(m.w_valid, m.d_valid);
  ts.set_next(m.w_wen, wen);
  ts.set_next(m.w_rd, m.d_rd);
  ts.set_next(m.w_value, result);

  // Register file write (x0 never written).
  TermRef w_commit = mgr.mk_and(m.w_valid, m.w_wen);
  TermRef wdata = m.w_value;
  if (mutation) wdata = apply(mutation->wdata_hook, ctx, wdata);
  ts.set_next(m.regs[0], m.regs[0]);
  for (unsigned i = 1; i < 32; ++i) {
    const TermRef hit = mgr.mk_and(w_commit, mgr.mk_eq(m.w_rd, mgr.mk_const(5, i)));
    ts.set_next(m.regs[i], mgr.mk_ite(hit, wdata, m.regs[i]));
  }

  // Data memory write (SW commits in the X stage).
  if (config.has_memory()) {
    TermRef store_en =
        mgr.mk_and(m.d_valid, mgr.mk_eq(m.d_op, m.opcode_const(Opcode::SW)));
    TermRef store_addr = addr;
    TermRef store_data = op_b;
    if (mutation) {
      store_addr = apply(mutation->store_addr_hook, ctx, store_addr);
      store_data = apply(mutation->store_data_hook, ctx, store_data);
    }
    const TermRef store_widx = mem_idx_bits > 0
                                   ? mgr.mk_extract(store_addr, 2 + mem_idx_bits - 1, 2)
                                   : smt::kNullTerm;
    for (unsigned w = 0; w < config.mem_words; ++w) {
      const TermRef hit =
          mgr.mk_and(store_en, mgr.mk_eq(store_widx, mgr.mk_const(mem_idx_bits, w)));
      ts.set_next(m.mem[w], mgr.mk_ite(hit, store_data, m.mem[w]));
    }
  } else {
    for (unsigned w = 0; w < config.mem_words; ++w) ts.set_next(m.mem[w], m.mem[w]);
  }

  return m;
}

}  // namespace sepe::proc
