#include "proc/mutations.hpp"

#include "isa/semantics.hpp"

namespace sepe::proc {

using isa::Opcode;
using smt::TermManager;
using smt::TermRef;

namespace {

/// Single-instruction bug: replace the target opcode's result with an
/// alternative function of the same operands.
Mutation functional_bug(Opcode target, const char* name, const char* description,
                        std::function<TermRef(const MutationCtx&)> wrong) {
  Mutation m;
  m.name = name;
  m.description = description;
  m.single_instruction = true;
  m.target = target;
  m.result_hook = [wrong](const MutationCtx& ctx, TermRef) { return wrong(ctx); };
  return m;
}

/// Multi-instruction bug: the rs1 forwarding path is dead for one
/// consuming opcode — the consumer silently reads the stale register file.
Mutation fwd_a_dead_for(Opcode consumer) {
  Mutation m;
  m.name = std::string("fwd_a_dead_") + isa::opcode_name(consumer);
  m.description = std::string("rs1 bypass disabled when the consumer is ") +
                  isa::opcode_name(consumer);
  m.single_instruction = false;
  m.target = consumer;
  m.fwd_a_hook = [consumer](const MutationCtx& ctx, TermRef correct) {
    TermManager& mgr = *ctx.mgr;
    const TermRef is_consumer = mgr.mk_eq(
        ctx.d_op, mgr.mk_const(kOpcodeBits, static_cast<std::uint64_t>(consumer)));
    return mgr.mk_and(correct, mgr.mk_not(is_consumer));
  };
  return m;
}

Mutation fwd_b_dead_for(Opcode consumer) {
  Mutation m;
  m.name = std::string("fwd_b_dead_") + isa::opcode_name(consumer);
  m.description = std::string("rs2 bypass disabled when the consumer is ") +
                  isa::opcode_name(consumer);
  m.single_instruction = false;
  m.target = consumer;
  m.fwd_b_hook = [consumer](const MutationCtx& ctx, TermRef correct) {
    TermManager& mgr = *ctx.mgr;
    const TermRef is_consumer = mgr.mk_eq(
        ctx.d_op, mgr.mk_const(kOpcodeBits, static_cast<std::uint64_t>(consumer)));
    return mgr.mk_and(correct, mgr.mk_not(is_consumer));
  };
  return m;
}

}  // namespace

std::vector<Mutation> table1_single_instruction_bugs() {
  std::vector<Mutation> bugs;

  bugs.push_back(functional_bug(Opcode::ADD, "add_carry_stuck",
                                "ADD computes a+b+1 (carry-in stuck at 1)",
                                [](const MutationCtx& c) {
                                  TermManager& mgr = *c.mgr;
                                  const TermRef one = mgr.mk_const(c.xlen, 1);
                                  return mgr.mk_add(mgr.mk_add(c.op_a, c.op_b), one);
                                }));
  bugs.push_back(functional_bug(Opcode::SUB, "sub_missing_inc",
                                "SUB computes a+~b (missing +1 of two's complement)",
                                [](const MutationCtx& c) {
                                  TermManager& mgr = *c.mgr;
                                  return mgr.mk_add(c.op_a, mgr.mk_not(c.op_b));
                                }));
  bugs.push_back(functional_bug(Opcode::XOR, "xor_as_or", "XOR computes OR",
                                [](const MutationCtx& c) {
                                  return c.mgr->mk_or(c.op_a, c.op_b);
                                }));
  bugs.push_back(functional_bug(Opcode::OR, "or_as_xor", "OR computes XOR",
                                [](const MutationCtx& c) {
                                  return c.mgr->mk_xor(c.op_a, c.op_b);
                                }));
  bugs.push_back(functional_bug(Opcode::AND, "and_operand_complement",
                                "AND computes a & ~b",
                                [](const MutationCtx& c) {
                                  return c.mgr->mk_and(c.op_a, c.mgr->mk_not(c.op_b));
                                }));
  bugs.push_back(functional_bug(Opcode::SLT, "slt_unsigned",
                                "SLT performs the unsigned comparison",
                                [](const MutationCtx& c) {
                                  return c.mgr->mk_zext(c.mgr->mk_ult(c.op_a, c.op_b),
                                                        c.xlen);
                                }));
  bugs.push_back(functional_bug(Opcode::SLTU, "sltu_signed",
                                "SLTU performs the signed comparison",
                                [](const MutationCtx& c) {
                                  return c.mgr->mk_zext(c.mgr->mk_slt(c.op_a, c.op_b),
                                                        c.xlen);
                                }));
  bugs.push_back(functional_bug(Opcode::SRA, "sra_logical",
                                "SRA shifts in zeros (behaves like SRL)",
                                [](const MutationCtx& c) {
                                  return isa::alu_symbolic(*c.mgr, Opcode::SRL, c.op_a,
                                                           c.op_b);
                                }));
  bugs.push_back(functional_bug(Opcode::MULH, "mulh_unsigned",
                                "MULH returns the unsigned high product (MULHU)",
                                [](const MutationCtx& c) {
                                  return isa::alu_symbolic(*c.mgr, Opcode::MULHU, c.op_a,
                                                           c.op_b);
                                }));
  bugs.push_back(functional_bug(Opcode::XORI, "xori_as_ori", "XORI computes ORI",
                                [](const MutationCtx& c) {
                                  return c.mgr->mk_or(c.op_a, c.d_imm);
                                }));
  bugs.push_back(functional_bug(Opcode::SLLI, "slli_amount_lsb_stuck",
                                "SLLI shift amount LSB stuck at 0",
                                [](const MutationCtx& c) {
                                  TermManager& mgr = *c.mgr;
                                  const TermRef masked = mgr.mk_and(
                                      c.d_imm, mgr.mk_const(c.xlen, ~std::uint64_t(1)));
                                  return isa::alu_symbolic(mgr, Opcode::SLL, c.op_a,
                                                           masked);
                                }));
  bugs.push_back(functional_bug(Opcode::SRAI, "srai_logical",
                                "SRAI shifts in zeros (behaves like SRLI)",
                                [](const MutationCtx& c) {
                                  return isa::alu_symbolic(*c.mgr, Opcode::SRL, c.op_a,
                                                           c.d_imm);
                                }));
  // SW: store datapath picks rs1's value instead of rs2's — uniform for
  // every SW, invisible to EDDI-V duplication.
  {
    Mutation m;
    m.name = "sw_stores_rs1";
    m.description = "SW writes the rs1 (address base) value instead of rs2";
    m.single_instruction = true;
    m.target = Opcode::SW;
    m.store_data_hook = [](const MutationCtx& c, TermRef) { return c.op_a; };
    bugs.push_back(m);
  }
  return bugs;
}

std::vector<Mutation> figure4_multi_instruction_bugs(bool with_memory) {
  std::vector<Mutation> bugs;

  // 1-8: rs1 bypass dead for one consumer opcode.
  for (Opcode op : {Opcode::ADD, Opcode::SUB, Opcode::XOR, Opcode::OR, Opcode::AND,
                    Opcode::SLT, Opcode::SRA, Opcode::MUL})
    bugs.push_back(fwd_a_dead_for(op));
  // 9-12: rs2 bypass dead for one consumer opcode.
  for (Opcode op : {Opcode::ADD, Opcode::SUB, Opcode::XOR, Opcode::SLTU})
    bugs.push_back(fwd_b_dead_for(op));

  // 13: bypass tag comparator aliases on the low 4 bits of rd.
  {
    Mutation m;
    m.name = "fwd_rd_alias4";
    m.description = "bypass rd comparator ignores rd[4]: x(i) aliases x(i+16)";
    m.single_instruction = false;
    m.fwd_a_hook = [](const MutationCtx& c, TermRef) {
      TermManager& mgr = *c.mgr;
      const TermRef lo_w = mgr.mk_extract(c.w_rd, 3, 0);
      const TermRef lo_s = mgr.mk_extract(c.d_rs1, 3, 0);
      return mgr.mk_and(mgr.mk_and(c.w_valid, c.w_wen),
                        mgr.mk_and(mgr.mk_eq(lo_w, lo_s),
                                   mgr.mk_ne(c.d_rs1, mgr.mk_const(5, 0))));
    };
    bugs.push_back(m);
  }

  // 14: forwarded rs1 value corrupted (bypass mux bit flip).
  {
    Mutation m;
    m.name = "fwd_a_value_flip";
    m.description = "bypassed rs1 operand has bit 0 flipped";
    m.single_instruction = false;
    m.op_a_hook = [](const MutationCtx& c, TermRef correct) {
      TermManager& mgr = *c.mgr;
      return mgr.mk_ite(c.fwd_a, mgr.mk_xor(correct, mgr.mk_const(c.xlen, 1)), correct);
    };
    bugs.push_back(m);
  }
  // 15: forwarded rs2 value corrupted.
  {
    Mutation m;
    m.name = "fwd_b_value_flip";
    m.description = "bypassed rs2 operand has its MSB flipped";
    m.single_instruction = false;
    m.op_b_hook = [](const MutationCtx& c, TermRef correct) {
      TermManager& mgr = *c.mgr;
      const TermRef msb = mgr.mk_const(c.xlen, 1ULL << (c.xlen - 1));
      return mgr.mk_ite(c.fwd_b, mgr.mk_xor(correct, msb), correct);
    };
    bugs.push_back(m);
  }

  // 16: back-to-back writes to the same rd lose the second write.
  {
    Mutation m;
    m.name = "wen_drop_same_rd";
    m.description = "write-enable dropped when writing the rd just written";
    m.single_instruction = false;
    m.wen_hook = [](const MutationCtx& c, TermRef correct) {
      TermManager& mgr = *c.mgr;
      const TermRef collide = mgr.mk_and(mgr.mk_and(c.w_valid, c.w_wen),
                                         mgr.mk_eq(c.w_rd, c.d_rd));
      return mgr.mk_and(correct, mgr.mk_not(collide));
    };
    bugs.push_back(m);
  }

  // 17: writeback data corrupted when the in-flight consumer reads it.
  {
    Mutation m;
    m.name = "wdata_corrupt_on_read";
    m.description = "regfile write data +1 when the X-stage reads the same register";
    m.single_instruction = false;
    m.wdata_hook = [](const MutationCtx& c, TermRef correct) {
      TermManager& mgr = *c.mgr;
      const TermRef read_hit = mgr.mk_and(
          c.d_valid, mgr.mk_or(mgr.mk_eq(c.w_rd, c.d_rs1), mgr.mk_eq(c.w_rd, c.d_rs2)));
      return mgr.mk_ite(read_hit, mgr.mk_add(correct, mgr.mk_const(c.xlen, 1)), correct);
    };
    bugs.push_back(m);
  }

  // 18: result corrupted when the previous instruction targets the same rd.
  {
    Mutation m;
    m.name = "result_corrupt_same_rd_pair";
    m.description = "X-stage result xor 2 when the W-stage writes the same rd";
    m.single_instruction = false;
    m.target = Opcode::NOP;  // opcode-independent: applied to merged result
    m.result_hook = [](const MutationCtx& c, TermRef correct) {
      TermManager& mgr = *c.mgr;
      const TermRef collide = mgr.mk_and(mgr.mk_and(c.w_valid, c.w_wen),
                                         mgr.mk_eq(c.w_rd, c.d_rd));
      return mgr.mk_ite(collide, mgr.mk_xor(correct, mgr.mk_const(c.xlen, 2)), correct);
    };
    bugs.push_back(m);
  }

  if (with_memory) {
    // 19: stores never see the bypass (stale rs2 on store-after-compute).
    {
      Mutation m;
      m.name = "store_no_bypass";
      m.description = "SW data path bypass disabled (stores stale rs2)";
      m.single_instruction = false;
      m.target = Opcode::SW;
      m.store_data_hook = [](const MutationCtx& c, TermRef correct) {
        TermManager& mgr = *c.mgr;
        // Reconstruct the un-forwarded value: if the bypass was hit, the
        // correct term is w_value; the bug stores the stale value +0
        // corrupted via xor with w_value ^ correct == 0... simplest: when
        // fwd_b fired, corrupt the data by adding 1 (models stale read).
        return mgr.mk_ite(c.fwd_b, mgr.mk_add(correct, mgr.mk_const(c.xlen, 1)), correct);
      };
      bugs.push_back(m);
    }
    // 20: store address off by one word when the base was bypassed.
    {
      Mutation m;
      m.name = "store_addr_bypass_skew";
      m.description = "SW address +4 when the base register was bypassed";
      m.single_instruction = false;
      m.target = Opcode::SW;
      m.store_addr_hook = [](const MutationCtx& c, TermRef correct) {
        TermManager& mgr = *c.mgr;
        return mgr.mk_ite(c.fwd_a, mgr.mk_add(correct, mgr.mk_const(c.xlen, 4)), correct);
      };
      bugs.push_back(m);
    }
  } else {
    // Keep the catalog at 20 entries: two more bypass-dead variants.
    bugs.push_back(fwd_a_dead_for(Opcode::SLTU));
    bugs.push_back(fwd_b_dead_for(Opcode::AND));
  }
  return bugs;
}

}  // namespace sepe::proc
