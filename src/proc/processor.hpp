// processor.hpp — the design under verification: a pipelined RISC-V core
// as a symbolic transition system ("RideCore-lite").
//
// The paper evaluates on RIDECORE, a superscalar out-of-order Verilog
// core, converted to BTOR2 via Yosys. This repository substitutes a
// parameterized in-order pipeline built directly as a TransitionSystem
// (see DESIGN.md "Substitutions" for why this preserves the experiments'
// behaviour). The pipeline has three stages:
//
//   D (decode latch) -> X (execute: regfile read + forwarding + ALU +
//   memory access) -> W (writeback latch -> register file write)
//
// with a full operand-forwarding path W->X, so back-to-back dependent
// instructions execute without stalls — and so that *forwarding logic* is
// available for realistic multiple-instruction bug injection.
//
// Instructions enter as decoded field bundles (valid, op, rd, rs1, rs2,
// imm). The QED modules (src/qed) drive these inputs; the imm input
// carries the already-extended xlen-wide operand.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "isa/isa.hpp"
#include "isa/semantics.hpp"
#include "ts/transition_system.hpp"

namespace sepe::proc {

/// Static configuration of the core.
struct ProcConfig {
  unsigned xlen = 8;        // datapath width (reduced for BMC tractability)
  unsigned mem_words = 8;   // data memory words (power of two)
  std::vector<isa::Opcode> opcodes;  // instruction subset implemented

  /// ALU-only subset used by most benches (no memory instructions).
  static ProcConfig alu_subset(unsigned xlen);
  /// ALU + LW/SW.
  static ProcConfig with_memory(unsigned xlen);

  bool supports(isa::Opcode op) const;
  bool has_memory() const;
};

/// Execute-stage view handed to mutation hooks: everything a realistic
/// RTL edit could key on.
struct MutationCtx {
  smt::TermManager* mgr = nullptr;
  unsigned xlen = 0;
  // Decode latch (instruction currently in X).
  smt::TermRef d_valid, d_op, d_rd, d_rs1, d_rs2, d_imm;
  // Writeback latch (previous instruction).
  smt::TermRef w_valid, w_wen, w_rd, w_value;
  // Operand values after forwarding.
  smt::TermRef op_a, op_b;
  // Forwarding hit conditions (before any mutation).
  smt::TermRef fwd_a, fwd_b;
};

/// Term-rewriting hook: receives the correct term, returns the mutated
/// one. Hooks that are not set leave the design healthy at that point.
using TermHook = std::function<smt::TermRef(const MutationCtx&, smt::TermRef)>;

/// An injected RTL bug. `single_instruction` distinguishes Table-1 bugs
/// (uniform corruption of one instruction's function — invisible to
/// SQED's self-consistency) from Figure-4 bugs (sequence-dependent).
struct Mutation {
  std::string name;
  std::string description;
  bool single_instruction = false;
  isa::Opcode target = isa::Opcode::NOP;  // informational

  TermHook result_hook;      // rewrites the X-stage ALU/load result
  TermHook fwd_a_hook;       // rewrites the rs1-forwarding condition
  TermHook fwd_b_hook;       // rewrites the rs2-forwarding condition
  TermHook op_a_hook;        // rewrites the forwarded rs1 operand value
  TermHook op_b_hook;        // rewrites the forwarded rs2 operand value
  TermHook wen_hook;         // rewrites the register write-enable
  TermHook store_data_hook;  // rewrites SW data
  TermHook store_addr_hook;  // rewrites SW address
  TermHook wdata_hook;       // rewrites the value written to the regfile
};

/// A built processor model: the transition system plus handles to its
/// interface, for the QED modules and tests.
struct ProcModel {
  ProcConfig config;
  ts::TransitionSystem* ts = nullptr;

  // Inputs (decoded instruction bundle).
  smt::TermRef in_valid, in_op, in_rd, in_rs1, in_rs2, in_imm;

  // Architectural state.
  std::vector<smt::TermRef> regs;  // 32 registers
  std::vector<smt::TermRef> mem;   // config.mem_words words

  // Pipeline latches (observation points for QED-ready logic).
  smt::TermRef d_valid, d_op, d_rd, d_rs1, d_rs2, d_imm;
  smt::TermRef w_valid, w_wen, w_rd, w_value;

  // X-stage effective address term (LW/SW), for QED address-range
  // assumptions; kNullTerm when the config has no memory instructions.
  smt::TermRef x_addr = smt::kNullTerm;

  /// 1-bit term: pipeline holds no in-flight instruction.
  smt::TermRef drained() const;

  /// 6-bit opcode id constant for comparisons against in_op/d_op.
  smt::TermRef opcode_const(isa::Opcode op) const;
};

constexpr unsigned kOpcodeBits = 6;

/// Build the pipeline into `ts`, optionally injecting a mutation.
ProcModel build_processor(ts::TransitionSystem& ts, const ProcConfig& config,
                          const Mutation* mutation = nullptr,
                          const std::string& name_prefix = "duv");

}  // namespace sepe::proc
