#include "bmc/kind.hpp"

#include <cassert>
#include <string>
#include <unordered_map>

#include "smt/subst.hpp"
#include "util/stopwatch.hpp"

namespace sepe::bmc {

using smt::Result;
using smt::SubstMap;
using smt::TermRef;

namespace {

/// The inductive-step unroller: a window of fully symbolic steps (no
/// init), constraints asserted at every step, with per-step "good"
/// literals. Incremental: growing the window reuses all prior clauses.
class InductiveWindow {
 public:
  InductiveWindow(const ts::TransitionSystem& ts, const sat::SolverConfig& config,
                  bool plaisted_greenbaum, std::shared_ptr<smt::ConeCache> cone_cache,
                  sat::BackendKind backend, sat::SharingContext sharing)
      : ts_(ts),
        mgr_(ts.mgr()),
        solver_(mgr_, config, plaisted_greenbaum, std::move(cone_cache), backend,
                sharing) {}

  /// Ensure steps 0..k exist. Returns the "any bad at step k" term.
  TermRef extend_to(unsigned k) {
    while (maps_.size() <= k) {
      const unsigned t = static_cast<unsigned>(maps_.size());
      SubstMap map;
      if (t == 0) {
        for (TermRef s : ts_.states()) map[s] = fresh_copy(s, 0);
      } else {
        SubstMap& prev = maps_[t - 1];
        SubstMap& prev_cache = caches_[t - 1];
        for (TermRef s : ts_.states())
          map[s] = smt::substitute(mgr_, ts_.next_of(s), prev, &prev_cache);
      }
      for (TermRef in : ts_.inputs()) map[in] = fresh_copy(in, t);
      maps_.push_back(std::move(map));
      caches_.emplace_back();
      for (TermRef c : ts_.constraints())
        solver_.assert_formula(smt::substitute(mgr_, c, maps_[t], &caches_[t]));
      bads_.push_back(bad_at(t));
    }
    return bads_[k];
  }

  /// Pairwise state-vector disequality between steps i and j. Memoized:
  /// the simple-path pass re-requests all O(k²) pairs every iteration,
  /// and rebuilding each disequality cone costs a hash-cons walk over
  /// every state even when the result node already exists.
  TermRef states_differ(unsigned i, unsigned j) {
    const std::uint64_t key = (static_cast<std::uint64_t>(i) << 32) | j;
    if (const auto it = differ_memo_.find(key); it != differ_memo_.end())
      return it->second;
    std::vector<TermRef> diffs;
    for (TermRef s : ts_.states())
      diffs.push_back(mgr_.mk_ne(maps_[i].at(s), maps_[j].at(s)));
    const TermRef differ = mgr_.mk_or_many(diffs);
    differ_memo_.emplace(key, differ);
    return differ;
  }

  smt::SmtSolver& solver() { return solver_; }
  smt::TermManager& mgr() { return mgr_; }

 private:
  TermRef fresh_copy(TermRef var, unsigned step) {
    return mgr_.mk_var("kind." + mgr_.node(var).name + "@" + std::to_string(step),
                       mgr_.width(var));
  }

  TermRef bad_at(unsigned t) {
    std::vector<TermRef> bad_terms;
    for (TermRef b : ts_.bads())
      bad_terms.push_back(smt::substitute(mgr_, b, maps_[t], &caches_[t]));
    return mgr_.mk_or_many(bad_terms);
  }

  const ts::TransitionSystem& ts_;
  smt::TermManager& mgr_;
  smt::SmtSolver solver_;
  std::vector<SubstMap> maps_;
  std::vector<SubstMap> caches_;
  std::vector<TermRef> bads_;
  std::unordered_map<std::uint64_t, TermRef> differ_memo_;
};

}  // namespace

KInductionResult prove_by_k_induction(const ts::TransitionSystem& ts,
                                      const KInductionOptions& options) {
  assert(ts.complete());
  Stopwatch clock;
  KInductionResult result;

  // The two internal solvers are distinct pool members: the base-case Bmc
  // revisits the BMC prover's epoch chain exactly (identical blast
  // stream), which is what lets the vault seed it.
  sat::SharingContext window_sharing = options.sharing;
  window_sharing.member = options.sharing.member + 1;
  Bmc base(ts, options.solver_config, options.plaisted_greenbaum,
           options.cone_cache, options.backend, options.sharing);
  InductiveWindow window(ts, options.solver_config, options.plaisted_greenbaum,
                         options.cone_cache, options.backend, window_sharing);

  const auto remaining = [&]() {
    return options.max_seconds > 0 ? options.max_seconds - clock.seconds() : 0.0;
  };
  const auto out_of_time = [&]() {
    return options.max_seconds > 0 && clock.seconds() >= options.max_seconds;
  };

  const auto stopped = [&]() {
    return options.stop && options.stop->load(std::memory_order_relaxed);
  };
  const auto tally_conflicts = [&]() {
    const sat::Backend& wsat = window.solver().sat_solver();
    const BmcStats& bs = base.stats();
    result.solver_conflicts = bs.solver_conflicts + wsat.num_conflicts();
    result.solver_propagations = bs.solver_propagations + wsat.num_propagations();
    result.solver_decisions = bs.solver_decisions + wsat.num_decisions();
    result.cnf_vars = bs.cnf_vars + static_cast<std::uint64_t>(wsat.num_vars());
    result.cnf_clauses = bs.cnf_clauses + wsat.num_clauses();
    const smt::BitBlaster::ConeStats& wc = window.solver().cone_stats();
    result.cone_lookups = bs.cone_lookups + wc.lookups;
    result.cone_hits = bs.cone_hits + wc.hits;
    result.cone_clauses_replayed = bs.cone_clauses_replayed + wc.clauses_replayed;
    result.eliminated_vars = bs.eliminated_vars + wsat.num_eliminated_vars();
    result.subsumed_clauses = bs.subsumed_clauses + wsat.num_subsumed_clauses();
    result.vivified_clauses = bs.vivified_clauses + wsat.num_vivified_clauses();
    result.hit_memory_limit = bs.hit_memory_limit || wsat.out_of_memory();
    result.sat_retries = bs.sat_retries + wsat.num_retries();
    result.clauses_exported = bs.clauses_exported + wsat.num_clauses_exported();
    result.clauses_imported = bs.clauses_imported + wsat.num_clauses_imported();
    result.vault_hits = bs.vault_hits + wsat.num_vault_hits();
  };

  for (unsigned k = 1; k <= options.max_k; ++k) {
    // --- base: any violation within k steps from init? ---
    BmcOptions bo;
    bo.max_bound = k;
    bo.conflict_budget_per_bound = options.conflict_budget;
    bo.max_seconds = remaining();
    bo.stop = options.stop;
    const auto w = base.check(bo);
    if (w) {
      result.status = KInductionStatus::Falsified;
      result.k = k;
      result.witness = w;
      result.seconds = clock.seconds();
      tally_conflicts();
      return result;
    }
    if (base.stats().cancelled || stopped()) break;
    if (base.stats().hit_resource_limit || out_of_time()) break;

    // --- inductive step: k good steps, bad at step k. Unsat => proved. ---
    const TermRef bad_k = window.extend_to(k);
    std::vector<TermRef> assumptions;
    for (unsigned t = 0; t < k; ++t)
      assumptions.push_back(window.mgr().mk_not(window.extend_to(t)));
    if (options.simple_path) {
      for (unsigned i = 0; i <= k; ++i)
        for (unsigned j = i + 1; j <= k; ++j)
          assumptions.push_back(window.states_differ(i, j));
    }
    assumptions.push_back(bad_k);

    window.solver().set_conflict_budget(options.conflict_budget);
    window.solver().set_time_budget(remaining());
    window.solver().set_stop_flag(options.stop);
    const Result r = window.solver().check(assumptions);
    if (r == Result::Unsat) {
      result.status = KInductionStatus::Proved;
      result.k = k;
      result.seconds = clock.seconds();
      tally_conflicts();
      return result;
    }
    if (r == Result::Unknown || out_of_time()) break;
    result.k = k;  // Sat: not yet inductive, deepen
  }

  result.cancelled = stopped();
  result.hit_resource_limit = !result.cancelled && out_of_time();
  result.seconds = clock.seconds();
  tally_conflicts();
  return result;
}

}  // namespace sepe::bmc
