#include "bmc/bmc.hpp"

#include <cassert>
#include <sstream>

#include "util/stopwatch.hpp"

namespace sepe::bmc {

using smt::Result;
using smt::SubstMap;
using smt::TermRef;

Bmc::Bmc(const ts::TransitionSystem& ts, const sat::SolverConfig& config,
         bool plaisted_greenbaum, std::shared_ptr<smt::ConeCache> cone_cache,
         sat::BackendKind backend, sat::SharingContext sharing)
    : ts_(ts),
      mgr_(ts.mgr()),
      solver_(mgr_, config, plaisted_greenbaum, std::move(cone_cache), backend,
              sharing) {
  assert(ts.complete() && "every state needs a next function");
}

TermRef Bmc::timed(TermRef var, unsigned step) const {
  assert(step < time_maps_.size());
  const auto it = time_maps_[step].find(var);
  assert(it != time_maps_[step].end());
  return it->second;
}

void Bmc::unroll_to(unsigned step) {
  while (time_maps_.size() <= step) {
    const unsigned t = static_cast<unsigned>(time_maps_.size());
    SubstMap map;
    if (t == 0) {
      // Step 0: states take their init values (fresh vars when
      // unconstrained), inputs are fresh.
      for (TermRef s : ts_.states()) {
        const TermRef init = ts_.init_of(s);
        if (init != smt::kNullTerm) {
          map[s] = init;  // init terms must be constant/input-free by construction
        } else {
          map[s] = mgr_.mk_var(mgr_.node(s).name + "@0", mgr_.width(s));
        }
      }
    } else {
      // Step t: states are the previous step's next-functions.
      SubstMap& prev = time_maps_[t - 1];
      SubstMap& prev_cache = subst_caches_[t - 1];
      for (TermRef s : ts_.states()) {
        map[s] = smt::substitute(mgr_, ts_.next_of(s), prev, &prev_cache);
      }
    }
    for (TermRef in : ts_.inputs())
      map[in] = mgr_.mk_var(mgr_.node(in).name + "@" + std::to_string(t), mgr_.width(in));

    time_maps_.push_back(std::move(map));
    subst_caches_.emplace_back();

    // Step constraints hold at every unrolled step.
    for (TermRef c : ts_.constraints()) {
      solver_.assert_formula(
          smt::substitute(mgr_, c, time_maps_[t], &subst_caches_[t]));
    }
    if (t == 0) {
      for (TermRef c : ts_.init_constraints()) {
        solver_.assert_formula(
            smt::substitute(mgr_, c, time_maps_[0], &subst_caches_[0]));
      }
    }
  }
}

void Bmc::snapshot_solver_stats() {
  const sat::Backend& sat = solver_.sat_solver();
  stats_.solver_conflicts = sat.num_conflicts();
  stats_.solver_propagations = sat.num_propagations();
  stats_.solver_decisions = sat.num_decisions();
  stats_.cnf_vars = static_cast<std::uint64_t>(sat.num_vars());
  stats_.cnf_clauses = sat.num_clauses();
  stats_.eliminated_vars = sat.num_eliminated_vars();
  stats_.subsumed_clauses = sat.num_subsumed_clauses();
  stats_.vivified_clauses = sat.num_vivified_clauses();
  const smt::BitBlaster::ConeStats& cone = solver_.cone_stats();
  stats_.cone_lookups = cone.lookups;
  stats_.cone_hits = cone.hits;
  stats_.cone_clauses_replayed = cone.clauses_replayed;
  stats_.hit_memory_limit = sat.out_of_memory();
  stats_.sat_retries = sat.num_retries();
  stats_.clauses_exported = sat.num_clauses_exported();
  stats_.clauses_imported = sat.num_clauses_imported();
  stats_.vault_hits = sat.num_vault_hits();
}

std::optional<Witness> Bmc::check(const BmcOptions& options) {
  Stopwatch clock;
  stats_ = BmcStats{};
  // Lifetime-cumulative, so an early exit (stop flag, wall cap) before the
  // first solve of this call still reports the conflicts of earlier calls.
  snapshot_solver_stats();

  // Reset resource budgets before anything else: a capped earlier call
  // must not leave its (smaller) budgets armed for an uncapped one.
  solver_.set_conflict_budget(0);
  solver_.set_time_budget(0.0);
  solver_.set_stop_flag(options.stop);

  // Bounds below the frontier were proven violation-free by earlier
  // calls; assertions are monotone, so those verdicts stay valid and the
  // sweep resumes where it left off.
  stats_.bounds_checked =
      frontier_ > options.max_bound ? options.max_bound + 1 : frontier_;

  for (unsigned bound = frontier_; bound <= options.max_bound; ++bound) {
    if (options.stop && options.stop->load(std::memory_order_relaxed)) {
      stats_.cancelled = true;
      break;
    }
    if (options.max_seconds > 0 && clock.seconds() > options.max_seconds) {
      stats_.hit_resource_limit = true;
      break;
    }
    unroll_to(bound);
    stats_.bounds_checked = bound + 1;

    // One solve per bound: assume the disjunction of all bad conditions.
    std::vector<TermRef> bad_terms;
    for (TermRef b : ts_.bads())
      bad_terms.push_back(
          smt::substitute(mgr_, b, time_maps_[bound], &subst_caches_[bound]));
    const TermRef any_bad = mgr_.mk_or_many(bad_terms);

    solver_.set_conflict_budget(options.conflict_budget_per_bound);
    // Hand the solver the remaining wall budget so one hard bound cannot
    // overshoot the cap arbitrarily.
    if (options.max_seconds > 0)
      solver_.set_time_budget(options.max_seconds - clock.seconds());
    const Result r = solver_.check({any_bad});
    snapshot_solver_stats();
    if (r == Result::Unknown) {
      if (solver_.stop_requested()) {
        stats_.cancelled = true;
      } else {
        stats_.hit_resource_limit = true;
      }
      break;
    }
    if (r == Result::Sat) {
      Witness w;
      w.length = bound;
      // Identify which bad condition fired.
      for (std::size_t i = 0; i < bad_terms.size(); ++i) {
        if (solver_.value(bad_terms[i]).is_true()) {
          w.bad_index = i;
          w.bad_label = ts_.bad_labels()[i];
          break;
        }
      }
      for (unsigned t = 0; t <= bound; ++t) {
        smt::Assignment in_vals, st_vals;
        for (TermRef in : ts_.inputs())
          in_vals.emplace(in, solver_.value(time_maps_[t].at(in)));
        for (TermRef s : ts_.states())
          st_vals.emplace(s, solver_.value(time_maps_[t].at(s)));
        w.inputs.push_back(std::move(in_vals));
        w.states.push_back(std::move(st_vals));
      }
      stats_.seconds = clock.seconds();
      return w;
    }
    // Unsat: this bound is clean for good. Assert the refuted bad cone
    // false outright — it is implied by the unrolling, so this is sound,
    // and deeper bounds (or a later frontier-resumed call) get the
    // refutation as a unit fact for free instead of ever revisiting it.
    solver_.assert_formula(mgr_.mk_not(any_bad));
    frontier_ = bound + 1;
  }
  stats_.seconds = clock.seconds();
  return std::nullopt;
}

std::string witness_to_string(const ts::TransitionSystem& ts, const Witness& w) {
  std::ostringstream os;
  os << "counterexample of length " << w.length;
  if (!w.bad_label.empty()) os << " violating [" << w.bad_label << "]";
  os << "\n";
  for (unsigned t = 0; t <= w.length; ++t) {
    os << "  step " << t << ":\n";
    for (TermRef in : ts.inputs()) {
      const auto it = w.inputs[t].find(in);
      if (it != w.inputs[t].end())
        os << "    in  " << ts.mgr().node(in).name << " = " << it->second.to_hex()
           << "\n";
    }
    for (TermRef s : ts.states()) {
      const auto it = w.states[t].find(s);
      if (it != w.states[t].end())
        os << "    st  " << ts.mgr().node(s).name << " = " << it->second.to_hex() << "\n";
    }
  }
  return os.str();
}

}  // namespace sepe::bmc
