// bmc.hpp — bounded model checking over transition systems.
//
// The "Pono seat" of the reproduction (§6.2): given a TransitionSystem
// with bad-state conditions, unroll the transition relation step by step
// into the incremental SMT facade and search for a reachable bad state.
// A found violation yields a Witness — the counterexample trace whose
// length Figure 4 compares between SQED and SEPE-SQED.
#pragma once

#include <atomic>
#include <optional>
#include <string>
#include <vector>

#include "smt/eval.hpp"
#include "smt/smt_solver.hpp"
#include "smt/subst.hpp"
#include "ts/transition_system.hpp"

namespace sepe::bmc {

/// A counterexample trace.
struct Witness {
  unsigned length = 0;      // bad state holds after `length` steps
  std::size_t bad_index = 0;
  std::string bad_label;
  /// Per step 0..length: concrete values of inputs and states.
  std::vector<smt::Assignment> inputs;
  std::vector<smt::Assignment> states;
};

struct BmcOptions {
  unsigned max_bound = 20;
  /// Per-check() SAT conflict cap (0 = unlimited).
  std::uint64_t conflict_budget_per_bound = 0;
  /// Overall wall-clock cap in seconds (0 = none). When hit, check()
  /// returns nullopt with hit_resource_limit set in the stats.
  double max_seconds = 0.0;
  /// Cooperative cancellation: when non-null and set true (from any
  /// thread), check() aborts mid-sweep — the flag is threaded into the
  /// CDCL loop, so even a single hard bound is interrupted. A cancelled
  /// check() returns nullopt with stats().cancelled set.
  const std::atomic<bool>* stop = nullptr;
};

struct BmcStats {
  unsigned bounds_checked = 0;
  double seconds = 0.0;
  bool hit_resource_limit = false;
  bool cancelled = false;
  std::uint64_t solver_conflicts = 0;
};

/// The unrolling engine. One instance per (transition system, run).
class Bmc {
 public:
  explicit Bmc(const ts::TransitionSystem& ts);

  /// Search for any bad state reachable within options.max_bound steps.
  /// Nullopt = no violation found up to the bound (or resource limit hit —
  /// inspect stats().hit_resource_limit to distinguish).
  std::optional<Witness> check(const BmcOptions& options);

  const BmcStats& stats() const { return stats_; }

  /// The timed copy of a state/input variable at a step (for inspection
  /// and tests). Valid after check() has unrolled that far.
  smt::TermRef timed(smt::TermRef var, unsigned step) const;

 private:
  void unroll_to(unsigned step);

  const ts::TransitionSystem& ts_;
  smt::TermManager& mgr_;
  smt::SmtSolver solver_;
  /// step -> substitution (model var -> timed var/term).
  std::vector<smt::SubstMap> time_maps_;
  std::vector<smt::SubstMap> subst_caches_;
  BmcStats stats_;
};

/// Render a witness as a human-readable trace table.
std::string witness_to_string(const ts::TransitionSystem& ts, const Witness& w);

}  // namespace sepe::bmc
