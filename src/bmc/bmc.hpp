// bmc.hpp — bounded model checking over transition systems.
//
// The "Pono seat" of the reproduction (§6.2): given a TransitionSystem
// with bad-state conditions, unroll the transition relation step by step
// into the incremental SMT facade and search for a reachable bad state.
// A found violation yields a Witness — the counterexample trace whose
// length Figure 4 compares between SQED and SEPE-SQED.
#pragma once

#include <atomic>
#include <optional>
#include <string>
#include <vector>

#include "smt/eval.hpp"
#include "smt/smt_solver.hpp"
#include "smt/subst.hpp"
#include "ts/transition_system.hpp"

namespace sepe::bmc {

/// A counterexample trace.
struct Witness {
  unsigned length = 0;      // bad state holds after `length` steps
  std::size_t bad_index = 0;
  std::string bad_label;
  /// Per step 0..length: concrete values of inputs and states.
  std::vector<smt::Assignment> inputs;
  std::vector<smt::Assignment> states;
};

struct BmcOptions {
  unsigned max_bound = 20;
  /// Per-check() SAT conflict cap (0 = unlimited).
  std::uint64_t conflict_budget_per_bound = 0;
  /// Overall wall-clock cap in seconds (0 = none). When hit, check()
  /// returns nullopt with hit_resource_limit set in the stats.
  double max_seconds = 0.0;
  /// Cooperative cancellation: when non-null and set true (from any
  /// thread), check() aborts mid-sweep — the flag is threaded into the
  /// CDCL loop, so even a single hard bound is interrupted. A cancelled
  /// check() returns nullopt with stats().cancelled set.
  const std::atomic<bool>* stop = nullptr;
};

struct BmcStats {
  /// Bounds known violation-free, including ones proven by *earlier*
  /// check() calls on the same instance (the frontier): after
  /// check(max_bound=3) then check(max_bound=6), the second call reports
  /// the same stats a single check(max_bound=6) would have.
  unsigned bounds_checked = 0;
  double seconds = 0.0;
  bool hit_resource_limit = false;
  bool cancelled = false;
  // Lifetime-cumulative solver counters (deterministic proxies) and the
  // CNF size of the unrolled encoding so far.
  std::uint64_t solver_conflicts = 0;
  std::uint64_t solver_propagations = 0;
  std::uint64_t solver_decisions = 0;
  std::uint64_t cnf_vars = 0;
  std::uint64_t cnf_clauses = 0;
  // Cone-cache traffic of this instance's blaster (zero when no campaign
  // cache is attached; see smt/cone_cache.hpp).
  std::uint64_t cone_lookups = 0;
  std::uint64_t cone_hits = 0;
  std::uint64_t cone_clauses_replayed = 0;
  // Inprocessing counters of the underlying SAT engine (zero when
  // inprocessing is off or the backend has none; see docs/SOLVER.md).
  std::uint64_t eliminated_vars = 0;
  std::uint64_t subsumed_clauses = 0;
  std::uint64_t vivified_clauses = 0;
  // Robustness observables: true when the SAT engine degraded to Unknown
  // on its memory ceiling (implies hit_resource_limit), and transient
  // backend failures absorbed by retrying (docs/ROBUSTNESS.md).
  bool hit_memory_limit = false;
  std::uint64_t sat_retries = 0;
  // Learnt-clause sharing traffic (zero when sharing is off or the
  // backend cannot share; see sat/exchange.hpp).
  std::uint64_t clauses_exported = 0;
  std::uint64_t clauses_imported = 0;
  std::uint64_t vault_hits = 0;
};

/// The unrolling engine. One instance per (transition system, run).
///
/// check() is frontier-incremental: bounds proven violation-free stay
/// proven (assertions are monotone — unrolling only ever adds
/// constraints, and the bad condition is a retractable assumption), so a
/// repeated or deepened call resumes from the highest clean bound instead
/// of re-solving from 0. k-induction's base case leans on this: one new
/// solve per k instead of k re-solves, with learned clauses carried
/// across bounds by the incremental core.
class Bmc {
 public:
  /// `config` tunes the underlying CDCL heuristics (portfolio racing);
  /// `plaisted_greenbaum` = true opts into polarity-split encoding (the
  /// equivalence tests run both encodings against each other);
  /// `cone_cache` shares bit-blasted cones campaign-wide (cone_cache.hpp);
  /// `backend` picks the SAT engine (sat/backend.hpp);
  /// `sharing` attaches the engine to a campaign's learnt-clause pools
  /// (sat/exchange.hpp) — default-constructed, sharing is off.
  explicit Bmc(const ts::TransitionSystem& ts, const sat::SolverConfig& config = {},
               bool plaisted_greenbaum = false,
               std::shared_ptr<smt::ConeCache> cone_cache = nullptr,
               sat::BackendKind backend = sat::BackendKind::Native,
               sat::SharingContext sharing = {});

  /// Search for any bad state reachable within options.max_bound steps.
  /// Nullopt = no violation found up to the bound (or resource limit hit —
  /// inspect stats().hit_resource_limit to distinguish).
  std::optional<Witness> check(const BmcOptions& options);

  const BmcStats& stats() const { return stats_; }

  /// Bounds proven violation-free so far (the resume point of the next
  /// check() call).
  unsigned frontier() const { return frontier_; }

  /// The solver facade, for budget/stat inspection by tests and benches.
  const smt::SmtSolver& solver() const { return solver_; }

  /// The timed copy of a state/input variable at a step (for inspection
  /// and tests). Valid after check() has unrolled that far.
  smt::TermRef timed(smt::TermRef var, unsigned step) const;

 private:
  void unroll_to(unsigned step);
  void snapshot_solver_stats();

  const ts::TransitionSystem& ts_;
  smt::TermManager& mgr_;
  smt::SmtSolver solver_;
  /// step -> substitution (model var -> timed var/term).
  std::vector<smt::SubstMap> time_maps_;
  std::vector<smt::SubstMap> subst_caches_;
  BmcStats stats_;
  /// Number of leading bounds proven UNSAT across all check() calls.
  unsigned frontier_ = 0;
};

/// Render a witness as a human-readable trace table.
std::string witness_to_string(const ts::TransitionSystem& ts, const Witness& w);

}  // namespace sepe::bmc
