// kind.hpp — k-induction over transition systems.
//
// BMC (bmc.hpp) can only ever *find* violations; k-induction can also
// *prove their absence* unboundedly, the second engine a Pono-style
// model checker ships (§6.2 toolchain seat). For each k:
//
//   base      — no bad state is reachable within k steps from init
//               (delegated to the BMC unroller);
//   inductive — from ANY state satisfying the step constraints, k
//               consecutive good steps imply a good step k+1. The check
//               starts from a fully symbolic state: init values and
//               init constraints are deliberately not assumed.
//
// If the base check finds a trace the property is Falsified with a
// witness; if the inductive query is unsatisfiable the property is
// Proved for every depth; otherwise k grows until max_k, and the result
// is Unknown.
//
// An optional simple-path constraint (all states in the inductive
// window pairwise distinct) makes the method complete for finite
// systems at the cost of quadratically many disequalities.
#pragma once

#include <optional>

#include "bmc/bmc.hpp"

namespace sepe::bmc {

enum class KInductionStatus { Proved, Falsified, Unknown };

struct KInductionOptions {
  unsigned max_k = 10;
  /// Add pairwise state-disequality constraints over the inductive
  /// window (completeness for finite systems; expensive).
  bool simple_path = true;
  /// Per-solver-call conflict cap (0 = unlimited).
  std::uint64_t conflict_budget = 0;
  /// Overall wall-clock cap in seconds (0 = none).
  double max_seconds = 0.0;
  /// Cooperative cancellation, threaded into both the base-case BMC and
  /// the inductive-step solver (see BmcOptions::stop).
  const std::atomic<bool>* stop = nullptr;
  /// CDCL heuristics of both internal solvers (portfolio racing).
  sat::SolverConfig solver_config;
  /// Polarity-split (Plaisted–Greenbaum) bit-blasting in both internal
  /// solvers (see Bmc's constructor flag). Off = full Tseitin.
  bool plaisted_greenbaum = false;
  /// Campaign-wide cone sharing for both internal solvers (cone_cache.hpp).
  std::shared_ptr<smt::ConeCache> cone_cache;
  /// SAT engine for both internal solvers (sat/backend.hpp).
  sat::BackendKind backend = sat::BackendKind::Native;
  /// Learnt-clause sharing for both internal solvers (sat/exchange.hpp):
  /// the base-case Bmc shares as `sharing.member`, the inductive-window
  /// solver as `sharing.member + 1`. Default-constructed, sharing is off.
  sat::SharingContext sharing;
};

struct KInductionResult {
  KInductionStatus status = KInductionStatus::Unknown;
  /// k at which the proof closed / the counterexample was found.
  unsigned k = 0;
  /// Counterexample when Falsified.
  std::optional<Witness> witness;
  bool hit_resource_limit = false;
  bool cancelled = false;
  double seconds = 0.0;
  /// Totals across the base-case and inductive solvers: SAT work
  /// counters (deterministic proxies) and CNF sizes.
  std::uint64_t solver_conflicts = 0;
  std::uint64_t solver_propagations = 0;
  std::uint64_t solver_decisions = 0;
  std::uint64_t cnf_vars = 0;
  std::uint64_t cnf_clauses = 0;
  /// Cone-cache traffic across both solvers (zero when uncached).
  std::uint64_t cone_lookups = 0;
  std::uint64_t cone_hits = 0;
  std::uint64_t cone_clauses_replayed = 0;
  /// Inprocessing totals across both solvers (zero when off/unsupported).
  std::uint64_t eliminated_vars = 0;
  std::uint64_t subsumed_clauses = 0;
  std::uint64_t vivified_clauses = 0;
  /// Robustness observables across both solvers (docs/ROBUSTNESS.md).
  bool hit_memory_limit = false;
  std::uint64_t sat_retries = 0;
  /// Learnt-clause sharing traffic across both solvers (zero when off).
  std::uint64_t clauses_exported = 0;
  std::uint64_t clauses_imported = 0;
  std::uint64_t vault_hits = 0;
};

/// Run k-induction on every bad condition of `ts` (disjunctively: a
/// Falsified result pinpoints the violated one via the witness).
KInductionResult prove_by_k_induction(const ts::TransitionSystem& ts,
                                      const KInductionOptions& options);

}  // namespace sepe::bmc
