#include "isa/semantics.hpp"

#include <cassert>

namespace sepe::isa {

using smt::TermManager;
using smt::TermRef;

BitVec imm_to_xlen(std::int32_t imm, unsigned xlen) {
  // Architectural immediates are 12-bit two's complement; represent at 12
  // bits, then sign-extend or truncate onto the datapath width.
  const BitVec imm12(12, static_cast<std::uint64_t>(static_cast<std::int64_t>(imm)));
  if (xlen >= 12) return imm12.sext(xlen);
  return imm12.extract(xlen - 1, 0);
}

BitVec alu_concrete(Opcode op, const BitVec& a, const BitVec& b) {
  switch (op) {
    case Opcode::ADD:
    case Opcode::ADDI: return a + b;
    case Opcode::SUB: return a - b;
    case Opcode::SLL:
    case Opcode::SLLI: return a.shl_masked(b);
    case Opcode::SLT:
    case Opcode::SLTI: return a.slt(b).zext(a.width());
    case Opcode::SLTU:
    case Opcode::SLTIU: return a.ult(b).zext(a.width());
    case Opcode::XOR:
    case Opcode::XORI: return a ^ b;
    case Opcode::SRL:
    case Opcode::SRLI: return a.lshr_masked(b);
    case Opcode::SRA:
    case Opcode::SRAI: return a.ashr_masked(b);
    case Opcode::OR:
    case Opcode::ORI: return a | b;
    case Opcode::AND:
    case Opcode::ANDI: return a & b;
    case Opcode::MUL: return a * b;
    case Opcode::MULH: return a.mulh_ss(b);
    case Opcode::MULHSU: return a.mulh_su(b);
    case Opcode::MULHU: return a.mulh_uu(b);
    case Opcode::DIV: return a.sdiv(b);
    case Opcode::DIVU: return a.udiv(b);
    case Opcode::REM: return a.srem(b);
    case Opcode::REMU: return a.urem(b);
    default: break;
  }
  assert(false && "not an ALU opcode");
  return BitVec::zeros(a.width());
}

namespace {

/// Mask a shift amount to log2(xlen) bits, as RISC-V register shifts do.
TermRef mask_shift_amount(TermManager& mgr, TermRef amount, unsigned xlen) {
  unsigned log2 = 0;
  while ((1u << log2) < xlen) ++log2;
  const std::uint64_t mask = (1ULL << log2) - 1;
  return mgr.mk_and(amount, mgr.mk_const(xlen, mask));
}

/// High half of a product via widened multiply then extract. Widths above
/// 32 would exceed the 64-bit term limit; the ISA layer asserts xlen<=32.
TermRef mulh_symbolic(TermManager& mgr, Opcode op, TermRef a, TermRef b, unsigned xlen) {
  assert(xlen <= 32 && "mulh modelling needs 2*xlen <= 64");
  TermRef wa, wb;
  switch (op) {
    case Opcode::MULH:
      wa = mgr.mk_sext(a, 2 * xlen);
      wb = mgr.mk_sext(b, 2 * xlen);
      break;
    case Opcode::MULHU:
      wa = mgr.mk_zext(a, 2 * xlen);
      wb = mgr.mk_zext(b, 2 * xlen);
      break;
    case Opcode::MULHSU:
      wa = mgr.mk_sext(a, 2 * xlen);
      wb = mgr.mk_zext(b, 2 * xlen);
      break;
    default: assert(false); return a;
  }
  return mgr.mk_extract(mgr.mk_mul(wa, wb), 2 * xlen - 1, xlen);
}

}  // namespace

TermRef alu_symbolic(TermManager& mgr, Opcode op, TermRef a, TermRef b) {
  const unsigned xlen = mgr.width(a);
  assert(mgr.width(b) == xlen);
  switch (op) {
    case Opcode::ADD:
    case Opcode::ADDI: return mgr.mk_add(a, b);
    case Opcode::SUB: return mgr.mk_sub(a, b);
    case Opcode::SLL:
    case Opcode::SLLI: return mgr.mk_shl(a, mask_shift_amount(mgr, b, xlen));
    case Opcode::SLT:
    case Opcode::SLTI: return mgr.mk_zext(mgr.mk_slt(a, b), xlen);
    case Opcode::SLTU:
    case Opcode::SLTIU: return mgr.mk_zext(mgr.mk_ult(a, b), xlen);
    case Opcode::XOR:
    case Opcode::XORI: return mgr.mk_xor(a, b);
    case Opcode::SRL:
    case Opcode::SRLI: return mgr.mk_lshr(a, mask_shift_amount(mgr, b, xlen));
    case Opcode::SRA:
    case Opcode::SRAI: return mgr.mk_ashr(a, mask_shift_amount(mgr, b, xlen));
    case Opcode::OR:
    case Opcode::ORI: return mgr.mk_or(a, b);
    case Opcode::AND:
    case Opcode::ANDI: return mgr.mk_and(a, b);
    case Opcode::MUL: return mgr.mk_mul(a, b);
    case Opcode::MULH:
    case Opcode::MULHSU:
    case Opcode::MULHU: return mulh_symbolic(mgr, op, a, b, xlen);
    case Opcode::DIV: return mgr.mk_sdiv(a, b);
    case Opcode::DIVU: return mgr.mk_udiv(a, b);
    case Opcode::REM: return mgr.mk_srem(a, b);
    case Opcode::REMU: return mgr.mk_urem(a, b);
    default: break;
  }
  assert(false && "not an ALU opcode");
  return a;
}

TermRef imm_symbolic(TermManager& mgr, const Instruction& inst, unsigned xlen) {
  if (opcode_format(inst.op) == Format::Shift)
    return mgr.mk_const(xlen, static_cast<std::uint64_t>(inst.imm));
  return mgr.mk_const(imm_to_xlen(inst.imm, xlen));
}

TermRef instruction_result(TermManager& mgr, const Instruction& inst, TermRef rs1_val,
                           TermRef rs2_val, unsigned xlen) {
  assert(writes_register(inst.op) && !is_load(inst.op));
  if (inst.op == Opcode::LUI) {
    // rd = imm20 << 12, truncated onto the datapath.
    const std::uint64_t v = static_cast<std::uint64_t>(inst.imm) << 12;
    return mgr.mk_const(xlen, xlen >= 64 ? v : (v & BitVec::mask(xlen)));
  }
  if (is_rtype(inst.op)) return alu_symbolic(mgr, inst.op, rs1_val, rs2_val);
  return alu_symbolic(mgr, inst.op, rs1_val, imm_symbolic(mgr, inst, xlen));
}

BitVec instruction_result_concrete(const Instruction& inst, const BitVec& rs1_val,
                                   const BitVec& rs2_val, unsigned xlen) {
  assert(writes_register(inst.op) && !is_load(inst.op));
  if (inst.op == Opcode::LUI)
    return BitVec(xlen, static_cast<std::uint64_t>(inst.imm) << 12);
  if (is_rtype(inst.op)) return alu_concrete(inst.op, rs1_val, rs2_val);
  if (opcode_format(inst.op) == Format::Shift)
    return alu_concrete(inst.op, rs1_val,
                        BitVec(xlen, static_cast<std::uint64_t>(inst.imm)));
  return alu_concrete(inst.op, rs1_val, imm_to_xlen(inst.imm, xlen));
}

}  // namespace sepe::isa
