// semantics.hpp — formal semantic models φ_instr(I, A, O) of RV32IM
// instructions (paper §4.1), width-parameterized.
//
// Two interpretations of the same semantics are provided and cross-checked
// by tests:
//   * concrete : BitVec -> BitVec, used by the ISS and QED testing;
//   * symbolic : TermRef -> TermRef, used by the synthesizer's component
//     library and by the processor model's execute stage.
//
// Width parameterization (`xlen`): the architectural register width. The
// paper works at RV32 (xlen=32); the BMC benches run reduced widths so the
// in-repo SAT core solves in seconds (see DESIGN.md "Substitutions").
// Immediates keep their architectural 12-bit encoding and are sign-
// extended or truncated onto the datapath, so all synthesized
// equivalences remain width-generic.
#pragma once

#include "isa/isa.hpp"
#include "smt/term.hpp"
#include "util/bitvec.hpp"

namespace sepe::isa {

/// Sign-extend/truncate an architectural 12-bit immediate onto `xlen` bits.
BitVec imm_to_xlen(std::int32_t imm, unsigned xlen);

/// Concrete ALU semantics: result of `op` on xlen-wide operands.
/// `b` is the second register value for R-type ops and the already
/// extended immediate for I-type ops. Loads/stores are not ALU ops and
/// assert.
BitVec alu_concrete(Opcode op, const BitVec& a, const BitVec& b);

/// Symbolic ALU semantics mirroring alu_concrete term-for-term.
smt::TermRef alu_symbolic(smt::TermManager& mgr, Opcode op, smt::TermRef a,
                          smt::TermRef b);

/// Symbolic immediate: the instruction's immediate as an xlen-wide
/// constant term (sign extension included).
smt::TermRef imm_symbolic(smt::TermManager& mgr, const Instruction& inst, unsigned xlen);

/// Full symbolic result of a register-writing instruction given symbolic
/// source values. For LUI, `rs1_val` is ignored. Asserts for loads/stores.
smt::TermRef instruction_result(smt::TermManager& mgr, const Instruction& inst,
                                smt::TermRef rs1_val, smt::TermRef rs2_val,
                                unsigned xlen);

/// Concrete twin of instruction_result.
BitVec instruction_result_concrete(const Instruction& inst, const BitVec& rs1_val,
                                   const BitVec& rs2_val, unsigned xlen);

}  // namespace sepe::isa
