// isa.hpp — RV32IM instruction set: opcodes, formats, encode/decode, asm.
//
// The instruction vocabulary shared by the synthesizer (src/synth), the
// golden simulator (src/sim), the processor model (src/proc) and the QED
// modules (src/qed). The datapath width is parameterized (see
// semantics.hpp) so the BMC benches can run at reduced XLEN; encodings are
// the standard 32-bit RV32IM forms regardless of datapath width.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace sepe::isa {

/// RV32IM mnemonics (user-level subset used throughout the paper).
enum class Opcode : std::uint8_t {
  // RV32I register-register
  ADD, SUB, SLL, SLT, SLTU, XOR, SRL, SRA, OR, AND,
  // RV32I register-immediate
  ADDI, SLTI, SLTIU, XORI, ORI, ANDI, SLLI, SRLI, SRAI,
  // Upper-immediate
  LUI,
  // Loads / stores (word only; the QED memory discipline uses word access)
  LW, SW,
  // RV32M
  MUL, MULH, MULHSU, MULHU, DIV, DIVU, REM, REMU,
  // Used as an explicit no-op bubble by the pipeline model
  NOP,
};

constexpr int kNumOpcodes = static_cast<int>(Opcode::NOP) + 1;

const char* opcode_name(Opcode op);
std::optional<Opcode> opcode_from_name(const std::string& name);

/// Instruction format classes (drives operand/immediates handling).
enum class Format : std::uint8_t { R, I, Shift, U, Load, Store, None };

Format opcode_format(Opcode op);

bool is_rtype(Opcode op);
bool is_itype(Opcode op);          // ALU immediate forms incl. shifts
bool is_mul_family(Opcode op);
bool is_div_family(Opcode op);
bool is_load(Opcode op);
bool is_store(Opcode op);
/// Writes a general-purpose register (everything except SW and NOP).
bool writes_register(Opcode op);

/// A decoded instruction. `imm` carries the sign-extended immediate for
/// I/S-type, the raw 20-bit payload for LUI, and the shift amount for
/// SLLI/SRLI/SRAI.
struct Instruction {
  Opcode op = Opcode::NOP;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int32_t imm = 0;

  static Instruction rtype(Opcode op, unsigned rd, unsigned rs1, unsigned rs2);
  static Instruction itype(Opcode op, unsigned rd, unsigned rs1, std::int32_t imm);
  static Instruction lui(unsigned rd, std::int32_t imm20);
  static Instruction lw(unsigned rd, unsigned rs1, std::int32_t offset);
  static Instruction sw(unsigned rs2, unsigned rs1, std::int32_t offset);
  static Instruction nop() { return Instruction{}; }

  bool operator==(const Instruction& o) const = default;

  /// "SUB x1, x2, x3" style rendering.
  std::string to_string() const;
};

/// Encode to the standard RV32 32-bit word. NOP encodes as ADDI x0,x0,0.
std::uint32_t encode(const Instruction& inst);

/// Decode a 32-bit word; nullopt for encodings outside the supported
/// subset.
std::optional<Instruction> decode(std::uint32_t word);

/// Parse one line of assembly ("sub x1, x2, x3", "lw x5, 8(x2)",
/// "addi x1, x0, -5"); nullopt on syntax error.
std::optional<Instruction> parse_asm(const std::string& line);

/// A straight-line program (the synthesis output unit).
using Program = std::vector<Instruction>;

std::string program_to_string(const Program& p);

}  // namespace sepe::isa
