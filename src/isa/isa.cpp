#include "isa/isa.hpp"

#include <cassert>
#include <cctype>
#include <sstream>

namespace sepe::isa {

namespace {

struct OpInfo {
  const char* name;
  Format format;
};

const OpInfo kOpInfo[kNumOpcodes] = {
    {"ADD", Format::R},     {"SUB", Format::R},    {"SLL", Format::R},
    {"SLT", Format::R},     {"SLTU", Format::R},   {"XOR", Format::R},
    {"SRL", Format::R},     {"SRA", Format::R},    {"OR", Format::R},
    {"AND", Format::R},     {"ADDI", Format::I},   {"SLTI", Format::I},
    {"SLTIU", Format::I},   {"XORI", Format::I},   {"ORI", Format::I},
    {"ANDI", Format::I},    {"SLLI", Format::Shift}, {"SRLI", Format::Shift},
    {"SRAI", Format::Shift}, {"LUI", Format::U},   {"LW", Format::Load},
    {"SW", Format::Store},  {"MUL", Format::R},    {"MULH", Format::R},
    {"MULHSU", Format::R},  {"MULHU", Format::R},  {"DIV", Format::R},
    {"DIVU", Format::R},    {"REM", Format::R},    {"REMU", Format::R},
    {"NOP", Format::None},
};

}  // namespace

const char* opcode_name(Opcode op) { return kOpInfo[static_cast<int>(op)].name; }

std::optional<Opcode> opcode_from_name(const std::string& name) {
  std::string upper;
  for (char c : name) upper.push_back(static_cast<char>(std::toupper(c)));
  for (int i = 0; i < kNumOpcodes; ++i)
    if (upper == kOpInfo[i].name) return static_cast<Opcode>(i);
  return std::nullopt;
}

Format opcode_format(Opcode op) { return kOpInfo[static_cast<int>(op)].format; }

bool is_rtype(Opcode op) { return opcode_format(op) == Format::R; }
bool is_itype(Opcode op) {
  const Format f = opcode_format(op);
  return f == Format::I || f == Format::Shift;
}
bool is_mul_family(Opcode op) {
  return op == Opcode::MUL || op == Opcode::MULH || op == Opcode::MULHSU ||
         op == Opcode::MULHU;
}
bool is_div_family(Opcode op) {
  return op == Opcode::DIV || op == Opcode::DIVU || op == Opcode::REM ||
         op == Opcode::REMU;
}
bool is_load(Opcode op) { return op == Opcode::LW; }
bool is_store(Opcode op) { return op == Opcode::SW; }
bool writes_register(Opcode op) { return op != Opcode::SW && op != Opcode::NOP; }

Instruction Instruction::rtype(Opcode op, unsigned rd, unsigned rs1, unsigned rs2) {
  assert(is_rtype(op) && rd < 32 && rs1 < 32 && rs2 < 32);
  return Instruction{op, static_cast<std::uint8_t>(rd), static_cast<std::uint8_t>(rs1),
                     static_cast<std::uint8_t>(rs2), 0};
}

Instruction Instruction::itype(Opcode op, unsigned rd, unsigned rs1, std::int32_t imm) {
  assert(is_itype(op) && rd < 32 && rs1 < 32);
  if (opcode_format(op) == Format::Shift) {
    assert(imm >= 0 && imm < 32);
  } else {
    assert(imm >= -2048 && imm <= 2047);
  }
  return Instruction{op, static_cast<std::uint8_t>(rd), static_cast<std::uint8_t>(rs1),
                     0, imm};
}

Instruction Instruction::lui(unsigned rd, std::int32_t imm20) {
  assert(rd < 32 && imm20 >= 0 && imm20 < (1 << 20));
  return Instruction{Opcode::LUI, static_cast<std::uint8_t>(rd), 0, 0, imm20};
}

Instruction Instruction::lw(unsigned rd, unsigned rs1, std::int32_t offset) {
  assert(rd < 32 && rs1 < 32 && offset >= -2048 && offset <= 2047);
  return Instruction{Opcode::LW, static_cast<std::uint8_t>(rd),
                     static_cast<std::uint8_t>(rs1), 0, offset};
}

Instruction Instruction::sw(unsigned rs2, unsigned rs1, std::int32_t offset) {
  assert(rs2 < 32 && rs1 < 32 && offset >= -2048 && offset <= 2047);
  return Instruction{Opcode::SW, 0, static_cast<std::uint8_t>(rs1),
                     static_cast<std::uint8_t>(rs2), offset};
}

std::string Instruction::to_string() const {
  std::ostringstream os;
  os << opcode_name(op);
  switch (opcode_format(op)) {
    case Format::R:
      os << " x" << int(rd) << ", x" << int(rs1) << ", x" << int(rs2);
      break;
    case Format::I:
    case Format::Shift:
      os << " x" << int(rd) << ", x" << int(rs1) << ", " << imm;
      break;
    case Format::U:
      os << " x" << int(rd) << ", " << imm;
      break;
    case Format::Load:
      os << " x" << int(rd) << ", " << imm << "(x" << int(rs1) << ")";
      break;
    case Format::Store:
      os << " x" << int(rs2) << ", " << imm << "(x" << int(rs1) << ")";
      break;
    case Format::None:
      break;
  }
  return os.str();
}

namespace {

struct EncodingSpec {
  std::uint32_t opcode7;
  std::uint32_t funct3;
  std::uint32_t funct7;
};

// Standard RV32IM encodings.
bool encoding_for(Opcode op, EncodingSpec& spec) {
  switch (op) {
    case Opcode::ADD: spec = {0x33, 0x0, 0x00}; return true;
    case Opcode::SUB: spec = {0x33, 0x0, 0x20}; return true;
    case Opcode::SLL: spec = {0x33, 0x1, 0x00}; return true;
    case Opcode::SLT: spec = {0x33, 0x2, 0x00}; return true;
    case Opcode::SLTU: spec = {0x33, 0x3, 0x00}; return true;
    case Opcode::XOR: spec = {0x33, 0x4, 0x00}; return true;
    case Opcode::SRL: spec = {0x33, 0x5, 0x00}; return true;
    case Opcode::SRA: spec = {0x33, 0x5, 0x20}; return true;
    case Opcode::OR: spec = {0x33, 0x6, 0x00}; return true;
    case Opcode::AND: spec = {0x33, 0x7, 0x00}; return true;
    case Opcode::MUL: spec = {0x33, 0x0, 0x01}; return true;
    case Opcode::MULH: spec = {0x33, 0x1, 0x01}; return true;
    case Opcode::MULHSU: spec = {0x33, 0x2, 0x01}; return true;
    case Opcode::MULHU: spec = {0x33, 0x3, 0x01}; return true;
    case Opcode::DIV: spec = {0x33, 0x4, 0x01}; return true;
    case Opcode::DIVU: spec = {0x33, 0x5, 0x01}; return true;
    case Opcode::REM: spec = {0x33, 0x6, 0x01}; return true;
    case Opcode::REMU: spec = {0x33, 0x7, 0x01}; return true;
    case Opcode::ADDI: spec = {0x13, 0x0, 0}; return true;
    case Opcode::SLTI: spec = {0x13, 0x2, 0}; return true;
    case Opcode::SLTIU: spec = {0x13, 0x3, 0}; return true;
    case Opcode::XORI: spec = {0x13, 0x4, 0}; return true;
    case Opcode::ORI: spec = {0x13, 0x6, 0}; return true;
    case Opcode::ANDI: spec = {0x13, 0x7, 0}; return true;
    case Opcode::SLLI: spec = {0x13, 0x1, 0x00}; return true;
    case Opcode::SRLI: spec = {0x13, 0x5, 0x00}; return true;
    case Opcode::SRAI: spec = {0x13, 0x5, 0x20}; return true;
    case Opcode::LUI: spec = {0x37, 0, 0}; return true;
    case Opcode::LW: spec = {0x03, 0x2, 0}; return true;
    case Opcode::SW: spec = {0x23, 0x2, 0}; return true;
    case Opcode::NOP: spec = {0x13, 0x0, 0}; return true;  // ADDI x0,x0,0
  }
  return false;
}

}  // namespace

std::uint32_t encode(const Instruction& inst) {
  EncodingSpec spec{};
  const bool ok = encoding_for(inst.op, spec);
  assert(ok);
  (void)ok;
  const std::uint32_t rd = inst.rd, rs1 = inst.rs1, rs2 = inst.rs2;
  const std::uint32_t imm = static_cast<std::uint32_t>(inst.imm);
  switch (opcode_format(inst.op)) {
    case Format::R:
      return (spec.funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (spec.funct3 << 12) |
             (rd << 7) | spec.opcode7;
    case Format::I:
    case Format::Load:
      return ((imm & 0xfff) << 20) | (rs1 << 15) | (spec.funct3 << 12) | (rd << 7) |
             spec.opcode7;
    case Format::Shift:
      return (spec.funct7 << 25) | ((imm & 0x1f) << 20) | (rs1 << 15) |
             (spec.funct3 << 12) | (rd << 7) | spec.opcode7;
    case Format::U:
      return ((imm & 0xfffff) << 12) | (rd << 7) | spec.opcode7;
    case Format::Store:
      return (((imm >> 5) & 0x7f) << 25) | (rs2 << 20) | (rs1 << 15) |
             (spec.funct3 << 12) | ((imm & 0x1f) << 7) | spec.opcode7;
    case Format::None:
      return 0x00000013;  // ADDI x0,x0,0
  }
  return 0;
}

std::optional<Instruction> decode(std::uint32_t word) {
  const std::uint32_t opcode7 = word & 0x7f;
  const std::uint32_t rd = (word >> 7) & 0x1f;
  const std::uint32_t funct3 = (word >> 12) & 0x7;
  const std::uint32_t rs1 = (word >> 15) & 0x1f;
  const std::uint32_t rs2 = (word >> 20) & 0x1f;
  const std::uint32_t funct7 = (word >> 25) & 0x7f;
  const auto sext12 = [](std::uint32_t v) {
    return static_cast<std::int32_t>(v << 20) >> 20;
  };

  switch (opcode7) {
    case 0x33: {  // R-type
      for (int i = 0; i < kNumOpcodes; ++i) {
        const Opcode op = static_cast<Opcode>(i);
        if (!is_rtype(op)) continue;
        EncodingSpec spec{};
        encoding_for(op, spec);
        if (spec.funct3 == funct3 && spec.funct7 == funct7)
          return Instruction::rtype(op, rd, rs1, rs2);
      }
      return std::nullopt;
    }
    case 0x13: {  // I-type ALU
      const std::int32_t imm = sext12(word >> 20);
      switch (funct3) {
        case 0x0: return Instruction::itype(Opcode::ADDI, rd, rs1, imm);
        case 0x2: return Instruction::itype(Opcode::SLTI, rd, rs1, imm);
        case 0x3: return Instruction::itype(Opcode::SLTIU, rd, rs1, imm);
        case 0x4: return Instruction::itype(Opcode::XORI, rd, rs1, imm);
        case 0x6: return Instruction::itype(Opcode::ORI, rd, rs1, imm);
        case 0x7: return Instruction::itype(Opcode::ANDI, rd, rs1, imm);
        case 0x1:
          if (funct7 == 0x00) return Instruction::itype(Opcode::SLLI, rd, rs1, rs2);
          return std::nullopt;
        case 0x5:
          if (funct7 == 0x00) return Instruction::itype(Opcode::SRLI, rd, rs1, rs2);
          if (funct7 == 0x20) return Instruction::itype(Opcode::SRAI, rd, rs1, rs2);
          return std::nullopt;
      }
      return std::nullopt;
    }
    case 0x37:
      return Instruction::lui(rd, static_cast<std::int32_t>((word >> 12) & 0xfffff));
    case 0x03:
      if (funct3 == 0x2) return Instruction::lw(rd, rs1, sext12(word >> 20));
      return std::nullopt;
    case 0x23:
      if (funct3 == 0x2)
        return Instruction::sw(rs2, rs1, sext12((funct7 << 5) | rd));
      return std::nullopt;
  }
  return std::nullopt;
}

namespace {

// Parse "x7" / "X7" register tokens.
std::optional<unsigned> parse_reg(const std::string& tok) {
  if (tok.size() < 2 || (tok[0] != 'x' && tok[0] != 'X')) return std::nullopt;
  unsigned v = 0;
  for (std::size_t i = 1; i < tok.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(tok[i]))) return std::nullopt;
    v = v * 10 + static_cast<unsigned>(tok[i] - '0');
  }
  return v < 32 ? std::optional<unsigned>(v) : std::nullopt;
}

std::optional<std::int32_t> parse_imm(const std::string& tok) {
  if (tok.empty()) return std::nullopt;
  try {
    std::size_t pos = 0;
    const long v = std::stol(tok, &pos, 0);  // handles 0x..., decimal, negatives
    if (pos != tok.size()) return std::nullopt;
    return static_cast<std::int32_t>(v);
  } catch (...) {
    return std::nullopt;
  }
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> toks;
  std::string cur;
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',' || c == '(' || c == ')') {
      if (!cur.empty()) toks.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) toks.push_back(cur);
  return toks;
}

}  // namespace

std::optional<Instruction> parse_asm(const std::string& line) {
  const auto toks = tokenize(line);
  if (toks.empty()) return std::nullopt;
  const auto op = opcode_from_name(toks[0]);
  if (!op) return std::nullopt;

  switch (opcode_format(*op)) {
    case Format::R: {
      if (toks.size() != 4) return std::nullopt;
      const auto rd = parse_reg(toks[1]), rs1 = parse_reg(toks[2]),
                 rs2 = parse_reg(toks[3]);
      if (!rd || !rs1 || !rs2) return std::nullopt;
      return Instruction::rtype(*op, *rd, *rs1, *rs2);
    }
    case Format::I:
    case Format::Shift: {
      if (toks.size() != 4) return std::nullopt;
      const auto rd = parse_reg(toks[1]), rs1 = parse_reg(toks[2]);
      const auto imm = parse_imm(toks[3]);
      if (!rd || !rs1 || !imm) return std::nullopt;
      // I-type immediates are 12-bit two's complement: accept 0x800..0xfff
      // hex spellings as their negative values, reject out-of-range.
      std::int32_t v = *imm;
      if (opcode_format(*op) == Format::I) {
        if (v >= 2048 && v <= 4095) v -= 4096;
        if (v < -2048 || v > 2047) return std::nullopt;
      } else if (v < 0 || v > 31) {
        return std::nullopt;
      }
      return Instruction::itype(*op, *rd, *rs1, v);
    }
    case Format::U: {
      if (toks.size() != 3) return std::nullopt;
      const auto rd = parse_reg(toks[1]);
      const auto imm = parse_imm(toks[2]);
      if (!rd || !imm || *imm < 0 || *imm >= (1 << 20)) return std::nullopt;
      return Instruction::lui(*rd, *imm);
    }
    case Format::Load: {
      if (toks.size() != 4) return std::nullopt;  // lw rd, off (rs1)
      const auto rd = parse_reg(toks[1]);
      const auto off = parse_imm(toks[2]);
      const auto rs1 = parse_reg(toks[3]);
      if (!rd || !off || !rs1) return std::nullopt;
      return Instruction::lw(*rd, *rs1, *off);
    }
    case Format::Store: {
      if (toks.size() != 4) return std::nullopt;  // sw rs2, off (rs1)
      const auto rs2 = parse_reg(toks[1]);
      const auto off = parse_imm(toks[2]);
      const auto rs1 = parse_reg(toks[3]);
      if (!rs2 || !off || !rs1) return std::nullopt;
      return Instruction::sw(*rs2, *rs1, *off);
    }
    case Format::None:
      return Instruction::nop();
  }
  return std::nullopt;
}

std::string program_to_string(const Program& p) {
  std::string s;
  for (const Instruction& inst : p) {
    s += inst.to_string();
    s += '\n';
  }
  return s;
}

}  // namespace sepe::isa
