// transition_system.hpp — symbolic transition-system IR.
//
// The RTL-level representation used by the processor model (src/proc), the
// QED modules (src/qed) and the bounded model checker (src/bmc). A
// TransitionSystem is the same object a Yosys→BTOR2 flow hands to Pono in
// the paper's toolchain (§6.2): state variables with init and next
// functions, free inputs, global input constraints, and safety properties
// ("bad" states are property negations).
#pragma once

#include <string>
#include <vector>

#include "smt/term.hpp"

namespace sepe::ts {

/// Index of a state variable within its system.
using StateId = std::size_t;

/// A symbolic finite-state transition system over bit-vector terms.
///
/// All terms live in one shared TermManager supplied at construction.
/// State/next/init discipline:
///   * add_state() introduces a state variable (a Var term);
///   * set_init()  fixes its value in the initial state (optional —
///     uninitialized state starts unconstrained);
///   * set_next()  gives its next-state function over current-state vars
///     and current inputs (required before unrolling).
/// add_constraint() adds an invariant assumption over every step
/// (e.g. "the instruction input is a valid opcode").
/// add_bad() declares a safety property violation condition (BMC searches
/// for a step where some bad term is true).
class TransitionSystem {
 public:
  explicit TransitionSystem(smt::TermManager& mgr) : mgr_(&mgr) {}

  smt::TermManager& mgr() const { return *mgr_; }

  /// Create a state variable of the given width. Returns its Var term.
  smt::TermRef add_state(const std::string& name, unsigned width);
  /// Create a free input of the given width.
  smt::TermRef add_input(const std::string& name, unsigned width);

  void set_init(smt::TermRef state, smt::TermRef value);
  void set_next(smt::TermRef state, smt::TermRef next);

  void add_constraint(smt::TermRef cond);
  /// Constraint that holds only in the initial state (step 0) — e.g. the
  /// QED-consistent initial-state requirement over an otherwise symbolic
  /// register file.
  void add_init_constraint(smt::TermRef cond);
  void add_bad(smt::TermRef cond, const std::string& label = "");
  /// Drop every bad condition (and label) except `index`. Used by
  /// multi-property workloads (e.g. BTOR2 corpus files) that fan one
  /// parsed model out into one verification job per property.
  void retain_bad(std::size_t index);

  bool is_state(smt::TermRef t) const;
  bool is_input(smt::TermRef t) const;

  const std::vector<smt::TermRef>& states() const { return states_; }
  const std::vector<smt::TermRef>& inputs() const { return inputs_; }
  const std::vector<smt::TermRef>& constraints() const { return constraints_; }
  const std::vector<smt::TermRef>& init_constraints() const { return init_constraints_; }
  const std::vector<smt::TermRef>& bads() const { return bads_; }
  const std::vector<std::string>& bad_labels() const { return bad_labels_; }

  /// Init value for a state, or kNullTerm when unconstrained.
  smt::TermRef init_of(smt::TermRef state) const;
  /// Next-state function; kNullTerm when not yet set.
  smt::TermRef next_of(smt::TermRef state) const;

  /// Sanity check: every state has a next function.
  bool complete() const;

 private:
  std::size_t index_of_state(smt::TermRef state) const;

  smt::TermManager* mgr_;
  std::vector<smt::TermRef> states_;
  std::vector<smt::TermRef> inputs_;
  std::vector<smt::TermRef> inits_;   // parallel to states_
  std::vector<smt::TermRef> nexts_;   // parallel to states_
  std::vector<smt::TermRef> constraints_;
  std::vector<smt::TermRef> init_constraints_;
  std::vector<smt::TermRef> bads_;
  std::vector<std::string> bad_labels_;
};

/// Serialize in a BTOR2-style text format (sorts, states, inputs, init,
/// next, constraint, bad). Intended for debugging and interoperability
/// documentation; see docs in DESIGN.md.
std::string to_btor2(const TransitionSystem& ts);

}  // namespace sepe::ts
