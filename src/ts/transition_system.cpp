#include "ts/transition_system.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <sstream>
#include <unordered_map>

namespace sepe::ts {

using smt::kNullTerm;
using smt::Op;
using smt::TermRef;

TermRef TransitionSystem::add_state(const std::string& name, unsigned width) {
  const TermRef t = mgr_->mk_var(name, width);
  assert(!is_state(t) && "state already declared");
  states_.push_back(t);
  inits_.push_back(kNullTerm);
  nexts_.push_back(kNullTerm);
  return t;
}

TermRef TransitionSystem::add_input(const std::string& name, unsigned width) {
  const TermRef t = mgr_->mk_var(name, width);
  assert(!is_input(t) && "input already declared");
  inputs_.push_back(t);
  return t;
}

std::size_t TransitionSystem::index_of_state(TermRef state) const {
  const auto it = std::find(states_.begin(), states_.end(), state);
  assert(it != states_.end() && "not a state variable");
  return static_cast<std::size_t>(it - states_.begin());
}

void TransitionSystem::set_init(TermRef state, TermRef value) {
  inits_[index_of_state(state)] = value;
}

void TransitionSystem::set_next(TermRef state, TermRef next) {
  assert(mgr_->width(state) == mgr_->width(next));
  nexts_[index_of_state(state)] = next;
}

void TransitionSystem::add_constraint(TermRef cond) {
  assert(mgr_->width(cond) == 1);
  constraints_.push_back(cond);
}

void TransitionSystem::add_init_constraint(TermRef cond) {
  assert(mgr_->width(cond) == 1);
  init_constraints_.push_back(cond);
}

void TransitionSystem::add_bad(TermRef cond, const std::string& label) {
  assert(mgr_->width(cond) == 1);
  bads_.push_back(cond);
  bad_labels_.push_back(label);
}

void TransitionSystem::retain_bad(std::size_t index) {
  assert(index < bads_.size() && "retain_bad index out of range");
  const TermRef bad = bads_[index];
  std::string label = std::move(bad_labels_[index]);
  bads_.assign(1, bad);
  bad_labels_.assign(1, std::move(label));
}

bool TransitionSystem::is_state(TermRef t) const {
  return std::find(states_.begin(), states_.end(), t) != states_.end();
}

bool TransitionSystem::is_input(TermRef t) const {
  return std::find(inputs_.begin(), inputs_.end(), t) != inputs_.end();
}

TermRef TransitionSystem::init_of(TermRef state) const {
  return inits_[index_of_state(state)];
}

TermRef TransitionSystem::next_of(TermRef state) const {
  return nexts_[index_of_state(state)];
}

bool TransitionSystem::complete() const {
  return std::none_of(nexts_.begin(), nexts_.end(),
                      [](TermRef t) { return t == kNullTerm; });
}

namespace {

/// BTOR2 symbol names are whitespace-delimited tokens; witness artifacts
/// embed the dump and re-parse it, so a name containing whitespace or the
/// comment introducer would silently change the line grammar on the way
/// back. Map the hazardous bytes to '_'.
std::string safe_symbol(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ';') c = '_';
  }
  return out;
}

/// Bad labels live after a ';' so spaces are fine, but an embedded newline
/// would terminate the line early and desynchronise the round-trip.
std::string safe_label(const std::string& label) {
  std::string out = label;
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

/// BTOR2-style line emitter: assigns dense ids to sorts and nodes.
class Btor2Writer {
 public:
  explicit Btor2Writer(const TransitionSystem& ts) : ts_(ts) {}

  std::string run() {
    // Declare sorts and top-level objects first, then definitions.
    for (TermRef s : ts_.states()) {
      const unsigned id = next_id_++;
      os_ << id << " state " << sort_id(ts_.mgr().width(s)) << " "
          << safe_symbol(ts_.mgr().node(s).name) << "\n";
      node_ids_[s] = id;
    }
    for (TermRef i : ts_.inputs()) {
      const unsigned id = next_id_++;
      os_ << id << " input " << sort_id(ts_.mgr().width(i)) << " "
          << safe_symbol(ts_.mgr().node(i).name) << "\n";
      node_ids_[i] = id;
    }
    for (TermRef s : ts_.states()) {
      if (ts_.init_of(s) != kNullTerm) {
        const unsigned v = emit(ts_.init_of(s));
        os_ << next_id_++ << " init " << sort_id(ts_.mgr().width(s)) << " "
            << node_ids_[s] << " " << v << "\n";
      }
    }
    for (TermRef s : ts_.states()) {
      if (ts_.next_of(s) != kNullTerm) {
        const unsigned v = emit(ts_.next_of(s));
        os_ << next_id_++ << " next " << sort_id(ts_.mgr().width(s)) << " "
            << node_ids_[s] << " " << v << "\n";
      }
    }
    for (TermRef c : ts_.constraints()) {
      const unsigned v = emit(c);
      os_ << next_id_++ << " constraint " << v << "\n";
    }
    // BTOR2 has no init-only constraint; encode ours with the standard
    // flag-state trick: a 1-bit state that starts 1 and drops to 0
    // forever, guarding each condition as `constraint flag -> cond`. A
    // parser reads this back as a plain state + constraint with the
    // same bad-state reachability.
    if (!ts_.init_constraints().empty()) {
      const unsigned bit = sort_id(1);
      const unsigned flag = next_id_++;
      os_ << flag << " state " << bit << " __sepe_at_init\n";
      const unsigned one = next_id_++;
      os_ << one << " one " << bit << "\n";
      os_ << next_id_++ << " init " << bit << " " << flag << " " << one << "\n";
      const unsigned zero = next_id_++;
      os_ << zero << " zero " << bit << "\n";
      os_ << next_id_++ << " next " << bit << " " << flag << " " << zero << "\n";
      const unsigned not_flag = next_id_++;
      os_ << not_flag << " not " << bit << " " << flag << "\n";
      for (TermRef c : ts_.init_constraints()) {
        const unsigned v = emit(c);
        const unsigned guarded = next_id_++;
        os_ << guarded << " or " << bit << " " << not_flag << " " << v << "\n";
        os_ << next_id_++ << " constraint " << guarded << "\n";
      }
    }
    for (std::size_t i = 0; i < ts_.bads().size(); ++i) {
      const unsigned v = emit(ts_.bads()[i]);
      os_ << next_id_++ << " bad " << v;
      if (!ts_.bad_labels()[i].empty())
        os_ << " ; " << safe_label(ts_.bad_labels()[i]);
      os_ << "\n";
    }
    return header() + os_.str();
  }

 private:
  unsigned sort_id(unsigned width) {
    auto [it, inserted] = sort_ids_.emplace(width, 0);
    if (inserted) it->second = next_sort_id_++;
    return it->second;
  }

  std::string header() {
    std::ostringstream h;
    h << "; btor2-style dump (sepe-sqed)\n";
    for (const auto& [width, id] : sorted_sorts())
      h << id << " sort bitvec " << width << "\n";
    return h.str();
  }

  std::vector<std::pair<unsigned, unsigned>> sorted_sorts() const {
    std::vector<std::pair<unsigned, unsigned>> v(sort_ids_.begin(), sort_ids_.end());
    std::sort(v.begin(), v.end(),
              [](const auto& a, const auto& b) { return a.second < b.second; });
    return v;
  }

  const char* btor_op(Op op) {
    switch (op) {
      case Op::Not: return "not";
      case Op::And: return "and";
      case Op::Or: return "or";
      case Op::Xor: return "xor";
      case Op::Neg: return "neg";
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::Mul: return "mul";
      case Op::Udiv: return "udiv";
      case Op::Urem: return "urem";
      case Op::Sdiv: return "sdiv";
      case Op::Srem: return "srem";
      case Op::Shl: return "sll";
      case Op::Lshr: return "srl";
      case Op::Ashr: return "sra";
      case Op::Ult: return "ult";
      case Op::Ule: return "ulte";
      case Op::Slt: return "slt";
      case Op::Sle: return "slte";
      case Op::Eq: return "eq";
      case Op::Ne: return "neq";
      case Op::Ite: return "ite";
      case Op::Concat: return "concat";
      default: return "?";
    }
  }

  unsigned emit(TermRef t) {
    if (auto it = node_ids_.find(t); it != node_ids_.end()) return it->second;
    const smt::TermNode& n = ts_.mgr().node(t);
    // Iterative would be safer for pathological DAGs; dumps are debug-only
    // and our models are shallow per next-function.
    std::vector<unsigned> ops;
    for (TermRef o : n.operands) ops.push_back(emit(o));
    const unsigned sid = sort_id(n.width);
    const unsigned id = next_id_++;
    switch (n.op) {
      case Op::Const:
        os_ << id << " constd " << sid << " " << n.value.uval() << "\n";
        break;
      case Op::Var:
        // Free variable not declared as state/input: treat as input.
        os_ << id << " input " << sid << " " << safe_symbol(n.name) << "\n";
        break;
      case Op::Extract:
        os_ << id << " slice " << sid << " " << ops[0] << " " << n.aux0 << " " << n.aux1
            << "\n";
        break;
      case Op::ZExt:
        os_ << id << " uext " << sid << " " << ops[0] << " "
            << (n.aux0 - ts_.mgr().width(n.operands[0])) << "\n";
        break;
      case Op::SExt:
        os_ << id << " sext " << sid << " " << ops[0] << " "
            << (n.aux0 - ts_.mgr().width(n.operands[0])) << "\n";
        break;
      default: {
        os_ << id << " " << btor_op(n.op) << " " << sid;
        for (unsigned o : ops) os_ << " " << o;
        os_ << "\n";
        break;
      }
    }
    node_ids_[t] = id;
    return id;
  }

  const TransitionSystem& ts_;
  std::ostringstream os_;
  std::map<unsigned, unsigned> sort_ids_;  // width -> sort id
  std::unordered_map<TermRef, unsigned> node_ids_;
  unsigned next_sort_id_ = 1;
  unsigned next_id_ = 100;  // leave room for sort ids
};

}  // namespace

std::string to_btor2(const TransitionSystem& ts) { return Btor2Writer(ts).run(); }

}  // namespace sepe::ts
