#include "ts/btor2_parser.hpp"

#include <cstdint>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace sepe::ts {

using smt::TermRef;

namespace {

/// One whitespace-token line, already stripped of comments.
struct Line {
  unsigned number = 0;  // 1-based source line for diagnostics
  std::vector<std::string> tokens;
  std::string label;  // text after " ; " on bad lines
};

/// Strict unsigned parse in the given base: every character must be a
/// digit of that base and the value must fit 64 bits. Rejects empty
/// tokens, signs, whitespace, and partial parses — corpus files are
/// untrusted input, so nothing may be accepted "as far as it goes".
bool parse_uint(const std::string& tok, unsigned base, std::uint64_t* out) {
  if (tok.empty()) return false;
  std::uint64_t value = 0;
  for (char c : tok) {
    unsigned digit = 0;
    if (c >= '0' && c <= '9') digit = static_cast<unsigned>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<unsigned>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') digit = static_cast<unsigned>(c - 'A' + 10);
    else return false;
    if (digit >= base) return false;
    if (value > (~std::uint64_t{0} - digit) / base) return false;  // overflow
    value = value * base + digit;
  }
  *out = value;
  return true;
}

class Parser {
 public:
  Parser(const std::string& text, TransitionSystem& out) : text_(text), out_(out) {}

  Btor2ParseResult run() {
    Btor2ParseResult result;
    std::istringstream in(text_);
    std::string raw;
    unsigned line_no = 0;
    while (std::getline(in, raw)) {
      ++line_no;
      Line line;
      line.number = line_no;
      // Split off a trailing comment; keep it as a label candidate.
      const std::size_t semi = raw.find(';');
      if (semi != std::string::npos) {
        line.label = trim(raw.substr(semi + 1));
        raw = raw.substr(0, semi);
      }
      std::istringstream ls(raw);
      std::string tok;
      while (ls >> tok) line.tokens.push_back(tok);
      if (line.tokens.empty()) continue;
      if (!handle(line)) {
        result.error = "line " + std::to_string(line_no) + ": " + error_;
        result.lines = line_no;
        return result;
      }
    }
    // Ensure every declared state got a next function: the standard
    // allows next-less states (they stay free), our IR does not — give
    // them a self-loop, which has the same semantics as "unconstrained
    // at step 0, then frozen"... a truly free state would need an input;
    // reject instead so silent semantic drift is impossible.
    for (TermRef s : out_.states()) {
      if (out_.next_of(s) == smt::kNullTerm) {
        result.error = "state '" + out_.mgr().node(s).name + "' has no next line";
        result.lines = line_no;
        return result;
      }
    }
    result.ok = true;
    result.lines = line_no;
    return result;
  }

 private:
  static std::string trim(const std::string& s) {
    const auto b = s.find_first_not_of(" \t\r");
    const auto e = s.find_last_not_of(" \t\r");
    return b == std::string::npos ? "" : s.substr(b, e - b + 1);
  }

  bool fail(const std::string& msg) {
    error_ = msg;
    return false;
  }

  bool parse_id(const std::string& tok, std::uint64_t& out) {
    if (!parse_uint(tok, 10, &out)) return fail("malformed number '" + tok + "'");
    return true;
  }

  bool sort_width(std::uint64_t sid, unsigned& width) {
    const auto it = sorts_.find(sid);
    if (it == sorts_.end()) return fail("unknown sort id " + std::to_string(sid));
    width = it->second;
    return true;
  }

  bool node(std::uint64_t id, TermRef& out) {
    const auto it = nodes_.find(id);
    if (it == nodes_.end()) return fail("unknown node id " + std::to_string(id));
    out = it->second;
    return true;
  }

  /// Bind a freshly produced term to its line id; every id may be
  /// defined only once (redefinition would silently rewire every later
  /// reference, so it is rejected).
  bool define(std::uint64_t id, TermRef term) {
    if (!nodes_.emplace(id, term).second)
      return fail("node id " + std::to_string(id) + " redefined");
    return true;
  }

  bool handle(const Line& line) {
    const auto& t = line.tokens;
    std::uint64_t id = 0;
    if (!parse_id(t[0], id)) return false;
    if (t.size() < 2) return fail("missing keyword");
    const std::string& kw = t[1];
    smt::TermManager& mgr = out_.mgr();

    const auto arg_id = [&](unsigned i, std::uint64_t& v) {
      if (i >= t.size()) return fail("missing operand");
      return parse_id(t[i], v);
    };
    const auto arg_node = [&](unsigned i, TermRef& v) {
      std::uint64_t nid = 0;
      if (!arg_id(i, nid)) return false;
      return node(nid, v);
    };
    const auto arg_width = [&](unsigned i, unsigned& w) {
      std::uint64_t sid = 0;
      if (!arg_id(i, sid)) return false;
      return sort_width(sid, w);
    };

    if (kw == "sort") {
      if (t.size() < 4 || t[2] != "bitvec")
        return fail("only 'sort bitvec <w>' is supported");
      std::uint64_t w = 0;
      if (!parse_id(t[3], w)) return false;
      if (w < 1 || w > 64) return fail("unsupported width " + t[3]);
      if (!sorts_.emplace(id, static_cast<unsigned>(w)).second)
        return fail("sort id " + std::to_string(id) + " redefined");
      return true;
    }
    if (kw == "state" || kw == "input") {
      unsigned w = 0;
      if (!arg_width(2, w)) return false;
      const std::string name = t.size() > 3 ? t[3] : (kw + std::to_string(id));
      // Distinct states/inputs must be distinct variables: the term
      // manager interns variables by name, so a reused symbol would
      // alias two declarations (and asserts on a width clash).
      if (!names_.insert(name).second)
        return fail("symbol '" + name + "' declared twice");
      return define(id, kw == "state" ? out_.add_state(name, w)
                                      : out_.add_input(name, w));
    }
    if (kw == "init" || kw == "next") {
      TermRef state, value;
      unsigned w = 0;
      if (!arg_width(2, w)) return false;
      if (!arg_node(3, state)) return false;
      if (!arg_node(4, value)) return false;
      if (!out_.is_state(state)) return fail(kw + " on a non-state node");
      if (mgr.width(state) != w) return fail(kw + " sort disagrees with the state");
      if (mgr.width(value) != w) return fail(kw + " width mismatch");
      if (kw == "init") {
        if (out_.init_of(state) != smt::kNullTerm)
          return fail("duplicate init for state '" + mgr.node(state).name + "'");
        out_.set_init(state, value);
      } else {
        if (out_.next_of(state) != smt::kNullTerm)
          return fail("duplicate next for state '" + mgr.node(state).name + "'");
        out_.set_next(state, value);
      }
      return true;
    }
    if (kw == "constraint" || kw == "bad") {
      TermRef cond;
      if (!arg_node(2, cond)) return false;
      if (mgr.width(cond) != 1) return fail(kw + " needs a 1-bit condition");
      if (kw == "constraint") {
        out_.add_constraint(cond);
      } else {
        out_.add_bad(cond, line.label);
      }
      return true;
    }

    // --- constants ---
    if (kw == "constd" || kw == "const" || kw == "consth" || kw == "zero" ||
        kw == "one" || kw == "ones") {
      unsigned w = 0;
      if (!arg_width(2, w)) return false;
      std::uint64_t value = 0;
      if (kw == "zero") {
        value = 0;
      } else if (kw == "one") {
        value = 1;
      } else if (kw == "ones") {
        value = BitVec::mask(w);
      } else {
        if (t.size() < 4) return fail("missing constant payload");
        std::string payload = t[3];
        // constd accepts a negative decimal (two's complement of the
        // magnitude at the sort width), matching the standard.
        bool negate = false;
        if (kw == "constd" && payload.size() > 1 && payload[0] == '-') {
          negate = true;
          payload = payload.substr(1);
        }
        const unsigned base = kw == "constd" ? 10 : (kw == "const" ? 2 : 16);
        if (!parse_uint(payload, base, &value))
          return fail("malformed constant '" + t[3] + "'");
        // Range checks before any wrapping: unsigned forms must fit the
        // sort, a negated decimal must not drop below the two's-
        // complement minimum (-2^(w-1)).
        const std::uint64_t limit =
            negate ? BitVec::mask(w - 1) + 1 : BitVec::mask(w);
        if (value > limit)
          return fail("constant '" + t[3] + "' does not fit " + std::to_string(w) +
                      " bits");
        if (negate) value = (~value + 1) & BitVec::mask(w);
      }
      return define(id, mgr.mk_const(BitVec(w, value)));
    }

    // --- indexed operators ---
    if (kw == "slice") {
      unsigned w = 0;
      TermRef a;
      std::uint64_t hi = 0, lo = 0;
      if (!arg_width(2, w) || !arg_node(3, a) || !arg_id(4, hi) || !arg_id(5, lo))
        return false;
      if (hi < lo || hi >= mgr.width(a)) return fail("slice bounds out of range");
      const TermRef r =
          mgr.mk_extract(a, static_cast<unsigned>(hi), static_cast<unsigned>(lo));
      if (mgr.width(r) != w) return fail("slice sort mismatch");
      return define(id, r);
    }
    if (kw == "uext" || kw == "sext") {
      unsigned w = 0;
      TermRef a;
      std::uint64_t by = 0;
      if (!arg_width(2, w) || !arg_node(3, a) || !arg_id(4, by)) return false;
      if (mgr.width(a) + by != w) return fail(kw + " width arithmetic mismatch");
      return define(id, kw == "uext" ? mgr.mk_zext(a, w) : mgr.mk_sext(a, w));
    }

    // --- regular operators: <id> <op> <sort> <args...> ---
    struct UnOp {
      const char* name;
      TermRef (smt::TermManager::*fn)(TermRef);
    };
    static const UnOp kUnary[] = {
        {"not", &smt::TermManager::mk_not},
        {"neg", &smt::TermManager::mk_neg},
    };
    struct BinOp {
      const char* name;
      TermRef (smt::TermManager::*fn)(TermRef, TermRef);
      bool same_width;  // operands must agree (everything but concat)
    };
    static const BinOp kBinary[] = {
        {"and", &smt::TermManager::mk_and, true},
        {"or", &smt::TermManager::mk_or, true},
        {"xor", &smt::TermManager::mk_xor, true},
        {"add", &smt::TermManager::mk_add, true},
        {"sub", &smt::TermManager::mk_sub, true},
        {"mul", &smt::TermManager::mk_mul, true},
        {"udiv", &smt::TermManager::mk_udiv, true},
        {"urem", &smt::TermManager::mk_urem, true},
        {"sdiv", &smt::TermManager::mk_sdiv, true},
        {"srem", &smt::TermManager::mk_srem, true},
        {"sll", &smt::TermManager::mk_shl, true},
        {"srl", &smt::TermManager::mk_lshr, true},
        {"sra", &smt::TermManager::mk_ashr, true},
        {"ult", &smt::TermManager::mk_ult, true},
        {"ulte", &smt::TermManager::mk_ule, true},
        {"slt", &smt::TermManager::mk_slt, true},
        {"slte", &smt::TermManager::mk_sle, true},
        {"eq", &smt::TermManager::mk_eq, true},
        {"neq", &smt::TermManager::mk_ne, true},
        {"concat", &smt::TermManager::mk_concat, false},
    };
    for (const UnOp& u : kUnary) {
      if (kw == u.name) {
        unsigned w = 0;
        TermRef a;
        if (!arg_width(2, w) || !arg_node(3, a)) return false;
        const TermRef r = (mgr.*u.fn)(a);
        if (mgr.width(r) != w) return fail(std::string(u.name) + " sort mismatch");
        return define(id, r);
      }
    }
    for (const BinOp& b : kBinary) {
      if (kw == b.name) {
        unsigned w = 0;
        TermRef a1, a2;
        if (!arg_width(2, w) || !arg_node(3, a1) || !arg_node(4, a2)) return false;
        // Operand widths are validated *before* the term constructor
        // runs: the constructors assert their preconditions, and a
        // malformed corpus line must produce a diagnostic, not a crash.
        if (b.same_width && mgr.width(a1) != mgr.width(a2))
          return fail(std::string(b.name) + " operand width mismatch");
        const TermRef r = (mgr.*b.fn)(a1, a2);
        if (mgr.width(r) != w) return fail(std::string(b.name) + " sort mismatch");
        return define(id, r);
      }
    }
    if (kw == "ite") {
      unsigned w = 0;
      TermRef c, a, b;
      if (!arg_width(2, w) || !arg_node(3, c) || !arg_node(4, a) || !arg_node(5, b))
        return false;
      if (mgr.width(c) != 1) return fail("ite needs a 1-bit condition");
      if (mgr.width(a) != mgr.width(b)) return fail("ite branch width mismatch");
      const TermRef r = mgr.mk_ite(c, a, b);
      if (mgr.width(r) != w) return fail("ite sort mismatch");
      return define(id, r);
    }
    return fail("unsupported keyword '" + kw + "'");
  }

  const std::string& text_;
  TransitionSystem& out_;
  std::unordered_map<std::uint64_t, unsigned> sorts_;  // sort id -> width
  std::unordered_map<std::uint64_t, TermRef> nodes_;   // node id -> term
  std::unordered_set<std::string> names_;              // declared symbols
  std::string error_;
};

}  // namespace

Btor2ParseResult parse_btor2(const std::string& text, TransitionSystem& out) {
  return Parser(text, out).run();
}

}  // namespace sepe::ts
