// btor2_parser.hpp — parser for the BTOR2 word-level model-checking
// format (Niemetz et al., CAV'18), the interchange point of the paper's
// Yosys -> BTOR2 -> Pono toolchain (§6.2).
//
// Accepts the subset our serializer (to_btor2) emits plus the common
// constant forms of the standard (`const`/`constd`/`consth`, `zero`,
// `one`, `ones`), so models produced by this repository round-trip and
// simple external dumps load. Array sorts and justice/fairness
// properties are outside the supported fragment and are reported as
// errors.
#pragma once

#include <optional>
#include <string>

#include "ts/transition_system.hpp"

namespace sepe::ts {

/// Result of a parse: the system plus diagnostics.
struct Btor2ParseResult {
  bool ok = false;
  std::string error;     // first error, with line number
  unsigned lines = 0;    // lines consumed
};

/// Parse BTOR2 text into `out` (which must be empty and own a fresh
/// TermManager). On failure `out` may be partially populated; inspect
/// the result's error.
Btor2ParseResult parse_btor2(const std::string& text, TransitionSystem& out);

}  // namespace sepe::ts
