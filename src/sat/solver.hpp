// solver.hpp — incremental CDCL SAT solver (the native sat::Backend).
//
// This is the decision engine under the whole repository: the bit-blasted
// SMT facade (src/smt) lowers bit-vector formulas onto it, CEGIS (src/synth)
// uses it incrementally across refinement iterations, and BMC (src/bmc)
// solves unrolled transition systems on it — all through the abstract
// sat::Backend seam (backend.hpp).
//
// Features: two-watched-literal propagation, first-UIP conflict analysis
// with clause minimization, VSIDS branching with exponential decay, phase
// saving, Luby restarts, LBD-based learnt-clause reduction, solving under
// assumptions (the incremental interface CEGIS relies on), and bounded
// inprocessing between restarts (variable elimination, subsumption,
// vivification — see docs/SOLVER.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sat/backend.hpp"
#include "sat/exchange.hpp"

namespace sepe::sat {

/// Tunable CDCL heuristics, extracted from what used to be hard-coded
/// constants so a campaign job can race differently-configured solver
/// instances on the same query (portfolio solving). The defaults are
/// tuned on the deep-UNSAT QED campaign queries (short Luby bursts,
/// faster decay, twice the learnt-clause retention of the historical
/// constants — ~30% fewer total conflicts on the Table-1 sweep; the
/// historical configuration survives as portfolio_member(3)).
///
/// Every knob is deterministic: two solvers with the same config and the
/// same clause stream make identical decisions (random branching draws
/// from a fixed-seed splitmix64, never from entropy).
struct SolverConfig {
  enum class Restart : std::uint8_t { Luby, Geometric };

  /// VSIDS activity decay per conflict (activities divide by this).
  double var_decay = 0.90;
  Restart restart = Restart::Luby;
  /// Conflicts before the first restart (Luby: multiplier of the series).
  unsigned restart_base = 50;
  /// Geometric restarts: interval growth factor per restart.
  double restart_mult = 1.5;
  /// Initial saved phase of fresh variables (phase saving overwrites it).
  bool phase_init_true = false;
  /// Branch on a pseudo-random unassigned variable every N decisions
  /// (0 = pure VSIDS).
  unsigned random_branch_freq = 0;
  /// Seed of the random-branching generator.
  std::uint64_t seed = 1;
  /// Learnt-DB reductions start at this many learnts...
  std::uint64_t reduce_base = 8000;
  /// ...and re-trigger after this many more.
  std::uint64_t reduce_increment = 4000;
  /// Inprocessing cadence: run the simplification pipeline at the first
  /// restart after this many conflicts since the previous run
  /// (0 = inprocessing off). See docs/SOLVER.md for the pipeline.
  std::uint64_t inprocess_interval = 4000;
  /// Bounded variable elimination: a variable is a candidate only while
  /// both polarities occur in at most this many problem clauses
  /// (0 = the elimination pass is off).
  unsigned bve_occurrence_limit = 10;
  /// Clause vivification pass toggle (bounded re-propagation of problem
  /// clauses to shrink or drop them).
  bool vivify = true;
  /// Per-solver clause-arena ceiling in MiB (0 = none). When the arena
  /// outgrows it, solve() degrades to Unknown and out_of_memory() latches
  /// — a memory-starved job costs a diagnosed UNKNOWN row, never an
  /// abort. Deterministic: the arena size is a pure function of the
  /// clause stream.
  unsigned memory_limit_mb = 0;
  /// Clause sharing (sat/exchange.hpp): export learnt clauses with LBD at
  /// most this (further capped by the job-level attach_sharing lbd_cap).
  /// Only consulted once sharing is attached; a detached solver behaves
  /// identically at any value.
  unsigned share_lbd_cap = 8;
  /// Poll the exchange pool for foreign clauses at the first restart after
  /// this many conflicts since the previous poll.
  std::uint64_t share_import_interval = 2000;

  bool operator==(const SolverConfig&) const = default;

  /// Round-trippable "key=value;..." form (diagnostics, reports, tests).
  std::string to_string() const;
  /// Parse to_string() output. Nullopt on any malformed field.
  static std::optional<SolverConfig> from_string(const std::string& text);

  /// The standard portfolio: member 0 is the default config; higher
  /// indices diversify restarts, decay, phase, random branching and the
  /// inprocessing pipeline. Deterministic in `index`.
  static SolverConfig portfolio_member(unsigned index);
};

/// Incremental CDCL SAT solver — the native Backend implementation.
///
/// Usage: new_var() to allocate variables, add_clause() to add constraints
/// (allowed between solve calls), then solve() or solve(assumptions).
/// After Sat, model_value() reads the satisfying assignment. After an
/// assumption-based Unsat, failed_assumptions() gives the subset used.
class Solver final : public Backend {
 public:
  explicit Solver(const SolverConfig& config = {});

  const SolverConfig& config() const { return config_; }

  BackendKind kind() const override { return BackendKind::Native; }
  std::string name() const override { return "native"; }

  int new_var() override;
  int num_vars() const override { return static_cast<int>(assigns_.size()); }

  using Backend::add_clause;
  bool add_clause(std::vector<Lit> lits) override;

  using Backend::solve;
  SolveResult solve(const std::vector<Lit>& assumptions) override;

  using Backend::model_value;
  bool model_value(int var) const override {
    return var < static_cast<int>(model_.size()) && model_[var] == Value::True;
  }

  const std::vector<Lit>& failed_assumptions() const override { return conflict_core_; }

  // --- statistics, for the micro benches and EXPERIMENTS.md ---
  std::uint64_t num_conflicts() const override { return stats_conflicts_; }
  std::uint64_t num_decisions() const override { return stats_decisions_; }
  std::uint64_t num_propagations() const override { return stats_propagations_; }
  std::uint64_t num_restarts() const override { return stats_restarts_; }
  std::size_t num_clauses() const override { return clauses_.size(); }
  std::size_t num_learnts() const override { return learnts_.size(); }
  std::uint64_t num_eliminated_vars() const override { return stats_eliminated_vars_; }
  std::uint64_t num_subsumed_clauses() const override { return stats_subsumed_clauses_; }
  std::uint64_t num_vivified_clauses() const override { return stats_vivified_clauses_; }
  bool out_of_memory() const override { return hit_memory_limit_; }

  // --- learnt-clause sharing (sat/exchange.hpp) ---
  bool supports_sharing() const override { return true; }
  void attach_sharing(ClauseExchange* exchange, ClauseVault* vault, unsigned member,
                      unsigned lbd_cap) override;
  void set_share_epoch(const ShareKey& epoch) override;
  std::uint64_t num_clauses_exported() const override { return stats_exported_; }
  std::uint64_t num_clauses_imported() const override { return stats_imported_; }
  std::uint64_t num_vault_hits() const override { return stats_vault_hits_; }

 private:
  // Clauses live in an arena; a ClauseRef is an offset into it.
  using ClauseRef = std::uint32_t;
  static constexpr ClauseRef kNullRef = std::numeric_limits<ClauseRef>::max();

  struct ClauseHeader {
    std::uint32_t size;
    std::uint32_t lbd;       // literal block distance (glue); 0 for problem clauses
    float activity;
    // literals follow inline in the arena
  };

  struct Watcher {
    ClauseRef ref;
    Lit blocker;  // quick check to skip clause traversal
  };

  ClauseHeader* header(ClauseRef r) {
    return reinterpret_cast<ClauseHeader*>(&arena_[r]);
  }
  const ClauseHeader* header(ClauseRef r) const {
    return reinterpret_cast<const ClauseHeader*>(&arena_[r]);
  }
  Lit* lits(ClauseRef r) {
    return reinterpret_cast<Lit*>(&arena_[r + sizeof(ClauseHeader)]);
  }
  const Lit* lits(ClauseRef r) const {
    return reinterpret_cast<const Lit*>(&arena_[r + sizeof(ClauseHeader)]);
  }

  ClauseRef alloc_clause(const std::vector<Lit>& lits, bool learnt);
  void attach(ClauseRef ref);
  void detach(ClauseRef ref);

  Value value(int var) const { return assigns_[var]; }
  Value value(Lit l) const { return assigns_[l.var()] ^ l.sign(); }

  void enqueue(Lit l, ClauseRef reason);
  ClauseRef propagate(bool problem_only = false);
  void analyze(ClauseRef confl, std::vector<Lit>& out_learnt, int& out_btlevel,
               std::uint32_t& out_lbd);
  bool literal_redundant(Lit l, std::uint32_t abstract_levels);
  void analyze_final(Lit trail_false);
  void backtrack(int level);
  Lit pick_branch();
  void bump_var(int var);
  void decay_var_activity() { var_inc_ /= config_.var_decay; }
  void bump_clause(ClauseRef ref);
  void reduce_learnts();
  void rescale_var_activity();
  static std::uint64_t luby(std::uint64_t i);

  // --- inprocessing (between restarts, at decision level 0) ---
  //
  // The pipeline copies the clause database out of the arena, simplifies
  // it as plain literal vectors (root simplification, subsumption and
  // self-subsuming resolution, bounded variable elimination), rebuilds
  // the arena compactly, then vivifies in place using the solver's own
  // propagation. Eliminated variables carry their removed clauses on
  // elim_stack_ so models can be repaired and the variables reactivated
  // if a later add_clause() or assumption mentions them (the incremental
  // soundness story — see docs/SOLVER.md).
  void inprocess(const std::vector<Lit>& assumptions);
  void rebuild_clause_db(const std::vector<std::vector<Lit>>& problem,
                         const std::vector<std::pair<std::vector<Lit>, std::uint32_t>>&
                             learnts);
  void vivify_round();
  void reactivate(int var);
  void repair_model();
  bool eliminated(int var) const {
    return var < static_cast<int>(eliminated_.size()) && eliminated_[var] != 0;
  }

  // --- learnt-clause sharing ---
  //
  // Exports are buffered and flushed at restart boundaries / solve exit /
  // epoch changes; imports land only at decision level 0 and are attached
  // as learnts (lbd >= 2), so reduce_learnts can drop them and the
  // vivifier's problem-only propagation never leans on them (the PR-7
  // soundness rule). share_seen_ records the hash of every clause this
  // solver exported or imported, preventing self re-import through the
  // vault or the pool.
  bool sharing_enabled() const {
    return share_cap_ != 0 && (share_exchange_ != nullptr || share_vault_ != nullptr);
  }
  void try_export(const std::vector<Lit>& learnt, std::uint32_t lbd);
  void flush_exports();
  void import_clause(const SharedClause& clause);
  void import_pending();

  /// The per-job memory ceiling (config_.memory_limit_mb, or the
  /// solver.alloc:oom fault point): checked at solve() entry (the arena
  /// is mostly grown by bit-blasting before the search starts) and once
  /// per conflict (learnt growth). Latches hit_memory_limit_.
  bool memory_exceeded();

  int decision_level() const { return static_cast<int>(trail_lim_.size()); }
  std::uint32_t compute_lbd(const std::vector<Lit>& clause);

  // Heap-based VSIDS order.
  void heap_insert(int var);
  void heap_percolate_up(int i);
  void heap_percolate_down(int i);
  int heap_pop();
  bool heap_empty() const { return heap_.empty(); }
  bool heap_contains(int var) const {
    return var < static_cast<int>(heap_index_.size()) && heap_index_[var] >= 0;
  }

  std::uint64_t restart_interval(std::uint64_t restart_count) const;
  std::uint64_t next_random();

  static constexpr double kActivityLimit = 1e100;

  SolverConfig config_;
  std::uint64_t rng_state_;

  std::vector<std::uint8_t> arena_;
  std::vector<ClauseRef> clauses_;
  std::vector<ClauseRef> learnts_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by literal code

  std::vector<Value> assigns_;
  std::vector<Value> model_;
  std::vector<Value> saved_phase_;
  std::vector<int> level_;
  std::vector<ClauseRef> reason_;
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  std::size_t propagate_head_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  std::vector<int> heap_;        // binary max-heap of variables
  std::vector<int> heap_index_;  // var -> heap position, -1 if absent

  double clause_inc_ = 1.0;

  bool root_unsat_ = false;
  bool hit_memory_limit_ = false;
  std::vector<Lit> conflict_core_;

  // Inprocessing state. elim_stack_ records, per eliminated variable (in
  // elimination order), every problem clause that mentioned it; a
  // reactivated entry is tombstoned with var = -1 but keeps its slot so
  // repair_model() can walk the stack in reverse elimination order.
  std::vector<std::uint8_t> eliminated_;
  struct ElimRecord {
    int var;
    std::vector<std::vector<Lit>> clauses;
  };
  std::vector<ElimRecord> elim_stack_;
  std::uint64_t next_inprocess_ = 0;
  std::size_t vivify_cursor_ = 0;

  // scratch for analyze()
  std::vector<std::uint8_t> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<int> minimize_marked_;
  std::vector<int> analyze_toclear_;

  // Clause-sharing state (all inert until attach_sharing is called).
  static constexpr std::size_t kShareMaxLits = 30;
  ClauseExchange* share_exchange_ = nullptr;
  ClauseVault* share_vault_ = nullptr;
  unsigned share_member_ = 0;
  unsigned share_cap_ = 0;  // effective export LBD cap; 0 = sharing off
  ShareKey share_epoch_;
  std::vector<ShareKey> visited_epochs_;
  std::unordered_map<ShareKey, std::size_t, ShareKeyHash> exchange_cursors_;
  std::uint64_t exchange_seen_version_ = 0;
  std::uint64_t next_share_import_ = 0;
  std::vector<SharedClause> export_buffer_;
  std::unordered_set<std::uint64_t> share_seen_;
  std::uint64_t stats_exported_ = 0;
  std::uint64_t stats_imported_ = 0;
  std::uint64_t stats_vault_hits_ = 0;

  std::uint64_t stats_conflicts_ = 0;
  std::uint64_t stats_decisions_ = 0;
  std::uint64_t stats_propagations_ = 0;
  std::uint64_t stats_restarts_ = 0;
  std::uint64_t stats_eliminated_vars_ = 0;
  std::uint64_t stats_subsumed_clauses_ = 0;
  std::uint64_t stats_vivified_clauses_ = 0;
};

}  // namespace sepe::sat
