// solver.hpp — incremental CDCL SAT solver.
//
// This is the decision engine under the whole repository: the bit-blasted
// SMT facade (src/smt) lowers bit-vector formulas onto it, CEGIS (src/synth)
// uses it incrementally across refinement iterations, and BMC (src/bmc)
// solves unrolled transition systems on it.
//
// Features: two-watched-literal propagation, first-UIP conflict analysis
// with clause minimization, VSIDS branching with exponential decay, phase
// saving, Luby restarts, LBD-based learnt-clause reduction, and solving
// under assumptions (the incremental interface CEGIS relies on).
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

namespace sepe::sat {

/// Tunable CDCL heuristics, extracted from what used to be hard-coded
/// constants so a campaign job can race differently-configured solver
/// instances on the same query (portfolio solving). The defaults are
/// tuned on the deep-UNSAT QED campaign queries (short Luby bursts,
/// faster decay, twice the learnt-clause retention of the historical
/// constants — ~30% fewer total conflicts on the Table-1 sweep; the
/// historical configuration survives as portfolio_member(3)).
///
/// Every knob is deterministic: two solvers with the same config and the
/// same clause stream make identical decisions (random branching draws
/// from a fixed-seed splitmix64, never from entropy).
struct SolverConfig {
  enum class Restart : std::uint8_t { Luby, Geometric };

  /// VSIDS activity decay per conflict (activities divide by this).
  double var_decay = 0.90;
  Restart restart = Restart::Luby;
  /// Conflicts before the first restart (Luby: multiplier of the series).
  unsigned restart_base = 50;
  /// Geometric restarts: interval growth factor per restart.
  double restart_mult = 1.5;
  /// Initial saved phase of fresh variables (phase saving overwrites it).
  bool phase_init_true = false;
  /// Branch on a pseudo-random unassigned variable every N decisions
  /// (0 = pure VSIDS).
  unsigned random_branch_freq = 0;
  /// Seed of the random-branching generator.
  std::uint64_t seed = 1;
  /// Learnt-DB reductions start at this many learnts...
  std::uint64_t reduce_base = 8000;
  /// ...and re-trigger after this many more.
  std::uint64_t reduce_increment = 4000;

  bool operator==(const SolverConfig&) const = default;

  /// Round-trippable "key=value;..." form (diagnostics, reports, tests).
  std::string to_string() const;
  /// Parse to_string() output. Nullopt on any malformed field.
  static std::optional<SolverConfig> from_string(const std::string& text);

  /// The standard portfolio: member 0 is the default config; higher
  /// indices diversify restarts, decay, phase and random branching.
  /// Deterministic in `index`.
  static SolverConfig portfolio_member(unsigned index);
};

/// A propositional literal: variable index plus sign. Encoded as
/// 2*var + (negated ? 1 : 0), the classic MiniSat representation.
class Lit {
 public:
  Lit() : code_(-2) {}
  Lit(int var, bool negated) : code_(2 * var + (negated ? 1 : 0)) {}

  static Lit from_code(int code) {
    Lit l;
    l.code_ = code;
    return l;
  }

  int var() const { return code_ >> 1; }
  bool sign() const { return code_ & 1; }  // true = negated
  int code() const { return code_; }
  Lit operator~() const { return from_code(code_ ^ 1); }

  friend bool operator==(Lit a, Lit b) { return a.code_ == b.code_; }
  friend bool operator!=(Lit a, Lit b) { return a.code_ != b.code_; }

 private:
  int code_;
};

enum class Value : std::uint8_t { False = 0, True = 1, Unknown = 2 };

inline Value operator^(Value v, bool sign) {
  if (v == Value::Unknown) return v;
  return static_cast<Value>(static_cast<std::uint8_t>(v) ^
                            static_cast<std::uint8_t>(sign));
}

/// Result of a solve() call.
enum class SolveResult { Sat, Unsat, Unknown /* resource limit hit */ };

/// Incremental CDCL SAT solver.
///
/// Usage: new_var() to allocate variables, add_clause() to add constraints
/// (allowed between solve calls), then solve() or solve(assumptions).
/// After Sat, model_value() reads the satisfying assignment. After an
/// assumption-based Unsat, failed_assumptions() gives the subset used.
class Solver {
 public:
  explicit Solver(const SolverConfig& config = {});

  const SolverConfig& config() const { return config_; }

  /// Allocate a fresh variable; returns its index.
  int new_var();
  int num_vars() const { return static_cast<int>(assigns_.size()); }

  /// Add a clause (disjunction of literals). Returns false if the solver
  /// is already in an unsatisfiable root state.
  bool add_clause(std::vector<Lit> lits);
  bool add_clause(Lit a) { return add_clause(std::vector<Lit>{a}); }
  bool add_clause(Lit a, Lit b) { return add_clause(std::vector<Lit>{a, b}); }
  bool add_clause(Lit a, Lit b, Lit c) { return add_clause(std::vector<Lit>{a, b, c}); }

  SolveResult solve() { return solve({}); }
  SolveResult solve(const std::vector<Lit>& assumptions);

  /// Value of a variable in the last satisfying assignment. Variables
  /// created after that solve read as false.
  bool model_value(int var) const {
    return var < static_cast<int>(model_.size()) && model_[var] == Value::True;
  }
  bool model_value(Lit l) const { return model_value(l.var()) ^ l.sign(); }

  /// After Unsat under assumptions: the (not necessarily minimal) subset of
  /// assumptions involved in the refutation.
  const std::vector<Lit>& failed_assumptions() const { return conflict_core_; }

  /// Abort solve() with Unknown after this many conflicts (0 = no limit).
  void set_conflict_budget(std::uint64_t budget) { conflict_budget_ = budget; }
  std::uint64_t conflict_budget() const { return conflict_budget_; }

  /// Abort solve() with Unknown after this many wall-clock seconds
  /// (0 = no limit). Checked every 1024 conflicts, so the overshoot is
  /// bounded by one short conflict burst.
  void set_time_budget(double seconds) { time_budget_seconds_ = seconds; }
  double time_budget() const { return time_budget_seconds_; }

  /// Cooperative cancellation: when `stop` is non-null and becomes true
  /// (typically set from another thread), solve() aborts with Unknown at
  /// the next decision or conflict. The flag must outlive the solver or
  /// be cleared with set_stop_flag(nullptr). Used by the campaign engine
  /// to cancel the losing side of a BMC/k-induction race.
  void set_stop_flag(const std::atomic<bool>* stop) { stop_ = stop; }
  const std::atomic<bool>* stop_flag() const { return stop_; }
  bool stop_requested() const {
    return stop_ != nullptr && stop_->load(std::memory_order_relaxed);
  }

  // --- statistics, for the micro benches and EXPERIMENTS.md ---
  std::uint64_t num_conflicts() const { return stats_conflicts_; }
  std::uint64_t num_decisions() const { return stats_decisions_; }
  std::uint64_t num_propagations() const { return stats_propagations_; }
  std::uint64_t num_restarts() const { return stats_restarts_; }
  std::size_t num_clauses() const { return clauses_.size(); }
  std::size_t num_learnts() const { return learnts_.size(); }

 private:
  // Clauses live in an arena; a ClauseRef is an offset into it.
  using ClauseRef = std::uint32_t;
  static constexpr ClauseRef kNullRef = std::numeric_limits<ClauseRef>::max();

  struct ClauseHeader {
    std::uint32_t size;
    std::uint32_t lbd;       // literal block distance (glue); 0 for problem clauses
    float activity;
    // literals follow inline in the arena
  };

  struct Watcher {
    ClauseRef ref;
    Lit blocker;  // quick check to skip clause traversal
  };

  ClauseHeader* header(ClauseRef r) {
    return reinterpret_cast<ClauseHeader*>(&arena_[r]);
  }
  const ClauseHeader* header(ClauseRef r) const {
    return reinterpret_cast<const ClauseHeader*>(&arena_[r]);
  }
  Lit* lits(ClauseRef r) {
    return reinterpret_cast<Lit*>(&arena_[r + sizeof(ClauseHeader)]);
  }
  const Lit* lits(ClauseRef r) const {
    return reinterpret_cast<const Lit*>(&arena_[r + sizeof(ClauseHeader)]);
  }

  ClauseRef alloc_clause(const std::vector<Lit>& lits, bool learnt);
  void attach(ClauseRef ref);
  void detach(ClauseRef ref);

  Value value(int var) const { return assigns_[var]; }
  Value value(Lit l) const { return assigns_[l.var()] ^ l.sign(); }

  void enqueue(Lit l, ClauseRef reason);
  ClauseRef propagate();
  void analyze(ClauseRef confl, std::vector<Lit>& out_learnt, int& out_btlevel,
               std::uint32_t& out_lbd);
  bool literal_redundant(Lit l, std::uint32_t abstract_levels);
  void analyze_final(Lit trail_false);
  void backtrack(int level);
  Lit pick_branch();
  void bump_var(int var);
  void decay_var_activity() { var_inc_ /= config_.var_decay; }
  void bump_clause(ClauseRef ref);
  void reduce_learnts();
  void rescale_var_activity();
  static std::uint64_t luby(std::uint64_t i);

  int decision_level() const { return static_cast<int>(trail_lim_.size()); }
  std::uint32_t compute_lbd(const std::vector<Lit>& clause);

  // Heap-based VSIDS order.
  void heap_insert(int var);
  void heap_percolate_up(int i);
  void heap_percolate_down(int i);
  int heap_pop();
  bool heap_empty() const { return heap_.empty(); }
  bool heap_contains(int var) const {
    return var < static_cast<int>(heap_index_.size()) && heap_index_[var] >= 0;
  }

  std::uint64_t restart_interval(std::uint64_t restart_count) const;
  std::uint64_t next_random();

  static constexpr double kActivityLimit = 1e100;

  SolverConfig config_;
  std::uint64_t rng_state_;

  std::vector<std::uint8_t> arena_;
  std::vector<ClauseRef> clauses_;
  std::vector<ClauseRef> learnts_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by literal code

  std::vector<Value> assigns_;
  std::vector<Value> model_;
  std::vector<Value> saved_phase_;
  std::vector<int> level_;
  std::vector<ClauseRef> reason_;
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  std::size_t propagate_head_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  std::vector<int> heap_;        // binary max-heap of variables
  std::vector<int> heap_index_;  // var -> heap position, -1 if absent

  double clause_inc_ = 1.0;

  bool root_unsat_ = false;
  std::vector<Lit> conflict_core_;
  std::uint64_t conflict_budget_ = 0;
  double time_budget_seconds_ = 0.0;
  const std::atomic<bool>* stop_ = nullptr;

  // scratch for analyze()
  std::vector<std::uint8_t> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<int> minimize_marked_;
  std::vector<int> analyze_toclear_;

  std::uint64_t stats_conflicts_ = 0;
  std::uint64_t stats_decisions_ = 0;
  std::uint64_t stats_propagations_ = 0;
  std::uint64_t stats_restarts_ = 0;
};

}  // namespace sepe::sat
