#include "sat/solver.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <utility>

namespace sepe::sat {

std::string SolverConfig::to_string() const {
  char buf[336];
  int n = std::snprintf(buf, sizeof buf,
                        "decay=%.17g;restart=%s;base=%u;mult=%.17g;phase=%d;rand=%u;"
                        "seed=%" PRIu64 ";reduce=%" PRIu64 "+%" PRIu64 ";inproc=%" PRIu64
                        ";bve=%u;vivify=%d",
                        var_decay, restart == Restart::Luby ? "luby" : "geometric",
                        restart_base, restart_mult, phase_init_true ? 1 : 0,
                        random_branch_freq, seed, reduce_base, reduce_increment,
                        inprocess_interval, bve_occurrence_limit, vivify ? 1 : 0);
  // Tail segments are appended only when non-default so existing
  // (pre-knob) strings stay byte-identical and keep parsing.
  if (memory_limit_mb != 0)
    n += std::snprintf(buf + n, sizeof buf - n, ";mem=%u", memory_limit_mb);
  if (share_lbd_cap != 8)
    n += std::snprintf(buf + n, sizeof buf - n, ";slbd=%u", share_lbd_cap);
  if (share_import_interval != 2000)
    std::snprintf(buf + n, sizeof buf - n, ";simp=%" PRIu64, share_import_interval);
  return buf;
}

std::optional<SolverConfig> SolverConfig::from_string(const std::string& text) {
  SolverConfig c;
  char restart_name[16] = {0};
  int phase = 0;
  int vivify_flag = 0;
  int consumed = 0;
  const int got = std::sscanf(
      text.c_str(),
      "decay=%lg;restart=%15[a-z];base=%u;mult=%lg;phase=%d;rand=%u;"
      "seed=%" SCNu64 ";reduce=%" SCNu64 "+%" SCNu64 ";inproc=%" SCNu64
      ";bve=%u;vivify=%d%n",
      &c.var_decay, restart_name, &c.restart_base, &c.restart_mult, &phase,
      &c.random_branch_freq, &c.seed, &c.reduce_base, &c.reduce_increment,
      &c.inprocess_interval, &c.bve_occurrence_limit, &vivify_flag, &consumed);
  if (got != 12) return std::nullopt;
  // Optional tail segments, in emission order. to_string writes each one
  // only when the knob is non-default, so a tail carrying the default
  // value is non-canonical and rejected.
  const char* tail = text.c_str() + consumed;
  int seg = 0;
  if (std::sscanf(tail, ";mem=%u%n", &c.memory_limit_mb, &seg) == 1) {
    if (c.memory_limit_mb == 0) return std::nullopt;
    tail += seg;
  }
  seg = 0;
  if (std::sscanf(tail, ";slbd=%u%n", &c.share_lbd_cap, &seg) == 1) {
    if (c.share_lbd_cap == 8) return std::nullopt;
    tail += seg;
  }
  seg = 0;
  if (std::sscanf(tail, ";simp=%" SCNu64 "%n", &c.share_import_interval, &seg) == 1) {
    if (c.share_import_interval == 2000) return std::nullopt;
    tail += seg;
  }
  if (*tail != '\0') return std::nullopt;
  if (!std::strcmp(restart_name, "luby")) {
    c.restart = Restart::Luby;
  } else if (!std::strcmp(restart_name, "geometric")) {
    c.restart = Restart::Geometric;
  } else {
    return std::nullopt;
  }
  if (phase != 0 && phase != 1) return std::nullopt;
  c.phase_init_true = phase == 1;
  if (vivify_flag != 0 && vivify_flag != 1) return std::nullopt;
  c.vivify = vivify_flag == 1;
  if (!(c.var_decay > 0.0 && c.var_decay <= 1.0)) return std::nullopt;
  if (!(c.restart_mult >= 1.0) || c.restart_base == 0) return std::nullopt;
  // A zero reduction cadence would purge the learnt DB on every conflict.
  if (c.reduce_base == 0 || c.reduce_increment == 0) return std::nullopt;
  return c;
}

SolverConfig SolverConfig::portfolio_member(unsigned index) {
  SolverConfig c;
  if (index == 0) return c;  // member 0: the default configuration, untouched
  switch (index % 4) {
    case 0:
      // Index 4, 8, ...: default heuristics plus seeded random branching,
      // so the per-index seed actually diversifies the search.
      c.random_branch_freq = 256;
      break;
    case 1:
      // Slow decay + geometric restarts + eager inprocessing: long-haul
      // UNSAT grinder.
      c.var_decay = 0.99;
      c.restart = Restart::Geometric;
      c.restart_base = 200;
      c.restart_mult = 1.3;
      c.inprocess_interval = 2000;
      // The grinder both gives and takes the most: export looser glue,
      // poll the pool twice as often.
      c.share_lbd_cap = 10;
      c.share_import_interval = 1000;
      break;
    case 2:
      // Phase-true init + occasional random branching, no vivification:
      // model diversity for SAT-leaning queries.
      c.phase_init_true = true;
      c.random_branch_freq = 128;
      c.vivify = false;
      // SAT-leaning member: export only the tightest glue (its learnts
      // mostly describe the model neighbourhood, not the core).
      c.share_lbd_cap = 4;
      break;
    case 3:
      // The pre-tuning historical configuration: slower decay, longer
      // Luby bursts, eager learnt reduction, no inprocessing at all —
      // structurally different search from the retention-heavy default.
      c.var_decay = 0.95;
      c.restart_base = 100;
      c.reduce_base = 4000;
      c.reduce_increment = 2000;
      c.inprocess_interval = 0;
      // Historical member keeps its independent search character: rare
      // imports so foreign glue barely perturbs its trajectory.
      c.share_import_interval = 8000;
      break;
  }
  c.seed = 0x9e3779b97f4a7c15ULL * (index + 1);
  return c;
}

Solver::Solver(const SolverConfig& config) : config_(config), rng_state_(config.seed) {}

std::uint64_t Solver::next_random() {
  // splitmix64 — deterministic from config_.seed.
  std::uint64_t z = (rng_state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

int Solver::new_var() {
  const int v = static_cast<int>(assigns_.size());
  assigns_.push_back(Value::Unknown);
  model_.push_back(Value::False);
  saved_phase_.push_back(config_.phase_init_true ? Value::True : Value::False);
  level_.push_back(0);
  reason_.push_back(kNullRef);
  activity_.push_back(0.0);
  heap_index_.push_back(-1);
  seen_.push_back(0);
  eliminated_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_insert(v);
  return v;
}

Solver::ClauseRef Solver::alloc_clause(const std::vector<Lit>& clause_lits, bool learnt) {
  const std::size_t bytes = sizeof(ClauseHeader) + clause_lits.size() * sizeof(Lit);
  // Keep 4-byte alignment of the arena.
  const std::size_t aligned = (bytes + 3) & ~std::size_t(3);
  const ClauseRef ref = static_cast<ClauseRef>(arena_.size());
  arena_.resize(arena_.size() + aligned);
  ClauseHeader* h = header(ref);
  h->size = static_cast<std::uint32_t>(clause_lits.size());
  h->lbd = learnt ? 2 : 0;
  h->activity = 0.0f;
  std::copy(clause_lits.begin(), clause_lits.end(), lits(ref));
  return ref;
}

void Solver::attach(ClauseRef ref) {
  const Lit* c = lits(ref);
  watches_[(~c[0]).code()].push_back({ref, c[1]});
  watches_[(~c[1]).code()].push_back({ref, c[0]});
}

void Solver::detach(ClauseRef ref) {
  const Lit* c = lits(ref);
  for (Lit w : {~c[0], ~c[1]}) {
    auto& ws = watches_[w.code()];
    for (std::size_t i = 0; i < ws.size(); ++i) {
      if (ws[i].ref == ref) {
        ws[i] = ws.back();
        ws.pop_back();
        break;
      }
    }
  }
}

bool Solver::add_clause(std::vector<Lit> clause_lits) {
  if (root_unsat_) return false;
  assert(decision_level() == 0);

  // A clause mentioning a variable eliminated by inprocessing brings that
  // variable back first (restoring its removed clauses), so elimination
  // stays invisible to incremental callers.
  for (Lit l : clause_lits)
    if (eliminated(l.var())) reactivate(l.var());
  if (root_unsat_) return false;

  // Normalize: sort, dedupe, drop false literals, detect tautology/sat.
  std::sort(clause_lits.begin(), clause_lits.end(),
            [](Lit a, Lit b) { return a.code() < b.code(); });
  std::vector<Lit> out;
  out.reserve(clause_lits.size());
  Lit prev = Lit::from_code(-2);
  for (Lit l : clause_lits) {
    if (l == prev) continue;
    if (l == ~prev) return true;  // tautology
    if (value(l) == Value::True) return true;
    if (value(l) == Value::False) { prev = l; continue; }
    out.push_back(l);
    prev = l;
  }

  if (out.empty()) {
    root_unsat_ = true;
    return false;
  }
  if (out.size() == 1) {
    enqueue(out[0], kNullRef);
    if (propagate() != kNullRef) {
      root_unsat_ = true;
      return false;
    }
    return true;
  }
  const ClauseRef ref = alloc_clause(out, /*learnt=*/false);
  clauses_.push_back(ref);
  attach(ref);
  return true;
}

void Solver::enqueue(Lit l, ClauseRef reason) {
  assert(value(l) == Value::Unknown);
  const int v = l.var();
  assigns_[v] = l.sign() ? Value::False : Value::True;
  level_[v] = decision_level();
  reason_[v] = reason;
  trail_.push_back(l);
}

Solver::ClauseRef Solver::propagate(bool problem_only) {
  while (propagate_head_ < trail_.size()) {
    const Lit p = trail_[propagate_head_++];
    ++stats_propagations_;
    auto& ws = watches_[p.code()];
    std::size_t i = 0, j = 0;
    while (i < ws.size()) {
      const Watcher w = ws[i];
      if (value(w.blocker) == Value::True) {
        ws[j++] = ws[i++];
        continue;
      }
      ClauseHeader* h = header(w.ref);
      if (problem_only && h->lbd != 0) {
        // Vivification proofs must not lean on learnt clauses: a learnt is
        // a consequence of the *original* formula, not of the current
        // (post-elimination) database, and reduce_learnts may drop it
        // later — a problem clause deleted on its strength would be gone
        // for good. Skipped watchers are left in place; the caller re-runs
        // a full propagation afterwards to restore their watch invariants.
        ws[j++] = ws[i++];
        continue;
      }
      Lit* c = lits(w.ref);
      // Ensure the false literal ~p is at position 1.
      const Lit not_p = ~p;
      if (c[0] == not_p) std::swap(c[0], c[1]);
      assert(c[1] == not_p);
      if (value(c[0]) == Value::True) {
        ws[j++] = {w.ref, c[0]};
        ++i;
        continue;
      }
      // Look for a new watch.
      bool found = false;
      for (std::uint32_t k = 2; k < h->size; ++k) {
        if (value(c[k]) != Value::False) {
          std::swap(c[1], c[k]);
          watches_[(~c[1]).code()].push_back({w.ref, c[0]});
          found = true;
          break;
        }
      }
      if (found) {
        ++i;  // watcher moved elsewhere; do not keep
        continue;
      }
      // Clause is unit or conflicting.
      if (value(c[0]) == Value::False) {
        // Conflict: keep remaining watchers, return.
        while (i < ws.size()) ws[j++] = ws[i++];
        ws.resize(j);
        return w.ref;
      }
      enqueue(c[0], w.ref);
      ws[j++] = {w.ref, c[0]};
      ++i;
    }
    ws.resize(j);
  }
  return kNullRef;
}

std::uint32_t Solver::compute_lbd(const std::vector<Lit>& clause) {
  // LBD = number of distinct decision levels in the clause.
  static thread_local std::vector<int> mark;
  static thread_local int stamp = 0;
  ++stamp;
  std::uint32_t lbd = 0;
  for (Lit l : clause) {
    const int lev = level_[l.var()];
    if (lev >= static_cast<int>(mark.size())) mark.resize(lev + 1, 0);
    if (mark[lev] != stamp) {
      mark[lev] = stamp;
      ++lbd;
    }
  }
  return lbd;
}

void Solver::bump_var(int var) {
  activity_[var] += var_inc_;
  if (activity_[var] > kActivityLimit) rescale_var_activity();
  if (heap_contains(var)) heap_percolate_up(heap_index_[var]);
}

void Solver::rescale_var_activity() {
  for (double& a : activity_) a *= 1e-100;
  var_inc_ *= 1e-100;
}

void Solver::bump_clause(ClauseRef ref) {
  ClauseHeader* h = header(ref);
  h->activity += static_cast<float>(clause_inc_);
  if (h->activity > 1e20f) {
    for (ClauseRef r : learnts_) header(r)->activity *= 1e-20f;
    clause_inc_ *= 1e-20;
  }
}

void Solver::analyze(ClauseRef confl, std::vector<Lit>& out_learnt, int& out_btlevel,
                     std::uint32_t& out_lbd) {
  out_learnt.clear();
  out_learnt.push_back(Lit());  // placeholder for the asserting literal
  int counter = 0;
  Lit p;
  std::size_t index = trail_.size();
  bool first = true;

  do {
    assert(confl != kNullRef);
    bump_clause(confl);
    const ClauseHeader* h = header(confl);
    const Lit* c = lits(confl);
    for (std::uint32_t k = first ? 0 : 1; k < h->size; ++k) {
      const Lit q = c[k];
      const int v = q.var();
      if (!seen_[v] && level_[v] > 0) {
        seen_[v] = 1;
        bump_var(v);
        if (level_[v] >= decision_level()) {
          ++counter;
        } else {
          out_learnt.push_back(q);
        }
      }
    }
    // Find the next literal on the trail to resolve on.
    while (!seen_[trail_[--index].var()]) {}
    p = trail_[index];
    confl = reason_[p.var()];
    seen_[p.var()] = 0;
    --counter;
    first = false;
  } while (counter > 0);
  out_learnt[0] = ~p;

  // Clause minimization: drop literals implied by the rest of the clause.
  // Remember every var marked seen_ so far: literals dropped below still
  // need their marks cleared at the end (stale marks corrupt later calls).
  analyze_toclear_.clear();
  for (Lit l : out_learnt) analyze_toclear_.push_back(l.var());
  std::uint32_t abstract_levels = 0;
  for (std::size_t k = 1; k < out_learnt.size(); ++k)
    abstract_levels |= 1u << (level_[out_learnt[k].var()] & 31);
  std::size_t keep = 1;
  for (std::size_t k = 1; k < out_learnt.size(); ++k) {
    if (reason_[out_learnt[k].var()] == kNullRef ||
        !literal_redundant(out_learnt[k], abstract_levels)) {
      out_learnt[keep++] = out_learnt[k];
    }
  }
  out_learnt.resize(keep);

  // Find backtrack level: the second-highest level in the clause.
  out_btlevel = 0;
  if (out_learnt.size() > 1) {
    std::size_t max_i = 1;
    for (std::size_t k = 2; k < out_learnt.size(); ++k)
      if (level_[out_learnt[k].var()] > level_[out_learnt[max_i].var()]) max_i = k;
    std::swap(out_learnt[1], out_learnt[max_i]);
    out_btlevel = level_[out_learnt[1].var()];
  }
  out_lbd = compute_lbd(out_learnt);

  for (int v : analyze_toclear_) seen_[v] = 0;
  for (int v : minimize_marked_) seen_[v] = 0;
  minimize_marked_.clear();
}

bool Solver::literal_redundant(Lit l, std::uint32_t abstract_levels) {
  analyze_stack_.clear();
  analyze_stack_.push_back(l);
  std::vector<int> to_clear;
  while (!analyze_stack_.empty()) {
    const Lit q = analyze_stack_.back();
    analyze_stack_.pop_back();
    const ClauseRef r = reason_[q.var()];
    if (r == kNullRef) {
      for (int v : to_clear) seen_[v] = 0;
      return false;
    }
    const ClauseHeader* h = header(r);
    const Lit* c = lits(r);
    for (std::uint32_t k = 1; k < h->size; ++k) {
      const Lit p = c[k];
      const int v = p.var();
      if (seen_[v] || level_[v] == 0) continue;
      if (reason_[v] == kNullRef || !((1u << (level_[v] & 31)) & abstract_levels)) {
        for (int u : to_clear) seen_[u] = 0;
        return false;
      }
      seen_[v] = 1;
      to_clear.push_back(v);
      analyze_stack_.push_back(p);
    }
  }
  // Redundant: keep the marks so sibling redundancy checks can reuse them;
  // they are recorded in minimize_marked_ and cleared at the end of
  // analyze() together with the clause's own marks.
  minimize_marked_.insert(minimize_marked_.end(), to_clear.begin(), to_clear.end());
  return true;
}

void Solver::analyze_final(Lit p) {
  // Compute the set of assumptions implying ~p (conflict core).
  conflict_core_.clear();
  conflict_core_.push_back(~p);
  if (decision_level() == 0) return;
  seen_[p.var()] = 1;
  for (std::size_t i = trail_.size(); i-- > static_cast<std::size_t>(trail_lim_[0]);) {
    const int v = trail_[i].var();
    if (!seen_[v]) continue;
    if (reason_[v] == kNullRef) {
      if (v != p.var()) conflict_core_.push_back(~trail_[i]);
    } else {
      const ClauseHeader* h = header(reason_[v]);
      const Lit* c = lits(reason_[v]);
      for (std::uint32_t k = 1; k < h->size; ++k)
        if (level_[c[k].var()] > 0) seen_[c[k].var()] = 1;
    }
    seen_[v] = 0;
  }
  seen_[p.var()] = 0;
}

void Solver::backtrack(int target) {
  if (decision_level() <= target) return;
  for (std::size_t i = trail_.size();
       i-- > static_cast<std::size_t>(trail_lim_[target]);) {
    const int v = trail_[i].var();
    saved_phase_[v] = assigns_[v];
    assigns_[v] = Value::Unknown;
    reason_[v] = kNullRef;
    if (!heap_contains(v)) heap_insert(v);
  }
  trail_.resize(trail_lim_[target]);
  trail_lim_.resize(target);
  propagate_head_ = trail_.size();
}

Lit Solver::pick_branch() {
  // Portfolio diversity: every Nth decision branches on a pseudo-random
  // unassigned variable instead of the VSIDS top. Deterministic (seeded);
  // falls through to VSIDS when the drawn variable is already assigned.
  if (config_.random_branch_freq != 0 && !assigns_.empty() &&
      (stats_decisions_ + 1) % config_.random_branch_freq == 0) {
    const int v = static_cast<int>(next_random() % assigns_.size());
    if (value(v) == Value::Unknown && !eliminated(v)) {
      ++stats_decisions_;
      return Lit(v, saved_phase_[v] == Value::False);
    }
  }
  while (!heap_empty()) {
    const int v = heap_pop();
    if (value(v) == Value::Unknown && !eliminated(v)) {
      ++stats_decisions_;
      return Lit(v, saved_phase_[v] == Value::False);
    }
  }
  return Lit();  // all assigned
}

std::uint64_t Solver::restart_interval(std::uint64_t restart_count) const {
  if (config_.restart == SolverConfig::Restart::Luby)
    return config_.restart_base * luby(restart_count + 1);
  const double interval =
      static_cast<double>(config_.restart_base) *
      std::pow(config_.restart_mult, static_cast<double>(restart_count));
  constexpr double kCap = 1e18;  // avoid overflow on long geometric runs
  return static_cast<std::uint64_t>(std::min(interval, kCap));
}

std::uint64_t Solver::luby(std::uint64_t i) {
  // Luby sequence, 1-based: luby(1..)= 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
  assert(i >= 1);
  std::uint64_t k = 1;
  while ((1ULL << (k + 1)) - 1 <= i) ++k;
  while (i != (1ULL << k) - 1) {
    i -= (1ULL << k) - 1;
    k = 1;
    while ((1ULL << (k + 1)) - 1 <= i) ++k;
  }
  return 1ULL << (k - 1);
}

void Solver::reduce_learnts() {
  // Keep low-LBD ("glue") clauses; drop the worse half of the rest.
  std::vector<ClauseRef> sorted = learnts_;
  std::sort(sorted.begin(), sorted.end(), [this](ClauseRef a, ClauseRef b) {
    const ClauseHeader *ha = header(a), *hb = header(b);
    if (ha->lbd != hb->lbd) return ha->lbd < hb->lbd;
    return ha->activity > hb->activity;
  });
  const std::size_t keep_count = sorted.size() / 2;
  std::vector<ClauseRef> kept;
  kept.reserve(keep_count + 16);
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const ClauseRef r = sorted[i];
    // Never drop clauses that are reasons for current assignments or glue.
    bool locked = false;
    const Lit first = lits(r)[0];
    if (value(first) == Value::True && reason_[first.var()] == r) locked = true;
    if (i < keep_count || header(r)->lbd <= 3 || locked) {
      kept.push_back(r);
    } else {
      detach(r);
    }
  }
  learnts_ = std::move(kept);
}

// --- inprocessing -----------------------------------------------------
//
// The pipeline runs between restarts at decision level 0, bounded so a
// round costs a small fraction of the search it interleaves with:
//
//   1. copy-out      arena -> plain literal vectors; root-satisfied
//                    clauses dropped, root-false literals stripped
//   2. subsumption   forward subsumption + self-subsuming resolution
//                    over the problem clauses
//   3. elimination   bounded variable elimination (occurrence- and
//                    growth-limited); removed clauses go to elim_stack_
//   4. unit fixpoint units produced by 2/3 are propagated at the vector
//                    level until stable
//   5. rebuild       the arena is re-allocated compactly (this is also
//                    what reclaims leaked learnt-clause bytes)
//   6. vivification  bounded re-propagation of problem clauses through
//                    the solver's own watches, shrinking or dropping them
//
// Assumption variables of the running solve are frozen (never
// eliminated); variables eliminated in an earlier solve are reactivated
// by add_clause()/solve() when mentioned again. docs/SOLVER.md states
// the contract in prose.

namespace {

/// True when every literal of `small` occurs in `big` (both sorted by
/// code), with at most one occurring *negated*. On success `*flipped` is
/// that negated literal's code in `big` (self-subsuming resolution), or
/// -1 when `small` subsumes `big` outright. The flipped code is reported
/// out-of-band because code 0 is a valid literal (variable 0, positive).
bool subsume_check(const std::vector<Lit>& small, const std::vector<Lit>& big,
                   int* flipped) {
  *flipped = -1;
  std::size_t i = 0, j = 0;
  while (i < small.size()) {
    if (j == big.size()) return false;
    const int a = small[i].code(), b = big[j].code();
    if (a == b) {
      ++i;
      ++j;
    } else if ((a ^ 1) == b) {
      if (*flipped != -1) return false;
      *flipped = b;
      ++i;
      ++j;
    } else if (a > b) {
      ++j;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

void Solver::inprocess(const std::vector<Lit>& assumptions) {
  assert(decision_level() == 0);
  // Root assignments need no reasons from here on; clearing them lets the
  // arena be rebuilt without dangling clause references.
  for (Lit l : trail_) reason_[l.var()] = kNullRef;

  std::vector<std::uint8_t> frozen(assigns_.size(), 0);
  for (Lit a : assumptions) frozen[a.var()] = 1;

  // 1. Copy-out. Surviving clauses have >= 2 unassigned literals
  // (propagation is complete), sorted by code.
  std::vector<std::vector<Lit>> problem;
  problem.reserve(clauses_.size());
  for (const ClauseRef ref : clauses_) {
    const ClauseHeader* h = header(ref);
    const Lit* c = lits(ref);
    std::vector<Lit> out;
    out.reserve(h->size);
    bool satisfied = false;
    for (std::uint32_t k = 0; k < h->size && !satisfied; ++k) {
      if (value(c[k]) == Value::True) satisfied = true;
      else if (value(c[k]) == Value::Unknown) out.push_back(c[k]);
    }
    if (satisfied) continue;
    assert(out.size() >= 2);
    std::sort(out.begin(), out.end(), [](Lit a, Lit b) { return a.code() < b.code(); });
    problem.push_back(std::move(out));
  }
  std::vector<std::pair<std::vector<Lit>, std::uint32_t>> learnt_db;
  learnt_db.reserve(learnts_.size());
  for (const ClauseRef ref : learnts_) {
    const ClauseHeader* h = header(ref);
    const Lit* c = lits(ref);
    std::vector<Lit> out;
    out.reserve(h->size);
    bool satisfied = false;
    for (std::uint32_t k = 0; k < h->size && !satisfied; ++k) {
      if (value(c[k]) == Value::True) satisfied = true;
      else if (value(c[k]) == Value::Unknown) out.push_back(c[k]);
    }
    if (satisfied) continue;
    assert(out.size() >= 2);
    learnt_db.emplace_back(std::move(out), h->lbd);
  }

  // 2. Forward subsumption + self-subsuming resolution over the problem
  // clauses, driven by occurrence lists of the least-frequent literal.
  std::vector<std::uint8_t> alive(problem.size(), 1);
  {
    std::vector<std::vector<std::uint32_t>> occ(2 * assigns_.size());
    for (std::size_t i = 0; i < problem.size(); ++i)
      for (Lit l : problem[i]) occ[l.code()].push_back(static_cast<std::uint32_t>(i));
    constexpr std::size_t kOccSkip = 64;  // skip super-frequent pivot literals
    for (std::size_t i = 0; i < problem.size(); ++i) {
      if (!alive[i]) continue;
      const std::vector<Lit>& c = problem[i];
      // Pivot on the literal with the fewest occurrences; a flipped pivot
      // also finds the self-subsumption cases on the pivot literal.
      std::size_t best = occ[c[0].code()].size();
      Lit pivot = c[0];
      for (Lit l : c) {
        const std::size_t n = occ[l.code()].size();
        if (n < best) {
          best = n;
          pivot = l;
        }
      }
      if (best > kOccSkip) continue;
      for (int side = 0; side < 2; ++side) {
        const Lit probe = side == 0 ? pivot : ~pivot;
        for (const std::uint32_t j : occ[probe.code()]) {
          if (j == i || !alive[j]) continue;
          std::vector<Lit>& d = problem[j];
          if (d.size() < c.size()) continue;
          int flipped_code;
          if (!subsume_check(c, d, &flipped_code)) continue;
          if (flipped_code < 0) {
            // c subsumes d outright.
            alive[j] = 0;
            ++stats_subsumed_clauses_;
          } else {
            // Self-subsuming resolution: remove the flipped literal
            // from d. occ entries for d go stale; the alive/membership
            // checks above tolerate that.
            const Lit flipped = Lit::from_code(flipped_code);
            d.erase(std::remove(d.begin(), d.end(), flipped), d.end());
            ++stats_subsumed_clauses_;
            if (d.size() <= 1) alive[j] = 0;  // re-added as a unit below
          }
        }
      }
    }
    // Units produced by strengthening: queue them for the fixpoint pass.
    std::vector<std::vector<Lit>> compacted;
    compacted.reserve(problem.size());
    std::vector<std::vector<Lit>> units;
    for (std::size_t i = 0; i < problem.size(); ++i) {
      if (alive[i]) {
        compacted.push_back(std::move(problem[i]));
      } else if (problem[i].size() == 1) {
        units.push_back(std::move(problem[i]));
      }
    }
    problem = std::move(compacted);
    for (auto& u : units) problem.push_back(std::move(u));
  }

  // 3. Bounded variable elimination. A candidate variable must be
  // unassigned, unfrozen, and occur at most bve_occurrence_limit times in
  // each polarity; elimination must not grow the clause count.
  if (config_.bve_occurrence_limit != 0 && !root_unsat_) {
    constexpr std::size_t kMaxResolventLits = 24;
    std::vector<std::vector<std::uint32_t>> occ(2 * assigns_.size());
    for (std::size_t i = 0; i < problem.size(); ++i)
      for (Lit l : problem[i]) occ[l.code()].push_back(static_cast<std::uint32_t>(i));
    std::vector<std::uint8_t> live(problem.size(), 1);
    const auto gather = [&](Lit l, std::vector<std::uint32_t>* out) {
      out->clear();
      for (const std::uint32_t i : occ[l.code()]) {
        if (!live[i]) continue;
        if (std::find(problem[i].begin(), problem[i].end(), l) == problem[i].end())
          continue;  // stale entry (clause strengthened elsewhere)
        out->push_back(i);
      }
    };
    std::vector<std::uint32_t> pos, neg;
    for (int v = 0; v < static_cast<int>(assigns_.size()); ++v) {
      if (frozen[v] || eliminated(v) || value(v) != Value::Unknown) continue;
      const Lit pl(v, false), nl(v, true);
      gather(pl, &pos);
      gather(nl, &neg);
      if (pos.empty() && neg.empty()) continue;
      if (pos.size() > config_.bve_occurrence_limit ||
          neg.size() > config_.bve_occurrence_limit)
        continue;
      // Build the resolvents; give up on growth.
      std::vector<std::vector<Lit>> resolvents;
      bool aborted = false;
      for (const std::uint32_t pi : pos) {
        for (const std::uint32_t ni : neg) {
          std::vector<Lit> r;
          bool tautology = false;
          for (Lit l : problem[pi])
            if (l != pl) r.push_back(l);
          for (Lit l : problem[ni]) {
            if (l == nl) continue;
            if (std::find(r.begin(), r.end(), ~l) != r.end()) {
              tautology = true;
              break;
            }
            if (std::find(r.begin(), r.end(), l) == r.end()) r.push_back(l);
          }
          if (tautology) continue;
          if (r.size() > kMaxResolventLits) {
            aborted = true;
            break;
          }
          std::sort(r.begin(), r.end(),
                    [](Lit a, Lit b) { return a.code() < b.code(); });
          resolvents.push_back(std::move(r));
          if (resolvents.size() > pos.size() + neg.size()) {
            aborted = true;
            break;
          }
        }
        if (aborted) break;
      }
      if (aborted) continue;
      // Commit: record the removed clauses for model repair and
      // reactivation, splice in the resolvents.
      ElimRecord record;
      record.var = v;
      for (const std::uint32_t i : pos) {
        record.clauses.push_back(problem[i]);
        live[i] = 0;
      }
      for (const std::uint32_t i : neg) {
        record.clauses.push_back(problem[i]);
        live[i] = 0;
      }
      elim_stack_.push_back(std::move(record));
      eliminated_[v] = 1;
      ++stats_eliminated_vars_;
      for (auto& r : resolvents) {
        const std::uint32_t idx = static_cast<std::uint32_t>(problem.size());
        for (Lit l : r) occ[l.code()].push_back(idx);
        problem.push_back(std::move(r));
        live.push_back(1);
      }
    }
    std::vector<std::vector<Lit>> compacted;
    compacted.reserve(problem.size());
    for (std::size_t i = 0; i < problem.size(); ++i)
      if (live[i]) compacted.push_back(std::move(problem[i]));
    problem = std::move(compacted);
    // Learnt clauses over an eliminated variable are dropped (they are
    // implied; keeping them would resurrect the variable).
    std::erase_if(learnt_db, [this](const auto& entry) {
      for (Lit l : entry.first)
        if (eliminated(l.var())) return true;
      return false;
    });
  }

  // 4. Unit fixpoint: apply units produced above at the root level until
  // the vector database is stable. A contradiction makes the solver
  // root-unsat (the arena is left untouched in that case — it is never
  // consulted again).
  for (bool changed = true; changed && !root_unsat_;) {
    changed = false;
    const auto simplify_one = [&](std::vector<Lit>& c) -> int {
      // Returns -1 drop clause, 0 keep, 1 clause changed (re-check).
      std::size_t keep = 0;
      for (const Lit l : c) {
        if (value(l) == Value::True) return -1;
        if (value(l) == Value::Unknown) c[keep++] = l;
      }
      const bool shrunk = keep != c.size();
      c.resize(keep);
      if (c.empty()) {
        root_unsat_ = true;
        return -1;
      }
      if (c.size() == 1) {
        enqueue(c[0], kNullRef);
        return -1;  // absorbed into the trail
      }
      return shrunk ? 1 : 0;
    };
    std::vector<std::vector<Lit>> next;
    next.reserve(problem.size());
    for (auto& c : problem) {
      const int r = simplify_one(c);
      if (root_unsat_) break;
      if (r >= 0) next.push_back(std::move(c));
      if (r != 0) changed = true;
    }
    problem = std::move(next);
    if (root_unsat_) break;
    std::erase_if(learnt_db, [&](auto& entry) {
      if (root_unsat_) return false;
      const int r = simplify_one(entry.first);
      if (r != 0) changed = true;
      return r < 0;
    });
  }
  if (root_unsat_) return;

  // 5. Rebuild the arena compactly and re-anchor propagation.
  rebuild_clause_db(problem, learnt_db);
  propagate_head_ = 0;
  if (propagate() != kNullRef) {
    root_unsat_ = true;
    return;
  }

  // 6. Vivification over the rebuilt database. Its problem-only
  // propagation leaves learnt watchers unrepaired for any root units it
  // derives, so finish with one full re-propagation of the trail.
  if (config_.vivify && !root_unsat_) {
    vivify_round();
    if (!root_unsat_) {
      propagate_head_ = 0;
      if (propagate() != kNullRef) root_unsat_ = true;
    }
  }
}

void Solver::rebuild_clause_db(
    const std::vector<std::vector<Lit>>& problem,
    const std::vector<std::pair<std::vector<Lit>, std::uint32_t>>& learnts) {
  arena_.clear();
  clauses_.clear();
  learnts_.clear();
  for (auto& ws : watches_) ws.clear();
  for (const auto& c : problem) {
    const ClauseRef ref = alloc_clause(c, /*learnt=*/false);
    clauses_.push_back(ref);
    attach(ref);
  }
  for (const auto& [c, lbd] : learnts) {
    const ClauseRef ref = alloc_clause(c, /*learnt=*/true);
    header(ref)->lbd = lbd;
    learnts_.push_back(ref);
    attach(ref);
  }
}

void Solver::vivify_round() {
  // Re-propagate a bounded slice of the problem clauses: assert the
  // negation of each literal in turn; a conflict or an implied literal
  // proves the clause can be shortened or dropped. The cursor rotates so
  // successive rounds cover the whole database.
  constexpr std::size_t kClausesPerRound = 128;
  constexpr std::uint64_t kPropagationBudget = 1 << 20;
  const std::uint64_t props_start = stats_propagations_;
  std::size_t examined = 0;
  while (examined < kClausesPerRound && examined < clauses_.size() &&
         stats_propagations_ - props_start < kPropagationBudget && !root_unsat_) {
    if (stop_requested()) return;
    ++examined;
    if (vivify_cursor_ >= clauses_.size()) vivify_cursor_ = 0;
    const ClauseRef ref = clauses_[vivify_cursor_];
    if (header(ref)->size < 3) {
      ++vivify_cursor_;
      continue;
    }
    detach(ref);
    const Lit* c = lits(ref);
    std::vector<Lit> original(c, c + header(ref)->size);
    std::vector<Lit> keep;
    bool redundant = false;
    bool conflicted = false;
    for (const Lit l : original) {
      if (value(l) == Value::True) {
        redundant = true;  // implied by the negated prefix: clause is
        break;             // entailed by the rest of the formula
      }
      if (value(l) == Value::False) continue;  // literal is redundant in c
      keep.push_back(l);
      trail_lim_.push_back(static_cast<int>(trail_.size()));
      enqueue(~l, kNullRef);
      if (propagate(/*problem_only=*/true) != kNullRef) {
        conflicted = true;  // the kept prefix alone is contradictory
        break;
      }
    }
    backtrack(0);
    const bool changed = redundant || conflicted || keep.size() < original.size();
    if (!changed) {
      attach(ref);
      ++vivify_cursor_;
      continue;
    }
    // Drop the clause from the database (swap-erase keeps the cursor
    // position pointing at an unexamined clause).
    clauses_[vivify_cursor_] = clauses_.back();
    clauses_.pop_back();
    ++stats_vivified_clauses_;
    if (redundant) continue;
    if (keep.empty()) {
      root_unsat_ = true;
      return;
    }
    if (keep.size() == 1) {
      if (value(keep[0]) == Value::False) {
        root_unsat_ = true;
        return;
      }
      if (value(keep[0]) == Value::Unknown) {
        enqueue(keep[0], kNullRef);
        if (propagate(/*problem_only=*/true) != kNullRef) {
          root_unsat_ = true;
          return;
        }
      }
      continue;
    }
    const ClauseRef shorter = alloc_clause(keep, /*learnt=*/false);
    clauses_.push_back(shorter);
    attach(shorter);
  }
}

void Solver::reactivate(int var) {
  assert(eliminated(var));
  eliminated_[var] = 0;
  if (value(var) == Value::Unknown && !heap_contains(var)) heap_insert(var);
  // Find the record (tombstoning keeps reverse elimination order intact
  // for repair_model), restore its clauses. The restored clauses can in
  // turn mention variables eliminated later; add_clause reactivates them
  // recursively.
  for (auto& record : elim_stack_) {
    if (record.var != var) continue;
    std::vector<std::vector<Lit>> clauses = std::move(record.clauses);
    record.var = -1;
    record.clauses.clear();
    for (auto& c : clauses) {
      if (root_unsat_) return;
      add_clause(std::move(c));
    }
    return;
  }
}

void Solver::repair_model() {
  // Extend the model over eliminated variables, newest elimination
  // first: a variable's saved clauses only ever mention variables
  // eliminated *later* (already repaired) or live ones, so each step
  // sees final values for every other literal.
  for (std::size_t i = elim_stack_.size(); i-- > 0;) {
    const ElimRecord& record = elim_stack_[i];
    if (record.var < 0) continue;
    const Lit positive(record.var, false);
    bool needs_true = false;
    for (const auto& clause : record.clauses) {
      bool contains_positive = false;
      bool others_satisfied = false;
      for (const Lit l : clause) {
        if (l == positive) {
          contains_positive = true;
        } else if (model_value(l)) {
          others_satisfied = true;
          break;
        }
      }
      if (contains_positive && !others_satisfied) {
        needs_true = true;
        break;
      }
    }
    model_[record.var] = needs_true ? Value::True : Value::False;
  }
}

bool Solver::memory_exceeded() {
  if (config_.memory_limit_mb != 0 &&
      arena_.size() >
          static_cast<std::size_t>(config_.memory_limit_mb) * 1024 * 1024) {
    hit_memory_limit_ = true;
    return true;
  }
  if (fault::armed()) {
    const auto a = fault::hit("solver.alloc");
    if (a && *a == fault::Action::Oom) {
      hit_memory_limit_ = true;
      return true;
    }
  }
  return false;
}

// --- learnt-clause sharing --------------------------------------------
//
// Soundness (the full argument lives atop sat/exchange.hpp): a learnt
// clause is implied by the problem clauses alone, and equal share epochs
// mean identical clause-stream prefixes, so a clause exported under an
// epoch this solver has visited is implied by this solver's own formula
// verbatim — no variable remapping, no verdict influence, only shortcuts.

void Solver::attach_sharing(ClauseExchange* exchange, ClauseVault* vault,
                            unsigned member, unsigned lbd_cap) {
  share_exchange_ = exchange;
  share_vault_ = vault;
  share_member_ = member;
  share_cap_ = std::min(lbd_cap, config_.share_lbd_cap);
}

void Solver::try_export(const std::vector<Lit>& learnt, std::uint32_t lbd) {
  if (!sharing_enabled() || !share_epoch_.valid()) return;
  if (lbd > share_cap_ || learnt.size() > kShareMaxLits) return;
  SharedClause sc;
  sc.lits.reserve(learnt.size());
  for (const Lit l : learnt) sc.lits.push_back(l.code());
  std::sort(sc.lits.begin(), sc.lits.end());
  sc.lbd = lbd;
  if (!share_seen_.insert(shared_clause_hash(sc.lits)).second) return;
  ++stats_exported_;
  export_buffer_.push_back(std::move(sc));
}

void Solver::flush_exports() {
  if (export_buffer_.empty()) return;
  // Everything buffered was learnt under the current epoch: the buffer is
  // flushed before set_share_epoch moves to a new one.
  for (const SharedClause& sc : export_buffer_) {
    if (share_exchange_ != nullptr)
      share_exchange_->publish(share_member_, share_epoch_, sc.lits, sc.lbd);
    if (share_vault_ != nullptr) share_vault_->store(share_epoch_, sc.lits, sc.lbd);
  }
  export_buffer_.clear();
}

void Solver::import_clause(const SharedClause& sc) {
  assert(decision_level() == 0);
  // Ledger first: even a clause skipped below never needs re-examination.
  if (!share_seen_.insert(shared_clause_hash(sc.lits)).second) return;
  std::vector<Lit> out;
  out.reserve(sc.lits.size());
  for (const int code : sc.lits) {
    const Lit l = Lit::from_code(code);
    // A publisher with a different config may not share this solver's BVE
    // choices: a clause over a variable eliminated *here* is skipped
    // whole rather than resurrecting the variable. Out-of-range vars
    // cannot occur under a visited epoch but are guarded the same way.
    if (l.var() < 0 || l.var() >= num_vars() || eliminated(l.var())) return;
    const Value v = value(l);
    if (v == Value::True) return;  // root-satisfied: nothing to learn
    if (v == Value::False) continue;
    out.push_back(l);
  }
  if (out.empty()) {
    root_unsat_ = true;
    return;
  }
  ++stats_imported_;
  if (out.size() == 1) {
    enqueue(out[0], kNullRef);  // the caller runs propagation to fixpoint
    return;
  }
  // Attached as a learnt (lbd >= 2): reduce_learnts may drop it again and
  // vivification's problem-only propagation never uses it as a source.
  const ClauseRef ref = alloc_clause(out, /*learnt=*/true);
  header(ref)->lbd = std::max<std::uint32_t>(
      2, std::min<std::uint32_t>(sc.lbd, static_cast<std::uint32_t>(out.size())));
  learnts_.push_back(ref);
  attach(ref);
}

void Solver::import_pending() {
  if (share_exchange_ == nullptr) return;
  const std::uint64_t version = share_exchange_->version();
  if (version == exchange_seen_version_) return;  // lock-free fast path
  exchange_seen_version_ = version;
  std::vector<SharedClause> incoming;
  for (const ShareKey& epoch : visited_epochs_)
    share_exchange_->collect(share_member_, epoch, &exchange_cursors_[epoch], &incoming);
  for (const SharedClause& sc : incoming) {
    if (root_unsat_) return;
    import_clause(sc);
  }
}

void Solver::set_share_epoch(const ShareKey& epoch) {
  if (!sharing_enabled()) return;
  flush_exports();
  if (epoch == share_epoch_) return;
  share_epoch_ = epoch;
  if (!epoch.valid()) return;
  // First visit of this epoch: open an exchange cursor and drain the
  // vault once. (A solver sits at decision level 0 between solves, which
  // is when the bit-blaster publishes epochs.)
  if (!exchange_cursors_.emplace(epoch, 0).second) return;
  visited_epochs_.push_back(epoch);
  if (share_vault_ == nullptr || root_unsat_) return;
  backtrack(0);
  const std::vector<SharedClause> clauses = share_vault_->lookup(epoch);
  if (clauses.empty()) return;
  ++stats_vault_hits_;
  for (const SharedClause& sc : clauses) {
    if (root_unsat_) return;
    import_clause(sc);
  }
  if (propagate() != kNullRef) root_unsat_ = true;
}

SolveResult Solver::solve(const std::vector<Lit>& assumptions) {
  if (root_unsat_) {
    conflict_core_.clear();
    return SolveResult::Unsat;
  }
  if (stop_requested()) return SolveResult::Unknown;
  // The arena is mostly grown by add_clause before the search starts
  // (bit-blasting), so the ceiling is checked on entry as well as per
  // conflict. Degrade, don't abort: Unknown is an honest verdict.
  if (memory_exceeded()) return SolveResult::Unknown;
  backtrack(0);
  // Assumptions over variables eliminated in an earlier solve bring them
  // back (with their clauses) before the search starts.
  for (const Lit a : assumptions)
    if (eliminated(a.var())) reactivate(a.var());
  if (root_unsat_) {
    conflict_core_.clear();
    return SolveResult::Unsat;
  }
  if (propagate() != kNullRef) {
    root_unsat_ = true;
    return SolveResult::Unsat;
  }
  // Exports buffered during the search are published whichever way this
  // solve returns (epoch changes between solves must see them).
  struct ShareFlush {
    Solver* s;
    ~ShareFlush() { s->flush_exports(); }
  } share_flush{this};
  if (sharing_enabled() && share_exchange_ != nullptr) {
    // Pick up whatever the other members published since the last solve.
    import_pending();
    if (root_unsat_ || propagate() != kNullRef) {
      root_unsat_ = true;
      conflict_core_.clear();
      return SolveResult::Unsat;
    }
  }

  const auto solve_start = std::chrono::steady_clock::now();
  std::uint64_t conflicts_at_start = stats_conflicts_;
  std::uint64_t restart_count = 0;
  std::uint64_t restart_limit = restart_interval(restart_count);
  std::uint64_t conflicts_this_restart = 0;
  std::uint64_t next_reduce = config_.reduce_base;
  if (config_.inprocess_interval != 0 && next_inprocess_ == 0)
    next_inprocess_ = config_.inprocess_interval;
  if (sharing_enabled() && next_share_import_ == 0)
    next_share_import_ = config_.share_import_interval;

  std::vector<Lit> learnt;
  for (;;) {
    // Cooperative cancellation: one relaxed atomic load per
    // propagate/decide cycle, so a raced solve aborts within a few
    // microseconds of the winner raising the flag.
    if (stop_requested()) {
      backtrack(0);
      return SolveResult::Unknown;
    }
    const ClauseRef confl = propagate();
    if (confl != kNullRef) {
      ++stats_conflicts_;
      ++conflicts_this_restart;
      if (decision_level() == 0) {
        root_unsat_ = true;
        conflict_core_.clear();
        return SolveResult::Unsat;
      }
      // If the conflict is at or below the assumption prefix, the
      // assumptions are responsible.
      int btlevel;
      std::uint32_t lbd;
      analyze(confl, learnt, btlevel, lbd);
      if (decision_level() <= static_cast<int>(assumptions.size()) &&
          btlevel < static_cast<int>(assumptions.size())) {
        // The learnt clause is falsified within the assumption prefix if
        // all its literals are assumption-level: derive the core from the
        // asserting literal's complement.
        // Simplest sound approach: if after backtracking the asserting
        // literal conflicts with an assumption, analyze_final handles it
        // in the decision loop below.
      }
      backtrack(btlevel);
      try_export(learnt, lbd);
      if (learnt.size() == 1) {
        if (value(learnt[0]) == Value::Unknown) {
          enqueue(learnt[0], kNullRef);
        } else if (value(learnt[0]) == Value::False) {
          root_unsat_ = true;
          conflict_core_.clear();
          return SolveResult::Unsat;
        }
      } else {
        const ClauseRef ref = alloc_clause(learnt, /*learnt=*/true);
        header(ref)->lbd = lbd;
        learnts_.push_back(ref);
        attach(ref);
        enqueue(learnt[0], ref);
      }
      decay_var_activity();
      clause_inc_ *= 1.001;
      if (conflict_budget_ != 0 &&
          stats_conflicts_ - conflicts_at_start >= conflict_budget_) {
        backtrack(0);
        return SolveResult::Unknown;
      }
      if (memory_exceeded()) {
        backtrack(0);
        return SolveResult::Unknown;
      }
      if (time_budget_seconds_ > 0 &&
          (stats_conflicts_ - conflicts_at_start) % 1024 == 0) {
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - solve_start)
                .count();
        if (elapsed >= time_budget_seconds_) {
          backtrack(0);
          return SolveResult::Unknown;
        }
      }
      continue;
    }

    if (conflicts_this_restart >= restart_limit &&
        decision_level() > static_cast<int>(assumptions.size())) {
      ++stats_restarts_;
      ++restart_count;
      restart_limit = restart_interval(restart_count);
      conflicts_this_restart = 0;
      backtrack(static_cast<int>(assumptions.size()));
      // Inprocess between restarts, whenever enough conflicts accrued
      // since the previous round (the cadence knob).
      if (config_.inprocess_interval != 0 && stats_conflicts_ >= next_inprocess_) {
        next_inprocess_ = stats_conflicts_ + config_.inprocess_interval;
        backtrack(0);
        inprocess(assumptions);
        if (root_unsat_) {
          conflict_core_.clear();
          return SolveResult::Unsat;
        }
      }
      // Exchange with the other portfolio members on the same
      // restart-boundary cadence: publish the buffered exports, then
      // import foreign clauses at the root (the loop re-propagates and
      // re-decides the assumption prefix on its next iteration).
      if (sharing_enabled() && share_exchange_ != nullptr &&
          stats_conflicts_ >= next_share_import_) {
        next_share_import_ = stats_conflicts_ + config_.share_import_interval;
        backtrack(0);
        flush_exports();
        import_pending();
        if (root_unsat_) {
          conflict_core_.clear();
          return SolveResult::Unsat;
        }
      }
      continue;
    }
    if (learnts_.size() >= next_reduce) {
      next_reduce += config_.reduce_increment;
      reduce_learnts();
    }

    // Extend with assumptions first, then branch.
    Lit next = Lit();
    bool have_next = false;
    while (decision_level() < static_cast<int>(assumptions.size())) {
      const Lit a = assumptions[decision_level()];
      if (value(a) == Value::True) {
        trail_lim_.push_back(static_cast<int>(trail_.size()));  // dummy level
      } else if (value(a) == Value::False) {
        analyze_final(~a);
        backtrack(0);
        return SolveResult::Unsat;
      } else {
        next = a;
        have_next = true;
        break;
      }
    }
    if (!have_next) {
      next = pick_branch();
      if (next == Lit()) {
        // Full assignment: record the model, then extend it over
        // eliminated variables from their saved clauses.
        model_ = assigns_;
        backtrack(0);
        repair_model();
        return SolveResult::Sat;
      }
    }
    trail_lim_.push_back(static_cast<int>(trail_.size()));
    enqueue(next, kNullRef);
  }
}

// --- binary max-heap keyed on activity ---

void Solver::heap_insert(int var) {
  heap_index_[var] = static_cast<int>(heap_.size());
  heap_.push_back(var);
  heap_percolate_up(heap_index_[var]);
}

void Solver::heap_percolate_up(int i) {
  const int v = heap_[i];
  while (i > 0) {
    const int parent = (i - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[v]) break;
    heap_[i] = heap_[parent];
    heap_index_[heap_[i]] = i;
    i = parent;
  }
  heap_[i] = v;
  heap_index_[v] = i;
}

void Solver::heap_percolate_down(int i) {
  const int v = heap_[i];
  const int n = static_cast<int>(heap_.size());
  for (;;) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && activity_[heap_[child + 1]] > activity_[heap_[child]]) ++child;
    if (activity_[heap_[child]] <= activity_[v]) break;
    heap_[i] = heap_[child];
    heap_index_[heap_[i]] = i;
    i = child;
  }
  heap_[i] = v;
  heap_index_[v] = i;
}

int Solver::heap_pop() {
  const int v = heap_[0];
  heap_index_[v] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_index_[heap_[0]] = 0;
    heap_percolate_down(0);
  }
  return v;
}

}  // namespace sepe::sat
