#include "sat/solver.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace sepe::sat {

std::string SolverConfig::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "decay=%.17g;restart=%s;base=%u;mult=%.17g;phase=%d;rand=%u;"
                "seed=%" PRIu64 ";reduce=%" PRIu64 "+%" PRIu64,
                var_decay, restart == Restart::Luby ? "luby" : "geometric",
                restart_base, restart_mult, phase_init_true ? 1 : 0,
                random_branch_freq, seed, reduce_base, reduce_increment);
  return buf;
}

std::optional<SolverConfig> SolverConfig::from_string(const std::string& text) {
  SolverConfig c;
  char restart_name[16] = {0};
  int phase = 0;
  int consumed = 0;
  const int got = std::sscanf(
      text.c_str(),
      "decay=%lg;restart=%15[a-z];base=%u;mult=%lg;phase=%d;rand=%u;"
      "seed=%" SCNu64 ";reduce=%" SCNu64 "+%" SCNu64 "%n",
      &c.var_decay, restart_name, &c.restart_base, &c.restart_mult, &phase,
      &c.random_branch_freq, &c.seed, &c.reduce_base, &c.reduce_increment,
      &consumed);
  if (got != 9 || static_cast<std::size_t>(consumed) != text.size()) return std::nullopt;
  if (!std::strcmp(restart_name, "luby")) {
    c.restart = Restart::Luby;
  } else if (!std::strcmp(restart_name, "geometric")) {
    c.restart = Restart::Geometric;
  } else {
    return std::nullopt;
  }
  if (phase != 0 && phase != 1) return std::nullopt;
  c.phase_init_true = phase == 1;
  if (!(c.var_decay > 0.0 && c.var_decay <= 1.0)) return std::nullopt;
  if (!(c.restart_mult >= 1.0) || c.restart_base == 0) return std::nullopt;
  // A zero reduction cadence would purge the learnt DB on every conflict.
  if (c.reduce_base == 0 || c.reduce_increment == 0) return std::nullopt;
  return c;
}

SolverConfig SolverConfig::portfolio_member(unsigned index) {
  SolverConfig c;
  if (index == 0) return c;  // member 0: the default configuration, untouched
  switch (index % 4) {
    case 0:
      // Index 4, 8, ...: default heuristics plus seeded random branching,
      // so the per-index seed actually diversifies the search.
      c.random_branch_freq = 256;
      break;
    case 1:
      // Slow decay + geometric restarts: long-haul UNSAT grinder.
      c.var_decay = 0.99;
      c.restart = Restart::Geometric;
      c.restart_base = 200;
      c.restart_mult = 1.3;
      break;
    case 2:
      // Phase-true init + occasional random branching: model diversity
      // for SAT-leaning queries.
      c.phase_init_true = true;
      c.random_branch_freq = 128;
      break;
    case 3:
      // The pre-tuning historical configuration: slower decay, longer
      // Luby bursts, eager learnt reduction — structurally different
      // search from the retention-heavy default.
      c.var_decay = 0.95;
      c.restart_base = 100;
      c.reduce_base = 4000;
      c.reduce_increment = 2000;
      break;
  }
  c.seed = 0x9e3779b97f4a7c15ULL * (index + 1);
  return c;
}

Solver::Solver(const SolverConfig& config) : config_(config), rng_state_(config.seed) {}

std::uint64_t Solver::next_random() {
  // splitmix64 — deterministic from config_.seed.
  std::uint64_t z = (rng_state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

int Solver::new_var() {
  const int v = static_cast<int>(assigns_.size());
  assigns_.push_back(Value::Unknown);
  model_.push_back(Value::False);
  saved_phase_.push_back(config_.phase_init_true ? Value::True : Value::False);
  level_.push_back(0);
  reason_.push_back(kNullRef);
  activity_.push_back(0.0);
  heap_index_.push_back(-1);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_insert(v);
  return v;
}

Solver::ClauseRef Solver::alloc_clause(const std::vector<Lit>& clause_lits, bool learnt) {
  const std::size_t bytes = sizeof(ClauseHeader) + clause_lits.size() * sizeof(Lit);
  // Keep 4-byte alignment of the arena.
  const std::size_t aligned = (bytes + 3) & ~std::size_t(3);
  const ClauseRef ref = static_cast<ClauseRef>(arena_.size());
  arena_.resize(arena_.size() + aligned);
  ClauseHeader* h = header(ref);
  h->size = static_cast<std::uint32_t>(clause_lits.size());
  h->lbd = learnt ? 2 : 0;
  h->activity = 0.0f;
  std::copy(clause_lits.begin(), clause_lits.end(), lits(ref));
  return ref;
}

void Solver::attach(ClauseRef ref) {
  const Lit* c = lits(ref);
  watches_[(~c[0]).code()].push_back({ref, c[1]});
  watches_[(~c[1]).code()].push_back({ref, c[0]});
}

void Solver::detach(ClauseRef ref) {
  const Lit* c = lits(ref);
  for (Lit w : {~c[0], ~c[1]}) {
    auto& ws = watches_[w.code()];
    for (std::size_t i = 0; i < ws.size(); ++i) {
      if (ws[i].ref == ref) {
        ws[i] = ws.back();
        ws.pop_back();
        break;
      }
    }
  }
}

bool Solver::add_clause(std::vector<Lit> clause_lits) {
  if (root_unsat_) return false;
  assert(decision_level() == 0);

  // Normalize: sort, dedupe, drop false literals, detect tautology/sat.
  std::sort(clause_lits.begin(), clause_lits.end(),
            [](Lit a, Lit b) { return a.code() < b.code(); });
  std::vector<Lit> out;
  out.reserve(clause_lits.size());
  Lit prev = Lit::from_code(-2);
  for (Lit l : clause_lits) {
    if (l == prev) continue;
    if (l == ~prev) return true;  // tautology
    if (value(l) == Value::True) return true;
    if (value(l) == Value::False) { prev = l; continue; }
    out.push_back(l);
    prev = l;
  }

  if (out.empty()) {
    root_unsat_ = true;
    return false;
  }
  if (out.size() == 1) {
    enqueue(out[0], kNullRef);
    if (propagate() != kNullRef) {
      root_unsat_ = true;
      return false;
    }
    return true;
  }
  const ClauseRef ref = alloc_clause(out, /*learnt=*/false);
  clauses_.push_back(ref);
  attach(ref);
  return true;
}

void Solver::enqueue(Lit l, ClauseRef reason) {
  assert(value(l) == Value::Unknown);
  const int v = l.var();
  assigns_[v] = l.sign() ? Value::False : Value::True;
  level_[v] = decision_level();
  reason_[v] = reason;
  trail_.push_back(l);
}

Solver::ClauseRef Solver::propagate() {
  while (propagate_head_ < trail_.size()) {
    const Lit p = trail_[propagate_head_++];
    ++stats_propagations_;
    auto& ws = watches_[p.code()];
    std::size_t i = 0, j = 0;
    while (i < ws.size()) {
      const Watcher w = ws[i];
      if (value(w.blocker) == Value::True) {
        ws[j++] = ws[i++];
        continue;
      }
      ClauseHeader* h = header(w.ref);
      Lit* c = lits(w.ref);
      // Ensure the false literal ~p is at position 1.
      const Lit not_p = ~p;
      if (c[0] == not_p) std::swap(c[0], c[1]);
      assert(c[1] == not_p);
      if (value(c[0]) == Value::True) {
        ws[j++] = {w.ref, c[0]};
        ++i;
        continue;
      }
      // Look for a new watch.
      bool found = false;
      for (std::uint32_t k = 2; k < h->size; ++k) {
        if (value(c[k]) != Value::False) {
          std::swap(c[1], c[k]);
          watches_[(~c[1]).code()].push_back({w.ref, c[0]});
          found = true;
          break;
        }
      }
      if (found) {
        ++i;  // watcher moved elsewhere; do not keep
        continue;
      }
      // Clause is unit or conflicting.
      if (value(c[0]) == Value::False) {
        // Conflict: keep remaining watchers, return.
        while (i < ws.size()) ws[j++] = ws[i++];
        ws.resize(j);
        return w.ref;
      }
      enqueue(c[0], w.ref);
      ws[j++] = {w.ref, c[0]};
      ++i;
    }
    ws.resize(j);
  }
  return kNullRef;
}

std::uint32_t Solver::compute_lbd(const std::vector<Lit>& clause) {
  // LBD = number of distinct decision levels in the clause.
  static thread_local std::vector<int> mark;
  static thread_local int stamp = 0;
  ++stamp;
  std::uint32_t lbd = 0;
  for (Lit l : clause) {
    const int lev = level_[l.var()];
    if (lev >= static_cast<int>(mark.size())) mark.resize(lev + 1, 0);
    if (mark[lev] != stamp) {
      mark[lev] = stamp;
      ++lbd;
    }
  }
  return lbd;
}

void Solver::bump_var(int var) {
  activity_[var] += var_inc_;
  if (activity_[var] > kActivityLimit) rescale_var_activity();
  if (heap_contains(var)) heap_percolate_up(heap_index_[var]);
}

void Solver::rescale_var_activity() {
  for (double& a : activity_) a *= 1e-100;
  var_inc_ *= 1e-100;
}

void Solver::bump_clause(ClauseRef ref) {
  ClauseHeader* h = header(ref);
  h->activity += static_cast<float>(clause_inc_);
  if (h->activity > 1e20f) {
    for (ClauseRef r : learnts_) header(r)->activity *= 1e-20f;
    clause_inc_ *= 1e-20;
  }
}

void Solver::analyze(ClauseRef confl, std::vector<Lit>& out_learnt, int& out_btlevel,
                     std::uint32_t& out_lbd) {
  out_learnt.clear();
  out_learnt.push_back(Lit());  // placeholder for the asserting literal
  int counter = 0;
  Lit p;
  std::size_t index = trail_.size();
  bool first = true;

  do {
    assert(confl != kNullRef);
    bump_clause(confl);
    const ClauseHeader* h = header(confl);
    const Lit* c = lits(confl);
    for (std::uint32_t k = first ? 0 : 1; k < h->size; ++k) {
      const Lit q = c[k];
      const int v = q.var();
      if (!seen_[v] && level_[v] > 0) {
        seen_[v] = 1;
        bump_var(v);
        if (level_[v] >= decision_level()) {
          ++counter;
        } else {
          out_learnt.push_back(q);
        }
      }
    }
    // Find the next literal on the trail to resolve on.
    while (!seen_[trail_[--index].var()]) {}
    p = trail_[index];
    confl = reason_[p.var()];
    seen_[p.var()] = 0;
    --counter;
    first = false;
  } while (counter > 0);
  out_learnt[0] = ~p;

  // Clause minimization: drop literals implied by the rest of the clause.
  // Remember every var marked seen_ so far: literals dropped below still
  // need their marks cleared at the end (stale marks corrupt later calls).
  analyze_toclear_.clear();
  for (Lit l : out_learnt) analyze_toclear_.push_back(l.var());
  std::uint32_t abstract_levels = 0;
  for (std::size_t k = 1; k < out_learnt.size(); ++k)
    abstract_levels |= 1u << (level_[out_learnt[k].var()] & 31);
  std::size_t keep = 1;
  for (std::size_t k = 1; k < out_learnt.size(); ++k) {
    if (reason_[out_learnt[k].var()] == kNullRef ||
        !literal_redundant(out_learnt[k], abstract_levels)) {
      out_learnt[keep++] = out_learnt[k];
    }
  }
  out_learnt.resize(keep);

  // Find backtrack level: the second-highest level in the clause.
  out_btlevel = 0;
  if (out_learnt.size() > 1) {
    std::size_t max_i = 1;
    for (std::size_t k = 2; k < out_learnt.size(); ++k)
      if (level_[out_learnt[k].var()] > level_[out_learnt[max_i].var()]) max_i = k;
    std::swap(out_learnt[1], out_learnt[max_i]);
    out_btlevel = level_[out_learnt[1].var()];
  }
  out_lbd = compute_lbd(out_learnt);

  for (int v : analyze_toclear_) seen_[v] = 0;
  for (int v : minimize_marked_) seen_[v] = 0;
  minimize_marked_.clear();
}

bool Solver::literal_redundant(Lit l, std::uint32_t abstract_levels) {
  analyze_stack_.clear();
  analyze_stack_.push_back(l);
  std::vector<int> to_clear;
  while (!analyze_stack_.empty()) {
    const Lit q = analyze_stack_.back();
    analyze_stack_.pop_back();
    const ClauseRef r = reason_[q.var()];
    if (r == kNullRef) {
      for (int v : to_clear) seen_[v] = 0;
      return false;
    }
    const ClauseHeader* h = header(r);
    const Lit* c = lits(r);
    for (std::uint32_t k = 1; k < h->size; ++k) {
      const Lit p = c[k];
      const int v = p.var();
      if (seen_[v] || level_[v] == 0) continue;
      if (reason_[v] == kNullRef || !((1u << (level_[v] & 31)) & abstract_levels)) {
        for (int u : to_clear) seen_[u] = 0;
        return false;
      }
      seen_[v] = 1;
      to_clear.push_back(v);
      analyze_stack_.push_back(p);
    }
  }
  // Redundant: keep the marks so sibling redundancy checks can reuse them;
  // they are recorded in minimize_marked_ and cleared at the end of
  // analyze() together with the clause's own marks.
  minimize_marked_.insert(minimize_marked_.end(), to_clear.begin(), to_clear.end());
  return true;
}

void Solver::analyze_final(Lit p) {
  // Compute the set of assumptions implying ~p (conflict core).
  conflict_core_.clear();
  conflict_core_.push_back(~p);
  if (decision_level() == 0) return;
  seen_[p.var()] = 1;
  for (std::size_t i = trail_.size(); i-- > static_cast<std::size_t>(trail_lim_[0]);) {
    const int v = trail_[i].var();
    if (!seen_[v]) continue;
    if (reason_[v] == kNullRef) {
      if (v != p.var()) conflict_core_.push_back(~trail_[i]);
    } else {
      const ClauseHeader* h = header(reason_[v]);
      const Lit* c = lits(reason_[v]);
      for (std::uint32_t k = 1; k < h->size; ++k)
        if (level_[c[k].var()] > 0) seen_[c[k].var()] = 1;
    }
    seen_[v] = 0;
  }
  seen_[p.var()] = 0;
}

void Solver::backtrack(int target) {
  if (decision_level() <= target) return;
  for (std::size_t i = trail_.size();
       i-- > static_cast<std::size_t>(trail_lim_[target]);) {
    const int v = trail_[i].var();
    saved_phase_[v] = assigns_[v];
    assigns_[v] = Value::Unknown;
    reason_[v] = kNullRef;
    if (!heap_contains(v)) heap_insert(v);
  }
  trail_.resize(trail_lim_[target]);
  trail_lim_.resize(target);
  propagate_head_ = trail_.size();
}

Lit Solver::pick_branch() {
  // Portfolio diversity: every Nth decision branches on a pseudo-random
  // unassigned variable instead of the VSIDS top. Deterministic (seeded);
  // falls through to VSIDS when the drawn variable is already assigned.
  if (config_.random_branch_freq != 0 && !assigns_.empty() &&
      (stats_decisions_ + 1) % config_.random_branch_freq == 0) {
    const int v = static_cast<int>(next_random() % assigns_.size());
    if (value(v) == Value::Unknown) {
      ++stats_decisions_;
      return Lit(v, saved_phase_[v] == Value::False);
    }
  }
  while (!heap_empty()) {
    const int v = heap_pop();
    if (value(v) == Value::Unknown) {
      ++stats_decisions_;
      return Lit(v, saved_phase_[v] == Value::False);
    }
  }
  return Lit();  // all assigned
}

std::uint64_t Solver::restart_interval(std::uint64_t restart_count) const {
  if (config_.restart == SolverConfig::Restart::Luby)
    return config_.restart_base * luby(restart_count + 1);
  const double interval =
      static_cast<double>(config_.restart_base) *
      std::pow(config_.restart_mult, static_cast<double>(restart_count));
  constexpr double kCap = 1e18;  // avoid overflow on long geometric runs
  return static_cast<std::uint64_t>(std::min(interval, kCap));
}

std::uint64_t Solver::luby(std::uint64_t i) {
  // Luby sequence, 1-based: luby(1..)= 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
  assert(i >= 1);
  std::uint64_t k = 1;
  while ((1ULL << (k + 1)) - 1 <= i) ++k;
  while (i != (1ULL << k) - 1) {
    i -= (1ULL << k) - 1;
    k = 1;
    while ((1ULL << (k + 1)) - 1 <= i) ++k;
  }
  return 1ULL << (k - 1);
}

void Solver::reduce_learnts() {
  // Keep low-LBD ("glue") clauses; drop the worse half of the rest.
  std::vector<ClauseRef> sorted = learnts_;
  std::sort(sorted.begin(), sorted.end(), [this](ClauseRef a, ClauseRef b) {
    const ClauseHeader *ha = header(a), *hb = header(b);
    if (ha->lbd != hb->lbd) return ha->lbd < hb->lbd;
    return ha->activity > hb->activity;
  });
  const std::size_t keep_count = sorted.size() / 2;
  std::vector<ClauseRef> kept;
  kept.reserve(keep_count + 16);
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const ClauseRef r = sorted[i];
    // Never drop clauses that are reasons for current assignments or glue.
    bool locked = false;
    const Lit first = lits(r)[0];
    if (value(first) == Value::True && reason_[first.var()] == r) locked = true;
    if (i < keep_count || header(r)->lbd <= 3 || locked) {
      kept.push_back(r);
    } else {
      detach(r);
    }
  }
  learnts_ = std::move(kept);
}

SolveResult Solver::solve(const std::vector<Lit>& assumptions) {
  if (root_unsat_) {
    conflict_core_.clear();
    return SolveResult::Unsat;
  }
  if (stop_requested()) return SolveResult::Unknown;
  backtrack(0);
  if (propagate() != kNullRef) {
    root_unsat_ = true;
    return SolveResult::Unsat;
  }

  const auto solve_start = std::chrono::steady_clock::now();
  std::uint64_t conflicts_at_start = stats_conflicts_;
  std::uint64_t restart_count = 0;
  std::uint64_t restart_limit = restart_interval(restart_count);
  std::uint64_t conflicts_this_restart = 0;
  std::uint64_t next_reduce = config_.reduce_base;

  std::vector<Lit> learnt;
  for (;;) {
    // Cooperative cancellation: one relaxed atomic load per
    // propagate/decide cycle, so a raced solve aborts within a few
    // microseconds of the winner raising the flag.
    if (stop_requested()) {
      backtrack(0);
      return SolveResult::Unknown;
    }
    const ClauseRef confl = propagate();
    if (confl != kNullRef) {
      ++stats_conflicts_;
      ++conflicts_this_restart;
      if (decision_level() == 0) {
        root_unsat_ = true;
        conflict_core_.clear();
        return SolveResult::Unsat;
      }
      // If the conflict is at or below the assumption prefix, the
      // assumptions are responsible.
      int btlevel;
      std::uint32_t lbd;
      analyze(confl, learnt, btlevel, lbd);
      if (decision_level() <= static_cast<int>(assumptions.size()) &&
          btlevel < static_cast<int>(assumptions.size())) {
        // The learnt clause is falsified within the assumption prefix if
        // all its literals are assumption-level: derive the core from the
        // asserting literal's complement.
        // Simplest sound approach: if after backtracking the asserting
        // literal conflicts with an assumption, analyze_final handles it
        // in the decision loop below.
      }
      backtrack(btlevel);
      if (learnt.size() == 1) {
        if (value(learnt[0]) == Value::Unknown) {
          enqueue(learnt[0], kNullRef);
        } else if (value(learnt[0]) == Value::False) {
          root_unsat_ = true;
          conflict_core_.clear();
          return SolveResult::Unsat;
        }
      } else {
        const ClauseRef ref = alloc_clause(learnt, /*learnt=*/true);
        header(ref)->lbd = lbd;
        learnts_.push_back(ref);
        attach(ref);
        enqueue(learnt[0], ref);
      }
      decay_var_activity();
      clause_inc_ *= 1.001;
      if (conflict_budget_ != 0 &&
          stats_conflicts_ - conflicts_at_start >= conflict_budget_) {
        backtrack(0);
        return SolveResult::Unknown;
      }
      if (time_budget_seconds_ > 0 &&
          (stats_conflicts_ - conflicts_at_start) % 1024 == 0) {
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - solve_start)
                .count();
        if (elapsed >= time_budget_seconds_) {
          backtrack(0);
          return SolveResult::Unknown;
        }
      }
      continue;
    }

    if (conflicts_this_restart >= restart_limit &&
        decision_level() > static_cast<int>(assumptions.size())) {
      ++stats_restarts_;
      ++restart_count;
      restart_limit = restart_interval(restart_count);
      conflicts_this_restart = 0;
      backtrack(static_cast<int>(assumptions.size()));
      continue;
    }
    if (learnts_.size() >= next_reduce) {
      next_reduce += config_.reduce_increment;
      reduce_learnts();
    }

    // Extend with assumptions first, then branch.
    Lit next = Lit();
    bool have_next = false;
    while (decision_level() < static_cast<int>(assumptions.size())) {
      const Lit a = assumptions[decision_level()];
      if (value(a) == Value::True) {
        trail_lim_.push_back(static_cast<int>(trail_.size()));  // dummy level
      } else if (value(a) == Value::False) {
        analyze_final(~a);
        backtrack(0);
        return SolveResult::Unsat;
      } else {
        next = a;
        have_next = true;
        break;
      }
    }
    if (!have_next) {
      next = pick_branch();
      if (next == Lit()) {
        // Full assignment: record the model.
        model_ = assigns_;
        backtrack(0);
        return SolveResult::Sat;
      }
    }
    trail_lim_.push_back(static_cast<int>(trail_.size()));
    enqueue(next, kNullRef);
  }
}

// --- binary max-heap keyed on activity ---

void Solver::heap_insert(int var) {
  heap_index_[var] = static_cast<int>(heap_.size());
  heap_.push_back(var);
  heap_percolate_up(heap_index_[var]);
}

void Solver::heap_percolate_up(int i) {
  const int v = heap_[i];
  while (i > 0) {
    const int parent = (i - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[v]) break;
    heap_[i] = heap_[parent];
    heap_index_[heap_[i]] = i;
    i = parent;
  }
  heap_[i] = v;
  heap_index_[v] = i;
}

void Solver::heap_percolate_down(int i) {
  const int v = heap_[i];
  const int n = static_cast<int>(heap_.size());
  for (;;) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && activity_[heap_[child + 1]] > activity_[heap_[child]]) ++child;
    if (activity_[heap_[child]] <= activity_[v]) break;
    heap_[i] = heap_[child];
    heap_index_[heap_[i]] = i;
    i = child;
  }
  heap_[i] = v;
  heap_index_[v] = i;
}

int Solver::heap_pop() {
  const int v = heap_[0];
  heap_index_[v] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_index_[heap_[0]] = 0;
    heap_percolate_down(0);
  }
  return v;
}

}  // namespace sepe::sat
