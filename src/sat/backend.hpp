// backend.hpp — the IPASIR-style seam under every SAT consumer.
//
// Everything above the SAT layer (the bit-blaster, the SMT facade, BMC,
// k-induction, the campaign engine) talks to an abstract sat::Backend:
// add clauses, solve under assumptions, read a model, thread budgets and
// the cooperative stop flag. Two engines implement it today — the native
// CDCL solver (sat::Solver, solver.hpp) and a subprocess DIMACS bridge
// (sat::DimacsBackend, dimacs_backend.hpp) — and the seam is what a
// future SMT-level backend would plug into.
//
// The contract a conforming backend must honor is documented in
// docs/SOLVER.md ("The backend seam"): deterministic verdicts for
// deterministic budgets, stop-flag polling inside solve(), and variable
// indices issued densely by new_var() so cone-cache replay tapes stay
// byte-exact.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/fault.hpp"

namespace sepe::sat {

struct SolverConfig;
struct ShareKey;
class ClauseExchange;
class ClauseVault;

/// A propositional literal: variable index plus sign. Encoded as
/// 2*var + (negated ? 1 : 0), the classic MiniSat representation.
class Lit {
 public:
  Lit() : code_(-2) {}
  Lit(int var, bool negated) : code_(2 * var + (negated ? 1 : 0)) {}

  static Lit from_code(int code) {
    Lit l;
    l.code_ = code;
    return l;
  }

  int var() const { return code_ >> 1; }
  bool sign() const { return code_ & 1; }  // true = negated
  int code() const { return code_; }
  Lit operator~() const { return from_code(code_ ^ 1); }

  friend bool operator==(Lit a, Lit b) { return a.code_ == b.code_; }
  friend bool operator!=(Lit a, Lit b) { return a.code_ != b.code_; }

 private:
  int code_;
};

enum class Value : std::uint8_t { False = 0, True = 1, Unknown = 2 };

inline Value operator^(Value v, bool sign) {
  if (v == Value::Unknown) return v;
  return static_cast<Value>(static_cast<std::uint8_t>(v) ^
                            static_cast<std::uint8_t>(sign));
}

/// Result of a solve() call.
enum class SolveResult { Sat, Unsat, Unknown /* resource limit hit */ };

/// The engines the factory can build. The kind is part of the
/// verdict-cache key and the spec digest (a campaign solved by a
/// different engine is a different campaign), so the enumerator values
/// and names are stable.
enum class BackendKind : std::uint8_t { Native = 0, Dimacs = 1 };

/// Stable lowercase name ("native", "dimacs") — the `--backend` value
/// and the token mixed into cache keys and spec digests.
const char* backend_kind_name(BackendKind kind);
std::optional<BackendKind> backend_kind_from_name(std::string_view name);

/// Abstract incremental SAT engine (the IPASIR shape: add / assume /
/// solve / value / failed, plus the budget and stop-flag threading the
/// campaign engine relies on).
///
/// Budgets and the stop flag live in the base class so every engine
/// inherits identical threading semantics; solve() implementations must
/// poll stop_requested() often enough that a raced solve aborts within
/// microseconds (native) or one subprocess poll interval (DIMACS).
class Backend {
 public:
  virtual ~Backend() = default;

  virtual BackendKind kind() const = 0;
  /// Human-readable engine identity for diagnostics ("native",
  /// "dimacs:kissat", ...).
  virtual std::string name() const = 0;
  /// False when the engine cannot run on this host (e.g. no external
  /// DIMACS solver found). Callers report unavailability; they never
  /// treat it as a solver failure.
  virtual bool available() const { return true; }

  /// Allocate a fresh variable; returns its index. Indices are dense,
  /// starting at 0, in allocation order (the cone cache replays tapes of
  /// recorded allocations and depends on this).
  virtual int new_var() = 0;
  virtual int num_vars() const = 0;

  /// Add a clause (disjunction of literals). Returns false if the engine
  /// is already in an unsatisfiable root state.
  virtual bool add_clause(std::vector<Lit> lits) = 0;
  bool add_clause(Lit a) { return add_clause(std::vector<Lit>{a}); }
  bool add_clause(Lit a, Lit b) { return add_clause(std::vector<Lit>{a, b}); }
  bool add_clause(Lit a, Lit b, Lit c) { return add_clause(std::vector<Lit>{a, b, c}); }

  SolveResult solve() { return solve({}); }
  virtual SolveResult solve(const std::vector<Lit>& assumptions) = 0;

  /// Value of a variable in the last satisfying assignment. Variables
  /// created after that solve read as false.
  virtual bool model_value(int var) const = 0;
  bool model_value(Lit l) const { return model_value(l.var()) ^ l.sign(); }

  /// After Unsat under assumptions: a (not necessarily minimal) subset of
  /// the assumptions involved in the refutation.
  virtual const std::vector<Lit>& failed_assumptions() const = 0;

  /// Abort solve() with Unknown after this many conflicts (0 = no
  /// limit). Engines that cannot meter conflicts (subprocess backends)
  /// document the budget as best-effort.
  void set_conflict_budget(std::uint64_t budget) { conflict_budget_ = budget; }
  std::uint64_t conflict_budget() const { return conflict_budget_; }

  /// Abort solve() with Unknown after this many wall-clock seconds
  /// (0 = no limit).
  void set_time_budget(double seconds) { time_budget_seconds_ = seconds; }
  double time_budget() const { return time_budget_seconds_; }

  /// Cooperative cancellation: when `stop` is non-null and becomes true
  /// (typically set from another thread), solve() aborts with Unknown at
  /// the next poll point. The flag must outlive the backend or be
  /// cleared with set_stop_flag(nullptr).
  void set_stop_flag(const std::atomic<bool>* stop) { stop_ = stop; }
  const std::atomic<bool>* stop_flag() const { return stop_; }
  /// True when either the per-race stop flag or the process-global
  /// crash-only stop (SIGTERM/SIGINT, fault::Action::Stop) is raised, so
  /// a termination request interrupts every running CDCL loop through the
  /// same poll points the race cancellation already uses.
  bool stop_requested() const {
    return (stop_ != nullptr && stop_->load(std::memory_order_relaxed)) ||
           fault::global_stop_requested();
  }

  // --- statistics (deterministic proxies; engines that cannot observe a
  // --- counter report 0 rather than guessing) ---
  virtual std::uint64_t num_conflicts() const = 0;
  virtual std::uint64_t num_decisions() const = 0;
  virtual std::uint64_t num_propagations() const = 0;
  virtual std::uint64_t num_restarts() const = 0;
  virtual std::size_t num_clauses() const = 0;
  virtual std::size_t num_learnts() const = 0;
  // Inprocessing counters; engines without inprocessing report zero.
  virtual std::uint64_t num_eliminated_vars() const { return 0; }
  virtual std::uint64_t num_subsumed_clauses() const { return 0; }
  virtual std::uint64_t num_vivified_clauses() const { return 0; }
  // --- robustness observables ---
  /// True once a solve degraded to Unknown because the per-job memory
  /// ceiling (SolverConfig::memory_limit_mb) tripped. Sticky.
  virtual bool out_of_memory() const { return false; }
  /// Transient failures absorbed by retrying (subprocess respawns, torn
  /// model re-reads). Engines that never retry report zero.
  virtual std::uint64_t num_retries() const { return 0; }

  // --- learnt-clause sharing (sat/exchange.hpp) ---
  /// Engines that cannot exchange learnt clauses (subprocess backends have
  /// no access to their solver's learnt DB) report false and every sharing
  /// call below is a no-op — the campaign simply skips them.
  virtual bool supports_sharing() const { return false; }
  /// Attach this engine to a job's exchange pool and/or the campaign
  /// vault. `member` is this engine's id inside the pool (so it never
  /// re-imports its own exports); `lbd_cap` bounds the LBD of exported
  /// clauses (intersected with SolverConfig::share_lbd_cap).
  virtual void attach_sharing(ClauseExchange* /*exchange*/, ClauseVault* /*vault*/,
                              unsigned /*member*/, unsigned /*lbd_cap*/) {}
  /// The bit-blaster publishes its state digest here after each top-level
  /// blast, marking a new share epoch: clauses learnt from now on are
  /// tagged with this key, and vault clauses stored under it are imported.
  virtual void set_share_epoch(const ShareKey& /*epoch*/) {}
  virtual std::uint64_t num_clauses_exported() const { return 0; }
  virtual std::uint64_t num_clauses_imported() const { return 0; }
  virtual std::uint64_t num_vault_hits() const { return 0; }

 protected:
  std::uint64_t conflict_budget_ = 0;
  double time_budget_seconds_ = 0.0;
  const std::atomic<bool>* stop_ = nullptr;
};

/// Build an engine of the given kind. `config` tunes the native CDCL
/// heuristics; the DIMACS backend records it but solves with the
/// external solver's own defaults. Never fails: an unavailable engine is
/// still constructed and reports available() == false.
std::unique_ptr<Backend> make_backend(BackendKind kind, const SolverConfig& config);

}  // namespace sepe::sat
