// dimacs_backend.hpp — subprocess DIMACS bridge (sat::Backend over an
// external solver binary).
//
// The backend buffers the formula as plain literal vectors; every
// solve() writes a DIMACS CNF file (assumptions appended as unit
// clauses), execs the external solver, and maps its exit status back
// (10 = SAT with "v" model lines, 20 = UNSAT). This trades incremental
// state for engine diversity: a kissat or cadical on the host races the
// native CDCL through the same seam.
//
// Solver discovery: the SEPE_EXTERNAL_SOLVER environment variable (an
// executable path or bare command name) wins; otherwise the PATH is
// probed for kissat, then cadical. When neither resolves the backend
// still constructs but reports available() == false — callers surface
// that as "unavailable", never as a solver failure (docs/SOLVER.md,
// "The DIMACS subprocess backend").
#pragma once

#include <string>
#include <vector>

#include "sat/backend.hpp"

namespace sepe::sat {

class DimacsBackend final : public Backend {
 public:
  /// Probes for an external solver (see file header). Never throws.
  DimacsBackend();

  BackendKind kind() const override { return BackendKind::Dimacs; }
  /// "dimacs:<basename of the solver>" or "dimacs:unavailable".
  std::string name() const override;
  bool available() const override { return !solver_path_.empty(); }

  /// The resolved external solver command ("" when unavailable).
  const std::string& solver_path() const { return solver_path_; }

  int new_var() override;
  int num_vars() const override { return num_vars_; }

  using Backend::add_clause;
  bool add_clause(std::vector<Lit> lits) override;

  using Backend::solve;
  SolveResult solve(const std::vector<Lit>& assumptions) override;

  using Backend::model_value;
  bool model_value(int var) const override {
    return var < static_cast<int>(model_.size()) && model_[var] == Value::True;
  }

  /// The subprocess reports no refutation core, so after an
  /// assumption-based Unsat this returns all assumptions of the failing
  /// call — a sound (maximal) core.
  const std::vector<Lit>& failed_assumptions() const override { return core_; }

  // The subprocess exposes no counters; everything reports zero (the
  // Backend contract allows that, and campaign reports show zeros rather
  // than fabricated numbers).
  std::uint64_t num_conflicts() const override { return 0; }
  std::uint64_t num_decisions() const override { return 0; }
  std::uint64_t num_propagations() const override { return 0; }
  std::uint64_t num_restarts() const override { return 0; }
  std::size_t num_clauses() const override { return clauses_.size(); }
  std::size_t num_learnts() const override { return 0; }
  /// Transient subprocess failures (spawn errors, stuck children we
  /// killed, truncated model output) absorbed by respawning the solver.
  std::uint64_t num_retries() const override { return retries_; }

 private:
  /// One spawn/solve/parse attempt. Returns true with *result set on a
  /// definite outcome (including honest Unknown for stop/budget);
  /// returns false on a transient failure worth retrying.
  bool solve_attempt(const std::vector<Lit>& assumptions, SolveResult* result);
  /// True when `model_` satisfies every clause and assumption — the
  /// guard that turns a truncated "v"-line model into a retry instead of
  /// a silently wrong answer.
  bool model_satisfies(const std::vector<Lit>& assumptions) const;

  std::string solver_path_;
  int num_vars_ = 0;
  bool root_unsat_ = false;
  std::uint64_t retries_ = 0;
  std::vector<std::vector<Lit>> clauses_;
  std::vector<Value> model_;
  std::vector<Lit> core_;
};

}  // namespace sepe::sat
