#include "sat/backend.hpp"

#include "sat/dimacs_backend.hpp"
#include "sat/solver.hpp"

namespace sepe::sat {

const char* backend_kind_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::Native:
      return "native";
    case BackendKind::Dimacs:
      return "dimacs";
  }
  return "native";
}

std::optional<BackendKind> backend_kind_from_name(std::string_view name) {
  if (name == "native") return BackendKind::Native;
  if (name == "dimacs") return BackendKind::Dimacs;
  return std::nullopt;
}

std::unique_ptr<Backend> make_backend(BackendKind kind, const SolverConfig& config) {
  switch (kind) {
    case BackendKind::Dimacs:
      // The external solver runs with its own defaults; `config` only
      // tunes the native engine.
      return std::make_unique<DimacsBackend>();
    case BackendKind::Native:
      break;
  }
  return std::make_unique<Solver>(config);
}

}  // namespace sepe::sat
