#include "sat/dimacs_backend.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace sepe::sat {

namespace {

/// Resolve `command` against PATH (returns "" when not found). A command
/// containing a slash is used as-is when executable.
std::string resolve_command(const std::string& command) {
  if (command.empty()) return "";
  if (command.find('/') != std::string::npos)
    return access(command.c_str(), X_OK) == 0 ? command : "";
  const char* path = std::getenv("PATH");
  if (path == nullptr) return "";
  std::istringstream dirs(path);
  std::string dir;
  while (std::getline(dirs, dir, ':')) {
    if (dir.empty()) continue;
    const std::string candidate = dir + "/" + command;
    if (access(candidate.c_str(), X_OK) == 0) return candidate;
  }
  return "";
}

std::string probe_external_solver() {
  if (const char* env = std::getenv("SEPE_EXTERNAL_SOLVER")) {
    // An explicit request that does not resolve leaves the backend
    // unavailable rather than silently falling back to a probed solver.
    return resolve_command(env);
  }
  for (const char* candidate : {"kissat", "cadical"}) {
    const std::string resolved = resolve_command(candidate);
    if (!resolved.empty()) return resolved;
  }
  return "";
}

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

struct TempFile {
  std::string path;
  int fd = -1;

  explicit TempFile(const char* tag) {
    const char* tmpdir = std::getenv("TMPDIR");
    path = std::string(tmpdir != nullptr && *tmpdir != '\0' ? tmpdir : "/tmp") +
           "/sepe-" + tag + "-XXXXXX";
    fd = mkstemp(path.data());
  }
  ~TempFile() {
    if (fd >= 0) close(fd);
    if (!path.empty()) unlink(path.c_str());
  }
  TempFile(const TempFile&) = delete;
  TempFile& operator=(const TempFile&) = delete;
};

}  // namespace

DimacsBackend::DimacsBackend() : solver_path_(probe_external_solver()) {}

std::string DimacsBackend::name() const {
  return available() ? "dimacs:" + basename_of(solver_path_) : "dimacs:unavailable";
}

int DimacsBackend::new_var() { return num_vars_++; }

bool DimacsBackend::add_clause(std::vector<Lit> clause_lits) {
  if (root_unsat_) return false;
  if (clause_lits.empty()) {
    root_unsat_ = true;
    return false;
  }
  clauses_.push_back(std::move(clause_lits));
  return true;
}

SolveResult DimacsBackend::solve(const std::vector<Lit>& assumptions) {
  core_.clear();
  if (root_unsat_) return SolveResult::Unsat;
  if (!available()) return SolveResult::Unknown;

  // Transient subprocess failures — a spawn that fails, a child stuck or
  // killed from outside, truncated model output — are retried a bounded
  // number of times with deterministic backoff, then reported as an
  // honest Unknown. Faults cost retries, never wrong verdicts.
  constexpr int kMaxAttempts = 3;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    if (stop_requested()) return SolveResult::Unknown;
    if (attempt > 0) {
      ++retries_;
      // 10ms << (attempt-1), napped in slices so a stop request during
      // the backoff still aborts promptly.
      long remaining_ns = 10'000'000L << (attempt - 1);
      while (remaining_ns > 0 && !stop_requested()) {
        const long slice = remaining_ns < 2'000'000L ? remaining_ns : 2'000'000L;
        const struct timespec nap = {0, slice};
        nanosleep(&nap, nullptr);
        remaining_ns -= slice;
      }
    }
    SolveResult result = SolveResult::Unknown;
    if (solve_attempt(assumptions, &result)) return result;
  }
  return SolveResult::Unknown;
}

bool DimacsBackend::model_satisfies(const std::vector<Lit>& assumptions) const {
  const auto lit_true = [this](Lit l) {
    return l.var() < static_cast<int>(model_.size()) &&
           model_[l.var()] == (l.sign() ? Value::False : Value::True);
  };
  for (const Lit a : assumptions)
    if (!lit_true(a)) return false;
  for (const auto& clause : clauses_) {
    bool satisfied = false;
    for (const Lit l : clause) {
      if (lit_true(l)) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

bool DimacsBackend::solve_attempt(const std::vector<Lit>& assumptions,
                                  SolveResult* result) {
  // Write the CNF, assumptions as trailing unit clauses. The temp files
  // are RAII-owned: every exit path below — including the injected ones —
  // unlinks them, so a failing attempt leaves no /tmp litter.
  TempFile cnf("cnf");
  TempFile out("out");
  if (cnf.fd < 0 || out.fd < 0) return false;  // transient: ENOSPC/EMFILE
  {
    const int write_fd = dup(cnf.fd);
    std::FILE* f = write_fd >= 0 ? fdopen(write_fd, "w") : nullptr;
    if (f == nullptr) {
      if (write_fd >= 0) close(write_fd);
      return false;
    }
    std::fprintf(f, "p cnf %d %zu\n", num_vars_, clauses_.size() + assumptions.size());
    for (const auto& clause : clauses_) {
      for (const Lit l : clause)
        std::fprintf(f, "%d ", l.sign() ? -(l.var() + 1) : l.var() + 1);
      std::fputs("0\n", f);
    }
    for (const Lit a : assumptions)
      std::fprintf(f, "%d 0\n", a.sign() ? -(a.var() + 1) : a.var() + 1);
    const bool write_failed = std::ferror(f) != 0 || std::fclose(f) != 0;
    if (write_failed || fault::hit("dimacs.write").has_value()) return false;
  }

  if (fault::hit("dimacs.spawn").has_value()) return false;
  const pid_t pid = fork();
  if (pid < 0) return false;  // transient: EAGAIN under fork pressure
  if (pid == 0) {
    // Child: stdout -> the capture file, stderr -> /dev/null.
    dup2(out.fd, STDOUT_FILENO);
    const int devnull = open("/dev/null", O_WRONLY);
    if (devnull >= 0) dup2(devnull, STDERR_FILENO);
    execl(solver_path_.c_str(), solver_path_.c_str(), cnf.path.c_str(),
          static_cast<char*>(nullptr));
    _exit(127);
  }

  // Parent: poll for completion so the stop flag and the time budget
  // stay responsive (the conflict budget cannot be metered from outside
  // the subprocess and is documented as best-effort). Every path out of
  // this loop reaps the child — no zombies.
  const bool simulate_stuck_child = fault::hit("dimacs.hang").has_value();
  const auto start = std::chrono::steady_clock::now();
  int status = 0;
  for (;;) {
    const pid_t done = waitpid(pid, &status, WNOHANG);
    if (done == pid) break;
    if (done < 0 && errno != EINTR) {
      // waitpid itself failed: kill and reap synchronously so the child
      // cannot linger as a zombie, then retry the attempt.
      kill(pid, SIGKILL);
      while (waitpid(pid, &status, 0) < 0 && errno == EINTR) {}
      return false;
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (simulate_stuck_child && elapsed >= 0.01) {
      // Injected stuck child: treat it like a hung solver we gave up on —
      // kill, reap, retry.
      kill(pid, SIGKILL);
      while (waitpid(pid, &status, 0) < 0 && errno == EINTR) {}
      return false;
    }
    if (stop_requested() || (time_budget_seconds_ > 0 && elapsed >= time_budget_seconds_)) {
      kill(pid, SIGKILL);
      while (waitpid(pid, &status, 0) < 0 && errno == EINTR) {}
      *result = SolveResult::Unknown;
      return true;
    }
    const struct timespec nap = {0, 2'000'000};  // 2 ms
    nanosleep(&nap, nullptr);
  }
  // A child that died on a signal (OOM-killed, external SIGKILL) is a
  // transient host condition, not an answer: retry.
  if (!WIFEXITED(status)) return false;

  const int code = WEXITSTATUS(status);
  if (code == 20) {
    if (assumptions.empty()) {
      root_unsat_ = true;
    } else {
      // No core from the subprocess: report every assumption (a sound,
      // maximal over-approximation; callers treat cores as hints).
      for (const Lit a : assumptions) core_.push_back(~a);
    }
    *result = SolveResult::Unsat;
    return true;
  }
  if (code != 10) return false;  // crashed/misbehaving solver: retry

  // SAT: parse "v" lines (space-separated DIMACS literals, 0-terminated).
  if (fault::hit("dimacs.parse").has_value()) {
    // Injected truncation: chop the captured output mid-model so the
    // validation below must catch it.
    struct stat st;
    if (fstat(out.fd, &st) == 0) {
      if (ftruncate(out.fd, st.st_size / 2) != 0) return false;
    }
  }
  model_.assign(num_vars_, Value::False);
  std::ifstream in(out.path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.size() < 2 || line[0] != 'v') continue;
    std::istringstream lits(line.substr(1));
    long lit = 0;
    while (lits >> lit) {
      if (lit == 0) break;
      const int var = static_cast<int>(lit > 0 ? lit : -lit) - 1;
      if (var >= 0 && var < num_vars_) model_[var] = lit > 0 ? Value::True : Value::False;
    }
  }
  // A truncated or torn model stream parses "successfully" into a wrong
  // assignment (missing variables default to false). Validate against the
  // full formula; a non-model means the output was damaged — retry.
  if (!model_satisfies(assumptions)) return false;
  *result = SolveResult::Sat;
  return true;
}

}  // namespace sepe::sat
