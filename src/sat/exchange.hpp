// exchange.hpp — learnt-clause sharing: the intra-job exchange pool and
// the cross-job clause vault.
//
// Campaign jobs throw every learnt clause away at solver teardown, so
// portfolio members of the same job re-derive each other's conflicts and
// near-duplicate jobs re-learn entire lemma sets from scratch. This
// module is the third leg of the campaign cache (after cone tapes and
// persistent verdicts): low-LBD learnt clauses flow between solver
// stacks, keyed by *share epochs*.
//
// Why raw literal codes are sound to move between solvers
// -------------------------------------------------------
// A ShareKey is the bit-blaster state digest (smt/cone_cache.hpp): two
// blasters with equal state digests are isomorphic — identical variable
// numbering, identical clause stream, var 0 is always the true literal.
// The "variable remapping through the recorded bit-blast tape" is
// therefore the identity map: a clause exported under epoch E is valid
// VERBATIM on any solver whose blaster has passed through epoch E.
//
// A learnt clause is implied by the *problem clauses alone* (assumptions
// are decision-level prefixes, never clauses; BVE resolvents, subsumption
// strengthenings and vivified clauses are all implied by the original
// formula). The publisher's clause DB at epoch E is a prefix of any
// importer's DB once the importer has visited E, so every imported clause
// is implied by the importer's own formula — imports can never change a
// Sat/Unsat answer, only shortcut the search.
//
// Tier 1 — ClauseExchange: one per campaign job, shared by the portfolio
// entrants of both provers racing inside run_job. Thread-safe; members
// publish at restart boundaries and poll for foreign clauses under the
// epochs they have themselves visited.
//
// Tier 2 — ClauseVault: one per campaign (alongside the cone cache in
// CampaignOptions), budgeted the same way (store-reject accounting,
// 256 MB default). A clause learnt on job A seeds any digest-identical
// epoch of job B. Lookups honour the `vault.import` fault point
// (util/fault.hpp): an injected Fail degrades to a plain miss.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace sepe::sat {

/// A share epoch: the 128-bit bit-blaster state digest under which a
/// clause was learnt. Zero = "no epoch yet" (nothing blasted).
struct ShareKey {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  bool valid() const { return lo != 0 || hi != 0; }
  friend bool operator==(const ShareKey&, const ShareKey&) = default;
};

struct ShareKeyHash {
  std::size_t operator()(const ShareKey& k) const {
    return static_cast<std::size_t>(k.lo ^ (k.hi * 0x9e3779b97f4a7c15ULL));
  }
};

/// FNV-1a over sorted literal codes. Used for dedup only (publish-side,
/// store-side, and the solver's own export/import ledger): a collision
/// merely drops one shareable clause — sharing is best-effort.
std::uint64_t shared_clause_hash(const std::vector<int>& lits);

/// One shared learnt clause: raw literal codes (sorted ascending — the
/// publisher normalizes) plus the LBD it was learnt with.
struct SharedClause {
  std::vector<int> lits;
  std::uint32_t lbd = 2;

  std::size_t byte_size() const {
    return sizeof(SharedClause) + lits.size() * sizeof(int);
  }
};

class ClauseExchange;
class ClauseVault;

/// Wiring one campaign job hands each solver stack it spins up (see
/// engine/campaign.cpp): which pools to share through and the member id
/// that keeps a solver from importing its own exports. `lbd_cap` is the
/// job-level export quality bound (JobBudget::share_clauses); the solver
/// intersects it with its own SolverConfig::share_lbd_cap.
struct SharingContext {
  ClauseExchange* exchange = nullptr;
  ClauseVault* vault = nullptr;
  unsigned member = 0;
  unsigned lbd_cap = 0;  // 0 = sharing off

  bool enabled() const { return lbd_cap != 0 && (exchange != nullptr || vault != nullptr); }
};

/// Tier 1: the intra-job clause pool. Entries are grouped per epoch;
/// every member keeps its own read cursors (Backend-side), so the pool
/// itself is append-only until the byte budget trips.
class ClauseExchange {
 public:
  struct Stats {
    std::uint64_t published = 0;
    std::uint64_t duplicates = 0;     // publish deduplicated away
    std::uint64_t store_rejects = 0;  // byte budget exceeded
    std::uint64_t bytes = 0;
  };

  static constexpr std::size_t kDefaultMaxBytes = std::size_t(64) << 20;

  explicit ClauseExchange(std::size_t max_bytes = kDefaultMaxBytes)
      : max_bytes_(max_bytes) {}

  /// Cheap change detector: bumped on every accepted publish, so an
  /// importer can skip the lock when nothing new arrived.
  std::uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// Publish one clause learnt by `member` under `epoch`. `lits` must be
  /// sorted ascending. Duplicate clauses (same epoch, same literals) and
  /// over-budget publishes are dropped — sharing is best-effort.
  void publish(unsigned member, const ShareKey& epoch, const std::vector<int>& lits,
               std::uint32_t lbd);

  /// Append to `out` every clause under `epoch` from entry *cursor on
  /// that was not published by `member`; advances *cursor past everything
  /// examined. The caller owns the cursor (one per visited epoch).
  void collect(unsigned member, const ShareKey& epoch, std::size_t* cursor,
               std::vector<SharedClause>* out) const;

  Stats stats() const;

 private:
  struct Entry {
    unsigned member;
    SharedClause clause;
  };
  struct Bucket {
    std::vector<Entry> entries;
    std::unordered_set<std::uint64_t> hashes;  // publish-side dedup
  };

  mutable std::mutex mu_;
  std::unordered_map<ShareKey, Bucket, ShareKeyHash> buckets_;
  std::size_t max_bytes_;
  std::atomic<std::uint64_t> version_{0};
  Stats stats_;
};

/// Tier 2: the campaign-wide clause vault. Same shape as the cone cache:
/// mutex-guarded map, byte budget with store-reject accounting, and a
/// lookup that can only ever miss — never corrupt an importer.
class ClauseVault {
 public:
  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;  // lookups that returned at least one clause
    std::uint64_t stores = 0;
    std::uint64_t store_rejects = 0;  // byte budget exceeded
    std::uint64_t clauses = 0;        // clauses currently stored
    std::uint64_t bytes = 0;
  };

  static constexpr std::size_t kDefaultMaxBytes = std::size_t(256) << 20;

  explicit ClauseVault(std::size_t max_bytes = kDefaultMaxBytes)
      : max_bytes_(max_bytes) {}

  /// Record one clause under `epoch` (lits sorted ascending). Duplicates
  /// and over-budget stores are dropped.
  void store(const ShareKey& epoch, const std::vector<int>& lits, std::uint32_t lbd);

  /// Every clause stored under `epoch` at this moment. Counts a lookup
  /// (and a hit when non-empty). The `vault.import` fault point turns a
  /// would-be hit into a plain miss (fault::Action::Fail) — degraded, not
  /// failed: the importer simply learns nothing.
  std::vector<SharedClause> lookup(const ShareKey& epoch);

  Stats stats() const;

 private:
  struct Bucket {
    std::vector<SharedClause> clauses;
    std::unordered_set<std::uint64_t> hashes;
  };

  mutable std::mutex mu_;
  std::unordered_map<ShareKey, Bucket, ShareKeyHash> map_;
  std::size_t max_bytes_;
  Stats stats_;
};

}  // namespace sepe::sat
