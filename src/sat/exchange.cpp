#include "sat/exchange.hpp"

#include "util/fault.hpp"

namespace sepe::sat {

std::uint64_t shared_clause_hash(const std::vector<int>& lits) {
  std::uint64_t h = 1469598103934665603ULL;
  for (int code : lits) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(code));
    h *= 1099511628211ULL;
  }
  return h;
}

void ClauseExchange::publish(unsigned member, const ShareKey& epoch,
                             const std::vector<int>& lits, std::uint32_t lbd) {
  if (!epoch.valid() || lits.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  Bucket& bucket = buckets_[epoch];
  if (!bucket.hashes.insert(shared_clause_hash(lits)).second) {
    ++stats_.duplicates;
    return;
  }
  SharedClause clause{lits, lbd};
  const std::size_t bytes = clause.byte_size();
  if (stats_.bytes + bytes > max_bytes_) {
    ++stats_.store_rejects;
    return;
  }
  stats_.bytes += bytes;
  ++stats_.published;
  bucket.entries.push_back(Entry{member, std::move(clause)});
  version_.fetch_add(1, std::memory_order_release);
}

void ClauseExchange::collect(unsigned member, const ShareKey& epoch, std::size_t* cursor,
                             std::vector<SharedClause>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buckets_.find(epoch);
  if (it == buckets_.end()) return;
  const std::vector<Entry>& entries = it->second.entries;
  for (std::size_t i = *cursor; i < entries.size(); ++i) {
    if (entries[i].member != member) out->push_back(entries[i].clause);
  }
  *cursor = entries.size();
}

ClauseExchange::Stats ClauseExchange::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ClauseVault::store(const ShareKey& epoch, const std::vector<int>& lits,
                        std::uint32_t lbd) {
  if (!epoch.valid() || lits.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  Bucket& bucket = map_[epoch];
  if (!bucket.hashes.insert(shared_clause_hash(lits)).second) return;
  SharedClause clause{lits, lbd};
  const std::size_t bytes = clause.byte_size();
  if (stats_.bytes + bytes > max_bytes_) {
    ++stats_.store_rejects;
    return;
  }
  stats_.bytes += bytes;
  ++stats_.stores;
  ++stats_.clauses;
  bucket.clauses.push_back(std::move(clause));
}

std::vector<SharedClause> ClauseVault::lookup(const ShareKey& epoch) {
  if (!epoch.valid()) return {};
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.lookups;
  if (fault::armed()) {
    if (auto action = fault::hit("vault.import")) {
      if (*action == fault::Action::Fail) return {};  // degrade to a plain miss
    }
  }
  auto it = map_.find(epoch);
  if (it == map_.end() || it->second.clauses.empty()) return {};
  ++stats_.hits;
  return it->second.clauses;
}

ClauseVault::Stats ClauseVault::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace sepe::sat
