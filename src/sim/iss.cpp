#include "sim/iss.hpp"

#include <cassert>

namespace sepe::sim {

ArchState::ArchState(unsigned xlen, std::size_t mem_words)
    : xlen_(xlen), mem_words_(mem_words), regs_(32, BitVec::zeros(xlen)) {
  assert(xlen >= 4 && xlen <= 64);
  assert(mem_words >= 2);
}

void ArchState::set_reg(unsigned idx, const BitVec& v) {
  assert(idx < 32 && v.width() == xlen_);
  if (idx == 0) return;  // x0 is hard-wired zero
  regs_[idx] = v;
}

std::size_t ArchState::word_index(const BitVec& addr) const {
  // Word-addressed memory: drop the two byte-offset bits, wrap modulo size.
  return static_cast<std::size_t>(addr.uval() >> 2) % mem_words_;
}

BitVec ArchState::load_word(const BitVec& addr) const {
  const auto it = mem_.find(word_index(addr));
  return it != mem_.end() ? it->second : BitVec::zeros(xlen_);
}

void ArchState::store_word(const BitVec& addr, const BitVec& value) {
  assert(value.width() == xlen_);
  mem_[word_index(addr)] = value;
}

bool ArchState::operator==(const ArchState& o) const {
  if (xlen_ != o.xlen_ || mem_words_ != o.mem_words_ || regs_ != o.regs_) return false;
  // Sparse maps compare equal iff non-zero entries agree.
  for (const auto& [k, v] : mem_)
    if (!(o.load_word(BitVec(xlen_, k << 2)) == v)) return false;
  for (const auto& [k, v] : o.mem_)
    if (!(load_word(BitVec(xlen_, k << 2)) == v)) return false;
  return true;
}

void Iss::step(const isa::Instruction& inst) {
  const unsigned xlen = state_.xlen();
  using isa::Opcode;
  if (inst.op == Opcode::NOP) return;
  if (isa::is_load(inst.op)) {
    const BitVec addr = state_.reg(inst.rs1) + isa::imm_to_xlen(inst.imm, xlen);
    state_.set_reg(inst.rd, state_.load_word(addr));
    return;
  }
  if (isa::is_store(inst.op)) {
    const BitVec addr = state_.reg(inst.rs1) + isa::imm_to_xlen(inst.imm, xlen);
    state_.store_word(addr, state_.reg(inst.rs2));
    return;
  }
  const BitVec result = isa::instruction_result_concrete(
      inst, state_.reg(inst.rs1), state_.reg(inst.rs2), xlen);
  state_.set_reg(inst.rd, result);
}

void Iss::run(const isa::Program& program) {
  for (const isa::Instruction& inst : program) step(inst);
}

}  // namespace sepe::sim
