// ts_sim.hpp — concrete cycle-by-cycle simulation of a TransitionSystem
// via the term evaluator.
//
// Originally a test-support harness; promoted into the library because the
// witness pipeline (engine/witness.hpp) replays counterexample traces with
// exactly this simulator — no solver in the loop. States are held as
// concrete BitVecs, each step() evaluates every next-state function under
// the current state + supplied inputs. The processor and QED-module tests
// keep using it to cross-check the symbolic pipeline against the golden
// ISS.
#pragma once

#include "smt/eval.hpp"
#include "ts/transition_system.hpp"

namespace sepe::sim {

/// Concrete simulator for a complete TransitionSystem.
class TsSim {
 public:
  /// States with init terms start there (init terms are input-free);
  /// everything else defaults to zero and may be overridden via
  /// set_state before the first step.
  explicit TsSim(const ts::TransitionSystem& ts);

  void set_state(smt::TermRef s, const BitVec& v);

  const BitVec& state(smt::TermRef s) const { return state_.at(s); }

  /// Evaluate any term under the current state and the given inputs.
  BitVec eval(smt::TermRef t, const smt::Assignment& inputs = {}) const;

  /// Do all step constraints hold under the current state + inputs?
  bool constraints_ok(const smt::Assignment& inputs) const;

  /// Advance one cycle.
  void step(const smt::Assignment& inputs);

 private:
  const ts::TransitionSystem& ts_;
  smt::Assignment state_;
};

}  // namespace sepe::sim
