#include "sim/ts_sim.hpp"

#include <cassert>

namespace sepe::sim {

TsSim::TsSim(const ts::TransitionSystem& ts) : ts_(ts) {
  assert(ts.complete());
  for (smt::TermRef s : ts.states()) {
    const smt::TermRef init = ts.init_of(s);
    state_[s] = init != smt::kNullTerm ? smt::eval_term(ts.mgr(), init, {})
                                       : BitVec::zeros(ts.mgr().width(s));
  }
}

void TsSim::set_state(smt::TermRef s, const BitVec& v) {
  assert(ts_.is_state(s) && v.width() == ts_.mgr().width(s));
  state_[s] = v;
}

BitVec TsSim::eval(smt::TermRef t, const smt::Assignment& inputs) const {
  smt::Assignment combined = state_;
  for (const auto& [k, v] : inputs) combined[k] = v;
  return smt::eval_term(ts_.mgr(), t, combined);
}

bool TsSim::constraints_ok(const smt::Assignment& inputs) const {
  for (smt::TermRef c : ts_.constraints())
    if (!eval(c, inputs).is_true()) return false;
  return true;
}

void TsSim::step(const smt::Assignment& inputs) {
  smt::Assignment combined = state_;
  for (const auto& [k, v] : inputs) combined[k] = v;
  smt::Evaluator ev(ts_.mgr());
  smt::Assignment next;
  for (smt::TermRef s : ts_.states()) next[s] = ev.eval(ts_.next_of(s), combined);
  state_ = std::move(next);
}

}  // namespace sepe::sim
