// iss.hpp — instruction-set simulator (golden architectural model).
//
// Executes RV32IM straight-line programs over an architectural state of 32
// general-purpose registers and a word-addressed data memory. Used as:
//   * the reference model that property tests cross-check the symbolic
//     semantics and the pipelined processor model against;
//   * the execution engine for concrete QED testing (src/qed/qed_test.hpp),
//     reproducing the original QED methodology the paper builds on.
//
// Width-parameterized like the rest of the stack: registers are `xlen`
// bits wide; addresses are register values taken modulo the memory size.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "isa/isa.hpp"
#include "isa/semantics.hpp"
#include "util/bitvec.hpp"

namespace sepe::sim {

/// Architectural state: registers + data memory.
///
/// Memory is sparse (unordered_map keyed by word index); unwritten
/// locations read as zero, matching the zero-initialized memory the BMC
/// model assumes for QED-consistent initial states.
class ArchState {
 public:
  explicit ArchState(unsigned xlen = 32, std::size_t mem_words = 1024);

  unsigned xlen() const { return xlen_; }
  std::size_t mem_words() const { return mem_words_; }

  const BitVec& reg(unsigned idx) const { return regs_[idx]; }
  /// Writes to x0 are discarded (RISC-V hard-wired zero).
  void set_reg(unsigned idx, const BitVec& v);

  BitVec load_word(const BitVec& addr) const;
  void store_word(const BitVec& addr, const BitVec& value);

  /// Word index a register-valued address maps to (modulo memory size).
  std::size_t word_index(const BitVec& addr) const;

  bool operator==(const ArchState& o) const;

 private:
  unsigned xlen_;
  std::size_t mem_words_;
  std::vector<BitVec> regs_;
  std::unordered_map<std::size_t, BitVec> mem_;
};

/// The simulator: steps instructions against an ArchState.
class Iss {
 public:
  explicit Iss(unsigned xlen = 32, std::size_t mem_words = 1024)
      : state_(xlen, mem_words) {}

  ArchState& state() { return state_; }
  const ArchState& state() const { return state_; }

  /// Execute one instruction.
  void step(const isa::Instruction& inst);

  /// Execute a straight-line program front to back.
  void run(const isa::Program& program);

 private:
  ArchState state_;
};

}  // namespace sepe::sim
