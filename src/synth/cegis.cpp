#include "synth/cegis.hpp"

#include <algorithm>
#include <cassert>
#include <set>
#include <sstream>

#include "util/stopwatch.hpp"

namespace sepe::synth {

std::vector<std::vector<unsigned>> combinations_with_replacement(unsigned lib_size,
                                                                 unsigned n) {
  std::vector<std::vector<unsigned>> out;
  std::vector<unsigned> cur(n, 0);
  for (;;) {
    out.push_back(cur);
    // Advance the non-decreasing index tuple.
    int i = static_cast<int>(n) - 1;
    while (i >= 0 && cur[i] == lib_size - 1) --i;
    if (i < 0) break;
    const unsigned v = cur[i] + 1;
    for (unsigned j = static_cast<unsigned>(i); j < n; ++j) cur[j] = v;
  }
  return out;
}

PriorityDict::PriorityDict(std::size_t num_components, const HpfOptions& opts)
    : opts_(opts),
      choice_(num_components, opts.initial_choice_weight),
      exclusion_(num_components, opts.initial_exclusion_weight) {}

double PriorityDict::priority(const std::vector<unsigned>& multiset,
                              const SynthSpec& spec,
                              const std::vector<Component>& lib) const {
  // priority = Σ_j (c_j − α·χ_j) / Σ_j e_j   (paper §4.2)
  double num = 0.0, den = 0.0;
  for (unsigned j : multiset) {
    const bool same_name = lib[j].opcode == spec.opcode;
    num += choice_[j] - (opts_.enable_alpha_penalty && same_name ? opts_.alpha : 0);
    den += exclusion_[j];
  }
  return den > 0 ? num / den : num;
}

void PriorityDict::reward(const std::vector<unsigned>& multiset) {
  if (!opts_.enable_choice_updates) return;
  for (unsigned j : multiset) choice_[j] += opts_.weight_increment;
}

void PriorityDict::penalize(const std::vector<unsigned>& multiset) {
  if (!opts_.enable_exclusion_updates) return;
  for (unsigned j : multiset) exclusion_[j] += opts_.weight_increment;
}

namespace {

std::vector<const Component*> to_pointers(const std::vector<unsigned>& multiset,
                                          const std::vector<Component>& lib) {
  std::vector<const Component*> ptrs;
  ptrs.reserve(multiset.size());
  for (unsigned j : multiset) ptrs.push_back(&lib[j]);
  return ptrs;
}

/// Shared per-multiset attempt: run CEGIS, dedupe, account.
bool attempt_multiset(const SynthSpec& spec, const std::vector<unsigned>& multiset,
                      const std::vector<Component>& lib, const DriverOptions& opts,
                      SynthesisResult& result, std::set<std::string>& seen) {
  ++result.multisets_tried;
  auto program = cegis_multiset(spec, to_pointers(multiset, lib), opts.cegis);
  if (!program) return false;
  ++result.multisets_succeeded;
  const std::string fp = program->fingerprint();
  if (seen.insert(fp).second) result.programs.push_back(std::move(*program));
  return true;
}

bool reached_target(const SynthesisResult& result, const DriverOptions& opts,
                    const Stopwatch& clock) {
  if (result.programs.size() >= opts.target_programs) return true;
  if (opts.max_seconds > 0 && clock.seconds() >= opts.max_seconds) return true;
  return false;
}

}  // namespace

SynthesisResult hpf_cegis(const SynthSpec& spec, const std::vector<Component>& lib,
                          const DriverOptions& opts, const HpfOptions& hpf,
                          PriorityDict* shared_dict) {
  Stopwatch clock;
  SynthesisResult result;
  std::set<std::string> seen;

  PriorityDict local_dict(lib.size(), hpf);
  PriorityDict& dict = shared_dict ? *shared_dict : local_dict;

  // MULTISETS <- COMBINATIONSWITHREPLACEMENT(B, n)   (Algorithm 1, line 5)
  auto multisets = combinations_with_replacement(static_cast<unsigned>(lib.size()),
                                                 opts.multiset_size);

  while (!multisets.empty() && !reached_target(result, opts, clock)) {
    // SORTED(MULTISETS, PRIORITY_DICT, g); S <- MULTISETS[0]  (lines 9-10)
    // A full sort is what the paper specifies; taking max_element is the
    // same selection with one pass. The chosen multiset is then removed so
    // each is attempted at most once per instruction.
    auto best = std::max_element(
        multisets.begin(), multisets.end(),
        [&](const std::vector<unsigned>& a, const std::vector<unsigned>& b) {
          return dict.priority(a, spec, lib) < dict.priority(b, spec, lib);
        });
    const std::vector<unsigned> chosen = *best;
    *best = std::move(multisets.back());
    multisets.pop_back();

    if (attempt_multiset(spec, chosen, lib, opts, result, seen)) {
      dict.reward(chosen);     // line 16
    } else {
      dict.penalize(chosen);   // line 13
    }
  }
  result.exhausted = multisets.empty();
  result.seconds = clock.seconds();
  return result;
}

SynthesisResult iterative_cegis(const SynthSpec& spec, const std::vector<Component>& lib,
                                const DriverOptions& opts) {
  Stopwatch clock;
  SynthesisResult result;
  std::set<std::string> seen;

  auto multisets = combinations_with_replacement(static_cast<unsigned>(lib.size()),
                                                 opts.multiset_size);
  // §6.1: "we shuffle all multisets before synthesis to prevent the
  // clustering of similar data types".
  Rng rng(opts.shuffle_seed);
  for (std::size_t i = multisets.size(); i > 1; --i)
    std::swap(multisets[i - 1], multisets[rng.below(i)]);

  for (const auto& multiset : multisets) {
    if (reached_target(result, opts, clock)) break;
    attempt_multiset(spec, multiset, lib, opts, result, seen);
  }
  result.exhausted = true;
  result.seconds = clock.seconds();
  return result;
}

SynthesisResult classical_cegis(const SynthSpec& spec, const std::vector<Component>& lib,
                                const DriverOptions& opts, unsigned instances) {
  Stopwatch clock;
  SynthesisResult result;
  std::set<std::string> seen;

  // One monolithic multiset: `instances` copies of every component.
  std::vector<unsigned> all;
  for (unsigned rep = 0; rep < instances; ++rep)
    for (unsigned j = 0; j < lib.size(); ++j) all.push_back(j);

  attempt_multiset(spec, all, lib, opts, result, seen);
  result.exhausted = true;
  result.seconds = clock.seconds();
  return result;
}

void EquivalenceTable::add(const std::string& instr_name, SynthProgram program) {
  table_[instr_name].push_back(std::move(program));
}

const std::vector<SynthProgram>* EquivalenceTable::find(
    const std::string& instr_name) const {
  const auto it = table_.find(instr_name);
  return it != table_.end() ? &it->second : nullptr;
}

const SynthProgram* EquivalenceTable::first(const std::string& instr_name) const {
  const auto* v = find(instr_name);
  return v && !v->empty() ? &v->front() : nullptr;
}

const SynthProgram* EquivalenceTable::first_avoiding(const std::string& instr_name,
                                                     isa::Opcode op) const {
  const auto* v = find(instr_name);
  if (!v) return nullptr;
  for (const SynthProgram& p : *v)
    if (!p.uses_opcode(op)) return &p;
  return nullptr;
}

EquivalenceTable EquivalenceTable::select_distinct() const {
  EquivalenceTable out;
  for (const auto& [name, programs] : table_) {
    const SynthProgram* chosen = nullptr;
    // Prefer a program that avoids the instruction's own opcode — it
    // maximizes datapath separation, the property §4.2's α-penalty aims
    // for.
    for (const SynthProgram& p : programs) {
      if (!p.uses_opcode(p.spec->opcode)) {
        chosen = &p;
        break;
      }
    }
    if (!chosen && !programs.empty()) chosen = &programs.front();
    if (chosen) out.add(name, *chosen);
  }
  return out;
}

std::string EquivalenceTable::to_string() const {
  std::ostringstream os;
  for (const auto& [name, programs] : table_) {
    os << "# " << name << " (" << programs.size() << " equivalent program"
       << (programs.size() == 1 ? "" : "s") << ")\n";
    for (const SynthProgram& p : programs) {
      std::istringstream lines(p.to_string());
      std::string line;
      while (std::getline(lines, line)) os << "    " << line << "\n";
      os << "    --\n";
    }
  }
  return os.str();
}

EquivalenceTable build_equivalence_table(const std::vector<SynthSpec>& specs,
                                         const std::vector<Component>& lib,
                                         const DriverOptions& opts,
                                         unsigned programs_per_instr) {
  EquivalenceTable table;
  HpfOptions hpf;
  PriorityDict dict(lib.size(), hpf);
  for (const SynthSpec& spec : specs) {
    DriverOptions per = opts;
    per.target_programs = programs_per_instr;
    // Escalate the multiset size when the configured one cannot express
    // the instruction (the iterative-CEGIS idea of growing multisets).
    for (unsigned n = opts.multiset_size; n <= opts.multiset_size + 2; ++n) {
      per.multiset_size = n;
      auto result = hpf_cegis(spec, lib, per, hpf, &dict);
      if (!result.programs.empty()) {
        for (SynthProgram& p : result.programs) table.add(spec.name, std::move(p));
        break;
      }
    }
  }
  return table;
}

}  // namespace sepe::synth
