// component.hpp — the synthesis component library (paper §4.1).
//
// A component is a small semantic building block the CEGIS synthesizer
// wires together to reconstruct an original instruction's behaviour.
// Three classes, exactly as the paper defines them:
//
//   * NIC (Native Instruction Class)   — the component is one instruction
//     whose register operands are all synthesis inputs (e.g. ADD).
//   * DIC (Derived Instruction Class)  — an immediate-form instruction
//     whose immediate is an *internal attribute*: a constant the
//     synthesizer solves for (e.g. ADDI with a chosen 12-bit value).
//   * CIC (Composite Instruction Class)— a fixed short instruction
//     sequence exposed as one component, used to cover semantics that are
//     hard for bit-vector solvers to synthesize from scratch (the paper's
//     example: multiply by a constant = ADDI ; MUL).
//
// The standard library built by make_standard_library() has 29 components
// (10 NIC + 10 DIC + 9 CIC), matching the paper's experimental setup, and
// covers the RV32IM classes used in the evaluation.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "isa/isa.hpp"
#include "isa/semantics.hpp"
#include "smt/term.hpp"
#include "util/bitvec.hpp"

namespace sepe::synth {

enum class ComponentClass : std::uint8_t { NIC, DIC, CIC };

const char* component_class_name(ComponentClass c);

/// Width class of an internal attribute (drives passthrough matching with
/// the original instruction's own immediate operand).
enum class AttrClass : std::uint8_t { Imm12, Imm20, Shamt5 };

unsigned attr_class_width(AttrClass c);

/// Where a register field of an expansion instruction comes from when the
/// component is lowered to concrete (or circuit-level symbolic)
/// instructions.
struct RegOperand {
  enum class Kind : std::uint8_t {
    Fixed,   // a literal architectural register (e.g. x0)
    Input,   // the component's index-th data input
    Output,  // the component's result register
    Temp,    // the index-th scratch register
  };
  Kind kind = Kind::Fixed;
  unsigned index = 0;

  static RegOperand fixed(unsigned r) { return {Kind::Fixed, r}; }
  static RegOperand input(unsigned i) { return {Kind::Input, i}; }
  static RegOperand output() { return {Kind::Output, 0}; }
  static RegOperand temp(unsigned i) { return {Kind::Temp, i}; }
};

/// Where an immediate field of an expansion instruction comes from.
struct ImmOperand {
  enum class Kind : std::uint8_t {
    Fixed,  // a literal immediate
    Attr,   // the component's index-th internal attribute
  };
  Kind kind = Kind::Fixed;
  std::int32_t value = 0;   // for Fixed
  unsigned attr_index = 0;  // for Attr

  static ImmOperand fixed(std::int32_t v) { return {Kind::Fixed, v, 0}; }
  static ImmOperand attr(unsigned i) { return {Kind::Attr, 0, i}; }
};

/// One instruction of a component's expansion, with operand provenance.
/// The declarative form lets both the concrete lowerer
/// (SynthProgram::lower) and the EDSEP-V module's symbolic lowerer reuse
/// the same structure.
struct ExpansionInstr {
  isa::Opcode op;
  RegOperand rd;
  RegOperand rs1;
  RegOperand rs2;
  ImmOperand imm;  // meaningful for I/Shift/U/Load/Store formats
};

using Expansion = std::vector<ExpansionInstr>;

/// One synthesis component.
///
/// `semantics` builds the output term from input terms (all xlen wide) and
/// attribute terms (attr-class widths). `expansion` is the instruction
/// sequence the component lowers to; CICs may consume `num_temps` scratch
/// registers inside it.
struct Component {
  std::string name;           // display + Name(...) matching for χ_j
  isa::Opcode opcode;         // opcode used for Name(j) == Name(g) tests
  ComponentClass cls;
  unsigned num_inputs;        // register-value inputs
  std::vector<AttrClass> attrs;
  unsigned num_temps;         // scratch registers the expansion consumes
  unsigned cost;              // instructions in the expansion (>=1)

  std::function<smt::TermRef(smt::TermManager&, const std::vector<smt::TermRef>&,
                             const std::vector<smt::TermRef>&, unsigned /*xlen*/)>
      semantics;

  Expansion expansion;
};

/// Lower a component expansion to concrete instructions.
isa::Program lower_expansion(const Expansion& expansion,
                             const std::vector<std::uint8_t>& in_regs,
                             std::uint8_t out_reg,
                             const std::vector<std::int32_t>& attr_values,
                             const std::vector<std::uint8_t>& temps);

/// The 29-component standard library (10 NIC, 10 DIC, 9 CIC).
std::vector<Component> make_standard_library();

/// Subset selection helper for ablation benches.
std::vector<Component> filter_by_class(const std::vector<Component>& lib,
                                       ComponentClass c);

}  // namespace sepe::synth
