#include "synth/component.hpp"

#include <cassert>

namespace sepe::synth {

using isa::Instruction;
using isa::Opcode;
using smt::TermManager;
using smt::TermRef;

const char* component_class_name(ComponentClass c) {
  switch (c) {
    case ComponentClass::NIC: return "NIC";
    case ComponentClass::DIC: return "DIC";
    case ComponentClass::CIC: return "CIC";
  }
  return "?";
}

unsigned attr_class_width(AttrClass c) {
  switch (c) {
    case AttrClass::Imm12: return 12;
    case AttrClass::Imm20: return 20;
    case AttrClass::Shamt5: return 5;
  }
  return 0;
}

isa::Program lower_expansion(const Expansion& expansion,
                             const std::vector<std::uint8_t>& in_regs,
                             std::uint8_t out_reg,
                             const std::vector<std::int32_t>& attr_values,
                             const std::vector<std::uint8_t>& temps) {
  auto reg = [&](const RegOperand& r) -> std::uint8_t {
    switch (r.kind) {
      case RegOperand::Kind::Fixed: return static_cast<std::uint8_t>(r.index);
      case RegOperand::Kind::Input: return in_regs[r.index];
      case RegOperand::Kind::Output: return out_reg;
      case RegOperand::Kind::Temp: return temps[r.index];
    }
    return 0;
  };
  auto imm = [&](const ImmOperand& i) -> std::int32_t {
    return i.kind == ImmOperand::Kind::Fixed ? i.value : attr_values[i.attr_index];
  };

  isa::Program out;
  for (const ExpansionInstr& e : expansion) {
    switch (isa::opcode_format(e.op)) {
      case isa::Format::R:
        out.push_back(Instruction::rtype(e.op, reg(e.rd), reg(e.rs1), reg(e.rs2)));
        break;
      case isa::Format::I:
        out.push_back(Instruction::itype(e.op, reg(e.rd), reg(e.rs1), imm(e.imm)));
        break;
      case isa::Format::Shift:
        out.push_back(Instruction::itype(e.op, reg(e.rd), reg(e.rs1), imm(e.imm) & 31));
        break;
      case isa::Format::U:
        out.push_back(Instruction::lui(reg(e.rd), imm(e.imm) & 0xfffff));
        break;
      case isa::Format::Load:
        out.push_back(Instruction::lw(reg(e.rd), reg(e.rs1), imm(e.imm)));
        break;
      case isa::Format::Store:
        out.push_back(Instruction::sw(reg(e.rs2), reg(e.rs1), imm(e.imm)));
        break;
      case isa::Format::None:
        out.push_back(Instruction::nop());
        break;
    }
  }
  return out;
}

namespace {

/// Sign-extend/truncate an attribute term onto the datapath.
TermRef attr_to_xlen(TermManager& mgr, TermRef attr, unsigned xlen, bool sign_extend) {
  const unsigned w = mgr.width(attr);
  if (w == xlen) return attr;
  if (w < xlen) return sign_extend ? mgr.mk_sext(attr, xlen) : mgr.mk_zext(attr, xlen);
  return mgr.mk_extract(attr, xlen - 1, 0);
}

Component make_nic(Opcode op) {
  Component c;
  c.name = isa::opcode_name(op);
  c.opcode = op;
  c.cls = ComponentClass::NIC;
  c.num_inputs = 2;
  c.num_temps = 0;
  c.cost = 1;
  c.semantics = [op](TermManager& mgr, const std::vector<TermRef>& in,
                     const std::vector<TermRef>&, unsigned) {
    return isa::alu_symbolic(mgr, op, in[0], in[1]);
  };
  c.expansion = {
      {op, RegOperand::output(), RegOperand::input(0), RegOperand::input(1), {}}};
  return c;
}

Component make_dic(Opcode op) {
  const bool is_shift = isa::opcode_format(op) == isa::Format::Shift;
  Component c;
  c.name = isa::opcode_name(op);
  c.opcode = op;
  c.cls = ComponentClass::DIC;
  c.num_inputs = 1;
  c.attrs = {is_shift ? AttrClass::Shamt5 : AttrClass::Imm12};
  c.num_temps = 0;
  c.cost = 1;
  c.semantics = [op, is_shift](TermManager& mgr, const std::vector<TermRef>& in,
                               const std::vector<TermRef>& attrs, unsigned xlen) {
    const TermRef imm = attr_to_xlen(mgr, attrs[0], xlen, /*sign_extend=*/!is_shift);
    return isa::alu_symbolic(mgr, op, in[0], imm);
  };
  c.expansion = {
      {op, RegOperand::output(), RegOperand::input(0), {}, ImmOperand::attr(0)}};
  return c;
}

Component make_lui_dic() {
  Component c;
  c.name = "LUI";
  c.opcode = Opcode::LUI;
  c.cls = ComponentClass::DIC;
  c.num_inputs = 0;
  c.attrs = {AttrClass::Imm20};
  c.num_temps = 0;
  c.cost = 1;
  c.semantics = [](TermManager& mgr, const std::vector<TermRef>&,
                   const std::vector<TermRef>& attrs, unsigned xlen) {
    // rd = imm20 << 12 on the architectural width, truncated to the
    // datapath. Build at max(xlen, 32) then cut down.
    const unsigned wide = xlen >= 32 ? xlen : 32;
    const TermRef ext = mgr.mk_zext(attrs[0], wide);
    const TermRef shifted = mgr.mk_shl(ext, mgr.mk_const(wide, 12));
    return xlen == wide ? shifted : mgr.mk_extract(shifted, xlen - 1, 0);
  };
  c.expansion = {{Opcode::LUI, RegOperand::output(), {}, {}, ImmOperand::attr(0)}};
  return c;
}

// --- CICs ---

/// CIC: multiply by a solved 12-bit constant (the paper's own example:
/// ADDI t,x0,A ; MUL o,i1,t).
Component make_cic_mulc() {
  Component c;
  c.name = "MULC";
  c.opcode = Opcode::MUL;
  c.cls = ComponentClass::CIC;
  c.num_inputs = 1;
  c.attrs = {AttrClass::Imm12};
  c.num_temps = 1;
  c.cost = 2;
  c.semantics = [](TermManager& mgr, const std::vector<TermRef>& in,
                   const std::vector<TermRef>& attrs, unsigned xlen) {
    return mgr.mk_mul(in[0], attr_to_xlen(mgr, attrs[0], xlen, true));
  };
  c.expansion = {
      {Opcode::ADDI, RegOperand::temp(0), RegOperand::fixed(0), {}, ImmOperand::attr(0)},
      {Opcode::MUL, RegOperand::output(), RegOperand::input(0), RegOperand::temp(0), {}}};
  return c;
}

/// CIC wrapping one hard M-extension instruction as a unit sequence, the
/// mechanism the paper uses to "relax the conditions for solving".
Component make_cic_mop(const char* name, Opcode op) {
  Component c = make_nic(op);
  c.name = name;
  c.cls = ComponentClass::CIC;
  return c;
}

/// CIC: sign mask-and-select — SRAI t,i1,31 ; AND o,t,i2
/// (o = i1<0 ? i2 : 0, the key gadget of the signed/unsigned MULH bridge).
/// The shift amount 31 is masked to xlen-1 on narrower datapaths, exactly
/// as RISC-V masks register shift amounts.
Component make_cic_signsel() {
  Component c;
  c.name = "SIGNSEL";
  c.opcode = Opcode::SRAI;
  c.cls = ComponentClass::CIC;
  c.num_inputs = 2;
  c.num_temps = 1;
  c.cost = 2;
  c.semantics = [](TermManager& mgr, const std::vector<TermRef>& in,
                   const std::vector<TermRef>&, unsigned xlen) {
    const TermRef sign = mgr.mk_ashr(in[0], mgr.mk_const(xlen, xlen - 1));
    return mgr.mk_and(sign, in[1]);
  };
  c.expansion = {
      {Opcode::SRAI, RegOperand::temp(0), RegOperand::input(0), {},
       ImmOperand::fixed(31)},
      {Opcode::AND, RegOperand::output(), RegOperand::temp(0), RegOperand::input(1), {}}};
  return c;
}

/// CIC: two's-complement negation — SUB o, x0, i1.
Component make_cic_neg() {
  Component c;
  c.name = "NEG";
  c.opcode = Opcode::SUB;
  c.cls = ComponentClass::CIC;
  c.num_inputs = 1;
  c.num_temps = 0;
  c.cost = 1;
  c.semantics = [](TermManager& mgr, const std::vector<TermRef>& in,
                   const std::vector<TermRef>&, unsigned) { return mgr.mk_neg(in[0]); };
  c.expansion = {
      {Opcode::SUB, RegOperand::output(), RegOperand::fixed(0), RegOperand::input(0),
       {}}};
  return c;
}

/// CIC: bitwise complement — XORI o, i1, -1.
Component make_cic_not() {
  Component c;
  c.name = "NOT";
  c.opcode = Opcode::XORI;
  c.cls = ComponentClass::CIC;
  c.num_inputs = 1;
  c.num_temps = 0;
  c.cost = 1;
  c.semantics = [](TermManager& mgr, const std::vector<TermRef>& in,
                   const std::vector<TermRef>&, unsigned) { return mgr.mk_not(in[0]); };
  c.expansion = {
      {Opcode::XORI, RegOperand::output(), RegOperand::input(0), {},
       ImmOperand::fixed(-1)}};
  return c;
}

/// CIC: three-operand add — ADD t,i1,i2 ; ADD o,t,i3.
Component make_cic_add3() {
  Component c;
  c.name = "ADD3";
  c.opcode = Opcode::ADD;
  c.cls = ComponentClass::CIC;
  c.num_inputs = 3;
  c.num_temps = 1;
  c.cost = 2;
  c.semantics = [](TermManager& mgr, const std::vector<TermRef>& in,
                   const std::vector<TermRef>&, unsigned) {
    return mgr.mk_add(mgr.mk_add(in[0], in[1]), in[2]);
  };
  c.expansion = {
      {Opcode::ADD, RegOperand::temp(0), RegOperand::input(0), RegOperand::input(1), {}},
      {Opcode::ADD, RegOperand::output(), RegOperand::temp(0), RegOperand::input(2), {}}};
  return c;
}

}  // namespace

std::vector<Component> make_standard_library() {
  std::vector<Component> lib;
  // 10 NICs: the RV32I register-register ALU class.
  for (Opcode op : {Opcode::ADD, Opcode::SUB, Opcode::SLL, Opcode::SLT, Opcode::SLTU,
                    Opcode::XOR, Opcode::SRL, Opcode::SRA, Opcode::OR, Opcode::AND})
    lib.push_back(make_nic(op));
  // 10 DICs: immediate forms with the immediate as internal attribute.
  for (Opcode op : {Opcode::ADDI, Opcode::SLTI, Opcode::SLTIU, Opcode::XORI, Opcode::ORI,
                    Opcode::ANDI, Opcode::SLLI, Opcode::SRLI, Opcode::SRAI})
    lib.push_back(make_dic(op));
  lib.push_back(make_lui_dic());
  // 9 CICs.
  lib.push_back(make_cic_mulc());
  lib.push_back(make_cic_mop("MUL_C", Opcode::MUL));
  lib.push_back(make_cic_mop("MULH_C", Opcode::MULH));
  lib.push_back(make_cic_mop("MULHU_C", Opcode::MULHU));
  // MULHSU bridges the signed and unsigned high products:
  // mulh(a,b) = mulhsu(a,b) - (b<0 ? a : 0) — with SIGNSEL and SUB this
  // makes every MULH-family instruction synthesizable from 3 components.
  lib.push_back(make_cic_mop("MULHSU_C", Opcode::MULHSU));
  lib.push_back(make_cic_signsel());
  lib.push_back(make_cic_neg());
  lib.push_back(make_cic_not());
  lib.push_back(make_cic_add3());
  assert(lib.size() == 29);
  return lib;
}

std::vector<Component> filter_by_class(const std::vector<Component>& lib,
                                       ComponentClass c) {
  std::vector<Component> out;
  for (const Component& comp : lib)
    if (comp.cls == c) out.push_back(comp);
  return out;
}

}  // namespace sepe::synth
