// spec.hpp — synthesis specifications φ_spec for original instructions.
//
// A SynthSpec is the formal semantic model of an original instruction g
// (paper §4.1): typed inputs (register values plus the instruction's own
// immediate operands), one output, and a term-level semantics function.
// The synthesizer searches for component programs P with
// ∀ inputs: P(inputs) == g(inputs)  (formula (2) of the paper).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "isa/isa.hpp"
#include "isa/semantics.hpp"
#include "smt/term.hpp"

namespace sepe::synth {

/// Input sorts of a spec. Reg inputs are xlen wide and are the values the
/// component data inputs may connect to; immediate inputs carry the
/// original instruction's own immediate operand and may only feed
/// component *attributes* of the matching class (passthrough).
enum class InputClass : std::uint8_t { Reg, Imm12, Imm20, Shamt5 };

unsigned input_class_width(InputClass c, unsigned xlen);

struct SynthSpec {
  std::string name;     // e.g. "SUB" — used for Name(g) matching (χ_j)
  isa::Opcode opcode;   // opcode identity for the exclusion constraint
  std::vector<InputClass> inputs;

  /// Semantics: input terms at their class widths -> xlen-wide output.
  std::function<smt::TermRef(smt::TermManager&, const std::vector<smt::TermRef>&,
                             unsigned /*xlen*/)>
      semantics;

  unsigned num_reg_inputs() const {
    unsigned n = 0;
    for (InputClass c : inputs)
      if (c == InputClass::Reg) ++n;
    return n;
  }
};

/// Spec for a register-writing instruction's value semantics. Handles
/// R-type (two Reg inputs), I-type ALU (Reg + Imm12), shifts (Reg +
/// Shamt5) and LUI (Imm20).
SynthSpec make_spec(isa::Opcode op);

/// Spec for the effective-address computation of LW/SW (rs1 + sext(imm)).
/// Memory instructions are covered by synthesizing the address path and
/// re-attaching the access (see DESIGN.md).
SynthSpec make_address_spec(isa::Opcode op);

/// The 26 synthesis cases of the paper's Figure 3 experiment: every
/// RV32IM value-producing instruction in the supported subset.
std::vector<SynthSpec> make_figure3_cases();

}  // namespace sepe::synth
