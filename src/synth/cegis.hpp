// cegis.hpp — synthesis drivers: classical CEGIS, iterative CEGIS, and the
// paper's HPF-CEGIS (Algorithm 1), plus the equivalence table they fill.
//
// All three drivers answer the same question — "give me up to k programs
// semantically equivalent to original instruction g" — but explore the
// component search space differently:
//
//   * classical [Gulwani'11]  : one monolithic encoding over the entire
//     library (every component instantiated); kept as the baseline the
//     paper reports as failing outright on a 29-component library;
//   * iterative [Buchwald'18] : enumerate combinations-with-replacement
//     multisets of fixed size n in (shuffled) order;
//   * HPF (this paper, §4.2)  : maintain choice weights c_j and exclusion
//     weights e_j per component, score each multiset by
//     priority = Σ(c_j − α·χ_j) / Σ e_j, always attempt the highest-
//     priority multiset next, and update weights from success/failure.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "synth/component.hpp"
#include "synth/encoding.hpp"
#include "synth/spec.hpp"
#include "util/rng.hpp"

namespace sepe::synth {

/// Result of one driver run for one original instruction.
struct SynthesisResult {
  std::vector<SynthProgram> programs;   // deduplicated, verified
  unsigned multisets_tried = 0;
  unsigned multisets_succeeded = 0;
  double seconds = 0.0;
  bool exhausted = false;               // stopped because no multisets left
};

/// Common driver configuration.
struct DriverOptions {
  CegisOptions cegis;
  unsigned multiset_size = 3;   // n: components per multiset ("at least
                                // three components", §6.1)
  unsigned target_programs = 20;  // k: early-stop threshold (§6.1)
  std::uint64_t shuffle_seed = 1; // iterative baseline shuffles multisets
  double max_seconds = 0.0;       // wall-clock cap (0 = none)
};

/// Weights of HPF-CEGIS. Paper §6.1: all initialized to 1, incremented by
/// 1 per update, α = 1.
struct HpfOptions {
  int initial_choice_weight = 1;
  int initial_exclusion_weight = 1;
  int weight_increment = 1;
  int alpha = 1;
  bool enable_choice_updates = true;     // ablation knobs
  bool enable_exclusion_updates = true;
  bool enable_alpha_penalty = true;
};

/// HPF-CEGIS weight state (PRIORITY_DICT of Algorithm 1), shared across
/// the original-instruction loop so learning transfers between cases.
class PriorityDict {
 public:
  PriorityDict(std::size_t num_components, const HpfOptions& opts);

  double priority(const std::vector<unsigned>& multiset, const SynthSpec& spec,
                  const std::vector<Component>& lib) const;
  void reward(const std::vector<unsigned>& multiset);   // choice weight +=
  void penalize(const std::vector<unsigned>& multiset); // exclusion weight +=

  int choice_weight(unsigned j) const { return choice_[j]; }
  int exclusion_weight(unsigned j) const { return exclusion_[j]; }

 private:
  HpfOptions opts_;
  std::vector<int> choice_;
  std::vector<int> exclusion_;
};

/// Enumerate all size-n multisets of component indices
/// (combinations-with-replacement over [0, lib_size)).
std::vector<std::vector<unsigned>> combinations_with_replacement(unsigned lib_size,
                                                                 unsigned n);

/// HPF-CEGIS (Algorithm 1) for one original instruction.
SynthesisResult hpf_cegis(const SynthSpec& spec, const std::vector<Component>& lib,
                          const DriverOptions& opts, const HpfOptions& hpf,
                          PriorityDict* shared_dict = nullptr);

/// Iterative CEGIS baseline [Buchwald'18]: multisets in shuffled order.
SynthesisResult iterative_cegis(const SynthSpec& spec, const std::vector<Component>& lib,
                                const DriverOptions& opts);

/// Classical CEGIS baseline [Gulwani'11]: one encoding over the whole
/// library, `instances` copies of each component. Expected to time out on
/// realistic libraries — kept for the Fig. 3 "classical" comparison.
SynthesisResult classical_cegis(const SynthSpec& spec, const std::vector<Component>& lib,
                                const DriverOptions& opts, unsigned instances = 1);

/// instruction name -> verified equivalent programs (the R of Algorithm 1).
class EquivalenceTable {
 public:
  void add(const std::string& instr_name, SynthProgram program);
  const std::vector<SynthProgram>* find(const std::string& instr_name) const;
  /// First (preferred) program for an instruction; nullptr if absent.
  const SynthProgram* first(const std::string& instr_name) const;
  /// First program whose lowering avoids `op` (needed when `op` itself is
  /// suspected buggy); falls back to nullptr if none exists.
  const SynthProgram* first_avoiding(const std::string& instr_name, isa::Opcode op) const;
  /// A copy of this table with exactly one program per instruction,
  /// preferring programs that avoid the instruction's own opcode.
  EquivalenceTable select_distinct() const;
  std::size_t size() const { return table_.size(); }

  std::string to_string() const;

 private:
  std::map<std::string, std::vector<SynthProgram>> table_;
};

/// Run HPF-CEGIS over a set of specs and collect the table used by the
/// EDSEP-V transformation. `programs_per_instr` bounds table entries.
/// Grows the multiset size (up to +2) for instructions the configured
/// size cannot express. NOTE: programs hold pointers into `specs` — the
/// caller must keep the spec vector alive as long as the table is used.
EquivalenceTable build_equivalence_table(const std::vector<SynthSpec>& specs,
                                         const std::vector<Component>& lib,
                                         const DriverOptions& opts,
                                         unsigned programs_per_instr = 1);

}  // namespace sepe::synth
