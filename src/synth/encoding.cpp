#include "synth/encoding.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace sepe::synth {

using smt::Result;
using smt::SmtSolver;
using smt::TermManager;
using smt::TermRef;

namespace {

/// Indices of the spec's Reg inputs within spec.inputs.
std::vector<unsigned> reg_input_indices(const SynthSpec& spec) {
  std::vector<unsigned> idx;
  for (unsigned i = 0; i < spec.inputs.size(); ++i)
    if (spec.inputs[i] == InputClass::Reg) idx.push_back(i);
  return idx;
}

/// Indices of the spec's inputs a component attribute may passthrough.
/// Same-class always matches; additionally an Imm12 attribute may take a
/// Shamt5 spec input zero-extended — this is what lets the synthesizer
/// materialize a symbolic shift amount into a register via ADDI, the only
/// route to shift-instruction equivalents that avoid the shift-immediate
/// opcode itself.
std::vector<unsigned> passthrough_candidates(const SynthSpec& spec, AttrClass cls) {
  std::vector<unsigned> idx;
  for (unsigned i = 0; i < spec.inputs.size(); ++i) {
    const InputClass ic = spec.inputs[i];
    const bool match = (cls == AttrClass::Imm12 && ic == InputClass::Imm12) ||
                       (cls == AttrClass::Imm20 && ic == InputClass::Imm20) ||
                       (cls == AttrClass::Shamt5 && ic == InputClass::Shamt5) ||
                       (cls == AttrClass::Imm12 && ic == InputClass::Shamt5);
    if (match) idx.push_back(i);
  }
  return idx;
}

/// Widen a passthrough source term onto the attribute's width (Shamt5 ->
/// Imm12 zero-extension; same width is the identity).
smt::TermRef convert_passthrough(smt::TermManager& mgr, smt::TermRef input,
                                 unsigned attr_w) {
  const unsigned w = mgr.width(input);
  assert(w <= attr_w);
  return w == attr_w ? input : mgr.mk_zext(input, attr_w);
}

unsigned bits_for(unsigned values) {
  unsigned b = 1;
  while ((1u << b) < values) ++b;
  return b;
}

}  // namespace

unsigned SynthProgram::instruction_count() const {
  unsigned n = 0;
  for (const SynthLine& l : lines) n += l.comp->cost;
  return n;
}

unsigned SynthProgram::temps_needed() const {
  unsigned n = lines.empty() ? 0 : static_cast<unsigned>(lines.size()) - 1;
  for (const SynthLine& l : lines) n += l.comp->num_temps;
  return n;
}

TermRef SynthProgram::to_term(TermManager& mgr, const std::vector<TermRef>& spec_inputs,
                              unsigned xlen) const {
  const auto reg_idx = reg_input_indices(*spec);
  const unsigned m = static_cast<unsigned>(reg_idx.size());
  std::vector<TermRef> values;  // location -> value term
  for (unsigned i = 0; i < m; ++i) values.push_back(spec_inputs[reg_idx[i]]);
  for (const SynthLine& line : lines) {
    std::vector<TermRef> ins;
    for (unsigned loc : line.input_locs) {
      assert(loc < values.size() && "acyclicity violated");
      ins.push_back(values[loc]);
    }
    std::vector<TermRef> attrs;
    for (unsigned a = 0; a < line.attrs.size(); ++a) {
      const AttrBinding& ab = line.attrs[a];
      attrs.push_back(ab.passthrough
                          ? convert_passthrough(mgr, spec_inputs[ab.input_index],
                                                attr_class_width(line.comp->attrs[a]))
                          : mgr.mk_const(ab.constant));
    }
    values.push_back(line.comp->semantics(mgr, ins, attrs, xlen));
  }
  return values.back();
}

BitVec SynthProgram::eval(const std::vector<BitVec>& spec_inputs, unsigned xlen) const {
  TermManager mgr;
  std::vector<TermRef> in_terms;
  for (const BitVec& v : spec_inputs) in_terms.push_back(mgr.mk_const(v));
  const TermRef out = to_term(mgr, in_terms, xlen);
  return smt::eval_term(mgr, out, {});
}

std::string SynthProgram::to_string() const {
  const auto reg_idx = reg_input_indices(*spec);
  const unsigned m = static_cast<unsigned>(reg_idx.size());
  auto loc_name = [&](unsigned loc) {
    if (loc < m) return "in" + std::to_string(loc);
    return "v" + std::to_string(loc - m);
  };
  std::ostringstream os;
  for (unsigned j = 0; j < lines.size(); ++j) {
    const SynthLine& l = lines[j];
    os << l.comp->name << " " << loc_name(m + j);
    for (unsigned loc : l.input_locs) os << ", " << loc_name(loc);
    for (const AttrBinding& ab : l.attrs) {
      if (ab.passthrough)
        os << ", imm[" << ab.input_index << "]";
      else
        os << ", " << ab.constant.to_hex();
    }
    if (j + 1 < lines.size()) os << "\n";
  }
  return os.str();
}

std::string SynthProgram::fingerprint() const {
  std::ostringstream os;
  for (const SynthLine& l : lines) {
    os << l.comp->name << '(';
    for (unsigned loc : l.input_locs) os << loc << ',';
    for (const AttrBinding& ab : l.attrs) {
      if (ab.passthrough)
        os << 'p' << ab.input_index << ',';
      else
        os << 'c' << ab.constant.uval() << ',';
    }
    os << ");";
  }
  return os.str();
}

bool SynthProgram::uses_opcode(isa::Opcode op) const {
  for (const SynthLine& l : lines)
    for (const ExpansionInstr& e : l.comp->expansion)
      if (e.op == op) return true;
  return false;
}

isa::Program SynthProgram::lower(const std::vector<std::uint8_t>& in_regs,
                                 std::uint8_t out_reg,
                                 const std::vector<std::int32_t>& imm_values,
                                 const std::vector<std::uint8_t>& temps) const {
  assert(in_regs.size() >= spec->num_reg_inputs());
  assert(temps.size() >= temps_needed());
  const unsigned m = spec->num_reg_inputs();
  std::vector<std::uint8_t> loc_reg(m + lines.size());
  for (unsigned i = 0; i < m; ++i) loc_reg[i] = in_regs[i];

  std::size_t next_temp = 0;
  isa::Program out;
  for (unsigned j = 0; j < lines.size(); ++j) {
    const SynthLine& l = lines[j];
    const bool last = (j + 1 == lines.size());
    const std::uint8_t dest = last ? out_reg : temps[next_temp++];
    loc_reg[m + j] = dest;

    std::vector<std::uint8_t> ins;
    for (unsigned loc : l.input_locs) ins.push_back(loc_reg[loc]);
    std::vector<std::int32_t> attr_vals;
    for (const AttrBinding& ab : l.attrs) {
      if (ab.passthrough) {
        assert(ab.input_index < imm_values.size());
        attr_vals.push_back(imm_values[ab.input_index]);
      } else {
        // Imm12/Imm20 are sign-/zero-interpreted per their use; sval gives
        // the architectural signed reading for 12-bit immediates.
        attr_vals.push_back(static_cast<std::int32_t>(
            ab.constant.width() == 12 ? ab.constant.sval()
                                      : static_cast<std::int64_t>(ab.constant.uval())));
      }
    }
    std::vector<std::uint8_t> comp_temps;
    for (unsigned t = 0; t < l.comp->num_temps; ++t)
      comp_temps.push_back(temps[next_temp++]);

    const isa::Program expansion =
        lower_expansion(l.comp->expansion, ins, dest, attr_vals, comp_temps);
    out.insert(out.end(), expansion.begin(), expansion.end());
  }
  return out;
}

bool verify_program(const SynthProgram& program, unsigned xlen,
                    std::uint64_t conflict_budget) {
  TermManager mgr;
  SmtSolver solver(mgr);
  std::vector<TermRef> inputs;
  for (unsigned i = 0; i < program.spec->inputs.size(); ++i) {
    inputs.push_back(mgr.mk_var("vin" + std::to_string(i),
                                input_class_width(program.spec->inputs[i], xlen)));
  }
  const TermRef prog_out = program.to_term(mgr, inputs, xlen);
  const TermRef spec_out = program.spec->semantics(mgr, inputs, xlen);
  solver.assert_formula(mgr.mk_ne(prog_out, spec_out));
  solver.set_conflict_budget(conflict_budget);
  return solver.check() == Result::Unsat;
}

namespace {

/// All state of one synthesis encoding instance.
class MultisetEncoder {
 public:
  MultisetEncoder(const SynthSpec& spec, const std::vector<const Component*>& multiset,
                  const CegisOptions& options)
      : spec_(spec),
        comps_(multiset),
        options_(options),
        solver_(mgr_),
        reg_idx_(reg_input_indices(spec)),
        m_(static_cast<unsigned>(reg_idx_.size())),
        n_(static_cast<unsigned>(multiset.size())),
        loc_bits_(bits_for(m_ + n_ + 1)) {
    build_location_variables();
    assert_wfp();
    if (options_.exclude_identity) assert_identity_exclusion();
    if (options_.forbid_output_op) assert_output_op_differs();
  }

  /// Add one concrete example (counterexample) to the synthesis constraints.
  void add_example(const std::vector<BitVec>& example);

  /// Solve the accumulated constraints; extract a candidate program.
  std::optional<SynthProgram> solve_candidate();

  std::uint64_t conflicts() const { return solver_.sat_solver().num_conflicts(); }

 private:
  TermRef loc_const(unsigned v) { return mgr_.mk_const(loc_bits_, v); }

  void build_location_variables();
  void assert_wfp();
  void assert_identity_exclusion();
  void assert_output_op_differs();

  const SynthSpec& spec_;
  const std::vector<const Component*>& comps_;
  const CegisOptions& options_;
  TermManager mgr_;
  SmtSolver solver_;
  std::vector<unsigned> reg_idx_;
  unsigned m_, n_, loc_bits_;
  unsigned example_count_ = 0;

  std::vector<TermRef> out_loc_;                        // per line
  std::vector<std::vector<TermRef>> in_loc_;            // per line, per input
  std::vector<std::vector<TermRef>> attr_const_;        // per line, per attr
  std::vector<std::vector<TermRef>> attr_sel_;  // per line, per attr (may be null)
  std::vector<std::vector<std::vector<unsigned>>> attr_cands_;  // candidates per attr
};

void MultisetEncoder::build_location_variables() {
  for (unsigned j = 0; j < n_; ++j) {
    const Component& c = *comps_[j];
    const std::string pj = "l" + std::to_string(j);
    out_loc_.push_back(mgr_.mk_var(pj + "_out", loc_bits_));
    std::vector<TermRef> ins;
    for (unsigned k = 0; k < c.num_inputs; ++k)
      ins.push_back(mgr_.mk_var(pj + "_in" + std::to_string(k), loc_bits_));
    in_loc_.push_back(std::move(ins));

    std::vector<TermRef> consts, sels;
    std::vector<std::vector<unsigned>> cands;
    for (unsigned a = 0; a < c.attrs.size(); ++a) {
      consts.push_back(
          mgr_.mk_var(pj + "_attr" + std::to_string(a), attr_class_width(c.attrs[a])));
      const auto cand = passthrough_candidates(spec_, c.attrs[a]);
      cands.push_back(cand);
      if (cand.empty()) {
        sels.push_back(smt::kNullTerm);
      } else {
        // Selector: 0 = solved constant, i+1 = passthrough of cand[i].
        const unsigned selw = bits_for(static_cast<unsigned>(cand.size()) + 1);
        const TermRef sel = mgr_.mk_var(pj + "_sel" + std::to_string(a), selw);
        solver_.assert_formula(
            mgr_.mk_ule(sel, mgr_.mk_const(selw, cand.size())));
        sels.push_back(sel);
      }
    }
    attr_const_.push_back(std::move(consts));
    attr_sel_.push_back(std::move(sels));
    attr_cands_.push_back(std::move(cands));
  }
}

void MultisetEncoder::assert_wfp() {
  // Output slots form a permutation of [m, m+n).
  for (unsigned j = 0; j < n_; ++j) {
    solver_.assert_formula(mgr_.mk_ule(loc_const(m_), out_loc_[j]));
    solver_.assert_formula(mgr_.mk_ult(out_loc_[j], loc_const(m_ + n_)));
    for (unsigned j2 = j + 1; j2 < n_; ++j2)
      solver_.assert_formula(mgr_.mk_ne(out_loc_[j], out_loc_[j2]));
  }
  // Acyclicity: every data input reads a strictly earlier location.
  for (unsigned j = 0; j < n_; ++j)
    for (TermRef in : in_loc_[j])
      solver_.assert_formula(mgr_.mk_ult(in, out_loc_[j]));
  // No dead code: each line is the final producer or feeds someone.
  if (options_.require_all_outputs_used) {
    for (unsigned j = 0; j < n_; ++j) {
      std::vector<TermRef> uses{mgr_.mk_eq(out_loc_[j], loc_const(m_ + n_ - 1))};
      for (unsigned j2 = 0; j2 < n_; ++j2)
        for (TermRef in : in_loc_[j2]) uses.push_back(mgr_.mk_eq(in, out_loc_[j]));
      solver_.assert_formula(mgr_.mk_or_many(uses));
    }
  }
}

void MultisetEncoder::assert_output_op_differs() {
  // The final slot may not be produced by a component whose lowering
  // *ends* in the original opcode: the replayed value would then come
  // out of the same functional unit as the original's, defeating the
  // datapath separation single-instruction bug detection relies on.
  for (unsigned j = 0; j < n_; ++j) {
    const Component& c = *comps_[j];
    if (c.expansion.empty() || c.expansion.back().op != spec_.opcode) continue;
    solver_.assert_formula(
        mgr_.mk_ne(out_loc_[j], loc_const(m_ + n_ - 1)));
  }
}

void MultisetEncoder::assert_identity_exclusion() {
  // §4.1: the synthesized program must not be *identical to the original
  // instruction g*, otherwise the "equivalent program" degenerates into
  // SQED's duplicate. A line can only reproduce g verbatim when its
  // component lowers to exactly one instruction of g's opcode, its data
  // inputs read the spec operands in order, and (for immediate forms) its
  // immediate is wired through from g's own immediate operand. Anything
  // else — multi-instruction expansions, differently-wired inputs, solved
  // constants standing in for a symbolic immediate — is structurally a
  // different program and stays admissible.
  for (unsigned j = 0; j < n_; ++j) {
    const Component& c = *comps_[j];
    if (c.expansion.size() != 1) continue;
    const ExpansionInstr& e = c.expansion[0];
    if (e.op != spec_.opcode) continue;
    if (c.num_inputs != m_) continue;

    std::vector<TermRef> identical;
    for (unsigned k = 0; k < c.num_inputs; ++k)
      identical.push_back(mgr_.mk_eq(in_loc_[j][k], loc_const(k)));

    if (e.imm.kind == ImmOperand::Kind::Attr) {
      const unsigned a = e.imm.attr_index;
      // A solved-constant immediate can never equal g's symbolic
      // immediate for all inputs, so only the passthrough wiring is the
      // identity (selector value 1 = first candidate; our specs carry at
      // most one immediate operand per width class).
      if (attr_sel_[j][a] == smt::kNullTerm) continue;
      const unsigned selw = mgr_.width(attr_sel_[j][a]);
      identical.push_back(mgr_.mk_eq(attr_sel_[j][a], mgr_.mk_const(selw, 1)));
    } else if (isa::opcode_format(e.op) != isa::Format::R) {
      // Hardwired immediate vs g's symbolic immediate: cannot coincide
      // for every input, so this line cannot reproduce g.
      continue;
    }
    solver_.assert_formula(mgr_.mk_not(mgr_.mk_and_many(identical)));
  }
}

void MultisetEncoder::add_example(const std::vector<BitVec>& example) {
  assert(example.size() == spec_.inputs.size());
  const unsigned e = example_count_++;
  const unsigned xlen = options_.xlen;
  const std::string pe = "e" + std::to_string(e);

  // Spec input terms for this example are constants.
  std::vector<TermRef> in_terms;
  for (const BitVec& v : example) in_terms.push_back(mgr_.mk_const(v));

  // Value terms by location: reg inputs are constants, line slots are
  // fresh variables tied to line outputs below.
  std::vector<TermRef> loc_val(m_ + n_);
  for (unsigned i = 0; i < m_; ++i) loc_val[i] = in_terms[reg_idx_[i]];
  for (unsigned s = 0; s < n_; ++s)
    loc_val[m_ + s] = mgr_.mk_var(pe + "_slot" + std::to_string(s), xlen);

  for (unsigned j = 0; j < n_; ++j) {
    const Component& c = *comps_[j];
    // ψ_conn: resolve each data input through a value-at-location mux.
    std::vector<TermRef> ins;
    for (unsigned k = 0; k < c.num_inputs; ++k) {
      TermRef val = loc_val[0];
      for (unsigned loc = 1; loc + 1 < m_ + n_; ++loc)
        val = mgr_.mk_ite(mgr_.mk_eq(in_loc_[j][k], loc_const(loc)), loc_val[loc], val);
      ins.push_back(m_ + n_ >= 2 ? val : loc_val[0]);
    }
    // Attributes: solved constant or passthrough of a concrete immediate.
    std::vector<TermRef> attrs;
    for (unsigned a = 0; a < c.attrs.size(); ++a) {
      TermRef val = attr_const_[j][a];
      if (attr_sel_[j][a] != smt::kNullTerm) {
        const unsigned selw = mgr_.width(attr_sel_[j][a]);
        const unsigned attr_w = attr_class_width(c.attrs[a]);
        for (unsigned ci = 0; ci < attr_cands_[j][a].size(); ++ci) {
          val = mgr_.mk_ite(
              mgr_.mk_eq(attr_sel_[j][a], mgr_.mk_const(selw, ci + 1)),
              convert_passthrough(mgr_, in_terms[attr_cands_[j][a][ci]], attr_w), val);
        }
      }
      attrs.push_back(val);
    }
    // φ_lib: the slot holding this line's output equals its semantics.
    const TermRef out = c.semantics(mgr_, ins, attrs, xlen);
    for (unsigned s = 0; s < n_; ++s) {
      solver_.assert_formula(mgr_.mk_implies(mgr_.mk_eq(out_loc_[j], loc_const(m_ + s)),
                                             mgr_.mk_eq(loc_val[m_ + s], out)));
    }
  }

  // φ_spec: the last slot equals the original instruction's output.
  const TermRef spec_out = spec_.semantics(mgr_, in_terms, xlen);
  solver_.assert_formula(mgr_.mk_eq(loc_val[m_ + n_ - 1], spec_out));
}

std::optional<SynthProgram> MultisetEncoder::solve_candidate() {
  solver_.set_conflict_budget(options_.synth_conflict_budget);
  solver_.set_time_budget(options_.synth_seconds_budget);
  if (solver_.check() != Result::Sat) return std::nullopt;

  // Extract locations, attribute constants and passthrough selectors.
  std::vector<unsigned> slot_of_line(n_);
  for (unsigned j = 0; j < n_; ++j)
    slot_of_line[j] = static_cast<unsigned>(solver_.value(out_loc_[j]).uval()) - m_;

  std::vector<unsigned> line_at_slot(n_);
  for (unsigned j = 0; j < n_; ++j) line_at_slot[slot_of_line[j]] = j;

  SynthProgram prog;
  prog.spec = &spec_;
  for (unsigned s = 0; s < n_; ++s) {
    const unsigned j = line_at_slot[s];
    SynthLine line;
    line.comp = comps_[j];
    for (TermRef in : in_loc_[j])
      line.input_locs.push_back(static_cast<unsigned>(solver_.value(in).uval()));
    for (unsigned a = 0; a < line.comp->attrs.size(); ++a) {
      AttrBinding ab;
      if (attr_sel_[j][a] != smt::kNullTerm) {
        const std::uint64_t sel = solver_.value(attr_sel_[j][a]).uval();
        if (sel >= 1 && sel <= attr_cands_[j][a].size()) {
          ab.passthrough = true;
          ab.input_index = attr_cands_[j][a][sel - 1];
        }
      }
      if (!ab.passthrough) ab.constant = solver_.value(attr_const_[j][a]);
      line.attrs.push_back(ab);
    }
    prog.lines.push_back(std::move(line));
  }
  return prog;
}

}  // namespace

std::optional<SynthProgram> cegis_multiset(const SynthSpec& spec,
                                           const std::vector<const Component*>& multiset,
                                           const CegisOptions& options,
                                           CegisStats* stats) {
  MultisetEncoder encoder(spec, multiset, options);

  // Seed examples: corner values plus a mixed pattern; real CEGIS
  // counterexamples arrive from the verifier below.
  const unsigned xlen = options.xlen;
  std::vector<std::vector<BitVec>> seeds(2);
  for (InputClass ic : spec.inputs) {
    const unsigned w = input_class_width(ic, xlen);
    seeds[0].push_back(BitVec(w, 1));
    seeds[1].push_back(BitVec(w, 0x5a5a5a5a5a5a5a5aULL));
  }
  for (const auto& s : seeds) encoder.add_example(s);

  for (unsigned iter = 0; iter < options.max_iterations; ++iter) {
    if (stats) stats->iterations = iter + 1;
    auto candidate = encoder.solve_candidate();
    if (stats) stats->solver_conflicts = encoder.conflicts();
    if (!candidate) return std::nullopt;

    // Verify: search for an input where candidate and spec disagree.
    TermManager vmgr;
    SmtSolver vsolver(vmgr);
    std::vector<TermRef> vins;
    for (unsigned i = 0; i < spec.inputs.size(); ++i)
      vins.push_back(vmgr.mk_var("vin" + std::to_string(i),
                                 input_class_width(spec.inputs[i], xlen)));
    const TermRef prog_out = candidate->to_term(vmgr, vins, xlen);
    const TermRef spec_out = spec.semantics(vmgr, vins, xlen);
    vsolver.assert_formula(vmgr.mk_ne(prog_out, spec_out));
    vsolver.set_conflict_budget(options.verify_conflict_budget);
    const Result r = vsolver.check();
    if (r == Result::Unsat) return candidate;   // verified equivalent
    if (r == Result::Unknown) return std::nullopt;  // budget exhausted

    std::vector<BitVec> cex;
    for (TermRef v : vins) cex.push_back(vsolver.value(v));
    encoder.add_example(cex);
    if (stats) stats->examples = static_cast<unsigned>(seeds.size()) + iter + 1;
  }
  return std::nullopt;
}

}  // namespace sepe::synth
