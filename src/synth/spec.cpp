#include "synth/spec.hpp"

#include <cassert>

namespace sepe::synth {

using isa::Opcode;
using smt::TermManager;
using smt::TermRef;

unsigned input_class_width(InputClass c, unsigned xlen) {
  switch (c) {
    case InputClass::Reg: return xlen;
    case InputClass::Imm12: return 12;
    case InputClass::Imm20: return 20;
    case InputClass::Shamt5: return 5;
  }
  return 0;
}

SynthSpec make_spec(Opcode op) {
  SynthSpec s;
  s.name = isa::opcode_name(op);
  s.opcode = op;

  if (op == Opcode::LUI) {
    s.inputs = {InputClass::Imm20};
    s.semantics = [](TermManager& mgr, const std::vector<TermRef>& in, unsigned xlen) {
      const unsigned wide = xlen >= 32 ? xlen : 32;
      const TermRef shifted =
          mgr.mk_shl(mgr.mk_zext(in[0], wide), mgr.mk_const(wide, 12));
      return xlen == wide ? shifted : mgr.mk_extract(shifted, xlen - 1, 0);
    };
    return s;
  }
  if (isa::is_rtype(op)) {
    s.inputs = {InputClass::Reg, InputClass::Reg};
    s.semantics = [op](TermManager& mgr, const std::vector<TermRef>& in, unsigned) {
      return isa::alu_symbolic(mgr, op, in[0], in[1]);
    };
    return s;
  }
  assert(isa::is_itype(op));
  const bool is_shift = isa::opcode_format(op) == isa::Format::Shift;
  s.inputs = {InputClass::Reg, is_shift ? InputClass::Shamt5 : InputClass::Imm12};
  s.semantics = [op, is_shift](TermManager& mgr, const std::vector<TermRef>& in,
                               unsigned xlen) {
    // Widen (or, on very narrow datapaths, truncate) the immediate onto
    // xlen. Truncating a 5-bit shamt below 5 bits is sound: register
    // shifts mask the amount to log2(xlen) bits anyway.
    TermRef imm;
    if (is_shift) {
      imm = xlen >= 5 ? mgr.mk_zext(in[1], xlen) : mgr.mk_extract(in[1], xlen - 1, 0);
    } else {
      imm = xlen >= 12 ? mgr.mk_sext(in[1], xlen) : mgr.mk_extract(in[1], xlen - 1, 0);
    }
    return isa::alu_symbolic(mgr, op, in[0], imm);
  };
  return s;
}

SynthSpec make_address_spec(Opcode op) {
  assert(isa::is_load(op) || isa::is_store(op));
  SynthSpec s;
  s.name = std::string(isa::opcode_name(op)) + "_ADDR";
  s.opcode = op;
  s.inputs = {InputClass::Reg, InputClass::Imm12};
  s.semantics = [](TermManager& mgr, const std::vector<TermRef>& in, unsigned xlen) {
    const TermRef imm =
        xlen >= 12 ? mgr.mk_sext(in[1], xlen) : mgr.mk_extract(in[1], xlen - 1, 0);
    return mgr.mk_add(in[0], imm);
  };
  return s;
}

std::vector<SynthSpec> make_figure3_cases() {
  // 26 cases: 10 R-type RV32I, 9 I-type, LUI, 4 multiplies, 2 memory
  // address paths. (DIV-family semantics are supported by the stack but
  // excluded here, matching the paper's RV32IM "portion" wording and
  // keeping the bench's solver load bounded.)
  std::vector<SynthSpec> cases;
  for (Opcode op : {Opcode::ADD, Opcode::SUB, Opcode::SLL, Opcode::SLT, Opcode::SLTU,
                    Opcode::XOR, Opcode::SRL, Opcode::SRA, Opcode::OR, Opcode::AND,
                    Opcode::ADDI, Opcode::SLTI, Opcode::SLTIU, Opcode::XORI, Opcode::ORI,
                    Opcode::ANDI, Opcode::SLLI, Opcode::SRLI, Opcode::SRAI, Opcode::LUI,
                    Opcode::MUL, Opcode::MULH, Opcode::MULHSU, Opcode::MULHU})
    cases.push_back(make_spec(op));
  cases.push_back(make_address_spec(Opcode::LW));
  cases.push_back(make_address_spec(Opcode::SW));
  assert(cases.size() == 26);
  return cases;
}

}  // namespace sepe::synth
