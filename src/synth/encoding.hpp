// encoding.hpp — component-based program synthesis encoding + CEGIS core.
//
// Implements the constraint system of paper §2.2/§4.1 (after Gulwani [11]
// and Buchwald [12]):
//
//   * location variables L: every component instance ("line") gets an
//     output slot; every component data input gets a source location
//     (a spec register input or an earlier slot);
//   * ψ_wfp : slot permutation (alldiff), acyclicity (inputs read strictly
//     earlier locations), and a no-dead-code constraint (every line's
//     output is the program output or feeds another line);
//   * ψ_conn: value-at-location muxes tie per-example slot values to line
//     outputs;
//   * φ_lib : each line's output equals its component's semantics;
//   * the identity-exclusion constraint of §4.1: a component with the same
//     name as the original instruction must not read the spec inputs
//     verbatim (otherwise synthesis would degenerate into SQED
//     self-duplication);
//   * internal attributes (DIC/CIC immediates) are solved constants,
//     optionally *passthrough-wired* to the original instruction's own
//     immediate operand of the same width class.
//
// cegis_multiset() runs the full CEGIS refinement loop (synthesize over
// accumulated examples -> verify candidate -> add counterexample) for one
// multiset of components, exactly the CEGIS(g, S) call of Algorithm 1.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "smt/eval.hpp"
#include "smt/smt_solver.hpp"
#include "synth/component.hpp"
#include "synth/spec.hpp"

namespace sepe::synth {

/// An internal-attribute binding in a synthesized line: either a solved
/// constant or a passthrough of one of the spec's immediate inputs.
struct AttrBinding {
  bool passthrough = false;
  unsigned input_index = 0;  // spec input index when passthrough
  BitVec constant;           // attr-class width when !passthrough
};

/// One line of a synthesized program, in execution order.
struct SynthLine {
  const Component* comp = nullptr;
  std::vector<unsigned> input_locs;  // < num_reg_inputs: spec reg input;
                                     // else line index + num_reg_inputs
  std::vector<AttrBinding> attrs;
};

/// A verified synthesized program: the semantically equivalent program of
/// the paper. Lines are in execution order; the last line produces the
/// program output.
struct SynthProgram {
  const SynthSpec* spec = nullptr;
  std::vector<SynthLine> lines;

  /// Total instruction count after lowering (components may expand).
  unsigned instruction_count() const;

  /// Build the program's output term over the given spec input terms.
  smt::TermRef to_term(smt::TermManager& mgr,
                       const std::vector<smt::TermRef>& spec_inputs,
                       unsigned xlen) const;

  /// Concrete execution (for tests / QED testing).
  BitVec eval(const std::vector<BitVec>& spec_inputs, unsigned xlen) const;

  /// Human-readable listing, e.g. "XOR v0, in0, in1".
  std::string to_string() const;

  /// Canonical fingerprint used to deduplicate programs.
  std::string fingerprint() const;

  /// Does any instruction of the lowered program use `op`? (Table-1 bug
  /// detection needs equivalent programs that avoid the buggy opcode.)
  bool uses_opcode(isa::Opcode op) const;

  /// Lower to concrete instructions. `in_regs` maps spec reg inputs to
  /// register numbers, `imm_values` gives the original instruction's
  /// immediate operands (for passthrough attrs), `out_reg` receives the
  /// result and `temps` supplies scratch registers (enough for
  /// intermediate lines + component-internal temporaries; consumed in
  /// order, respecting read-after-write as §5 requires).
  isa::Program lower(const std::vector<std::uint8_t>& in_regs, std::uint8_t out_reg,
                     const std::vector<std::int32_t>& imm_values,
                     const std::vector<std::uint8_t>& temps) const;

  /// Scratch registers lower() consumes.
  unsigned temps_needed() const;
};

/// Budgets and knobs for one CEGIS run.
struct CegisOptions {
  unsigned xlen = 16;
  unsigned max_iterations = 24;
  std::uint64_t synth_conflict_budget = 200000;
  std::uint64_t verify_conflict_budget = 400000;
  /// Wall cap per synthesis solver call (0 = none); bounds monolithic
  /// classical-CEGIS queries that a conflict budget alone under-controls.
  double synth_seconds_budget = 0.0;
  bool exclude_identity = true;       // the §4.1 input constraint
  bool require_all_outputs_used = true;
  /// Forbid the program's *output* line from lowering to the original
  /// instruction's opcode. Optional strengthening of the §4.1 constraint:
  /// it rules out degenerate "conjugation-prefix" programs whose final
  /// instruction recomputes g on identical values (which a uniform
  /// single-instruction bug would corrupt identically on both streams).
  bool forbid_output_op = false;
};

/// Counters for the evaluation harness.
struct CegisStats {
  unsigned iterations = 0;
  unsigned examples = 0;
  std::uint64_t solver_conflicts = 0;
};

/// CEGIS(g, S): search for a program over exactly the components of
/// `multiset` that is semantically equivalent to `spec` for all inputs.
/// Returns nullopt if the multiset cannot synthesize the spec (or a
/// resource budget was exhausted).
std::optional<SynthProgram> cegis_multiset(const SynthSpec& spec,
                                           const std::vector<const Component*>& multiset,
                                           const CegisOptions& options,
                                           CegisStats* stats = nullptr);

/// Exhaustive-for-all-inputs equivalence check of an already-built
/// program against its spec (used by tests and by the width-generic
/// re-verification step before a program enters the equivalence table).
bool verify_program(const SynthProgram& program, unsigned xlen,
                    std::uint64_t conflict_budget = 0);

}  // namespace sepe::synth
