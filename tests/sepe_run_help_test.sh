#!/usr/bin/env bash
# Help-text drift guard: `sepe-run --help` must match the committed
# reference byte for byte. docs/CLI.md is audited against the same
# reference, so a flag change that forgets the docs fails here first.
#
# Usage: sepe_run_help_test.sh /path/to/sepe-run /path/to/sepe_run_help.txt
set -u

SEPE_RUN=${1:?usage: sepe_run_help_test.sh /path/to/sepe-run /path/to/reference}
REFERENCE=${2:?usage: sepe_run_help_test.sh /path/to/sepe-run /path/to/reference}

if ! "$SEPE_RUN" --help | diff -u "$REFERENCE" -; then
  echo "FAIL: sepe-run --help drifted from the committed reference."
  echo "If the change is intentional, regenerate with"
  echo "  sepe-run --help > tests/sepe_run_help.txt"
  echo "and bring docs/CLI.md back in sync in the same commit."
  exit 1
fi
echo "ok: sepe-run --help matches tests/sepe_run_help.txt"
