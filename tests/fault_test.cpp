// Tests for the unified fault-injection framework (util/fault.hpp) and
// the crash-only execution envelope built on it: plan-grammar parsing,
// per-point trigger determinism (Nth / probability / fleet token), the
// per-job memory ceiling degrading both workload families to a diagnosed
// UNKNOWN row, an injected mid-campaign stop leaving a resumable
// checkpoint whose resumed run is byte-identical to an uninterrupted
// one, concurrent verdict-cache writers with torn appends never yielding
// a wrong verdict, and the retrying atomic report writer masking
// transient write faults.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/campaign.hpp"
#include "engine/report_io.hpp"
#include "engine/shard.hpp"
#include "engine/verdict_cache.hpp"
#include "engine/workload.hpp"
#include "proc/mutations.hpp"
#include "sat/solver.hpp"
#include "ts/btor2_parser.hpp"
#include "util/fault.hpp"

namespace sepe::engine {
namespace {

using smt::TermRef;

/// Every test runs against process-global fault state; tear it all down
/// so no plan (or a raised stop flag) leaks into the next test.
class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override {
    fault::configure("");
    fault::clear_global_stop();
  }
};

using FaultGrammar = FaultTest;
using FaultTrigger = FaultTest;
using FaultEnvelope = FaultTest;
using FaultSolver = FaultTest;
using FaultCampaign = FaultTest;
using FaultCheckpoint = FaultTest;
using FaultCache = FaultTest;
using FaultReportIo = FaultTest;

/// Same shape as engine_test's helper: input-gated counter, falsified at
/// depth `target` when reachable within the bound.
JobSpec counter_job(const std::string& name, unsigned width, std::uint64_t target,
                    const JobBudget& budget) {
  JobSpec job;
  job.name = name;
  job.budget = budget;
  job.build = [width, target](ts::TransitionSystem& ts, std::string*) {
    smt::TermManager& mgr = ts.mgr();
    const TermRef cnt = ts.add_state("cnt", width);
    const TermRef inc = ts.add_input("inc", 1);
    ts.set_init(cnt, mgr.mk_const(width, 0));
    ts.set_next(cnt, mgr.mk_ite(inc, mgr.mk_add(cnt, mgr.mk_const(width, 1)), cnt));
    ts.add_bad(mgr.mk_eq(cnt, mgr.mk_const(width, target)), "cnt-target");
    return true;
  };
  return job;
}

std::filesystem::path fresh_dir(const char* name) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// --- plan grammar ---

TEST_F(FaultGrammar, FullPlanParsesAndArms) {
  std::string error;
  EXPECT_TRUE(fault::configure(
      "seed=42;point=dimacs.write:fail@3;point=cache.append:torn;"
      "point=solver.alloc:oom@0.01",
      &error))
      << error;
  EXPECT_TRUE(fault::armed());
  EXPECT_TRUE(error.empty());
}

TEST_F(FaultGrammar, EmptyPlanDisarms) {
  ASSERT_TRUE(fault::configure("point=p:fail"));
  ASSERT_TRUE(fault::armed());
  EXPECT_TRUE(fault::configure(""));
  EXPECT_FALSE(fault::armed());
  EXPECT_FALSE(fault::hit("p").has_value());
}

TEST_F(FaultGrammar, MalformedPlansAreRejectedAndDisarm) {
  const char* bad[] = {
      "seed=x",                // non-numeric seed
      "point=p",               // missing action
      "point=p:frobnicate",    // unknown action
      "point=p:fail@0",        // Nth trigger is 1-based
      "point=:fail",           // empty point name
      "frobnicate=1",          // unknown key
      "point=p:fail@",         // empty trigger
  };
  for (const char* plan : bad) {
    ASSERT_TRUE(fault::configure("point=armed.check:fail"));
    std::string error;
    EXPECT_FALSE(fault::configure(plan, &error)) << plan;
    EXPECT_FALSE(error.empty()) << plan;
    EXPECT_FALSE(fault::armed()) << plan;  // a bad plan never half-arms
  }
}

// --- trigger semantics ---

TEST_F(FaultTrigger, NthFiresExactlyOnce) {
  ASSERT_TRUE(fault::configure("point=p.nth:fail@2"));
  EXPECT_FALSE(fault::hit("p.nth").has_value());
  const auto second = fault::hit("p.nth");
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, fault::Action::Fail);
  EXPECT_FALSE(fault::hit("p.nth").has_value());  // one-shot
  EXPECT_FALSE(fault::hit("p.nth").has_value());
}

TEST_F(FaultTrigger, AlwaysFiresEveryHitAndPointsAreIndependent) {
  ASSERT_TRUE(fault::configure("point=p.always:torn"));
  for (int i = 0; i < 3; ++i) {
    const auto a = fault::hit("p.always");
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(*a, fault::Action::Torn);
    EXPECT_FALSE(fault::hit("p.other").has_value());
  }
}

TEST_F(FaultTrigger, FirstMatchingEntryWins) {
  // Two entries on the same point: the one-shot fires on hit 1, then the
  // always-entry takes over.
  ASSERT_TRUE(fault::configure("point=p.dual:fail@1;point=p.dual:torn"));
  const auto first = fault::hit("p.dual");
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, fault::Action::Fail);
  const auto second = fault::hit("p.dual");
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, fault::Action::Torn);
}

TEST_F(FaultTrigger, ProbabilityStreamIsDeterministicPerSeed) {
  const auto draw = [](const char* plan) {
    EXPECT_TRUE(fault::configure(plan));
    std::string bits;
    for (int i = 0; i < 64; ++i)
      bits.push_back(fault::hit("p.prob").has_value() ? '1' : '0');
    return bits;
  };
  const std::string run1 = draw("seed=5;point=p.prob:fail@0.5");
  const std::string run2 = draw("seed=5;point=p.prob:fail@0.5");
  EXPECT_EQ(run1, run2);  // same seed, same plan -> same firing sites
  EXPECT_NE(run1.find('1'), std::string::npos);
  EXPECT_NE(run1.find('0'), std::string::npos);
  const std::string other = draw("seed=6;point=p.prob:fail@0.5");
  EXPECT_NE(run1, other);  // the seed actually reaches the stream
}

TEST_F(FaultTrigger, TokenIsClaimedOncePerFleet) {
  const auto dir = fresh_dir("fault_token_test");
  const std::string token = (dir / "token").string();
  std::ofstream(token) << "1\n";
  const std::string plan = "point=p.tok:kill@token:" + token;

  ASSERT_TRUE(fault::configure(plan));
  const auto first = fault::hit("p.tok");
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, fault::Action::Kill);
  EXPECT_FALSE(fault::hit("p.tok").has_value());  // one-shot for the owner
  EXPECT_FALSE(std::filesystem::exists(token));   // claimed by rename
  EXPECT_TRUE(std::filesystem::exists(token + ".claimed"));

  // A second "process" (re-arming the same plan) finds the token spent.
  ASSERT_TRUE(fault::configure(plan));
  EXPECT_FALSE(fault::hit("p.tok").has_value());
}

// --- crash-only envelope ---

TEST_F(FaultEnvelope, StopActionRaisesTheGlobalFlag) {
  EXPECT_FALSE(fault::global_stop_requested());
  fault::execute_process_action(fault::Action::Stop);
  EXPECT_TRUE(fault::global_stop_requested());
  fault::clear_global_stop();
  EXPECT_FALSE(fault::global_stop_requested());
}

TEST_F(FaultEnvelope, DataActionsAreNoOpsInExecute) {
  fault::execute_process_action(fault::Action::Fail);
  fault::execute_process_action(fault::Action::Torn);
  fault::execute_process_action(fault::Action::Enospc);
  EXPECT_FALSE(fault::global_stop_requested());
}

TEST_F(FaultEnvelope, LegacyKillTokenAliasStillArms) {
  const auto dir = fresh_dir("fault_alias_test");
  const std::string token = (dir / "kill_token").string();
  std::ofstream(token) << "1\n";
  ::unsetenv("SEPE_FAULT");
  ::setenv("SEPE_RUN_KILL_TOKEN", token.c_str(), 1);
  EXPECT_TRUE(fault::init_from_environment());
  ::unsetenv("SEPE_RUN_KILL_TOKEN");
  ASSERT_TRUE(fault::armed());
  const auto action = fault::hit("worker.job_done");
  ASSERT_TRUE(action.has_value());
  EXPECT_EQ(*action, fault::Action::Kill);  // consulted, never executed here
}

// --- per-job memory ceiling (solver layer) ---

TEST_F(FaultSolver, MemoryCeilingRoundTripsThroughConfigString) {
  sat::SolverConfig cfg;
  EXPECT_EQ(cfg.to_string().find("mem="), std::string::npos)
      << "default config string must stay byte-identical to pre-ceiling runs";
  const auto old = sat::SolverConfig::from_string(cfg.to_string());
  ASSERT_TRUE(old.has_value());
  EXPECT_EQ(old->memory_limit_mb, 0u);

  cfg.memory_limit_mb = 64;
  EXPECT_NE(cfg.to_string().find(";mem=64"), std::string::npos);
  const auto parsed = sat::SolverConfig::from_string(cfg.to_string());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, cfg);
}

TEST_F(FaultSolver, RealArenaCeilingDegradesToUnknown) {
  sat::SolverConfig cfg;
  cfg.memory_limit_mb = 1;
  sat::Solver solver(cfg);
  const int a = solver.new_var();
  const int b = solver.new_var();
  const int c = solver.new_var();
  // ~80k three-literal clauses outgrow a 1 MiB arena deterministically.
  for (int i = 0; i < 80000; ++i)
    solver.add_clause({sat::Lit(a, i % 2 == 0), sat::Lit(b, i % 3 == 0),
                       sat::Lit(c, i % 5 == 0)});
  EXPECT_EQ(solver.solve(), sat::SolveResult::Unknown);
  EXPECT_TRUE(solver.out_of_memory());
}

TEST_F(FaultSolver, InjectedOomDegradesToUnknown) {
  ASSERT_TRUE(fault::configure("point=solver.alloc:oom"));
  sat::Solver solver;  // no real ceiling — the fault alone trips it
  const int x = solver.new_var();
  solver.add_clause({sat::Lit(x, true)});
  EXPECT_EQ(solver.solve(), sat::SolveResult::Unknown);
  EXPECT_TRUE(solver.out_of_memory());
}

// --- OOM degrade at the campaign layer, both workload families ---

TEST_F(FaultCampaign, OomDegradesSyntheticJobToDiagnosedUnknown) {
  ASSERT_TRUE(fault::configure("point=solver.alloc:oom"));
  JobBudget budget;
  budget.max_bound = 4;
  budget.max_k = 2;
  const JobResult r = run_job(counter_job("oom-cnt", 8, 3, budget));
  EXPECT_EQ(r.verdict, Verdict::Unknown);
  EXPECT_TRUE(r.hit_resource_limit);
  EXPECT_TRUE(r.hit_memory_limit);
  EXPECT_EQ(r.note, "resource: memory");
}

TEST_F(FaultCampaign, OomDegradesQedJobToDiagnosedUnknown) {
  auto bugs = proc::table1_single_instruction_bugs();
  ASSERT_FALSE(bugs.empty());
  CampaignMatrix matrix;
  matrix.xlen = 4;
  matrix.modes = {qed::QedMode::EddiV};
  matrix.mutations = {bugs[0]};
  const proc::ProcConfig config = derive_duv_config(matrix, &bugs[0]);
  JobBudget budget;
  budget.max_bound = 3;
  budget.max_k = 2;
  const JobSpec job = make_qed_job("oom-qed", qed::QedMode::EddiV, config, bugs[0],
                                   /*equivalences=*/nullptr, budget);
  ASSERT_TRUE(fault::configure("point=solver.alloc:oom"));
  const JobResult r = run_job(job);
  EXPECT_EQ(r.verdict, Verdict::Unknown);
  EXPECT_TRUE(r.hit_memory_limit);
  EXPECT_EQ(r.note, "resource: memory");
}

TEST_F(FaultCampaign, OomDegradesBtor2JobToDiagnosedUnknown) {
  // The corpus family's job shape: a model parsed from BTOR2 text.
  const char* kCounter =
      "1 sort bitvec 4\n"
      "2 sort bitvec 1\n"
      "10 state 1 cnt\n"
      "11 constd 1 0\n"
      "12 init 1 10 11\n"
      "13 constd 1 1\n"
      "14 add 1 10 13\n"
      "15 next 1 10 14\n"
      "16 constd 1 5\n"
      "17 eq 2 10 16\n"
      "18 bad 17 ; cnt-five\n";
  JobSpec job;
  job.name = "oom-btor2";
  job.provenance.family = kBtor2Family;
  job.provenance.source = "oom.btor2";
  job.provenance.mode.clear();
  job.budget.max_bound = 6;
  job.budget.max_k = 2;
  job.build = [text = std::string(kCounter)](ts::TransitionSystem& ts,
                                             std::string* error) {
    const ts::Btor2ParseResult r = ts::parse_btor2(text, ts);
    if (!r.ok) *error = r.error;
    return r.ok;
  };
  ASSERT_TRUE(fault::configure("point=solver.alloc:oom"));
  const JobResult r = run_job(job);
  EXPECT_EQ(r.verdict, Verdict::Unknown);
  EXPECT_TRUE(r.hit_memory_limit);
  EXPECT_EQ(r.note, "resource: memory");
}

TEST_F(FaultCampaign, MemoryCeilingIsPartOfTheCacheKey) {
  JobBudget a;
  JobSpec job = counter_job("keyed", 8, 3, a);
  const std::string base = VerdictCache::key_of(job, "fp");
  job.budget.memory_limit_mb = 64;
  EXPECT_NE(VerdictCache::key_of(job, "fp"), base)
      << "a memory-starved run answers a different question";
}

// --- injected stop mid-campaign: resumable checkpoint ---

TEST_F(FaultCheckpoint, InjectedStopLeavesResumableCheckpoint) {
  const auto dir = fresh_dir("fault_ckpt_test");
  JobBudget budget;
  budget.max_bound = 6;
  budget.max_k = 2;
  CampaignSpec spec;
  spec.jobs.push_back(counter_job("a-cnt", 8, 3, budget));
  spec.jobs.push_back(counter_job("b-cnt", 8, 4, budget));
  spec.seed = 11;

  // Reference: the uninterrupted run's stable JSON.
  ShardRunOptions plain;
  plain.pool.threads = 1;
  std::string error;
  const CampaignReport reference = run_sharded(spec, plain, &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_EQ(reference.jobs.size(), 2u);

  // Interrupted run: the first finished job raises the global stop flag
  // from the worker's job-done hook — after the checkpoint journal was
  // written, exactly like a SIGTERM landing between jobs.
  ShardRunOptions ck;
  ck.pool.threads = 1;
  ck.checkpoint_path = (dir / "ck.json").string();
  ASSERT_TRUE(fault::configure("point=worker.job_done:stop@1"));
  const CampaignReport interrupted = run_sharded(spec, ck, &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_TRUE(fault::global_stop_requested());
  unsigned finished = 0;
  for (const JobResult& r : interrupted.jobs)
    if (!r.name.empty()) ++finished;
  EXPECT_EQ(finished, 1u);  // the second job was never claimed
  ASSERT_TRUE(std::filesystem::exists(ck.checkpoint_path));

  // Resume with the envelope cleared: only the unfinished job re-runs,
  // and the final stable JSON is byte-identical to the uninterrupted run.
  ASSERT_TRUE(fault::configure(""));
  fault::clear_global_stop();
  const CampaignReport resumed = run_sharded(spec, ck, &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(resumed.to_json(/*include_timing=*/false),
            reference.to_json(/*include_timing=*/false));
}

// --- verdict cache under torn concurrent appends ---

TEST_F(FaultCache, TornConcurrentAppendsNeverYieldAWrongVerdict) {
  const auto dir = fresh_dir("fault_cache_torn_test");
  // Entry i is a pure function of its key, so any hit can be checked
  // for truthfulness after the torn-write barrage.
  const auto entry_for = [](unsigned i) {
    VerdictCache::Entry e;
    e.verdict = i % 2 == 0 ? Verdict::Falsified : Verdict::Proved;
    e.trace_length = i % 2 == 0 ? i + 1 : 0;
    e.proved_k = i % 2 == 0 ? 0 : i + 1;
    e.bad_label = "bad-" + std::to_string(i);
    return e;
  };
  // Journal keys are 16-hex-digit digests; forge fixed-width stand-ins.
  const auto key_for = [](unsigned i) {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016x", i);
    return std::string(buf);
  };
  ASSERT_TRUE(fault::configure("seed=9;point=cache.append:torn@0.5"));
  constexpr unsigned kWriters = 4;
  constexpr unsigned kPerWriter = 16;
  std::vector<std::thread> writers;
  for (unsigned w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      std::string error;
      const auto cache = VerdictCache::open(dir.string(), &error);
      ASSERT_NE(cache, nullptr) << error;
      for (unsigned j = 0; j < kPerWriter; ++j) {
        const unsigned i = w * kPerWriter + j;
        cache->append(key_for(i), entry_for(i));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  ASSERT_TRUE(fault::configure(""));

  std::string error;
  const auto reload = VerdictCache::open(dir.string(), &error);
  ASSERT_NE(reload, nullptr) << error;
  unsigned hits = 0;
  for (unsigned i = 0; i < kWriters * kPerWriter; ++i) {
    const auto got = reload->lookup(key_for(i));
    if (!got) continue;  // a torn line only ever costs a miss
    ++hits;
    const VerdictCache::Entry want = entry_for(i);
    EXPECT_EQ(got->verdict, want.verdict) << i;
    EXPECT_EQ(got->trace_length, want.trace_length) << i;
    EXPECT_EQ(got->proved_k, want.proved_k) << i;
    EXPECT_EQ(got->bad_label, want.bad_label) << i;
  }
  // With p=0.5 torn appends a fair share still lands intact; zero hits
  // would mean the cache lost everything rather than degrading.
  EXPECT_GT(hits, 0u);
  EXPECT_LT(hits, kWriters * kPerWriter);
}

// --- retrying atomic writer ---

TEST_F(FaultReportIo, TransientWriteFaultIsMaskedByRetry) {
  const auto dir = fresh_dir("fault_write_retry_test");
  const std::string path = (dir / "report.json").string();
  ASSERT_TRUE(fault::configure("point=report.write:fail@1"));
  EXPECT_TRUE(write_text_file_atomic(path, "{\"ok\": true}\n", "report.write"));
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(text, "{\"ok\": true}\n");
  // No temp-file litter on the retry path.
  unsigned files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 1u);
}

TEST_F(FaultReportIo, PersistentTornWriteFailsCleanly) {
  const auto dir = fresh_dir("fault_write_torn_test");
  const std::string path = (dir / "report.json").string();
  ASSERT_TRUE(fault::configure("point=report.write:torn"));
  EXPECT_FALSE(write_text_file_atomic(path, "{\"ok\": true}\n", "report.write"));
  // The target never appears and the half-written temp file is removed:
  // a crashed write is invisible, never a corrupt report.
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::is_empty(dir));
}

TEST_F(FaultReportIo, UninstrumentedCallSitesIgnoreThePlan) {
  const auto dir = fresh_dir("fault_write_plain_test");
  const std::string path = (dir / "plain.txt").string();
  ASSERT_TRUE(fault::configure("point=report.write:fail"));
  // A caller that names no fault point cannot be failed by the plan.
  EXPECT_TRUE(write_text_file_atomic(path, "x\n"));
  EXPECT_TRUE(std::filesystem::exists(path));
}

}  // namespace
}  // namespace sepe::engine
