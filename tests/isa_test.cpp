// Tests for the RV32IM instruction layer: name tables, format
// classification, constructor invariants, encode/decode round trips
// against the standard RV32 bit layouts, and the assembly parser.
#include <gtest/gtest.h>

#include <vector>

#include "isa/isa.hpp"
#include "util/rng.hpp"

namespace sepe::isa {
namespace {

std::vector<Opcode> all_opcodes() {
  std::vector<Opcode> out;
  for (int i = 0; i < kNumOpcodes; ++i) out.push_back(static_cast<Opcode>(i));
  return out;
}

TEST(IsaNames, RoundTripThroughNameTable) {
  for (Opcode op : all_opcodes()) {
    const auto back = opcode_from_name(opcode_name(op));
    ASSERT_TRUE(back.has_value()) << opcode_name(op);
    EXPECT_EQ(*back, op);
  }
}

TEST(IsaNames, LookupIsCaseInsensitive) {
  EXPECT_EQ(opcode_from_name("add"), Opcode::ADD);
  EXPECT_EQ(opcode_from_name("Add"), Opcode::ADD);
  EXPECT_EQ(opcode_from_name("mulhsu"), Opcode::MULHSU);
}

TEST(IsaNames, UnknownNameIsRejected) {
  EXPECT_FALSE(opcode_from_name("BLT").has_value());
  EXPECT_FALSE(opcode_from_name("").has_value());
  EXPECT_FALSE(opcode_from_name("ADDX").has_value());
}

TEST(IsaFormats, EveryOpcodeHasConsistentPredicates) {
  for (Opcode op : all_opcodes()) {
    // R-type and I-type are mutually exclusive; loads/stores are neither.
    EXPECT_FALSE(is_rtype(op) && is_itype(op)) << opcode_name(op);
    if (is_load(op) || is_store(op)) {
      EXPECT_FALSE(is_rtype(op)) << opcode_name(op);
      EXPECT_FALSE(is_itype(op)) << opcode_name(op);
    }
    if (is_mul_family(op) || is_div_family(op)) {
      EXPECT_TRUE(is_rtype(op)) << opcode_name(op);
    }
  }
}

TEST(IsaFormats, WritesRegisterMatchesFormat) {
  for (Opcode op : all_opcodes()) {
    const bool expected = op != Opcode::SW && op != Opcode::NOP;
    EXPECT_EQ(writes_register(op), expected) << opcode_name(op);
  }
}

TEST(IsaInstruction, ConstructorsPopulateFields) {
  const Instruction r = Instruction::rtype(Opcode::SUB, 1, 2, 3);
  EXPECT_EQ(r.op, Opcode::SUB);
  EXPECT_EQ(r.rd, 1);
  EXPECT_EQ(r.rs1, 2);
  EXPECT_EQ(r.rs2, 3);

  const Instruction i = Instruction::itype(Opcode::ADDI, 4, 5, -17);
  EXPECT_EQ(i.imm, -17);

  const Instruction lw = Instruction::lw(6, 7, 8);
  EXPECT_EQ(lw.rd, 6);
  EXPECT_EQ(lw.rs1, 7);
  EXPECT_EQ(lw.imm, 8);

  const Instruction sw = Instruction::sw(9, 10, -4);
  EXPECT_EQ(sw.rs2, 9);
  EXPECT_EQ(sw.rs1, 10);
  EXPECT_EQ(sw.imm, -4);
}

TEST(IsaInstruction, ToStringUsesArchitecturalSyntax) {
  EXPECT_EQ(Instruction::rtype(Opcode::ADD, 1, 2, 3).to_string(), "ADD x1, x2, x3");
  EXPECT_EQ(Instruction::itype(Opcode::XORI, 1, 2, -1).to_string(), "XORI x1, x2, -1");
  EXPECT_EQ(Instruction::lw(5, 2, 8).to_string(), "LW x5, 8(x2)");
  EXPECT_EQ(Instruction::sw(5, 2, 12).to_string(), "SW x5, 12(x2)");
  EXPECT_EQ(Instruction::nop().to_string(), "NOP");
}

// --- encode/decode ---

class EncodeRoundTrip : public ::testing::TestWithParam<Opcode> {};

TEST_P(EncodeRoundTrip, DecodeInvertsEncode) {
  const Opcode op = GetParam();
  Rng rng(7 + static_cast<int>(op));
  for (int trial = 0; trial < 50; ++trial) {
    Instruction inst;
    const unsigned rd = 1 + rng.below(31);
    const unsigned rs1 = rng.below(32);
    const unsigned rs2 = rng.below(32);
    switch (opcode_format(op)) {
      case Format::R: inst = Instruction::rtype(op, rd, rs1, rs2); break;
      case Format::I:
        inst = Instruction::itype(op, rd, rs1,
                                  static_cast<std::int32_t>(rng.below(4096)) - 2048);
        break;
      case Format::Shift:
        inst = Instruction::itype(op, rd, rs1, static_cast<std::int32_t>(rng.below(32)));
        break;
      case Format::U:
        inst = Instruction::lui(rd, static_cast<std::int32_t>(rng.below(1 << 20)));
        break;
      case Format::Load:
        inst = Instruction::lw(rd, rs1,
                               static_cast<std::int32_t>(rng.below(4096)) - 2048);
        break;
      case Format::Store:
        inst = Instruction::sw(rs2, rs1,
                               static_cast<std::int32_t>(rng.below(4096)) - 2048);
        break;
      case Format::None: inst = Instruction::nop(); break;
    }
    const std::uint32_t word = encode(inst);
    const auto back = decode(word);
    ASSERT_TRUE(back.has_value()) << inst.to_string();
    if (op == Opcode::NOP) {
      // NOP encodes as the canonical ADDI x0,x0,0.
      EXPECT_EQ(back->op, Opcode::ADDI);
      EXPECT_EQ(back->rd, 0);
    } else {
      EXPECT_EQ(*back, inst) << inst.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, EncodeRoundTrip,
                         ::testing::ValuesIn(all_opcodes()),
                         [](const ::testing::TestParamInfo<Opcode>& info) {
                           return opcode_name(info.param);
                         });

TEST(IsaEncode, KnownGoldenWords) {
  // Cross-checked against the RISC-V spec (and any external assembler).
  // add x1, x2, x3  -> 0x003100b3
  EXPECT_EQ(encode(Instruction::rtype(Opcode::ADD, 1, 2, 3)), 0x003100b3u);
  // sub x1, x2, x3  -> 0x403100b3
  EXPECT_EQ(encode(Instruction::rtype(Opcode::SUB, 1, 2, 3)), 0x403100b3u);
  // addi x1, x2, -1 -> 0xfff10093
  EXPECT_EQ(encode(Instruction::itype(Opcode::ADDI, 1, 2, -1)), 0xfff10093u);
  // srai x1, x2, 4  -> 0x40415093
  EXPECT_EQ(encode(Instruction::itype(Opcode::SRAI, 1, 2, 4)), 0x40415093u);
  // lui x1, 0xfffff -> 0xfffff0b7
  EXPECT_EQ(encode(Instruction::lui(1, 0xfffff)), 0xfffff0b7u);
  // lw x1, 8(x2)    -> 0x00812083
  EXPECT_EQ(encode(Instruction::lw(1, 2, 8)), 0x00812083u);
  // sw x3, 12(x2)   -> 0x00312623
  EXPECT_EQ(encode(Instruction::sw(3, 2, 12)), 0x00312623u);
  // mul x1, x2, x3  -> 0x023100b3
  EXPECT_EQ(encode(Instruction::rtype(Opcode::MUL, 1, 2, 3)), 0x023100b3u);
}

TEST(IsaDecode, RejectsUnsupportedEncodings) {
  EXPECT_FALSE(decode(0x00000000u).has_value());  // all zeros: illegal
  EXPECT_FALSE(decode(0xffffffffu).has_value());  // all ones: illegal
  EXPECT_FALSE(decode(0x00000063u).has_value());  // BEQ: outside the subset
  EXPECT_FALSE(decode(0x0000006fu).has_value());  // JAL: outside the subset
}

TEST(IsaDecode, RejectsCorruptedFunct7) {
  // ADD with funct7 = 0x15 is not a defined instruction.
  const std::uint32_t add = encode(Instruction::rtype(Opcode::ADD, 1, 2, 3));
  EXPECT_FALSE(decode(add | (0x15u << 25)).has_value());
}

// --- assembly parser ---

TEST(IsaAsm, ParsesRType) {
  const auto inst = parse_asm("sub x1, x2, x3");
  ASSERT_TRUE(inst.has_value());
  EXPECT_EQ(*inst, Instruction::rtype(Opcode::SUB, 1, 2, 3));
}

TEST(IsaAsm, ParsesIType) {
  const auto inst = parse_asm("addi x1, x0, -5");
  ASSERT_TRUE(inst.has_value());
  EXPECT_EQ(*inst, Instruction::itype(Opcode::ADDI, 1, 0, -5));
}

TEST(IsaAsm, ParsesShiftAndHex) {
  const auto inst = parse_asm("slli x4, x5, 7");
  ASSERT_TRUE(inst.has_value());
  EXPECT_EQ(*inst, Instruction::itype(Opcode::SLLI, 4, 5, 7));
  const auto xori = parse_asm("xori x1, x2, 0x7ff");
  ASSERT_TRUE(xori.has_value());
  EXPECT_EQ(xori->imm, 0x7ff);
}

TEST(IsaAsm, ParsesMemoryOperands) {
  const auto lw = parse_asm("lw x5, 8(x2)");
  ASSERT_TRUE(lw.has_value());
  EXPECT_EQ(*lw, Instruction::lw(5, 2, 8));
  const auto sw = parse_asm("sw x5, -4(x2)");
  ASSERT_TRUE(sw.has_value());
  EXPECT_EQ(*sw, Instruction::sw(5, 2, -4));
}

TEST(IsaAsm, RejectsSyntaxErrors) {
  EXPECT_FALSE(parse_asm("").has_value());
  EXPECT_FALSE(parse_asm("bogus x1, x2, x3").has_value());
  EXPECT_FALSE(parse_asm("add x1, x2").has_value());        // missing operand
  EXPECT_FALSE(parse_asm("add x1, x2, 5").has_value());     // imm for R-type
  EXPECT_FALSE(parse_asm("addi x1, x2, x3").has_value());   // reg for I-type
  EXPECT_FALSE(parse_asm("add x32, x2, x3").has_value());   // register range
}

TEST(IsaAsm, RoundTripsThroughToString) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const Opcode op = static_cast<Opcode>(rng.below(kNumOpcodes));
    if (op == Opcode::NOP) continue;
    Instruction inst;
    const unsigned rd = 1 + rng.below(31);
    switch (opcode_format(op)) {
      case Format::R:
        inst = Instruction::rtype(op, rd, rng.below(32), rng.below(32));
        break;
      case Format::I:
        inst = Instruction::itype(op, rd, rng.below(32),
                                  static_cast<std::int32_t>(rng.below(4096)) - 2048);
        break;
      case Format::Shift:
        inst = Instruction::itype(op, rd, rng.below(32),
                                  static_cast<std::int32_t>(rng.below(32)));
        break;
      case Format::U:
        inst = Instruction::lui(rd, static_cast<std::int32_t>(rng.below(1 << 20)));
        break;
      case Format::Load:
        inst = Instruction::lw(rd, rng.below(32),
                               static_cast<std::int32_t>(rng.below(4096)) - 2048);
        break;
      case Format::Store:
        inst = Instruction::sw(rng.below(32), rng.below(32),
                               static_cast<std::int32_t>(rng.below(4096)) - 2048);
        break;
      case Format::None: continue;
    }
    const auto back = parse_asm(inst.to_string());
    ASSERT_TRUE(back.has_value()) << inst.to_string();
    EXPECT_EQ(*back, inst) << inst.to_string();
  }
}

TEST(IsaProgram, ProgramToStringJoinsLines) {
  Program p{Instruction::rtype(Opcode::ADD, 1, 2, 3),
            Instruction::itype(Opcode::XORI, 1, 1, -1)};
  const std::string s = program_to_string(p);
  EXPECT_NE(s.find("ADD x1, x2, x3"), std::string::npos);
  EXPECT_NE(s.find("XORI x1, x1, -1"), std::string::npos);
}

}  // namespace
}  // namespace sepe::isa
