// Tests for the persistent verdict cache: journal lines round-trip and
// self-validate (truncation or hand-editing is detected and degrades to
// a miss, never a wrong verdict), keys separate every budget/provenance
// knob while unifying resolved encodings, wall-capped jobs are refused,
// and a warm run_sharded serves every cacheable job from the journal
// with byte-identical stable JSON and zero model builds.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "engine/report_io.hpp"
#include "engine/shard.hpp"
#include "engine/verdict_cache.hpp"

namespace sepe::engine {
namespace {

using smt::TermRef;

VerdictCache::Entry falsified_entry() {
  VerdictCache::Entry e;
  e.verdict = Verdict::Falsified;
  e.trace_length = 6;
  e.bad_label = "qed-inconsistent/EDSEP-V (SEPE-SQED)";
  return e;
}

TEST(VerdictCacheFormat, LineRoundTripsIncludingEscapes) {
  VerdictCache::Entry e;
  e.verdict = Verdict::Unknown;
  e.trace_length = 3;
  e.proved_k = 7;
  // Adversarial payload: quotes, backslashes, newline, a control byte,
  // and a literal `,"check":"..."` decoy that the parser's rfind must
  // not mistake for the real trailing self-check field.
  e.bad_label = "label \"quoted\"\\with\nnewline\ttab\x01!";
  e.note = "decoy,\"check\":\"0123456789abcdef\" end";

  const std::string line = VerdictCache::format_line("00ff00ff00ff00ff", e);
  const auto parsed = VerdictCache::parse_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->first, "00ff00ff00ff00ff");
  EXPECT_EQ(parsed->second.verdict, e.verdict);
  EXPECT_EQ(parsed->second.trace_length, e.trace_length);
  EXPECT_EQ(parsed->second.proved_k, e.proved_k);
  EXPECT_EQ(parsed->second.bad_label, e.bad_label);
  EXPECT_EQ(parsed->second.note, e.note);
}

TEST(VerdictCacheFormat, DetectsTruncationAndTampering) {
  const std::string line = VerdictCache::format_line("0123456789abcdef",
                                                     falsified_entry());
  ASSERT_TRUE(VerdictCache::parse_line(line).has_value());

  // Truncation at every byte boundary must be rejected, never misread.
  for (std::size_t keep = 0; keep < line.size(); ++keep)
    ASSERT_FALSE(VerdictCache::parse_line(line.substr(0, keep)).has_value())
        << "truncated to " << keep << " bytes";

  // Hand-editing the verdict while keeping the stale self-check.
  std::string edited = line;
  const std::size_t at = edited.find("FALSIFIED");
  ASSERT_NE(at, std::string::npos);
  edited.replace(at, 9, "PROVED\"\"\"");  // same length, digest now stale
  EXPECT_FALSE(VerdictCache::parse_line(edited).has_value());

  // Flipping one digit of the self-check itself.
  std::string flipped = line;
  flipped[flipped.size() - 3] = flipped[flipped.size() - 3] == '0' ? '1' : '0';
  EXPECT_FALSE(VerdictCache::parse_line(flipped).has_value());

  EXPECT_FALSE(VerdictCache::parse_line("").has_value());
  EXPECT_FALSE(VerdictCache::parse_line(line + "x").has_value());
}

JobSpec sample_job() {
  JobSpec job;
  job.name = "job-a";
  job.provenance.family = kBtor2Family;
  job.provenance.source = "dir/file.btor2";
  job.provenance.property = 1;
  job.provenance.content_digest = "cafe";
  job.provenance.mode.clear();
  job.budget.max_bound = 8;
  job.budget.max_k = 3;
  return job;
}

TEST(VerdictCacheFormat, KeySeparatesEveryVerdictDeterminant) {
  const JobSpec base = sample_job();
  const std::string k0 = VerdictCache::key_of(base, "fp");
  EXPECT_EQ(k0.size(), 16u);
  EXPECT_EQ(k0, VerdictCache::key_of(base, "fp"));  // stable

  const auto differs = [&](auto&& mutate) {
    JobSpec j = sample_job();
    mutate(j);
    return VerdictCache::key_of(j, "fp") != k0;
  };
  EXPECT_TRUE(differs([](JobSpec& j) { j.name = "job-b"; }));
  EXPECT_TRUE(differs([](JobSpec& j) { j.provenance.source = "other.btor2"; }));
  EXPECT_TRUE(differs([](JobSpec& j) { j.provenance.property = 2; }));
  EXPECT_TRUE(differs([](JobSpec& j) { j.provenance.content_digest = "beef"; }));
  EXPECT_TRUE(differs([](JobSpec& j) { j.budget.max_bound = 9; }));
  EXPECT_TRUE(differs([](JobSpec& j) { j.budget.max_k = 4; }));
  EXPECT_TRUE(differs([](JobSpec& j) { j.budget.conflict_budget = 100; }));
  EXPECT_TRUE(differs([](JobSpec& j) { j.budget.race_k_induction = false; }));
  EXPECT_TRUE(differs([](JobSpec& j) { j.budget.portfolio = 2; }));
  EXPECT_TRUE(differs([](JobSpec& j) { j.budget.sequential_provers = true; }));
  EXPECT_TRUE(differs([](JobSpec& j) { j.budget.plaisted_greenbaum = true; }));
  EXPECT_NE(VerdictCache::key_of(base, "other-fp"), k0);

  // The encoding tri-state is RESOLVED into the key: an unset encoding
  // and an explicit request for the default blast identically, so they
  // share verdicts.
  JobSpec explicit_default = sample_job();
  explicit_default.budget.plaisted_greenbaum = false;
  EXPECT_EQ(VerdictCache::key_of(explicit_default, "fp"), k0);
}

TEST(VerdictCacheFormat, WallCappedJobsAreNotCacheable) {
  JobSpec job = sample_job();
  EXPECT_TRUE(VerdictCache::cacheable(job));
  job.budget.max_seconds = 0.5;
  EXPECT_FALSE(VerdictCache::cacheable(job));
}

class VerdictCacheStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "verdict_cache_test";
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(VerdictCacheStoreTest, AppendPersistsAcrossReopen) {
  std::string error;
  auto cache = VerdictCache::open(dir_, &error);
  ASSERT_TRUE(cache) << error;
  EXPECT_FALSE(cache->lookup("aaaaaaaaaaaaaaaa").has_value());
  cache->append("aaaaaaaaaaaaaaaa", falsified_entry());
  const auto hit = cache->lookup("aaaaaaaaaaaaaaaa");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->verdict, Verdict::Falsified);
  EXPECT_EQ(hit->trace_length, 6u);

  auto reopened = VerdictCache::open(dir_, &error);
  ASSERT_TRUE(reopened) << error;
  EXPECT_EQ(reopened->stats().entries_loaded, 1u);
  ASSERT_TRUE(reopened->lookup("aaaaaaaaaaaaaaaa").has_value());
  EXPECT_EQ(reopened->lookup("aaaaaaaaaaaaaaaa")->bad_label,
            falsified_entry().bad_label);
}

TEST_F(VerdictCacheStoreTest, CorruptJournalLinesDegradeToMisses) {
  {
    std::string error;
    auto cache = VerdictCache::open(dir_, &error);
    ASSERT_TRUE(cache) << error;
    cache->append("aaaaaaaaaaaaaaaa", falsified_entry());
    VerdictCache::Entry proved;
    proved.verdict = Verdict::Proved;
    proved.proved_k = 2;
    cache->append("bbbbbbbbbbbbbbbb", proved);
  }
  // Truncate the second line mid-entry and tack on a hand-forged one.
  const std::string path = VerdictCache::journal_path(dir_);
  std::string text = *read_text_file(path);
  std::vector<std::string> lines;
  for (std::size_t at = 0; at < text.size();) {
    const std::size_t nl = text.find('\n', at);
    lines.push_back(text.substr(at, nl - at));
    at = nl + 1;
  }
  ASSERT_EQ(lines.size(), 2u);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << lines[0] << "\n"
      << lines[1].substr(0, lines[1].size() / 2) << "\n"
      << "{\"v\":1,\"key\":\"cccccccccccccccc\",\"verdict\":\"PROVED\","
         "\"check\":\"0000000000000000\"}\n";
  out.close();

  std::string error;
  auto cache = VerdictCache::open(dir_, &error);
  ASSERT_TRUE(cache) << error;
  EXPECT_EQ(cache->stats().entries_loaded, 1u);
  EXPECT_EQ(cache->stats().corrupt_lines, 2u);
  EXPECT_TRUE(cache->lookup("aaaaaaaaaaaaaaaa").has_value());   // intact
  EXPECT_FALSE(cache->lookup("bbbbbbbbbbbbbbbb").has_value());  // truncated
  EXPECT_FALSE(cache->lookup("cccccccccccccccc").has_value());  // forged
}

// --- run_sharded integration ---

std::atomic<unsigned> g_builds{0};

/// Counter that increments by an input-controlled step: falsified at
/// depth `target` when target <= max_bound, bound-clean otherwise.
JobSpec counter_job(const std::string& name, unsigned width, std::uint64_t target,
                    const JobBudget& budget) {
  JobSpec job;
  job.name = name;
  job.budget = budget;
  job.build = [width, target](ts::TransitionSystem& ts, std::string*) {
    g_builds.fetch_add(1);
    smt::TermManager& mgr = ts.mgr();
    const TermRef cnt = ts.add_state("cnt", width);
    const TermRef inc = ts.add_input("inc", 1);
    ts.set_init(cnt, mgr.mk_const(width, 0));
    ts.set_next(cnt, mgr.mk_ite(inc, mgr.mk_add(cnt, mgr.mk_const(width, 1)), cnt));
    ts.add_bad(mgr.mk_eq(cnt, mgr.mk_const(width, target)), "cnt-target");
    return true;
  };
  return job;
}

CampaignSpec cached_spec() {
  JobBudget budget;
  budget.max_bound = 6;
  budget.max_k = 2;
  CampaignSpec spec;
  spec.seed = 7;
  spec.jobs.push_back(counter_job("hit-3", 6, 3, budget));
  spec.jobs.push_back(counter_job("hit-5", 7, 5, budget));
  spec.jobs.push_back(counter_job("clean-40", 6, 40, budget));
  // A deterministic UNKNOWN row: the build diagnostic is a verdict-
  // bearing field and must be served from the cache verbatim.
  JobSpec broken;
  broken.name = "broken";
  broken.budget = budget;
  broken.build = [](ts::TransitionSystem&, std::string* error) {
    g_builds.fetch_add(1);
    *error = "synthetic build failure";
    return false;
  };
  spec.jobs.push_back(broken);
  return spec;
}

class VerdictCacheRunTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "verdict_cache_run_test";
    std::filesystem::remove_all(dir_);
    g_builds.store(0);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(VerdictCacheRunTest, WarmRunIsByteIdenticalWithZeroBuilds) {
  const CampaignSpec spec = cached_spec();
  ShardRunOptions options;
  options.cache_dir = dir_;
  options.fingerprint = "test-campaign";

  std::string error;
  const CampaignReport cold = run_sharded(spec, options, &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_GT(g_builds.load(), 0u);
  for (const JobResult& j : cold.jobs) EXPECT_FALSE(j.from_cache) << j.name;

  // Warm, with the witness post-pass opted out: no model is ever built,
  // no hook fires, every job is marked from_cache, and the stable JSON
  // is byte-identical.
  g_builds.store(0);
  unsigned hook_fired = 0;
  options.pool.on_job_done = [&](std::size_t, const JobResult&) { ++hook_fired; };
  options.pool.witness.check = false;
  const CampaignReport warm = run_sharded(spec, options, &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(g_builds.load(), 0u);
  EXPECT_EQ(hook_fired, 0u);
  for (const JobResult& j : warm.jobs) {
    EXPECT_TRUE(j.from_cache) << j.name;
    EXPECT_EQ(j.conflicts, 0u) << j.name;
  }
  EXPECT_EQ(warm.to_json(/*include_timing=*/false),
            cold.to_json(/*include_timing=*/false));
  // The UNKNOWN row kept its diagnostic.
  EXPECT_EQ(warm.jobs.back().note, "synthetic build failure");

  // Warm, with the post-pass on (the default): a cached FALSIFIED row is
  // hearsay until it reproduces, so exactly the two falsified rows are
  // rebuilt and re-derived (engine/witness.hpp). They stay from_cache,
  // and the stable JSON is still byte-identical.
  g_builds.store(0);
  options.pool.on_job_done = nullptr;
  options.pool.witness.check = true;
  const CampaignReport audited = run_sharded(spec, options, &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(g_builds.load(), 2u);
  for (const JobResult& j : audited.jobs) {
    EXPECT_TRUE(j.from_cache) << j.name;
    EXPECT_EQ(j.witness_checked, j.verdict == Verdict::Falsified) << j.name;
  }
  EXPECT_EQ(audited.to_json(/*include_timing=*/false),
            cold.to_json(/*include_timing=*/false));

  // Cross-campaign reuse: a sharded slice of the same spec hits the same
  // journal (keys embed job identity, not campaign shape).
  g_builds.store(0);
  ShardRunOptions sliced;
  sliced.cache_dir = dir_;
  sliced.fingerprint = "test-campaign";
  sliced.shard = ShardSpec{0, 2};
  sliced.pool.witness.check = false;
  const CampaignReport half = run_sharded(spec, sliced, &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(g_builds.load(), 0u);
  for (const JobResult& j : half.jobs) EXPECT_TRUE(j.from_cache) << j.name;
}

TEST_F(VerdictCacheRunTest, WallCappedJobsAreSolvedFreshEveryRun) {
  CampaignSpec spec = cached_spec();
  spec.jobs[1].budget.max_seconds = 3600.0;  // never fires, still refused

  ShardRunOptions options;
  options.cache_dir = dir_;
  std::string error;
  const CampaignReport cold = run_sharded(spec, options, &error);
  ASSERT_TRUE(error.empty()) << error;

  g_builds.store(0);
  const CampaignReport warm = run_sharded(spec, options, &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_GT(g_builds.load(), 0u);  // the capped job re-solved
  for (const JobResult& j : warm.jobs)
    EXPECT_EQ(j.from_cache, j.name != "hit-5") << j.name;
  EXPECT_EQ(warm.to_json(/*include_timing=*/false),
            cold.to_json(/*include_timing=*/false));
}

TEST_F(VerdictCacheRunTest, CorruptedEntryIsResolvedNotReplayed) {
  const CampaignSpec spec = cached_spec();
  ShardRunOptions options;
  options.cache_dir = dir_;
  std::string error;
  const CampaignReport cold = run_sharded(spec, options, &error);
  ASSERT_TRUE(error.empty()) << error;

  // Hand-edit the journal: flip a byte inside the first entry's payload.
  const std::string path = VerdictCache::journal_path(dir_);
  std::string text = *read_text_file(path);
  const std::size_t at = text.find("\"verdict\":\"");
  ASSERT_NE(at, std::string::npos);
  text[at + 11] = text[at + 11] == 'F' ? 'P' : 'F';
  ASSERT_TRUE(write_text_file_atomic(path, text));

  // The poisoned entry digests wrong -> a miss -> that one job is
  // re-solved; the report is still byte-identical to the cold run.
  g_builds.store(0);
  const CampaignReport warm = run_sharded(spec, options, &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_GT(g_builds.load(), 0u);
  EXPECT_LT(g_builds.load(), 2 * spec.jobs.size());  // not a full re-run
  EXPECT_EQ(warm.to_json(/*include_timing=*/false),
            cold.to_json(/*include_timing=*/false));
}

TEST_F(VerdictCacheRunTest, UnusableCacheDirectoryIsAHardError) {
  // A regular FILE where the cache directory should be.
  const std::string blocker = dir_;
  std::ofstream(blocker, std::ios::binary) << "not a directory";
  ShardRunOptions options;
  options.cache_dir = blocker + "/sub";
  std::string error;
  const CampaignReport report = run_sharded(cached_spec(), options, &error);
  EXPECT_FALSE(error.empty());
  EXPECT_TRUE(report.jobs.empty());
  std::remove(blocker.c_str());
}

}  // namespace
}  // namespace sepe::engine
