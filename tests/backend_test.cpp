// Tests for the pluggable SAT-backend seam (sat/backend.hpp): the
// subprocess DIMACS backend must agree with the native CDCL engine on
// random formulas and under assumptions, and a pinned Table-1 campaign
// row must produce byte-identical stable JSON on either backend.
//
// The battery resolves its external solver in this order: an explicit
// SEPE_EXTERNAL_SOLVER, then the build's own sepe-dimacs frontend in the
// working directory (ctest runs from the build tree), then the PATH
// probe for kissat/cadical. When nothing resolves, the equivalence tests
// skip — unavailability is never a failure (docs/SOLVER.md).
#include <gtest/gtest.h>

#include <limits.h>
#include <stdlib.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/campaign.hpp"
#include "engine/pinned_table.hpp"
#include "engine/workload.hpp"
#include "proc/mutations.hpp"
#include "sat/dimacs_backend.hpp"
#include "sat/solver.hpp"

namespace sepe {
namespace {

using sat::BackendKind;
using sat::Lit;
using sat::SolveResult;

/// splitmix64 — deterministic instance generator (same recipe as the
/// solver's internal Rng).
struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  unsigned below(unsigned n) { return static_cast<unsigned>(next() % n); }
};

std::vector<std::vector<Lit>> random_instance(Rng& rng, int nvars, int nclauses) {
  std::vector<std::vector<Lit>> clauses;
  for (int i = 0; i < nclauses; ++i) {
    const int width = 1 + static_cast<int>(rng.below(3));
    std::vector<Lit> clause;
    for (int j = 0; j < width; ++j)
      clause.emplace_back(static_cast<int>(rng.below(static_cast<unsigned>(nvars))),
                          rng.below(2) == 1);
    clauses.push_back(std::move(clause));
  }
  return clauses;
}

bool model_satisfies(const sat::Backend& backend,
                     const std::vector<std::vector<Lit>>& clauses) {
  for (const auto& clause : clauses) {
    bool satisfied = false;
    for (const Lit l : clause) satisfied = satisfied || backend.model_value(l);
    if (!satisfied) return false;
  }
  return true;
}

/// Resolve an external DIMACS solver for the battery (see file header).
/// Memoized: the probe and any setenv happen once per process.
bool ensure_external_solver() {
  static const bool resolved = [] {
    if (const char* env = std::getenv("SEPE_EXTERNAL_SOLVER"); env == nullptr) {
      char frontend[PATH_MAX];
      if (::realpath("./sepe-dimacs", frontend) != nullptr &&
          ::access(frontend, X_OK) == 0)
        ::setenv("SEPE_EXTERNAL_SOLVER", frontend, 1);
    }
    return sat::DimacsBackend().available();
  }();
  return resolved;
}

#define REQUIRE_EXTERNAL_SOLVER()                                              \
  if (!ensure_external_solver())                                               \
  GTEST_SKIP() << "no external DIMACS solver (SEPE_EXTERNAL_SOLVER, "          \
                  "./sepe-dimacs, or kissat/cadical on PATH)"

TEST(BackendFactory, KindNamesRoundTrip) {
  EXPECT_STREQ(sat::backend_kind_name(BackendKind::Native), "native");
  EXPECT_STREQ(sat::backend_kind_name(BackendKind::Dimacs), "dimacs");
  EXPECT_EQ(sat::backend_kind_from_name("native"), BackendKind::Native);
  EXPECT_EQ(sat::backend_kind_from_name("dimacs"), BackendKind::Dimacs);
  EXPECT_FALSE(sat::backend_kind_from_name("minisat").has_value());
  EXPECT_FALSE(sat::backend_kind_from_name("").has_value());
}

TEST(BackendFactory, BuildsTheRequestedKind) {
  const auto native = sat::make_backend(BackendKind::Native, sat::SolverConfig{});
  ASSERT_NE(native, nullptr);
  EXPECT_EQ(native->kind(), BackendKind::Native);
  EXPECT_TRUE(native->available());
  EXPECT_EQ(native->name(), "native");
  // The DIMACS backend constructs even on a host with no external solver;
  // it just reports unavailable.
  const auto dimacs = sat::make_backend(BackendKind::Dimacs, sat::SolverConfig{});
  ASSERT_NE(dimacs, nullptr);
  EXPECT_EQ(dimacs->kind(), BackendKind::Dimacs);
}

TEST(BackendDimacs, ReportsTheResolvedSolverInItsName) {
  REQUIRE_EXTERNAL_SOLVER();
  const sat::DimacsBackend backend;
  EXPECT_TRUE(backend.available());
  EXPECT_EQ(backend.name().rfind("dimacs:", 0), 0u);
  EXPECT_NE(backend.name(), "dimacs:unavailable");
}

TEST(BackendDimacs, PresetStopFlagAbortsWithUnknown) {
  REQUIRE_EXTERNAL_SOLVER();
  sat::DimacsBackend backend;
  const int x = backend.new_var();
  backend.add_clause(Lit(x, false));
  std::atomic<bool> stop{true};
  backend.set_stop_flag(&stop);
  EXPECT_EQ(backend.solve(), SolveResult::Unknown);
  stop.store(false);
  EXPECT_EQ(backend.solve(), SolveResult::Sat);
}

TEST(BackendEquivalence, RandomFormulasAgree) {
  REQUIRE_EXTERNAL_SOLVER();
  Rng rng(20240808);
  int sat_seen = 0, unsat_seen = 0;
  for (int round = 0; round < 120; ++round) {
    const int nvars = 4 + static_cast<int>(rng.below(9));
    const int nclauses =
        nvars + static_cast<int>(rng.below(static_cast<unsigned>(3 * nvars)));
    const auto clauses = random_instance(rng, nvars, nclauses);

    sat::Solver native;
    sat::DimacsBackend dimacs;
    for (int v = 0; v < nvars; ++v) {
      native.new_var();
      dimacs.new_var();
    }
    for (const auto& clause : clauses) {
      native.add_clause(clause);
      dimacs.add_clause(clause);
    }
    const SolveResult a = native.solve();
    const SolveResult b = dimacs.solve();
    ASSERT_EQ(a, b) << "round " << round << ": backends disagree";
    if (a == SolveResult::Sat) {
      ++sat_seen;
      EXPECT_TRUE(model_satisfies(native, clauses)) << "round " << round;
      EXPECT_TRUE(model_satisfies(dimacs, clauses)) << "round " << round;
    } else {
      ++unsat_seen;
    }
  }
  // The generator must exercise both outcomes or the test proves little.
  EXPECT_GT(sat_seen, 0);
  EXPECT_GT(unsat_seen, 0);
}

TEST(BackendEquivalence, IncrementalSolvesUnderAssumptionsAgree) {
  REQUIRE_EXTERNAL_SOLVER();
  Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    const int nvars = 6 + static_cast<int>(rng.below(6));
    sat::Solver native;
    sat::DimacsBackend dimacs;
    for (int v = 0; v < nvars; ++v) {
      native.new_var();
      dimacs.new_var();
    }
    std::vector<std::vector<Lit>> so_far;
    for (int batch = 0; batch < 4; ++batch) {
      for (auto& clause : random_instance(rng, nvars, nvars)) {
        native.add_clause(clause);
        dimacs.add_clause(clause);
        so_far.push_back(std::move(clause));
      }
      std::vector<Lit> assumptions;
      const int nassume = 1 + static_cast<int>(rng.below(3));
      for (int i = 0; i < nassume; ++i)
        assumptions.emplace_back(
            static_cast<int>(rng.below(static_cast<unsigned>(nvars))),
            rng.below(2) == 1);
      const SolveResult a = native.solve(assumptions);
      const SolveResult b = dimacs.solve(assumptions);
      ASSERT_EQ(a, b) << "round " << round << " batch " << batch;
      if (a == SolveResult::Sat) {
        EXPECT_TRUE(model_satisfies(native, so_far));
        EXPECT_TRUE(model_satisfies(dimacs, so_far));
        for (const Lit l : assumptions) {
          EXPECT_TRUE(native.model_value(l));
          EXPECT_TRUE(dimacs.model_value(l));
        }
      } else if (a == SolveResult::Unsat) {
        // Core contract: every reported literal stems from an assumption.
        for (const Lit l : dimacs.failed_assumptions()) {
          bool from_assumption = false;
          for (const Lit a_lit : assumptions)
            from_assumption = from_assumption || a_lit.var() == l.var();
          EXPECT_TRUE(from_assumption);
        }
      }
    }
  }
}

// The acceptance row: one pinned Table-1 mutation through the whole
// engine stack on each backend. Stable JSON must be byte-identical —
// verdict, trace length, and bad label are model-independent, and the
// witness of a non-native winner is re-derived by the native
// default-config replay (engine/campaign.cpp).
TEST(BackendEquivalence, PinnedTableRowStableJsonIsByteIdentical) {
  REQUIRE_EXTERNAL_SOLVER();
  engine::CampaignMatrix matrix;
  matrix.xlen = 4;
  matrix.modes = {qed::QedMode::EdsepV};
  const auto pinned = engine::make_pinned_table(4);
  matrix.equivalences = &pinned->table;
  for (const proc::Mutation& m : proc::table1_single_instruction_bugs())
    if (m.name == "xor_as_or") matrix.mutations.push_back(m);
  ASSERT_EQ(matrix.mutations.size(), 1u);
  matrix.budget.max_bound = 6;
  matrix.budget.max_k = 2;

  const std::string native_json = engine::run_campaign(engine::expand(matrix, 1))
                                      .to_json(/*include_timing=*/false);
  matrix.budget.backend = BackendKind::Dimacs;
  const std::string dimacs_json = engine::run_campaign(engine::expand(matrix, 1))
                                      .to_json(/*include_timing=*/false);
  EXPECT_EQ(native_json, dimacs_json);
  EXPECT_NE(native_json.find("FALSIFIED"), std::string::npos);
}

}  // namespace
}  // namespace sepe
