#!/usr/bin/env bash
# CLI contract test for sepe-run: malformed arguments are usage errors
# (exit 2, diagnostic on stderr), and the shard/merge round trip
# reproduces the unsharded stable JSON byte-for-byte.
#
# Usage: sepe_run_cli_test.sh /path/to/sepe-run
set -u

SEPE_RUN=${1:?usage: sepe_run_cli_test.sh /path/to/sepe-run}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
FAILURES=0

# expect_usage_error NAME -- ARGS...: the invocation must exit 2 and
# print a diagnostic on stderr.
expect_usage_error() {
  local name=$1
  shift 2
  local stderr_file="$WORK/$name.stderr"
  "$SEPE_RUN" "$@" >/dev/null 2>"$stderr_file"
  local status=$?
  if [ "$status" -ne 2 ]; then
    echo "FAIL: $name: expected exit 2, got $status ($*)"
    FAILURES=$((FAILURES + 1))
  elif [ ! -s "$stderr_file" ]; then
    echo "FAIL: $name: no diagnostic on stderr ($*)"
    FAILURES=$((FAILURES + 1))
  else
    echo "ok: $name"
  fi
}

expect_usage_error threads_zero      -- --threads 0
expect_usage_error threads_garbage   -- --threads abc
expect_usage_error threads_negative  -- --threads -2
expect_usage_error threads_missing   -- --threads
expect_usage_error bound_garbage     -- --bound 6x
expect_usage_error xlen_too_small    -- --xlen 1
expect_usage_error rows_zero         -- --rows 0
expect_usage_error seed_garbage      -- --seed 1.5
expect_usage_error time_cap_negative -- --time-cap -1
expect_usage_error time_cap_nan      -- --time-cap nan
expect_usage_error merge_dash_input  -- merge -
expect_usage_error bad_bug_name      -- --bugs no_such_bug
expect_usage_error duplicate_bug     -- --bugs add_carry_stuck,add_carry_stuck
expect_usage_error bad_mode          -- --modes sideways
expect_usage_error shard_malformed   -- --shard 4of4
expect_usage_error shard_range       -- --shard 4/4
expect_usage_error portfolio_zero    -- --portfolio 0
expect_usage_error portfolio_huge    -- --portfolio 99
expect_usage_error unknown_flag      -- --frobnicate
expect_usage_error merge_no_inputs   -- merge

# --help and --list-bugs succeed.
for flag in --help --list-bugs; do
  if "$SEPE_RUN" "$flag" >/dev/null 2>&1; then
    echo "ok: $flag exits 0"
  else
    echo "FAIL: $flag should exit 0"
    FAILURES=$((FAILURES + 1))
  fi
done

# Shard/merge round trip on a small campaign (EDDI-only: no synthesis
# cost): 3 shards, merged in shuffled order, byte-identical to the
# unsharded --threads 1 reference.
CAMPAIGN=(--bugs table1 --rows 2 --modes eddi --bound 4 --max-k 2 --stable-json)
if ! "$SEPE_RUN" "${CAMPAIGN[@]}" --threads 1 --json "$WORK/reference.json" >/dev/null; then
  echo "FAIL: unsharded reference run"
  FAILURES=$((FAILURES + 1))
fi
for i in 0 1 2; do
  if ! "$SEPE_RUN" "${CAMPAIGN[@]}" --shard "$i/3" --json "$WORK/shard$i.json" >/dev/null; then
    echo "FAIL: shard $i/3 run"
    FAILURES=$((FAILURES + 1))
  fi
done
if ! "$SEPE_RUN" merge --output "$WORK/merged.json" \
    "$WORK/shard2.json" "$WORK/shard0.json" "$WORK/shard1.json" 2>/dev/null; then
  echo "FAIL: merge of complete shard set"
  FAILURES=$((FAILURES + 1))
fi
if cmp -s "$WORK/reference.json" "$WORK/merged.json"; then
  echo "ok: merged stable JSON is byte-identical to the unsharded run"
else
  echo "FAIL: merged JSON differs from the unsharded reference:"
  diff "$WORK/reference.json" "$WORK/merged.json"
  FAILURES=$((FAILURES + 1))
fi

# Merge rejects incomplete and overlapping shard sets with exit 1.
for bad in "shard0.json shard1.json" "shard0.json shard0.json shard1.json"; do
  inputs=()
  for f in $bad; do inputs+=("$WORK/$f"); done
  "$SEPE_RUN" merge "${inputs[@]}" >/dev/null 2>&1
  status=$?
  if [ "$status" -eq 1 ]; then
    echo "ok: merge rejects bad set ($bad)"
  else
    echo "FAIL: merge of ($bad) should exit 1, got $status"
    FAILURES=$((FAILURES + 1))
  fi
done

# Portfolio racing must not change the stable report: same campaign with
# --portfolio 3 is byte-identical to the single-config reference.
if ! "$SEPE_RUN" "${CAMPAIGN[@]}" --threads 1 --portfolio 3 \
    --json "$WORK/portfolio.json" >/dev/null; then
  echo "FAIL: portfolio run"
  FAILURES=$((FAILURES + 1))
fi
if cmp -s "$WORK/reference.json" "$WORK/portfolio.json"; then
  echo "ok: --portfolio 3 stable JSON is byte-identical to single-config"
else
  echo "FAIL: portfolio report differs from the single-config reference:"
  diff "$WORK/reference.json" "$WORK/portfolio.json"
  FAILURES=$((FAILURES + 1))
fi

# Checkpoint/resume: a second run against the finished journal does no
# solving and reproduces the same stable JSON.
if ! "$SEPE_RUN" "${CAMPAIGN[@]}" --threads 1 --checkpoint "$WORK/ckpt.json" \
    --json "$WORK/first.json" >/dev/null; then
  echo "FAIL: checkpointed run"
  FAILURES=$((FAILURES + 1))
fi
if ! "$SEPE_RUN" "${CAMPAIGN[@]}" --threads 1 --checkpoint "$WORK/ckpt.json" \
    --json "$WORK/second.json" >/dev/null; then
  echo "FAIL: resumed run"
  FAILURES=$((FAILURES + 1))
fi
if cmp -s "$WORK/first.json" "$WORK/second.json"; then
  echo "ok: checkpoint resume reproduces the report"
else
  echo "FAIL: resumed report differs from the original"
  FAILURES=$((FAILURES + 1))
fi

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES CLI check(s) failed"
  exit 1
fi
echo "all CLI checks passed"
