#!/usr/bin/env bash
# CLI contract test for sepe-run: malformed arguments are usage errors
# (exit 2, diagnostic on stderr), the shard/merge round trip reproduces
# the unsharded stable JSON byte-for-byte, the BTOR2 corpus workload
# (sepe-run corpus DIR) is deterministic, shardable, and survives
# malformed files as per-job diagnostic rows, and the witness pipeline
# (--witness-dir / check-witness) emits self-checking artifacts that
# re-validate without the SAT stack and reject tampering loudly.
#
# Usage: sepe_run_cli_test.sh /path/to/sepe-run [/path/to/tests/corpus]
set -u

SEPE_RUN=${1:?usage: sepe_run_cli_test.sh /path/to/sepe-run [corpus-dir]}
COMMITTED_CORPUS=${2:-}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
FAILURES=0

# expect_usage_error NAME -- ARGS...: the invocation must exit 2 and
# print a diagnostic on stderr.
expect_usage_error() {
  local name=$1
  shift 2
  local stderr_file="$WORK/$name.stderr"
  "$SEPE_RUN" "$@" >/dev/null 2>"$stderr_file"
  local status=$?
  if [ "$status" -ne 2 ]; then
    echo "FAIL: $name: expected exit 2, got $status ($*)"
    FAILURES=$((FAILURES + 1))
  elif [ ! -s "$stderr_file" ]; then
    echo "FAIL: $name: no diagnostic on stderr ($*)"
    FAILURES=$((FAILURES + 1))
  else
    echo "ok: $name"
  fi
}

expect_usage_error threads_zero      -- --threads 0
expect_usage_error threads_garbage   -- --threads abc
expect_usage_error threads_negative  -- --threads -2
expect_usage_error threads_missing   -- --threads
expect_usage_error bound_garbage     -- --bound 6x
expect_usage_error xlen_too_small    -- --xlen 1
expect_usage_error rows_zero         -- --rows 0
expect_usage_error seed_garbage      -- --seed 1.5
expect_usage_error time_cap_negative -- --time-cap -1
expect_usage_error time_cap_nan      -- --time-cap nan
expect_usage_error merge_dash_input  -- merge -
expect_usage_error bad_bug_name      -- --bugs no_such_bug
expect_usage_error duplicate_bug     -- --bugs add_carry_stuck,add_carry_stuck
expect_usage_error bad_mode          -- --modes sideways
expect_usage_error shard_malformed   -- --shard 4of4
expect_usage_error shard_range       -- --shard 4/4
expect_usage_error portfolio_zero    -- --portfolio 0
expect_usage_error portfolio_huge    -- --portfolio 99
expect_usage_error unknown_flag      -- --frobnicate
expect_usage_error merge_no_inputs   -- merge
expect_usage_error corpus_no_dir     -- corpus
expect_usage_error corpus_two_dirs   -- corpus a b
expect_usage_error corpus_bad_flag   -- corpus dir --frobnicate
expect_usage_error corpus_bad_shard  -- corpus dir --shard 9/9
expect_usage_error memory_zero       -- --memory-mb 0
expect_usage_error memory_garbage    -- --memory-mb lots
expect_usage_error memory_missing    -- --memory-mb
expect_usage_error witness_no_files         -- check-witness
expect_usage_error witness_flag_operand     -- check-witness --frobnicate
expect_usage_error witness_contradiction    -- --witness-dir wd --no-witness-check
expect_usage_error witness_contra_dispatch  -- dispatch --witness-dir wd --no-witness-check
expect_usage_error dispatch_workers_zero    -- dispatch --workers 0
expect_usage_error dispatch_workers_bad     -- dispatch --workers abc
expect_usage_error dispatch_owns_shard      -- dispatch --shard 0/2
expect_usage_error dispatch_owns_checkpoint -- dispatch --checkpoint f
expect_usage_error dispatch_steal_after_bad -- dispatch --steal-after -1

# --help and --list-bugs succeed.
for flag in --help --list-bugs; do
  if "$SEPE_RUN" "$flag" >/dev/null 2>&1; then
    echo "ok: $flag exits 0"
  else
    echo "FAIL: $flag should exit 0"
    FAILURES=$((FAILURES + 1))
  fi
done

# Shard/merge round trip on a small campaign (EDDI-only: no synthesis
# cost): 3 shards, merged in shuffled order, byte-identical to the
# unsharded --threads 1 reference.
CAMPAIGN=(--bugs table1 --rows 2 --modes eddi --bound 4 --max-k 2 --stable-json)
if ! "$SEPE_RUN" "${CAMPAIGN[@]}" --threads 1 --json "$WORK/reference.json" >/dev/null; then
  echo "FAIL: unsharded reference run"
  FAILURES=$((FAILURES + 1))
fi
for i in 0 1 2; do
  if ! "$SEPE_RUN" "${CAMPAIGN[@]}" --shard "$i/3" --json "$WORK/shard$i.json" >/dev/null; then
    echo "FAIL: shard $i/3 run"
    FAILURES=$((FAILURES + 1))
  fi
done
if ! "$SEPE_RUN" merge --output "$WORK/merged.json" \
    "$WORK/shard2.json" "$WORK/shard0.json" "$WORK/shard1.json" 2>/dev/null; then
  echo "FAIL: merge of complete shard set"
  FAILURES=$((FAILURES + 1))
fi
if cmp -s "$WORK/reference.json" "$WORK/merged.json"; then
  echo "ok: merged stable JSON is byte-identical to the unsharded run"
else
  echo "FAIL: merged JSON differs from the unsharded reference:"
  diff "$WORK/reference.json" "$WORK/merged.json"
  FAILURES=$((FAILURES + 1))
fi

# Merge rejects incomplete and overlapping shard sets with exit 1.
for bad in "shard0.json shard1.json" "shard0.json shard0.json shard1.json"; do
  inputs=()
  for f in $bad; do inputs+=("$WORK/$f"); done
  "$SEPE_RUN" merge "${inputs[@]}" >/dev/null 2>&1
  status=$?
  if [ "$status" -eq 1 ]; then
    echo "ok: merge rejects bad set ($bad)"
  else
    echo "FAIL: merge of ($bad) should exit 1, got $status"
    FAILURES=$((FAILURES + 1))
  fi
done

# Portfolio racing must not change the stable report: same campaign with
# --portfolio 3 is byte-identical to the single-config reference.
if ! "$SEPE_RUN" "${CAMPAIGN[@]}" --threads 1 --portfolio 3 \
    --json "$WORK/portfolio.json" >/dev/null; then
  echo "FAIL: portfolio run"
  FAILURES=$((FAILURES + 1))
fi
if cmp -s "$WORK/reference.json" "$WORK/portfolio.json"; then
  echo "ok: --portfolio 3 stable JSON is byte-identical to single-config"
else
  echo "FAIL: portfolio report differs from the single-config reference:"
  diff "$WORK/reference.json" "$WORK/portfolio.json"
  FAILURES=$((FAILURES + 1))
fi

# Checkpoint/resume: a second run against the finished journal does no
# solving and reproduces the same stable JSON.
if ! "$SEPE_RUN" "${CAMPAIGN[@]}" --threads 1 --checkpoint "$WORK/ckpt.json" \
    --json "$WORK/first.json" >/dev/null; then
  echo "FAIL: checkpointed run"
  FAILURES=$((FAILURES + 1))
fi
if ! "$SEPE_RUN" "${CAMPAIGN[@]}" --threads 1 --checkpoint "$WORK/ckpt.json" \
    --json "$WORK/second.json" >/dev/null; then
  echo "FAIL: resumed run"
  FAILURES=$((FAILURES + 1))
fi
if cmp -s "$WORK/first.json" "$WORK/second.json"; then
  echo "ok: checkpoint resume reproduces the report"
else
  echo "FAIL: resumed report differs from the original"
  FAILURES=$((FAILURES + 1))
fi

# --- the verdict cache ---

# A warm run against the same --cache directory serves every job from
# the journal and the stable JSON is byte-identical to the reference.
if ! "$SEPE_RUN" "${CAMPAIGN[@]}" --threads 1 --cache "$WORK/cache-dir" \
    --json "$WORK/cache-cold.json" >/dev/null; then
  echo "FAIL: cold cached run"
  FAILURES=$((FAILURES + 1))
fi
if ! "$SEPE_RUN" "${CAMPAIGN[@]}" --threads 1 --cache "$WORK/cache-dir" \
    --json "$WORK/cache-warm.json" >/dev/null; then
  echo "FAIL: warm cached run"
  FAILURES=$((FAILURES + 1))
fi
if cmp -s "$WORK/reference.json" "$WORK/cache-cold.json" \
    && cmp -s "$WORK/reference.json" "$WORK/cache-warm.json"; then
  echo "ok: --cache warm rerun is byte-identical to the uncached reference"
else
  echo "FAIL: cached report differs from the uncached reference"
  diff "$WORK/reference.json" "$WORK/cache-warm.json"
  FAILURES=$((FAILURES + 1))
fi

# A poisoned journal (hand-edited verdict, appended garbage) degrades to
# misses with a diagnostic — the run still completes with a report that
# is byte-identical to the reference, never a wrong verdict.
sed -i '1s/"verdict":"./"verdict":"X/' "$WORK/cache-dir/verdicts.jsonl"
echo 'this is not a journal line' >> "$WORK/cache-dir/verdicts.jsonl"
if ! "$SEPE_RUN" "${CAMPAIGN[@]}" --threads 1 --cache "$WORK/cache-dir" \
    --json "$WORK/cache-poisoned.json" >/dev/null 2>"$WORK/cache-poisoned.log"; then
  echo "FAIL: run against a poisoned cache"
  cat "$WORK/cache-poisoned.log"
  FAILURES=$((FAILURES + 1))
fi
if ! grep -q "verdict cache: ignoring corrupt entry" "$WORK/cache-poisoned.log"; then
  echo "FAIL: no corrupt-entry diagnostic on stderr:"
  cat "$WORK/cache-poisoned.log"
  FAILURES=$((FAILURES + 1))
elif cmp -s "$WORK/reference.json" "$WORK/cache-poisoned.json"; then
  echo "ok: poisoned cache entries are re-solved, diagnostic printed"
else
  echo "FAIL: post-poisoning report differs from the reference:"
  diff "$WORK/reference.json" "$WORK/cache-poisoned.json"
  FAILURES=$((FAILURES + 1))
fi

# An unusable cache directory is a hard error, not a silent no-cache run.
: > "$WORK/cache-blocker"
"$SEPE_RUN" "${CAMPAIGN[@]}" --cache "$WORK/cache-blocker/sub" \
    >/dev/null 2>"$WORK/cache-bad.log"
status=$?
if [ "$status" -ne 0 ] && grep -q "verdict cache" "$WORK/cache-bad.log"; then
  echo "ok: unusable --cache directory is a hard error"
else
  echo "FAIL: unusable --cache dir should fail with a diagnostic, got $status"
  FAILURES=$((FAILURES + 1))
fi

# --- the multi-process dispatcher ---

# Dispatching the campaign over worker processes merges byte-identically
# to the unsharded reference.
if ! "$SEPE_RUN" dispatch --workers 2 --shards 3 "${CAMPAIGN[@]}" \
    --json "$WORK/dispatched.json" >/dev/null 2>"$WORK/dispatch.log"; then
  echo "FAIL: dispatch run"
  cat "$WORK/dispatch.log"
  FAILURES=$((FAILURES + 1))
fi
if cmp -s "$WORK/reference.json" "$WORK/dispatched.json"; then
  echo "ok: dispatched stable JSON is byte-identical to the unsharded run"
else
  echo "FAIL: dispatched JSON differs from the unsharded reference:"
  diff "$WORK/reference.json" "$WORK/dispatched.json"
  FAILURES=$((FAILURES + 1))
fi

# A worker killed mid-shard (SIGKILL after its first journaled job, via
# the claim-once fault token) is retried from its checkpoint journal and
# the merged report is still byte-identical to the reference.
touch "$WORK/kill.token"
if ! SEPE_RUN_KILL_TOKEN="$WORK/kill.token" "$SEPE_RUN" dispatch \
    --workers 1 --shards 1 "${CAMPAIGN[@]}" \
    --json "$WORK/dispatched-kill.json" >/dev/null 2>"$WORK/dispatch-kill.log"; then
  echo "FAIL: dispatch run with a killed worker"
  cat "$WORK/dispatch-kill.log"
  FAILURES=$((FAILURES + 1))
fi
if [ ! -e "$WORK/kill.token.claimed" ]; then
  echo "FAIL: no worker claimed the kill token"
  FAILURES=$((FAILURES + 1))
elif ! grep -q "crashed (signal 9)" "$WORK/dispatch-kill.log" \
    || ! grep -q "resuming 1 journaled jobs" "$WORK/dispatch-kill.log"; then
  echo "FAIL: dispatcher log is missing the crash/resume trail:"
  cat "$WORK/dispatch-kill.log"
  FAILURES=$((FAILURES + 1))
elif cmp -s "$WORK/reference.json" "$WORK/dispatched-kill.json"; then
  echo "ok: a killed worker is retried from its journal, byte-identical merge"
else
  echo "FAIL: post-kill merged JSON differs from the unsharded reference:"
  diff "$WORK/reference.json" "$WORK/dispatched-kill.json"
  FAILURES=$((FAILURES + 1))
fi

# A hung worker (claim-once hang token) is out-raced: its shard is
# stolen from a journal snapshot by the idle worker, the straggler is
# terminated, and the merge is still byte-identical.
touch "$WORK/hang.token"
if ! SEPE_RUN_HANG_TOKEN="$WORK/hang.token" "$SEPE_RUN" dispatch \
    --workers 2 --steal-after 0.2 "${CAMPAIGN[@]}" \
    --json "$WORK/dispatched-hang.json" >/dev/null 2>"$WORK/dispatch-hang.log"; then
  echo "FAIL: dispatch run with a hung worker"
  cat "$WORK/dispatch-hang.log"
  FAILURES=$((FAILURES + 1))
fi
if ! grep -q "steal:" "$WORK/dispatch-hang.log" \
    || ! grep -q "terminated (shard already won)" "$WORK/dispatch-hang.log"; then
  echo "FAIL: dispatcher log is missing the steal/termination trail:"
  cat "$WORK/dispatch-hang.log"
  FAILURES=$((FAILURES + 1))
elif cmp -s "$WORK/reference.json" "$WORK/dispatched-hang.json"; then
  echo "ok: a hung worker's shard is stolen, byte-identical merge"
else
  echo "FAIL: post-hang merged JSON differs from the unsharded reference:"
  diff "$WORK/reference.json" "$WORK/dispatched-hang.json"
  FAILURES=$((FAILURES + 1))
fi

# The unified fault plan drives the same worker-kill drill: SEPE_FAULT's
# worker.job_done:kill@token entry must behave exactly like the legacy
# SEPE_RUN_KILL_TOKEN alias exercised above.
touch "$WORK/kill2.token"
if ! SEPE_FAULT="point=worker.job_done:kill@token:$WORK/kill2.token" \
    "$SEPE_RUN" dispatch --workers 1 --shards 1 "${CAMPAIGN[@]}" \
    --json "$WORK/dispatched-kill2.json" >/dev/null 2>"$WORK/dispatch-kill2.log"; then
  echo "FAIL: dispatch run with a SEPE_FAULT-killed worker"
  cat "$WORK/dispatch-kill2.log"
  FAILURES=$((FAILURES + 1))
fi
if [ ! -e "$WORK/kill2.token.claimed" ]; then
  echo "FAIL: no worker claimed the SEPE_FAULT kill token"
  FAILURES=$((FAILURES + 1))
elif ! grep -q "crashed (signal 9)" "$WORK/dispatch-kill2.log" \
    || ! grep -q "resuming 1 journaled jobs" "$WORK/dispatch-kill2.log"; then
  echo "FAIL: dispatcher log is missing the SEPE_FAULT crash/resume trail:"
  cat "$WORK/dispatch-kill2.log"
  FAILURES=$((FAILURES + 1))
elif cmp -s "$WORK/reference.json" "$WORK/dispatched-kill2.json"; then
  echo "ok: SEPE_FAULT worker kill matches the legacy token drill"
else
  echo "FAIL: post-SEPE_FAULT-kill merged JSON differs from the reference:"
  diff "$WORK/reference.json" "$WORK/dispatched-kill2.json"
  FAILURES=$((FAILURES + 1))
fi

# A malformed fault plan must never take down a production run: the run
# proceeds un-instrumented with a diagnostic on stderr.
if SEPE_FAULT="point=frobnicate" "$SEPE_RUN" "${CAMPAIGN[@]}" --threads 1 \
    --json "$WORK/badplan.json" >/dev/null 2>"$WORK/badplan.log" \
    && grep -q "ignoring malformed SEPE_FAULT" "$WORK/badplan.log" \
    && cmp -s "$WORK/reference.json" "$WORK/badplan.json"; then
  echo "ok: malformed SEPE_FAULT is diagnosed and ignored"
else
  echo "FAIL: malformed SEPE_FAULT should be diagnosed and leave the run intact"
  cat "$WORK/badplan.log"
  FAILURES=$((FAILURES + 1))
fi

# --- crash-only envelope: SIGTERM mid-campaign ---

# A worker hangs (interruptibly) after its first journaled job; SIGTERM
# must flush the partial report, exit 143, and leave a checkpoint from
# which a clean rerun reproduces the reference byte-for-byte.
SEPE_FAULT="point=worker.job_done:hang@1" "$SEPE_RUN" "${CAMPAIGN[@]}" \
    --threads 1 --checkpoint "$WORK/term-ckpt.json" \
    --json "$WORK/term-partial.json" >/dev/null 2>&1 &
RUN_PID=$!
for _ in $(seq 1 200); do
  [ -s "$WORK/term-ckpt.json" ] && break
  sleep 0.1
done
kill -TERM "$RUN_PID" 2>/dev/null
wait "$RUN_PID"
status=$?
if [ "$status" -ne 143 ]; then
  echo "FAIL: SIGTERM'd run should exit 143, got $status"
  FAILURES=$((FAILURES + 1))
elif [ ! -s "$WORK/term-ckpt.json" ] || [ ! -s "$WORK/term-partial.json" ]; then
  echo "FAIL: SIGTERM'd run left no checkpoint/partial report"
  FAILURES=$((FAILURES + 1))
else
  echo "ok: SIGTERM flushes the checkpoint and partial report, exits 143"
fi
if "$SEPE_RUN" "${CAMPAIGN[@]}" --threads 1 --checkpoint "$WORK/term-ckpt.json" \
    --json "$WORK/term-resumed.json" >/dev/null 2>&1 \
    && cmp -s "$WORK/reference.json" "$WORK/term-resumed.json"; then
  echo "ok: resume after SIGTERM is byte-identical to the uninterrupted run"
else
  echo "FAIL: post-SIGTERM resume differs from the reference:"
  diff "$WORK/reference.json" "$WORK/term-resumed.json"
  FAILURES=$((FAILURES + 1))
fi

# --- per-job memory ceiling ---

# A starved job degrades to a *diagnosed* UNKNOWN row (exit 3), never an
# abort; the diagnosis travels in the stable report.
OOM_RUN=(--bugs table1 --rows 1 --modes eddi --bound 8 --max-k 2
         --memory-mb 1 --stable-json)
"$SEPE_RUN" "${OOM_RUN[@]}" --threads 1 --json "$WORK/oom.json" >/dev/null 2>&1
status=$?
if [ "$status" -eq 3 ] && grep -q '"error": "resource: memory"' "$WORK/oom.json"; then
  echo "ok: --memory-mb starvation degrades to a diagnosed UNKNOWN row"
else
  echo "FAIL: --memory-mb run should exit 3 with a 'resource: memory' row, got $status"
  cat "$WORK/oom.json" 2>/dev/null
  FAILURES=$((FAILURES + 1))
fi

# --- BTOR2 corpus workload ---

# A nonexistent corpus directory is an I/O failure (exit 1).
"$SEPE_RUN" corpus "$WORK/no-such-dir" >/dev/null 2>&1
if [ $? -eq 1 ]; then
  echo "ok: corpus rejects a missing directory with exit 1"
else
  echo "FAIL: corpus of a missing directory should exit 1"
  FAILURES=$((FAILURES + 1))
fi

# Temp corpus: a single-property file, a multi-property file (fans out)
# and a malformed file (must become an UNKNOWN row, not an abort).
CORPUS="$WORK/corpus"
mkdir -p "$CORPUS"
cat > "$CORPUS/counter.btor2" <<'EOF'
1 sort bitvec 4
2 sort bitvec 1
10 state 1 cnt
11 constd 1 0
12 init 1 10 11
13 constd 1 1
14 add 1 10 13
15 next 1 10 14
16 constd 1 5
17 eq 2 10 16
18 bad 17 ; cnt-five
EOF
cat > "$CORPUS/multi.btor2" <<'EOF'
1 sort bitvec 4
2 sort bitvec 1
10 state 1 cnt
11 constd 1 0
12 init 1 10 11
13 constd 1 1
14 add 1 10 13
15 next 1 10 14
16 constd 1 3
17 eq 2 10 16
18 bad 17 ; cnt-three
20 state 2 frozen
21 zero 2
22 init 2 20 21
23 next 2 20 20
24 one 2
25 eq 2 20 24
26 bad 25 ; frozen-one
EOF
cat > "$CORPUS/broken.btor2" <<'EOF'
1 sort bitvec 4
10 state 1 s
11 frobnicate 1 10
EOF

CORPUS_RUN=(corpus "$CORPUS" --bound 8 --max-k 3 --stable-json)
"$SEPE_RUN" "${CORPUS_RUN[@]}" --threads 1 --json "$WORK/corpus-ref.json" >/dev/null
status=$?
if [ "$status" -eq 3 ]; then
  echo "ok: corpus campaign with a malformed file exits 3 (UNKNOWN rows)"
else
  echo "FAIL: corpus campaign should exit 3, got $status"
  FAILURES=$((FAILURES + 1))
fi
if grep -q '"workload": "btor2"' "$WORK/corpus-ref.json" \
    && grep -q '"name": "multi.btor2:b1"' "$WORK/corpus-ref.json" \
    && grep -q '"error": "line 3' "$WORK/corpus-ref.json"; then
  echo "ok: corpus report carries workload provenance, fan-out, and the parse error"
else
  echo "FAIL: corpus stable JSON is missing expected rows:"
  cat "$WORK/corpus-ref.json"
  FAILURES=$((FAILURES + 1))
fi

# Byte-determinism across thread counts.
"$SEPE_RUN" "${CORPUS_RUN[@]}" --threads 4 --json "$WORK/corpus-t4.json" >/dev/null
if cmp -s "$WORK/corpus-ref.json" "$WORK/corpus-t4.json"; then
  echo "ok: corpus stable JSON is byte-identical across thread counts"
else
  echo "FAIL: corpus report differs across thread counts"
  FAILURES=$((FAILURES + 1))
fi

# Shard/merge round trip on the corpus campaign.
for i in 0 1; do
  "$SEPE_RUN" "${CORPUS_RUN[@]}" --shard "$i/2" \
    --json "$WORK/corpus-shard$i.json" >/dev/null
done
if "$SEPE_RUN" merge --output "$WORK/corpus-merged.json" \
    "$WORK/corpus-shard1.json" "$WORK/corpus-shard0.json" 2>/dev/null; then
  : # merge exits 3 on UNKNOWN rows, caught below via the byte diff
fi
if cmp -s "$WORK/corpus-ref.json" "$WORK/corpus-merged.json"; then
  echo "ok: merged corpus shards are byte-identical to the unsharded run"
else
  echo "FAIL: merged corpus report differs from the unsharded reference:"
  diff "$WORK/corpus-ref.json" "$WORK/corpus-merged.json"
  FAILURES=$((FAILURES + 1))
fi

# The dispatcher is workload-family agnostic: dispatching the corpus
# campaign (UNKNOWN parse-error row included, hence exit 3) merges
# byte-identically too.
"$SEPE_RUN" dispatch --workers 2 --shards 3 "${CORPUS_RUN[@]}" \
    --json "$WORK/corpus-dispatched.json" >/dev/null 2>&1
status=$?
if [ "$status" -ne 3 ]; then
  echo "FAIL: corpus dispatch should exit 3 (UNKNOWN rows), got $status"
  FAILURES=$((FAILURES + 1))
fi
if cmp -s "$WORK/corpus-ref.json" "$WORK/corpus-dispatched.json"; then
  echo "ok: dispatched corpus campaign is byte-identical to the unsharded run"
else
  echo "FAIL: dispatched corpus JSON differs from the unsharded reference:"
  diff "$WORK/corpus-ref.json" "$WORK/corpus-dispatched.json"
  FAILURES=$((FAILURES + 1))
fi

# Editing a corpus file invalidates the checkpoint (content digests are
# part of the spec digest): the resume is refused with exit 1.
"$SEPE_RUN" "${CORPUS_RUN[@]}" --checkpoint "$WORK/corpus-ckpt.json" >/dev/null 2>&1
sed -i 's/constd 1 5/constd 1 4/' "$CORPUS/counter.btor2"
"$SEPE_RUN" "${CORPUS_RUN[@]}" --checkpoint "$WORK/corpus-ckpt.json" \
    >/dev/null 2>"$WORK/corpus-ckpt.stderr"
status=$?
if [ "$status" -eq 1 ] && grep -q "corpus file" "$WORK/corpus-ckpt.stderr"; then
  echo "ok: resume against an edited corpus file is refused"
else
  echo "FAIL: edited-corpus resume should exit 1 with a diagnostic, got $status"
  cat "$WORK/corpus-ckpt.stderr"
  FAILURES=$((FAILURES + 1))
fi

# --- witness artifacts ---

# A fresh two-file corpus with known-falsifiable properties (the earlier
# one was edited by the checkpoint-invalidation drill).
WITCORPUS="$WORK/witcorpus"
mkdir -p "$WITCORPUS"
sed 's/constd 1 4/constd 1 5/' "$CORPUS/counter.btor2" > "$WITCORPUS/counter.btor2"
cp "$CORPUS/multi.btor2" "$WITCORPUS/multi.btor2"
WITRUN=(corpus "$WITCORPUS" --bound 8 --max-k 3 --stable-json)

# A campaign with --witness-dir writes one artifact per FALSIFIED row
# (counter.btor2 and multi.btor2:b0 falsify; b1 holds) and the stable
# JSON is byte-identical with witness checking on (the default), off
# (--no-witness-check), and with artifact emission enabled.
if ! "$SEPE_RUN" "${WITRUN[@]}" --threads 1 --witness-dir "$WORK/witnesses" \
    --json "$WORK/wit-on.json" >/dev/null; then
  echo "FAIL: corpus campaign with --witness-dir"
  FAILURES=$((FAILURES + 1))
fi
if ! "$SEPE_RUN" "${WITRUN[@]}" --threads 1 --no-witness-check \
    --json "$WORK/wit-off.json" >/dev/null; then
  echo "FAIL: corpus campaign with --no-witness-check"
  FAILURES=$((FAILURES + 1))
fi
if cmp -s "$WORK/wit-on.json" "$WORK/wit-off.json"; then
  echo "ok: witness checking is observationally invisible in the stable JSON"
else
  echo "FAIL: stable JSON differs with witness checking on vs off:"
  diff "$WORK/wit-on.json" "$WORK/wit-off.json"
  FAILURES=$((FAILURES + 1))
fi
ARTIFACTS=("$WORK"/witnesses/*.witness)
if [ ${#ARTIFACTS[@]} -eq 2 ] && [ -s "${ARTIFACTS[0]}" ]; then
  echo "ok: one artifact per FALSIFIED row (${#ARTIFACTS[@]} total)"
else
  echo "FAIL: expected 2 witness artifacts, found: ${ARTIFACTS[*]}"
  FAILURES=$((FAILURES + 1))
fi

# check-witness re-validates every artifact with the simulator only.
if "$SEPE_RUN" check-witness "${ARTIFACTS[@]}" > "$WORK/check.out" 2>&1 \
    && grep -q "valid witness" "$WORK/check.out"; then
  echo "ok: check-witness validates the emitted artifacts"
else
  echo "FAIL: check-witness should accept freshly emitted artifacts:"
  cat "$WORK/check.out"
  FAILURES=$((FAILURES + 1))
fi

# A tampered artifact (header edit breaks the self-check seal) and a
# missing file are rejections: exit 1 with a REJECTED diagnostic, never
# silent.
cp "${ARTIFACTS[0]}" "$WORK/tampered.witness"
sed -i '1s/"name":"/"name":"x/' "$WORK/tampered.witness"
"$SEPE_RUN" check-witness "$WORK/tampered.witness" "${ARTIFACTS[1]}" \
    >/dev/null 2>"$WORK/tamper.log"
status=$?
if [ "$status" -eq 1 ] && grep -q "REJECTED" "$WORK/tamper.log"; then
  echo "ok: a tampered artifact is rejected loudly (exit 1)"
else
  echo "FAIL: tampered artifact should exit 1 with REJECTED, got $status:"
  cat "$WORK/tamper.log"
  FAILURES=$((FAILURES + 1))
fi
"$SEPE_RUN" check-witness "$WORK/no-such.witness" >/dev/null 2>&1
if [ $? -eq 1 ]; then
  echo "ok: check-witness of a missing file exits 1"
else
  echo "FAIL: check-witness of a missing file should exit 1"
  FAILURES=$((FAILURES + 1))
fi

# Artifact-write faults degrade to a diagnostic: the run completes, the
# verdicts and stable JSON are untouched, only the artifact is missing.
if SEPE_FAULT="point=witness.write:enospc" "$SEPE_RUN" "${WITRUN[@]}" \
    --threads 1 --witness-dir "$WORK/witnesses-enospc" \
    --json "$WORK/wit-enospc.json" >/dev/null 2>"$WORK/wit-enospc.log" \
    && grep -q "cannot write artifact" "$WORK/wit-enospc.log" \
    && cmp -s "$WORK/wit-on.json" "$WORK/wit-enospc.json" \
    && [ -z "$(ls "$WORK/witnesses-enospc" 2>/dev/null)" ]; then
  echo "ok: witness.write fault degrades to a diagnostic, verdicts unaffected"
else
  echo "FAIL: witness.write fault should leave the run intact minus artifacts:"
  cat "$WORK/wit-enospc.log"
  FAILURES=$((FAILURES + 1))
fi

# The dispatcher forwards --witness-dir to its workers and cross-checks
# the merged report against the artifacts; the merge stays byte-identical.
if ! "$SEPE_RUN" dispatch --workers 2 --shards 2 "${WITRUN[@]}" \
    --witness-dir "$WORK/wit-dispatch" \
    --json "$WORK/wit-dispatched.json" >/dev/null 2>"$WORK/wit-dispatch.log"; then
  echo "FAIL: dispatch run with --witness-dir"
  cat "$WORK/wit-dispatch.log"
  FAILURES=$((FAILURES + 1))
fi
if cmp -s "$WORK/wit-on.json" "$WORK/wit-dispatched.json" \
    && "$SEPE_RUN" check-witness "$WORK"/wit-dispatch/*.witness >/dev/null 2>&1; then
  echo "ok: dispatched witness artifacts cross-check and merge byte-identically"
else
  echo "FAIL: dispatched witness run differs from the unsharded reference:"
  diff "$WORK/wit-on.json" "$WORK/wit-dispatched.json"
  FAILURES=$((FAILURES + 1))
fi

# The committed mini-corpus (QED dumps included) must expand and stay
# deterministic too; a shallow bound keeps this Debug-build friendly.
if [ -n "$COMMITTED_CORPUS" ] && [ -d "$COMMITTED_CORPUS" ]; then
  MINI=(corpus "$COMMITTED_CORPUS" --bound 2 --max-k 1 --stable-json)
  "$SEPE_RUN" "${MINI[@]}" --threads 1 --json "$WORK/mini-ref.json" >/dev/null \
    || { echo "FAIL: committed mini-corpus run"; FAILURES=$((FAILURES + 1)); }
  "$SEPE_RUN" "${MINI[@]}" --threads 2 --json "$WORK/mini-t2.json" >/dev/null \
    || { echo "FAIL: committed mini-corpus threaded run"; FAILURES=$((FAILURES + 1)); }
  if cmp -s "$WORK/mini-ref.json" "$WORK/mini-t2.json" \
      && grep -q '"source": "qed_edsep_xor_as_or.btor2"' "$WORK/mini-ref.json"; then
    echo "ok: committed mini-corpus is deterministic and includes the QED dumps"
  else
    echo "FAIL: committed mini-corpus report is wrong:"
    cat "$WORK/mini-ref.json"
    FAILURES=$((FAILURES + 1))
  fi
fi

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES CLI check(s) failed"
  exit 1
fi
echo "all CLI checks passed"
