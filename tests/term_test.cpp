// Unit and property tests for the term DAG and evaluator.
#include <gtest/gtest.h>

#include "smt/eval.hpp"
#include "smt/term.hpp"
#include "util/rng.hpp"

namespace sepe::smt {
namespace {

TEST(Term, HashConsingSharesNodes) {
  TermManager m;
  const TermRef a = m.mk_var("a", 32), b = m.mk_var("b", 32);
  EXPECT_EQ(m.mk_add(a, b), m.mk_add(a, b));
  EXPECT_EQ(m.mk_add(a, b), m.mk_add(b, a));  // commutative canonicalization
  EXPECT_EQ(m.mk_var("a", 32), a);
}

TEST(Term, ConstantFolding) {
  TermManager m;
  const TermRef c1 = m.mk_const(32, 20), c2 = m.mk_const(32, 22);
  const TermRef sum = m.mk_add(c1, c2);
  ASSERT_EQ(m.node(sum).op, Op::Const);
  EXPECT_EQ(m.node(sum).value.uval(), 42u);
}

TEST(Term, AlgebraicSimplifications) {
  TermManager m;
  const TermRef a = m.mk_var("a", 16);
  const TermRef zero = m.mk_const(16, 0);
  EXPECT_EQ(m.mk_add(a, zero), a);
  EXPECT_EQ(m.mk_xor(a, a), zero);
  EXPECT_EQ(m.mk_sub(a, a), zero);
  EXPECT_EQ(m.mk_and(a, a), a);
  EXPECT_EQ(m.mk_or(a, a), a);
  EXPECT_EQ(m.mk_not(m.mk_not(a)), a);
  EXPECT_EQ(m.mk_eq(a, a), m.mk_true());
  EXPECT_EQ(m.mk_and(a, m.mk_const(BitVec::ones(16))), a);
  EXPECT_EQ(m.mk_mul(a, m.mk_const(16, 1)), a);
}

TEST(Term, IteSimplification) {
  TermManager m;
  const TermRef a = m.mk_var("a", 8), b = m.mk_var("b", 8);
  EXPECT_EQ(m.mk_ite(m.mk_true(), a, b), a);
  EXPECT_EQ(m.mk_ite(m.mk_false(), a, b), b);
  EXPECT_EQ(m.mk_ite(m.mk_var("c", 1), a, a), a);
}

TEST(Term, WidthTracking) {
  TermManager m;
  const TermRef a = m.mk_var("a", 12);
  EXPECT_EQ(m.width(m.mk_sext(a, 32)), 32u);
  EXPECT_EQ(m.width(m.mk_extract(a, 7, 4)), 4u);
  EXPECT_EQ(m.width(m.mk_concat(a, a)), 24u);
  EXPECT_EQ(m.width(m.mk_ult(a, a)), 1u);
}

TEST(Term, ToStringRendersSExpr) {
  TermManager m;
  const TermRef a = m.mk_var("a", 8), b = m.mk_var("b", 8);
  EXPECT_EQ(m.to_string(m.mk_sub(a, b)), "(bvsub a b)");
}

TEST(Eval, VariablesAndDefaults) {
  TermManager m;
  const TermRef a = m.mk_var("a", 8);
  Assignment asg{{a, BitVec(8, 7)}};
  EXPECT_EQ(eval_term(m, a, asg).uval(), 7u);
  const TermRef unbound = m.mk_var("unbound", 8);
  EXPECT_EQ(eval_term(m, unbound, asg).uval(), 0u);  // don't-care completion
}

// Property: evaluator agrees with BitVec op-by-op on random inputs.
struct OpCase {
  const char* name;
  TermRef (TermManager::*mk)(TermRef, TermRef);
  BitVec (*ref)(const BitVec&, const BitVec&);
};

class EvalBinopTest : public ::testing::TestWithParam<OpCase> {};

TEST_P(EvalBinopTest, MatchesBitVec) {
  const OpCase& oc = GetParam();
  TermManager m;
  const TermRef a = m.mk_var("a", 16), b = m.mk_var("b", 16);
  const TermRef t = (m.*oc.mk)(a, b);
  Rng rng(0x5eed);
  for (int i = 0; i < 300; ++i) {
    const BitVec x = rng.interesting_bitvec(16), y = rng.interesting_bitvec(16);
    Assignment asg{{a, x}, {b, y}};
    EXPECT_EQ(eval_term(m, t, asg), oc.ref(x, y)) << oc.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, EvalBinopTest,
    ::testing::Values(
        OpCase{"add", &TermManager::mk_add,
               [](const BitVec& a, const BitVec& b) { return a + b; }},
        OpCase{"sub", &TermManager::mk_sub,
               [](const BitVec& a, const BitVec& b) { return a - b; }},
        OpCase{"mul", &TermManager::mk_mul,
               [](const BitVec& a, const BitVec& b) { return a * b; }},
        OpCase{"and", &TermManager::mk_and,
               [](const BitVec& a, const BitVec& b) { return a & b; }},
        OpCase{"or", &TermManager::mk_or,
               [](const BitVec& a, const BitVec& b) { return a | b; }},
        OpCase{"xor", &TermManager::mk_xor,
               [](const BitVec& a, const BitVec& b) { return a ^ b; }},
        OpCase{"udiv", &TermManager::mk_udiv,
               [](const BitVec& a, const BitVec& b) { return a.udiv(b); }},
        OpCase{"urem", &TermManager::mk_urem,
               [](const BitVec& a, const BitVec& b) { return a.urem(b); }},
        OpCase{"sdiv", &TermManager::mk_sdiv,
               [](const BitVec& a, const BitVec& b) { return a.sdiv(b); }},
        OpCase{"srem", &TermManager::mk_srem,
               [](const BitVec& a, const BitVec& b) { return a.srem(b); }},
        OpCase{"shl", &TermManager::mk_shl,
               [](const BitVec& a, const BitVec& b) { return a.shl(b); }},
        OpCase{"lshr", &TermManager::mk_lshr,
               [](const BitVec& a, const BitVec& b) { return a.lshr(b); }},
        OpCase{"ashr", &TermManager::mk_ashr,
               [](const BitVec& a, const BitVec& b) { return a.ashr(b); }},
        OpCase{"ult", &TermManager::mk_ult,
               [](const BitVec& a, const BitVec& b) { return a.ult(b); }},
        OpCase{"slt", &TermManager::mk_slt,
               [](const BitVec& a, const BitVec& b) { return a.slt(b); }},
        OpCase{"eq", &TermManager::mk_eq,
               [](const BitVec& a, const BitVec& b) { return a.eq(b); }}),
    [](const ::testing::TestParamInfo<OpCase>& info) { return info.param.name; });

TEST(Eval, DeepDagDoesNotOverflowStack) {
  // 100k-node chain — recursion would crash; the evaluator must iterate.
  TermManager m;
  TermRef t = m.mk_var("x", 8);
  const TermRef one = m.mk_const(8, 1);
  for (int i = 0; i < 100000; ++i) t = m.mk_add(m.mk_xor(t, one), one);
  Assignment asg{{m.mk_var("x", 8), BitVec(8, 0)}};
  (void)eval_term(m, t, asg);  // must not crash
}

TEST(Eval, StructuralOps) {
  TermManager m;
  const TermRef a = m.mk_var("a", 8);
  Assignment asg{{a, BitVec(8, 0xa5)}};
  EXPECT_EQ(eval_term(m, m.mk_extract(a, 7, 4), asg).uval(), 0xau);
  EXPECT_EQ(eval_term(m, m.mk_sext(a, 16), asg).uval(), 0xffa5u);
  EXPECT_EQ(eval_term(m, m.mk_zext(a, 16), asg).uval(), 0x00a5u);
  EXPECT_EQ(eval_term(m, m.mk_concat(a, a), asg).uval(), 0xa5a5u);
  EXPECT_EQ(eval_term(m, m.mk_ite(m.mk_true(), a, m.mk_const(8, 0)), asg).uval(), 0xa5u);
}

}  // namespace
}  // namespace sepe::smt
