// Tests for the workload-family abstraction (engine/workload.hpp): the
// BTOR2 corpus source expands one job per bad property with provenance
// and content digests, malformed corpus files become per-job parse-error
// rows instead of campaign aborts, corpus campaigns are byte-
// deterministic across thread counts, an edited corpus file refuses a
// checkpoint resume, and the pinned QED models survive a
// to_btor2 -> parse_btor2 round trip behaviourally intact.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bmc/bmc.hpp"
#include "engine/pinned_table.hpp"
#include "engine/report_io.hpp"
#include "engine/shard.hpp"
#include "engine/workload.hpp"
#include "proc/mutations.hpp"
#include "ts/btor2_parser.hpp"

namespace sepe::engine {
namespace {

// 4-bit counter, violation at depth 5.
const char kCounterSat[] =
    "1 sort bitvec 4\n"
    "2 sort bitvec 1\n"
    "10 state 1 cnt\n"
    "11 constd 1 0\n"
    "12 init 1 10 11\n"
    "13 constd 1 1\n"
    "14 add 1 10 13\n"
    "15 next 1 10 14\n"
    "16 constd 1 5\n"
    "17 eq 2 10 16\n"
    "18 bad 17 ; cnt-five\n";

// Two properties: b0 falsified at depth 3, b1 proved by k-induction.
const char kMultiProp[] =
    "1 sort bitvec 4\n"
    "2 sort bitvec 1\n"
    "10 state 1 cnt\n"
    "11 constd 1 0\n"
    "12 init 1 10 11\n"
    "13 constd 1 1\n"
    "14 add 1 10 13\n"
    "15 next 1 10 14\n"
    "16 constd 1 3\n"
    "17 eq 2 10 16\n"
    "18 bad 17 ; cnt-three\n"
    "20 state 2 frozen\n"
    "21 zero 2\n"
    "22 init 2 20 21\n"
    "23 next 2 20 20\n"
    "24 one 2\n"
    "25 eq 2 20 24\n"
    "26 bad 25 ; frozen-one\n";

const char kBroken[] =
    "1 sort bitvec 4\n"
    "10 state 1 s\n"
    "11 frobnicate 1 10\n";

JobBudget small_budget() {
  JobBudget b;
  b.max_bound = 8;
  b.max_k = 3;
  return b;
}

/// Temp corpus directory, removed on teardown.
class CorpusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) / "workload_corpus_test";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void write(const std::string& name, const std::string& text) {
    const std::filesystem::path path = dir_ / name;
    std::filesystem::create_directories(path.parent_path());
    std::ofstream out(path);
    out << text;
  }

  CampaignSpec expand_ok(std::uint64_t seed = 1) {
    const Btor2CorpusSource source(dir_.string(), small_budget());
    std::string error;
    const auto spec = expand_source(source, seed, &error);
    EXPECT_TRUE(spec.has_value()) << error;
    return spec.value_or(CampaignSpec{});
  }

  std::filesystem::path dir_;
};

TEST_F(CorpusTest, ExpandsOneJobPerBadPropertyWithProvenance) {
  write("zz_multi.btor2", kMultiProp);
  write("a_counter.btor2", kCounterSat);
  write("nested/deep.btor2", kCounterSat);
  write("ignored.txt", "not a corpus file");
  const CampaignSpec spec = expand_ok(7);
  EXPECT_EQ(spec.seed, 7u);
  ASSERT_EQ(spec.jobs.size(), 4u);
  // Sorted by relative path, multi-property files fan out in order.
  EXPECT_EQ(spec.jobs[0].name, "a_counter.btor2:b0");
  EXPECT_EQ(spec.jobs[1].name, "nested/deep.btor2:b0");
  EXPECT_EQ(spec.jobs[2].name, "zz_multi.btor2:b0");
  EXPECT_EQ(spec.jobs[3].name, "zz_multi.btor2:b1");
  for (const JobSpec& job : spec.jobs) {
    EXPECT_EQ(job.provenance.family, kBtor2Family);
    EXPECT_TRUE(job.provenance.mode.empty());
    EXPECT_EQ(job.provenance.content_digest.size(), 16u);
  }
  EXPECT_EQ(spec.jobs[2].provenance.source, "zz_multi.btor2");
  EXPECT_EQ(spec.jobs[2].provenance.property, 0u);
  EXPECT_EQ(spec.jobs[3].provenance.property, 1u);
  // Same file -> same content digest; different file -> different.
  EXPECT_EQ(spec.jobs[2].provenance.content_digest,
            spec.jobs[3].provenance.content_digest);
  EXPECT_NE(spec.jobs[0].provenance.content_digest,
            spec.jobs[2].provenance.content_digest);
}

TEST_F(CorpusTest, ExpansionFailsOnMissingOrEmptyDirectory) {
  const Btor2CorpusSource missing((dir_ / "nope").string(), small_budget());
  std::string error;
  std::vector<JobSpec> jobs;
  EXPECT_FALSE(missing.expand(&jobs, &error));
  EXPECT_NE(error.find("not a readable directory"), std::string::npos);

  const Btor2CorpusSource empty(dir_.string(), small_budget());
  error.clear();
  EXPECT_FALSE(empty.expand(&jobs, &error));
  EXPECT_NE(error.find("no .btor2 files"), std::string::npos);
}

TEST_F(CorpusTest, MalformedFileBecomesParseErrorRowAndCampaignContinues) {
  write("broken.btor2", kBroken);
  write("counter.btor2", kCounterSat);
  const CampaignSpec spec = expand_ok();
  ASSERT_EQ(spec.jobs.size(), 2u);
  CampaignOptions one;
  one.threads = 1;
  const CampaignReport report = run_campaign(spec, one);
  ASSERT_EQ(report.jobs.size(), 2u);
  // The malformed file is an UNKNOWN row carrying the line-numbered
  // parse diagnostic...
  EXPECT_EQ(report.jobs[0].verdict, Verdict::Unknown);
  EXPECT_EQ(report.jobs[0].winner, Prover::None);
  EXPECT_NE(report.jobs[0].note.find("line 3"), std::string::npos);
  EXPECT_NE(report.jobs[0].note.find("frobnicate"), std::string::npos);
  // ...and the rest of the campaign still runs to a verdict.
  EXPECT_EQ(report.jobs[1].verdict, Verdict::Falsified);
  EXPECT_EQ(report.jobs[1].trace_length, 5u);

  // The diagnostic and the provenance columns travel through the stable
  // JSON and parse back (merge/checkpoint wire format).
  const std::string json = report.to_json(/*include_timing=*/false);
  EXPECT_NE(json.find("\"workload\": \"btor2\""), std::string::npos);
  EXPECT_NE(json.find("\"error\": "), std::string::npos);
  CampaignReport parsed;
  std::string error;
  ASSERT_TRUE(parse_report(json, &parsed, &error)) << error;
  EXPECT_EQ(parsed.jobs[0].note, report.jobs[0].note);
  EXPECT_EQ(parsed.jobs[0].provenance.family, kBtor2Family);
  EXPECT_EQ(parsed.jobs[0].provenance.source, "broken.btor2");
  EXPECT_EQ(parsed.to_json(/*include_timing=*/false), json);
}

TEST_F(CorpusTest, StableJsonIsThreadCountInvariant) {
  write("counter.btor2", kCounterSat);
  write("multi.btor2", kMultiProp);
  write("broken.btor2", kBroken);
  const CampaignSpec spec = expand_ok();
  CampaignOptions seq, par;
  seq.threads = 1;
  par.threads = 4;
  const std::string a = run_campaign(spec, seq).to_json(/*include_timing=*/false);
  const std::string b = run_campaign(spec, par).to_json(/*include_timing=*/false);
  EXPECT_EQ(a, b);
}

TEST_F(CorpusTest, EditedCorpusFileRefusesCheckpointResume) {
  write("counter.btor2", kCounterSat);
  write("multi.btor2", kMultiProp);
  const std::string checkpoint = (dir_ / "checkpoint.json").string();

  ShardRunOptions options;
  options.checkpoint_path = checkpoint;
  options.shard = ShardSpec{0, 1};
  std::string error;
  const CampaignReport first = run_sharded(expand_ok(), options, &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_EQ(first.jobs.size(), 3u);

  // Unchanged corpus: the journal resumes cleanly.
  run_sharded(expand_ok(), options, &error);
  EXPECT_TRUE(error.empty()) << error;

  // Edit one file (the violation moves from 5 to 4): the re-expanded
  // spec has the same job names but different content digests, so the
  // resume must be refused instead of reusing the stale verdict.
  std::string edited = kCounterSat;
  edited.replace(edited.find("16 constd 1 5"), 13, "16 constd 1 4");
  write("counter.btor2", edited);
  run_sharded(expand_ok(), options, &error);
  EXPECT_NE(error.find("different campaign parameters"), std::string::npos);
}

TEST(QedMatrixSource, ExpandsWithQedProvenance) {
  auto bugs = proc::table1_single_instruction_bugs();
  bugs.resize(1);
  CampaignMatrix matrix;
  matrix.modes = {qed::QedMode::EddiV};
  matrix.mutations = bugs;
  const QedMatrixSource source(matrix);
  EXPECT_EQ(source.family(), kQedFamily);
  std::string error;
  const auto spec = expand_source(source, 3, &error);
  ASSERT_TRUE(spec.has_value()) << error;
  ASSERT_EQ(spec->jobs.size(), 1u);
  EXPECT_EQ(spec->jobs[0].provenance.family, kQedFamily);
  EXPECT_EQ(spec->jobs[0].provenance.mode, "EDDI-V");
  EXPECT_EQ(spec->jobs[0].provenance.source, bugs[0].name);
}

// --- BTOR2 round trip across pinned QED models ---

/// Dump the model, parse it back, and require identical BMC behaviour
/// (violation found or not, and at the same depth) up to `bound`.
void expect_btor2_roundtrip(const JobSpec& job, unsigned bound) {
  smt::TermManager mgr;
  ts::TransitionSystem original(mgr);
  std::string build_error;
  ASSERT_TRUE(job.build(original, &build_error)) << build_error;
  const std::string dump = ts::to_btor2(original);

  smt::TermManager mgr2;
  ts::TransitionSystem parsed(mgr2);
  const ts::Btor2ParseResult r = ts::parse_btor2(dump, parsed);
  ASSERT_TRUE(r.ok) << job.name << ": " << r.error;

  bmc::BmcOptions bo;
  bo.max_bound = bound;
  bmc::Bmc check_original(original), check_parsed(parsed);
  const auto w1 = check_original.check(bo);
  const auto w2 = check_parsed.check(bo);
  ASSERT_EQ(w1.has_value(), w2.has_value()) << job.name;
  if (w1) {
    EXPECT_EQ(w1->length, w2->length) << job.name;
    EXPECT_EQ(w1->bad_label, w2->bad_label) << job.name;
  }
}

TEST(QedBtor2RoundTrip, PinnedModelsSurviveDumpAndParse) {
  // Three Table-1 instruction classes in both QED modes: the EDSEP-V
  // side exercises the SAT path (falsified at depth 6), the EDDI-V side
  // a clean sweep — and every QED model carries init constraints, so
  // this also pins the writer's flag-state encoding end to end.
  const auto pinned = make_pinned_table(4);
  auto bugs = proc::table1_single_instruction_bugs();
  bugs.resize(3);
  CampaignMatrix matrix;
  matrix.xlen = 4;
  matrix.equivalences = &pinned->table;
  for (const proc::Mutation& bug : bugs) {
    const proc::ProcConfig config = derive_duv_config(matrix, &bug);
    for (qed::QedMode mode : {qed::QedMode::EddiV, qed::QedMode::EdsepV}) {
      const JobSpec job = make_qed_job(bug.name + std::string("/") + mode_tag(mode),
                                       mode, config, bug, &pinned->table, {});
      // EDDI-V misses single-instruction bugs (clean sweep); keep its
      // bound shallow so the double sweep stays unit-test sized.
      expect_btor2_roundtrip(job, mode == qed::QedMode::EddiV ? 3 : 6);
    }
  }
}

}  // namespace
}  // namespace sepe::engine
