// Cross-checks of the two interpretations of instruction semantics
// (paper §4.1): the concrete BitVec evaluator and the symbolic term
// builder must agree instruction-for-instruction, at every supported
// datapath width. This is the keystone property: CEGIS trusts the
// symbolic side, the ISS and QED testing trust the concrete side.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "isa/semantics.hpp"
#include "smt/eval.hpp"
#include "util/rng.hpp"

namespace sepe::isa {
namespace {

using smt::TermManager;
using smt::TermRef;

std::vector<Opcode> alu_opcodes() {
  return {Opcode::ADD,  Opcode::SUB,   Opcode::SLL,    Opcode::SLT,  Opcode::SLTU,
          Opcode::XOR,  Opcode::SRL,   Opcode::SRA,    Opcode::OR,   Opcode::AND,
          Opcode::ADDI, Opcode::SLTI,  Opcode::SLTIU,  Opcode::XORI, Opcode::ORI,
          Opcode::ANDI, Opcode::SLLI,  Opcode::SRLI,   Opcode::SRAI, Opcode::MUL,
          Opcode::MULH, Opcode::MULHSU, Opcode::MULHU, Opcode::DIV,  Opcode::DIVU,
          Opcode::REM,  Opcode::REMU};
}

TEST(ImmToXlen, SignExtendsOntoWiderDatapaths) {
  EXPECT_EQ(imm_to_xlen(-1, 32), BitVec(32, 0xffffffffULL));
  EXPECT_EQ(imm_to_xlen(-2048, 32), BitVec(32, 0xfffff800ULL));
  EXPECT_EQ(imm_to_xlen(2047, 32), BitVec(32, 0x7ff));
  EXPECT_EQ(imm_to_xlen(5, 16), BitVec(16, 5));
}

TEST(ImmToXlen, TruncatesOntoNarrowDatapaths) {
  EXPECT_EQ(imm_to_xlen(-1, 8), BitVec(8, 0xff));
  EXPECT_EQ(imm_to_xlen(0x7ff, 8), BitVec(8, 0xff));
  EXPECT_EQ(imm_to_xlen(0x123, 8), BitVec(8, 0x23));
}

// Concrete vs symbolic ALU semantics: random sweep per (opcode, width).
class AluCrossCheck : public ::testing::TestWithParam<std::tuple<Opcode, unsigned>> {};

TEST_P(AluCrossCheck, ConcreteAndSymbolicAgree) {
  const auto [op, xlen] = GetParam();
  Rng rng(static_cast<std::uint64_t>(op) * 64 + xlen);
  for (int trial = 0; trial < 60; ++trial) {
    const BitVec a = rng.interesting_bitvec(xlen);
    const BitVec b = rng.interesting_bitvec(xlen);

    const BitVec concrete = alu_concrete(op, a, b);

    TermManager mgr;
    const TermRef ta = mgr.mk_const(a), tb = mgr.mk_const(b);
    const TermRef out = alu_symbolic(mgr, op, ta, tb);
    const BitVec symbolic = smt::eval_term(mgr, out, {});

    ASSERT_EQ(concrete, symbolic)
        << opcode_name(op) << " xlen=" << xlen << " a=" << a.to_hex()
        << " b=" << b.to_hex();
  }
}

INSTANTIATE_TEST_SUITE_P(
    OpsAndWidths, AluCrossCheck,
    ::testing::Combine(::testing::ValuesIn(alu_opcodes()),
                       ::testing::Values(4u, 8u, 16u, 32u)),
    [](const ::testing::TestParamInfo<std::tuple<Opcode, unsigned>>& info) {
      return std::string(opcode_name(std::get<0>(info.param))) + "_w" +
             std::to_string(std::get<1>(info.param));
    });

// RISC-V corner cases that must hold in both interpretations.
TEST(AluCorners, DivisionByZero) {
  for (unsigned xlen : {8u, 32u}) {
    const BitVec a(xlen, 57), zero(xlen, 0);
    EXPECT_EQ(alu_concrete(Opcode::DIVU, a, zero), BitVec::ones(xlen));
    EXPECT_EQ(alu_concrete(Opcode::DIV, a, zero), BitVec::ones(xlen));
    EXPECT_EQ(alu_concrete(Opcode::REMU, a, zero), a);
    EXPECT_EQ(alu_concrete(Opcode::REM, a, zero), a);
  }
}

TEST(AluCorners, SignedDivisionOverflow) {
  for (unsigned xlen : {8u, 16u, 32u}) {
    const BitVec int_min(xlen, 1ULL << (xlen - 1));
    const BitVec minus1 = BitVec::ones(xlen);
    EXPECT_EQ(alu_concrete(Opcode::DIV, int_min, minus1), int_min);
    EXPECT_EQ(alu_concrete(Opcode::REM, int_min, minus1), BitVec::zeros(xlen));
  }
}

TEST(AluCorners, ShiftAmountsAreMaskedLikeRiscv) {
  // Register shifts use only the low log2(xlen) bits of the amount.
  const BitVec a(32, 0x80000000ULL);
  EXPECT_EQ(alu_concrete(Opcode::SRL, a, BitVec(32, 32)), a);   // 32 & 31 == 0
  EXPECT_EQ(alu_concrete(Opcode::SRL, a, BitVec(32, 33)),      // 33 & 31 == 1
            BitVec(32, 0x40000000ULL));
  EXPECT_EQ(alu_concrete(Opcode::SLL, BitVec(32, 1), BitVec(32, 63)),
            BitVec(32, 0x80000000ULL));
}

TEST(AluCorners, MulhMatchesWideProduct) {
  // MULH family against a 64-bit wide reference at 32 bits.
  Rng rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    const BitVec a = rng.interesting_bitvec(32), b = rng.interesting_bitvec(32);
    const std::int64_t sa = a.sval(), sb = b.sval();
    const std::uint64_t ua = a.uval(), ub = b.uval();
    EXPECT_EQ(alu_concrete(Opcode::MULH, a, b).uval(),
              static_cast<std::uint64_t>((sa * sb) >> 32) & 0xffffffffULL);
    EXPECT_EQ(alu_concrete(Opcode::MULHU, a, b).uval(), (ua * ub) >> 32);
    EXPECT_EQ(alu_concrete(Opcode::MULHSU, a, b).uval(),
              static_cast<std::uint64_t>((sa * static_cast<std::int64_t>(ub)) >> 32) &
                  0xffffffffULL);
  }
}

// instruction_result (the full register-writing path incl. LUI and
// immediates) against its concrete twin.
class InstructionResultCrossCheck : public ::testing::TestWithParam<unsigned> {};

TEST_P(InstructionResultCrossCheck, SymbolicMatchesConcrete) {
  const unsigned xlen = GetParam();
  Rng rng(xlen * 31 + 5);
  for (int trial = 0; trial < 300; ++trial) {
    // Draw a random register-writing, non-load instruction.
    Instruction inst;
    const Opcode op = alu_opcodes()[rng.below(alu_opcodes().size())];
    const unsigned rd = 1 + rng.below(31);
    if (is_rtype(op)) {
      inst = Instruction::rtype(op, rd, rng.below(32), rng.below(32));
    } else if (opcode_format(op) == Format::Shift) {
      inst = Instruction::itype(op, rd, rng.below(32),
                                static_cast<std::int32_t>(rng.below(32)));
    } else {
      inst = Instruction::itype(op, rd, rng.below(32),
                                static_cast<std::int32_t>(rng.below(4096)) - 2048);
    }
    const BitVec rs1 = rng.interesting_bitvec(xlen);
    const BitVec rs2 = rng.interesting_bitvec(xlen);

    const BitVec concrete = instruction_result_concrete(inst, rs1, rs2, xlen);

    TermManager mgr;
    const TermRef out = instruction_result(mgr, inst, mgr.mk_const(rs1),
                                           mgr.mk_const(rs2), xlen);
    ASSERT_EQ(concrete, smt::eval_term(mgr, out, {}))
        << inst.to_string() << " xlen=" << xlen;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, InstructionResultCrossCheck,
                         ::testing::Values(8u, 16u, 32u));

TEST(InstructionResult, LuiShiftsImmediateField) {
  TermManager mgr;
  const Instruction lui = Instruction::lui(1, 0xabcde);
  const TermRef out = instruction_result(mgr, lui, mgr.mk_const(32, 0),
                                         mgr.mk_const(32, 0), 32);
  EXPECT_EQ(smt::eval_term(mgr, out, {}), BitVec(32, 0xabcde000ULL));
  EXPECT_EQ(instruction_result_concrete(lui, BitVec(32, 7), BitVec(32, 9), 32),
            BitVec(32, 0xabcde000ULL));
}

TEST(InstructionResult, LuiTruncatesOnNarrowDatapath) {
  const Instruction lui = Instruction::lui(1, 0xabcde);
  // At 16 bits only imm[3:0] survives the <<12.
  EXPECT_EQ(instruction_result_concrete(lui, BitVec(16, 0), BitVec(16, 0), 16),
            BitVec(16, 0xe000));
}

}  // namespace
}  // namespace sepe::isa
