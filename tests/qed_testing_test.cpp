// Tests for concrete QED testing (Lin et al., §2.1 background): the
// EDDI-V and EDSEP-V program transformations executed on the ISS, with
// consistency checking and injected execution bugs.
#include <gtest/gtest.h>

#include "qed/qed_test.hpp"
#include "util/rng.hpp"

namespace sepe::qed {
namespace {

using isa::Instruction;
using isa::Opcode;
using isa::Program;

TEST(RegisterSplitTest, MatchesThePaper) {
  const RegisterSplit eddi = register_split(QedMode::EddiV);
  EXPECT_EQ(eddi.original_count, 16u);   // regs[i] <-> regs[i+16]
  EXPECT_EQ(eddi.shadow_offset, 16u);
  EXPECT_EQ(eddi.temp_count, 0u);

  const RegisterSplit edsep = register_split(QedMode::EdsepV);
  EXPECT_EQ(edsep.original_count, 13u);  // O = regs[0..12]
  EXPECT_EQ(edsep.shadow_offset, 13u);   // E = regs[13..25]
  EXPECT_EQ(edsep.temp_base, 26u);       // T = regs[26..31]
  EXPECT_EQ(edsep.temp_count, 6u);
  EXPECT_EQ(edsep.original_count + edsep.shadow_offset + edsep.temp_count, 32u);
}

TEST(QedModeNames, Render) {
  EXPECT_NE(std::string(qed_mode_name(QedMode::EddiV)).find("SQED"), std::string::npos);
  EXPECT_NE(std::string(qed_mode_name(QedMode::EdsepV)).find("SEPE"), std::string::npos);
}

// --- EDDI-V transformation ---

TEST(EddiVTransform, DuplicatesWithShadowRegisters) {
  const Program original = {Instruction::rtype(Opcode::SUB, 1, 2, 3)};
  const Program t = eddi_v_transform(original, 64);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0], original[0]);
  EXPECT_EQ(t[1], Instruction::rtype(Opcode::SUB, 17, 18, 19));
}

TEST(EddiVTransform, X0MapsToX0) {
  const Program t = eddi_v_transform({Instruction::rtype(Opcode::ADD, 1, 0, 2)}, 64);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[1].rs1, 0);  // x0 has no shadow — hard-wired zero on both halves
  EXPECT_EQ(t[1].rd, 17);
}

TEST(EddiVTransform, MemoryAccessesShiftIntoShadowHalf) {
  const Program t =
      eddi_v_transform({Instruction::lw(1, 0, 8), Instruction::sw(2, 0, 4)}, 64);
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[1], Instruction::lw(17, 0, 8 + 64));
  EXPECT_EQ(t[3], Instruction::sw(18, 0, 4 + 64));
}

TEST(EddiVTransform, HealthyExecutionIsConsistent) {
  Rng rng(7);
  for (int round = 0; round < 10; ++round) {
    const Program original =
        random_original_program(rng, 20, QedMode::EddiV, /*with_memory=*/true, 64);
    const Program t = eddi_v_transform(original, 64);
    const QedTestResult r = run_qed_test(t, QedMode::EddiV, 32, 32);
    EXPECT_TRUE(r.consistent) << "round " << round;
  }
}

TEST(EddiVTransform, DetectsMultiInstructionStyleBug) {
  // Injected ISS bug: ADD result off by one, but only when rd == x1 —
  // asymmetric between the halves, so the duplicate (rd = x17) is healthy.
  const Program original = {Instruction::rtype(Opcode::ADD, 1, 2, 3)};
  const Program t = eddi_v_transform(original, 64);
  const auto buggy = [](const Instruction& inst, const BitVec& correct) {
    return inst.rd == 1 ? correct + BitVec(correct.width(), 1) : correct;
  };
  const QedTestResult r = run_qed_test(t, QedMode::EddiV, 32, 32, buggy);
  EXPECT_FALSE(r.consistent);
  ASSERT_TRUE(r.mismatched_reg.has_value());
  EXPECT_EQ(*r.mismatched_reg, 1u);
}

TEST(EddiVTransform, MissesSingleInstructionBug) {
  // The paper's central negative result (§2.1): a bug corrupting SUB
  // *uniformly* hits original and duplicate identically — QED consistency
  // holds and the bug escapes.
  Rng rng(8);
  const auto buggy = [](const Instruction& inst, const BitVec& correct) {
    if (inst.op != Opcode::SUB) return correct;
    return correct ^ BitVec(correct.width(), 4);  // uniform corruption
  };
  for (int round = 0; round < 10; ++round) {
    const Program original =
        random_original_program(rng, 20, QedMode::EddiV, /*with_memory=*/false, 64);
    const Program t = eddi_v_transform(original, 64);
    const QedTestResult r = run_qed_test(t, QedMode::EddiV, 32, 32, buggy);
    EXPECT_TRUE(r.consistent) << "single-instruction bug must be invisible to EDDI-V";
  }
}

// --- EDSEP-V transformation ---

/// A small deterministic equivalence table for the instructions the
/// directed tests use. Built from hand-picked multisets so tests do not
/// depend on search order.
class EdsepTable : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lib_ = new std::vector<synth::Component>(synth::make_standard_library());
    specs_ = new std::vector<synth::SynthSpec>();
    specs_->reserve(16);  // programs hold SynthSpec pointers: no reallocation
    table_ = new synth::EquivalenceTable();
    auto comp = [&](const char* name) -> const synth::Component* {
      for (const auto& c : *lib_)
        if (c.name == name) return &c;
      return nullptr;
    };
    synth::CegisOptions o;
    o.xlen = 8;
    const auto add_entry = [&](const char* key, synth::SynthSpec spec,
                               std::vector<const synth::Component*> multiset) {
      specs_->push_back(std::move(spec));
      auto p = synth::cegis_multiset(specs_->back(), multiset, o);
      ASSERT_TRUE(p.has_value()) << key;
      table_->add(key, std::move(*p));
    };
    add_entry("SUB", synth::make_spec(Opcode::SUB),
              {comp("NOT"), comp("ADD"), comp("NOT")});
    add_entry("XOR", synth::make_spec(Opcode::XOR),
              {comp("OR"), comp("AND"), comp("SUB")});
    add_entry("ADD", synth::make_spec(Opcode::ADD),
              {comp("NOT"), comp("SUB"), comp("NOT")});
    add_entry("ADDI", synth::make_spec(Opcode::ADDI),
              {comp("NOT"), comp("NOT"), comp("ADDI")});
    add_entry("LW_ADDR", synth::make_address_spec(Opcode::LW),
              {comp("NOT"), comp("NOT"), comp("ADDI")});
    add_entry("SW_ADDR", synth::make_address_spec(Opcode::SW),
              {comp("NOT"), comp("NOT"), comp("ADDI")});
  }
  static void TearDownTestSuite() {
    delete table_;
    delete specs_;
    delete lib_;
    table_ = nullptr;
    specs_ = nullptr;
    lib_ = nullptr;
  }
  static std::vector<synth::Component>* lib_;
  static std::vector<synth::SynthSpec>* specs_;
  static synth::EquivalenceTable* table_;
};

std::vector<synth::Component>* EdsepTable::lib_ = nullptr;
std::vector<synth::SynthSpec>* EdsepTable::specs_ = nullptr;
synth::EquivalenceTable* EdsepTable::table_ = nullptr;

TEST_F(EdsepTable, TransformEmitsOriginalPlusEquivalent) {
  const Program original = {Instruction::rtype(Opcode::SUB, 1, 2, 3)};
  const Program t = edsep_v_transform(original, *table_, 64);
  ASSERT_GE(t.size(), 4u);  // original + 3-instruction equivalent
  EXPECT_EQ(t[0], original[0]);
  // Equivalent instructions only touch the E (14..25) and T (26..31)
  // banks; x0 may appear as a fixed operand.
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (isa::writes_register(t[i].op)) {
      EXPECT_GE(t[i].rd, 13) << t[i].to_string();
    }
    for (unsigned r : {t[i].rs1, t[i].rs2}) {
      EXPECT_TRUE(r == 0 || r >= 13) << t[i].to_string();
    }
  }
}

TEST_F(EdsepTable, HealthyExecutionIsConsistent) {
  Rng rng(11);
  for (int round = 0; round < 10; ++round) {
    // Directed mix over the instructions the table covers.
    Program original;
    static const Opcode kOps[] = {Opcode::SUB, Opcode::XOR, Opcode::ADD, Opcode::ADDI};
    for (int i = 0; i < 12; ++i) {
      const Opcode op = kOps[rng.below(std::size(kOps))];
      const unsigned rd = 1 + rng.below(12), rs1 = rng.below(13), rs2 = rng.below(13);
      if (op == Opcode::ADDI) {
        original.push_back(Instruction::itype(op, rd, rs1,
                                              static_cast<std::int32_t>(rng.below(4096)) -
                                                  2048));
      } else {
        original.push_back(Instruction::rtype(op, rd, rs1, rs2));
      }
    }
    const Program t = edsep_v_transform(original, *table_, 64);
    const QedTestResult r = run_qed_test(t, QedMode::EdsepV, 32, 32);
    EXPECT_TRUE(r.consistent) << "round " << round;
  }
}

TEST_F(EdsepTable, CatchesTheSingleInstructionBugEddiMisses) {
  // The same uniform SUB corruption EDDI-V cannot see: the SUB-equivalent
  // program (XORI/ADD/XORI) avoids SUB, so only the original stream is
  // corrupted and the halves diverge.
  const auto buggy = [](const Instruction& inst, const BitVec& correct) {
    if (inst.op != Opcode::SUB) return correct;
    return correct ^ BitVec(correct.width(), 4);
  };
  const Program original = {Instruction::rtype(Opcode::SUB, 1, 2, 3)};
  const Program t = edsep_v_transform(original, *table_, 64);
  const QedTestResult r = run_qed_test(t, QedMode::EdsepV, 32, 32, buggy);
  EXPECT_FALSE(r.consistent);
  ASSERT_TRUE(r.mismatched_reg.has_value());
  EXPECT_EQ(*r.mismatched_reg, 1u);  // rd of the corrupted SUB
}

TEST_F(EdsepTable, CatchesUniformXorBug) {
  const auto buggy = [](const Instruction& inst, const BitVec& correct) {
    if (inst.op != Opcode::XOR) return correct;
    return BitVec::ones(correct.width());
  };
  const Program original = {Instruction::rtype(Opcode::XOR, 2, 3, 4)};
  const Program t = edsep_v_transform(original, *table_, 64);
  const QedTestResult r = run_qed_test(t, QedMode::EdsepV, 32, 32, buggy);
  EXPECT_FALSE(r.consistent);
}

TEST_F(EdsepTable, MemoryInstructionsUseAddressPathPlusShadowAccess) {
  const Program original = {Instruction::sw(2, 1, 4), Instruction::lw(3, 1, 4)};
  const Program t = edsep_v_transform(original, *table_, 64);
  // Each memory op expands to: original, address program (3 instrs), access.
  ASSERT_EQ(t.size(), 10u);
  EXPECT_EQ(t[0], original[0]);
  EXPECT_EQ(t[4].op, Opcode::SW);
  EXPECT_EQ(t[4].imm, 64);           // shadow-half displacement
  EXPECT_EQ(t[4].rs2, 2 + 13);       // data register mapped into E
  EXPECT_EQ(t[9].op, Opcode::LW);
  EXPECT_EQ(t[9].rd, 3 + 13);
  // Healthy run stays consistent, including the memory halves.
  const QedTestResult r = run_qed_test(t, QedMode::EdsepV, 32, 32);
  EXPECT_TRUE(r.consistent);
}

TEST_F(EdsepTable, RandomProgramGeneratorRespectsTheSplit) {
  Rng rng(3);
  const Program p = random_original_program(rng, 50, QedMode::EdsepV, false, 64);
  for (const Instruction& inst : p) {
    if (isa::writes_register(inst.op)) {
      EXPECT_LT(inst.rd, 13);
    }
    EXPECT_LT(inst.rs1, 13);
    EXPECT_LT(inst.rs2, 13);
  }
}

}  // namespace
}  // namespace sepe::qed
