// Tests for the campaign cone cache: canonical term digests agree across
// TermManagers, a shared cache replays cones onto isomorphic solver
// stacks with byte-identical CNF (same variable/clause counts, same
// results) while actually hitting, the memory budget rejects oversized
// stores, and cached solving is exercised against the exhaustive
// evaluator on random formulas.
#include <gtest/gtest.h>

#include <memory>

#include "smt/cone_cache.hpp"
#include "smt/smt_solver.hpp"
#include "util/rng.hpp"

namespace sepe::smt {
namespace {

/// The same structural formula built in any manager: a small ALU-ish
/// cone mixing arithmetic, comparison, and mux, parameterized so tests
/// can build distinct cones too.
TermRef build_cone(TermManager& m, unsigned width, std::uint64_t k) {
  // Width-suffixed names: a manager rejects re-declaring a variable at
  // a new width, and tests build cones of several widths side by side.
  const TermRef a = m.mk_var("a" + std::to_string(width), width);
  const TermRef b = m.mk_var("b" + std::to_string(width), width);
  const TermRef sum = m.mk_add(a, m.mk_mul(b, m.mk_const(width, 3)));
  const TermRef cmp = m.mk_ult(sum, m.mk_const(width, k));
  const TermRef sel = m.mk_ite(cmp, m.mk_sub(a, b), m.mk_xor(a, b));
  return m.mk_eq(sel, m.mk_const(width, k % (1u << (width - 1))));
}

TEST(TermDigest, CanonicalAcrossManagers) {
  TermManager m1, m2;
  const TermRef t1 = build_cone(m1, 8, 9);
  // Interleave unrelated junk into m2 so the TermRef indices diverge:
  // the digest must depend on structure only, never on intern order.
  m2.mk_add(m2.mk_var("junk", 13), m2.mk_const(13, 5));
  const TermRef t2 = build_cone(m2, 8, 9);
  EXPECT_NE(static_cast<unsigned>(t1), static_cast<unsigned>(t2));
  EXPECT_EQ(m1.digest(t1), m2.digest(t2));
}

TEST(TermDigest, StructurallyDistinctTermsDiffer) {
  TermManager m;
  const TermRef a = m.mk_var("a", 8);
  const TermRef b = m.mk_var("b", 8);
  // Same op/width, different operand order / names / constants.
  EXPECT_NE(m.digest(m.mk_sub(a, b)), m.digest(m.mk_sub(b, a)));
  EXPECT_NE(m.digest(a), m.digest(b));
  EXPECT_NE(m.digest(m.mk_const(8, 1)), m.digest(m.mk_const(8, 2)));
  EXPECT_NE(m.digest(m.mk_const(8, 1)), m.digest(m.mk_const(9, 1)));
  EXPECT_NE(m.digest(m.mk_add(a, a)), m.digest(m.mk_mul(a, a)));
}

/// Run the same assert/check sequence on a fresh stack, returning the
/// result plus the final CNF shape.
struct RunShape {
  Result r1;
  Result r2;
  int num_vars;
  std::size_t num_clauses;
};

RunShape run_sequence(const std::shared_ptr<ConeCache>& cache, bool pg) {
  TermManager m;
  SmtSolver s(m, {}, pg, cache);
  s.assert_formula(build_cone(m, 8, 9));
  s.assert_formula(build_cone(m, 6, 3));
  const Result r1 = s.check();
  const TermRef c = m.mk_var("c", 8);
  const Result r2 =
      s.check({m.mk_eq(m.mk_add(c, c), m.mk_const(8, 4)), build_cone(m, 8, 21)});
  EXPECT_EQ(r1, Result::Sat);
  return {r1, r2, s.sat_solver().num_vars(), s.sat_solver().num_clauses()};
}

TEST(ConeCache, ReplayIsByteIdenticalToStructuralEncoding) {
  for (const bool pg : {false, true}) {
    SCOPED_TRACE(pg ? "plaisted-greenbaum" : "tseitin");
    const RunShape uncached = run_sequence(nullptr, pg);
    const auto cache = std::make_shared<ConeCache>();
    const RunShape cold = run_sequence(cache, pg);
    const RunShape warm = run_sequence(cache, pg);

    // Identical results and CNF shape in all three runs: the cache must
    // be observationally invisible to the SAT core.
    EXPECT_EQ(uncached.r1, cold.r1);
    EXPECT_EQ(uncached.r2, cold.r2);
    EXPECT_EQ(uncached.r1, warm.r1);
    EXPECT_EQ(uncached.r2, warm.r2);
    EXPECT_EQ(uncached.num_vars, cold.num_vars);
    EXPECT_EQ(uncached.num_clauses, cold.num_clauses);
    EXPECT_EQ(uncached.num_vars, warm.num_vars);
    EXPECT_EQ(uncached.num_clauses, warm.num_clauses);

    const ConeCache::Stats st = cache->stats();
    EXPECT_GT(st.stores, 0u);
    EXPECT_GT(st.hits, 0u);  // the warm run replayed recorded cones
    EXPECT_EQ(st.validation_failures, 0u);
    EXPECT_GT(st.bytes, 0u);
  }
}

TEST(ConeCache, EncodingsDoNotShareTapes) {
  // Tseitin and PG blasters start from different state digests, so the
  // same cone under the other encoding must miss, not replay.
  const auto cache = std::make_shared<ConeCache>();
  run_sequence(cache, /*pg=*/false);
  const std::uint64_t hits_before = cache->stats().hits;
  run_sequence(cache, /*pg=*/true);
  EXPECT_EQ(cache->stats().hits, hits_before);
}

TEST(ConeCache, DivergentCallHistoryMisses) {
  // Two blasters that served different first calls are not isomorphic;
  // the second call must miss even though the cone itself was recorded.
  const auto cache = std::make_shared<ConeCache>();
  {
    TermManager m;
    SmtSolver s(m, {}, false, cache);
    s.assert_formula(build_cone(m, 8, 9));
    s.assert_formula(build_cone(m, 6, 3));
    EXPECT_EQ(s.check(), Result::Sat);
  }
  const std::uint64_t hits_before = cache->stats().hits;
  {
    TermManager m;
    SmtSolver s(m, {}, false, cache);
    s.assert_formula(build_cone(m, 6, 3));  // same cone, different position
    EXPECT_EQ(s.check(), Result::Sat);
  }
  EXPECT_EQ(cache->stats().hits, hits_before);
}

TEST(ConeCache, MemoryBudgetRejectsStores) {
  const auto cache = std::make_shared<ConeCache>(/*max_bytes=*/1);
  run_sequence(cache, false);
  const ConeCache::Stats st = cache->stats();
  EXPECT_GT(st.store_rejects, 0u);
  EXPECT_EQ(st.bytes, 0u);
  // And a budget-starved cache still solves correctly (shape asserted
  // inside run_sequence).
  run_sequence(cache, false);
}

TEST(ConeCache, RandomFormulasAgreeWithUncachedTwin) {
  // Randomized cross-check: a shared cache across many small solver
  // stacks never changes a result or the CNF shape.
  const auto cache = std::make_shared<ConeCache>();
  // Rounds 2i and 2i+1 reseed identically, so every random triple is
  // solved twice and the second stack is guaranteed a recorded tape to
  // replay (hits > 0 is asserted below).
  for (int round = 0; round < 30; ++round) {
    Rng rng(0xC0DECAFEu + static_cast<unsigned>(round / 2));
    const unsigned width = 3 + rng.next() % 6;
    const std::uint64_t k = rng.next() % (1ull << width);
    const bool pg = (rng.next() & 1) != 0;

    TermManager mc, mu;
    SmtSolver cached(mc, {}, pg, cache);
    SmtSolver uncached(mu, {}, pg, nullptr);
    cached.assert_formula(build_cone(mc, width, k));
    uncached.assert_formula(build_cone(mu, width, k));
    const Result rc = cached.check();
    const Result ru = uncached.check();
    ASSERT_EQ(rc, ru) << "width=" << width << " k=" << k << " pg=" << pg;
    ASSERT_EQ(cached.sat_solver().num_vars(), uncached.sat_solver().num_vars());
    ASSERT_EQ(cached.sat_solver().num_clauses(),
              uncached.sat_solver().num_clauses());
  }
  EXPECT_GT(cache->stats().hits, 0u);  // repeated (width, k) pairs replay
}

}  // namespace
}  // namespace sepe::smt
