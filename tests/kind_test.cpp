// Tests for the k-induction engine: proofs, refutations, the need for
// simple-path constraints, and resource budgets.
#include <gtest/gtest.h>

#include "bmc/kind.hpp"

namespace sepe::bmc {
namespace {

using smt::TermManager;
using smt::TermRef;

TEST(KInduction, ProvesAnInductiveInvariant) {
  // cnt starts even and always advances by 2: "cnt is odd" is unreachable
  // and 1-inductive.
  TermManager mgr;
  ts::TransitionSystem ts(mgr);
  const TermRef cnt = ts.add_state("cnt", 8);
  ts.set_init(cnt, mgr.mk_const(8, 0));
  ts.set_next(cnt, mgr.mk_add(cnt, mgr.mk_const(8, 2)));
  ts.add_bad(mgr.mk_eq(mgr.mk_extract(cnt, 0, 0), mgr.mk_const(1, 1)), "odd");

  KInductionOptions o;
  o.max_k = 5;
  const KInductionResult r = prove_by_k_induction(ts, o);
  EXPECT_EQ(r.status, KInductionStatus::Proved);
  EXPECT_EQ(r.k, 1u);
}

TEST(KInduction, FalsifiesWithAWitness) {
  TermManager mgr;
  ts::TransitionSystem ts(mgr);
  const TermRef cnt = ts.add_state("cnt", 8);
  ts.set_init(cnt, mgr.mk_const(8, 0));
  ts.set_next(cnt, mgr.mk_add(cnt, mgr.mk_const(8, 1)));
  ts.add_bad(mgr.mk_eq(cnt, mgr.mk_const(8, 3)), "cnt-3");

  KInductionOptions o;
  o.max_k = 6;
  const KInductionResult r = prove_by_k_induction(ts, o);
  ASSERT_EQ(r.status, KInductionStatus::Falsified);
  ASSERT_TRUE(r.witness.has_value());
  EXPECT_EQ(r.witness->length, 3u);
}

TEST(KInduction, NonInductivePropertyNeedsDeeperK) {
  // b latches a, a latches the constant 1; "a=1 and b=0 forever" breaks
  // only at depth 2: plain 1-induction fails, 2-induction closes it.
  TermManager mgr;
  ts::TransitionSystem ts(mgr);
  const TermRef a = ts.add_state("a", 1);
  const TermRef b = ts.add_state("b", 1);
  ts.set_init(a, mgr.mk_const(1, 1));
  ts.set_init(b, mgr.mk_const(1, 1));
  ts.set_next(a, mgr.mk_const(1, 1));
  ts.set_next(b, a);
  ts.add_bad(mgr.mk_and(mgr.mk_not(a), mgr.mk_not(b)), "both-zero");

  KInductionOptions o;
  o.max_k = 4;
  const KInductionResult r = prove_by_k_induction(ts, o);
  EXPECT_EQ(r.status, KInductionStatus::Proved);
  EXPECT_LE(r.k, 2u);
}

TEST(KInduction, SimplePathClosesFiniteDiameterProofs) {
  // A 3-bit counter that saturates at 7; "cnt == 7 is unreachable" is
  // false... instead: counter wraps within {0..5} via mod-6 increment;
  // bad = 7. Plain induction never closes (a symbolic state 6 steps to
  // 7); the simple-path constraint bounds the search by the diameter.
  TermManager mgr;
  ts::TransitionSystem ts(mgr);
  const TermRef cnt = ts.add_state("cnt", 3);
  ts.set_init(cnt, mgr.mk_const(3, 0));
  // next = (cnt == 5) ? 0 : cnt + 1  — states {0..5} reachable, 6/7 not.
  ts.set_next(cnt, mgr.mk_ite(mgr.mk_eq(cnt, mgr.mk_const(3, 5)), mgr.mk_const(3, 0),
                              mgr.mk_add(cnt, mgr.mk_const(3, 1))));
  ts.add_bad(mgr.mk_eq(cnt, mgr.mk_const(3, 7)), "unreachable-7");

  KInductionOptions with_sp;
  with_sp.max_k = 10;
  with_sp.simple_path = true;
  EXPECT_EQ(prove_by_k_induction(ts, with_sp).status, KInductionStatus::Proved);

  // Without simple-path the proof cannot close: 7 is a fixpoint-free
  // predecessor chain (6 -> 7, 5' -> 6...) in the unconstrained state
  // space... in this encoding 7's predecessor is 6, whose predecessor is
  // 5 — but 5 steps to 0, so the chain breaks at length 2; to keep the
  // test robust simply require it not to be Falsified.
  KInductionOptions without_sp;
  without_sp.max_k = 10;
  without_sp.simple_path = false;
  EXPECT_NE(prove_by_k_induction(ts, without_sp).status, KInductionStatus::Falsified);
}

TEST(KInduction, InputsStaySymbolicInTheInductiveStep) {
  // cnt += in, with in constrained to 0: stays at its initial value; the
  // bad "cnt != init" is not expressible directly, use cnt == 1 with
  // init 0. The constraint must be honored in the inductive window.
  TermManager mgr;
  ts::TransitionSystem ts(mgr);
  const TermRef cnt = ts.add_state("cnt", 4);
  const TermRef in = ts.add_input("in", 4);
  ts.set_init(cnt, mgr.mk_const(4, 0));
  ts.set_next(cnt, mgr.mk_add(cnt, in));
  ts.add_constraint(mgr.mk_eq(in, mgr.mk_const(4, 0)));
  ts.add_bad(mgr.mk_eq(cnt, mgr.mk_const(4, 1)), "moved");

  KInductionOptions o;
  o.max_k = 3;
  const KInductionResult r = prove_by_k_induction(ts, o);
  EXPECT_EQ(r.status, KInductionStatus::Proved);
  EXPECT_EQ(r.k, 1u);
}

TEST(KInduction, UnknownWhenKExhausted) {
  // Reachable-state invariant with a long diameter and simple_path off:
  // a 6-bit counter wrapping in {0..40}, bad at 63, max_k too small.
  TermManager mgr;
  ts::TransitionSystem ts(mgr);
  const TermRef cnt = ts.add_state("cnt", 6);
  ts.set_init(cnt, mgr.mk_const(6, 0));
  ts.set_next(cnt, mgr.mk_ite(mgr.mk_eq(cnt, mgr.mk_const(6, 40)), mgr.mk_const(6, 0),
                              mgr.mk_add(cnt, mgr.mk_const(6, 1))));
  ts.add_bad(mgr.mk_eq(cnt, mgr.mk_const(6, 63)), "unreachable-63");

  KInductionOptions o;
  o.max_k = 3;
  o.simple_path = false;
  const KInductionResult r = prove_by_k_induction(ts, o);
  EXPECT_EQ(r.status, KInductionStatus::Unknown);
}

TEST(KInduction, HonorsWallClockBudget) {
  // Hard inductive step (multiplication): a tiny wall budget must stop
  // the engine with a resource-limit flag, not hang.
  TermManager mgr;
  ts::TransitionSystem ts(mgr);
  const TermRef a = ts.add_state("a", 12);
  const TermRef b = ts.add_state("b", 12);
  ts.set_init(a, mgr.mk_const(12, 3));
  ts.set_init(b, mgr.mk_const(12, 5));
  ts.set_next(a, a);
  ts.set_next(b, b);
  const TermRef lhs = mgr.mk_mul(a, mgr.mk_add(b, b));
  const TermRef rhs = mgr.mk_add(mgr.mk_mul(a, b), mgr.mk_mul(a, b));
  ts.add_bad(mgr.mk_ne(lhs, rhs), "distributivity");
  KInductionOptions o;
  o.max_k = 20;
  o.max_seconds = 0.5;
  o.simple_path = false;
  const KInductionResult r = prove_by_k_induction(ts, o);
  // Either the solver is fast enough to prove it, or it stops in budget.
  if (r.status == KInductionStatus::Unknown) {
    EXPECT_LT(r.seconds, 30.0);
  }
}

}  // namespace
}  // namespace sepe::bmc
