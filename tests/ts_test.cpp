// Tests for the transition-system IR and its BTOR2-style serializer.
#include <gtest/gtest.h>

#include "smt/eval.hpp"
#include "ts/transition_system.hpp"

namespace sepe::ts {
namespace {

using smt::TermManager;
using smt::TermRef;

TEST(TransitionSystemTest, DeclaresStatesAndInputs) {
  TermManager mgr;
  TransitionSystem ts(mgr);
  const TermRef s = ts.add_state("counter", 8);
  const TermRef in = ts.add_input("step", 8);
  EXPECT_TRUE(ts.is_state(s));
  EXPECT_FALSE(ts.is_state(in));
  EXPECT_TRUE(ts.is_input(in));
  EXPECT_FALSE(ts.is_input(s));
  EXPECT_EQ(ts.states().size(), 1u);
  EXPECT_EQ(ts.inputs().size(), 1u);
  EXPECT_EQ(mgr.width(s), 8u);
}

TEST(TransitionSystemTest, InitAndNextAreRecorded) {
  TermManager mgr;
  TransitionSystem ts(mgr);
  const TermRef s = ts.add_state("x", 4);
  EXPECT_EQ(ts.init_of(s), smt::kNullTerm);   // unconstrained by default
  EXPECT_EQ(ts.next_of(s), smt::kNullTerm);
  EXPECT_FALSE(ts.complete());

  ts.set_init(s, mgr.mk_const(4, 0));
  ts.set_next(s, mgr.mk_add(s, mgr.mk_const(4, 1)));
  EXPECT_EQ(ts.init_of(s), mgr.mk_const(4, 0));
  EXPECT_NE(ts.next_of(s), smt::kNullTerm);
  EXPECT_TRUE(ts.complete());
}

TEST(TransitionSystemTest, ConstraintsAndBadsAccumulate) {
  TermManager mgr;
  TransitionSystem ts(mgr);
  const TermRef in = ts.add_input("i", 4);
  ts.add_constraint(mgr.mk_ult(in, mgr.mk_const(4, 5)));
  ts.add_init_constraint(mgr.mk_eq(in, mgr.mk_const(4, 0)));
  ts.add_bad(mgr.mk_eq(in, mgr.mk_const(4, 3)), "i-hits-3");
  EXPECT_EQ(ts.constraints().size(), 1u);
  EXPECT_EQ(ts.init_constraints().size(), 1u);
  ASSERT_EQ(ts.bads().size(), 1u);
  ASSERT_EQ(ts.bad_labels().size(), 1u);
  EXPECT_EQ(ts.bad_labels()[0], "i-hits-3");
}

TEST(Btor2Serializer, EmitsAllSections) {
  TermManager mgr;
  TransitionSystem ts(mgr);
  const TermRef s = ts.add_state("cnt", 8);
  const TermRef in = ts.add_input("inc", 1);
  ts.set_init(s, mgr.mk_const(8, 0));
  ts.set_next(s, mgr.mk_ite(in, mgr.mk_add(s, mgr.mk_const(8, 1)), s));
  ts.add_constraint(mgr.mk_not(mgr.mk_eq(s, mgr.mk_const(8, 250))));
  ts.add_bad(mgr.mk_eq(s, mgr.mk_const(8, 10)), "cnt-10");

  const std::string btor = to_btor2(ts);
  EXPECT_NE(btor.find(" sort bitvec 8"), std::string::npos);
  EXPECT_NE(btor.find(" state "), std::string::npos);
  EXPECT_NE(btor.find(" input "), std::string::npos);
  EXPECT_NE(btor.find(" init "), std::string::npos);
  EXPECT_NE(btor.find(" next "), std::string::npos);
  EXPECT_NE(btor.find(" constraint "), std::string::npos);
  EXPECT_NE(btor.find(" bad "), std::string::npos);
  EXPECT_NE(btor.find("cnt"), std::string::npos);
}

TEST(Btor2Serializer, EmitsOperatorsForTheWholeTermAlphabet) {
  TermManager mgr;
  TransitionSystem ts(mgr);
  const TermRef a = ts.add_state("a", 8);
  const TermRef b = ts.add_input("b", 8);
  // A next-function exercising many operators at once.
  TermRef t = mgr.mk_add(a, b);
  t = mgr.mk_xor(t, mgr.mk_sub(a, b));
  t = mgr.mk_ite(mgr.mk_ult(a, b), t, mgr.mk_mul(a, b));
  t = mgr.mk_or(t, mgr.mk_shl(a, mgr.mk_const(8, 1)));
  t = mgr.mk_and(t, mgr.mk_ashr(b, mgr.mk_const(8, 2)));
  ts.set_next(a, t);
  const std::string btor = to_btor2(ts);
  for (const char* op :
       {"add", "xor", "sub", "ite", "ult", "mul", "or", "sll", "sra", "and"})
    EXPECT_NE(btor.find(op), std::string::npos) << op;
}

TEST(Btor2Serializer, SharesSortsAndNodes) {
  TermManager mgr;
  TransitionSystem ts(mgr);
  const TermRef a = ts.add_state("a", 16);
  const TermRef b = ts.add_state("b", 16);
  const TermRef sum = mgr.mk_add(a, b);
  ts.set_next(a, sum);
  ts.set_next(b, sum);  // shared subterm
  const std::string btor = to_btor2(ts);
  // Exactly one 16-bit sort declaration, one add definition.
  auto count = [&](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = btor.find(needle); pos != std::string::npos;
         pos = btor.find(needle, pos + 1))
      ++n;
    return n;
  };
  EXPECT_EQ(count("sort bitvec 16"), 1u);
  EXPECT_EQ(count(" add "), 1u);
}

}  // namespace
}  // namespace sepe::ts
