// Integration tests of the full verification models (paper Fig. 2): DUV +
// QED module + universal property, checked by BMC. These establish the
// paper's three headline behaviours on miniature configurations:
//
//   1. soundness   — healthy DUV: neither module reports a violation;
//   2. SQED's gap  — a single-instruction bug is invisible to EDDI-V;
//   3. SEPE-SQED   — the same bug is caught by EDSEP-V, and
//                    multiple-instruction bugs are caught by both.
#include <gtest/gtest.h>

#include "bmc/bmc.hpp"
#include "proc/mutations.hpp"
#include "qed/qed_module.hpp"
#include "synth/cegis.hpp"

namespace sepe::qed {
namespace {

using isa::Opcode;

proc::ProcConfig tiny_config(std::vector<Opcode> opcodes) {
  proc::ProcConfig c;
  c.xlen = 4;  // miniature datapath keeps each BMC step unit-test sized
  c.mem_words = 8;
  c.opcodes = std::move(opcodes);
  return c;
}

QedOptions eddi_options() {
  QedOptions o;
  o.mode = QedMode::EddiV;
  o.queue_capacity = 2;
  o.counter_bits = 3;
  return o;
}

/// Shared deterministic equivalence table: XOR via OR/AND/SUB (avoids the
/// XOR opcode entirely) and SUB via NOT/ADD/NOT (Listing 1).
class QedModels : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lib_ = new std::vector<synth::Component>(synth::make_standard_library());
    specs_ = new std::vector<synth::SynthSpec>();
    specs_->reserve(16);  // programs hold SynthSpec pointers: no reallocation
    table_ = new synth::EquivalenceTable();
    auto comp = [&](const char* name) -> const synth::Component* {
      for (const auto& c : *lib_)
        if (c.name == name) return &c;
      return nullptr;
    };
    synth::CegisOptions o;
    o.xlen = 8;
    const auto add_entry = [&](const char* key, synth::SynthSpec spec,
                               std::vector<const synth::Component*> multiset) {
      specs_->push_back(std::move(spec));
      auto p = synth::cegis_multiset(specs_->back(), multiset, o);
      ASSERT_TRUE(p.has_value()) << key;
      // Re-verify at the DUV width before use, as the real flow does.
      ASSERT_TRUE(synth::verify_program(*p, 4)) << key;
      table_->add(key, std::move(*p));
    };
    add_entry("XOR", synth::make_spec(Opcode::XOR),
              {comp("OR"), comp("AND"), comp("SUB")});
    add_entry("SUB", synth::make_spec(Opcode::SUB),
              {comp("NOT"), comp("ADD"), comp("NOT")});
  }
  static void TearDownTestSuite() {
    delete table_;
    delete specs_;
    delete lib_;
    table_ = nullptr;
    specs_ = nullptr;
    lib_ = nullptr;
  }

  QedOptions edsep_options() const {
    QedOptions o;
    o.mode = QedMode::EdsepV;
    o.queue_capacity = 2;
    o.counter_bits = 3;
    o.equivalences = table_;
    return o;
  }

  static std::vector<synth::Component>* lib_;
  static std::vector<synth::SynthSpec>* specs_;
  static synth::EquivalenceTable* table_;
};

std::vector<synth::Component>* QedModels::lib_ = nullptr;
std::vector<synth::SynthSpec>* QedModels::specs_ = nullptr;
synth::EquivalenceTable* QedModels::table_ = nullptr;

// --- model construction sanity ---

TEST_F(QedModels, BuildProducesCompleteTransitionSystems) {
  for (int mode = 0; mode < 2; ++mode) {
    smt::TermManager mgr;
    ts::TransitionSystem ts(mgr);
    const QedOptions o = mode == 0 ? eddi_options() : edsep_options();
    const auto config = tiny_config({Opcode::XOR, Opcode::OR, Opcode::AND, Opcode::SUB,
                                     Opcode::ADD, Opcode::XORI});
    const QedModel model = build_qed_model(ts, config, o);
    EXPECT_TRUE(ts.complete());
    EXPECT_EQ(ts.bads().size(), 1u);
    EXPECT_NE(model.qed_ready, smt::kNullTerm);
    EXPECT_NE(model.qed_consistent, smt::kNullTerm);
    EXPECT_FALSE(ts.constraints().empty());
  }
}

// --- 1: soundness on the healthy design ---

TEST_F(QedModels, EddiVHealthyHasNoViolation) {
  smt::TermManager mgr;
  ts::TransitionSystem ts(mgr);
  const QedModel model = build_qed_model(ts, tiny_config({Opcode::XOR, Opcode::ADD}),
                                         eddi_options());
  (void)model;
  bmc::Bmc checker(ts);
  bmc::BmcOptions o;
  o.max_bound = 7;
  EXPECT_FALSE(checker.check(o).has_value())
      << "EDDI-V reported a bug on a healthy pipeline";
}

TEST_F(QedModels, EdsepVHealthyHasNoViolation) {
  smt::TermManager mgr;
  ts::TransitionSystem ts(mgr);
  const auto config = tiny_config({Opcode::XOR, Opcode::OR, Opcode::AND, Opcode::SUB,
                                   Opcode::ADD, Opcode::XORI});
  const QedModel model = build_qed_model(ts, config, edsep_options());
  (void)model;
  bmc::Bmc checker(ts);
  bmc::BmcOptions o;
  o.max_bound = 8;
  EXPECT_FALSE(checker.check(o).has_value())
      << "EDSEP-V reported a bug on a healthy pipeline";
}

// --- 2 & 3: the single-instruction bug story ---

/// The Table-1 style bug: XOR uniformly computes OR.
proc::Mutation xor_as_or_bug() {
  for (proc::Mutation& m : proc::table1_single_instruction_bugs())
    if (m.name == "xor_as_or") return m;
  ADD_FAILURE() << "bug catalog misses xor_as_or";
  return {};
}

TEST_F(QedModels, EddiVMissesTheSingleInstructionBug) {
  const proc::Mutation bug = xor_as_or_bug();
  smt::TermManager mgr;
  ts::TransitionSystem ts(mgr);
  build_qed_model(ts, tiny_config({Opcode::XOR, Opcode::ADD}), eddi_options(), &bug);
  bmc::Bmc checker(ts);
  bmc::BmcOptions o;
  o.max_bound = 7;
  EXPECT_FALSE(checker.check(o).has_value())
      << "a uniform single-instruction bug must be invisible to self-consistency";
}

TEST_F(QedModels, EdsepVCatchesTheSingleInstructionBug) {
  const proc::Mutation bug = xor_as_or_bug();
  smt::TermManager mgr;
  ts::TransitionSystem ts(mgr);
  const auto config = tiny_config({Opcode::XOR, Opcode::OR, Opcode::AND, Opcode::SUB});
  const QedModel model = build_qed_model(ts, config, edsep_options(), &bug);
  bmc::Bmc checker(ts);
  bmc::BmcOptions o;
  o.max_bound = 10;
  const auto w = checker.check(o);
  ASSERT_TRUE(w.has_value()) << "EDSEP-V must expose the single-instruction bug";
  EXPECT_EQ(w->bad_index, model.bad_index);
  // Shortest possible trace: issue original, replay 3 equivalent
  // instructions, drain the pipeline — the violation needs at least the
  // full replay to commit.
  EXPECT_GE(w->length, 5u);
}

TEST_F(QedModels, EdsepVSubBugCaughtViaListing1Program) {
  // sub_missing_inc (SUB = a + ~b) against the Listing-1 equivalent
  // XORI/ADD/XORI, which avoids SUB: only the original stream is wrong.
  proc::Mutation bug;
  for (proc::Mutation& m : proc::table1_single_instruction_bugs())
    if (m.name == "sub_missing_inc") bug = m;
  smt::TermManager mgr;
  ts::TransitionSystem ts(mgr);
  const auto config = tiny_config({Opcode::SUB, Opcode::ADD, Opcode::XORI});
  const QedModel model = build_qed_model(ts, config, edsep_options(), &bug);
  (void)model;
  bmc::Bmc checker(ts);
  bmc::BmcOptions o;
  o.max_bound = 10;
  EXPECT_TRUE(checker.check(o).has_value());
}

// --- multiple-instruction bugs: both modules detect ---

proc::Mutation fwd_bug(const char* name) {
  for (proc::Mutation& m : proc::figure4_multi_instruction_bugs(false))
    if (m.name == name) return m;
  ADD_FAILURE() << "bug catalog misses " << name;
  return {};
}

TEST_F(QedModels, EddiVCatchesForwardingBug) {
  const proc::Mutation bug = fwd_bug("fwd_a_dead_XOR");
  smt::TermManager mgr;
  ts::TransitionSystem ts(mgr);
  build_qed_model(ts, tiny_config({Opcode::XOR, Opcode::ADD}), eddi_options(), &bug);
  bmc::Bmc checker(ts);
  bmc::BmcOptions o;
  o.max_bound = 8;
  const auto w = checker.check(o);
  ASSERT_TRUE(w.has_value()) << "EDDI-V must catch forwarding bugs";
  // Needs at least: producer, dependent consumer, both duplicates, drain.
  EXPECT_GE(w->length, 5u);
}

TEST_F(QedModels, EdsepVCatchesForwardingBug) {
  const proc::Mutation bug = fwd_bug("fwd_a_dead_SUB");
  smt::TermManager mgr;
  ts::TransitionSystem ts(mgr);
  const auto config = tiny_config({Opcode::SUB, Opcode::ADD, Opcode::XORI});
  build_qed_model(ts, config, edsep_options(), &bug);
  bmc::Bmc checker(ts);
  bmc::BmcOptions o;
  o.max_bound = 10;
  EXPECT_TRUE(checker.check(o).has_value())
      << "EDSEP-V must catch multiple-instruction bugs too";
}

// --- witness sanity ---

TEST_F(QedModels, ViolationWitnessIsQedReadyAndInconsistent) {
  const proc::Mutation bug = xor_as_or_bug();
  smt::TermManager mgr;
  ts::TransitionSystem ts(mgr);
  const auto config = tiny_config({Opcode::XOR, Opcode::OR, Opcode::AND, Opcode::SUB});
  const QedModel model = build_qed_model(ts, config, edsep_options(), &bug);
  bmc::Bmc checker(ts);
  bmc::BmcOptions o;
  o.max_bound = 10;
  const auto w = checker.check(o);
  ASSERT_TRUE(w.has_value());
  EXPECT_FALSE(w->bad_label.empty());
  EXPECT_EQ(w->inputs.size(), w->length + 1);
  EXPECT_EQ(w->states.size(), w->length + 1);
  const std::string rendered = bmc::witness_to_string(ts, *w);
  EXPECT_NE(rendered.find("counterexample"), std::string::npos);
}

}  // namespace
}  // namespace sepe::qed
