// Tests for the parallel verification-campaign engine: verdict parity
// between multi-threaded and sequential runs, deterministic reports,
// the BMC/k-induction race, and cooperative cancellation (the losing
// prover observes the stop flag and exits without finishing its sweep).
#include <gtest/gtest.h>

#include <atomic>

#include "engine/campaign.hpp"
#include "engine/pinned_table.hpp"
#include "engine/workload.hpp"
#include "proc/mutations.hpp"
#include "sat/solver.hpp"
#include "smt/smt_solver.hpp"

namespace sepe::engine {
namespace {

using smt::TermRef;

/// Job over a counter that increments by an input-controlled step:
/// falsified at depth `target` when target <= max_bound, bound-clean
/// otherwise (never provable — a symbolic window state can sit at the
/// target, so the inductive step stays satisfiable).
JobSpec counter_job(const std::string& name, unsigned width, std::uint64_t target,
                    const JobBudget& budget) {
  JobSpec job;
  job.name = name;
  job.budget = budget;
  job.build = [width, target](ts::TransitionSystem& ts, std::string*) {
    smt::TermManager& mgr = ts.mgr();
    const TermRef cnt = ts.add_state("cnt", width);
    const TermRef inc = ts.add_input("inc", 1);
    ts.set_init(cnt, mgr.mk_const(width, 0));
    ts.set_next(cnt, mgr.mk_ite(inc, mgr.mk_add(cnt, mgr.mk_const(width, 1)), cnt));
    ts.add_bad(mgr.mk_eq(cnt, mgr.mk_const(width, target)), "cnt-target");
    return true;
  };
  return job;
}

/// Job over a frozen register: init 0, never changes, bad = (x == 1).
/// k-induction proves it at k = 1 (x != 1 stays x != 1); BMC alone can
/// only ever sweep bounds.
JobSpec frozen_job(const std::string& name, unsigned width, const JobBudget& budget) {
  JobSpec job;
  job.name = name;
  job.budget = budget;
  job.build = [width](ts::TransitionSystem& ts, std::string*) {
    smt::TermManager& mgr = ts.mgr();
    const TermRef x = ts.add_state("x", width);
    ts.set_init(x, mgr.mk_const(width, 0));
    ts.set_next(x, x);
    ts.add_bad(mgr.mk_eq(x, mgr.mk_const(width, 1)), "x-one");
    return true;
  };
  return job;
}

TEST(EngineJob, FalsifiesReachableCounter) {
  JobBudget budget;
  budget.max_bound = 10;
  budget.max_k = 4;
  const JobResult r = run_job(counter_job("cnt5", 8, 5, budget));
  EXPECT_EQ(r.verdict, Verdict::Falsified);
  EXPECT_EQ(r.trace_length, 5u);
  EXPECT_EQ(r.bad_label, "cnt-target");
  EXPECT_NE(r.winner, Prover::None);
  EXPECT_NE(r.witness.find("counterexample of length 5"), std::string::npos);
}

TEST(EngineJob, ProvesFrozenRegisterByInduction) {
  JobBudget budget;
  budget.max_bound = 3;
  budget.max_k = 4;
  const JobResult r = run_job(frozen_job("frozen", 8, budget));
  EXPECT_EQ(r.verdict, Verdict::Proved);
  EXPECT_EQ(r.winner, Prover::KInduction);
  EXPECT_GE(r.proved_k, 1u);
}

TEST(EngineJob, BoundCleanWhenUnreachableWithinBound) {
  JobBudget budget;
  budget.max_bound = 5;
  budget.max_k = 3;
  const JobResult r = run_job(counter_job("cnt40", 8, 40, budget));
  EXPECT_EQ(r.verdict, Verdict::BoundClean);
  EXPECT_EQ(r.winner, Prover::None);
  EXPECT_EQ(r.bmc_bounds_checked, 6u);  // bounds 0..5, all clean
}

TEST(EngineJob, RaceDisabledNeverProves) {
  JobBudget budget;
  budget.max_bound = 3;
  budget.max_k = 4;
  budget.race_k_induction = false;
  const JobResult r = run_job(frozen_job("frozen", 8, budget));
  EXPECT_EQ(r.verdict, Verdict::BoundClean);
  EXPECT_EQ(r.winner, Prover::None);
}

// The acceptance check for the cancellation hook: the frozen register is
// proved by k-induction almost immediately, while the BMC side faces a
// sweep five orders of magnitude deeper than it can finish first. The
// losing BMC prover must observe the stop flag raised by the winner and
// exit mid-sweep instead of checking all 200000 bounds.
TEST(EngineJob, LosingBmcSweepIsCancelledPromptly) {
  JobBudget budget;
  budget.max_bound = 200000;
  budget.max_k = 4;
  const JobResult r = run_job(frozen_job("frozen-deep", 24, budget));
  EXPECT_EQ(r.verdict, Verdict::Proved);
  EXPECT_EQ(r.winner, Prover::KInduction);
  EXPECT_TRUE(r.loser_cancelled);
  EXPECT_LT(r.bmc_bounds_checked, 200000u);
}

TEST(EngineCancellation, PresetStopFlagCancelsBmcBeforeAnyBound) {
  smt::TermManager mgr;
  ts::TransitionSystem ts(mgr);
  const TermRef cnt = ts.add_state("cnt", 8);
  ts.set_init(cnt, mgr.mk_const(8, 0));
  ts.set_next(cnt, mgr.mk_add(cnt, mgr.mk_const(8, 1)));
  ts.add_bad(mgr.mk_eq(cnt, mgr.mk_const(8, 3)), "cnt-3");

  std::atomic<bool> stop{true};
  bmc::Bmc checker(ts);
  bmc::BmcOptions bo;
  bo.max_bound = 10;
  bo.stop = &stop;
  EXPECT_FALSE(checker.check(bo).has_value());
  EXPECT_TRUE(checker.stats().cancelled);
  EXPECT_FALSE(checker.stats().hit_resource_limit);
  EXPECT_EQ(checker.stats().bounds_checked, 0u);
}

TEST(EngineCancellation, PresetStopFlagCancelsKInduction) {
  smt::TermManager mgr;
  ts::TransitionSystem ts(mgr);
  const TermRef x = ts.add_state("x", 8);
  ts.set_init(x, mgr.mk_const(8, 0));
  ts.set_next(x, x);
  ts.add_bad(mgr.mk_eq(x, mgr.mk_const(8, 1)), "x-one");

  std::atomic<bool> stop{true};
  bmc::KInductionOptions ko;
  ko.max_k = 5;
  ko.stop = &stop;
  const bmc::KInductionResult r = bmc::prove_by_k_induction(ts, ko);
  EXPECT_EQ(r.status, bmc::KInductionStatus::Unknown);
  EXPECT_TRUE(r.cancelled);
}

// Regression for a race in the prover duel: the losing prover can get a
// Sat result and *then* see the stop flag raised by the winner while it
// reads back the witness. Model extension inside value() (triggered by
// blasting a term the last solve never covered) must ignore the stop
// flag instead of tearing the model mid-read.
TEST(EngineCancellation, WitnessExtractionSurvivesLateStopFlag) {
  smt::TermManager mgr;
  smt::SmtSolver solver(mgr);
  std::atomic<bool> stop{false};
  solver.set_stop_flag(&stop);
  const smt::TermRef x = mgr.mk_var("x", 8);
  solver.assert_formula(mgr.mk_eq(x, mgr.mk_const(8, 42)));
  ASSERT_EQ(solver.check(), smt::Result::Sat);
  // The other prover claims the job now...
  stop.store(true);
  // ...and reading a not-yet-blasted term still extends the model.
  const smt::TermRef doubled = mgr.mk_add(x, x);
  EXPECT_EQ(solver.value(doubled), BitVec(8, 84));
  EXPECT_EQ(solver.value(x), BitVec(8, 42));
}

TEST(EngineCancellation, PresetStopFlagAbortsSatSolve) {
  sat::Solver solver;
  const int a = solver.new_var(), b = solver.new_var();
  solver.add_clause(sat::Lit(a, false), sat::Lit(b, false));
  std::atomic<bool> stop{true};
  solver.set_stop_flag(&stop);
  EXPECT_EQ(solver.solve(), sat::SolveResult::Unknown);
  stop.store(false);
  EXPECT_EQ(solver.solve(), sat::SolveResult::Sat);
}

/// A mixed 12-job campaign covering every verdict class.
CampaignSpec mixed_spec() {
  JobBudget budget;
  budget.max_bound = 8;
  budget.max_k = 3;
  CampaignSpec spec;
  spec.seed = 42;
  for (unsigned t = 1; t <= 6; ++t)
    spec.jobs.push_back(
        counter_job("cnt-" + std::to_string(t), 6 + t % 3, t, budget));
  for (unsigned w = 4; w <= 7; ++w)
    spec.jobs.push_back(frozen_job("frozen-" + std::to_string(w), w, budget));
  spec.jobs.push_back(counter_job("clean-20", 8, 20, budget));
  spec.jobs.push_back(counter_job("clean-30", 8, 30, budget));
  return spec;
}

TEST(EngineCampaign, MultiThreadedVerdictsMatchSequential) {
  const CampaignSpec spec = mixed_spec();
  CampaignOptions seq;
  seq.threads = 1;
  CampaignOptions par;
  par.threads = 4;
  const CampaignReport a = run_campaign(spec, seq);
  const CampaignReport b = run_campaign(spec, par);
  ASSERT_EQ(a.jobs.size(), spec.jobs.size());
  ASSERT_EQ(b.jobs.size(), spec.jobs.size());
  for (std::size_t i = 0; i < spec.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].name, spec.jobs[i].name) << "report out of spec order";
    EXPECT_EQ(a.jobs[i].name, b.jobs[i].name);
    EXPECT_EQ(a.jobs[i].verdict, b.jobs[i].verdict) << spec.jobs[i].name;
    EXPECT_EQ(a.jobs[i].trace_length, b.jobs[i].trace_length) << spec.jobs[i].name;
    EXPECT_EQ(a.jobs[i].proved_k, b.jobs[i].proved_k) << spec.jobs[i].name;
  }
  // Expected verdict mix: 6 falsified counters, 4 proved frozen
  // registers, 2 clean sweeps.
  EXPECT_EQ(a.count(Verdict::Falsified), 6u);
  EXPECT_EQ(a.count(Verdict::Proved), 4u);
  EXPECT_EQ(a.count(Verdict::BoundClean), 2u);
  EXPECT_EQ(a.count(Verdict::Unknown), 0u);
}

TEST(EngineCampaign, StableReportIsByteDeterministic) {
  const CampaignSpec spec = mixed_spec();
  CampaignOptions par;
  par.threads = 4;
  const std::string a = run_campaign(spec, par).to_json(/*include_timing=*/false);
  const std::string b = run_campaign(spec, par).to_json(/*include_timing=*/false);
  EXPECT_EQ(a, b);
  CampaignOptions seq;
  seq.threads = 1;
  EXPECT_EQ(a, run_campaign(spec, seq).to_json(/*include_timing=*/false));
  EXPECT_NE(a.find("\"seed\": 42"), std::string::npos);
  EXPECT_NE(a.find("\"verdict\": \"FALSIFIED\""), std::string::npos);
  EXPECT_NE(a.find("\"verdict\": \"PROVED\""), std::string::npos);
}

TEST(EngineCampaign, TableReportCountsVerdicts) {
  CampaignSpec spec;
  JobBudget budget;
  budget.max_bound = 4;
  budget.max_k = 2;
  spec.jobs.push_back(counter_job("cnt-2", 8, 2, budget));
  spec.jobs.push_back(frozen_job("frozen", 8, budget));
  CampaignOptions two;
  two.threads = 2;
  const CampaignReport report = run_campaign(spec, two);
  const std::string table = report.to_table();
  EXPECT_NE(table.find("cnt-2"), std::string::npos);
  EXPECT_NE(table.find("FALSIFIED"), std::string::npos);
  EXPECT_NE(table.find("PROVED"), std::string::npos);
  EXPECT_NE(table.find("1 falsified"), std::string::npos);
}

TEST(EngineMatrix, ExpandsMutationsTimesModes) {
  CampaignMatrix matrix;
  matrix.modes = {qed::QedMode::EddiV, qed::QedMode::EdsepV};
  auto bugs = proc::table1_single_instruction_bugs();
  bugs.resize(3);
  matrix.mutations = bugs;
  const auto pinned = make_pinned_table(4);
  matrix.equivalences = &pinned->table;
  const CampaignSpec spec = expand(matrix, 7);
  ASSERT_EQ(spec.jobs.size(), 6u);
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_EQ(spec.jobs[0].name, bugs[0].name + "/EDDI-V");
  EXPECT_EQ(spec.jobs[1].name, bugs[0].name + "/EDSEP-V");
  EXPECT_EQ(spec.jobs[1].provenance.family, kQedFamily);
  EXPECT_EQ(spec.jobs[1].provenance.mode, "EDSEP-V");
  EXPECT_EQ(spec.jobs[1].provenance.source, bugs[0].name);
  for (const JobSpec& job : spec.jobs) EXPECT_TRUE(static_cast<bool>(job.build));
}

// --- portfolio racing: verdict determinism ---

TEST(EnginePortfolio, VerdictsMatchSingleConfigRun) {
  // The same mixed campaign with a 3-wide portfolio per prover: every
  // verdict-bearing field (and hence the stable JSON byte stream) must
  // match the single-config run, whichever entrant happens to win.
  CampaignSpec spec = mixed_spec();
  CampaignOptions opts;
  opts.threads = 2;
  const CampaignReport single = run_campaign(spec, opts);
  for (JobSpec& job : spec.jobs) job.budget.portfolio = 3;
  const CampaignReport wide = run_campaign(spec, opts);
  ASSERT_EQ(single.jobs.size(), wide.jobs.size());
  for (std::size_t i = 0; i < single.jobs.size(); ++i) {
    EXPECT_EQ(single.jobs[i].verdict, wide.jobs[i].verdict) << single.jobs[i].name;
    EXPECT_EQ(single.jobs[i].trace_length, wide.jobs[i].trace_length)
        << single.jobs[i].name;
    EXPECT_EQ(single.jobs[i].proved_k, wide.jobs[i].proved_k) << single.jobs[i].name;
    EXPECT_EQ(single.jobs[i].bad_label, wide.jobs[i].bad_label) << single.jobs[i].name;
    EXPECT_EQ(single.jobs[i].witness, wide.jobs[i].witness) << single.jobs[i].name;
  }
  EXPECT_EQ(single.to_json(/*include_timing=*/false),
            wide.to_json(/*include_timing=*/false));
}

TEST(EnginePortfolio, WideFalsifiedJobReportsCanonicalWitness) {
  // A falsified job under a wide portfolio must report the same trace
  // as the default-config run even when a diversified entrant wins.
  JobBudget budget;
  budget.max_bound = 10;
  budget.max_k = 4;
  const JobResult narrow = run_job(counter_job("cnt5", 8, 5, budget));
  budget.portfolio = 4;
  const JobResult wide = run_job(counter_job("cnt5", 8, 5, budget));
  EXPECT_EQ(wide.verdict, Verdict::Falsified);
  EXPECT_EQ(wide.trace_length, narrow.trace_length);
  EXPECT_EQ(wide.bad_label, narrow.bad_label);
  EXPECT_EQ(wide.witness, narrow.witness);
}

// --- sequential deterministic perf mode (bench/campaign_perf) ---

TEST(EngineSequential, VerdictsMatchRaceAndCountersAreDeterministic) {
  CampaignSpec spec = mixed_spec();
  CampaignOptions one;
  one.threads = 1;
  const CampaignReport raced = run_campaign(spec, one);
  for (JobSpec& job : spec.jobs) job.budget.sequential_provers = true;
  const CampaignReport seq_a = run_campaign(spec, one);
  const CampaignReport seq_b = run_campaign(spec, one);
  ASSERT_EQ(raced.jobs.size(), seq_a.jobs.size());
  for (std::size_t i = 0; i < raced.jobs.size(); ++i) {
    // Same verdict fields as the race...
    EXPECT_EQ(seq_a.jobs[i].verdict, raced.jobs[i].verdict) << raced.jobs[i].name;
    EXPECT_EQ(seq_a.jobs[i].trace_length, raced.jobs[i].trace_length);
    EXPECT_EQ(seq_a.jobs[i].proved_k, raced.jobs[i].proved_k);
    EXPECT_EQ(seq_a.jobs[i].bad_label, raced.jobs[i].bad_label);
    // ...and fully reproducible work counters between runs.
    EXPECT_EQ(seq_a.jobs[i].conflicts, seq_b.jobs[i].conflicts) << raced.jobs[i].name;
    EXPECT_EQ(seq_a.jobs[i].propagations, seq_b.jobs[i].propagations);
    EXPECT_EQ(seq_a.jobs[i].decisions, seq_b.jobs[i].decisions);
    EXPECT_EQ(seq_a.jobs[i].cnf_vars, seq_b.jobs[i].cnf_vars);
    EXPECT_EQ(seq_a.jobs[i].cnf_clauses, seq_b.jobs[i].cnf_clauses);
    EXPECT_GT(seq_a.jobs[i].cnf_vars, 0u);
    EXPECT_FALSE(seq_a.jobs[i].loser_cancelled);
  }
  // Tiny jobs can fold to zero problem clauses, but not a whole campaign.
  std::uint64_t total_clauses = 0;
  for (const JobResult& j : seq_a.jobs) total_clauses += j.cnf_clauses;
  EXPECT_GT(total_clauses, 0u);
  EXPECT_EQ(raced.to_json(false), seq_a.to_json(false));
}

// --- Plaisted–Greenbaum vs full Tseitin across the pinned QED table ---

TEST(EngineQedEncoding, PlaistedGreenbaumMatchesTseitinVerdicts) {
  // Both encodings must agree on the QED verification models themselves:
  // one falsifiable EDSEP-V job (Sat path) and one clean EDDI-V sweep
  // (Unsat path) per sampled Table-1 bug, driven through Bmc directly so
  // the encoding is the only difference.
  const auto pinned = make_pinned_table(4);
  const auto bugs = proc::table1_single_instruction_bugs();
  CampaignMatrix matrix;
  matrix.xlen = 4;
  matrix.modes = {qed::QedMode::EddiV, qed::QedMode::EdsepV};
  matrix.equivalences = &pinned->table;
  for (std::size_t bi = 0; bi < 2; ++bi) {
    for (qed::QedMode mode : matrix.modes) {
      matrix.mutations = {bugs[bi]};
      const proc::ProcConfig config = derive_duv_config(matrix, &bugs[bi]);
      const JobSpec job =
          make_qed_job(bugs[bi].name, mode, config, bugs[bi], &pinned->table, {});
      // EDDI-V misses these bugs (clean sweep); keep its bound shallow so
      // the double encode stays unit-test sized. EDSEP-V falsifies at 6.
      const unsigned bound = mode == qed::QedMode::EddiV ? 3 : 6;
      std::optional<unsigned> lengths[2];
      for (int pg = 0; pg < 2; ++pg) {
        smt::TermManager mgr;
        ts::TransitionSystem ts(mgr);
        std::string build_error;
        ASSERT_TRUE(job.build(ts, &build_error)) << build_error;
        bmc::Bmc checker(ts, sat::SolverConfig{}, /*plaisted_greenbaum=*/pg == 1);
        bmc::BmcOptions bo;
        bo.max_bound = bound;
        const auto w = checker.check(bo);
        lengths[pg] = w ? std::optional<unsigned>(w->length) : std::nullopt;
      }
      EXPECT_EQ(lengths[0], lengths[1])
          << bugs[bi].name << " " << mode_tag(mode) << ": encodings disagree";
      if (mode == qed::QedMode::EdsepV) {
        ASSERT_TRUE(lengths[0].has_value()) << bugs[bi].name;
        EXPECT_EQ(*lengths[0], 6u);
      } else {
        EXPECT_FALSE(lengths[0].has_value()) << bugs[bi].name;
      }
    }
  }
}

// End-to-end integration: a real Table-1 QED job through the engine. The
// xor_as_or bug is invisible to EDDI-V (uniform corruption) and must be
// falsified under EDSEP-V with the pinned equivalence table.
TEST(EngineQedIntegration, EdsepFalsifiesSingleInstructionBug) {
  const auto pinned = make_pinned_table(4);
  proc::Mutation bug;
  bool found = false;
  for (const proc::Mutation& m : proc::table1_single_instruction_bugs())
    if (m.name == "xor_as_or") {
      bug = m;
      found = true;
    }
  ASSERT_TRUE(found);

  CampaignMatrix matrix;
  matrix.xlen = 4;
  matrix.modes = {qed::QedMode::EdsepV};
  matrix.mutations = {bug};
  matrix.equivalences = &pinned->table;
  matrix.budget.max_bound = 6;
  matrix.budget.max_k = 2;
  CampaignOptions two;
  two.threads = 2;
  const CampaignReport report = run_campaign(expand(matrix, 1), two);
  ASSERT_EQ(report.jobs.size(), 1u);
  EXPECT_EQ(report.jobs[0].verdict, Verdict::Falsified);
  EXPECT_EQ(report.jobs[0].trace_length, 6u);
}

}  // namespace
}  // namespace sepe::engine
