// Tests for the bit-blaster and SMT solver facade: every word-level
// operator is cross-checked against the concrete evaluator by solving
// "op(a,b) != reference" (must be Unsat) and by model extraction sweeps.
#include <gtest/gtest.h>

#include "smt/smt_solver.hpp"
#include "util/rng.hpp"

namespace sepe::smt {
namespace {

TEST(SmtSolver, TrivialEquality) {
  TermManager m;
  SmtSolver s(m);
  const TermRef a = m.mk_var("a", 8);
  s.assert_formula(m.mk_eq(a, m.mk_const(8, 42)));
  ASSERT_EQ(s.check(), Result::Sat);
  EXPECT_EQ(s.value(a).uval(), 42u);
}

TEST(SmtSolver, UnsatContradiction) {
  TermManager m;
  SmtSolver s(m);
  const TermRef a = m.mk_var("a", 8);
  s.assert_formula(m.mk_eq(a, m.mk_const(8, 1)));
  s.assert_formula(m.mk_eq(a, m.mk_const(8, 2)));
  EXPECT_EQ(s.check(), Result::Unsat);
}

TEST(SmtSolver, SolvesLinearEquation) {
  // x + 3*x == 84  =>  x == 21 (mod 256).
  TermManager m;
  SmtSolver s(m);
  const TermRef x = m.mk_var("x", 8);
  const TermRef lhs = m.mk_add(x, m.mk_mul(m.mk_const(8, 3), x));
  s.assert_formula(m.mk_eq(lhs, m.mk_const(8, 84)));
  ASSERT_EQ(s.check(), Result::Sat);
  const BitVec v = s.value(x);
  EXPECT_EQ(((v + v + v + v).uval()), 84u);
}

TEST(SmtSolver, AssumptionsAreRetractable) {
  TermManager m;
  SmtSolver s(m);
  const TermRef a = m.mk_var("a", 4);
  const TermRef is3 = m.mk_eq(a, m.mk_const(4, 3));
  const TermRef is5 = m.mk_eq(a, m.mk_const(4, 5));
  EXPECT_EQ(s.check({is3}), Result::Sat);
  EXPECT_EQ(s.value(a).uval(), 3u);
  EXPECT_EQ(s.check({is5}), Result::Sat);
  EXPECT_EQ(s.value(a).uval(), 5u);
  EXPECT_EQ(s.check({is3, is5}), Result::Unsat);
  EXPECT_EQ(s.check({is3}), Result::Sat);  // still usable
}

// Exhaustive 4-bit equivalence: circuit output equals BitVec reference for
// EVERY input pair. 256 cases per op — a real exhaustiveness guarantee.
struct BlastOpCase {
  const char* name;
  TermRef (TermManager::*mk)(TermRef, TermRef);
  BitVec (*ref)(const BitVec&, const BitVec&);
};

class BlastExhaustiveTest : public ::testing::TestWithParam<BlastOpCase> {};

TEST_P(BlastExhaustiveTest, CircuitNeverDisagreesWithReference) {
  const BlastOpCase& oc = GetParam();
  constexpr unsigned W = 4;
  TermManager m;
  SmtSolver s(m);
  const TermRef a = m.mk_var("a", W), b = m.mk_var("b", W);
  const TermRef out = (m.*oc.mk)(a, b);
  // Mirror term evaluated concretely per model: instead assert disequality
  // with a fresh output var and enumerate — simpler: for each concrete
  // input pair, check the circuit forced to those inputs yields the
  // reference output (via assumptions).
  for (unsigned x = 0; x < 16; ++x) {
    for (unsigned y = 0; y < 16; ++y) {
      const TermRef ax = m.mk_eq(a, m.mk_const(W, x));
      const TermRef by = m.mk_eq(b, m.mk_const(W, y));
      ASSERT_EQ(s.check({ax, by}), Result::Sat);
      const BitVec expect = oc.ref(BitVec(W, x), BitVec(W, y));
      EXPECT_EQ(s.value(out), expect)
          << oc.name << "(" << x << ", " << y << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, BlastExhaustiveTest,
    ::testing::Values(
        BlastOpCase{"add", &TermManager::mk_add,
                    [](const BitVec& a, const BitVec& b) { return a + b; }},
        BlastOpCase{"sub", &TermManager::mk_sub,
                    [](const BitVec& a, const BitVec& b) { return a - b; }},
        BlastOpCase{"mul", &TermManager::mk_mul,
                    [](const BitVec& a, const BitVec& b) { return a * b; }},
        BlastOpCase{"udiv", &TermManager::mk_udiv,
                    [](const BitVec& a, const BitVec& b) { return a.udiv(b); }},
        BlastOpCase{"urem", &TermManager::mk_urem,
                    [](const BitVec& a, const BitVec& b) { return a.urem(b); }},
        BlastOpCase{"sdiv", &TermManager::mk_sdiv,
                    [](const BitVec& a, const BitVec& b) { return a.sdiv(b); }},
        BlastOpCase{"srem", &TermManager::mk_srem,
                    [](const BitVec& a, const BitVec& b) { return a.srem(b); }},
        BlastOpCase{"shl", &TermManager::mk_shl,
                    [](const BitVec& a, const BitVec& b) { return a.shl(b); }},
        BlastOpCase{"lshr", &TermManager::mk_lshr,
                    [](const BitVec& a, const BitVec& b) { return a.lshr(b); }},
        BlastOpCase{"ashr", &TermManager::mk_ashr,
                    [](const BitVec& a, const BitVec& b) { return a.ashr(b); }},
        BlastOpCase{"ult", &TermManager::mk_ult,
                    [](const BitVec& a, const BitVec& b) { return a.ult(b); }},
        BlastOpCase{"ule", &TermManager::mk_ule,
                    [](const BitVec& a, const BitVec& b) { return a.ule(b); }},
        BlastOpCase{"slt", &TermManager::mk_slt,
                    [](const BitVec& a, const BitVec& b) { return a.slt(b); }},
        BlastOpCase{"sle", &TermManager::mk_sle,
                    [](const BitVec& a, const BitVec& b) { return a.sle(b); }}),
    [](const ::testing::TestParamInfo<BlastOpCase>& info) { return info.param.name; });

// Validity checks at 16 bits: assert the negation of an identity; Unsat
// means the identity holds for all 2^32 input pairs.
class BlastValidityTest : public ::testing::Test {
 protected:
  TermManager m;
  void expect_valid(TermRef property) {
    SmtSolver s(m);
    s.assert_formula(m.mk_not(property));
    EXPECT_EQ(s.check(), Result::Unsat);
  }
  void expect_falsifiable(TermRef property) {
    SmtSolver s(m);
    s.assert_formula(m.mk_not(property));
    EXPECT_EQ(s.check(), Result::Sat);
  }
};

TEST_F(BlastValidityTest, SubEqualsXoriAddXori) {
  // The paper's Listing 1 equivalence, proven for all 16-bit inputs.
  const TermRef a = m.mk_var("a", 16), b = m.mk_var("b", 16);
  const TermRef ones = m.mk_const(BitVec::ones(16));
  const TermRef t1 = m.mk_xor(a, ones);
  const TermRef t2 = m.mk_add(t1, b);
  const TermRef rd = m.mk_xor(t2, ones);
  expect_valid(m.mk_eq(m.mk_sub(a, b), rd));
}

TEST_F(BlastValidityTest, AddCommutes) {
  const TermRef a = m.mk_var("a", 16), b = m.mk_var("b", 16);
  expect_valid(m.mk_eq(m.mk_add(a, b), m.mk_add(b, a)));
}

TEST_F(BlastValidityTest, NegIsNotPlusOne) {
  const TermRef a = m.mk_var("a", 16);
  expect_valid(m.mk_eq(m.mk_neg(a), m.mk_add(m.mk_not(a), m.mk_const(16, 1))));
}

TEST_F(BlastValidityTest, DeMorgan) {
  const TermRef a = m.mk_var("a", 16), b = m.mk_var("b", 16);
  expect_valid(m.mk_eq(m.mk_not(m.mk_and(a, b)), m.mk_or(m.mk_not(a), m.mk_not(b))));
}

TEST_F(BlastValidityTest, ShlByOneIsDouble) {
  const TermRef a = m.mk_var("a", 16);
  expect_valid(m.mk_eq(m.mk_shl(a, m.mk_const(16, 1)), m.mk_add(a, a)));
}

TEST_F(BlastValidityTest, SltIsNotAntisymmetricWithoutEquality) {
  // A deliberately false "identity" — solver must find the counterexample.
  const TermRef a = m.mk_var("a", 16), b = m.mk_var("b", 16);
  expect_falsifiable(m.mk_eq(m.mk_slt(a, b), m.mk_not(m.mk_slt(b, a))));
}

TEST_F(BlastValidityTest, MulDistributesOverAdd) {
  // 6 bits: multiplication-heavy UNSAT proofs grow ~6x in conflicts per
  // extra bit on a plain CDCL core (measured); 6 bits proves the identity
  // in a couple of seconds, which is what a unit test can afford.
  const TermRef a = m.mk_var("a", 6), b = m.mk_var("b", 6), c = m.mk_var("c", 6);
  expect_valid(m.mk_eq(m.mk_mul(a, m.mk_add(b, c)),
                       m.mk_add(m.mk_mul(a, b), m.mk_mul(a, c))));
}

TEST_F(BlastValidityTest, UltTrichotomy) {
  const TermRef a = m.mk_var("a", 16), b = m.mk_var("b", 16);
  const TermRef lt = m.mk_ult(a, b), gt = m.mk_ult(b, a), eq = m.mk_eq(a, b);
  expect_valid(m.mk_or(lt, m.mk_or(gt, eq)));
  expect_valid(m.mk_not(m.mk_and(lt, gt)));
  expect_valid(m.mk_not(m.mk_and(lt, eq)));
}

TEST_F(BlastValidityTest, ExtractConcatRoundTrip) {
  const TermRef a = m.mk_var("a", 16);
  expect_valid(m.mk_eq(m.mk_concat(m.mk_extract(a, 15, 8), m.mk_extract(a, 7, 0)), a));
}

TEST_F(BlastValidityTest, IteSelects) {
  const TermRef c = m.mk_var("c", 1);
  const TermRef a = m.mk_var("a", 16), b = m.mk_var("b", 16);
  const TermRef ite = m.mk_ite(c, a, b);
  expect_valid(m.mk_implies(c, m.mk_eq(ite, a)));
  expect_valid(m.mk_implies(m.mk_not(c), m.mk_eq(ite, b)));
}

// --- Plaisted–Greenbaum (polarity-aware) encoding vs full Tseitin ---

/// Convenience: an SmtSolver using the opt-in polarity-split encoding.
smt::SmtSolver pg_solver(TermManager& m) {
  return smt::SmtSolver(m, sat::SolverConfig{}, /*plaisted_greenbaum=*/true);
}

TEST(PlaistedGreenbaum, AgreesOnValidities) {
  // The BlastValidityTest identities, re-proven under the polarity-split
  // encoding: Unsat must stay Unsat.
  TermManager m;
  const TermRef a = m.mk_var("a", 8), b = m.mk_var("b", 8);
  const TermRef ones = m.mk_const(BitVec::ones(8));
  const std::vector<TermRef> identities = {
      m.mk_eq(m.mk_sub(a, b),
              m.mk_xor(m.mk_add(m.mk_xor(a, ones), b), ones)),  // Listing 1
      m.mk_eq(m.mk_add(a, b), m.mk_add(b, a)),
      m.mk_eq(m.mk_neg(a), m.mk_add(m.mk_not(a), m.mk_const(8, 1))),
      m.mk_eq(m.mk_not(m.mk_and(a, b)), m.mk_or(m.mk_not(a), m.mk_not(b))),
      m.mk_or(m.mk_ult(a, b), m.mk_or(m.mk_ult(b, a), m.mk_eq(a, b))),
  };
  for (TermRef identity : identities) {
    auto s = pg_solver(m);
    s.assert_formula(m.mk_not(identity));
    EXPECT_EQ(s.check(), Result::Unsat) << m.to_string(identity);
  }
}

TEST(PlaistedGreenbaum, ExhaustivelyAgreesWithReferenceOps) {
  // 4-bit exhaustive sweep of a mixed circuit under assumptions, with
  // model read-back: exercises positive-polarity assumption cones and
  // the evaluation-based value() under partial encodings.
  constexpr unsigned W = 4;
  TermManager m;
  auto s = pg_solver(m);
  const TermRef a = m.mk_var("a", W), b = m.mk_var("b", W);
  const TermRef mixed =
      m.mk_ite(m.mk_ult(a, b), m.mk_mul(a, b), m.mk_sub(a, b));
  for (unsigned x = 0; x < 16; ++x) {
    for (unsigned y = 0; y < 16; ++y) {
      const TermRef ax = m.mk_eq(a, m.mk_const(W, x));
      const TermRef by = m.mk_eq(b, m.mk_const(W, y));
      ASSERT_EQ(s.check({ax, by}), Result::Sat);
      const BitVec va(W, x), vb(W, y);
      const BitVec expect = va.ult(vb).is_true() ? va * vb : va - vb;
      EXPECT_EQ(s.value(mixed), expect) << x << ", " << y;
    }
  }
}

TEST(PlaistedGreenbaum, VerdictsMatchFullTseitinOnRandomFormulas) {
  // Random Boolean-skeleton-heavy formulas solved under both encodings:
  // Sat/Unsat must agree, and Sat models (read through value()) must
  // evaluate the root to true in both.
  Rng rng(0xb1a57);
  for (int round = 0; round < 40; ++round) {
    TermManager m;
    const TermRef a = m.mk_var("a", 4), b = m.mk_var("b", 4), c = m.mk_var("c", 4);
    // A random comparison tree glued with random connectives.
    const auto atom = [&](int which) {
      switch (which % 5) {
        case 0: return m.mk_ult(a, b);
        case 1: return m.mk_eq(m.mk_add(a, c), b);
        case 2: return m.mk_slt(b, c);
        case 3: return m.mk_ne(m.mk_and(a, b), c);
        default: return m.mk_eq(m.mk_mul(a, m.mk_const(4, 3)), c);
      }
    };
    TermRef f = atom(static_cast<int>(rng.below(5)));
    for (int i = 0; i < 6; ++i) {
      const TermRef g = atom(static_cast<int>(rng.below(5)));
      switch (rng.below(4)) {
        case 0: f = m.mk_and(f, g); break;
        case 1: f = m.mk_or(f, g); break;
        case 2: f = m.mk_and(f, m.mk_not(g)); break;
        default: f = m.mk_ite(g, f, m.mk_not(f)); break;
      }
    }
    smt::SmtSolver full(m);
    auto pg = pg_solver(m);
    full.assert_formula(f);
    pg.assert_formula(f);
    const Result rf = full.check();
    const Result rp = pg.check();
    EXPECT_EQ(rf, rp) << "round " << round;
    if (rf == Result::Sat) {
      EXPECT_TRUE(full.value(f).is_true());
    }
    if (rp == Result::Sat) {
      EXPECT_TRUE(pg.value(f).is_true());
    }
  }
}

TEST(PlaistedGreenbaum, SingleSidedConeEmitsFewerClauses) {
  // Asserting a one-sided Boolean cone must cost strictly fewer clauses
  // under the polarity-split encoding than under full Tseitin.
  TermManager m;
  TermRef f = m.mk_true();
  for (int i = 0; i < 16; ++i) {
    const TermRef x = m.mk_var("x" + std::to_string(i), 4);
    const TermRef y = m.mk_var("y" + std::to_string(i), 4);
    f = m.mk_and(f, m.mk_or(m.mk_ult(x, y), m.mk_eq(x, m.mk_const(4, i))));
  }
  smt::SmtSolver full(m);
  auto pg = pg_solver(m);
  full.assert_formula(f);
  pg.assert_formula(f);
  EXPECT_LT(pg.sat_solver().num_clauses(), full.sat_solver().num_clauses());
  // Same variables either way — PG prunes clauses, never literals.
  EXPECT_EQ(pg.sat_solver().num_vars(), full.sat_solver().num_vars());
}

TEST(PlaistedGreenbaum, PolarityWideningKeepsVerdicts) {
  // The same cached cone used positively, then negatively: the second
  // use must add the missing clause direction, not corrupt the first.
  TermManager m;
  auto s = pg_solver(m);
  const TermRef a = m.mk_var("a", 8);
  const TermRef inside = m.mk_ult(a, m.mk_const(8, 10));
  EXPECT_EQ(s.check({inside}), Result::Sat);
  EXPECT_TRUE(s.value(a).ult(BitVec(8, 10)).is_true());
  EXPECT_EQ(s.check({m.mk_not(inside)}), Result::Sat);
  EXPECT_FALSE(s.value(a).ult(BitVec(8, 10)).is_true());
  EXPECT_EQ(s.check({inside, m.mk_not(inside)}), Result::Unsat);
  EXPECT_EQ(s.check({inside}), Result::Sat);  // still usable
}

TEST(BitBlasterSharing, SharedSubtermsEncodeOnce) {
  TermManager m;
  sat::Solver sat;
  BitBlaster bb(m, sat);
  const TermRef a = m.mk_var("a", 32), b = m.mk_var("b", 32);
  const TermRef sum = m.mk_add(a, b);
  bb.blast(sum);
  const int vars_after_first = sat.num_vars();
  bb.blast(m.mk_add(a, b));  // same node — no new encoding
  EXPECT_EQ(sat.num_vars(), vars_after_first);
}

}  // namespace
}  // namespace sepe::smt
