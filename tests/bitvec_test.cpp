// Unit and property tests for the BitVec value library.
#include <gtest/gtest.h>

#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace sepe {
namespace {

TEST(BitVec, ConstructionMasksToWidth) {
  EXPECT_EQ(BitVec(8, 0x1ff).uval(), 0xffu);
  EXPECT_EQ(BitVec(1, 3).uval(), 1u);
  EXPECT_EQ(BitVec(64, ~0ULL).uval(), ~0ULL);
}

TEST(BitVec, SignedInterpretation) {
  EXPECT_EQ(BitVec(8, 0xff).sval(), -1);
  EXPECT_EQ(BitVec(8, 0x80).sval(), -128);
  EXPECT_EQ(BitVec(8, 0x7f).sval(), 127);
  EXPECT_EQ(BitVec(32, 0xffffffff).sval(), -1);
  EXPECT_EQ(BitVec(64, ~0ULL).sval(), -1);
}

TEST(BitVec, ArithmeticWraps) {
  EXPECT_EQ((BitVec(8, 0xff) + BitVec(8, 1)).uval(), 0u);
  EXPECT_EQ((BitVec(8, 0) - BitVec(8, 1)).uval(), 0xffu);
  EXPECT_EQ((BitVec(8, 16) * BitVec(8, 16)).uval(), 0u);
  EXPECT_EQ((-BitVec(8, 1)).uval(), 0xffu);
}

TEST(BitVec, MulhMatchesWideMultiply) {
  // 32-bit MULH of -1 * -1 = 0 (high word of 1).
  const BitVec m1 = BitVec::ones(32);
  EXPECT_EQ(m1.mulh_ss(m1).uval(), 0u);
  // MULHU of all-ones: (2^32-1)^2 >> 32 = 2^32 - 2.
  EXPECT_EQ(m1.mulh_uu(m1).uval(), 0xfffffffeu);
  // MULHSU: -1 * (2^32-1) = -(2^32-1), high word = all-ones.
  EXPECT_EQ(m1.mulh_su(m1).uval(), 0xffffffffu);
}

TEST(BitVec, DivisionCornersFollowRiscV) {
  const BitVec zero = BitVec::zeros(32);
  const BitVec x(32, 1234);
  EXPECT_EQ(x.udiv(zero), BitVec::ones(32));
  EXPECT_EQ(x.urem(zero), x);
  EXPECT_EQ(x.sdiv(zero), BitVec::ones(32));  // -1
  EXPECT_EQ(x.srem(zero), x);
  const BitVec int_min(32, 0x80000000u);
  const BitVec neg1 = BitVec::ones(32);
  EXPECT_EQ(int_min.sdiv(neg1), int_min);  // overflow
  EXPECT_EQ(int_min.srem(neg1), zero);
}

TEST(BitVec, ShiftsSaturatePerSmtLib) {
  const BitVec x(8, 0x81);
  EXPECT_EQ(x.shl(BitVec(8, 9)).uval(), 0u);
  EXPECT_EQ(x.lshr(BitVec(8, 9)).uval(), 0u);
  EXPECT_EQ(x.ashr(BitVec(8, 9)).uval(), 0xffu);  // sign fill
  EXPECT_EQ(x.ashr(BitVec(8, 1)).uval(), 0xc0u);
}

TEST(BitVec, MaskedShiftsFollowRiscV) {
  // RISC-V register shifts use the low log2(XLEN) bits of the amount.
  const BitVec x(32, 1);
  EXPECT_EQ(x.shl_masked(BitVec(32, 33)).uval(), 2u);  // 33 & 31 == 1
  EXPECT_EQ(BitVec(32, 4).lshr_masked(BitVec(32, 34)).uval(), 1u);
}

TEST(BitVec, Comparisons) {
  const BitVec a(8, 0x80), b(8, 0x01);
  EXPECT_TRUE(b.ult(a).is_true());   // unsigned: 1 < 128
  EXPECT_TRUE(a.slt(b).is_true());   // signed: -128 < 1
  EXPECT_TRUE(a.eq(a).is_true());
  EXPECT_TRUE(a.ne(b).is_true());
  EXPECT_TRUE(a.ule(a).is_true());
  EXPECT_TRUE(a.sle(a).is_true());
}

TEST(BitVec, StructuralOps) {
  const BitVec x(8, 0xa5);
  EXPECT_EQ(x.zext(16).uval(), 0xa5u);
  EXPECT_EQ(x.sext(16).uval(), 0xffa5u);
  EXPECT_EQ(x.extract(7, 4).uval(), 0xau);
  EXPECT_EQ(x.extract(3, 0).uval(), 0x5u);
  EXPECT_EQ(BitVec(4, 0xa).concat(BitVec(4, 0x5)).uval(), 0xa5u);
  EXPECT_EQ(BitVec(4, 0xa).concat(BitVec(4, 0x5)).width(), 8u);
}

TEST(BitVec, Formatting) {
  EXPECT_EQ(BitVec(16, 0xff).to_hex(), "0x00ff");
  EXPECT_EQ(BitVec(4, 0x5).to_bin(), "0b0101");
}

// --- property sweeps over widths ---

class BitVecWidthTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(BitVecWidthTest, TwosComplementIdentity) {
  // -x == ~x + 1 at every width (the identity SEPE-SQED's SUB equivalence
  // program relies on).
  const unsigned w = GetParam();
  Rng rng(0xc0ffee ^ w);
  for (int i = 0; i < 200; ++i) {
    const BitVec x = rng.interesting_bitvec(w);
    EXPECT_EQ(-x, ~x + BitVec(w, 1));
  }
}

TEST_P(BitVecWidthTest, SubViaXoriAddXori) {
  // a - b == ~(~a + b): the Listing-1 equivalence from the paper.
  const unsigned w = GetParam();
  Rng rng(0xdead ^ w);
  for (int i = 0; i < 200; ++i) {
    const BitVec a = rng.interesting_bitvec(w), b = rng.interesting_bitvec(w);
    EXPECT_EQ(a - b, ~(~a + b));
  }
}

TEST_P(BitVecWidthTest, DeMorgan) {
  const unsigned w = GetParam();
  Rng rng(0xbeef ^ w);
  for (int i = 0; i < 200; ++i) {
    const BitVec a = rng.interesting_bitvec(w), b = rng.interesting_bitvec(w);
    EXPECT_EQ(~(a & b), ~a | ~b);
    EXPECT_EQ(~(a | b), ~a & ~b);
  }
}

TEST_P(BitVecWidthTest, DivRemReconstruction) {
  // a == udiv(a,b)*b + urem(a,b) whenever b != 0.
  const unsigned w = GetParam();
  Rng rng(0xfeed ^ w);
  for (int i = 0; i < 200; ++i) {
    const BitVec a = rng.interesting_bitvec(w), b = rng.interesting_bitvec(w);
    if (b.is_zero()) continue;
    EXPECT_EQ(a, a.udiv(b) * b + a.urem(b));
    EXPECT_EQ(a, a.sdiv(b) * b + a.srem(b));
  }
}

TEST_P(BitVecWidthTest, ExtractConcatRoundTrip) {
  const unsigned w = GetParam();
  if (w < 2 || w > 32) return;
  Rng rng(0x1234 ^ w);
  for (int i = 0; i < 100; ++i) {
    const BitVec x = rng.bitvec(w);
    const unsigned cut = 1 + static_cast<unsigned>(rng.below(w - 1));
    EXPECT_EQ(x.extract(w - 1, cut).concat(x.extract(cut - 1, 0)), x);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitVecWidthTest,
                         ::testing::Values(1u, 4u, 8u, 12u, 16u, 31u, 32u, 33u, 64u));

}  // namespace
}  // namespace sepe
