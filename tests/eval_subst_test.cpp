// Tests for the concrete evaluator and the substitution engine — the two
// term-DAG services under the BMC unroller, CEGIS counterexample replay
// and the TsSim harness.
#include <gtest/gtest.h>

#include "smt/eval.hpp"
#include "smt/subst.hpp"
#include "util/rng.hpp"

namespace sepe::smt {
namespace {

TEST(Evaluator, ConstantsEvaluateToThemselves) {
  TermManager mgr;
  EXPECT_EQ(eval_term(mgr, mgr.mk_const(8, 42), {}), BitVec(8, 42));
  EXPECT_EQ(eval_term(mgr, mgr.mk_true(), {}), BitVec::boolean(true));
}

TEST(Evaluator, UnassignedVariablesReadZero) {
  TermManager mgr;
  const TermRef x = mgr.mk_var("x", 16);
  EXPECT_EQ(eval_term(mgr, x, {}), BitVec::zeros(16));
  EXPECT_EQ(eval_term(mgr, mgr.mk_add(x, mgr.mk_const(16, 5)), {}), BitVec(16, 5));
}

TEST(Evaluator, AssignmentDrivesVariables) {
  TermManager mgr;
  const TermRef x = mgr.mk_var("x", 8), y = mgr.mk_var("y", 8);
  const Assignment a{{x, BitVec(8, 200)}, {y, BitVec(8, 100)}};
  EXPECT_EQ(eval_term(mgr, mgr.mk_add(x, y), a), BitVec(8, 44));  // wraps
  EXPECT_EQ(eval_term(mgr, mgr.mk_ult(y, x), a), BitVec::boolean(true));
}

TEST(Evaluator, CoversEveryOperator) {
  // One term per Op; each checked against the BitVec reference.
  TermManager mgr;
  const BitVec va(8, 0xb6), vb(8, 0x2f);
  const TermRef a = mgr.mk_var("a", 8), b = mgr.mk_var("b", 8);
  const Assignment assign{{a, va}, {b, vb}};
  const auto chk = [&](TermRef t, const BitVec& expect) {
    EXPECT_EQ(eval_term(mgr, t, assign), expect) << mgr.to_string(t);
  };
  chk(mgr.mk_not(a), ~va);
  chk(mgr.mk_and(a, b), va & vb);
  chk(mgr.mk_or(a, b), va | vb);
  chk(mgr.mk_xor(a, b), va ^ vb);
  chk(mgr.mk_neg(a), -va);
  chk(mgr.mk_add(a, b), va + vb);
  chk(mgr.mk_sub(a, b), va - vb);
  chk(mgr.mk_mul(a, b), va * vb);
  chk(mgr.mk_udiv(a, b), va.udiv(vb));
  chk(mgr.mk_urem(a, b), va.urem(vb));
  chk(mgr.mk_sdiv(a, b), va.sdiv(vb));
  chk(mgr.mk_srem(a, b), va.srem(vb));
  chk(mgr.mk_shl(a, b), va.shl(vb));
  chk(mgr.mk_lshr(a, b), va.lshr(vb));
  chk(mgr.mk_ashr(a, b), va.ashr(vb));
  chk(mgr.mk_ult(a, b), va.ult(vb));
  chk(mgr.mk_ule(a, b), va.ule(vb));
  chk(mgr.mk_slt(a, b), va.slt(vb));
  chk(mgr.mk_sle(a, b), va.sle(vb));
  chk(mgr.mk_eq(a, b), va.eq(vb));
  chk(mgr.mk_ne(a, b), va.ne(vb));
  chk(mgr.mk_ite(mgr.mk_ult(a, b), a, b), va.ult(vb).is_true() ? va : vb);
  chk(mgr.mk_concat(a, b), va.concat(vb));
  chk(mgr.mk_extract(a, 6, 2), va.extract(6, 2));
  chk(mgr.mk_zext(a, 12), va.zext(12));
  chk(mgr.mk_sext(a, 12), va.sext(12));
}

TEST(Evaluator, MemoizesAcrossSharedSubterms) {
  // A DAG whose tree expansion is exponential: evaluation must finish
  // instantly because shared nodes are computed once.
  TermManager mgr;
  const TermRef x = mgr.mk_var("x", 32);
  TermRef t = x;
  for (int i = 0; i < 60; ++i) t = mgr.mk_add(t, t);  // t = x * 2^60
  const Assignment a{{x, BitVec(32, 3)}};
  // 3 * 2^60 mod 2^32 = 0 (2^60 ≡ 0 mod 2^32).
  EXPECT_EQ(eval_term(mgr, t, a), BitVec::zeros(32));
}

TEST(Evaluator, InstanceIsBoundToOneAssignment) {
  TermManager mgr;
  const TermRef x = mgr.mk_var("x", 8);
  const TermRef t = mgr.mk_add(x, mgr.mk_const(8, 1));
  Evaluator ev(mgr);
  EXPECT_EQ(ev.eval(t, {{x, BitVec(8, 1)}}), BitVec(8, 2));
  // Same instance + same assignment: cached result is consistent.
  EXPECT_EQ(ev.eval(t, {{x, BitVec(8, 1)}}), BitVec(8, 2));
}

// --- substitution ---

TEST(Substitute, ReplacesVariables) {
  TermManager mgr;
  const TermRef x = mgr.mk_var("x", 8), y = mgr.mk_var("y", 8);
  const TermRef t = mgr.mk_add(x, y);
  const SubstMap map{{x, mgr.mk_const(8, 3)}};
  const TermRef out = substitute(mgr, t, map);
  EXPECT_EQ(out, mgr.mk_add(mgr.mk_const(8, 3), y));
}

TEST(Substitute, IdentityWhenNoVariableMatches) {
  TermManager mgr;
  const TermRef x = mgr.mk_var("x", 8);
  const TermRef t = mgr.mk_mul(x, x);
  EXPECT_EQ(substitute(mgr, t, {}), t);  // hash-consing: same node back
}

TEST(Substitute, MapsVariablesToArbitraryTerms) {
  TermManager mgr;
  const TermRef x = mgr.mk_var("x", 8), y = mgr.mk_var("y", 8);
  const TermRef t = mgr.mk_sub(x, mgr.mk_const(8, 1));
  const SubstMap map{{x, mgr.mk_add(y, y)}};
  const TermRef out = substitute(mgr, t, map);
  const Assignment a{{y, BitVec(8, 5)}};
  EXPECT_EQ(eval_term(mgr, out, a), BitVec(8, 9));  // (5+5)-1
}

TEST(Substitute, ComposesLikeTheBmcUnroller) {
  // next(s) = s + in; two unrolling steps by repeated substitution must
  // equal s0 + in0 + in1.
  TermManager mgr;
  const TermRef s = mgr.mk_var("s", 8), in = mgr.mk_var("in", 8);
  const TermRef next = mgr.mk_add(s, in);

  const TermRef s0 = mgr.mk_var("s@0", 8), in0 = mgr.mk_var("in@0", 8),
                in1 = mgr.mk_var("in@1", 8);
  const TermRef s1 = substitute(mgr, next, SubstMap{{s, s0}, {in, in0}});
  const TermRef s2 = substitute(mgr, next, SubstMap{{s, s1}, {in, in1}});
  const Assignment a{{s0, BitVec(8, 1)}, {in0, BitVec(8, 2)}, {in1, BitVec(8, 4)}};
  EXPECT_EQ(eval_term(mgr, s2, a), BitVec(8, 7));
}

TEST(Substitute, SharedCacheIsStablePerMap) {
  TermManager mgr;
  const TermRef x = mgr.mk_var("x", 8);
  TermRef t = x;
  for (int i = 0; i < 100; ++i) t = mgr.mk_add(t, mgr.mk_const(8, 1));
  SubstMap map{{x, mgr.mk_const(8, 0)}};
  SubstMap cache;
  const TermRef a = substitute(mgr, t, map, &cache);
  const TermRef b = substitute(mgr, t, map, &cache);  // fully cached
  EXPECT_EQ(a, b);
  EXPECT_EQ(eval_term(mgr, a, {}), BitVec(8, 100));
}

TEST(Substitute, DeepDagDoesNotOverflowTheStack) {
  TermManager mgr;
  const TermRef x = mgr.mk_var("x", 8);
  TermRef t = x;
  for (int i = 0; i < 200000; ++i) t = mgr.mk_add(t, mgr.mk_const(8, 1));
  const TermRef out = substitute(mgr, t, SubstMap{{x, mgr.mk_const(8, 1)}});
  EXPECT_EQ(eval_term(mgr, out, {}), BitVec(8, (1 + 200000) & 0xff));
}

// Random differential property: substitute-then-evaluate equals
// evaluate-with-extended-assignment.
TEST(SubstituteProperty, CommutesWithEvaluation) {
  Rng rng(77);
  for (int round = 0; round < 50; ++round) {
    TermManager mgr;
    const TermRef x = mgr.mk_var("x", 8), y = mgr.mk_var("y", 8), z = mgr.mk_var("z", 8);
    // Build a random little expression over x, y, z.
    std::vector<TermRef> pool{x, y, z, mgr.mk_const(8, rng.below(256))};
    for (int i = 0; i < 12; ++i) {
      const TermRef a = pool[rng.below(pool.size())];
      const TermRef b = pool[rng.below(pool.size())];
      switch (rng.below(5)) {
        case 0: pool.push_back(mgr.mk_add(a, b)); break;
        case 1: pool.push_back(mgr.mk_xor(a, b)); break;
        case 2: pool.push_back(mgr.mk_mul(a, b)); break;
        case 3: pool.push_back(mgr.mk_ite(mgr.mk_ult(a, b), a, b)); break;
        default: pool.push_back(mgr.mk_sub(a, b)); break;
      }
    }
    const TermRef t = pool.back();
    const BitVec vy = rng.bitvec(8), vz = rng.bitvec(8), vx = rng.bitvec(8);
    // Path 1: substitute x := y ^ z, then evaluate with {y, z}.
    const TermRef sub = substitute(mgr, t, SubstMap{{x, mgr.mk_xor(y, z)}});
    const BitVec r1 = eval_term(mgr, sub, {{y, vy}, {z, vz}});
    // Path 2: evaluate the original with x bound to vy ^ vz.
    const BitVec r2 = eval_term(mgr, t, {{x, vy ^ vz}, {y, vy}, {z, vz}});
    ASSERT_EQ(r1, r2) << "round " << round;
    (void)vx;
  }
}

}  // namespace
}  // namespace sepe::smt
