// Tests for the campaign sharding + report-merge subsystem: the planner
// partitions the expanded job list deterministically (no overlap, no
// gaps, reproducible across runs), merge is order-insensitive and
// rejects overlapping/incomplete shard sets, merged stable JSON is
// byte-identical to an unsharded run, reports round-trip through their
// JSON form, and an interrupted shard resumes from its checkpoint
// without re-running finished jobs.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "engine/campaign.hpp"
#include "engine/report_io.hpp"
#include "engine/shard.hpp"

namespace sepe::engine {
namespace {

using smt::TermRef;

/// Shared counter of model-builder invocations, for asserting that a
/// resumed run does not rebuild finished jobs.
std::atomic<unsigned> g_builds{0};

/// Counter that increments by an input-controlled step: falsified at
/// depth `target` when target <= max_bound, bound-clean otherwise.
JobSpec counter_job(const std::string& name, unsigned width, std::uint64_t target,
                    const JobBudget& budget) {
  JobSpec job;
  job.name = name;
  job.budget = budget;
  job.build = [width, target](ts::TransitionSystem& ts, std::string*) {
    g_builds.fetch_add(1);
    smt::TermManager& mgr = ts.mgr();
    const TermRef cnt = ts.add_state("cnt", width);
    const TermRef inc = ts.add_input("inc", 1);
    ts.set_init(cnt, mgr.mk_const(width, 0));
    ts.set_next(cnt, mgr.mk_ite(inc, mgr.mk_add(cnt, mgr.mk_const(width, 1)), cnt));
    ts.add_bad(mgr.mk_eq(cnt, mgr.mk_const(width, target)), "cnt-target");
    return true;
  };
  return job;
}

/// Frozen register: proved by k-induction at k = 1.
JobSpec frozen_job(const std::string& name, unsigned width, const JobBudget& budget) {
  JobSpec job;
  job.name = name;
  job.budget = budget;
  job.build = [width](ts::TransitionSystem& ts, std::string*) {
    g_builds.fetch_add(1);
    smt::TermManager& mgr = ts.mgr();
    const TermRef x = ts.add_state("x", width);
    ts.set_init(x, mgr.mk_const(width, 0));
    ts.set_next(x, x);
    ts.add_bad(mgr.mk_eq(x, mgr.mk_const(width, 1)), "x-one");
    return true;
  };
  return job;
}

/// A 14-job spec covering every verdict class, with names whose
/// lexicographic order differs from spec order (exercising the
/// rank-based assignment).
CampaignSpec mixed_spec() {
  JobBudget budget;
  budget.max_bound = 8;
  budget.max_k = 3;
  CampaignSpec spec;
  spec.seed = 42;
  for (unsigned t = 1; t <= 6; ++t)
    spec.jobs.push_back(counter_job("cnt-" + std::to_string(t), 6 + t % 3, t, budget));
  for (unsigned w = 4; w <= 7; ++w)
    spec.jobs.push_back(frozen_job("frozen-" + std::to_string(w), w, budget));
  spec.jobs.push_back(counter_job("clean-20", 8, 20, budget));
  spec.jobs.push_back(counter_job("clean-30", 8, 30, budget));
  spec.jobs.push_back(counter_job("a-first", 8, 2, budget));
  spec.jobs.push_back(counter_job("z-last", 8, 30, budget));
  return spec;
}

std::vector<CampaignReport> run_all_shards(const CampaignSpec& spec, unsigned count,
                                           unsigned threads = 1) {
  std::vector<CampaignReport> reports;
  for (unsigned i = 0; i < count; ++i) {
    ShardRunOptions options;
    options.pool.threads = threads;
    options.shard = ShardSpec{i, count};
    std::string error;
    reports.push_back(run_sharded(spec, options, &error));
    EXPECT_TRUE(error.empty()) << error;
  }
  return reports;
}

TEST(ShardParse, AcceptsWellFormedRejectsMalformed) {
  ShardSpec shard;
  std::string error;
  EXPECT_TRUE(parse_shard("1/4", &shard, &error));
  EXPECT_EQ(shard.index, 1u);
  EXPECT_EQ(shard.count, 4u);
  EXPECT_TRUE(parse_shard("0/1", &shard, &error));
  for (const char* bad : {"4/4", "5/4", "0/0", "a/b", "3", "/4", "1/", "-1/4",
                          "1/4/2", "1 /4", ""}) {
    EXPECT_FALSE(parse_shard(bad, &shard, &error)) << bad;
    EXPECT_FALSE(error.empty());
    error.clear();
  }
}

TEST(ShardAssignment, DeterministicBalancedAndIdBased) {
  const std::vector<std::string> ids = {"delta", "alpha", "echo", "bravo", "charlie"};
  const std::vector<unsigned> a = shard_assignment(ids, 2);
  EXPECT_EQ(a, shard_assignment(ids, 2));  // reproducible
  // Ranks: alpha0 bravo1 charlie2 delta3 echo4 -> shard = rank % 2.
  const std::vector<unsigned> expected = {1, 0, 0, 1, 0};
  EXPECT_EQ(a, expected);
  // Assignment follows the id, not the position.
  std::vector<std::string> reversed(ids.rbegin(), ids.rend());
  const std::vector<unsigned> r = shard_assignment(reversed, 2);
  for (std::size_t i = 0; i < ids.size(); ++i)
    EXPECT_EQ(a[i], r[ids.size() - 1 - i]) << ids[i];
}

TEST(ShardPlanner, ShardsPartitionTheSpecExactly) {
  const CampaignSpec spec = mixed_spec();
  for (unsigned count : {1u, 3u, 4u, 5u}) {
    std::vector<bool> covered(spec.jobs.size(), false);
    std::size_t total = 0;
    for (unsigned index = 0; index < count; ++index) {
      const ShardPlan plan = plan_shard(spec, ShardSpec{index, count});
      ASSERT_TRUE(plan.ok()) << plan.error;
      EXPECT_EQ(plan.total_jobs, spec.jobs.size());
      EXPECT_EQ(plan.spec.seed, spec.seed);
      // Balanced to within one job.
      EXPECT_LE(plan.spec.jobs.size(), (spec.jobs.size() + count - 1) / count);
      ASSERT_EQ(plan.spec.jobs.size(), plan.spec_indices.size());
      for (std::size_t k = 0; k < plan.spec_indices.size(); ++k) {
        const std::size_t original = plan.spec_indices[k];
        ASSERT_LT(original, spec.jobs.size());
        EXPECT_FALSE(covered[original]) << "overlap at " << original;
        covered[original] = true;
        ++total;
        EXPECT_EQ(plan.spec.jobs[k].name, spec.jobs[original].name);
        // Spec order is preserved inside a shard.
        if (k > 0) {
          EXPECT_LT(plan.spec_indices[k - 1], original);
        }
      }
    }
    EXPECT_EQ(total, spec.jobs.size()) << count << " shards leave gaps";
  }
}

TEST(ShardPlanner, RepeatedPlansAreIdentical) {
  const CampaignSpec spec = mixed_spec();
  const ShardSpec shard{1, 4};
  const ShardPlan a = plan_shard(spec, shard);
  const ShardPlan b = plan_shard(spec, shard);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.spec_indices, b.spec_indices);
  for (std::size_t i = 0; i < a.spec.jobs.size(); ++i)
    EXPECT_EQ(a.spec.jobs[i].name, b.spec.jobs[i].name);
}

TEST(ShardPlanner, RejectsDuplicateNamesAndBadShard) {
  CampaignSpec spec = mixed_spec();
  EXPECT_FALSE(plan_shard(spec, ShardSpec{4, 4}).ok());
  EXPECT_FALSE(plan_shard(spec, ShardSpec{0, 0}).ok());
  JobBudget budget;
  spec.jobs.push_back(counter_job("cnt-1", 8, 1, budget));  // duplicate id
  const ShardPlan plan = plan_shard(spec, ShardSpec{0, 2});
  EXPECT_FALSE(plan.ok());
  EXPECT_NE(plan.error.find("cnt-1"), std::string::npos);
}

TEST(ShardMerge, MergedStableJsonEqualsUnshardedByteForByte) {
  const CampaignSpec spec = mixed_spec();
  CampaignOptions seq;
  seq.threads = 1;
  const std::string reference = run_campaign(spec, seq).to_json(/*include_timing=*/false);

  std::vector<CampaignReport> shards = run_all_shards(spec, 4, /*threads=*/2);
  // Order-insensitive: merge a shuffled permutation.
  std::swap(shards[0], shards[2]);
  std::swap(shards[1], shards[3]);
  std::string error;
  const auto merged = CampaignReport::merge(shards, &error);
  ASSERT_TRUE(merged.has_value()) << error;
  EXPECT_EQ(merged->to_json(/*include_timing=*/false), reference);
  EXPECT_FALSE(merged->shard.has_value());
  EXPECT_EQ(merged->jobs.size(), spec.jobs.size());

  // And again through the JSON wire format, as `sepe-run merge` does.
  std::vector<CampaignReport> rehydrated;
  for (const CampaignReport& r : shards) {
    CampaignReport parsed;
    ASSERT_TRUE(parse_report(r.to_json(/*include_timing=*/false), &parsed, &error))
        << error;
    rehydrated.push_back(std::move(parsed));
  }
  const auto merged2 = CampaignReport::merge(rehydrated, &error);
  ASSERT_TRUE(merged2.has_value()) << error;
  EXPECT_EQ(merged2->to_json(/*include_timing=*/false), reference);
}

TEST(ShardMerge, HandlesMoreShardsThanJobs) {
  CampaignSpec spec;
  spec.seed = 9;
  JobBudget budget;
  budget.max_bound = 4;
  budget.max_k = 2;
  for (unsigned t = 1; t <= 3; ++t)
    spec.jobs.push_back(counter_job("cnt-" + std::to_string(t), 8, t, budget));
  CampaignOptions seq;
  seq.threads = 1;
  const std::string reference =
      run_campaign(spec, seq).to_json(/*include_timing=*/false);
  const std::vector<CampaignReport> shards = run_all_shards(spec, 5);
  unsigned empty = 0;
  for (const CampaignReport& r : shards) empty += r.jobs.empty();
  EXPECT_EQ(empty, 2u);  // 3 jobs over 5 shards
  std::string error;
  const auto merged = CampaignReport::merge(shards, &error);
  ASSERT_TRUE(merged.has_value()) << error;
  EXPECT_EQ(merged->to_json(/*include_timing=*/false), reference);
}

TEST(ShardMerge, RejectsOverlapIncompleteAndMismatch) {
  const CampaignSpec spec = mixed_spec();
  std::vector<CampaignReport> shards = run_all_shards(spec, 3);
  std::string error;

  // Missing shard.
  std::vector<CampaignReport> two(shards.begin(), shards.begin() + 2);
  EXPECT_FALSE(CampaignReport::merge(two, &error).has_value());
  EXPECT_NE(error.find("incomplete"), std::string::npos);

  // The same shard supplied twice.
  std::vector<CampaignReport> doubled = {shards[0], shards[1], shards[1]};
  EXPECT_FALSE(CampaignReport::merge(doubled, &error).has_value());
  EXPECT_NE(error.find("twice"), std::string::npos);

  // A non-shard (plain) report.
  CampaignOptions seq;
  seq.threads = 1;
  std::vector<CampaignReport> plain = {run_campaign(spec, seq)};
  EXPECT_FALSE(CampaignReport::merge(plain, &error).has_value());
  EXPECT_NE(error.find("shard metadata"), std::string::npos);

  // Seed mismatch.
  std::vector<CampaignReport> reseeded = shards;
  reseeded[2].seed = 7;
  EXPECT_FALSE(CampaignReport::merge(reseeded, &error).has_value());
  EXPECT_NE(error.find("seed"), std::string::npos);

  // Overlapping job ids despite distinct shard indices.
  std::vector<CampaignReport> stolen = shards;
  ASSERT_FALSE(shards[0].jobs.empty());
  stolen[1].jobs.push_back(shards[0].jobs[0]);
  EXPECT_FALSE(CampaignReport::merge(stolen, &error).has_value());
  EXPECT_NE(error.find("more than one report"), std::string::npos);

  // Empty input.
  EXPECT_FALSE(CampaignReport::merge({}, &error).has_value());
}

TEST(ShardMerge, OverlapDiagnosticNamesEveryOffendingJobId) {
  // Dispatcher debugging aid: when shard sets overlap (e.g. a stolen
  // attempt's report hand-merged next to the original's), the
  // diagnostic must name all the colliding job ids, not just the first.
  const CampaignSpec spec = mixed_spec();
  std::vector<CampaignReport> shards = run_all_shards(spec, 3);
  ASSERT_GE(shards[0].jobs.size(), 2u);
  std::vector<CampaignReport> stolen = shards;
  stolen[1].jobs.push_back(shards[0].jobs[0]);
  stolen[2].jobs.push_back(shards[0].jobs[1]);
  std::string error;
  EXPECT_FALSE(CampaignReport::merge(stolen, &error).has_value());
  EXPECT_NE(error.find("2 job id(s)"), std::string::npos) << error;
  EXPECT_NE(error.find("'" + shards[0].jobs[0].name + "'"), std::string::npos)
      << error;
  EXPECT_NE(error.find("'" + shards[0].jobs[1].name + "'"), std::string::npos)
      << error;
}

TEST(ShardMerge, MergeIsIdempotentOnDisjointShards) {
  const CampaignSpec spec = mixed_spec();
  const std::vector<CampaignReport> shards = run_all_shards(spec, 3);
  std::string error;
  const auto once = CampaignReport::merge(shards, &error);
  const auto twice = CampaignReport::merge(shards, &error);
  ASSERT_TRUE(once.has_value());
  ASSERT_TRUE(twice.has_value());
  EXPECT_EQ(once->to_json(false), twice->to_json(false));
}

// The report dialects, the checkpoint-journal layout, and the
// spec-digest refusal rules these tests pin are specified field by
// field in docs/FORMATS.md — keep the two in sync.
TEST(ReportIo, TimingReportRoundTrips) {
  const CampaignSpec spec = mixed_spec();
  ShardRunOptions options;
  options.shard = ShardSpec{0, 2};
  std::string error;
  const CampaignReport report = run_sharded(spec, options, &error);
  ASSERT_TRUE(error.empty()) << error;
  const std::string json = report.to_json(/*include_timing=*/true);
  CampaignReport parsed;
  ASSERT_TRUE(parse_report(json, &parsed, &error)) << error;
  EXPECT_EQ(parsed.to_json(/*include_timing=*/true), json);
  ASSERT_TRUE(parsed.shard.has_value());
  EXPECT_EQ(parsed.shard->total_jobs, spec.jobs.size());
}

// PR 6 once silently dropped newly-added timing fields on the parse
// side; this pins every sharing counter through a full parse→emit cycle
// with values that cannot be confused with defaults.
TEST(ReportIo, SharingCountersRoundTrip) {
  const std::string json =
      "{\"seed\": 7, \"jobs\": [{\"name\": \"s\", \"mode\": \"EDDI-V\", "
      "\"verdict\": \"PROVED\", \"proved_k\": 1, \"winner\": \"k-induction\", "
      "\"conflicts\": 12, \"clauses_exported\": 31, \"clauses_imported\": 17, "
      "\"vault_hits\": 5}]}";
  CampaignReport report;
  std::string error;
  ASSERT_TRUE(parse_report(json, &report, &error)) << error;
  ASSERT_EQ(report.jobs.size(), 1u);
  EXPECT_EQ(report.jobs[0].clauses_exported, 31u);
  EXPECT_EQ(report.jobs[0].clauses_imported, 17u);
  EXPECT_EQ(report.jobs[0].vault_hits, 5u);
  const std::string emitted = report.to_json(/*include_timing=*/true);
  EXPECT_NE(emitted.find("\"clauses_exported\": 31"), std::string::npos) << emitted;
  EXPECT_NE(emitted.find("\"clauses_imported\": 17"), std::string::npos) << emitted;
  EXPECT_NE(emitted.find("\"vault_hits\": 5"), std::string::npos) << emitted;
}

// Forward compatibility: a report written by a *newer* binary may carry
// timing keys this one has never heard of. They must be tolerated (the
// known fields still land), never treated as a parse error — merging a
// mixed-version shard fleet depends on it.
TEST(ReportIo, UnknownTimingKeysAreTolerated) {
  const std::string json =
      "{\"seed\": 7, \"jobs\": [{\"name\": \"s\", \"mode\": \"EDDI-V\", "
      "\"verdict\": \"PROVED\", \"proved_k\": 3, "
      "\"counter_from_the_future\": 999, \"vault_hits\": 2}]}";
  CampaignReport report;
  std::string error;
  ASSERT_TRUE(parse_report(json, &report, &error)) << error;
  ASSERT_EQ(report.jobs.size(), 1u);
  EXPECT_EQ(report.jobs[0].proved_k, 3u);
  EXPECT_EQ(report.jobs[0].vault_hits, 2u);
}

TEST(ReportIo, RejectsMalformedInput) {
  CampaignReport report;
  std::string error;
  EXPECT_FALSE(parse_report("", &report, &error));
  EXPECT_FALSE(parse_report("{", &report, &error));
  EXPECT_FALSE(parse_report("[]", &report, &error));
  EXPECT_FALSE(parse_report("{\"seed\": 1}", &report, &error));  // no jobs
  EXPECT_FALSE(parse_report(
      "{\"seed\": 1, \"jobs\": [{\"name\": \"x\", \"mode\": \"EDDI-V\", "
      "\"verdict\": \"NOT_A_VERDICT\"}]}",
      &report, &error));
  EXPECT_FALSE(parse_report(
      "{\"seed\": 1, \"jobs\": [{\"mode\": \"EDDI-V\", \"verdict\": "
      "\"PROVED\"}]}",
      &report, &error));  // nameless job
  EXPECT_FALSE(parse_report(
      "{\"seed\": 1, \"jobs\": [{\"name\": \"x\", \"mode\": \"EDDI-V\", "
      "\"verdict\": \"PROVED\", \"conflicts\": \"oops\"}]}",
      &report, &error));  // non-numeric count is a hard error
  // A corrupt file cannot drive the parser into unbounded recursion.
  EXPECT_FALSE(parse_report(std::string(100000, '['), &report, &error));
  EXPECT_NE(error.find("nesting"), std::string::npos);
  EXPECT_TRUE(parse_report(
      "{\"seed\": 1, \"jobs\": [{\"name\": \"x\", \"mode\": \"EDDI-V\", "
      "\"verdict\": \"PROVED\", \"proved_k\": 2}]}",
      &report, &error))
      << error;
  EXPECT_EQ(report.jobs[0].proved_k, 2u);
}

TEST(ShardRun, JobDoneHookReportsFullSpecPositions) {
  const CampaignSpec spec = mixed_spec();
  ShardRunOptions options;
  options.shard = ShardSpec{1, 3};
  std::vector<std::size_t> seen;
  std::mutex seen_mutex;
  options.pool.on_job_done = [&](std::size_t index, const JobResult& job) {
    std::lock_guard<std::mutex> lock(seen_mutex);
    EXPECT_EQ(job.spec_index, index);
    EXPECT_EQ(job.name, spec.jobs[index].name);
    seen.push_back(index);
  };
  std::string error;
  const CampaignReport report = run_sharded(spec, options, &error);
  ASSERT_TRUE(error.empty()) << error;
  std::sort(seen.begin(), seen.end());
  const ShardPlan plan = plan_shard(spec, *options.shard);
  EXPECT_EQ(seen, plan.spec_indices);
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "shard_checkpoint_test.json";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(CheckpointTest, ResumeSkipsFinishedJobsAndReproducesTheReport) {
  const CampaignSpec spec = mixed_spec();
  ShardRunOptions options;
  options.shard = ShardSpec{0, 2};
  options.checkpoint_path = path_;

  std::string error;
  g_builds.store(0);
  const CampaignReport first = run_sharded(spec, options, &error);
  ASSERT_TRUE(error.empty()) << error;
  // Every job races two provers -> two builds each; at least one each.
  EXPECT_GE(g_builds.load(), first.jobs.size());

  // A second run against the complete checkpoint does no model building.
  g_builds.store(0);
  const CampaignReport resumed = run_sharded(spec, options, &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(g_builds.load(), 0u);
  EXPECT_EQ(resumed.to_json(/*include_timing=*/false),
            first.to_json(/*include_timing=*/false));

  // Simulate an interruption: drop all but two finished jobs from the
  // journal. Only the dropped jobs are re-run.
  CampaignReport partial;
  ASSERT_TRUE(parse_report(*read_text_file(path_), &partial, &error)) << error;
  ASSERT_GT(partial.jobs.size(), 2u);
  const std::size_t dropped = partial.jobs.size() - 2;
  partial.jobs.resize(2);
  ASSERT_TRUE(write_text_file_atomic(path_, partial.to_json(true)));
  g_builds.store(0);
  const CampaignReport recovered = run_sharded(spec, options, &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_GE(g_builds.load(), dropped);
  // Never more than both provers plus the witness post-pass rebuild of
  // each re-run FALSIFIED row (resumed rows round-trip witness_checked
  // through the journal and are not re-checked).
  EXPECT_LE(g_builds.load(), 3 * dropped);
  EXPECT_EQ(recovered.to_json(/*include_timing=*/false),
            first.to_json(/*include_timing=*/false));
}

TEST_F(CheckpointTest, RejectsForeignCheckpoint) {
  const CampaignSpec spec = mixed_spec();
  ShardRunOptions options;
  options.shard = ShardSpec{0, 2};
  options.checkpoint_path = path_;
  std::string error;
  run_sharded(spec, options, &error);
  ASSERT_TRUE(error.empty()) << error;

  // Same file, different shard: refused rather than mis-resumed.
  options.shard = ShardSpec{1, 2};
  const CampaignReport report = run_sharded(spec, options, &error);
  EXPECT_FALSE(error.empty());
  EXPECT_TRUE(report.jobs.empty());

  // Same shard, different budgets: the spec digest refuses the resume
  // instead of presenting stale verdicts as the new campaign's result.
  options.shard = ShardSpec{0, 2};
  CampaignSpec rebudgeted = mixed_spec();
  for (JobSpec& job : rebudgeted.jobs) job.budget.max_bound += 4;
  error.clear();
  run_sharded(rebudgeted, options, &error);
  EXPECT_NE(error.find("different campaign parameters"), std::string::npos);

  // A caller-supplied fingerprint change (e.g. sepe-run's --xlen) is
  // refused the same way.
  options.fingerprint = "xlen=8";
  error.clear();
  run_sharded(spec, options, &error);
  EXPECT_NE(error.find("different campaign parameters"), std::string::npos);
  options.fingerprint.clear();

  // Corrupt journal: refused with a pointer to the fix.
  ASSERT_TRUE(write_text_file_atomic(path_, "{not json"));
  error.clear();
  run_sharded(spec, options, &error);
  EXPECT_NE(error.find("delete it"), std::string::npos);
}

}  // namespace
}  // namespace sepe::engine
