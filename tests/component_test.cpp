// Tests for the synthesis component library (paper §4.1).
//
// The central property: a component's *semantic model* (the bit-vector
// formula CEGIS reasons over) must agree with its *expansion* (the
// instruction sequence the EDSEP-V transformation actually issues),
// executed on the golden ISS. A mismatch here would let the synthesizer
// prove equivalences the hardware never exhibits.
#include <gtest/gtest.h>

#include "isa/semantics.hpp"
#include "sim/iss.hpp"
#include "smt/eval.hpp"
#include "synth/component.hpp"
#include "util/rng.hpp"

namespace sepe::synth {
namespace {

using isa::Opcode;
using smt::TermManager;
using smt::TermRef;

TEST(ComponentLibrary, HasThePapersShape) {
  const auto lib = make_standard_library();
  EXPECT_EQ(lib.size(), 29u);
  EXPECT_EQ(filter_by_class(lib, ComponentClass::NIC).size(), 10u);
  EXPECT_EQ(filter_by_class(lib, ComponentClass::DIC).size(), 10u);
  EXPECT_EQ(filter_by_class(lib, ComponentClass::CIC).size(), 9u);
}

TEST(ComponentLibrary, NamesAreUnique) {
  const auto lib = make_standard_library();
  for (std::size_t i = 0; i < lib.size(); ++i)
    for (std::size_t j = i + 1; j < lib.size(); ++j)
      EXPECT_NE(lib[i].name, lib[j].name);
}

TEST(ComponentLibrary, CostMatchesExpansionLength) {
  for (const Component& c : make_standard_library()) {
    EXPECT_EQ(c.cost, c.expansion.size()) << c.name;
    EXPECT_GE(c.cost, 1u) << c.name;
  }
}

TEST(ComponentLibrary, AttrWidthsAreArchitectural) {
  EXPECT_EQ(attr_class_width(AttrClass::Imm12), 12u);
  EXPECT_EQ(attr_class_width(AttrClass::Imm20), 20u);
  EXPECT_EQ(attr_class_width(AttrClass::Shamt5), 5u);
}

TEST(ComponentLibrary, ClassNamesRender) {
  EXPECT_STREQ(component_class_name(ComponentClass::NIC), "NIC");
  EXPECT_STREQ(component_class_name(ComponentClass::DIC), "DIC");
  EXPECT_STREQ(component_class_name(ComponentClass::CIC), "CIC");
}

/// Draw a random attribute value of the class, as the signed int the
/// lowerer consumes.
std::int32_t random_attr(Rng& rng, AttrClass cls) {
  switch (cls) {
    case AttrClass::Imm12: return static_cast<std::int32_t>(rng.below(4096)) - 2048;
    case AttrClass::Imm20: return static_cast<std::int32_t>(rng.below(1 << 20));
    case AttrClass::Shamt5: return static_cast<std::int32_t>(rng.below(32));
  }
  return 0;
}

/// The attr as the bit-vector the semantic model consumes.
BitVec attr_bits(std::int32_t value, AttrClass cls) {
  return BitVec(attr_class_width(cls), static_cast<std::uint64_t>(
                                           static_cast<std::int64_t>(value)));
}

// Semantics-vs-expansion agreement for every component at several widths.
class ComponentFaithfulness
    : public ::testing::TestWithParam<std::tuple<std::size_t, unsigned>> {};

TEST_P(ComponentFaithfulness, ExpansionExecutesTheSemanticModel) {
  const auto [index, xlen] = GetParam();
  const auto lib = make_standard_library();
  const Component& comp = lib[index];
  Rng rng(index * 131 + xlen);

  for (int trial = 0; trial < 40; ++trial) {
    // Concrete inputs and attributes.
    std::vector<BitVec> ins;
    for (unsigned i = 0; i < comp.num_inputs; ++i)
      ins.push_back(rng.interesting_bitvec(xlen));
    std::vector<std::int32_t> attr_vals;
    for (AttrClass cls : comp.attrs) attr_vals.push_back(random_attr(rng, cls));

    // Semantic model, evaluated concretely.
    TermManager mgr;
    std::vector<TermRef> in_terms, attr_terms;
    for (const BitVec& v : ins) in_terms.push_back(mgr.mk_const(v));
    for (unsigned a = 0; a < comp.attrs.size(); ++a)
      attr_terms.push_back(mgr.mk_const(attr_bits(attr_vals[a], comp.attrs[a])));
    const BitVec model =
        smt::eval_term(mgr, comp.semantics(mgr, in_terms, attr_terms, xlen), {});

    // Expansion, lowered to instructions and executed on the ISS.
    std::vector<std::uint8_t> in_regs;
    for (unsigned i = 0; i < comp.num_inputs; ++i)
      in_regs.push_back(static_cast<std::uint8_t>(1 + i));
    const std::uint8_t out_reg = 10;
    std::vector<std::uint8_t> temps;
    for (unsigned t = 0; t < comp.num_temps; ++t)
      temps.push_back(static_cast<std::uint8_t>(20 + t));
    const isa::Program prog =
        lower_expansion(comp.expansion, in_regs, out_reg, attr_vals, temps);

    sim::Iss iss(xlen, 8);
    for (unsigned i = 0; i < comp.num_inputs; ++i)
      iss.state().set_reg(in_regs[i], ins[i]);
    iss.run(prog);

    ASSERT_EQ(iss.state().reg(out_reg), model)
        << comp.name << " xlen=" << xlen << " trial=" << trial << "\n"
        << isa::program_to_string(prog);
  }
}

std::vector<std::tuple<std::size_t, unsigned>> all_component_width_cases() {
  std::vector<std::tuple<std::size_t, unsigned>> cases;
  const auto lib = make_standard_library();
  for (std::size_t i = 0; i < lib.size(); ++i)
    for (unsigned w : {8u, 16u, 32u}) cases.emplace_back(i, w);
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllComponents, ComponentFaithfulness,
    ::testing::ValuesIn(all_component_width_cases()),
    [](const ::testing::TestParamInfo<std::tuple<std::size_t, unsigned>>& info) {
      static const auto lib = make_standard_library();
      return lib[std::get<0>(info.param)].name + "_w" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ComponentExpansion, LowerExpansionResolvesAllOperandKinds) {
  // NEG: SUB out, x0, in — exercises Fixed + Output + Input.
  const auto lib = make_standard_library();
  const Component* neg = nullptr;
  for (const Component& c : lib)
    if (c.name == "NEG") neg = &c;
  ASSERT_NE(neg, nullptr);
  const isa::Program p = lower_expansion(neg->expansion, {5}, 7, {}, {});
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], isa::Instruction::rtype(Opcode::SUB, 7, 0, 5));
}

TEST(ComponentExpansion, CicTempsUseSuppliedScratchRegisters) {
  const auto lib = make_standard_library();
  const Component* signsel = nullptr;
  for (const Component& c : lib)
    if (c.name == "SIGNSEL") signsel = &c;
  ASSERT_NE(signsel, nullptr);
  const isa::Program p = lower_expansion(signsel->expansion, {3, 4}, 9, {}, {26});
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0], isa::Instruction::itype(Opcode::SRAI, 26, 3, 31));
  EXPECT_EQ(p[1], isa::Instruction::rtype(Opcode::AND, 9, 26, 4));
}

TEST(ComponentSemantics, MulhBridgeIdentityHolds) {
  // The library comment's claim: mulh(a,b) = mulhsu(a,b) - (b<0 ? a : 0).
  // This identity is what makes MULH synthesizable from MULHSU_C +
  // SIGNSEL + SUB; check it concretely over random inputs.
  Rng rng(2024);
  for (unsigned xlen : {8u, 16u, 32u}) {
    for (int trial = 0; trial < 200; ++trial) {
      const BitVec a = rng.interesting_bitvec(xlen), b = rng.interesting_bitvec(xlen);
      const BitVec mulh = isa::alu_concrete(Opcode::MULH, a, b);
      const BitVec mulhsu = isa::alu_concrete(Opcode::MULHSU, a, b);
      const BitVec correction = b.msb() ? a : BitVec::zeros(xlen);
      ASSERT_EQ(mulh, mulhsu - correction)
          << "xlen=" << xlen << " a=" << a.to_hex() << " b=" << b.to_hex();
    }
  }
}

TEST(ComponentSemantics, MulcMatchesPaperExample) {
  // The paper's CIC example: ADDI t,x0,A ; MUL o,i1,t  ==  o = i1 * sext(A).
  const auto lib = make_standard_library();
  const Component* mulc = nullptr;
  for (const Component& c : lib)
    if (c.name == "MULC") mulc = &c;
  ASSERT_NE(mulc, nullptr);
  EXPECT_EQ(mulc->cls, ComponentClass::CIC);
  EXPECT_EQ(mulc->expansion.size(), 2u);
  EXPECT_EQ(mulc->expansion[0].op, Opcode::ADDI);
  EXPECT_EQ(mulc->expansion[1].op, Opcode::MUL);
}

}  // namespace
}  // namespace sepe::synth
