// Tests for learnt-clause sharing (sat/exchange.hpp): the intra-job
// exchange pool, the cross-job clause vault, solver-level soundness
// (shared answers always equal unshared answers — imported clauses are
// implied), cross-manager vault reuse under digest-identical cones,
// engine-level verdict/stable-JSON invariance, concurrency (run under
// TSan in CI), and the vault.import fault point.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "engine/campaign.hpp"
#include "sat/exchange.hpp"
#include "sat/solver.hpp"
#include "smt/smt_solver.hpp"
#include "util/fault.hpp"

namespace sepe::sat {
namespace {

// --- ClauseExchange unit semantics ---

TEST(ClauseExchange, PublishedClausesReachOtherMembersOnly) {
  ClauseExchange ex;
  const ShareKey epoch{1, 2};
  ex.publish(0, epoch, {2, 5}, 2);
  ex.publish(1, epoch, {4, 7, 9}, 3);

  std::size_t cursor = 0;
  std::vector<SharedClause> got;
  ex.collect(0, epoch, &cursor, &got);
  ASSERT_EQ(got.size(), 1u);  // member 0 never sees its own export
  EXPECT_EQ(got[0].lits, (std::vector<int>{4, 7, 9}));
  EXPECT_EQ(got[0].lbd, 3u);

  // The cursor advanced past everything examined: nothing new, nothing
  // re-delivered.
  got.clear();
  ex.collect(0, epoch, &cursor, &got);
  EXPECT_TRUE(got.empty());

  // A later publish is picked up from the same cursor.
  ex.publish(1, epoch, {11}, 2);
  ex.collect(0, epoch, &cursor, &got);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].lits, (std::vector<int>{11}));
}

TEST(ClauseExchange, EpochsAreDisjointAndDuplicatesDrop) {
  ClauseExchange ex;
  const ShareKey a{1, 0}, b{2, 0};
  ex.publish(0, a, {2, 4}, 2);
  ex.publish(0, a, {2, 4}, 2);  // duplicate within epoch: dropped
  ex.publish(0, b, {2, 4}, 2);  // same literals, different epoch: kept

  EXPECT_EQ(ex.stats().published, 2u);
  EXPECT_EQ(ex.stats().duplicates, 1u);

  std::size_t cur = 0;
  std::vector<SharedClause> got;
  ex.collect(1, a, &cur, &got);
  EXPECT_EQ(got.size(), 1u);
  got.clear();
  cur = 0;
  ex.collect(1, b, &cur, &got);
  EXPECT_EQ(got.size(), 1u);
}

TEST(ClauseExchange, ByteBudgetRejectsInsteadOfGrowing) {
  ClauseExchange ex(/*max_bytes=*/1);
  ex.publish(0, ShareKey{1, 1}, {2, 4, 6}, 2);
  EXPECT_EQ(ex.stats().published, 0u);
  EXPECT_GE(ex.stats().store_rejects, 1u);
  std::size_t cur = 0;
  std::vector<SharedClause> got;
  ex.collect(1, ShareKey{1, 1}, &cur, &got);
  EXPECT_TRUE(got.empty());
}

TEST(ClauseExchange, VersionBumpsOnlyOnAcceptedPublish) {
  ClauseExchange ex;
  const std::uint64_t v0 = ex.version();
  ex.publish(0, ShareKey{3, 3}, {2}, 2);
  const std::uint64_t v1 = ex.version();
  EXPECT_GT(v1, v0);
  ex.publish(0, ShareKey{3, 3}, {2}, 2);  // duplicate
  EXPECT_EQ(ex.version(), v1);
}

// --- ClauseVault unit semantics ---

TEST(ClauseVault, StoreThenLookupRoundTrips) {
  ClauseVault vault;
  const ShareKey epoch{9, 9};
  vault.store(epoch, {3, 5, 8}, 4);
  vault.store(epoch, {3, 5, 8}, 4);  // duplicate: dropped

  const std::vector<SharedClause> got = vault.lookup(epoch);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].lits, (std::vector<int>{3, 5, 8}));
  EXPECT_EQ(got[0].lbd, 4u);
  EXPECT_TRUE(vault.lookup(ShareKey{9, 8}).empty());

  const ClauseVault::Stats s = vault.stats();
  EXPECT_EQ(s.lookups, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.stores, 1u);
  EXPECT_EQ(s.clauses, 1u);
}

TEST(ClauseVault, ByteBudgetRejectsInsteadOfGrowing) {
  ClauseVault vault(/*max_bytes=*/1);
  vault.store(ShareKey{1, 1}, {2, 4}, 2);
  EXPECT_EQ(vault.stats().stores, 0u);
  EXPECT_GE(vault.stats().store_rejects, 1u);
  EXPECT_TRUE(vault.lookup(ShareKey{1, 1}).empty());
}

// The vault.import fault point: an injected Fail turns a would-be hit
// into a plain miss — degraded, never corrupted (docs/ROBUSTNESS.md).
TEST(ClauseVault, ImportFaultDegradesToPlainMiss) {
  ClauseVault vault;
  const ShareKey epoch{5, 5};
  vault.store(epoch, {2, 4}, 2);

  ASSERT_TRUE(fault::configure("point=vault.import:fail@1"));
  EXPECT_TRUE(vault.lookup(epoch).empty());   // fault fires: miss
  EXPECT_EQ(vault.lookup(epoch).size(), 1u);  // one-shot: next lookup hits
  ASSERT_TRUE(fault::configure(""));

  const ClauseVault::Stats s = vault.stats();
  EXPECT_EQ(s.lookups, 2u);
  EXPECT_EQ(s.hits, 1u);  // the faulted lookup counts as a miss
}

// --- solver-level soundness: shared answers equal unshared answers ---

/// Pigeonhole n+1 pigeons / n holes: UNSAT, conflict-rich, low-LBD
/// learnts — the canonical export generator.
void add_pigeonhole(Solver& s, int holes) {
  const int pigeons = holes + 1;
  std::vector<std::vector<int>> var(pigeons, std::vector<int>(holes));
  for (int p = 0; p < pigeons; ++p)
    for (int h = 0; h < holes; ++h) var[p][h] = s.new_var();
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) clause.emplace_back(var[p][h], false);
    s.add_clause(clause);
  }
  for (int h = 0; h < holes; ++h)
    for (int p = 0; p < pigeons; ++p)
      for (int q = p + 1; q < pigeons; ++q)
        s.add_clause(Lit(var[p][h], true), Lit(var[q][h], true));
}

TEST(SharingSoundness, VaultSeedsASecondSolverOnTheSameEpoch) {
  ClauseVault vault;
  const ShareKey epoch{77, 13};

  Solver a;
  a.attach_sharing(nullptr, &vault, /*member=*/0, /*lbd_cap=*/8);
  a.set_share_epoch(epoch);
  add_pigeonhole(a, 4);
  EXPECT_EQ(a.solve(), SolveResult::Unsat);
  EXPECT_GT(a.num_clauses_exported(), 0u);
  EXPECT_GT(vault.stats().stores, 0u);

  Solver b;
  b.attach_sharing(nullptr, &vault, /*member=*/1, /*lbd_cap=*/8);
  add_pigeonhole(b, 4);  // identical variable numbering by construction
  b.set_share_epoch(epoch);
  EXPECT_EQ(b.num_vault_hits(), 1u);
  EXPECT_GT(b.num_clauses_imported(), 0u);
  EXPECT_EQ(b.solve(), SolveResult::Unsat);
  EXPECT_LE(b.num_conflicts(), a.num_conflicts());
}

/// Brute-force evaluation of a CNF over n <= 20 variables.
bool brute_force_sat(int nvars, const std::vector<std::vector<Lit>>& clauses) {
  for (std::uint32_t m = 0; m < (1u << nvars); ++m) {
    bool all = true;
    for (const auto& c : clauses) {
      bool any = false;
      for (Lit l : c) any = any || (((m >> l.var()) & 1u) != l.sign());
      if (!any) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

// Random-formula native-vs-shared equivalence: for each seed, solve the
// same CNF (a) unshared, (b) as the importer of a vault populated by a
// prior shared run, and (c) by exhaustive enumeration. All three answers
// must agree — imported clauses are implied, so sharing can never flip a
// verdict.
TEST(SharingSoundness, RandomFormulasAgreeNativeVsSharedVsExhaustive) {
  std::mt19937 rng(0xC0FFEE);
  for (int round = 0; round < 60; ++round) {
    const int nvars = 6 + static_cast<int>(rng() % 5);       // 6..10
    const int nclauses = nvars * (3 + static_cast<int>(rng() % 2));
    std::vector<std::vector<Lit>> clauses;
    for (int i = 0; i < nclauses; ++i) {
      std::vector<Lit> c;
      for (int j = 0; j < 3; ++j)
        c.emplace_back(static_cast<int>(rng() % nvars), (rng() & 1) != 0);
      clauses.push_back(std::move(c));
    }

    const bool expected = brute_force_sat(nvars, clauses);
    const ShareKey epoch{rng() | 1, rng()};
    ClauseVault vault;

    Solver plain;
    Solver publisher;
    publisher.attach_sharing(nullptr, &vault, 0, 8);
    publisher.set_share_epoch(epoch);
    Solver importer;
    importer.attach_sharing(nullptr, &vault, 1, 8);
    for (int v = 0; v < nvars; ++v) {
      plain.new_var();
      publisher.new_var();
      importer.new_var();
    }
    for (const auto& c : clauses) {
      plain.add_clause(c);
      publisher.add_clause(c);
      importer.add_clause(c);
    }

    const SolveResult native = plain.solve();
    const SolveResult shared_pub = publisher.solve();
    importer.set_share_epoch(epoch);  // drains the vault before solving
    const SolveResult shared_imp = importer.solve();

    const SolveResult want = expected ? SolveResult::Sat : SolveResult::Unsat;
    EXPECT_EQ(native, want) << "round " << round;
    EXPECT_EQ(shared_pub, want) << "round " << round;
    EXPECT_EQ(shared_imp, want) << "round " << round;
  }
}

// Exhaustive 4-variable battery: every 3-clause CNF shape over 4 vars is
// tiny, so sweep many and check the shared pipeline against enumeration.
TEST(SharingSoundness, FourVarExhaustiveSweepAgrees) {
  std::mt19937 rng(42);
  for (int round = 0; round < 200; ++round) {
    const int nvars = 4;
    const int nclauses = 3 + static_cast<int>(rng() % 10);
    std::vector<std::vector<Lit>> clauses;
    for (int i = 0; i < nclauses; ++i) {
      std::vector<Lit> c;
      const int len = 1 + static_cast<int>(rng() % 3);
      for (int j = 0; j < len; ++j)
        c.emplace_back(static_cast<int>(rng() % nvars), (rng() & 1) != 0);
      clauses.push_back(std::move(c));
    }
    const bool expected = brute_force_sat(nvars, clauses);

    ClauseVault vault;
    const ShareKey epoch{static_cast<std::uint64_t>(round) + 1, 99};
    Solver publisher, importer;
    publisher.attach_sharing(nullptr, &vault, 0, 8);
    publisher.set_share_epoch(epoch);
    importer.attach_sharing(nullptr, &vault, 1, 8);
    for (int v = 0; v < nvars; ++v) {
      publisher.new_var();
      importer.new_var();
    }
    for (const auto& c : clauses) {
      publisher.add_clause(c);
      importer.add_clause(c);
    }
    const SolveResult want = expected ? SolveResult::Sat : SolveResult::Unsat;
    EXPECT_EQ(publisher.solve(), want) << "round " << round;
    importer.set_share_epoch(epoch);
    EXPECT_EQ(importer.solve(), want) << "round " << round;
  }
}

// Exchange-pool equivalence: two members solving the same pigeonhole
// through one pool (publishing and importing each other's learnts) must
// both answer Unsat.
TEST(SharingSoundness, ExchangePoolMembersAgreeOnPigeonhole) {
  ClauseExchange ex;
  const ShareKey epoch{21, 34};
  Solver a, b;
  a.attach_sharing(&ex, nullptr, 0, 8);
  b.attach_sharing(&ex, nullptr, 1, 8);
  a.set_share_epoch(epoch);
  b.set_share_epoch(epoch);
  add_pigeonhole(a, 5);
  add_pigeonhole(b, 5);
  EXPECT_EQ(a.solve(), SolveResult::Unsat);
  EXPECT_GT(ex.stats().published, 0u);
  // b polls the pool at solve entry and restarts; a's learnts are waiting.
  EXPECT_EQ(b.solve(), SolveResult::Unsat);
  EXPECT_GT(b.num_clauses_imported(), 0u);
}

// Assumption-based solving with sharing attached: learnts under
// assumptions are still implied by the problem clauses alone (assumptions
// are decisions, never clauses), so a second solver importing them must
// agree on every assumption set.
TEST(SharingSoundness, AssumptionSolvesStayCorrectUnderSharing) {
  ClauseVault vault;
  const ShareKey epoch{3, 141};
  // Seed the vault with a clause implied by the chain below — (~x0 | x5)
  // — as if a prior solver had learnt and exported it.
  vault.store(epoch, {Lit(0, true).code(), Lit(5, false).code()}, 2);

  Solver a, b;
  a.attach_sharing(nullptr, &vault, 0, 8);
  b.attach_sharing(nullptr, &vault, 1, 8);

  // x0..x5 a chain of implications x0 -> x1 -> ... -> x5.
  for (Solver* s : {&a, &b}) {
    for (int v = 0; v < 6; ++v) s->new_var();
    for (int v = 0; v + 1 < 6; ++v)
      s->add_clause(Lit(v, true), Lit(v + 1, false));
  }
  a.set_share_epoch(epoch);
  EXPECT_EQ(a.num_clauses_imported(), 1u);
  // Under {x0}, x5 is forced: {x0, ~x5} is Unsat, {x0, x5} is Sat — with
  // the imported shortcut attached, answers must not move.
  EXPECT_EQ(a.solve({Lit(0, false), Lit(5, true)}), SolveResult::Unsat);
  EXPECT_EQ(a.solve({Lit(0, false), Lit(5, false)}), SolveResult::Sat);

  b.set_share_epoch(epoch);
  EXPECT_EQ(b.solve({Lit(0, false), Lit(5, true)}), SolveResult::Unsat);
  EXPECT_EQ(b.solve({Lit(0, false), Lit(5, false)}), SolveResult::Sat);
}

// --- cross-manager vault reuse under digest-identical cones ---

// Two separate TermManagers building the same term stream produce
// digest-identical blast chains, so the second SmtSolver's epochs match
// the first's and the vault seeds it without any variable remapping
// (equal state digests => isomorphic blasters => identity map).
TEST(SharingVault, SecondManagerHitsClausesLearntByTheFirst) {
  const auto build_and_check = [](ClauseVault* vault, unsigned member,
                                  std::uint64_t* imported, std::uint64_t* hits) {
    smt::TermManager mgr;
    SharingContext ctx;
    ctx.vault = vault;
    ctx.member = member;
    ctx.lbd_cap = 8;
    smt::SmtSolver solver(mgr, SolverConfig{}, false, nullptr, BackendKind::Native,
                          ctx);
    // Pigeonhole over bit-vectors: five 2-bit "hole" registers, pairwise
    // distinct — 5 pigeons into 4 holes, UNSAT with real conflict work.
    std::vector<smt::TermRef> h;
    for (int i = 0; i < 5; ++i)
      h.push_back(mgr.mk_var("h" + std::to_string(i), 2));
    for (int i = 0; i < 5; ++i)
      for (int j = i + 1; j < 5; ++j)
        solver.assert_formula(mgr.mk_ne(h[i], h[j]));
    const smt::Result r = solver.check();
    *imported = solver.sat_solver().num_clauses_imported();
    *hits = solver.sat_solver().num_vault_hits();
    return r;
  };

  ClauseVault vault;
  std::uint64_t imported1 = 0, hits1 = 0, imported2 = 0, hits2 = 0;
  EXPECT_EQ(build_and_check(&vault, 0, &imported1, &hits1), smt::Result::Unsat);
  EXPECT_GT(vault.stats().stores, 0u);
  EXPECT_EQ(imported1, 0u);  // nothing to import on a cold vault

  EXPECT_EQ(build_and_check(&vault, 1, &imported2, &hits2), smt::Result::Unsat);
  EXPECT_GT(hits2, 0u) << "digest-identical cones must hit the vault";
  EXPECT_GT(imported2, 0u);
}

// --- concurrency: 4 threads hammering one exchange (TSan target) ---

TEST(SharingConcurrency, FourThreadsPublishAndCollectCleanly) {
  ClauseExchange ex;
  const ShareKey epochs[2] = {ShareKey{1, 1}, ShareKey{2, 2}};
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < 4; ++t) {
    threads.emplace_back([&ex, &epochs, t] {
      std::size_t cursors[2] = {0, 0};
      std::vector<SharedClause> got;
      for (int i = 0; i < kPerThread; ++i) {
        const ShareKey& epoch = epochs[i & 1];
        ex.publish(t, epoch,
                   {static_cast<int>(2 * (t * kPerThread + i)),
                    static_cast<int>(2 * (t * kPerThread + i) + 3)},
                   2);
        got.clear();
        ex.collect(t, epoch, &cursors[i & 1], &got);
        for (const SharedClause& c : got) {
          ASSERT_EQ(c.lits.size(), 2u);
          ASSERT_LT(c.lits[0], c.lits[1]);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const ClauseExchange::Stats s = ex.stats();
  // Every publish is a distinct clause: all accepted (64 MB budget) or
  // none silently lost.
  EXPECT_EQ(s.published + s.store_rejects, 4u * kPerThread);
  EXPECT_EQ(s.duplicates, 0u);
}

}  // namespace
}  // namespace sepe::sat

// --- engine level: verdicts and stable JSON are sharing-invariant ---

namespace sepe::engine {
namespace {

using smt::TermRef;

JobSpec counter_job(const std::string& name, unsigned width, std::uint64_t target,
                    const JobBudget& budget) {
  JobSpec job;
  job.name = name;
  job.budget = budget;
  job.build = [width, target](ts::TransitionSystem& ts, std::string*) {
    smt::TermManager& mgr = ts.mgr();
    const TermRef cnt = ts.add_state("cnt", width);
    const TermRef inc = ts.add_input("inc", 1);
    ts.set_init(cnt, mgr.mk_const(width, 0));
    ts.set_next(cnt, mgr.mk_ite(inc, mgr.mk_add(cnt, mgr.mk_const(width, 1)), cnt));
    ts.add_bad(mgr.mk_eq(cnt, mgr.mk_const(width, target)), "cnt-target");
    return true;
  };
  return job;
}

JobSpec frozen_job(const std::string& name, unsigned width, const JobBudget& budget) {
  JobSpec job;
  job.name = name;
  job.budget = budget;
  job.build = [width](ts::TransitionSystem& ts, std::string*) {
    smt::TermManager& mgr = ts.mgr();
    const TermRef x = ts.add_state("x", width);
    ts.set_init(x, mgr.mk_const(width, 0));
    ts.set_next(x, x);
    ts.add_bad(mgr.mk_eq(x, mgr.mk_const(width, 1)), "x-one");
    return true;
  };
  return job;
}

/// Conflict-rich bound-clean job: five 2-bit inputs, bad = all pairwise
/// distinct — pigeonhole-UNSAT at every bound, so each bound costs the
/// CDCL core real conflicts (and thus populates the sharing pools).
JobSpec php_job(const std::string& name, const JobBudget& budget) {
  JobSpec job;
  job.name = name;
  job.budget = budget;
  job.build = [](ts::TransitionSystem& ts, std::string*) {
    smt::TermManager& mgr = ts.mgr();
    const TermRef dummy = ts.add_state("d", 1);
    ts.set_init(dummy, mgr.mk_const(1, 0));
    ts.set_next(dummy, dummy);
    std::vector<TermRef> holes;
    for (int i = 0; i < 5; ++i)
      holes.push_back(ts.add_input("h" + std::to_string(i), 2));
    std::vector<TermRef> distinct;
    for (int i = 0; i < 5; ++i)
      for (int j = i + 1; j < 5; ++j)
        distinct.push_back(mgr.mk_ne(holes[i], holes[j]));
    ts.add_bad(mgr.mk_and_many(distinct), "php");
    return true;
  };
  return job;
}

CampaignSpec sharing_spec(unsigned share_clauses, bool sequential,
                          unsigned portfolio) {
  JobBudget budget;
  budget.max_bound = 8;
  budget.max_k = 4;
  budget.sequential_provers = sequential;
  budget.portfolio = portfolio;
  budget.share_clauses = share_clauses;
  CampaignSpec spec;
  spec.jobs.push_back(counter_job("cnt5", 8, 5, budget));
  spec.jobs.push_back(frozen_job("frozen", 8, budget));
  spec.jobs.push_back(counter_job("cnt40", 8, 40, budget));
  spec.jobs.push_back(php_job("php", budget));
  return spec;
}

/// Verdict-bearing fields of a report, for drift comparison.
std::string stable_json(const CampaignSpec& spec) {
  return run_campaign(spec, CampaignOptions{}).to_json(/*include_timing=*/false);
}

TEST(SharingEngine, StableJsonIsByteIdenticalWithSharingOnAndOff) {
  const std::string off = stable_json(sharing_spec(0, /*sequential=*/true, 1));
  const std::string on = stable_json(sharing_spec(8, /*sequential=*/true, 1));
  EXPECT_EQ(off, on);
}

TEST(SharingEngine, StableJsonIsByteIdenticalUnderRacedSharing) {
  const std::string off = stable_json(sharing_spec(0, /*sequential=*/false, 2));
  const std::string on = stable_json(sharing_spec(8, /*sequential=*/false, 2));
  EXPECT_EQ(off, on);
}

TEST(SharingEngine, SequentialCountersAreReproducibleAndVaultWarms) {
  // Same campaign run twice against the same vault: identical verdicts,
  // and the second pass must observe vault traffic (the cross-job win).
  const CampaignSpec spec = sharing_spec(8, /*sequential=*/true, 1);
  CampaignOptions options;
  options.clause_vault = std::make_shared<sat::ClauseVault>();
  const CampaignReport cold = run_campaign(spec, options);
  const CampaignReport warm = run_campaign(spec, options);
  ASSERT_EQ(cold.jobs.size(), warm.jobs.size());
  std::uint64_t warm_hits = 0;
  for (std::size_t i = 0; i < cold.jobs.size(); ++i) {
    EXPECT_EQ(cold.jobs[i].verdict, warm.jobs[i].verdict) << spec.jobs[i].name;
    warm_hits += warm.jobs[i].vault_hits;
  }
  EXPECT_GT(warm_hits, 0u) << "digest-identical jobs must reuse vault clauses";

  // Determinism of the sharing counters themselves: sequential mode is
  // vault-only, so for a fixed spec and a fixed *initial* vault state the
  // counters are bit-reproducible. Two fresh-vault runs must match on
  // every counter of every job.
  CampaignOptions fresh_a, fresh_b;
  fresh_a.clause_vault = std::make_shared<sat::ClauseVault>();
  fresh_b.clause_vault = std::make_shared<sat::ClauseVault>();
  const CampaignReport run_a = run_campaign(spec, fresh_a);
  const CampaignReport run_b = run_campaign(spec, fresh_b);
  ASSERT_EQ(run_a.jobs.size(), run_b.jobs.size());
  for (std::size_t i = 0; i < run_a.jobs.size(); ++i) {
    EXPECT_EQ(run_a.jobs[i].clauses_exported, run_b.jobs[i].clauses_exported);
    EXPECT_EQ(run_a.jobs[i].clauses_imported, run_b.jobs[i].clauses_imported);
    EXPECT_EQ(run_a.jobs[i].vault_hits, run_b.jobs[i].vault_hits);
    EXPECT_EQ(run_a.jobs[i].conflicts, run_b.jobs[i].conflicts);
  }
}

TEST(SharingEngine, SequentialHelpersCutDefaultEntrantConflicts) {
  // Sequential mode with sharing on and portfolio > 1 runs the extra
  // entrants to completion first: they walk the identical blast chain and
  // seed the vault, then the default entrant (whose counters the job
  // reports) drains those epochs. Verdicts must not move, and on
  // conflict-rich jobs the reported conflict count must drop.
  const CampaignSpec off_spec = sharing_spec(0, /*sequential=*/true, 2);
  const CampaignSpec on_spec = sharing_spec(8, /*sequential=*/true, 2);
  EXPECT_EQ(stable_json(off_spec), stable_json(on_spec));

  CampaignOptions off_opt, on_opt;
  off_opt.clause_vault = std::make_shared<sat::ClauseVault>();
  on_opt.clause_vault = std::make_shared<sat::ClauseVault>();
  const CampaignReport off = run_campaign(off_spec, off_opt);
  const CampaignReport on = run_campaign(on_spec, on_opt);
  ASSERT_EQ(off.jobs.size(), on.jobs.size());
  std::uint64_t off_conflicts = 0, on_conflicts = 0, imported = 0;
  for (std::size_t i = 0; i < off.jobs.size(); ++i) {
    EXPECT_EQ(off.jobs[i].verdict, on.jobs[i].verdict) << off_spec.jobs[i].name;
    off_conflicts += off.jobs[i].conflicts;
    on_conflicts += on.jobs[i].conflicts;
    imported += on.jobs[i].clauses_imported;
  }
  EXPECT_GT(imported, 0u) << "helper entrants must seed the vault";
  EXPECT_LT(on_conflicts, off_conflicts)
      << "vault-fed default entrant must beat the sharing-off run";
}

TEST(SharingEngine, BudgetedJobsDisableSharing) {
  // The determinism guard: conflict budgets and sharing never mix, so a
  // budgeted job reports zero sharing traffic even with share_clauses set.
  JobBudget budget;
  budget.max_bound = 8;
  budget.max_k = 4;
  budget.sequential_provers = true;
  budget.share_clauses = 8;
  budget.conflict_budget = 100000;
  const JobResult r = run_job(counter_job("cnt5", 8, 5, budget));
  EXPECT_EQ(r.verdict, Verdict::Falsified);
  EXPECT_EQ(r.clauses_exported, 0u);
  EXPECT_EQ(r.clauses_imported, 0u);
  EXPECT_EQ(r.vault_hits, 0u);
}

}  // namespace
}  // namespace sepe::engine
