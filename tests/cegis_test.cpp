// Tests for the synthesis engine: the multiset CEGIS core (encoding +
// refinement loop), the identity-exclusion constraint, the three search
// drivers (classical / iterative / HPF), the priority bookkeeping of
// Algorithm 1, and the equivalence table.
#include <gtest/gtest.h>

#include <algorithm>

#include "sim/iss.hpp"
#include "synth/cegis.hpp"
#include "util/rng.hpp"

namespace sepe::synth {
namespace {

using isa::Opcode;

const Component* by_name(const std::vector<Component>& lib, const std::string& name) {
  for (const Component& c : lib)
    if (c.name == name) return &c;
  return nullptr;
}

CegisOptions fast_cegis() {
  CegisOptions o;
  o.xlen = 8;  // keep solver work unit-test sized
  return o;
}

// --- combinations with replacement (§2.2) ---

TEST(Combinations, MatchesBinomialCount) {
  // |multisets| = C(N + n - 1, n).
  EXPECT_EQ(combinations_with_replacement(3, 2).size(), 6u);    // C(4,2)
  EXPECT_EQ(combinations_with_replacement(5, 3).size(), 35u);   // C(7,3)
  EXPECT_EQ(combinations_with_replacement(1, 4).size(), 1u);
}

TEST(Combinations, PaperExampleCount) {
  // §2.2: N=29 components, n=6 => 1,344,904 multisets.
  // Computing the count without materializing: C(34,6).
  std::uint64_t c = 1;
  for (unsigned i = 0; i < 6; ++i) c = c * (34 - i) / (i + 1);
  EXPECT_EQ(c, 1344904u);
  // And the materialized n=3 case the benches use: C(31,3) = 4495.
  EXPECT_EQ(combinations_with_replacement(29, 3).size(), 4495u);
}

TEST(Combinations, TuplesAreSortedAndUnique) {
  const auto ms = combinations_with_replacement(4, 3);
  for (const auto& m : ms) EXPECT_TRUE(std::is_sorted(m.begin(), m.end()));
  auto copy = ms;
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(std::adjacent_find(copy.begin(), copy.end()), copy.end());
}

// --- the CEGIS core on hand-picked multisets ---

TEST(CegisMultiset, SynthesizesSubFromNotAddNot) {
  // The paper's Listing 1: SUB == XORI(-1) ; ADD ; XORI(-1).
  const auto lib = make_standard_library();
  const SynthSpec spec = make_spec(Opcode::SUB);
  const std::vector<const Component*> multiset = {
      by_name(lib, "NOT"), by_name(lib, "ADD"), by_name(lib, "NOT")};
  CegisStats stats;
  const auto program = cegis_multiset(spec, multiset, fast_cegis(), &stats);
  ASSERT_TRUE(program.has_value());
  EXPECT_EQ(program->lines.size(), 3u);
  EXPECT_GE(stats.iterations, 1u);
  // The found program must be verifiable at the synthesis width and at a
  // wider one (width-genericity of the equivalence).
  EXPECT_TRUE(verify_program(*program, 8));
  EXPECT_TRUE(verify_program(*program, 16));
}

TEST(CegisMultiset, SynthesizedSubEvaluatesCorrectly) {
  const auto lib = make_standard_library();
  const SynthSpec spec = make_spec(Opcode::SUB);
  const std::vector<const Component*> multiset = {
      by_name(lib, "NOT"), by_name(lib, "ADD"), by_name(lib, "NOT")};
  const auto program = cegis_multiset(spec, multiset, fast_cegis());
  ASSERT_TRUE(program.has_value());
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const BitVec a = rng.bitvec(8), b = rng.bitvec(8);
    EXPECT_EQ(program->eval({a, b}, 8), a - b);
  }
}

TEST(CegisMultiset, SynthesizesNegFromNotAddi) {
  // NEG(a) = ADDI(NOT(a), 1): forces the solver to pick the constant 1.
  const auto lib = make_standard_library();
  SynthSpec spec;
  spec.name = "NEG_SPEC";
  spec.opcode = Opcode::SUB;
  spec.inputs = {InputClass::Reg};
  spec.semantics = [](smt::TermManager& mgr, const std::vector<smt::TermRef>& in,
                      unsigned) { return mgr.mk_neg(in[0]); };
  const std::vector<const Component*> multiset = {by_name(lib, "NOT"),
                                                  by_name(lib, "ADDI")};
  const auto program = cegis_multiset(spec, multiset, fast_cegis());
  ASSERT_TRUE(program.has_value());
  EXPECT_TRUE(verify_program(*program, 8));
  EXPECT_EQ(program->eval({BitVec(8, 5)}, 8), BitVec(8, 251));  // -5 mod 256
}

TEST(CegisMultiset, SynthesizesXoriViaImmediatePassthrough) {
  // XORI(a, imm) == NOT(XORI(NOT(a), imm)) — requires wiring the spec's
  // symbolic immediate *through* the component attribute, not solving a
  // constant (no constant works for all imm).
  const auto lib = make_standard_library();
  const SynthSpec spec = make_spec(Opcode::XORI);
  const std::vector<const Component*> multiset = {
      by_name(lib, "NOT"), by_name(lib, "XORI"), by_name(lib, "NOT")};
  const auto program = cegis_multiset(spec, multiset, fast_cegis());
  ASSERT_TRUE(program.has_value());
  EXPECT_TRUE(verify_program(*program, 8));
  bool uses_passthrough = false;
  for (const SynthLine& l : program->lines)
    for (const AttrBinding& ab : l.attrs) uses_passthrough |= ab.passthrough;
  EXPECT_TRUE(uses_passthrough);
}

TEST(CegisMultiset, IdentityExclusionBlocksSelfDuplication) {
  // §4.1's input constraint: with only a SUB component available, the
  // "equivalent program" for SUB would have to be SUB itself — which the
  // constraint forbids, because it would degenerate into SQED.
  const auto lib = make_standard_library();
  const SynthSpec spec = make_spec(Opcode::SUB);
  const std::vector<const Component*> multiset = {by_name(lib, "SUB")};
  EXPECT_FALSE(cegis_multiset(spec, multiset, fast_cegis()).has_value());

  CegisOptions no_exclusion = fast_cegis();
  no_exclusion.exclude_identity = false;
  const auto program = cegis_multiset(spec, multiset, no_exclusion);
  ASSERT_TRUE(program.has_value());  // the identity is found once allowed
  EXPECT_TRUE(verify_program(*program, 8));
}

TEST(CegisMultiset, SubIsExpressibleWithSubDifferently) {
  // {SUB, SUB, SUB} admits a non-identity equivalent (the paper's §4.2
  // example pattern: SUB t1,rs1,rs1; SUB t2,t1,rs2; SUB rd,rs1,t2 — any
  // wiring that differs from the verbatim operands satisfies §4.1).
  const auto lib = make_standard_library();
  const SynthSpec spec = make_spec(Opcode::SUB);
  const std::vector<const Component*> multiset = {
      by_name(lib, "SUB"), by_name(lib, "SUB"), by_name(lib, "SUB")};
  const auto program = cegis_multiset(spec, multiset, fast_cegis());
  ASSERT_TRUE(program.has_value());
  EXPECT_TRUE(verify_program(*program, 8));
}

TEST(CegisMultiset, RejectsInexpressibleSpecs) {
  // AND cannot be built from ADD components alone.
  const auto lib = make_standard_library();
  const SynthSpec spec = make_spec(Opcode::AND);
  const std::vector<const Component*> multiset = {by_name(lib, "ADD"),
                                                  by_name(lib, "ADD")};
  EXPECT_FALSE(cegis_multiset(spec, multiset, fast_cegis()).has_value());
}

TEST(CegisMultiset, LoweredProgramRunsOnTheIss) {
  // End-to-end: synthesized SUB-equivalent, lowered to registers, matches
  // a direct SUB on the simulator (the EDSEP-V testing path in miniature).
  const auto lib = make_standard_library();
  const SynthSpec spec = make_spec(Opcode::SUB);
  const std::vector<const Component*> multiset = {
      by_name(lib, "NOT"), by_name(lib, "ADD"), by_name(lib, "NOT")};
  const auto program = cegis_multiset(spec, multiset, fast_cegis());
  ASSERT_TRUE(program.has_value());

  const isa::Program lowered = program->lower({2, 3}, 1, {}, {26, 27, 28, 29, 30, 31});
  Rng rng(17);
  for (int trial = 0; trial < 30; ++trial) {
    const BitVec a = rng.bitvec(16), b = rng.bitvec(16);
    sim::Iss direct(16, 8), equiv(16, 8);
    direct.state().set_reg(2, a);
    direct.state().set_reg(3, b);
    equiv.state().set_reg(2, a);
    equiv.state().set_reg(3, b);
    direct.step(isa::Instruction::rtype(Opcode::SUB, 1, 2, 3));
    equiv.run(lowered);
    ASSERT_EQ(direct.state().reg(1), equiv.state().reg(1));
  }
}

// --- the priority dictionary of Algorithm 1 ---

TEST(PriorityDict, InitialPriorityIsUniformWithoutPenalty) {
  HpfOptions hpf;
  PriorityDict dict(4, hpf);
  const auto lib = make_standard_library();
  const SynthSpec spec = make_spec(Opcode::AND);  // matches no component below
  const double p1 = dict.priority({0, 1}, spec, lib);
  const double p2 = dict.priority({2, 3}, spec, lib);
  EXPECT_DOUBLE_EQ(p1, p2);
}

TEST(PriorityDict, AlphaPenalizesSameNameComponents) {
  const auto lib = make_standard_library();
  HpfOptions hpf;
  PriorityDict dict(lib.size(), hpf);
  const SynthSpec spec = make_spec(Opcode::SUB);
  // Find SUB's index and a neutral one.
  unsigned sub = 0, add = 0;
  for (unsigned j = 0; j < lib.size(); ++j) {
    if (lib[j].name == "SUB") sub = j;
    if (lib[j].name == "ADD") add = j;
  }
  EXPECT_LT(dict.priority({sub, sub, sub}, spec, lib),
            dict.priority({add, add, add}, spec, lib));
}

TEST(PriorityDict, RewardRaisesAndPenalizeLowersPriority) {
  const auto lib = make_standard_library();
  HpfOptions hpf;
  PriorityDict dict(lib.size(), hpf);
  const SynthSpec spec = make_spec(Opcode::AND);
  const std::vector<unsigned> a = {0, 1}, b = {2, 3};
  const double before = dict.priority(a, spec, lib);
  dict.reward(a);
  EXPECT_GT(dict.priority(a, spec, lib), before);
  dict.penalize(b);
  EXPECT_LT(dict.priority(b, spec, lib), before);
}

TEST(PriorityDict, AblationKnobsDisableUpdates) {
  HpfOptions off;
  off.enable_choice_updates = false;
  off.enable_exclusion_updates = false;
  PriorityDict dict(4, off);
  dict.reward({0});
  dict.penalize({1});
  EXPECT_EQ(dict.choice_weight(0), off.initial_choice_weight);
  EXPECT_EQ(dict.exclusion_weight(1), off.initial_exclusion_weight);
}

// --- drivers ---

DriverOptions fast_driver(unsigned n, unsigned k) {
  DriverOptions o;
  o.cegis = fast_cegis();
  o.multiset_size = n;
  o.target_programs = k;
  o.max_seconds = 30.0;
  return o;
}

std::vector<Component> small_library() {
  const auto lib = make_standard_library();
  std::vector<Component> out;
  for (const char* name : {"ADD", "SUB", "XOR", "NOT", "ADDI"})
    out.push_back(*by_name(lib, name));
  return out;
}

TEST(HpfCegis, FindsEquivalentsForSub) {
  const SynthSpec spec = make_spec(Opcode::SUB);
  const auto lib = small_library();  // must outlive the returned programs
  HpfOptions hpf;
  const auto result = hpf_cegis(spec, lib, fast_driver(3, 2), hpf);
  ASSERT_GE(result.programs.size(), 1u);
  for (const SynthProgram& p : result.programs) EXPECT_TRUE(verify_program(p, 8));
  EXPECT_GE(result.multisets_tried, 1u);
  EXPECT_GE(result.multisets_succeeded, 1u);
}

TEST(HpfCegis, ProgramsAreDeduplicated) {
  const SynthSpec spec = make_spec(Opcode::SUB);
  const auto lib = small_library();
  HpfOptions hpf;
  const auto result = hpf_cegis(spec, lib, fast_driver(3, 4), hpf);
  std::vector<std::string> fps;
  for (const SynthProgram& p : result.programs) fps.push_back(p.fingerprint());
  std::sort(fps.begin(), fps.end());
  EXPECT_EQ(std::adjacent_find(fps.begin(), fps.end()), fps.end());
}

TEST(HpfCegis, SharedDictLearnsAcrossInstructions) {
  // After synthesizing SUB, the weights of the components used should have
  // grown (choice) or shrunk (exclusion) relative to their initial values.
  const auto lib = small_library();
  HpfOptions hpf;
  PriorityDict dict(lib.size(), hpf);
  const SynthSpec spec = make_spec(Opcode::SUB);
  const auto result = hpf_cegis(spec, lib, fast_driver(3, 2), hpf, &dict);
  ASSERT_GE(result.programs.size(), 1u);
  bool any_learned = false;
  for (unsigned j = 0; j < lib.size(); ++j) {
    if (dict.choice_weight(j) != hpf.initial_choice_weight ||
        dict.exclusion_weight(j) != hpf.initial_exclusion_weight)
      any_learned = true;
  }
  EXPECT_TRUE(any_learned);
}

TEST(IterativeCegis, FindsEquivalentsForSub) {
  const SynthSpec spec = make_spec(Opcode::SUB);
  const auto lib = small_library();
  const auto result = iterative_cegis(spec, lib, fast_driver(3, 1));
  ASSERT_GE(result.programs.size(), 1u);
  EXPECT_TRUE(verify_program(result.programs.front(), 8));
}

TEST(IterativeCegis, ShuffleSeedChangesVisitOrder) {
  // Different shuffles should (generically) reach the first program after
  // a different number of attempts; at minimum both runs succeed.
  const SynthSpec spec = make_spec(Opcode::SUB);
  auto o1 = fast_driver(3, 1);
  o1.shuffle_seed = 1;
  auto o2 = fast_driver(3, 1);
  o2.shuffle_seed = 99;
  const auto lib = small_library();
  const auto r1 = iterative_cegis(spec, lib, o1);
  const auto r2 = iterative_cegis(spec, lib, o2);
  EXPECT_GE(r1.programs.size(), 1u);
  EXPECT_GE(r2.programs.size(), 1u);
}

TEST(ClassicalCegis, SolvesWhenTheWholeLibraryIsTheProgram) {
  // Classical CEGIS instantiates every library component; it can only
  // succeed when the full library happens to form a program. {NOT, ADDI}
  // for NEG(a) = ADDI(NOT(a), 1) is exactly such a library.
  const auto lib = make_standard_library();
  std::vector<Component> tiny = {*by_name(lib, "NOT"), *by_name(lib, "ADDI")};
  SynthSpec spec;
  spec.name = "NEG_SPEC";
  spec.opcode = Opcode::SUB;
  spec.inputs = {InputClass::Reg};
  spec.semantics = [](smt::TermManager& mgr, const std::vector<smt::TermRef>& in,
                      unsigned) { return mgr.mk_neg(in[0]); };
  const auto result = classical_cegis(spec, tiny, fast_driver(0, 1), 1);
  ASSERT_EQ(result.programs.size(), 1u);
  EXPECT_TRUE(verify_program(result.programs.front(), 8));
}

TEST(ClassicalCegis, FailsWhenLibraryHasIrrelevantComponents) {
  // Adding an unused component makes the monolithic encoding (which must
  // wire in *every* instance) unsatisfiable for this spec — the structural
  // reason classical CEGIS collapses on realistic libraries (§6.1).
  const auto lib = make_standard_library();
  std::vector<Component> tiny = {*by_name(lib, "NOT"), *by_name(lib, "ADDI"),
                                 *by_name(lib, "SLL")};
  SynthSpec spec;
  spec.name = "NEG_SPEC";
  spec.opcode = Opcode::SUB;
  spec.inputs = {InputClass::Reg};
  spec.semantics = [](smt::TermManager& mgr, const std::vector<smt::TermRef>& in,
                      unsigned) { return mgr.mk_neg(in[0]); };
  const auto result = classical_cegis(spec, tiny, fast_driver(0, 1), 1);
  EXPECT_TRUE(result.programs.empty());
}

// --- equivalence table ---

SynthesisResult sub_programs() {
  static const SynthSpec spec = make_spec(Opcode::SUB);
  static const auto lib = small_library();
  HpfOptions hpf;
  return hpf_cegis(spec, lib, fast_driver(3, 3), hpf);
}

TEST(EquivalenceTableTest, StoresAndLooksUp) {
  const auto result = sub_programs();
  ASSERT_GE(result.programs.size(), 1u);
  EquivalenceTable table;
  for (const SynthProgram& p : result.programs) table.add("SUB", p);
  EXPECT_EQ(table.size(), 1u);
  ASSERT_NE(table.find("SUB"), nullptr);
  EXPECT_EQ(table.find("SUB")->size(), result.programs.size());
  EXPECT_NE(table.first("SUB"), nullptr);
  EXPECT_EQ(table.find("ADD"), nullptr);
  EXPECT_EQ(table.first("ADD"), nullptr);
}

TEST(EquivalenceTableTest, FirstAvoidingSkipsTheOpcode) {
  const auto result = sub_programs();
  EquivalenceTable table;
  for (const SynthProgram& p : result.programs) table.add("SUB", p);
  if (const SynthProgram* p = table.first_avoiding("SUB", Opcode::SUB)) {
    EXPECT_FALSE(p->uses_opcode(Opcode::SUB));
  }
}

TEST(EquivalenceTableTest, SelectDistinctKeepsOnePerInstruction) {
  const auto result = sub_programs();
  ASSERT_GE(result.programs.size(), 1u);
  EquivalenceTable table;
  for (const SynthProgram& p : result.programs) table.add("SUB", p);
  const EquivalenceTable distinct = table.select_distinct();
  ASSERT_NE(distinct.find("SUB"), nullptr);
  EXPECT_EQ(distinct.find("SUB")->size(), 1u);
}

TEST(EquivalenceTableTest, ToStringListsPrograms) {
  const auto result = sub_programs();
  ASSERT_GE(result.programs.size(), 1u);
  EquivalenceTable table;
  table.add("SUB", result.programs.front());
  const std::string s = table.to_string();
  EXPECT_NE(s.find("# SUB"), std::string::npos);
}

TEST(BuildEquivalenceTable, CoversRequestedSpecs) {
  const std::vector<SynthSpec> specs = {make_spec(Opcode::SUB), make_spec(Opcode::ADD)};
  DriverOptions opts = fast_driver(3, 1);
  const auto lib = small_library();
  const EquivalenceTable table = build_equivalence_table(specs, lib, opts, 1);
  EXPECT_NE(table.first("SUB"), nullptr);
  EXPECT_NE(table.first("ADD"), nullptr);
  // Every stored program verifies at the synthesis width and wider.
  for (const char* name : {"SUB", "ADD"}) {
    const SynthProgram* p = table.first(name);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(verify_program(*p, 8)) << name;
    EXPECT_TRUE(verify_program(*p, 16)) << name;
  }
}

}  // namespace
}  // namespace sepe::synth
