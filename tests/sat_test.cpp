// Unit and property tests for the CDCL SAT solver.
#include <gtest/gtest.h>

#include <vector>

#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace sepe::sat {
namespace {

TEST(Sat, TrivialSat) {
  Solver s;
  const int a = s.new_var();
  s.add_clause(Lit(a, false));
  EXPECT_EQ(s.solve(), SolveResult::Sat);
  EXPECT_TRUE(s.model_value(a));
}

TEST(Sat, TrivialUnsat) {
  Solver s;
  const int a = s.new_var();
  s.add_clause(Lit(a, false));
  s.add_clause(Lit(a, true));
  EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(Sat, EmptyClauseIsUnsat) {
  Solver s;
  const int a = s.new_var();
  s.add_clause(Lit(a, false));
  EXPECT_FALSE(s.add_clause(std::vector<Lit>{Lit(a, true)}));
  EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(Sat, UnitPropagationChain) {
  Solver s;
  std::vector<int> v;
  for (int i = 0; i < 20; ++i) v.push_back(s.new_var());
  // v0 and (vi -> vi+1) force all true.
  s.add_clause(Lit(v[0], false));
  for (int i = 0; i + 1 < 20; ++i) s.add_clause(Lit(v[i], true), Lit(v[i + 1], false));
  EXPECT_EQ(s.solve(), SolveResult::Sat);
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(s.model_value(v[i]));
}

TEST(Sat, TautologyIgnored) {
  Solver s;
  const int a = s.new_var();
  EXPECT_TRUE(s.add_clause(Lit(a, false), Lit(a, true)));
  EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(Sat, PigeonHole3Into2IsUnsat) {
  // PHP(3,2): classic small unsat instance that requires real search.
  Solver s;
  int p[3][2];
  for (auto& row : p)
    for (int& x : row) x = s.new_var();
  for (auto& row : p) s.add_clause(Lit(row[0], false), Lit(row[1], false));
  for (int h = 0; h < 2; ++h)
    for (int i = 0; i < 3; ++i)
      for (int j = i + 1; j < 3; ++j)
        s.add_clause(Lit(p[i][h], true), Lit(p[j][h], true));
  EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(Sat, PigeonHole6Into5IsUnsat) {
  Solver s;
  constexpr int N = 6, H = 5;
  int p[N][H];
  for (auto& row : p)
    for (int& x : row) x = s.new_var();
  for (auto& row : p) {
    std::vector<Lit> clause;
    for (int x : row) clause.emplace_back(x, false);
    s.add_clause(clause);
  }
  for (int h = 0; h < H; ++h)
    for (int i = 0; i < N; ++i)
      for (int j = i + 1; j < N; ++j)
        s.add_clause(Lit(p[i][h], true), Lit(p[j][h], true));
  EXPECT_EQ(s.solve(), SolveResult::Unsat);
  EXPECT_GT(s.num_conflicts(), 0u);
}

TEST(Sat, AssumptionsSatAndUnsat) {
  Solver s;
  const int a = s.new_var(), b = s.new_var();
  s.add_clause(Lit(a, true), Lit(b, false));  // a -> b
  EXPECT_EQ(s.solve({Lit(a, false)}), SolveResult::Sat);
  EXPECT_TRUE(s.model_value(b));
  s.add_clause(Lit(b, true));  // now b must be false => a must be false
  EXPECT_EQ(s.solve({Lit(a, false)}), SolveResult::Unsat);
  // Solver stays usable and consistent afterwards (incrementality).
  EXPECT_EQ(s.solve({Lit(a, true)}), SolveResult::Sat);
  EXPECT_FALSE(s.model_value(a));
}

TEST(Sat, FailedAssumptionsContainCulprit) {
  Solver s;
  const int a = s.new_var(), b = s.new_var(), c = s.new_var();
  s.add_clause(Lit(a, true), Lit(b, true));  // ~a | ~b
  const auto r = s.solve({Lit(c, false), Lit(a, false), Lit(b, false)});
  EXPECT_EQ(r, SolveResult::Unsat);
  // The core must mention a or b, and must not be empty.
  bool mentions = false;
  for (Lit l : s.failed_assumptions())
    if (l.var() == a || l.var() == b) mentions = true;
  EXPECT_TRUE(mentions);
}

TEST(Sat, IncrementalClauseAddition) {
  Solver s;
  std::vector<int> v;
  for (int i = 0; i < 8; ++i) v.push_back(s.new_var());
  EXPECT_EQ(s.solve(), SolveResult::Sat);
  // Progressively pin variables; stays sat until contradiction.
  for (int i = 0; i < 8; ++i) {
    s.add_clause(Lit(v[i], false));
    EXPECT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_TRUE(s.model_value(v[i]));
  }
  s.add_clause(Lit(v[3], true));
  EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(Sat, ConflictBudgetReturnsUnknown) {
  // A hard instance (PHP 8 into 7) with a tiny budget must give Unknown.
  Solver s;
  constexpr int N = 8, H = 7;
  std::vector<std::vector<int>> p(N, std::vector<int>(H));
  for (auto& row : p)
    for (int& x : row) x = s.new_var();
  for (auto& row : p) {
    std::vector<Lit> clause;
    for (int x : row) clause.emplace_back(x, false);
    s.add_clause(clause);
  }
  for (int h = 0; h < H; ++h)
    for (int i = 0; i < N; ++i)
      for (int j = i + 1; j < N; ++j)
        s.add_clause(Lit(p[i][h], true), Lit(p[j][h], true));
  s.set_conflict_budget(10);
  EXPECT_EQ(s.solve(), SolveResult::Unknown);
  s.set_conflict_budget(0);
  EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

// Reference brute-force checker for random property tests.
bool brute_force_sat(int nvars, const std::vector<std::vector<Lit>>& clauses) {
  for (int m = 0; m < (1 << nvars); ++m) {
    bool ok = true;
    for (const auto& c : clauses) {
      bool sat = false;
      for (Lit l : c)
        if (((m >> l.var()) & 1) != static_cast<int>(l.sign())) sat = true;
      if (!sat) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

class SatRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SatRandomTest, AgreesWithBruteForceOnRandom3Sat) {
  // Random 3-SAT near the phase transition (ratio ~4.3), cross-checked
  // against exhaustive enumeration; model validity checked on Sat.
  Rng rng(GetParam());
  constexpr int kVars = 10;
  const int n_clauses = 43;
  for (int round = 0; round < 20; ++round) {
    Solver s;
    for (int i = 0; i < kVars; ++i) s.new_var();
    std::vector<std::vector<Lit>> clauses;
    for (int i = 0; i < n_clauses; ++i) {
      std::vector<Lit> c;
      for (int j = 0; j < 3; ++j)
        c.emplace_back(static_cast<int>(rng.below(kVars)), rng.flip());
      clauses.push_back(c);
      s.add_clause(c);
    }
    const bool expect_sat = brute_force_sat(kVars, clauses);
    const auto r = s.solve();
    ASSERT_EQ(r, expect_sat ? SolveResult::Sat : SolveResult::Unsat);
    if (expect_sat) {
      for (const auto& c : clauses) {
        bool sat = false;
        for (Lit l : c)
          if (s.model_value(l)) sat = true;
        EXPECT_TRUE(sat) << "model does not satisfy a clause";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatRandomTest, ::testing::Range(1, 9));

// --- SolverConfig: round-trip, portfolio members, verdict agreement ---

TEST(SolverConfig, DefaultRoundTripsThroughString) {
  const SolverConfig c;
  const auto parsed = SolverConfig::from_string(c.to_string());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, c);
}

TEST(SolverConfig, EveryPortfolioMemberRoundTrips) {
  for (unsigned i = 0; i < 8; ++i) {
    const SolverConfig c = SolverConfig::portfolio_member(i);
    const auto parsed = SolverConfig::from_string(c.to_string());
    ASSERT_TRUE(parsed.has_value()) << c.to_string();
    EXPECT_EQ(*parsed, c) << c.to_string();
  }
}

TEST(SolverConfig, MemberZeroIsTheDefault) {
  EXPECT_EQ(SolverConfig::portfolio_member(0), SolverConfig{});
}

TEST(SolverConfig, SharingKnobsRoundTripThroughString) {
  SolverConfig c;
  c.share_lbd_cap = 4;
  c.share_import_interval = 500;
  const auto parsed = SolverConfig::from_string(c.to_string());
  ASSERT_TRUE(parsed.has_value()) << c.to_string();
  EXPECT_EQ(*parsed, c);
  // Combined with the other optional tail (memory ceiling), order is fixed.
  c.memory_limit_mb = 64;
  const auto parsed2 = SolverConfig::from_string(c.to_string());
  ASSERT_TRUE(parsed2.has_value()) << c.to_string();
  EXPECT_EQ(*parsed2, c);
  // The canonical form omits default-valued tails; a spelled-out default
  // is therefore malformed, keeping to_string() the unique encoding.
  EXPECT_FALSE(
      SolverConfig::from_string(SolverConfig{}.to_string() + ";slbd=8").has_value());
  EXPECT_FALSE(
      SolverConfig::from_string(SolverConfig{}.to_string() + ";simp=2000")
          .has_value());
}

TEST(SolverConfig, PortfolioMembersDiversifySharing) {
  // The diversified members must still round-trip and must not all share
  // identically (different export caps / poll cadences probe different
  // pool dynamics).
  bool diverse = false;
  for (unsigned i = 1; i < 4; ++i) {
    const SolverConfig c = SolverConfig::portfolio_member(i);
    const auto parsed = SolverConfig::from_string(c.to_string());
    ASSERT_TRUE(parsed.has_value()) << c.to_string();
    EXPECT_EQ(*parsed, c) << c.to_string();
    diverse = diverse || c.share_lbd_cap != SolverConfig{}.share_lbd_cap ||
              c.share_import_interval != SolverConfig{}.share_import_interval;
  }
  EXPECT_TRUE(diverse);
}

TEST(SolverConfig, MembersAreDiverse) {
  // The first four members must be pairwise distinct configurations.
  for (unsigned i = 0; i < 4; ++i)
    for (unsigned j = i + 1; j < 4; ++j)
      EXPECT_NE(SolverConfig::portfolio_member(i), SolverConfig::portfolio_member(j))
          << i << " vs " << j;
}

TEST(SolverConfig, FromStringRejectsMalformedText) {
  EXPECT_FALSE(SolverConfig::from_string("").has_value());
  EXPECT_FALSE(SolverConfig::from_string("decay=0.9").has_value());
  EXPECT_FALSE(SolverConfig::from_string(
                   SolverConfig{}.to_string() + ";junk")
                   .has_value());
  // Unknown restart policy name.
  std::string s = SolverConfig{}.to_string();
  const auto pos = s.find("restart=luby");
  ASSERT_NE(pos, std::string::npos);
  s.replace(pos, 12, "restart=never");
  EXPECT_FALSE(SolverConfig::from_string(s).has_value());
  // A zero reduction cadence (reduce after every conflict) is rejected.
  std::string zero_reduce = SolverConfig{}.to_string();
  const auto rpos = zero_reduce.find("reduce=");
  ASSERT_NE(rpos, std::string::npos);
  zero_reduce.replace(rpos, std::string::npos, "reduce=0+0");
  EXPECT_FALSE(SolverConfig::from_string(zero_reduce).has_value());
}

/// Pigeonhole: n+1 pigeons into n holes (UNSAT) — every portfolio member
/// must agree, whatever its restart/decay/phase/random-branch policy.
void add_pigeonhole(Solver& s, int holes) {
  const int pigeons = holes + 1;
  std::vector<std::vector<int>> var(pigeons, std::vector<int>(holes));
  for (int p = 0; p < pigeons; ++p)
    for (int h = 0; h < holes; ++h) var[p][h] = s.new_var();
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(Lit(var[p][h], false));
    s.add_clause(clause);
  }
  for (int h = 0; h < holes; ++h)
    for (int p1 = 0; p1 < pigeons; ++p1)
      for (int p2 = p1 + 1; p2 < pigeons; ++p2)
        s.add_clause(Lit(var[p1][h], true), Lit(var[p2][h], true));
}

TEST(SolverConfig, AllMembersRefutePigeonhole) {
  for (unsigned i = 0; i < 4; ++i) {
    Solver s(SolverConfig::portfolio_member(i));
    add_pigeonhole(s, 5);
    EXPECT_EQ(s.solve(), SolveResult::Unsat) << "member " << i;
  }
}

TEST(SolverConfig, AllMembersAgreeOnRandom3Sat) {
  // Random 3-SAT at the satisfiability threshold: every member must
  // return the same verdict as the default solver, and Sat models must
  // satisfy the clauses.
  Rng rng(0xc0ffee);
  for (int round = 0; round < 20; ++round) {
    const int nvars = 14;
    const int nclauses = 60;
    std::vector<std::vector<Lit>> clauses;
    for (int c = 0; c < nclauses; ++c) {
      std::vector<Lit> cl;
      for (int k = 0; k < 3; ++k)
        cl.push_back(Lit(static_cast<int>(rng.below(nvars)), rng.flip()));
      clauses.push_back(cl);
    }
    SolveResult reference = SolveResult::Unknown;
    for (unsigned i = 0; i < 4; ++i) {
      Solver s(SolverConfig::portfolio_member(i));
      for (int v = 0; v < nvars; ++v) s.new_var();
      bool root_conflict = false;
      for (const auto& cl : clauses)
        if (!s.add_clause(cl)) root_conflict = true;
      const SolveResult r = root_conflict ? SolveResult::Unsat : s.solve();
      if (i == 0) {
        reference = r;
      } else {
        EXPECT_EQ(r, reference) << "member " << i << " round " << round;
      }
      if (r == SolveResult::Sat) {
        for (const auto& cl : clauses) {
          bool sat = false;
          for (Lit l : cl) sat |= s.model_value(l);
          EXPECT_TRUE(sat) << "member " << i << " model violates a clause";
        }
      }
    }
  }
}

}  // namespace
}  // namespace sepe::sat
