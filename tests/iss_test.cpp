// Tests for the instruction-set simulator (the golden architectural
// model): register-file discipline, memory behaviour, and program-level
// executions with known results.
#include <gtest/gtest.h>

#include "proc/processor.hpp"
#include "sim/iss.hpp"
#include "ts_sim.hpp"
#include "util/rng.hpp"

namespace sepe::sim {
namespace {

using isa::Instruction;
using isa::Opcode;

TEST(ArchState, StartsZeroed) {
  ArchState st(16, 8);
  for (unsigned i = 0; i < 32; ++i) EXPECT_TRUE(st.reg(i).is_zero());
  EXPECT_TRUE(st.load_word(BitVec(16, 0)).is_zero());
  EXPECT_TRUE(st.load_word(BitVec(16, 28)).is_zero());
}

TEST(ArchState, X0IsHardwiredZero) {
  ArchState st(16, 8);
  st.set_reg(0, BitVec(16, 0x1234));
  EXPECT_TRUE(st.reg(0).is_zero());
  st.set_reg(1, BitVec(16, 0x1234));
  EXPECT_EQ(st.reg(1), BitVec(16, 0x1234));
}

TEST(ArchState, MemoryIsWordAddressed) {
  ArchState st(32, 16);
  st.store_word(BitVec(32, 8), BitVec(32, 0xdeadbeefULL));
  // Byte offsets within a word alias the same cell.
  EXPECT_EQ(st.load_word(BitVec(32, 8)), BitVec(32, 0xdeadbeefULL));
  EXPECT_EQ(st.load_word(BitVec(32, 9)), BitVec(32, 0xdeadbeefULL));
  EXPECT_EQ(st.load_word(BitVec(32, 11)), BitVec(32, 0xdeadbeefULL));
  EXPECT_TRUE(st.load_word(BitVec(32, 12)).is_zero());
}

TEST(ArchState, MemoryWrapsModuloSize) {
  ArchState st(32, 8);  // 8 words = 32 bytes
  st.store_word(BitVec(32, 0), BitVec(32, 0x11));
  EXPECT_EQ(st.load_word(BitVec(32, 32)), BitVec(32, 0x11));  // wraps to 0
  EXPECT_EQ(st.word_index(BitVec(32, 36)), 1u);
}

TEST(ArchState, EqualityIgnoresZeroEntries) {
  ArchState a(16, 8), b(16, 8);
  EXPECT_EQ(a, b);
  a.store_word(BitVec(16, 4), BitVec(16, 0));  // explicit zero store
  EXPECT_EQ(a, b);
  a.store_word(BitVec(16, 4), BitVec(16, 9));
  EXPECT_FALSE(a == b);
}

TEST(Iss, ExecutesArithmeticSequence) {
  Iss iss(32, 8);
  iss.run({
      Instruction::itype(Opcode::ADDI, 1, 0, 21),   // x1 = 21
      Instruction::itype(Opcode::ADDI, 2, 0, 2),    // x2 = 2
      Instruction::rtype(Opcode::MUL, 3, 1, 2),     // x3 = 42
      Instruction::rtype(Opcode::SUB, 4, 3, 1),     // x4 = 21
      Instruction::rtype(Opcode::XOR, 5, 3, 4),     // x5 = 42 ^ 21 = 63
  });
  EXPECT_EQ(iss.state().reg(3), BitVec(32, 42));
  EXPECT_EQ(iss.state().reg(4), BitVec(32, 21));
  EXPECT_EQ(iss.state().reg(5), BitVec(32, 63));
}

TEST(Iss, PaperListing1Equivalence) {
  // SUB rd,rs1,rs2  ==  XORI t1,rs1,-1 ; ADD t2,t1,rs2 ; XORI rd,t2,-1
  // (Listing 1 uses 0xfff, the 12-bit encoding of -1.)
  Rng rng(42);
  for (int trial = 0; trial < 100; ++trial) {
    const BitVec a = rng.bitvec(32), b = rng.bitvec(32);
    Iss direct(32, 8), equiv(32, 8);
    direct.state().set_reg(2, a);
    direct.state().set_reg(3, b);
    equiv.state().set_reg(2, a);
    equiv.state().set_reg(3, b);

    direct.step(Instruction::rtype(Opcode::SUB, 1, 2, 3));
    equiv.run({
        Instruction::itype(Opcode::XORI, 4, 2, -1),
        Instruction::rtype(Opcode::ADD, 5, 4, 3),
        Instruction::itype(Opcode::XORI, 1, 5, -1),
    });
    ASSERT_EQ(direct.state().reg(1), equiv.state().reg(1))
        << "a=" << a.to_hex() << " b=" << b.to_hex();
  }
}

TEST(Iss, LoadStoreRoundTrip) {
  Iss iss(32, 16);
  iss.run({
      Instruction::itype(Opcode::ADDI, 1, 0, 0x55),  // x1 = 0x55
      Instruction::itype(Opcode::ADDI, 2, 0, 8),     // x2 = 8 (base)
      Instruction::sw(1, 2, 4),                      // mem[12] = 0x55
      Instruction::lw(3, 2, 4),                      // x3 = mem[12]
  });
  EXPECT_EQ(iss.state().reg(3), BitVec(32, 0x55));
  EXPECT_EQ(iss.state().load_word(BitVec(32, 12)), BitVec(32, 0x55));
}

TEST(Iss, LoadUsesNegativeOffsets) {
  Iss iss(32, 16);
  iss.state().set_reg(2, BitVec(32, 16));
  iss.state().store_word(BitVec(32, 12), BitVec(32, 0x99));
  iss.step(Instruction::lw(1, 2, -4));
  EXPECT_EQ(iss.state().reg(1), BitVec(32, 0x99));
}

TEST(Iss, WritesToX0AreDiscarded) {
  Iss iss(32, 8);
  iss.run({
      Instruction::itype(Opcode::ADDI, 0, 0, 5),
      Instruction::rtype(Opcode::ADD, 1, 0, 0),
  });
  EXPECT_TRUE(iss.state().reg(0).is_zero());
  EXPECT_TRUE(iss.state().reg(1).is_zero());
}

TEST(Iss, NopLeavesStateUntouched) {
  Iss iss(16, 8);
  iss.state().set_reg(5, BitVec(16, 77));
  const ArchState before = iss.state();
  iss.step(Instruction::nop());
  EXPECT_EQ(iss.state(), before);
}

TEST(Iss, NarrowDatapathWrapsArithmetic) {
  Iss iss(8, 8);
  iss.run({
      Instruction::itype(Opcode::ADDI, 1, 0, 200),
      Instruction::itype(Opcode::ADDI, 2, 0, 100),
      Instruction::rtype(Opcode::ADD, 3, 1, 2),  // 300 mod 256 = 44
  });
  EXPECT_EQ(iss.state().reg(3), BitVec(8, 44));
}

// --- exception paths: the cases RISC-V defines instead of trapping ---

TEST(IssExceptionPath, DivisionByZeroFollowsRiscvConvention) {
  Iss iss(16, 8);
  iss.state().set_reg(1, BitVec(16, 0x1234));
  // x2 stays zero: every quotient is all-ones, every remainder the dividend.
  iss.run({
      Instruction::rtype(Opcode::DIV, 3, 1, 2),
      Instruction::rtype(Opcode::DIVU, 4, 1, 2),
      Instruction::rtype(Opcode::REM, 5, 1, 2),
      Instruction::rtype(Opcode::REMU, 6, 1, 2),
  });
  EXPECT_EQ(iss.state().reg(3), BitVec::ones(16));
  EXPECT_EQ(iss.state().reg(4), BitVec::ones(16));
  EXPECT_EQ(iss.state().reg(5), BitVec(16, 0x1234));
  EXPECT_EQ(iss.state().reg(6), BitVec(16, 0x1234));
}

TEST(IssExceptionPath, SignedDivisionOverflowSaturates) {
  // INT_MIN / -1 overflows two's complement; RISC-V defines the quotient
  // as INT_MIN and the remainder as zero rather than trapping.
  Iss iss(16, 8);
  iss.state().set_reg(1, BitVec(16, 0x8000));  // INT_MIN at xlen 16
  iss.state().set_reg(2, BitVec::ones(16));    // -1
  iss.run({
      Instruction::rtype(Opcode::DIV, 3, 1, 2),
      Instruction::rtype(Opcode::REM, 4, 1, 2),
  });
  EXPECT_EQ(iss.state().reg(3), BitVec(16, 0x8000));
  EXPECT_TRUE(iss.state().reg(4).is_zero());
}

TEST(IssExceptionPath, RegisterShiftAmountsAreMaskedToLog2Width) {
  Iss iss(16, 8);
  iss.state().set_reg(1, BitVec(16, 0x8001));
  iss.state().set_reg(2, BitVec(16, 16));  // masks to 0 at xlen 16
  iss.state().set_reg(3, BitVec(16, 17));  // masks to 1
  iss.run({
      Instruction::rtype(Opcode::SLL, 4, 1, 2),
      Instruction::rtype(Opcode::SRL, 5, 1, 3),
      Instruction::rtype(Opcode::SRA, 6, 1, 3),
  });
  EXPECT_EQ(iss.state().reg(4), BitVec(16, 0x8001));  // unchanged
  EXPECT_EQ(iss.state().reg(5), BitVec(16, 0x4000));
  EXPECT_EQ(iss.state().reg(6), BitVec(16, 0xc000));  // sign bit replicated
}

TEST(IssExceptionPath, SltAndSltuDisagreeAcrossTheSignBoundary) {
  Iss iss(16, 8);
  iss.state().set_reg(1, BitVec(16, 0x8000));  // most-negative / large unsigned
  iss.state().set_reg(2, BitVec(16, 1));
  iss.run({
      Instruction::rtype(Opcode::SLT, 3, 1, 2),
      Instruction::rtype(Opcode::SLTU, 4, 1, 2),
      Instruction::rtype(Opcode::SLT, 5, 1, 1),  // never less than itself
      Instruction::rtype(Opcode::SLTU, 6, 1, 1),
  });
  EXPECT_EQ(iss.state().reg(3), BitVec(16, 1));
  EXPECT_TRUE(iss.state().reg(4).is_zero());
  EXPECT_TRUE(iss.state().reg(5).is_zero());
  EXPECT_TRUE(iss.state().reg(6).is_zero());
}

// Architectural cross-check: the same exception-path programs, run through
// the pipelined DUV (simulated concretely via TsSim — the exact replay
// engine the witness checker uses) must land in the same architectural
// state as the ISS. alu_subset() omits the divider, so extend it here.
TEST(IssExceptionPath, PipelineAgreesWithIssOnExceptionPaths) {
  smt::TermManager mgr;
  ts::TransitionSystem ts(mgr);
  proc::ProcConfig config = proc::ProcConfig::alu_subset(16);
  config.opcodes.insert(config.opcodes.end(), {Opcode::DIV, Opcode::DIVU,
                                               Opcode::REM, Opcode::REMU});
  const proc::ProcModel m = proc::build_processor(ts, config);

  Rng rng(2024);
  const std::vector<Opcode> edge_ops = {Opcode::DIV, Opcode::DIVU, Opcode::REM,
                                        Opcode::REMU, Opcode::SLL, Opcode::SRL,
                                        Opcode::SRA, Opcode::SLT, Opcode::SLTU};
  for (int round = 0; round < 4; ++round) {
    testing::TsSim sim(ts);
    Iss iss(16, config.mem_words);
    for (unsigned r = 1; r < 32; ++r) {
      // interesting_bitvec is biased toward 0, all-ones, and sign-boundary
      // values, so div-by-zero and INT_MIN/-1 appear in every round.
      const BitVec v = rng.interesting_bitvec(16);
      sim.set_state(m.regs[r], v);
      iss.state().set_reg(r, v);
    }
    isa::Program prog;
    for (int i = 0; i < 30; ++i) {
      prog.push_back(Instruction::rtype(edge_ops[rng.below(edge_ops.size())],
                                        1 + rng.below(31), rng.below(32),
                                        rng.below(32)));
    }
    testing::proc_run_program(sim, m, prog);
    iss.run(prog);
    for (unsigned r = 0; r < 32; ++r)
      ASSERT_EQ(sim.state(m.regs[r]), iss.state().reg(r))
          << "round " << round << ": x" << r << " differs";
  }
}

// Differential property: running a random ALU program instruction by
// instruction equals running it in one call, and matches a hand
// interpretation via instruction_result_concrete.
TEST(IssProperty, StepAndRunAgree) {
  Rng rng(321);
  const std::vector<Opcode> ops = {Opcode::ADD, Opcode::SUB, Opcode::XOR, Opcode::AND,
                                   Opcode::OR,  Opcode::SLT, Opcode::MUL, Opcode::SRA};
  for (int round = 0; round < 20; ++round) {
    isa::Program prog;
    for (int i = 0; i < 30; ++i) {
      prog.push_back(Instruction::rtype(ops[rng.below(ops.size())], 1 + rng.below(15),
                                        rng.below(16), rng.below(16)));
    }
    Iss one(16, 8), whole(16, 8);
    for (unsigned r = 1; r < 16; ++r) {
      const BitVec v = rng.bitvec(16);
      one.state().set_reg(r, v);
      whole.state().set_reg(r, v);
    }
    whole.run(prog);
    for (const Instruction& inst : prog) {
      const BitVec expect = isa::instruction_result_concrete(
          inst, one.state().reg(inst.rs1), one.state().reg(inst.rs2), 16);
      one.step(inst);
      ASSERT_EQ(one.state().reg(inst.rd), inst.rd == 0 ? BitVec::zeros(16) : expect);
    }
    EXPECT_EQ(one.state(), whole.state());
  }
}

}  // namespace
}  // namespace sepe::sim
