// Tests for the BTOR2 parser: hand-written standard-format snippets,
// error diagnostics, and the serializer round-trip — a system dumped by
// to_btor2 parses back into a behaviourally identical system (checked by
// BMC witness depth and by a second dump being textually stable).
#include <gtest/gtest.h>

#include "bmc/bmc.hpp"
#include "ts/btor2_parser.hpp"

namespace sepe::ts {
namespace {

using smt::TermManager;
using smt::TermRef;

TEST(Btor2Parser, ParsesAMinimalCounter) {
  const std::string text = R"(
; a 4-bit counter reaching 5
1 sort bitvec 4
2 sort bitvec 1
10 state 1 cnt
11 constd 1 0
12 init 1 10 11
13 constd 1 1
14 add 1 10 13
15 next 1 10 14
16 constd 1 5
17 eq 2 10 16
18 bad 17 ; reaches-five
)";
  TermManager mgr;
  TransitionSystem ts(mgr);
  const Btor2ParseResult r = parse_btor2(text, ts);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(ts.states().size(), 1u);
  EXPECT_EQ(mgr.node(ts.states()[0]).name, "cnt");
  ASSERT_EQ(ts.bads().size(), 1u);
  EXPECT_EQ(ts.bad_labels()[0], "reaches-five");

  bmc::Bmc checker(ts);
  bmc::BmcOptions o;
  o.max_bound = 8;
  const auto w = checker.check(o);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->length, 5u);
}

TEST(Btor2Parser, SupportsStandardConstantForms) {
  const std::string text = R"(
1 sort bitvec 8
10 zero 1
11 one 1
12 ones 1
13 const 1 1010
14 consth 1 ff
15 constd 1 77
20 state 1 s
21 next 1 20 20
22 init 1 20 13
)";
  TermManager mgr;
  TransitionSystem ts(mgr);
  const Btor2ParseResult r = parse_btor2(text, ts);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(ts.init_of(ts.states()[0]), mgr.mk_const(8, 0b1010));
}

TEST(Btor2Parser, ParsesIndexedOperators) {
  const std::string text = R"(
1 sort bitvec 8
2 sort bitvec 4
3 sort bitvec 12
10 input 1 in
11 slice 2 10 7 4
12 uext 3 10 4
13 sext 3 10 4
20 state 3 s
21 next 3 20 12
)";
  TermManager mgr;
  TransitionSystem ts(mgr);
  const Btor2ParseResult r = parse_btor2(text, ts);
  ASSERT_TRUE(r.ok) << r.error;
}

TEST(Btor2Parser, RejectsUnknownNodesWithLineNumbers) {
  const std::string text = "1 sort bitvec 4\n10 add 1 98 99\n";
  TermManager mgr;
  TransitionSystem ts(mgr);
  const Btor2ParseResult r = parse_btor2(text, ts);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("line 2"), std::string::npos);
  EXPECT_NE(r.error.find("unknown node"), std::string::npos);
}

TEST(Btor2Parser, RejectsNextlessStates) {
  const std::string text = "1 sort bitvec 4\n10 state 1 s\n";
  TermManager mgr;
  TransitionSystem ts(mgr);
  const Btor2ParseResult r = parse_btor2(text, ts);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("no next"), std::string::npos);
}

TEST(Btor2Parser, RejectsUnsupportedKeywords) {
  TermManager mgr;
  TransitionSystem ts(mgr);
  const Btor2ParseResult r = parse_btor2("1 sort array 4 4\n", ts);
  EXPECT_FALSE(r.ok);
}

// Fuzz-ish negative battery for untrusted corpus input: every snippet
// must come back as a line-numbered diagnostic — never an assert, a
// crash, or a silent partial parse.
TEST(Btor2Parser, RejectsMalformedUntrustedInput) {
  const char* cases[] = {
      "x sort bitvec 4\n",                    // non-numeric id
      "-1 sort bitvec 4\n",                   // negative id
      "18446744073709551616 sort bitvec 4\n", // id overflows 64 bits
      "1 sort bitvec 0\n",                    // zero width
      "1 sort bitvec 65\n",                   // width beyond 64
      "1 sort bitvec 4\n1 sort bitvec 8\n",   // sort id redefined
      "1 sort\n",                             // truncated sort
      "1\n",                                  // id with no keyword
      "1 sort bitvec 4\n10 state 1 s\n10 input 1 t\n",  // node id redefined
      "1 sort bitvec 4\n10 state 1 s\n11 state 1 s\n",  // symbol reused
      "1 sort bitvec 4\n10 state 9 s\n",      // unknown sort id
      "1 sort bitvec 4\n2 sort bitvec 8\n10 state 1 a\n11 state 2 b\n"
      "12 add 1 10 11\n",                     // operand width mismatch
      "1 sort bitvec 4\n10 state 1 a\n11 sll 1 10\n",   // missing operand
      "1 sort bitvec 4\n10 state 1 c\n11 ite 1 10 10 10\n",  // cond not 1-bit
      "1 sort bitvec 4\n2 sort bitvec 1\n10 input 2 c\n11 state 1 a\n"
      "12 input 2 b\n13 ite 1 10 11 12\n",    // ite branch width mismatch
      "1 sort bitvec 4\n10 constd 1 99\n",    // constant exceeds the sort
      "1 sort bitvec 4\n10 constd 1 -9\n",    // below two's-complement min
      "1 sort bitvec 4\n10 constd 1 1x\n",    // garbage decimal payload
      "1 sort bitvec 4\n10 const 1 12\n",     // non-binary digit in const
      "1 sort bitvec 4\n10 consth 1 fg\n",    // non-hex digit in consth
      "1 sort bitvec 4\n10 constd 1\n",       // missing payload
      "1 sort bitvec 4\n2 sort bitvec 8\n10 state 2 s\n11 zero 1\n"
      "12 init 1 10 11\n",                    // init sort disagrees with state
      "1 sort bitvec 4\n10 state 1 s\n11 next 1 10 10\n"
      "12 next 1 10 10\n",                    // duplicate next
      "1 sort bitvec 4\n10 state 1 s\n11 init 1 10 10\n"
      "12 init 1 10 10\n",                    // duplicate init
      "1 sort bitvec 4\n10 input 1 i\n11 init 1 10 10\n",  // init on an input
      "1 sort bitvec 4\n10 state 1 s\n11 slice 1 10 9 0\n",  // slice too wide
      "1 sort bitvec 4\n10 state 1 s\n11 uext 1 10 4\n",  // uext width arithmetic
      "1 sort bitvec 4\n10 state 1 s\n11 bad 10\n",       // bad not 1-bit
      "1 sort bitvec 4\n10 add 1 98 99\n",    // unknown operand nodes
  };
  for (const char* text : cases) {
    TermManager mgr;
    TransitionSystem ts(mgr);
    const Btor2ParseResult r = parse_btor2(text, ts);
    EXPECT_FALSE(r.ok) << "accepted:\n" << text;
    EXPECT_NE(r.error.find("line "), std::string::npos)
        << "no line number in: " << r.error;
  }
}

TEST(Btor2Parser, NegativeConstdIsTwosComplementAtTheSortWidth) {
  const std::string text = R"(
1 sort bitvec 4
10 state 1 s
11 constd 1 -1
12 init 1 10 11
13 next 1 10 10
)";
  TermManager mgr;
  TransitionSystem ts(mgr);
  const Btor2ParseResult r = parse_btor2(text, ts);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(ts.init_of(ts.states()[0]), mgr.mk_const(4, 0xF));
}

TEST(Btor2Parser, RejectsWidthMismatches) {
  const std::string text = R"(
1 sort bitvec 4
2 sort bitvec 8
10 state 1 s
11 input 2 in
12 next 1 10 11
)";
  TermManager mgr;
  TransitionSystem ts(mgr);
  const Btor2ParseResult r = parse_btor2(text, ts);
  EXPECT_FALSE(r.ok);
}

/// Round-trip helper: dump, parse, and compare behaviour via BMC.
void expect_roundtrip_preserves_depth(const TransitionSystem& ts, unsigned expect_depth) {
  const std::string dump = to_btor2(ts);

  TermManager mgr2;
  TransitionSystem parsed(mgr2);
  const Btor2ParseResult r = parse_btor2(dump, parsed);
  ASSERT_TRUE(r.ok) << r.error << "\n--- dump ---\n" << dump;

  bmc::Bmc checker(parsed);
  bmc::BmcOptions o;
  o.max_bound = expect_depth + 3;
  const auto w = checker.check(o);
  ASSERT_TRUE(w.has_value()) << "round-tripped system lost its violation";
  EXPECT_EQ(w->length, expect_depth);

  // Second-generation dump is textually identical (canonical form).
  EXPECT_EQ(to_btor2(parsed), to_btor2(parsed));
}

TEST(Btor2RoundTrip, CounterSystem) {
  TermManager mgr;
  TransitionSystem ts(mgr);
  const TermRef cnt = ts.add_state("cnt", 8);
  const TermRef inc = ts.add_input("inc", 1);
  ts.set_init(cnt, mgr.mk_const(8, 0));
  ts.set_next(cnt, mgr.mk_ite(inc, mgr.mk_add(cnt, mgr.mk_const(8, 1)), cnt));
  ts.add_bad(mgr.mk_eq(cnt, mgr.mk_const(8, 4)), "cnt-4");
  expect_roundtrip_preserves_depth(ts, 4);
}

TEST(Btor2RoundTrip, SystemWithConstraintsAndRichOperators) {
  TermManager mgr;
  TransitionSystem ts(mgr);
  const TermRef a = ts.add_state("a", 8);
  const TermRef b = ts.add_state("b", 8);
  const TermRef in = ts.add_input("in", 8);
  ts.set_init(a, mgr.mk_const(8, 1));
  ts.set_init(b, mgr.mk_const(8, 0));
  // a' = (a * 2) xor (in srl 1); b' = b + slice(a); constraint in < 16.
  ts.set_next(a, mgr.mk_xor(mgr.mk_mul(a, mgr.mk_const(8, 2)),
                            mgr.mk_lshr(in, mgr.mk_const(8, 1))));
  ts.set_next(b, mgr.mk_add(b, mgr.mk_zext(mgr.mk_extract(a, 3, 0), 8)));
  ts.add_constraint(mgr.mk_ult(in, mgr.mk_const(8, 16)));
  ts.add_bad(mgr.mk_eq(b, mgr.mk_const(8, 2)), "b-2");

  const std::string dump = to_btor2(ts);
  TermManager mgr2;
  TransitionSystem parsed(mgr2);
  const Btor2ParseResult r = parse_btor2(dump, parsed);
  ASSERT_TRUE(r.ok) << r.error << "\n--- dump ---\n" << dump;
  EXPECT_EQ(parsed.states().size(), 2u);
  EXPECT_EQ(parsed.inputs().size(), 1u);
  EXPECT_EQ(parsed.constraints().size(), 1u);

  // Same violation depth on both sides.
  bmc::Bmc c1(ts), c2(parsed);
  bmc::BmcOptions o;
  o.max_bound = 8;
  const auto w1 = c1.check(o);
  const auto w2 = c2.check(o);
  ASSERT_EQ(w1.has_value(), w2.has_value());
  if (w1) {
    EXPECT_EQ(w1->length, w2->length);
  }
}

TEST(Btor2RoundTrip, InitConstraintsSurviveViaTheFlagState) {
  // Init-only constraints have no direct BTOR2 form; the writer encodes
  // them through a one-shot flag state (`__sepe_at_init`) guarding a
  // plain constraint. The pinned QED models all rely on this: their
  // QED-consistent initial state is an init constraint over a symbolic
  // register file. Here: cnt starts unconstrained but the init
  // constraint pins it to 2, so the violation (cnt == 4) is at depth 2 —
  // without the constraint it would be at depth 0.
  TermManager mgr;
  TransitionSystem ts(mgr);
  const TermRef cnt = ts.add_state("cnt", 8);
  ts.set_next(cnt, mgr.mk_add(cnt, mgr.mk_const(8, 1)));
  ts.add_init_constraint(mgr.mk_eq(cnt, mgr.mk_const(8, 2)));
  ts.add_bad(mgr.mk_eq(cnt, mgr.mk_const(8, 4)), "cnt-4");
  expect_roundtrip_preserves_depth(ts, 2);
}

TEST(Btor2RoundTrip, SignedOperatorsSurvive) {
  TermManager mgr;
  TransitionSystem ts(mgr);
  const TermRef x = ts.add_state("x", 8);
  ts.set_init(x, mgr.mk_const(8, 0x80));  // INT_MIN
  ts.set_next(x, mgr.mk_ashr(x, mgr.mk_const(8, 1)));
  ts.add_bad(mgr.mk_slt(x, mgr.mk_const(8, 0xF0)), "below-minus-16");
  // x: 0x80(-128) -> 0xC0(-64) -> 0xE0(-32) ... slt(x, -16) true at step 0.
  expect_roundtrip_preserves_depth(ts, 0);
}

}  // namespace
}  // namespace sepe::ts
