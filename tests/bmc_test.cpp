// Tests for the bounded model checker: reachability depth, witness
// content and replayability, constraints (step and init), multiple bad
// conditions, and resource budgets.
#include <gtest/gtest.h>

#include "bmc/bmc.hpp"
#include "smt/eval.hpp"

namespace sepe::bmc {
namespace {

using smt::TermManager;
using smt::TermRef;

/// Counter that increments by an input-controlled step.
struct CounterSystem {
  TermManager mgr;
  ts::TransitionSystem ts{mgr};
  TermRef cnt, inc;

  explicit CounterSystem(unsigned width = 8, std::uint64_t start = 0) {
    cnt = ts.add_state("cnt", width);
    inc = ts.add_input("inc", 1);
    ts.set_init(cnt, mgr.mk_const(width, start));
    ts.set_next(cnt, mgr.mk_ite(inc, mgr.mk_add(cnt, mgr.mk_const(width, 1)), cnt));
  }
};

TEST(BmcTest, FindsBadAtExactDepth) {
  CounterSystem sys;
  sys.ts.add_bad(sys.mgr.mk_eq(sys.cnt, sys.mgr.mk_const(8, 5)), "cnt-5");
  Bmc bmc(sys.ts);
  BmcOptions o;
  o.max_bound = 10;
  const auto w = bmc.check(o);
  ASSERT_TRUE(w.has_value());
  // cnt starts at 0 and can grow by at most 1 per step: depth is exactly 5.
  EXPECT_EQ(w->length, 5u);
  EXPECT_EQ(w->bad_label, "cnt-5");
  EXPECT_EQ(bmc.stats().bounds_checked, 6u);
}

TEST(BmcTest, BadAtStepZeroWhenInitMatches) {
  CounterSystem sys(8, 7);
  sys.ts.add_bad(sys.mgr.mk_eq(sys.cnt, sys.mgr.mk_const(8, 7)), "init-bad");
  Bmc bmc(sys.ts);
  BmcOptions o;
  o.max_bound = 3;
  const auto w = bmc.check(o);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->length, 0u);
}

TEST(BmcTest, UnreachableWithinBoundReturnsNothing) {
  CounterSystem sys;
  sys.ts.add_bad(sys.mgr.mk_eq(sys.cnt, sys.mgr.mk_const(8, 50)), "too-far");
  Bmc bmc(sys.ts);
  BmcOptions o;
  o.max_bound = 10;
  EXPECT_FALSE(bmc.check(o).has_value());
  EXPECT_FALSE(bmc.stats().hit_resource_limit);
  EXPECT_EQ(bmc.stats().bounds_checked, 11u);
}

TEST(BmcTest, WitnessInputsReplayToTheBadState) {
  CounterSystem sys;
  sys.ts.add_bad(sys.mgr.mk_eq(sys.cnt, sys.mgr.mk_const(8, 4)), "cnt-4");
  Bmc bmc(sys.ts);
  BmcOptions o;
  o.max_bound = 8;
  const auto w = bmc.check(o);
  ASSERT_TRUE(w.has_value());
  // Replay: simulate the counter concretely with the witness inputs.
  std::uint64_t cnt = 0;
  for (unsigned t = 0; t < w->length; ++t) {
    const auto it = w->inputs[t].find(sys.inc);
    ASSERT_NE(it, w->inputs[t].end());
    if (it->second.is_true()) ++cnt;
  }
  EXPECT_EQ(cnt, 4u);
  // And the recorded state trace matches the replay at every step.
  std::uint64_t replay = 0;
  for (unsigned t = 0; t <= w->length; ++t) {
    EXPECT_EQ(w->states[t].at(sys.cnt).uval(), replay) << "step " << t;
    if (t < w->length && w->inputs[t].at(sys.inc).is_true()) ++replay;
  }
}

TEST(BmcTest, StepConstraintsRestrictInputs) {
  // Forbid incrementing: the bad state becomes unreachable.
  CounterSystem sys;
  sys.ts.add_constraint(sys.mgr.mk_not(sys.inc));
  sys.ts.add_bad(sys.mgr.mk_eq(sys.cnt, sys.mgr.mk_const(8, 1)), "cnt-1");
  Bmc bmc(sys.ts);
  BmcOptions o;
  o.max_bound = 6;
  EXPECT_FALSE(bmc.check(o).has_value());
}

TEST(BmcTest, InitConstraintsBindSymbolicInitialState) {
  // Unconstrained initial counter, but an init constraint pins it >= 250;
  // wrap-around to 2 then takes at most 8 steps.
  TermManager mgr;
  ts::TransitionSystem ts(mgr);
  const TermRef cnt = ts.add_state("cnt", 8);
  ts.set_next(cnt, mgr.mk_add(cnt, mgr.mk_const(8, 1)));  // no init: symbolic
  ts.add_init_constraint(mgr.mk_ule(mgr.mk_const(8, 250), cnt));
  ts.add_bad(mgr.mk_eq(cnt, mgr.mk_const(8, 2)), "cnt-2");
  Bmc bmc(ts);
  BmcOptions o;
  o.max_bound = 10;
  const auto w = bmc.check(o);
  ASSERT_TRUE(w.has_value());
  EXPECT_LE(w->length, 8u);
  // The initial state respected the constraint.
  EXPECT_GE(w->states[0].at(cnt).uval(), 250u);
}

TEST(BmcTest, SymbolicInitialStateFindsShortestPath) {
  // With a fully unconstrained initial state the bad holds at step 0.
  TermManager mgr;
  ts::TransitionSystem ts(mgr);
  const TermRef x = ts.add_state("x", 8);
  ts.set_next(x, x);
  ts.add_bad(mgr.mk_eq(x, mgr.mk_const(8, 0x5a)), "x-5a");
  Bmc bmc(ts);
  BmcOptions o;
  o.max_bound = 4;
  const auto w = bmc.check(o);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->length, 0u);
  EXPECT_EQ(w->states[0].at(x).uval(), 0x5au);
}

TEST(BmcTest, MultipleBadsReportTheOneThatFired) {
  CounterSystem sys;
  sys.ts.add_bad(sys.mgr.mk_eq(sys.cnt, sys.mgr.mk_const(8, 30)), "far");
  sys.ts.add_bad(sys.mgr.mk_eq(sys.cnt, sys.mgr.mk_const(8, 2)), "near");
  Bmc bmc(sys.ts);
  BmcOptions o;
  o.max_bound = 10;
  const auto w = bmc.check(o);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->length, 2u);
  EXPECT_EQ(w->bad_index, 1u);
  EXPECT_EQ(w->bad_label, "near");
}

TEST(BmcTest, TwoInteractingStates) {
  // a follows the input, b latches a: bad needs two steps of history.
  TermManager mgr;
  ts::TransitionSystem ts(mgr);
  const TermRef a = ts.add_state("a", 4);
  const TermRef b = ts.add_state("b", 4);
  const TermRef in = ts.add_input("in", 4);
  ts.set_init(a, mgr.mk_const(4, 0));
  ts.set_init(b, mgr.mk_const(4, 0));
  ts.set_next(a, in);
  ts.set_next(b, a);
  ts.add_bad(mgr.mk_and(mgr.mk_eq(a, mgr.mk_const(4, 9)),
                        mgr.mk_eq(b, mgr.mk_const(4, 9))),
             "a-and-b-9");
  Bmc bmc(ts);
  BmcOptions o;
  o.max_bound = 5;
  const auto w = bmc.check(o);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->length, 2u);
  EXPECT_EQ(w->inputs[0].at(in).uval(), 9u);
  EXPECT_EQ(w->inputs[1].at(in).uval(), 9u);
}

TEST(BmcTest, ConflictBudgetReportsResourceLimit) {
  // The bad condition negates multiplication distributivity — an UNSAT
  // query that needs far more than 5 conflicts to refute at 12 bits. A
  // tiny conflict budget must end in hit_resource_limit, not a verdict.
  TermManager mgr;
  ts::TransitionSystem ts(mgr);
  const TermRef a = ts.add_state("a", 12);
  const TermRef b = ts.add_state("b", 12);
  const TermRef c = ts.add_state("c", 12);
  ts.set_next(a, a);
  ts.set_next(b, b);
  ts.set_next(c, c);
  const TermRef lhs = mgr.mk_mul(a, mgr.mk_add(b, c));
  const TermRef rhs = mgr.mk_add(mgr.mk_mul(a, b), mgr.mk_mul(a, c));
  ts.add_bad(mgr.mk_ne(lhs, rhs), "distributivity-violated");
  Bmc bmc(ts);
  BmcOptions o;
  o.max_bound = 0;
  o.conflict_budget_per_bound = 5;
  const auto w = bmc.check(o);
  EXPECT_FALSE(w.has_value());
  EXPECT_TRUE(bmc.stats().hit_resource_limit);
}

TEST(BmcTest, WitnessToStringMentionsStepsAndLabel) {
  CounterSystem sys;
  sys.ts.add_bad(sys.mgr.mk_eq(sys.cnt, sys.mgr.mk_const(8, 1)), "one");
  Bmc bmc(sys.ts);
  BmcOptions o;
  o.max_bound = 3;
  const auto w = bmc.check(o);
  ASSERT_TRUE(w.has_value());
  const std::string s = witness_to_string(sys.ts, *w);
  EXPECT_NE(s.find("counterexample of length 1"), std::string::npos);
  EXPECT_NE(s.find("one"), std::string::npos);
  EXPECT_NE(s.find("step 0"), std::string::npos);
  EXPECT_NE(s.find("step 1"), std::string::npos);
}

// --- frontier-incremental resume ---

TEST(BmcFrontier, ResumedSweepMatchesSingleSweep) {
  // Two check() calls (max_bound 3, then 10) must end with the same
  // verdict and stats as one call at max_bound 10 on a fresh instance.
  CounterSystem resumed_sys;
  resumed_sys.ts.add_bad(
      resumed_sys.mgr.mk_eq(resumed_sys.cnt, resumed_sys.mgr.mk_const(8, 5)), "cnt-5");
  Bmc resumed(resumed_sys.ts);
  BmcOptions shallow;
  shallow.max_bound = 3;
  EXPECT_FALSE(resumed.check(shallow).has_value());
  EXPECT_EQ(resumed.stats().bounds_checked, 4u);
  EXPECT_EQ(resumed.frontier(), 4u);

  BmcOptions deep;
  deep.max_bound = 10;
  const auto w2 = resumed.check(deep);

  CounterSystem fresh_sys;
  fresh_sys.ts.add_bad(fresh_sys.mgr.mk_eq(fresh_sys.cnt, fresh_sys.mgr.mk_const(8, 5)),
                       "cnt-5");
  Bmc fresh(fresh_sys.ts);
  const auto w1 = fresh.check(deep);

  ASSERT_TRUE(w1.has_value());
  ASSERT_TRUE(w2.has_value());
  EXPECT_EQ(w2->length, w1->length);
  EXPECT_EQ(w2->bad_label, w1->bad_label);
  EXPECT_EQ(resumed.stats().bounds_checked, fresh.stats().bounds_checked);
  EXPECT_EQ(resumed.frontier(), fresh.frontier());
}

TEST(BmcFrontier, RepeatedCheckDoesNotResolveCleanBounds) {
  CounterSystem sys;
  sys.ts.add_bad(sys.mgr.mk_eq(sys.cnt, sys.mgr.mk_const(8, 50)), "too-far");
  Bmc bmc(sys.ts);
  BmcOptions o;
  o.max_bound = 8;
  EXPECT_FALSE(bmc.check(o).has_value());
  EXPECT_EQ(bmc.frontier(), 9u);
  const std::uint64_t conflicts_after_first = bmc.stats().solver_conflicts;
  const std::uint64_t decisions_after_first = bmc.stats().solver_decisions;

  // Same bound again: everything is below the frontier — no new solving.
  EXPECT_FALSE(bmc.check(o).has_value());
  EXPECT_EQ(bmc.stats().bounds_checked, 9u);
  EXPECT_EQ(bmc.stats().solver_conflicts, conflicts_after_first);
  EXPECT_EQ(bmc.stats().solver_decisions, decisions_after_first);

  // A shallower bound is also already known clean.
  BmcOptions shallow;
  shallow.max_bound = 2;
  EXPECT_FALSE(bmc.check(shallow).has_value());
  EXPECT_EQ(bmc.stats().bounds_checked, 3u);
  EXPECT_FALSE(bmc.stats().hit_resource_limit);
}

TEST(BmcFrontier, WitnessBoundIsNotAddedToTheFrontier) {
  // A found violation must stay findable by a later call.
  CounterSystem sys;
  sys.ts.add_bad(sys.mgr.mk_eq(sys.cnt, sys.mgr.mk_const(8, 2)), "cnt-2");
  Bmc bmc(sys.ts);
  BmcOptions o;
  o.max_bound = 6;
  const auto w1 = bmc.check(o);
  ASSERT_TRUE(w1.has_value());
  EXPECT_EQ(bmc.frontier(), 2u);
  const auto w2 = bmc.check(o);
  ASSERT_TRUE(w2.has_value());
  EXPECT_EQ(w2->length, w1->length);
  EXPECT_EQ(w2->bad_label, w1->bad_label);
}

// --- per-call budget hygiene ---

TEST(BmcBudgets, WallBudgetDoesNotLeakIntoUncappedCall) {
  CounterSystem sys;
  sys.ts.add_bad(sys.mgr.mk_eq(sys.cnt, sys.mgr.mk_const(8, 3)), "cnt-3");
  Bmc bmc(sys.ts);
  BmcOptions capped;
  capped.max_bound = 1;  // stays below the violation: a clean capped sweep
  capped.max_seconds = 500.0;
  EXPECT_FALSE(bmc.check(capped).has_value());
  // The solver still carries (a remainder of) the wall budget...
  EXPECT_GT(bmc.solver().time_budget(), 0.0);

  // ...which an uncapped follow-up call must clear, not inherit.
  BmcOptions uncapped;
  uncapped.max_bound = 6;
  const auto w = bmc.check(uncapped);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->length, 3u);
  EXPECT_EQ(bmc.solver().time_budget(), 0.0);
}

TEST(BmcBudgets, ConflictBudgetDoesNotLeakIntoUnbudgetedCall) {
  CounterSystem sys;
  sys.ts.add_bad(sys.mgr.mk_eq(sys.cnt, sys.mgr.mk_const(8, 4)), "cnt-4");
  Bmc bmc(sys.ts);
  BmcOptions budgeted;
  budgeted.max_bound = 1;
  budgeted.conflict_budget_per_bound = 7;
  (void)bmc.check(budgeted);

  BmcOptions unbudgeted;
  unbudgeted.max_bound = 8;
  const auto w = bmc.check(unbudgeted);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->length, 4u);
  EXPECT_EQ(bmc.solver().conflict_budget(), 0u);
}

TEST(BmcTest, TimedMapsExposeUnrolledVariables) {
  CounterSystem sys;
  sys.ts.add_bad(sys.mgr.mk_eq(sys.cnt, sys.mgr.mk_const(8, 2)), "two");
  Bmc bmc(sys.ts);
  BmcOptions o;
  o.max_bound = 4;
  ASSERT_TRUE(bmc.check(o).has_value());
  // Step-0 counter unrolls to its init constant.
  EXPECT_EQ(bmc.timed(sys.cnt, 0), sys.mgr.mk_const(8, 0));
  // Later steps are real terms of the right width.
  EXPECT_EQ(sys.mgr.width(bmc.timed(sys.cnt, 2)), 8u);
}

}  // namespace
}  // namespace sepe::bmc
