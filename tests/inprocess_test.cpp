// Soundness tests for the CDCL inprocessing pipeline (bounded variable
// elimination, subsumption/self-subsuming resolution, vivification):
// verdicts and models must be indistinguishable from a solver with
// inprocessing off, including across incremental add_clause calls and
// assumptions that touch eliminated variables.
#include <gtest/gtest.h>

#include <vector>

#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace sepe::sat {
namespace {

/// Inprocess at every restart, restart after every conflict: the
/// pipeline fires as often as the solver's structure allows, so even
/// tiny instances exercise it.
SolverConfig aggressive_config() {
  SolverConfig c;
  c.restart_base = 1;
  c.inprocess_interval = 1;
  c.bve_occurrence_limit = 10;
  c.vivify = true;
  return c;
}

/// Exhaustive satisfiability check (also validates models below).
bool brute_force_sat(int nvars, const std::vector<std::vector<Lit>>& clauses) {
  for (std::uint64_t m = 0; m < (1ULL << nvars); ++m) {
    bool all = true;
    for (const auto& c : clauses) {
      bool sat = false;
      for (const Lit l : c)
        if (((m >> l.var()) & 1) != static_cast<std::uint64_t>(l.sign())) {
          sat = true;
          break;
        }
      if (!sat) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

bool model_satisfies(const Solver& s, const std::vector<std::vector<Lit>>& clauses) {
  for (const auto& c : clauses) {
    bool sat = false;
    for (const Lit l : c)
      if (s.model_value(l)) {
        sat = true;
        break;
      }
    if (!sat) return false;
  }
  return true;
}

std::vector<std::vector<Lit>> random_instance(Rng& rng, int nvars, int nclauses) {
  std::vector<std::vector<Lit>> clauses;
  for (int i = 0; i < nclauses; ++i) {
    const int width = 1 + static_cast<int>(rng.below(3));
    std::vector<Lit> c;
    for (int k = 0; k < width; ++k)
      c.push_back(Lit(static_cast<int>(rng.below(nvars)), rng.flip()));
    clauses.push_back(std::move(c));
  }
  return clauses;
}

TEST(Inprocess, RandomInstancesMatchBruteForce) {
  Rng rng(20240807);
  for (int round = 0; round < 400; ++round) {
    const int nvars = 4 + static_cast<int>(rng.below(9));   // 4..12
    const int nclauses = 3 + static_cast<int>(rng.below(40));
    const auto clauses = random_instance(rng, nvars, nclauses);
    Solver s(aggressive_config());
    for (int v = 0; v < nvars; ++v) s.new_var();
    for (const auto& c : clauses) s.add_clause(c);
    const bool expected = brute_force_sat(nvars, clauses);
    const SolveResult r = s.solve();
    ASSERT_EQ(r, expected ? SolveResult::Sat : SolveResult::Unsat)
        << "round " << round;
    if (r == SolveResult::Sat) {
      ASSERT_TRUE(model_satisfies(s, clauses)) << "round " << round;
    }
  }
}

TEST(Inprocess, FourVarInstancesExhaustivelyChecked) {
  // Dense sweep over 4-variable instances: every verdict and every model
  // is checked against all 16 assignments.
  Rng rng(7);
  for (int round = 0; round < 600; ++round) {
    const int nclauses = 1 + static_cast<int>(rng.below(16));
    const auto clauses = random_instance(rng, 4, nclauses);
    Solver s(aggressive_config());
    for (int v = 0; v < 4; ++v) s.new_var();
    for (const auto& c : clauses) s.add_clause(c);
    const bool expected = brute_force_sat(4, clauses);
    const SolveResult r = s.solve();
    ASSERT_EQ(r, expected ? SolveResult::Sat : SolveResult::Unsat)
        << "round " << round;
    if (r == SolveResult::Sat) {
      ASSERT_TRUE(model_satisfies(s, clauses)) << "round " << round;
    }
  }
}

/// Pigeonhole (pigeons = holes + 1, UNSAT): generates enough conflicts
/// and restarts that the aggressive config inprocesses many times.
void add_pigeonhole(Solver& s, int holes, std::vector<std::vector<Lit>>* out) {
  const int pigeons = holes + 1;
  std::vector<std::vector<int>> var(pigeons, std::vector<int>(holes));
  for (int p = 0; p < pigeons; ++p)
    for (int h = 0; h < holes; ++h) var[p][h] = s.new_var();
  const auto add = [&](std::vector<Lit> c) {
    if (out != nullptr) out->push_back(c);
    s.add_clause(std::move(c));
  };
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(Lit(var[p][h], false));
    add(clause);
  }
  for (int h = 0; h < holes; ++h)
    for (int p1 = 0; p1 < pigeons; ++p1)
      for (int p2 = p1 + 1; p2 < pigeons; ++p2)
        add({Lit(var[p1][h], true), Lit(var[p2][h], true)});
}

TEST(Inprocess, SubsumptionFiresAndPreservesVerdict) {
  SolverConfig c = aggressive_config();
  c.bve_occurrence_limit = 0;  // isolate the subsumption pass
  c.vivify = false;
  Solver s(c);
  // Fodder: (a|b) subsumes (a|b|x), self-subsumption strengthens
  // (~a|b|y) against (a|b)... none of it changes satisfiability.
  const int a = s.new_var(), b = s.new_var(), x = s.new_var(), y = s.new_var();
  s.add_clause(Lit(a, false), Lit(b, false));
  s.add_clause(Lit(a, false), Lit(b, false), Lit(x, false));
  s.add_clause(Lit(a, true), Lit(b, false), Lit(y, false));
  add_pigeonhole(s, 4, nullptr);  // conflict generator; UNSAT overall? No —
  // the pigeonhole block is UNSAT on its own, so the whole formula is.
  EXPECT_EQ(s.solve(), SolveResult::Unsat);
  EXPECT_GT(s.num_subsumed_clauses(), 0u);
}

/// An equivalence chain v0 <-> v1 <-> ... <-> v(n-1), left free (no unit
/// pin — root-assigned variables are never elimination candidates).
/// Interior variables have two occurrences per polarity — prime BVE
/// candidates.
std::vector<int> add_chain(Solver& s, int n, std::vector<std::vector<Lit>>* out) {
  std::vector<int> chain;
  for (int i = 0; i < n; ++i) chain.push_back(s.new_var());
  for (int i = 0; i + 1 < n; ++i) {
    out->push_back({Lit(chain[i], true), Lit(chain[i + 1], false)});
    out->push_back({Lit(chain[i], false), Lit(chain[i + 1], true)});
  }
  for (const auto& cl : *out) s.add_clause(cl);
  return chain;
}

/// Random 3-SAT over fresh variables as a conflict generator; the
/// clauses are returned 0-based so brute_force_sat can cross-check.
std::vector<std::vector<Lit>> add_conflict_fodder(Solver& s, Rng& rng, int nvars,
                                                  int nclauses) {
  std::vector<int> vars;
  for (int i = 0; i < nvars; ++i) vars.push_back(s.new_var());
  std::vector<std::vector<Lit>> local;
  for (int i = 0; i < nclauses; ++i) {
    std::vector<Lit> cl, shifted;
    for (int k = 0; k < 3; ++k) {
      const int idx = static_cast<int>(rng.below(nvars));
      cl.push_back(Lit(vars[idx], rng.flip()));
      shifted.push_back(Lit(idx, cl.back().sign()));
    }
    s.add_clause(cl);
    local.push_back(std::move(shifted));
  }
  return local;
}

bool shifted_model_satisfies(const Solver& s, int base,
                             const std::vector<std::vector<Lit>>& local) {
  for (const auto& cl : local) {
    bool sat = false;
    for (const Lit l : cl)
      if (s.model_value(Lit(l.var() + base, l.sign()))) {
        sat = true;
        break;
      }
    if (!sat) return false;
  }
  return true;
}

TEST(Inprocess, EliminationFiresAndModelIsRepaired) {
  SolverConfig c = aggressive_config();
  c.vivify = false;
  Solver s(c);
  std::vector<std::vector<Lit>> clauses;
  const std::vector<int> chain = add_chain(s, 8, &clauses);
  // Conflict generator that stays satisfiable (seed checked against
  // brute force below, so the instance is reproducibly SAT).
  Rng rng(11);
  const auto hard = add_conflict_fodder(s, rng, 14, 45);
  ASSERT_TRUE(brute_force_sat(14, hard));
  ASSERT_EQ(s.solve(), SolveResult::Sat);
  EXPECT_GT(s.num_eliminated_vars(), 0u);
  // The repaired model must satisfy every original clause — including
  // the chain clauses whose variables were eliminated.
  EXPECT_TRUE(model_satisfies(s, clauses));
  EXPECT_TRUE(shifted_model_satisfies(s, chain.size(), hard));
  // The chain is an equivalence: all variables must agree.
  for (int i = 1; i < 8; ++i)
    EXPECT_EQ(s.model_value(chain[i]), s.model_value(chain[0])) << "chain " << i;
}

TEST(Inprocess, VivificationFiresAndPreservesModels) {
  SolverConfig c = aggressive_config();
  c.bve_occurrence_limit = 0;  // keep the helper variables alive so
                               // vivification must do the strengthening
  Solver s(c);
  std::vector<std::vector<Lit>> clauses;
  // Two-step implication chain z -> y -> x1, and C = (x1 | z | w).
  // Vivifying C propagates ~x1, derives ~y then ~z, and strengthens C
  // to (x1 | w). A single self-subsuming resolution cannot make that
  // deduction (both implication clauses mention y, which C does not),
  // so the vivified counter isolates the vivification pass.
  const int x1 = s.new_var(), y = s.new_var(), z = s.new_var(), w = s.new_var();
  clauses.push_back({Lit(z, true), Lit(y, false)});   // z -> y
  clauses.push_back({Lit(y, true), Lit(x1, false)});  // y -> x1
  clauses.push_back({Lit(x1, false), Lit(z, false), Lit(w, false)});
  for (const auto& cl : clauses) s.add_clause(cl);
  add_pigeonhole(s, 4, nullptr);  // conflict generator (makes it UNSAT)
  EXPECT_EQ(s.solve(), SolveResult::Unsat);
  EXPECT_GT(s.num_vivified_clauses(), 0u);

  // Same satellite structure on a satisfiable core: models stay valid.
  Solver s2(c);
  std::vector<std::vector<Lit>> sat_clauses;
  const int a1 = s2.new_var(), b1 = s2.new_var(), c1 = s2.new_var(),
            d1 = s2.new_var();
  sat_clauses.push_back({Lit(c1, true), Lit(b1, false)});
  sat_clauses.push_back({Lit(b1, true), Lit(a1, false)});
  sat_clauses.push_back({Lit(a1, false), Lit(c1, false), Lit(d1, false)});
  for (const auto& cl : sat_clauses) s2.add_clause(cl);
  ASSERT_EQ(s2.solve(), SolveResult::Sat);
  EXPECT_TRUE(model_satisfies(s2, sat_clauses));
}

TEST(Inprocess, AddClauseReactivatesEliminatedVariables) {
  // Solve once so chain variables are eliminated, then pin each chain
  // variable with a new unit clause: the solver must reactivate it
  // (restoring its clauses) and keep agreeing with the chain semantics.
  for (int pin = 0; pin < 8; ++pin) {
    SolverConfig c = aggressive_config();
    c.vivify = false;
    Solver t(c);
    std::vector<std::vector<Lit>> tclauses;
    const std::vector<int> tchain = add_chain(t, 8, &tclauses);
    Rng rng(13);
    const auto hard = add_conflict_fodder(t, rng, 12, 40);
    ASSERT_TRUE(brute_force_sat(12, hard));
    ASSERT_EQ(t.solve(), SolveResult::Sat);
    ASSERT_GT(t.num_eliminated_vars(), 0u);
    // Pin chain[pin] false: the whole chain must follow.
    t.add_clause(Lit(tchain[pin], true));
    ASSERT_EQ(t.solve(), SolveResult::Sat) << "pin " << pin;
    for (int i = 0; i < 8; ++i) EXPECT_FALSE(t.model_value(tchain[i])) << i;
    // Now pin another one true: contradiction with the chain.
    t.add_clause(Lit(tchain[(pin + 3) % 8], false));
    EXPECT_EQ(t.solve(), SolveResult::Unsat) << "pin " << pin;
  }
}

TEST(Inprocess, AssumptionsReactivateEliminatedVariables) {
  SolverConfig c = aggressive_config();
  c.vivify = false;
  Solver s(c);
  std::vector<std::vector<Lit>> clauses;
  const std::vector<int> chain = add_chain(s, 8, &clauses);
  Rng rng(17);
  const auto hard = add_conflict_fodder(s, rng, 12, 40);
  ASSERT_TRUE(brute_force_sat(12, hard));
  ASSERT_EQ(s.solve(), SolveResult::Sat);
  ASSERT_GT(s.num_eliminated_vars(), 0u);
  // Assumptions over (possibly eliminated) chain variables: both
  // polarities stay SAT, the model honors the assumption and the chain.
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(s.solve({Lit(chain[i], false)}), SolveResult::Sat) << i;
    for (int j = 0; j < 8; ++j) EXPECT_TRUE(s.model_value(chain[j]));
    ASSERT_EQ(s.solve({Lit(chain[i], true)}), SolveResult::Sat) << i;
    for (int j = 0; j < 8; ++j) EXPECT_FALSE(s.model_value(chain[j]));
  }
  // Contradictory assumptions across the chain: UNSAT with a core.
  ASSERT_EQ(s.solve({Lit(chain[0], false), Lit(chain[7], true)}), SolveResult::Unsat);
  EXPECT_FALSE(s.failed_assumptions().empty());
}

TEST(Inprocess, IncrementalRandomEquivalence) {
  // Interleave solving and clause addition on one solver instance; the
  // verdict after every batch must match brute force on the accumulated
  // formula.
  Rng rng(20240808);
  for (int round = 0; round < 60; ++round) {
    const int nvars = 6 + static_cast<int>(rng.below(5));
    Solver s(aggressive_config());
    for (int v = 0; v < nvars; ++v) s.new_var();
    std::vector<std::vector<Lit>> accumulated;
    bool unsat_seen = false;
    for (int batch = 0; batch < 5; ++batch) {
      const auto fresh = random_instance(rng, nvars, 4);
      for (const auto& cl : fresh) {
        accumulated.push_back(cl);
        s.add_clause(cl);
      }
      const bool expected = brute_force_sat(nvars, accumulated);
      const SolveResult r = s.solve();
      ASSERT_EQ(r, expected ? SolveResult::Sat : SolveResult::Unsat)
          << "round " << round << " batch " << batch;
      if (r == SolveResult::Sat) {
        ASSERT_TRUE(model_satisfies(s, accumulated))
            << "round " << round << " batch " << batch;
      } else {
        unsat_seen = true;
        break;  // solver is dead for good — matches the contract
      }
    }
    (void)unsat_seen;
  }
}

TEST(Inprocess, DisabledByZeroInterval) {
  SolverConfig c = aggressive_config();
  c.inprocess_interval = 0;
  Solver s(c);
  add_pigeonhole(s, 4, nullptr);
  EXPECT_EQ(s.solve(), SolveResult::Unsat);
  EXPECT_EQ(s.num_eliminated_vars(), 0u);
  EXPECT_EQ(s.num_subsumed_clauses(), 0u);
  EXPECT_EQ(s.num_vivified_clauses(), 0u);
}

}  // namespace
}  // namespace sepe::sat
